// Experiment harness: one benchmark per paper artifact, as indexed in
// DESIGN.md and recorded in EXPERIMENTS.md.
//
//	F3  — Figure 3, the open-token compatibility matrix
//	C1  — recovery time: Episode log replay vs FFS fsck, swept over FS size
//	C2  — metadata disk traffic: Episode logging vs FFS synchronous writes
//	C3  — consistency traffic: DEcorum tokens vs NFS polling vs AFS callbacks
//	C4  — byte-range tokens: disjoint writers, bytes on the wire
//	C5  — staleness: stale reads observed after a completed write
//	C6  — volume operations: clone cost and copy-on-write behaviour
//	C7  — lazy replication: incremental transfer and staleness bound
//	C8  — deadlock-freedom and throughput under revocation storms
//	C9  — log append locality: sequential vs scattered metadata writes
//	C9b — group commit: device syncs per durable commit vs concurrency
//	C10 — diskless (memory) vs disk-backed client cache
//
// Run: go test -bench=. -benchmem .
package decorum

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"decorum/internal/afsmode"
	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/ffs"
	"decorum/internal/fs"
	"decorum/internal/nfsmode"
	"decorum/internal/replication"
	"decorum/internal/rpc"
	"decorum/internal/token"
	"decorum/internal/vfs"
	"decorum/internal/wal"
)

// --- F3: Figure 3 ---

// BenchmarkFig3OpenTokenMatrix renders the open-token compatibility matrix
// from the live compatibility relation (the golden test pins its values;
// this prints it the way the paper's Figure 3 does).
func BenchmarkFig3OpenTokenMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = token.RenderFigure3()
	}
	b.Log("\n" + token.RenderFigure3())
}

// --- C1: recovery time vs file-system size ---

// populateEpisode fills an aggregate with nFiles and leaves a little
// unsynced work in the log (the "active portion" recovery must replay).
func populateEpisode(b *testing.B, devBlocks int64, nFiles int) (*blockdev.MemDevice, *blockdev.CrashDevice) {
	b.Helper()
	mem := blockdev.NewMem(4096, devBlocks)
	crash := blockdev.NewCrash(mem)
	agg, err := episode.Format(crash, episode.Options{})
	if err != nil {
		b.Fatal(err)
	}
	vol, err := agg.CreateVolume("v", 0)
	if err != nil {
		b.Fatal(err)
	}
	fsys, _ := agg.Mount(vol.ID)
	root, _ := fsys.Root()
	ctx := vfs.Superuser()
	for i := 0; i < nFiles; i++ {
		f, err := root.Create(ctx, fmt.Sprintf("f%05d", i), 0o644)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Write(ctx, make([]byte, 4096), 0); err != nil {
			b.Fatal(err)
		}
	}
	// Make almost everything durable, then a small unsynced tail: the
	// active log at crash time is the SAME for every FS size.
	if err := agg.Sync(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := root.Create(ctx, fmt.Sprintf("tail%d", i), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	if err := agg.Log().Sync(); err != nil {
		b.Fatal(err)
	}
	return mem, crash
}

func populateFFS(b *testing.B, devBlocks int64, nInodes uint32, nFiles int) (*blockdev.MemDevice, *blockdev.CrashDevice) {
	b.Helper()
	mem := blockdev.NewMem(4096, devBlocks)
	crash := blockdev.NewCrash(mem)
	f, err := ffs.Format(crash, nInodes, 1)
	if err != nil {
		b.Fatal(err)
	}
	root, _ := f.Root()
	ctx := vfs.Superuser()
	for i := 0; i < nFiles; i++ {
		file, err := root.Create(ctx, fmt.Sprintf("f%05d", i), 0o644)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := file.Write(ctx, make([]byte, 4096), 0); err != nil {
			b.Fatal(err)
		}
	}
	return mem, crash
}

// BenchmarkC1RecoveryVsFsck sweeps file-system size and reports the
// model-derived recovery time and disk reads for Episode log replay and
// FFS fsck. The paper's claim: replay cost tracks the active log (flat
// across sizes); fsck tracks the file system (growing).
func BenchmarkC1RecoveryVsFsck(b *testing.B) {
	sizes := []struct {
		name   string
		blocks int64
		inodes uint32
		files  int
	}{
		{"small-16MiB", 4096, 1024, 50},
		{"medium-64MiB", 16384, 4096, 200},
		{"large-256MiB", 65536, 16384, 800},
	}
	for _, sz := range sizes {
		b.Run("episode/"+sz.name, func(b *testing.B) {
			var reads int64
			var simTime time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mem, crash := populateEpisode(b, sz.blocks, sz.files)
				rng := rand.New(rand.NewSource(int64(i)))
				if err := crash.Crash(blockdev.RandomSubset, rng); err != nil {
					b.Fatal(err)
				}
				sim := blockdev.NewSim(mem, blockdev.DefaultCostModel)
				b.StartTimer()
				if _, err := episode.Open(sim, episode.Options{}); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st := sim.Stats()
				reads = st.Reads
				simTime = st.SimTime
			}
			b.ReportMetric(float64(reads), "disk-reads")
			b.ReportMetric(float64(simTime.Milliseconds()), "sim-ms")
		})
		b.Run("ffs-fsck/"+sz.name, func(b *testing.B) {
			var reads int64
			var simTime time.Duration
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				mem, crash := populateFFS(b, sz.blocks, sz.inodes, sz.files)
				rng := rand.New(rand.NewSource(int64(i)))
				if err := crash.Crash(blockdev.RandomSubset, rng); err != nil {
					b.Fatal(err)
				}
				sim := blockdev.NewSim(mem, blockdev.DefaultCostModel)
				b.StartTimer()
				if _, err := ffs.Fsck(sim); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				st := sim.Stats()
				reads = st.Reads
				simTime = st.SimTime
			}
			b.ReportMetric(float64(reads), "disk-reads")
			b.ReportMetric(float64(simTime.Milliseconds()), "sim-ms")
		})
	}
}

// --- C2: metadata disk traffic ---

// metaWorkload is the create/write/delete/truncate mix of §2.2's claim
// ("operations that primarily change file system meta-data, such as file
// creation, deletion, and truncation").
func metaWorkload(b *testing.B, root vfs.Vnode, sync func() error) {
	b.Helper()
	ctx := vfs.Superuser()
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("w%03d", i)
		f, err := root.Create(ctx, name, 0o644)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Write(ctx, make([]byte, 8192), 0); err != nil {
			b.Fatal(err)
		}
		nl := int64(100)
		if _, err := f.SetAttr(ctx, fs.AttrChange{Length: &nl}); err != nil {
			b.Fatal(err)
		}
		if i%2 == 0 {
			if err := root.Remove(ctx, name); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkC2MetadataTraffic counts device writes and cache flushes for
// the same workload on Episode (batched log) and FFS (synchronous
// metadata). The paper: the log-based system "should actually generate
// considerably fewer disk updates".
func BenchmarkC2MetadataTraffic(b *testing.B) {
	b.Run("episode", func(b *testing.B) {
		var st blockdev.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sim := blockdev.NewSim(blockdev.NewMem(4096, 16384), blockdev.DefaultCostModel)
			agg, err := episode.Format(sim, episode.Options{})
			if err != nil {
				b.Fatal(err)
			}
			vol, _ := agg.CreateVolume("v", 0)
			fsys, _ := agg.Mount(vol.ID)
			root, _ := fsys.Root()
			sim.ResetStats()
			b.StartTimer()
			metaWorkload(b, root, agg.Sync)
			b.StopTimer()
			st = sim.Stats()
		}
		b.ReportMetric(float64(st.Writes), "disk-writes")
		b.ReportMetric(float64(st.Syncs), "syncs")
		b.ReportMetric(float64(st.SimTime.Milliseconds()), "sim-ms")
	})
	// Ablation (DESIGN.md #1): Episode forced to checkpoint after every
	// operation — what the workload costs when the log is not allowed to
	// batch. The gap between this and the batched arm is the log's
	// contribution; the gap to FFS is the structural difference.
	b.Run("episode-syncmeta-ablation", func(b *testing.B) {
		var st blockdev.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sim := blockdev.NewSim(blockdev.NewMem(4096, 16384), blockdev.DefaultCostModel)
			agg, err := episode.Format(sim, episode.Options{})
			if err != nil {
				b.Fatal(err)
			}
			vol, _ := agg.CreateVolume("v", 0)
			fsys, _ := agg.Mount(vol.ID)
			root, _ := fsys.Root()
			ctx := vfs.Superuser()
			sim.ResetStats()
			b.StartTimer()
			for j := 0; j < 50; j++ {
				name := fmt.Sprintf("w%03d", j)
				f, err := root.Create(ctx, name, 0o644)
				if err != nil {
					b.Fatal(err)
				}
				f.Write(ctx, make([]byte, 8192), 0)
				nl := int64(100)
				f.SetAttr(ctx, fs.AttrChange{Length: &nl})
				if j%2 == 0 {
					root.Remove(ctx, name)
				}
				if err := agg.Sync(); err != nil { // forced per-op checkpoint
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st = sim.Stats()
		}
		b.ReportMetric(float64(st.Writes), "disk-writes")
		b.ReportMetric(float64(st.Syncs), "syncs")
		b.ReportMetric(float64(st.SimTime.Milliseconds()), "sim-ms")
	})
	b.Run("ffs", func(b *testing.B) {
		var st blockdev.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sim := blockdev.NewSim(blockdev.NewMem(4096, 16384), blockdev.DefaultCostModel)
			f, err := ffs.Format(sim, 2048, 1)
			if err != nil {
				b.Fatal(err)
			}
			root, _ := f.Root()
			sim.ResetStats()
			b.StartTimer()
			metaWorkload(b, root, f.Sync)
			b.StopTimer()
			st = sim.Stats()
		}
		b.ReportMetric(float64(st.Writes), "disk-writes")
		b.ReportMetric(float64(st.Syncs), "syncs")
		b.ReportMetric(float64(st.SimTime.Milliseconds()), "sim-ms")
	})
}

// --- C3: consistency traffic ---

// BenchmarkC3ConsistencyTraffic runs a read-mostly shared workload (one
// writer writes once; a reader then reads the file 100 times, spread over
// ~400 simulated seconds) and reports the RPCs each consistency protocol
// spends. The paper: NFS polls "whether or not any shared data have been
// modified"; tokens talk only when data actually changes.
func BenchmarkC3ConsistencyTraffic(b *testing.B) {
	const reads = 100
	b.Run("decorum", func(b *testing.B) {
		var calls uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 16<<20)
			srv.CreateVolume("v", 0)
			writer, _ := cell.NewClient("w", SuperUser)
			reader, _ := cell.NewClient("r", SuperUser)
			ctx := Superuser()
			fsW, _ := writer.Mount("v")
			rootW, _ := fsW.Root()
			f, _ := rootW.Create(ctx, "shared", 0o644)
			f.Write(ctx, []byte("content"), 0)
			fsR, _ := reader.Mount("v")
			rootR, _ := fsR.Root()
			fR, _ := rootR.Lookup(ctx, "shared")
			buf := make([]byte, 7)
			fR.Read(ctx, buf, 0) // warm
			base := reader.RPCStats().CallsSent
			b.StartTimer()
			for j := 0; j < reads; j++ {
				if _, err := fR.Read(ctx, buf, 0); err != nil {
					b.Fatal(err)
				}
				if _, err := fR.Attr(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			calls = reader.RPCStats().CallsSent - base
			writer.Close()
			reader.Close()
		}
		b.ReportMetric(float64(calls), "rpcs/100reads")
	})
	b.Run("nfs", func(b *testing.B) {
		var calls uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 16<<20)
			vol, _ := srv.CreateVolume("v", 0)
			conn, _ := cell.Dial("fs1")
			nfs, err := nfsmode.Dial("nfs-r", conn, rpc.Options{})
			if err != nil {
				b.Fatal(err)
			}
			now := time.Unix(0, 0)
			nfs.Clock = func() time.Time { return now }
			root, _ := nfs.Root(vol.ID)
			fid, _ := nfs.Create(root, "shared", 0o644)
			nfs.Write(fid, []byte("content"), 0)
			buf := make([]byte, 7)
			nfs.Read(fid, buf, 0) // warm
			base := nfs.RPCStats().CallsSent
			b.StartTimer()
			for j := 0; j < reads; j++ {
				now = now.Add(4 * time.Second) // past the 3 s window
				if _, err := nfs.Read(fid, buf, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			calls = nfs.RPCStats().CallsSent - base
			nfs.Close()
		}
		b.ReportMetric(float64(calls), "rpcs/100reads")
	})
	b.Run("afs", func(b *testing.B) {
		var calls uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 16<<20)
			vol, _ := srv.CreateVolume("v", 0)
			conn, _ := cell.Dial("fs1")
			afs, err := afsmode.Dial("afs-r", conn, rpc.Options{})
			if err != nil {
				b.Fatal(err)
			}
			root, _ := afs.Root(vol.ID)
			fid, _ := afs.Create(root, "shared", 0o644)
			afs.Open(fid)
			afs.Write(fid, []byte("content"), 0)
			afs.Close(fid)
			base := afs.RPCStats().CallsSent
			buf := make([]byte, 7)
			b.StartTimer()
			for j := 0; j < reads; j++ {
				// AFS checks at open: open/read/close per access.
				afs.Open(fid)
				afs.Read(fid, buf, 0)
				afs.Close(fid)
			}
			b.StopTimer()
			calls = afs.RPCStats().CallsSent - base
			afs.Shutdown()
		}
		b.ReportMetric(float64(calls), "rpcs/100reads")
	})
}

// --- C4: byte-range sharing ---

// BenchmarkC4ByteRangeSharing has two clients write single bytes into
// disjoint halves of a 512 KiB file, 50 rounds each, and reports bytes on
// the wire. DEcorum's ranged data tokens keep the file in both caches;
// AFS ships the whole file every open/close round (§5.4's "shipped back
// and forth in its entirety").
func BenchmarkC4ByteRangeSharing(b *testing.B) {
	const fileSize = 512 * 1024
	const rounds = 50
	b.Run("decorum", func(b *testing.B) {
		var bytesMoved uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 64<<20)
			srv.CreateVolume("v", 0)
			a, _ := cell.NewClient("a", SuperUser)
			c2, _ := cell.NewClient("b", SuperUser)
			ctx := Superuser()
			fsA, _ := a.Mount("v")
			rootA, _ := fsA.Root()
			f, _ := rootA.Create(ctx, "big", 0o644)
			f.Write(ctx, make([]byte, fileSize), 0)
			fsB, _ := c2.Mount("v")
			rootB, _ := fsB.Root()
			fB, _ := rootB.Lookup(ctx, "big")
			// Warm both halves.
			f.Write(ctx, []byte{1}, 0)
			fB.Write(ctx, []byte{1}, fileSize/2)
			base := a.RPCStats().BytesSent + a.RPCStats().BytesReceived +
				c2.RPCStats().BytesSent + c2.RPCStats().BytesReceived
			b.StartTimer()
			for j := 0; j < rounds; j++ {
				f.Write(ctx, []byte{byte(j)}, int64(j%4096))
				fB.Write(ctx, []byte{byte(j)}, fileSize/2+int64(j%4096))
			}
			b.StopTimer()
			bytesMoved = a.RPCStats().BytesSent + a.RPCStats().BytesReceived +
				c2.RPCStats().BytesSent + c2.RPCStats().BytesReceived - base
			a.Close()
			c2.Close()
		}
		b.ReportMetric(float64(bytesMoved), "wire-bytes")
		b.ReportMetric(float64(bytesMoved)/float64(2*rounds), "wire-bytes/write")
	})
	// Ablation (DESIGN.md #3): the same DEcorum client with byte ranges
	// disabled — every data token covers the whole file, so each writer's
	// write revokes the other's token and the whole cached file bounces.
	b.Run("decorum-wholefile-ablation", func(b *testing.B) {
		var bytesMoved uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 64<<20)
			srv.CreateVolume("v", 0)
			a, _ := cell.NewAblationClient("a", SuperUser)
			c2, _ := cell.NewAblationClient("b", SuperUser)
			ctx := Superuser()
			fsA, _ := a.Mount("v")
			rootA, _ := fsA.Root()
			f, _ := rootA.Create(ctx, "big", 0o644)
			f.Write(ctx, make([]byte, fileSize), 0)
			fsB, _ := c2.Mount("v")
			rootB, _ := fsB.Root()
			fB, _ := rootB.Lookup(ctx, "big")
			f.Write(ctx, []byte{1}, 0)
			fB.Write(ctx, []byte{1}, fileSize/2)
			base := a.RPCStats().BytesSent + a.RPCStats().BytesReceived +
				c2.RPCStats().BytesSent + c2.RPCStats().BytesReceived
			b.StartTimer()
			for j := 0; j < rounds; j++ {
				f.Write(ctx, []byte{byte(j)}, int64(j%4096))
				fB.Write(ctx, []byte{byte(j)}, fileSize/2+int64(j%4096))
			}
			b.StopTimer()
			bytesMoved = a.RPCStats().BytesSent + a.RPCStats().BytesReceived +
				c2.RPCStats().BytesSent + c2.RPCStats().BytesReceived - base
			a.Close()
			c2.Close()
		}
		b.ReportMetric(float64(bytesMoved), "wire-bytes")
		b.ReportMetric(float64(bytesMoved)/float64(2*rounds), "wire-bytes/write")
	})
	b.Run("afs", func(b *testing.B) {
		var bytesMoved uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 64<<20)
			vol, _ := srv.CreateVolume("v", 0)
			connA, _ := cell.Dial("fs1")
			a, _ := afsmode.Dial("a", connA, rpc.Options{})
			connB, _ := cell.Dial("fs1")
			c2, _ := afsmode.Dial("b", connB, rpc.Options{})
			root, _ := a.Root(vol.ID)
			fid, _ := a.Create(root, "big", 0o644)
			a.Open(fid)
			a.Write(fid, make([]byte, fileSize), 0)
			a.Close(fid)
			base := a.RPCStats().BytesSent + a.RPCStats().BytesReceived +
				c2.RPCStats().BytesSent + c2.RPCStats().BytesReceived
			b.StartTimer()
			for j := 0; j < rounds; j++ {
				a.Open(fid)
				a.Write(fid, []byte{byte(j)}, int64(j%4096))
				a.Close(fid)
				c2.Open(fid)
				c2.Write(fid, []byte{byte(j)}, fileSize/2+int64(j%4096))
				c2.Close(fid)
			}
			b.StopTimer()
			bytesMoved = a.RPCStats().BytesSent + a.RPCStats().BytesReceived +
				c2.RPCStats().BytesSent + c2.RPCStats().BytesReceived - base
			a.Shutdown()
			c2.Shutdown()
		}
		b.ReportMetric(float64(bytesMoved), "wire-bytes")
		b.ReportMetric(float64(bytesMoved)/float64(2*rounds), "wire-bytes/write")
	})
}

// --- C5: staleness ---

// BenchmarkC5StalenessWindow measures how often a reader observes a value
// OLDER than the last completed write: the semantic gap between
// single-system semantics (DEcorum: zero), close-to-open (AFS: stale while
// the reader holds its open), and timer-based (NFS: stale within the 3 s
// window).
func BenchmarkC5StalenessWindow(b *testing.B) {
	const updates = 50
	b.Run("decorum", func(b *testing.B) {
		var stale int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 16<<20)
			srv.CreateVolume("v", 0)
			w, _ := cell.NewClient("w", SuperUser)
			r, _ := cell.NewClient("r", SuperUser)
			ctx := Superuser()
			fsW, _ := w.Mount("v")
			rootW, _ := fsW.Root()
			f, _ := rootW.Create(ctx, "c", 0o644)
			f.Write(ctx, []byte{0}, 0)
			fsR, _ := r.Mount("v")
			rootR, _ := fsR.Root()
			fR, _ := rootR.Lookup(ctx, "c")
			buf := make([]byte, 1)
			stale = 0
			b.StartTimer()
			for j := byte(1); j <= updates; j++ {
				f.Write(ctx, []byte{j}, 0)
				fR.Read(ctx, buf, 0)
				if buf[0] != j {
					stale++
				}
			}
			b.StopTimer()
			w.Close()
			r.Close()
		}
		b.ReportMetric(float64(stale), "stale-reads")
	})
	b.Run("nfs", func(b *testing.B) {
		var stale int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 16<<20)
			vol, _ := srv.CreateVolume("v", 0)
			connW, _ := cell.Dial("fs1")
			w, _ := nfsmode.Dial("w", connW, rpc.Options{})
			connR, _ := cell.Dial("fs1")
			r, _ := nfsmode.Dial("r", connR, rpc.Options{})
			now := time.Unix(0, 0)
			r.Clock = func() time.Time { return now }
			root, _ := w.Root(vol.ID)
			fid, _ := w.Create(root, "c", 0o644)
			w.Write(fid, []byte{0}, 0)
			buf := make([]byte, 1)
			r.Read(fid, buf, 0)
			stale = 0
			b.StartTimer()
			for j := byte(1); j <= updates; j++ {
				w.Write(fid, []byte{j}, 0)
				// The reader re-reads one simulated second later: inside
				// the 3-second window two times out of three.
				now = now.Add(time.Second)
				r.Read(fid, buf, 0)
				if buf[0] != j {
					stale++
				}
			}
			b.StopTimer()
			w.Close()
			r.Close()
		}
		b.ReportMetric(float64(stale), "stale-reads")
	})
	b.Run("afs", func(b *testing.B) {
		var stale int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 16<<20)
			vol, _ := srv.CreateVolume("v", 0)
			connW, _ := cell.Dial("fs1")
			w, _ := afsmode.Dial("w", connW, rpc.Options{})
			connR, _ := cell.Dial("fs1")
			r, _ := afsmode.Dial("r", connR, rpc.Options{})
			root, _ := w.Root(vol.ID)
			fid, _ := w.Create(root, "c", 0o644)
			w.Open(fid)
			w.Write(fid, []byte{0}, 0)
			w.Close(fid)
			// The reader holds ONE long open (an editor, say).
			r.Open(fid)
			buf := make([]byte, 1)
			stale = 0
			b.StartTimer()
			for j := byte(1); j <= updates; j++ {
				w.Open(fid)
				w.Write(fid, []byte{j}, 0)
				w.Close(fid) // store-on-close: the write IS complete
				r.Read(fid, buf, 0)
				if buf[0] != j {
					stale++
				}
			}
			b.StopTimer()
			w.Shutdown()
			r.Shutdown()
		}
		b.ReportMetric(float64(stale), "stale-reads")
	})
}

// --- C6: volume operations ---

// BenchmarkC6VolumeOps measures cloning against volume data size: the
// blocks a clone consumes track the NUMBER OF FILES (directory pages and
// descriptors), not the bytes of file data (shared copy-on-write), and a
// later write copies only the block it touches (§2.1).
func BenchmarkC6VolumeOps(b *testing.B) {
	for _, dataKiB := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("clone/data-%dKiB", dataKiB), func(b *testing.B) {
			var consumed, cowCost int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dev := blockdev.NewMem(4096, 32768)
				agg, err := episode.Format(dev, episode.Options{})
				if err != nil {
					b.Fatal(err)
				}
				vol, _ := agg.CreateVolume("v", 0)
				fsys, _ := agg.Mount(vol.ID)
				root, _ := fsys.Root()
				ctx := vfs.Superuser()
				// 8 files splitting the payload.
				per := dataKiB * 1024 / 8
				for j := 0; j < 8; j++ {
					f, _ := root.Create(ctx, fmt.Sprintf("f%d", j), 0o644)
					if _, err := f.Write(ctx, make([]byte, per), 0); err != nil {
						b.Fatal(err)
					}
				}
				free0 := agg.Store().FreeBlocks()
				b.StartTimer()
				clone, err := agg.Clone(vol.ID, "v.snap")
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				consumed = free0 - agg.Store().FreeBlocks()
				// Touch one byte of the original: COW copies just that
				// block path.
				free1 := agg.Store().FreeBlocks()
				f0, _ := root.Lookup(ctx, "f0")
				if _, err := f0.Write(ctx, []byte{9}, 0); err != nil {
					b.Fatal(err)
				}
				cowCost = free1 - agg.Store().FreeBlocks()
				_ = clone
			}
			b.ReportMetric(float64(consumed), "clone-blocks")
			b.ReportMetric(float64(cowCost), "cow-blocks/write")
		})
	}
}

// --- C7: lazy replication ---

// BenchmarkC7LazyReplication measures an incremental refresh after 1 of
// 20 files changed: files fetched and bytes moved must track the CHANGE,
// not the volume (§3.8: "only those files that have changed").
func BenchmarkC7LazyReplication(b *testing.B) {
	var filesFetched, bytesFetched uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cell := NewCell()
		master, _ := cell.AddServer("master", 64<<20)
		replicaHost, _ := cell.AddServer("replica", 64<<20)
		vol, _ := master.CreateVolume("docs", 0)
		w, _ := cell.NewClient("w", SuperUser)
		ctx := Superuser()
		fsys, _ := w.Mount("docs")
		root, _ := fsys.Root()
		for j := 0; j < 20; j++ {
			f, _ := root.Create(ctx, fmt.Sprintf("d%02d", j), 0o644)
			if _, err := f.Write(ctx, make([]byte, 16*1024), 0); err != nil {
				b.Fatal(err)
			}
		}
		conn, _ := cell.Dial("master")
		now := time.Unix(0, 0)
		repl, err := replication.New(conn, replicaHost.Aggregate(), replication.Options{
			SourceVolume: vol.ID,
			ReplicaName:  "docs.ro",
			MaxAge:       time.Minute,
			Clock:        func() time.Time { return now },
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := repl.InitialSync(); err != nil {
			b.Fatal(err)
		}
		// Change ONE file.
		f, _ := root.Lookup(ctx, "d07")
		if _, err := f.Write(ctx, []byte("changed"), 0); err != nil {
			b.Fatal(err)
		}
		st0 := repl.Stats()
		b.StartTimer()
		if err := repl.Refresh(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		st := repl.Stats()
		filesFetched = st.FilesFetched - st0.FilesFetched
		bytesFetched = st.BytesFetched - st0.BytesFetched
		repl.Close()
		w.Close()
	}
	b.ReportMetric(float64(filesFetched), "files-fetched")
	b.ReportMetric(float64(bytesFetched), "bytes-fetched")
	b.ReportMetric(20, "files-total")
}

// --- C8: revocation storm ---

// BenchmarkC8RevocationStorm drives 4 clients against 4 shared files with
// conflicting reads and writes: every operation triggers token traffic.
// Completing at all demonstrates the §6 hierarchy (a deadlock would hang);
// the metric is coherent shared operations per second.
func BenchmarkC8RevocationStorm(b *testing.B) {
	cell := NewCell()
	cell.EnableLockChecker()
	srv, _ := cell.AddServer("fs1", 64<<20)
	srv.CreateVolume("v", 0)
	const nClients = 4
	ctx := Superuser()
	clients := make([]*Client, nClients)
	files := make([][]Vnode, nClients)
	for i := range clients {
		clients[i], _ = cell.NewClient(fmt.Sprintf("ws%d", i), SuperUser)
		fsys, _ := clients[i].Mount("v")
		root, _ := fsys.Root()
		if i == 0 {
			for j := 0; j < 4; j++ {
				if _, err := root.Create(ctx, fmt.Sprintf("f%d", j), 0o644); err != nil {
					b.Fatal(err)
				}
			}
		}
		files[i] = make([]Vnode, 4)
		for j := 0; j < 4; j++ {
			v, err := root.Lookup(ctx, fmt.Sprintf("f%d", j))
			if err != nil {
				b.Fatal(err)
			}
			files[i][j] = v
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	buf := make([]byte, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i % nClients
		f := files[c][i%4]
		if i%3 == 0 {
			if _, err := f.Write(ctx, []byte{byte(i)}, int64(i%128)); err != nil {
				b.Fatal(err)
			}
		} else {
			if _, err := f.Read(ctx, buf, 0); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	var revs uint64
	for _, c := range clients {
		revs += c.Stats().Revocations
	}
	b.ReportMetric(float64(revs)/float64(b.N), "revocations/op")
	if v := cell.Violations(); len(v) != 0 {
		b.Fatalf("lock hierarchy violations: %v", v)
	}
}

// --- C9: log append locality ---

// BenchmarkC9LogAppendLocality measures what fraction of disk writes are
// sequential during a metadata burst. Episode's commits are appends to
// the log ("disks are especially efficient at performing these types of
// writes"); FFS scatters synchronous writes across inodes, bitmap, and
// directories.
func BenchmarkC9LogAppendLocality(b *testing.B) {
	burst := func(root vfs.Vnode) {
		ctx := vfs.Superuser()
		for i := 0; i < 100; i++ {
			if _, err := root.Create(ctx, fmt.Sprintf("n%03d", i), 0o644); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("episode", func(b *testing.B) {
		var st blockdev.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sim := blockdev.NewSim(blockdev.NewMem(4096, 16384), blockdev.DefaultCostModel)
			agg, _ := episode.Format(sim, episode.Options{})
			vol, _ := agg.CreateVolume("v", 0)
			fsys, _ := agg.Mount(vol.ID)
			root, _ := fsys.Root()
			sim.ResetStats()
			b.StartTimer()
			burst(root)
			if err := agg.Log().Sync(); err != nil { // the batch commit
				b.Fatal(err)
			}
			b.StopTimer()
			st = sim.Stats()
		}
		seqFrac := float64(st.SeqWrites) / float64(st.Writes)
		b.ReportMetric(seqFrac*100, "seq-writes-%")
		b.ReportMetric(float64(st.Writes), "disk-writes")
		b.ReportMetric(float64(st.SimTime.Milliseconds()), "sim-ms")
	})
	b.Run("ffs", func(b *testing.B) {
		var st blockdev.Stats
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sim := blockdev.NewSim(blockdev.NewMem(4096, 16384), blockdev.DefaultCostModel)
			f, _ := ffs.Format(sim, 2048, 1)
			root, _ := f.Root()
			sim.ResetStats()
			b.StartTimer()
			burst(root)
			b.StopTimer()
			st = sim.Stats()
		}
		seqFrac := float64(st.SeqWrites) / float64(st.Writes)
		b.ReportMetric(seqFrac*100, "seq-writes-%")
		b.ReportMetric(float64(st.Writes), "disk-writes")
		b.ReportMetric(float64(st.SimTime.Milliseconds()), "sim-ms")
	})
}

// --- C9b: group commit amortization ---

// syncLatencyDev models a device whose cache flush has real latency (the
// reason batch commit exists, §2.2) and counts the flushes it performs.
type syncLatencyDev struct {
	blockdev.Device
	delay time.Duration
	syncs atomic.Int64
}

func (d *syncLatencyDev) Sync() error {
	d.syncs.Add(1)
	time.Sleep(d.delay)
	return d.Device.Sync()
}

// BenchmarkC9bGroupCommitAmortization measures device syncs per durable
// commit as committer concurrency grows. The paper amortizes durability
// with a periodic batch commit; group commit extends that to fsync-like
// callers — one leader's sync covers every committer that arrived while
// it was in flight, so syncs/commit falls below 1 as concurrency rises.
func BenchmarkC9bGroupCommitAmortization(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			mem := blockdev.NewMem(4096, 1024)
			if err := wal.Format(mem, 8, 512); err != nil {
				b.Fatal(err)
			}
			dev := &syncLatencyDev{Device: mem, delay: 100 * time.Microsecond}
			l, err := wal.Open(dev, 8, 512)
			if err != nil {
				b.Fatal(err)
			}
			procs := runtime.GOMAXPROCS(0)
			b.SetParallelism((gor + procs - 1) / procs)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				old := make([]byte, 64)
				new := make([]byte, 64)
				for pb.Next() {
					tx := l.Begin()
					if _, err := tx.Update(1, 0, old, new); err != nil {
						b.Fatal(err)
					}
					lsn, err := tx.Commit()
					if err != nil {
						b.Fatal(err)
					}
					if err := l.Flush(lsn); err != nil {
						b.Fatal(err)
					}
					if l.Used() > l.Capacity()/2 {
						if err := l.Checkpoint(l.Head()); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			b.StopTimer()
			st := l.LogStats()
			commits := float64(b.N)
			b.ReportMetric(float64(dev.syncs.Load())/commits, "syncs/commit")
			b.ReportMetric(float64(st.SyncsSaved)/commits, "syncs-saved/commit")
		})
	}
}

// --- C10: diskless client ---

// BenchmarkC10DisklessClient runs the same cached-read workload through
// the in-memory (diskless, §4.2) and disk-backed caches.
func BenchmarkC10DisklessClient(b *testing.B) {
	run := func(b *testing.B, cacheDir string) {
		cell := NewCell()
		srv, _ := cell.AddServer("fs1", 64<<20)
		srv.CreateVolume("v", 0)
		var cl *Client
		var err error
		if cacheDir == "" {
			cl, err = cell.NewClient("ws", SuperUser)
		} else {
			cl, err = cell.NewClientWithCacheDir("ws", SuperUser, cacheDir)
		}
		if err != nil {
			b.Fatal(err)
		}
		defer cl.Close()
		ctx := Superuser()
		fsys, _ := cl.Mount("v")
		root, _ := fsys.Root()
		f, _ := root.Create(ctx, "data", 0o644)
		payload := make([]byte, 256*1024)
		if _, err := f.Write(ctx, payload, 0); err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 4096)
		if _, err := f.Read(ctx, buf, 0); err != nil { // warm
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := int64(i%64) * 4096
			if _, err := f.Read(ctx, buf, off); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("diskless-memory", func(b *testing.B) { run(b, "") })
	b.Run("disk-cache", func(b *testing.B) { run(b, b.TempDir()) })
}

// --- C3b: latency amplification ---

// BenchmarkC3bLatencyAmplification repeats the C3 read-mostly workload
// over a simulated 5 ms one-way network. Token caching makes reads
// latency-free after warmup; NFS pays a round trip per expired window —
// the "long-haul operation" case NCS 2.0 existed for, and the reason the
// paper lists low network load among its design goals.
func BenchmarkC3bLatencyAmplification(b *testing.B) {
	const reads = 30
	lat := 5 * time.Millisecond
	b.Run("decorum-5ms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			cell.SetRPCOptions(rpc.Options{Latency: lat})
			srv, _ := cell.AddServer("fs1", 16<<20)
			srv.CreateVolume("v", 0)
			cl, _ := cell.NewClient("r", SuperUser)
			ctx := Superuser()
			fsys, _ := cl.Mount("v")
			root, _ := fsys.Root()
			f, _ := root.Create(ctx, "shared", 0o644)
			f.Write(ctx, []byte("content"), 0)
			buf := make([]byte, 7)
			f.Read(ctx, buf, 0) // warm
			b.StartTimer()
			for j := 0; j < reads; j++ {
				if _, err := f.Read(ctx, buf, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			cl.Close()
		}
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/30reads")
	})
	b.Run("nfs-5ms", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cell := NewCell()
			srv, _ := cell.AddServer("fs1", 16<<20)
			vol, _ := srv.CreateVolume("v", 0)
			conn, _ := cell.Dial("fs1")
			nfs, err := nfsmode.Dial("r", conn, rpc.Options{Latency: lat})
			if err != nil {
				b.Fatal(err)
			}
			now := time.Unix(0, 0)
			nfs.Clock = func() time.Time { return now }
			root, _ := nfs.Root(vol.ID)
			fid, _ := nfs.Create(root, "shared", 0o644)
			nfs.Write(fid, []byte("content"), 0)
			buf := make([]byte, 7)
			nfs.Read(fid, buf, 0)
			b.StartTimer()
			for j := 0; j < reads; j++ {
				now = now.Add(4 * time.Second)
				if _, err := nfs.Read(fid, buf, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			nfs.Close()
		}
		b.ReportMetric(float64(b.Elapsed().Milliseconds())/float64(b.N), "ms/30reads")
	})
}
