module decorum

go 1.22
