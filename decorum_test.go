package decorum

import (
	"bytes"
	"testing"
)

func TestCellQuickstart(t *testing.T) {
	cell := NewCell()
	cell.EnableLockChecker()
	srv, err := cell.AddServer("fs1", 32<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CreateVolume("user.alice", 0); err != nil {
		t.Fatal(err)
	}
	cl, err := cell.NewClient("ws1", SuperUser)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fsys, err := cl.Mount("user.alice")
	if err != nil {
		t.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create(Superuser(), "hello.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, decorum")
	if _, err := f.Write(Superuser(), msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := f.Read(Superuser(), got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	if v := cell.Violations(); len(v) != 0 {
		t.Fatalf("lock violations: %v", v)
	}
}

func TestCellTwoServersTwoClients(t *testing.T) {
	cell := NewCell()
	s1, err := cell.AddServer("fs1", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cell.AddServer("fs2", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.CreateVolume("proj.a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.CreateVolume("proj.b", 0); err != nil {
		t.Fatal(err)
	}
	a, _ := cell.NewClient("wsA", SuperUser)
	b, _ := cell.NewClient("wsB", SuperUser)
	defer a.Close()
	defer b.Close()
	// Client A uses both volumes (two servers, one namespace through the
	// VLDB); client B shares with A on proj.a.
	fa, err := a.Mount("proj.a")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := a.Mount("proj.b")
	if err != nil {
		t.Fatal(err)
	}
	rootA, _ := fa.Root()
	rootB, _ := fb.Root()
	if _, err := rootA.Create(Superuser(), "on-fs1", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rootB.Create(Superuser(), "on-fs2", 0o644); err != nil {
		t.Fatal(err)
	}
	fShared, err := b.Mount("proj.a")
	if err != nil {
		t.Fatal(err)
	}
	rootShared, _ := fShared.Root()
	if _, err := rootShared.Lookup(Superuser(), "on-fs1"); err != nil {
		t.Fatalf("B cannot see A's file: %v", err)
	}
}

func TestVolumeMoveBetweenServers(t *testing.T) {
	cell := NewCell()
	s1, _ := cell.AddServer("fs1", 16<<20)
	s2, _ := cell.AddServer("fs2", 16<<20)
	info, err := s1.CreateVolume("movable", 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := cell.NewClient("ws", SuperUser)
	defer cl.Close()
	fsys, _ := cl.Mount("movable")
	root, _ := fsys.Root()
	f, _ := root.Create(Superuser(), "data", 0o644)
	if _, err := f.Write(Superuser(), []byte("precious"), 0); err != nil {
		t.Fatal(err)
	}

	// Move the volume (§3.6): dump at fs1, restore at fs2, delete at fs1.
	if err := s1.MoveVolume(info.ID, "fs2"); err != nil {
		t.Fatal(err)
	}
	// Repoint the VLDB (what vos does after a move).
	cell.VLDB().Register(vldbEntryFor(info.ID, "movable", "fs2"))

	// A fresh client reaches the volume at its new home; the data and the
	// volume ID survived.
	cl2, _ := cell.NewClient("ws2", SuperUser)
	defer cl2.Close()
	fsys2, err := cl2.Mount("movable")
	if err != nil {
		t.Fatal(err)
	}
	root2, err := fsys2.Root()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := root2.Lookup(Superuser(), "data")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if _, err := f2.Read(Superuser(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "precious" {
		t.Fatalf("moved volume has %q", got)
	}
	// The old server no longer has it.
	if _, err := s2.VolumeOps().Mount(info.ID); err != nil {
		t.Fatalf("target server missing volume: %v", err)
	}
	if _, err := s1.VolumeOps().Mount(info.ID); err == nil {
		t.Fatal("source server still has the volume")
	}
}

func TestExportNativeFFS(t *testing.T) {
	// The §1 interoperability story end-to-end through the facade cell:
	// a server exports a Berkeley-FFS-style file system alongside its
	// Episode aggregate, and DEcorum clients get token-coherent access.
	cell := NewCell()
	srv, _ := cell.AddServer("fs1", 16<<20)
	ffsFS := newTestFFS(t)
	const ffsVol = VolumeID(9000)
	srv.ExportFS(ffsVol, ffsFS)
	cell.VLDB().Register(vldbEntryFor(ffsVol, "native.ffs", "fs1"))

	a, _ := cell.NewClient("wsA", SuperUser)
	b, _ := cell.NewClient("wsB", SuperUser)
	defer a.Close()
	defer b.Close()
	fa, err := a.Mount("native.ffs")
	if err != nil {
		t.Fatal(err)
	}
	rootA, err := fa.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := rootA.Create(Superuser(), "on-ffs", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(Superuser(), []byte("ffs-data"), 0); err != nil {
		t.Fatal(err)
	}
	// Second client sees it with full coherence.
	fb, _ := b.Mount("native.ffs")
	rootB, _ := fb.Root()
	fB, err := rootB.Lookup(Superuser(), "on-ffs")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if _, err := fB.Read(Superuser(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ffs-data" {
		t.Fatalf("B read %q from exported FFS", got)
	}
}
