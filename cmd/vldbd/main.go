// vldbd is the volume location database daemon (§3.4): the global
// replicated database mapping volumes to file servers.
//
//	vldbd -listen :7100
//	vldbd -listen :7101 -peer host:7100      # a second replica
//
// Register entries with vldbreg (or programmatically); clients resolve
// volumes by name or ID through any replica.
package main

import (
	"flag"
	"log"
	"net"
	"strings"

	"decorum/internal/rpc"
	"decorum/internal/vldb"
)

func main() {
	listen := flag.String("listen", ":7100", "TCP address to serve")
	peers := flag.String("peer", "", "comma-separated other replicas to push writes to")
	index := flag.Int("index", 0, "replica index (ID-space partitioning)")
	count := flag.Int("count", 1, "replica count")
	flag.Parse()

	s := vldb.NewServer(*index, *count)
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		conn, err := net.Dial("tcp", p)
		if err != nil {
			log.Printf("peer %s unreachable (will not receive pushes): %v", p, err)
			continue
		}
		s.AddPeer(conn, rpc.Options{})
		log.Printf("pushing writes to replica %s", p)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("vldbd serving on %s (replica %d of %d)", *listen, *index, *count)
	if err := s.Serve(l, rpc.Options{}); err != nil {
		log.Fatal(err)
	}
}
