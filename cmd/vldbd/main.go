// vldbd is the volume location database daemon (§3.4): the global
// replicated database mapping volumes to file servers.
//
//	vldbd -listen :7100
//	vldbd -listen :7101 -peer host:7100      # a second replica
//
// Register entries with vldbreg (or programmatically); clients resolve
// volumes by name or ID through any replica.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"strings"

	"decorum/internal/obs"
	"decorum/internal/rpc"
	"decorum/internal/vldb"
)

func main() {
	listen := flag.String("listen", ":7100", "TCP address to serve")
	peers := flag.String("peer", "", "comma-separated other replicas to push writes to")
	index := flag.Int("index", 0, "replica index (ID-space partitioning)")
	count := flag.Int("count", 1, "replica count")
	status := flag.String("statusaddr", "", "HTTP address for the JSON metrics/trace endpoint (empty disables)")
	flag.Parse()

	var reg *obs.Registry
	if *status != "" {
		reg = obs.NewRegistry()
		sl, err := net.Listen("tcp", *status)
		if err != nil {
			log.Fatalf("status listener: %v", err)
		}
		go func() {
			log.Printf("status endpoint on http://%s/ (?pretty=1 to indent)", sl.Addr())
			if err := http.Serve(sl, obs.Handler(reg)); err != nil {
				log.Printf("status endpoint: %v", err)
			}
		}()
	}

	s := vldb.NewServer(*index, *count)
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		conn, err := net.Dial("tcp", p)
		if err != nil {
			log.Printf("peer %s unreachable (will not receive pushes): %v", p, err)
			continue
		}
		s.AddPeer(conn, rpc.Options{Metrics: reg})
		log.Printf("pushing writes to replica %s", p)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("vldbd serving on %s (replica %d of %d)", *listen, *index, *count)
	if err := s.Serve(l, rpc.Options{Metrics: reg}); err != nil {
		log.Fatal(err)
	}
}
