// Command dfsvet runs the DEcorum-specific static analyzers (see
// internal/lint): waldiscipline, lockcheck, errcheck-io, errclass,
// goleak, and obscheck.
//
// Usage:
//
//	go run ./cmd/dfsvet [-json] [-analyzers list] [packages]
//
// Packages default to ./... and accept go-style patterns. -analyzers
// takes a comma-separated subset (e.g. -analyzers lockcheck,errclass);
// by default every analyzer runs. Exit status is 0 when the tree is
// clean, 1 when there are findings, 2 on load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"decorum/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	analyzers := flag.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	dirs, err := lint.ExpandPatterns(wd, patterns)
	if err != nil {
		fatal(err)
	}
	var cfg *lint.Config
	if *analyzers != "" {
		cfg = lint.DefaultConfig()
		for _, name := range strings.Split(*analyzers, ",") {
			if name = strings.TrimSpace(name); name != "" {
				cfg.Analyzers = append(cfg.Analyzers, name)
			}
		}
	}
	diags, err := lint.Run(cfg, wd, dirs)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dfsvet:", err)
	os.Exit(2)
}
