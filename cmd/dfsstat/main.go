// dfsstat reads the JSON metrics endpoint a daemon exposes behind
// -statusaddr (dfsd or vldbd) and prints it for humans:
//
//	dfsstat -addr localhost:7080              # one-shot dump
//	dfsstat -addr localhost:7080 -watch 1s    # live view with per-second rates
//	dfsstat -addr localhost:7080 -trace 1f3a  # spans of one trace (hex prefix ok)
//	dfsstat -addr localhost:7080 -json        # raw JSON passthrough
//	dfsstat -addr localhost:7080 -check       # exit 0 iff the dump is well-formed
//
// The -check mode backs `make obs-smoke`: it validates that the endpoint
// returns parseable JSON with the counter/histogram sections present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"decorum/internal/obs"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:7080", "host:port of a daemon's -statusaddr endpoint")
		watch   = flag.Duration("watch", 0, "refresh interval; with it, counters show per-second rates")
		trace   = flag.String("trace", "", "print only spans whose trace ID starts with this hex prefix")
		rawJSON = flag.Bool("json", false, "print the raw JSON dump and exit")
		check   = flag.Bool("check", false, "validate the dump shape and exit (0 = well-formed)")
	)
	flag.Parse()
	url := "http://" + *addr + "/"

	if *check {
		if err := checkDump(url); err != nil {
			fmt.Fprintf(os.Stderr, "dfsstat: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("ok: %s serves a well-formed metrics dump\n", url)
		return
	}
	if *rawJSON {
		body, err := fetchRaw(url + "?pretty=1")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(body)
		return
	}
	if *trace != "" {
		d, err := fetch(url)
		if err != nil {
			fatal(err)
		}
		printTrace(d, strings.ToLower(*trace))
		return
	}

	prev, err := fetch(url)
	if err != nil {
		fatal(err)
	}
	if *watch <= 0 {
		print(prev, nil, 0)
		return
	}
	for {
		time.Sleep(*watch)
		cur, err := fetch(url)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n-- %s --\n", time.Now().Format("15:04:05"))
		print(cur, prev, *watch)
		prev = cur
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dfsstat: %v\n", err)
	os.Exit(1)
}

func fetchRaw(url string) ([]byte, error) {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

func fetch(url string) (*obs.Dump, error) {
	body, err := fetchRaw(url)
	if err != nil {
		return nil, err
	}
	var d obs.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		return nil, fmt.Errorf("decode %s: %v", url, err)
	}
	return &d, nil
}

// checkDump is the obs-smoke validation: the endpoint must answer with
// JSON that decodes into the Dump shape and carries the counters and
// histograms sections (they may be empty maps but must be present).
func checkDump(url string) error {
	body, err := fetchRaw(url)
	if err != nil {
		return err
	}
	var shape map[string]json.RawMessage
	if err := json.Unmarshal(body, &shape); err != nil {
		return fmt.Errorf("endpoint did not return JSON: %v", err)
	}
	for _, key := range []string{"counters", "histograms"} {
		if _, ok := shape[key]; !ok {
			return fmt.Errorf("dump is missing the %q section", key)
		}
	}
	var d obs.Dump
	if err := json.Unmarshal(body, &d); err != nil {
		return fmt.Errorf("dump does not match the obs.Dump shape: %v", err)
	}
	return nil
}

func print(d, prev *obs.Dump, interval time.Duration) {
	names := make([]string, 0, len(d.Counters))
	for n := range d.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Println("counters:")
		for _, n := range names {
			v := d.Counters[n]
			if prev != nil && interval > 0 {
				rate := float64(v-prev.Counters[n]) / interval.Seconds()
				fmt.Printf("  %-34s %12d  %10.1f/s\n", n, v, rate)
			} else {
				fmt.Printf("  %-34s %12d\n", n, v)
			}
		}
	}
	if len(d.Gauges) > 0 {
		names = names[:0]
		for n := range d.Gauges {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("gauges:")
		for _, n := range names {
			fmt.Printf("  %-34s %12d\n", n, d.Gauges[n])
		}
	}
	printPipeline(d)
	printWire(d)
	printStriping(d)
	printIntegrity(d)
	printRecovery(d)
	if len(d.Histograms) > 0 {
		names = names[:0]
		for n := range d.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("latency (count / mean / p50 / p90 / p99):")
		for _, n := range names {
			h := d.Histograms[n]
			fmt.Printf("  %-34s %8d  %s %s %s %s\n", n, h.Count,
				dur(h.MeanNs), dur(h.P50Ns), dur(h.P90Ns), dur(h.P99Ns))
		}
	}
	if len(d.Info) > 0 {
		names = names[:0]
		for n := range d.Info {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println("info:")
		for _, n := range names {
			b, _ := json.Marshal(d.Info[n])
			fmt.Printf("  %-34s %s\n", n, b)
		}
	}
	if len(d.Spans) > 0 {
		fmt.Printf("spans: %d recent (use -trace <id> to follow one)\n", len(d.Spans))
	}
}

// printPipeline derives a summary of the client data-path pipeline
// (sequential read-ahead and parallel write-back) from the raw counters
// when the dump comes from a cache manager.
func printPipeline(d *obs.Dump) {
	issued, ok := d.Counters["client.prefetch_issued"]
	if !ok {
		return
	}
	hits := d.Counters["client.prefetch_hits"]
	waste := d.Counters["client.prefetch_waste"]
	cancels := d.Counters["client.prefetch_cancels"]
	var hitRate float64
	if issued > 0 {
		hitRate = 100 * float64(hits) / float64(issued)
	}
	fmt.Println("client pipeline:")
	fmt.Printf("  prefetch: issued %d, hit %d (%.1f%%), wasted %d, cancelled %d\n",
		issued, hits, hitRate, waste, cancels)
	fmt.Printf("  in flight: %d prefetches, %d store-backs\n",
		d.Gauges["client.prefetch_inflight"], d.Gauges["client.store_inflight"])
}

// printWire summarizes the RPC transport when the dump carries wire
// counters: total bytes each way, the frame-size distribution, and how
// much bulk traffic rode the binary lane vs falling back to gob
// against older peers.
func printWire(d *obs.Dump) {
	in, ok := d.Counters["rpc.bytes_in"]
	if !ok {
		return
	}
	out := d.Counters["rpc.bytes_out"]
	fmt.Println("wire:")
	fmt.Printf("  bytes: %s in, %s out\n", mb(in), mb(out))
	fmt.Printf("  binary lane: %d frames sent, %d received, %d gob fallbacks\n",
		d.Counters["rpc.lane_bin_sent"],
		d.Counters["rpc.lane_bin_received"],
		d.Counters["rpc.lane_fallbacks"])
	if h, ok := d.Histograms["rpc.frame_bytes"]; ok && h.Count > 0 {
		fmt.Printf("  frames: %d, mean %s, p50 %s, p99 %s\n",
			h.Count, mb(uint64(h.MeanNs)), mb(uint64(h.P50Ns)), mb(uint64(h.P99Ns)))
	}
}

// mb renders a byte count with a binary-unit suffix.
func mb(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(v)/(1<<10))
	}
	return fmt.Sprintf("%d B", v)
}

// printStriping summarizes the striped-volume data path when the dump
// comes from a cache manager that has touched a striped volume: member
// fan-out, parity writes, and how often the degraded (reconstruction)
// paths ran.
func printStriping(d *obs.Dump) {
	fanout, ok := d.Counters["stripe.fanout_fetches"]
	if !ok {
		return
	}
	if fanout == 0 && d.Counters["stripe.parity_writes"] == 0 {
		return // counters registered but no striped volume touched
	}
	fmt.Println("striping:")
	fmt.Printf("  fan-out fetches %d, parity writes %d\n",
		fanout, d.Counters["stripe.parity_writes"])
	fmt.Printf("  degraded: %d reads, %d writes\n",
		d.Counters["stripe.degraded_reads"], d.Counters["stripe.degraded_writes"])
	if h, ok := d.Histograms["stripe.reconstruct_ns"]; ok && h.Count > 0 {
		fmt.Printf("  reconstruct: %d chunks, mean %s, p99 %s\n",
			h.Count, dur(h.MeanNs), dur(h.P99Ns))
	}
}

// printIntegrity summarizes the end-to-end chunk integrity machinery
// when the dump comes from a verifying cache manager (or a replicator):
// chunks verified against their recorded leaf hashes, mismatches caught
// and re-fetched, chunks a Merkle-diff refresh proved unchanged and
// skipped, and any wire frames rejected by the per-frame CRC.
func printIntegrity(d *obs.Dump) {
	verified, haveVerify := d.Counters["integrity.verified_chunks"]
	skipped, haveDiff := d.Counters["integrity.diff_skipped_chunks"]
	if !haveVerify && !haveDiff {
		return
	}
	if verified == 0 && skipped == 0 &&
		d.Counters["integrity.mismatches"] == 0 &&
		d.Counters["integrity.scrub_errors"] == 0 {
		return // counters registered but no hashed data touched
	}
	fmt.Println("integrity:")
	if haveVerify {
		fmt.Printf("  verified %d chunks, %d mismatches, %d re-fetches\n",
			verified, d.Counters["integrity.mismatches"], d.Counters["integrity.refetches"])
	}
	if haveDiff {
		fmt.Printf("  merkle diff: %d chunks skipped as unchanged\n", skipped)
	}
	if n, ok := d.Counters["integrity.scrub_errors"]; ok && n > 0 {
		fmt.Printf("  scrub: %d damaged chunks found\n", n)
	}
	if n := d.Counters["rpc.frame_checksum_errors"]; n > 0 {
		fmt.Printf("  wire: %d frames rejected by CRC\n", n)
	}
	if h, ok := d.Histograms["integrity.verify_ns"]; ok && h.Count > 0 {
		fmt.Printf("  verify: %d hashes, mean %s, p99 %s\n",
			h.Count, dur(h.MeanNs), dur(h.P99Ns))
	}
}

// printRecovery summarizes token state recovery (§6.2). A server dump
// shows the grace window and reclaim tallies; a cache-manager dump
// shows reconnects, reclaimed tokens, and replayed write-back.
func printRecovery(d *obs.Dump) {
	epoch, server := d.Gauges["recovery.epoch"]
	_, client := d.Counters["recovery.reconnects"]
	if !server && !client {
		return
	}
	fmt.Println("recovery:")
	if server {
		state := "open"
		if d.Gauges["recovery.in_grace"] != 0 {
			state = "grace (reclaims only)"
		}
		fmt.Printf("  epoch %d, window %s, %d hosts recovered\n",
			epoch, state, d.Gauges["recovery.recovered_hosts"])
		fmt.Printf("  reclaims: %d tokens re-established, %d rejected, %d grants deferred\n",
			d.Counters["recovery.reclaims"],
			d.Counters["recovery.reclaim_rejects"],
			d.Counters["recovery.grace_rejections"])
	}
	if client {
		fmt.Printf("  reconnects: %d, tokens reclaimed %d (%d conflicts), %d stale vnodes\n",
			d.Counters["recovery.reconnects"],
			d.Counters["recovery.reclaimed_tokens"],
			d.Counters["recovery.reclaim_conflicts"],
			d.Counters["recovery.stale_vnodes"])
		fmt.Printf("  write-back replayed: %d bytes\n", d.Counters["recovery.replayed_bytes"])
		if h, ok := d.Histograms["recovery.reconnect_ns"]; ok && h.Count > 0 {
			fmt.Printf("  reconnect latency: %d samples, mean %s, p99 %s\n",
				h.Count, dur(h.MeanNs), dur(h.P99Ns))
		}
	}
}

func printTrace(d *obs.Dump, prefix string) {
	n := 0
	for _, s := range d.Spans {
		if !strings.HasPrefix(s.Trace, prefix) {
			continue
		}
		n++
		fmt.Printf("%s  span=%s parent=%-16s %-28s %s  +%s\n",
			s.Trace, s.Span, s.Parent, s.Name, s.Start, dur(s.DurUs*1e3))
	}
	if n == 0 {
		fmt.Printf("no spans with trace prefix %q in the ring (it holds the most recent %d)\n", prefix, len(d.Spans))
	}
}

// dur renders a nanosecond quantity at a human scale.
func dur(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%7.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%6.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%6.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%6.0fns", ns)
	}
}
