// vos is the volume administration tool (§3.6's volume server client):
//
//	vos list    -server host:7000
//	vos create  -server host:7000 -name proj.www
//	vos clone   -server host:7000 -id 3 -name proj.www.backup
//	vos dump    -server host:7000 -id 3 -o vol.dump
//	vos restore -server host:7000 -i vol.dump [-name newname]
//	vos delete  -server host:7000 -id 3
//	vos move    -server host:7000 -id 3 -target otherhost:7000
//	vos offline -server host:7000 -id 3 [-online]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	flags := flag.NewFlagSet(cmd, flag.ExitOnError)
	serverAddr := flags.String("server", "", "file server address")
	name := flags.String("name", "", "volume name")
	id := flags.Uint64("id", 0, "volume id")
	out := flags.String("o", "", "output file (dump)")
	in := flags.String("i", "", "input file (restore)")
	target := flags.String("target", "", "target server (move)")
	online := flags.Bool("online", false, "bring back online instead (offline)")
	quota := flags.Int64("quota", 0, "quota in blocks (create)")
	flags.Parse(os.Args[2:])
	if *serverAddr == "" {
		log.Fatalf("vos %s: -server is required", cmd)
	}

	conn, err := net.Dial("tcp", *serverAddr)
	if err != nil {
		log.Fatal(err)
	}
	peer := rpc.NewPeer(conn, rpc.Options{})
	peer.Start()
	defer peer.Close()

	// Admin RPCs surface classified errors (retryable vs fatal) like any
	// other boundary crossing, so a busy volume prints fs.ErrBusy rather
	// than a raw wire string.
	call := func(method string, args, reply any) error {
		return proto.DecodeErr(peer.Call(method, args, reply))
	}

	switch cmd {
	case "list":
		var reply proto.VolListReply
		check(call(proto.VList, struct{}{}, &reply))
		fmt.Printf("%-6s %-24s %-4s %s\n", "ID", "NAME", "RO", "CLONE-OF")
		for _, v := range reply.Volumes {
			fmt.Printf("%-6d %-24s %-4v %d\n", v.ID, v.Name, v.ReadOnly, v.CloneOf)
		}
	case "create":
		var reply proto.VolCreateReply
		check(call(proto.VCreate, proto.VolCreateArgs{
			Name: *name, Quota: *quota, ID: fs.VolumeID(*id),
		}, &reply))
		fmt.Printf("created volume %q id %d\n", reply.Info.Name, reply.Info.ID)
	case "clone":
		var reply proto.VolCreateReply
		check(call(proto.VClone, proto.VolIDArgs{ID: fs.VolumeID(*id), Name: *name}, &reply))
		fmt.Printf("cloned %d -> %q id %d (read-only snapshot)\n", *id, reply.Info.Name, reply.Info.ID)
	case "dump":
		var reply proto.VolDumpReply
		check(call(proto.VDump, proto.VolIDArgs{ID: fs.VolumeID(*id)}, &reply))
		check(os.WriteFile(*out, reply.Dump, 0o600))
		fmt.Printf("dumped volume %d: %d bytes -> %s\n", *id, len(reply.Dump), *out)
	case "restore":
		data, err := os.ReadFile(*in)
		check(err)
		var reply proto.VolCreateReply
		check(call(proto.VRestore, proto.VolRestoreArgs{Dump: data, Name: *name}, &reply))
		fmt.Printf("restored volume %q id %d\n", reply.Info.Name, reply.Info.ID)
	case "delete":
		check(call(proto.VDelete, proto.VolIDArgs{ID: fs.VolumeID(*id)}, &proto.VolListReply{}))
		fmt.Printf("deleted volume %d\n", *id)
	case "move":
		check(call(proto.VMoveTo, proto.VolMoveArgs{
			ID: fs.VolumeID(*id), TargetAddr: *target,
		}, &proto.VolListReply{}))
		fmt.Printf("moved volume %d -> %s\n", *id, *target)
	case "offline":
		check(call(proto.VSetOffline, proto.VolIDArgs{
			ID: fs.VolumeID(*id), Offline: !*online,
		}, &proto.VolListReply{}))
		fmt.Printf("volume %d offline=%v\n", *id, !*online)
	default:
		usage()
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(proto.DecodeErr(err))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vos {list|create|clone|dump|restore|delete|move|offline} -server host:port [flags]")
	os.Exit(2)
}
