// Command benchsnap runs the concurrency benchmarks (the parallel WAL,
// buffer, and episode variants plus the C9b experiment) and writes their
// results as a JSON snapshot, so a PR can record the numbers it was
// validated with and later runs can diff against them.
//
// Usage:
//
//	go run ./cmd/benchsnap -out BENCH_PR2.json
//	go run ./cmd/benchsnap -out BENCH_PR3.json -bench 'Obs|Parallel|C9b' \
//	    -packages ./internal/obs,./internal/wal,./internal/buffer,./internal/episode,.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// result is one benchmark line, e.g.
//
//	BenchmarkDurableCommitParallel/goroutines=16  2000  128965 ns/op  0.118 syncs/commit
type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type snapshot struct {
	Generated string   `json:"generated"`
	Host      string   `json:"host"`
	Command   string   `json:"command"`
	Results   []result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_PR2.json", "output file")
	benchtime := flag.String("benchtime", "2000x", "go test -benchtime value")
	bench := flag.String("bench", "Parallel|C9b", "go test -bench regexp")
	packages := flag.String("packages", "./internal/wal,./internal/buffer,./internal/episode,.",
		"comma-separated packages to benchmark")
	appendOut := flag.Bool("append", false,
		"merge results into an existing -out snapshot (benchmarks that must "+
			"run in separate processes, e.g. one per stripe width, call "+
			"benchsnap once per slice)")
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *bench,
		"-benchtime", *benchtime,
	}
	for _, p := range strings.Split(*packages, ",") {
		if p = strings.TrimSpace(p); p != "" {
			args = append(args, p)
		}
	}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: go test: %v\n", err)
		os.Exit(1)
	}

	host, _ := os.Hostname()
	snap := snapshot{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Host:      host,
		Command:   "go " + strings.Join(args, " "),
	}
	pkg := ""
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			continue
		}
		r.Package = pkg
		snap.Results = append(snap.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchsnap: no benchmark results parsed")
		os.Exit(1)
	}
	if *appendOut {
		if prev, err := os.ReadFile(*out); err == nil {
			var old snapshot
			if err := json.Unmarshal(prev, &old); err != nil {
				fmt.Fprintf(os.Stderr, "benchsnap: -append: %s: %v\n", *out, err)
				os.Exit(1)
			}
			snap.Command = old.Command + " && " + snap.Command
			snap.Results = append(old.Results, snap.Results...)
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: wrote %d results to %s\n", len(snap.Results), *out)
}

// parseLine splits "BenchmarkX-8  N  <value> <unit> [<value> <unit>]...".
func parseLine(line string) (result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return result{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// strip the -GOMAXPROCS suffix
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[f[i+1]] = v
	}
	return r, true
}
