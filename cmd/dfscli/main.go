// dfscli is a small client shell over the DEcorum cache manager: it
// mounts a volume from a file server and runs one command against it.
//
//	dfscli -server host:7000 -volume 1 ls /
//	dfscli -server host:7000 -volume 1 cat /docs/readme
//	dfscli -server host:7000 -volume 1 put /docs/readme local.txt
//	dfscli -server host:7000 -volume 1 get /docs/readme local.txt
//	dfscli -server host:7000 -volume 1 mkdir /docs
//	dfscli -server host:7000 -volume 1 rm /docs/readme
//	dfscli -server host:7000 -volume 1 stat /docs/readme
//
// The smoke command drives the token-recovery path end to end: it
// streams records into a file while an outside driver (make
// recovery-smoke) kill -9s and restarts the server underneath it, then
// verifies the data through a second, cache-cold client:
//
//	dfscli -server host:7000 -volume 1 smoke /stress/rec.dat
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"decorum/internal/client"
	"decorum/internal/fs"
	"decorum/internal/rpc"
	"decorum/internal/vfs"
	"decorum/internal/vldb"
)

func main() {
	serverAddr := flag.String("server", "", "file server address (or use -vldb)")
	vldbAddr := flag.String("vldb", "", "volume location database address")
	volume := flag.Uint64("volume", 0, "volume id")
	volName := flag.String("volname", "", "volume name (resolved through -vldb)")
	user := flag.Uint("user", 0, "user id to run as")
	flag.Parse()
	args := flag.Args()
	bad := len(args) == 0 ||
		(*serverAddr == "" && *vldbAddr == "") ||
		(*volume == 0 && *volName == "")
	if bad {
		fmt.Fprintln(os.Stderr, "usage: dfscli {-server host:port -volume N | -vldb host:port -volname NAME} {ls|cat|put|get|mkdir|rm|rmdir|stat|smoke} <path> [local]")
		os.Exit(2)
	}

	var locate client.Locator
	if *vldbAddr != "" {
		conn, err := net.Dial("tcp", *vldbAddr)
		if err != nil {
			log.Fatal(err)
		}
		locate = vldb.DialClient(conn, rpc.Options{})
	} else {
		sl := client.NewStaticLocator()
		sl.Add(fs.VolumeID(*volume), *volName, *serverAddr)
		locate = sl
	}
	newClient := func(name string) (*client.Client, error) {
		return client.New(client.Options{
			Name:   name,
			User:   fs.UserID(*user),
			Locate: locate,
			Dial:   func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) },
		})
	}
	mount := func(c *client.Client) (vfs.FileSystem, error) {
		if *volName != "" {
			return c.MountVolumeByName(*volName)
		}
		return c.MountVolume(fs.VolumeID(*volume))
	}
	cl, err := newClient("dfscli")
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	fsys, err := mount(cl)
	if err != nil {
		log.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		log.Fatal(err)
	}
	ctx := &vfs.Context{User: fs.UserID(*user)}

	cmd := args[0]
	path := ""
	if len(args) > 1 {
		path = strings.Trim(args[1], "/")
	}
	switch cmd {
	case "ls":
		dir := root
		if path != "" {
			dir, err = vfs.Walk(ctx, root, path)
			check(err)
		}
		ents, err := dir.ReadDir(ctx)
		check(err)
		for _, e := range ents {
			fmt.Printf("%-8s %s\n", e.Type, e.Name)
		}
	case "cat":
		v, err := vfs.Walk(ctx, root, path)
		check(err)
		attr, err := v.Attr(ctx)
		check(err)
		buf := make([]byte, attr.Length)
		_, err = v.Read(ctx, buf, 0)
		check(err)
		os.Stdout.Write(buf)
	case "put":
		if len(args) < 3 {
			log.Fatal("put needs a local file")
		}
		data, err := os.ReadFile(args[2])
		check(err)
		dir, name := splitPath(ctx, root, path)
		v, err := dir.Lookup(ctx, name)
		if err != nil {
			v, err = dir.Create(ctx, name, 0o644)
			check(err)
		}
		_, err = v.Write(ctx, data, 0)
		check(err)
		n := int64(len(data))
		_, err = v.SetAttr(ctx, fs.AttrChange{Length: &n})
		check(err)
		fmt.Printf("wrote %d bytes to /%s\n", len(data), path)
	case "get":
		if len(args) < 3 {
			log.Fatal("get needs a local file")
		}
		v, err := vfs.Walk(ctx, root, path)
		check(err)
		attr, err := v.Attr(ctx)
		check(err)
		buf := make([]byte, attr.Length)
		_, err = v.Read(ctx, buf, 0)
		check(err)
		check(os.WriteFile(args[2], buf, 0o644))
		fmt.Printf("fetched %d bytes from /%s\n", len(buf), path)
	case "mkdir":
		dir, name := splitPath(ctx, root, path)
		_, err := dir.Mkdir(ctx, name, 0o755)
		check(err)
	case "rm":
		dir, name := splitPath(ctx, root, path)
		check(dir.Remove(ctx, name))
	case "rmdir":
		dir, name := splitPath(ctx, root, path)
		check(dir.Rmdir(ctx, name))
	case "stat":
		v, err := vfs.Walk(ctx, root, path)
		check(err)
		attr, err := v.Attr(ctx)
		check(err)
		fmt.Printf("fid:    %v\n", attr.FID)
		fmt.Printf("type:   %v\n", attr.Type)
		fmt.Printf("mode:   %o\n", attr.Mode)
		fmt.Printf("nlink:  %d\n", attr.Nlink)
		fmt.Printf("owner:  %d group: %d\n", attr.Owner, attr.Group)
		fmt.Printf("length: %d\n", attr.Length)
		fmt.Printf("dataversion: %d\n", attr.DataVersion)
	case "smoke":
		smoke(cl, root, ctx, path, newClient, mount)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}

const (
	smokeRecords = 80
	smokeRecSize = 64
	smokePace    = 50 * time.Millisecond
)

// smokeRecord renders record i as exactly smokeRecSize bytes, so the
// verifier can recompute the expected file contents from nothing.
func smokeRecord(i int) []byte {
	head := fmt.Sprintf("record %04d ", i)
	return []byte(head + strings.Repeat("x", smokeRecSize-len(head)-1) + "\n")
}

// smoke is the end-to-end exercise behind `make recovery-smoke`. It
// streams fixed-size records into a file with no per-record fsync — the
// data stays dirty in the cache manager — while the driver kill -9s the
// server and restarts it with -grace. The client is expected to ride
// through: reconnect, reclaim its tokens, replay the dirty chunks, and
// land every record. One final Fsync, then a second, cache-cold client
// re-reads the file and checks all bytes. Zero loss and at least one
// reconnect mean the §6.2 recovery path did its job.
func smoke(cl *client.Client, root vfs.Vnode, ctx *vfs.Context, path string,
	newClient func(string) (*client.Client, error),
	mount func(*client.Client) (vfs.FileSystem, error)) {
	dir, name := splitPath(ctx, root, path)
	v, err := dir.Create(ctx, name, 0o644)
	check(err)
	for i := 0; i < smokeRecords; i++ {
		_, err := v.Write(ctx, smokeRecord(i), int64(i*smokeRecSize))
		check(err)
		time.Sleep(smokePace)
	}
	length := int64(smokeRecords * smokeRecSize)
	_, err = v.SetAttr(ctx, fs.AttrChange{Length: &length})
	check(err)
	check(v.(interface{ Fsync() error }).Fsync())

	st := cl.Stats()
	if st.Reconnects == 0 {
		fmt.Fprintln(os.Stderr, "SMOKE FAIL: the client never lost its association — was the server restarted?")
		os.Exit(1)
	}

	// Verify through a fresh cache: a second client sees only what the
	// restarted server durably holds.
	cold, err := newClient("dfscli-verify")
	check(err)
	defer cold.Close()
	cfs, err := mount(cold)
	check(err)
	croot, err := cfs.Root()
	check(err)
	cv, err := vfs.Walk(ctx, croot, path)
	check(err)
	attr, err := cv.Attr(ctx)
	check(err)
	if attr.Length != length {
		fmt.Fprintf(os.Stderr, "SMOKE FAIL: length %d after recovery, want %d\n", attr.Length, length)
		os.Exit(1)
	}
	buf := make([]byte, length)
	_, err = cv.Read(ctx, buf, 0)
	check(err)
	for i := 0; i < smokeRecords; i++ {
		got := buf[i*smokeRecSize : (i+1)*smokeRecSize]
		if !bytes.Equal(got, smokeRecord(i)) {
			fmt.Fprintf(os.Stderr, "SMOKE FAIL: record %d corrupt after recovery: %q\n", i, got)
			os.Exit(1)
		}
	}
	fmt.Printf("SMOKE ok records=%d reconnects=%d reclaimed=%d replayed=%dB conflicts=%d\n",
		smokeRecords, st.Reconnects, st.ReclaimedTokens, st.ReplayedBytes, st.ReclaimConflicts)
}

func splitPath(ctx *vfs.Context, root vfs.Vnode, path string) (vfs.Vnode, string) {
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return root, path
	}
	dir, err := vfs.Walk(ctx, root, path[:i])
	check(err)
	return dir, path[i+1:]
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
