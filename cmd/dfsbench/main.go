// dfsbench drives the paper-reproduction experiments outside the Go test
// harness, printing compact tables. The authoritative harness is the
// benchmark suite (go test -bench=. .); this tool is for quick looks.
//
//	dfsbench -fig3          print the Figure 3 matrix
//	dfsbench -c1            recovery time sweep (Episode replay vs fsck)
//	dfsbench -c2            metadata traffic (Episode vs FFS)
//	dfsbench -all           everything
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/ffs"
	"decorum/internal/fs"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

func main() {
	fig3 := flag.Bool("fig3", false, "Figure 3 compatibility matrix")
	c1 := flag.Bool("c1", false, "C1: recovery vs fsck sweep")
	c2 := flag.Bool("c2", false, "C2: metadata disk traffic")
	all := flag.Bool("all", false, "run everything")
	flag.Parse()
	if !(*fig3 || *c1 || *c2 || *all) {
		flag.Usage()
		return
	}
	if *fig3 || *all {
		fmt.Println("== Figure 3: open-token compatibility ==")
		fmt.Print(token.RenderFigure3())
	}
	if *c1 || *all {
		runC1()
	}
	if *c2 || *all {
		runC2()
	}
}

func runC1() {
	fmt.Println("== C1: crash recovery, Episode log replay vs FFS fsck ==")
	fmt.Printf("%-14s %16s %16s %16s %16s\n", "fs size", "replay reads", "replay sim-time", "fsck reads", "fsck sim-time")
	for _, sz := range []struct {
		name   string
		blocks int64
		inodes uint32
		files  int
	}{
		{"16 MiB", 4096, 1024, 50},
		{"64 MiB", 16384, 4096, 200},
		{"256 MiB", 65536, 16384, 800},
	} {
		// Episode.
		epMem := blockdev.NewMem(4096, sz.blocks)
		epCrash := blockdev.NewCrash(epMem)
		agg, err := episode.Format(epCrash, episode.Options{})
		check(err)
		vol, err := agg.CreateVolume("v", 0)
		check(err)
		fsys, _ := agg.Mount(vol.ID)
		root, _ := fsys.Root()
		populate(root, sz.files)
		check(agg.Sync())
		for i := 0; i < 10; i++ {
			_, err := root.Create(vfs.Superuser(), fmt.Sprintf("tail%d", i), 0o644)
			check(err)
		}
		check(agg.Log().Sync())
		check(epCrash.Crash(blockdev.RandomSubset, rand.New(rand.NewSource(1))))
		epSim := blockdev.NewSim(epMem, blockdev.DefaultCostModel)
		_, err = episode.Open(epSim, episode.Options{})
		check(err)
		ep := epSim.Stats()

		// FFS.
		fMem := blockdev.NewMem(4096, sz.blocks)
		fCrash := blockdev.NewCrash(fMem)
		f, err := ffs.Format(fCrash, sz.inodes, 1)
		check(err)
		froot, _ := f.Root()
		populate(froot, sz.files)
		check(fCrash.Crash(blockdev.RandomSubset, rand.New(rand.NewSource(1))))
		fSim := blockdev.NewSim(fMem, blockdev.DefaultCostModel)
		_, err = ffs.Fsck(fSim)
		check(err)
		fk := fSim.Stats()

		fmt.Printf("%-14s %16d %16v %16d %16v\n",
			sz.name, ep.Reads, ep.SimTime, fk.Reads, fk.SimTime)
	}
	fmt.Println("(replay tracks the active log; fsck tracks the file system)")
}

func runC2() {
	fmt.Println("== C2: metadata-heavy workload, disk traffic ==")
	// Episode.
	epSim := blockdev.NewSim(blockdev.NewMem(4096, 16384), blockdev.DefaultCostModel)
	agg, err := episode.Format(epSim, episode.Options{})
	check(err)
	vol, _ := agg.CreateVolume("v", 0)
	fsys, _ := agg.Mount(vol.ID)
	root, _ := fsys.Root()
	epSim.ResetStats()
	metaBurst(root)
	check(agg.Sync())
	ep := epSim.Stats()
	// FFS.
	fSim := blockdev.NewSim(blockdev.NewMem(4096, 16384), blockdev.DefaultCostModel)
	f, err := ffs.Format(fSim, 2048, 1)
	check(err)
	froot, _ := f.Root()
	fSim.ResetStats()
	metaBurst(froot)
	check(f.Sync())
	fk := fSim.Stats()

	fmt.Printf("%-10s %12s %8s %14s %14s\n", "fs", "disk writes", "syncs", "seq-writes", "sim-time")
	fmt.Printf("%-10s %12d %8d %13.1f%% %14v\n", "episode", ep.Writes, ep.Syncs,
		100*float64(ep.SeqWrites)/float64(ep.Writes), ep.SimTime)
	fmt.Printf("%-10s %12d %8d %13.1f%% %14v\n", "ffs", fk.Writes, fk.Syncs,
		100*float64(fk.SeqWrites)/float64(fk.Writes), fk.SimTime)
}

func populate(root vfs.Vnode, n int) {
	ctx := vfs.Superuser()
	for i := 0; i < n; i++ {
		f, err := root.Create(ctx, fmt.Sprintf("f%05d", i), 0o644)
		check(err)
		_, err = f.Write(ctx, make([]byte, 4096), 0)
		check(err)
	}
}

func metaBurst(root vfs.Vnode) {
	ctx := vfs.Superuser()
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("w%03d", i)
		f, err := root.Create(ctx, name, 0o644)
		check(err)
		_, err = f.Write(ctx, make([]byte, 8192), 0)
		check(err)
		nl := int64(100)
		_, err = f.SetAttr(ctx, fs.AttrChange{Length: &nl})
		check(err)
		if i%2 == 0 {
			check(root.Remove(ctx, name))
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
