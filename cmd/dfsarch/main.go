// dfsarch renders the paper's Figures 1 and 2 — the component structure of
// the DEcorum server and client — annotated with the package implementing
// each box in this repository, and demonstrates the wiring by standing up
// a live in-process cell and tracing one write through the layers.
package main

import (
	"flag"
	"fmt"
	"log"

	"decorum"
	"decorum/internal/token"
)

const figure1 = `
Figure 1 — DEcorum file server structure          (implementation)
┌───────────────────────────────────────────────┐
│          generic system calls *               │  host Go code
├───────────────────────────────────────────────┤
│  protocol exporter        various servers     │  internal/server
│  (server procedures,      (volume server,     │  internal/server (vol.*)
│   host model,             authentication,     │  internal/auth
│   token manager)          replication,        │  internal/replication
│                           volume location DB) │  internal/vldb
├───────────────────────────────────────────────┤
│  Vnode glue layer (tokens + file locks)       │  internal/glue
├───────────────────────────────────────────────┤
│  VFS+ interface                               │  internal/vfs
├──────────────────────────┬────────────────────┤
│  Episode physical FS     │  native FS (FFS) * │  internal/episode, internal/ffs
│  (volumes, aggregates,   │                    │  internal/anode
│   buffer pkg + log)      │                    │  internal/buffer, internal/wal
├──────────────────────────┴────────────────────┤
│  disk device driver *                         │  internal/blockdev
└───────────────────────────────────────────────┘
   * = taken from the host system in the paper; simulated here
   RPC (NCS 2.0 *) ........................................ internal/rpc
`

const figure2 = `
Figure 2 — DEcorum client structure               (implementation)
┌───────────────────────────────────────────────┐
│          generic system calls *               │  application Go code
├───────────────────────────────────────────────┤
│  Vnode / VFS interface                        │  internal/vfs
├───────────────────────────────────────────────┤
│  vnode module (client vnodes)                 │  internal/client (cvnode)
├───────────────────────────────────────────────┤
│  directory layer (lookup caching)             │  internal/client (names)
├───────────────────────────────────────────────┤
│  cache layer (status + chunked data,          │  internal/client
│   disk-backed or in-memory/diskless)          │  (DiskStore / MemStore)
├───────────────────────────────────────────────┤
│  resource layer (connections, volume          │  internal/client +
│   location cache)                             │  internal/vldb
├───────────────────────────────────────────────┤
│  RPC (two-way: calls out, revocations in)     │  internal/rpc
└───────────────────────────────────────────────┘
`

func main() {
	fig3 := flag.Bool("fig3", false, "print only the Figure 3 token compatibility matrix")
	trace := flag.Bool("trace", true, "stand up a live cell and trace a shared write")
	flag.Parse()

	if *fig3 {
		fmt.Print(token.RenderFigure3())
		return
	}
	fmt.Print(figure1)
	fmt.Print(figure2)
	fmt.Println("\nFigure 3 — open-token compatibility matrix (from the live relation):")
	fmt.Print(token.RenderFigure3())

	if !*trace {
		return
	}
	fmt.Println("\n--- live trace: the §5.5 example through this wiring ---")
	cell := decorum.NewCell()
	srv, err := cell.AddServer("fs1", 16<<20)
	if err != nil {
		log.Fatal(err)
	}
	vol, _ := srv.CreateVolume("demo", 0)
	remote, _ := cell.NewClient("remote-ws", decorum.SuperUser)
	defer remote.Close()
	ctx := decorum.Superuser()
	fsys, _ := remote.Mount("demo")
	root, _ := fsys.Root()
	f, _ := root.Create(ctx, "file", 0o644)
	f.Write(ctx, []byte("remote write, cached under a data write token"), 0)
	fmt.Printf("1. remote client wrote; server tokens on the file:\n")
	for _, tok := range srv.TokenManager().HoldersOf(f.FID()) {
		fmt.Printf("     host %d holds %v %v\n", tok.HostID, tok.Types, tok.Range)
	}
	local, _ := srv.LocalFS(vol.ID)
	lroot, _ := local.Root()
	lf, _ := lroot.Lookup(ctx, "file")
	buf := make([]byte, 45)
	lf.Read(ctx, buf, 0)
	fmt.Printf("2. local VOP_RDWR read through the glue layer: %q\n", buf[:20])
	fmt.Printf("3. the read token revoked the client's write token (store-back: %d)\n",
		remote.Stats().StoreBacks)
	fmt.Printf("   remaining tokens:\n")
	for _, tok := range srv.TokenManager().HoldersOf(f.FID()) {
		fmt.Printf("     host %d holds %v %v\n", tok.HostID, tok.Types, tok.Range)
	}
	st := srv.TokenManager().Stats()
	fmt.Printf("   token manager totals: %d grants, %d revocations\n", st.Grants, st.Revocations)
}
