package main

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/client"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/obs"
	"decorum/internal/server"
	"decorum/internal/stripe"
	"decorum/internal/vfs"
)

// stripeCell is the multi-server cell for the stripe scenario: one
// primary holding the logical volume plus width+1 member servers, each
// with its own aggregate, all reachable over in-process pipes. Members
// can be killed to simulate a crashed stripe server.
type stripeCell struct {
	locate  *client.StaticLocator
	logical vfs.VolumeInfo
	lay     *stripe.Layout

	// aggs keeps each server's aggregate by address so the integrity
	// scenario can reach under a member and rot its disk directly.
	aggs map[string]*episode.Aggregate
	vols map[string]fs.VolumeID

	mu      sync.Mutex
	servers map[string]*server.Server
	dead    map[string]bool       // guarded by mu
	conns   map[string][]net.Conn // guarded by mu
}

const stripePrimary = "stripe-primary:7000"

func newStripeCell(width int) (*stripeCell, error) {
	c := &stripeCell{
		locate:  client.NewStaticLocator(),
		aggs:    map[string]*episode.Aggregate{},
		vols:    map[string]fs.VolumeID{},
		servers: map[string]*server.Server{},
		dead:    map[string]bool{},
		conns:   map[string][]net.Conn{},
	}
	newAgg := func() (*episode.Aggregate, error) {
		dev := blockdev.NewMem(4096, 4096)
		return episode.Format(dev, episode.Options{LogBlocks: 256, PoolSize: 512})
	}
	agg, err := newAgg()
	if err != nil {
		return nil, err
	}
	vol, err := agg.CreateVolumeWithID("user.striped", 0, 500)
	if err != nil {
		return nil, err
	}
	c.logical = vol
	c.aggs[stripePrimary] = agg
	c.vols[stripePrimary] = vol.ID
	c.servers[stripePrimary] = server.New(server.Options{Name: stripePrimary}, agg)
	c.locate.Add(vol.ID, "user.striped", stripePrimary)

	lay := &stripe.Layout{Width: width}
	for i := 0; i <= width; i++ {
		addr := fmt.Sprintf("stripe-m%d:7000", i)
		magg, err := newAgg()
		if err != nil {
			return nil, err
		}
		mvol, err := magg.CreateVolumeWithID(fmt.Sprintf("stripe.m%d", i), 0, fs.VolumeID(501+i))
		if err != nil {
			return nil, err
		}
		c.aggs[addr] = magg
		c.vols[addr] = mvol.ID
		c.servers[addr] = server.New(server.Options{Name: addr}, magg)
		lay.Members = append(lay.Members, stripe.Member{Addr: addr, Volume: mvol.ID})
	}
	if err := lay.Validate(vol.ID); err != nil {
		return nil, err
	}
	for i, m := range lay.Members {
		if err := c.servers[m.Addr].SetStripeMember(m.Volume, lay, i); err != nil {
			return nil, err
		}
	}
	c.lay = lay
	c.locate.SetLayout(vol.ID, lay)
	return c, nil
}

func (c *stripeCell) dial(addr string) (net.Conn, error) {
	c.mu.Lock()
	srv, ok := c.servers[addr]
	if !ok || c.dead[addr] {
		c.mu.Unlock()
		return nil, fmt.Errorf("stripe server %q unreachable", addr)
	}
	clientSide, serverSide := net.Pipe()
	c.conns[addr] = append(c.conns[addr], clientSide, serverSide)
	c.mu.Unlock()
	srv.Attach(serverSide)
	return clientSide, nil
}

// kill crashes one member: dials fail and live associations sever.
func (c *stripeCell) kill(addr string) {
	c.mu.Lock()
	c.dead[addr] = true
	conns := c.conns[addr]
	c.conns[addr] = nil
	c.mu.Unlock()
	for _, nc := range conns {
		nc.Close()
	}
}

func (c *stripeCell) client(name string) (*client.Client, vfs.Vnode, *obs.Registry, error) {
	reg := obs.NewRegistry()
	cl, err := client.New(client.Options{
		Name:   name,
		User:   fs.SuperUser,
		Dial:   c.dial,
		Locate: c.locate,
		Obs:    reg,
		// Calls against the killed member must fail fast into the
		// degraded path rather than waiting out a long recovery window.
		RecoveryTimeout:  250 * time.Millisecond,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	fsys, err := cl.MountVolume(c.logical.ID)
	if err != nil {
		cl.Close()
		return nil, nil, nil, err
	}
	root, err := fsys.Root()
	if err != nil {
		cl.Close()
		return nil, nil, nil, err
	}
	return cl, root, reg, nil
}

// runStripe is the kill-one-server drill: write half the file healthy,
// crash a data member, write the rest degraded, then byte-verify the
// whole file through a cache-cold client with the member still down.
func (l *load) runStripe() error {
	width := l.cfg.stripeWidth
	if width < 2 {
		width = 2
	}
	cell, err := newStripeCell(width)
	if err != nil {
		return fmt.Errorf("stripe cell: %w", err)
	}
	chunk := int(client.ChunkSize)
	size := 4 * width * chunk // four full rows
	data := pattern(7, size)

	writer, root, wreg, err := cell.client("stripe-writer")
	if err != nil {
		return fmt.Errorf("writer: %w", err)
	}
	defer writer.Close()
	f, err := root.Create(ctx(), "stripe.dat", 0o644)
	if err != nil {
		return err
	}

	// Phase 1: first half lands with every member healthy.
	if _, err := f.Write(ctx(), data[:size/2], 0); err != nil {
		return fmt.Errorf("healthy write: %w", err)
	}
	if err := writer.FlushAll(); err != nil {
		return fmt.Errorf("healthy flush: %w", err)
	}
	wc := wreg.Snapshot().Counters
	if wc["stripe.parity_writes"] == 0 {
		return fmt.Errorf("healthy flush wrote no parity")
	}
	if wc["stripe.degraded_writes"] != 0 || wc["stripe.degraded_reads"] != 0 {
		return fmt.Errorf("healthy phase took a degraded path")
	}

	// Phase 2: kill chunk 0's data owner mid-run; the second half of the
	// file overlaps rows it owns, so those spans must land in parity.
	dead := cell.lay.DataMember(0)
	cell.kill(cell.lay.Members[dead].Addr)
	if _, err := f.Write(ctx(), data[size/2:], int64(size/2)); err != nil {
		return fmt.Errorf("degraded write: %w", err)
	}
	if err := writer.FlushAll(); err != nil {
		return fmt.Errorf("degraded flush: %w", err)
	}
	wc = wreg.Snapshot().Counters
	if wc["stripe.degraded_writes"] == 0 {
		return fmt.Errorf("no degraded writes despite a dead data member")
	}

	// Phase 3: a cache-cold verifier, member still down, reads it all.
	verifier, vroot, vreg, err := cell.client("stripe-verifier")
	if err != nil {
		return fmt.Errorf("verifier: %w", err)
	}
	defer verifier.Close()
	vf, err := vroot.Lookup(ctx(), "stripe.dat")
	if err != nil {
		return fmt.Errorf("verify lookup: %w", err)
	}
	got := make([]byte, size)
	for off := 0; off < size; {
		n, err := vf.Read(ctx(), got[off:], int64(off))
		if err != nil {
			return fmt.Errorf("verify read at %d: %w", off, err)
		}
		if n == 0 {
			return fmt.Errorf("verify read at %d: short file", off)
		}
		off += n
	}
	if !bytes.Equal(got, data) {
		for j := range data {
			if got[j] != data[j] {
				return fmt.Errorf("byte %d is %#x, want %#x (member %d down)", j, got[j], data[j], dead)
			}
		}
	}
	vc := vreg.Snapshot().Counters
	if vc["stripe.degraded_reads"] == 0 {
		return fmt.Errorf("verifier never reconstructed despite a dead data member")
	}
	fmt.Printf("stripe   width %d: %d B verified with member %d down; writer parity=%d degraded-writes=%d, verifier fanout=%d degraded-reads=%d\n",
		width, size, dead,
		wc["stripe.parity_writes"], wc["stripe.degraded_writes"],
		vc["stripe.fanout_fetches"], vc["stripe.degraded_reads"])
	return nil
}
