// dfsload drives a cell-scale token workload against one in-process
// file server: thousands of cache managers over in-process pipes, each
// a full client (vnode cache, write-back, recovery), so the token
// manager sees the same grant/revoke/reclaim traffic a busy cell would
// — without needing a machine per client.
//
// Scenarios (-scenario, default "all" runs each in order):
//
//	mixed    open/read/write/close mix over a shared file population:
//	         mostly-disjoint traffic with natural write collisions —
//	         the workload FID sharding exists to scale.
//	storm    every client writes the same few files: a continuous
//	         revocation storm through the reserved-priority callback
//	         path, timed by the token.revoke_rtt_ns histogram.
//	reclaim  every client is left holding dirty chunks and write
//	         tokens, the server is crashed and restarted with a grace
//	         period, and the whole fleet reclaims at once — the
//	         post-restart thundering herd. The harness asserts zero
//	         lost tokens (every claim re-established, no dirty cache
//	         discarded, every byte readable afterwards) and zero stale
//	         grants (a host that never reclaims is answered with
//	         fs.ErrGrace for as long as it probes during grace).
//	stripe   a striped volume (RAID-5, -stripe-width data servers plus
//	         rotating parity) is written half-way, one data server is
//	         killed mid-run, the second half lands as degraded writes,
//	         and a cache-cold verifier — with the member still down —
//	         must read every byte back through parity reconstruction.
//	integrity  the corrupt-disk drill: bytes are rotted underneath the
//	         server (and underneath one stripe member), past every
//	         layer that would rehash them. Cold readers must catch the
//	         mismatch (and on striped volumes reconstruct from parity),
//	         the scrubs must locate the damage exactly, and repairs
//	         must bring re-scrubs and re-reads back clean.
//
//	dfsload -clients 1024 -files 256 -duration 2s
//	dfsload -clients 256 -scenario reclaim -grace 750ms
//
// Reports token-ops/sec, revoke RTT, and reclaim latency from the obs
// registry the server already exports. Exits non-zero if any invariant
// fails.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"strings"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/client"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/server"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

const cellAddr = "cell0:7000"

// cell is the crashable in-process file server: every association runs
// over a net.Pipe, crash severs them all (the in-memory token state does
// not survive, §3.1), restart brings a fresh incarnation with a grace
// period over the same Episode aggregate.
type cell struct {
	agg    *episode.Aggregate
	vol    vfs.VolumeInfo
	locate *client.StaticLocator
	reg    *obs.Registry

	mu   sync.Mutex
	srv  *server.Server // guarded by mu; current incarnation
	side []net.Conn     // guarded by mu; server-side conns of this incarnation
	down bool           // guarded by mu; dials fail while set
}

func newCell() (*cell, error) {
	dev := blockdev.NewMem(512, 65536)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 512, PoolSize: 1024})
	if err != nil {
		return nil, err
	}
	vol, err := agg.CreateVolume("user.load", 0)
	if err != nil {
		return nil, err
	}
	locate := client.NewStaticLocator()
	locate.Add(vol.ID, "user.load", cellAddr)
	reg := obs.NewRegistry()
	return &cell{
		agg: agg, vol: vol, locate: locate, reg: reg,
		srv: server.New(server.Options{Name: cellAddr, Obs: reg}, agg),
	}, nil
}

func (c *cell) dial(addr string) (net.Conn, error) {
	if addr != cellAddr {
		return nil, fmt.Errorf("no such server %q", addr)
	}
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return nil, fmt.Errorf("server %q is down", addr)
	}
	srv := c.srv
	clientSide, serverSide := net.Pipe()
	c.side = append(c.side, serverSide)
	c.mu.Unlock()
	srv.Attach(serverSide)
	return clientSide, nil
}

// crash severs every association without touching the aggregate.
func (c *cell) crash() {
	c.mu.Lock()
	c.down = true
	side := c.side
	c.side = nil
	c.mu.Unlock()
	for _, nc := range side {
		nc.Close()
	}
}

// restart brings up a fresh incarnation (new epoch, empty token state).
func (c *cell) restart(epoch uint64, grace time.Duration) {
	c.mu.Lock()
	c.srv = server.New(server.Options{
		Name: cellAddr, Obs: c.reg, Epoch: epoch, GracePeriod: grace,
	}, c.agg)
	c.down = false
	c.mu.Unlock()
}

func (c *cell) server() *server.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srv
}

type config struct {
	clients     int
	files       int
	duration    time.Duration
	grace       time.Duration
	stripeWidth int
	gobOnly     bool
	verbose     bool
}

// load owns the fleet: one full cache manager per simulated client, each
// with its own association, vnode table, and store.
type load struct {
	cfg      config
	cell     *cell
	fleet    []*client.Client
	roots    []vfs.Vnode
	failures int
}

func ctx() *vfs.Context { return vfs.Superuser() }

func main() {
	var cfg config
	flag.IntVar(&cfg.clients, "clients", 1024, "simulated clients (each a full cache manager)")
	flag.IntVar(&cfg.files, "files", 256, "shared file population for mixed/storm")
	flag.DurationVar(&cfg.duration, "duration", 2*time.Second, "length of each timed scenario")
	flag.DurationVar(&cfg.grace, "grace", 750*time.Millisecond, "recovery grace period for the reclaim scenario")
	flag.IntVar(&cfg.stripeWidth, "stripe-width", 4, "data servers per stripe row for the stripe scenario")
	flag.BoolVar(&cfg.gobOnly, "gob-only", false, "disable the binary bulk-data lane (every call rides gob, exercising the mixed-version fallback)")
	flag.BoolVar(&cfg.verbose, "v", false, "per-scenario detail")
	scenario := flag.String("scenario", "all", "mixed|storm|reclaim|stripe|integrity|all (comma list ok)")
	flag.Parse()

	c, err := newCell()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dfsload: %v\n", err)
		os.Exit(1)
	}
	l := &load{cfg: cfg, cell: c}
	if err := l.setup(); err != nil {
		fmt.Fprintf(os.Stderr, "dfsload: setup: %v\n", err)
		os.Exit(1)
	}
	run := func(name string, fn func() error) {
		match := *scenario == "all"
		for _, s := range strings.Split(*scenario, ",") {
			if s == name {
				match = true
			}
		}
		if !match {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "dfsload: %s FAILED: %v\n", name, err)
			l.failures++
			return
		}
		fmt.Printf("%-8s ok (%.1fs)\n", name, time.Since(start).Seconds())
	}
	run("mixed", l.runMixed)
	run("storm", l.runStorm)
	run("reclaim", l.runReclaim)
	run("stripe", l.runStripe)
	run("integrity", l.runIntegrity)
	for _, cl := range l.fleet {
		cl.Close()
	}
	if l.failures > 0 {
		fmt.Fprintf(os.Stderr, "dfsload: %d scenario(s) failed\n", l.failures)
		os.Exit(1)
	}
}

// pattern is the deterministic content of client i's private file.
func pattern(i, size int) []byte {
	p := make([]byte, size)
	for j := range p {
		p[j] = byte(i*31 + j*7)
	}
	return p
}

// setup seeds the shared file population and raises the fleet.
func (l *load) setup() error {
	admin, root, err := l.newClient("admin")
	if err != nil {
		return err
	}
	buf := pattern(0, 4096)
	for i := 0; i < l.cfg.files; i++ {
		f, err := root.Create(ctx(), fmt.Sprintf("f%04d", i), 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(ctx(), buf, 0); err != nil {
			return err
		}
	}
	if err := admin.FlushAll(); err != nil {
		return err
	}
	if err := admin.Close(); err != nil {
		return err
	}
	l.fleet = make([]*client.Client, l.cfg.clients)
	l.roots = make([]vfs.Vnode, l.cfg.clients)
	for i := range l.fleet {
		cl, rt, err := l.newClient(fmt.Sprintf("load%04d", i))
		if err != nil {
			return fmt.Errorf("client %d: %w", i, err)
		}
		l.fleet[i], l.roots[i] = cl, rt
	}
	fmt.Printf("cell up: %d clients, %d shared files\n", l.cfg.clients, l.cfg.files)
	return nil
}

func (l *load) newClient(name string) (*client.Client, vfs.Vnode, error) {
	cl, err := client.New(client.Options{
		Name:             name,
		User:             fs.SuperUser,
		Dial:             l.cell.dial,
		Locate:           l.cell.locate,
		ReconnectBackoff: time.Millisecond,
		RPC:              rpc.Options{DisableBinaryLane: l.cfg.gobOnly},
	})
	if err != nil {
		return nil, nil, err
	}
	fsys, err := cl.MountVolume(l.cell.vol.ID)
	if err != nil {
		return nil, nil, err
	}
	root, err := fsys.Root()
	if err != nil {
		return nil, nil, err
	}
	return cl, root, nil
}

// tokenCounters reads the manager's counters from the shared registry.
func (l *load) tokenCounters() map[string]uint64 {
	return l.cell.reg.Snapshot().Counters
}

func histo(d obs.Dump, name string) obs.HistogramDump { return d.Histograms[name] }

// runMixed is the open/read/write/close mix: every client loops over the
// shared population, reading mostly and writing enough that write-token
// collisions (and so revocations) happen at a realistic rate.
func (l *load) runMixed() error {
	before := l.tokenCounters()
	deadline := time.Now().Add(l.cfg.duration)
	var wg sync.WaitGroup
	var ops, failed atomic.Uint64
	for i := range l.fleet {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			root := l.roots[i]
			buf := make([]byte, 256)
			for time.Now().Before(deadline) {
				// "open": resolve the file (status tokens + vnode).
				v, err := root.Lookup(ctx(), fmt.Sprintf("f%04d", rng.Intn(l.cfg.files)))
				if err != nil {
					failed.Add(1)
					continue
				}
				off := int64(rng.Intn(4096 - len(buf)))
				if rng.Intn(100) < 25 {
					_, err = v.Write(ctx(), buf, off)
				} else {
					_, err = v.Read(ctx(), buf, off)
				}
				// "close": the vnode stays cached; tokens are the
				// server's to call back. Contention failures
				// (conflict/retry under storm) are part of the mix.
				if err != nil {
					failed.Add(1)
					continue
				}
				ops.Add(1)
			}
		}(i)
	}
	wg.Wait()
	after := l.tokenCounters()
	dump := l.cell.reg.Snapshot()
	secs := l.cfg.duration.Seconds()
	grantRate := float64(after["token.grants"]-before["token.grants"]) / secs
	fmt.Printf("mixed    %8.0f client ops/s  %8.0f token grants/s  revocations +%d  grant p99 %.0fµs\n",
		float64(ops.Load())/secs, grantRate,
		after["token.revocations"]-before["token.revocations"],
		histo(dump, "token.grant_ns").P99Ns/1e3)
	if ops.Load() == 0 {
		return fmt.Errorf("no operations completed")
	}
	if f := failed.Load(); f > ops.Load() {
		return fmt.Errorf("more failures (%d) than completed ops (%d)", f, ops.Load())
	}
	return nil
}

// runStorm aims every client's writes at the same four files, so almost
// every grant must first revoke another client's write token.
func (l *load) runStorm() error {
	before := l.tokenCounters()
	deadline := time.Now().Add(l.cfg.duration)
	var wg sync.WaitGroup
	var ops, failed atomic.Uint64
	stormFiles := 4
	if stormFiles > l.cfg.files {
		stormFiles = l.cfg.files
	}
	for i := range l.fleet {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 7919))
			root := l.roots[i]
			buf := pattern(i, 256)
			for time.Now().Before(deadline) {
				v, err := root.Lookup(ctx(), fmt.Sprintf("f%04d", rng.Intn(stormFiles)))
				if err != nil {
					failed.Add(1)
					continue
				}
				if _, err := v.Write(ctx(), buf, int64(rng.Intn(2048))); err != nil {
					failed.Add(1) // losing the revocation fight is expected
					continue
				}
				ops.Add(1)
			}
		}(i)
	}
	wg.Wait()
	after := l.tokenCounters()
	dump := l.cell.reg.Snapshot()
	revocations := after["token.revocations"] - before["token.revocations"]
	rtt := histo(dump, "token.revoke_rtt_ns")
	fmt.Printf("storm    %8d writes  %8d revocations  revoke RTT p50 %.0fµs p99 %.0fµs\n",
		ops.Load(), revocations, rtt.P50Ns/1e3, rtt.P99Ns/1e3)
	if ops.Load() == 0 {
		return fmt.Errorf("no storm writes completed")
	}
	if revocations == 0 {
		return fmt.Errorf("storm produced no revocations")
	}
	if rtt.Count == 0 {
		return fmt.Errorf("revoke RTT histogram is empty")
	}
	return nil
}

// runReclaim is the post-restart thundering herd: every client is left
// holding dirty chunks under write tokens, the server crashes and comes
// back in grace, and the entire fleet reconnects and reclaims at once.
func (l *load) runReclaim() error {
	// Phase 1: every client dirties its own file and keeps the tokens.
	const fileSize = 2048
	var wg sync.WaitGroup
	errs := make([]error, len(l.fleet))
	for i := range l.fleet {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := l.roots[i].Create(ctx(), fmt.Sprintf("h%04d", i), 0o644)
			if err == nil {
				_, err = f.Write(ctx(), pattern(i, fileSize), 0)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d dirty phase: %w", i, err)
		}
	}
	baseline := make([]client.Stats, len(l.fleet))
	for i, cl := range l.fleet {
		baseline[i] = cl.Stats()
	}
	rootFID := l.roots[0].FID()

	// Phase 2: kill the server and bring it back in grace.
	l.cell.crash()
	restartAt := time.Now()
	l.cell.restart(2, l.cfg.grace)

	// Phase 3a: the grace prober. A fresh host that never reclaims must
	// see fs.ErrGrace on every ordinary grant for as long as it probes
	// (first half of the window, so an early legitimate end of grace
	// cannot be mistaken for a stale grant).
	var probes, staleGrants, probeOther atomic.Uint64
	proberDone := make(chan struct{})
	go func() {
		defer close(proberDone)
		cs, ss := net.Pipe()
		srv := l.cell.server()
		srv.Attach(ss)
		peer := rpc.NewPeer(cs, rpc.Options{})
		peer.Handle(proto.CBRevoke, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
			return rpc.Marshal(proto.RevokeReply{Returned: true})
		})
		peer.Handle(proto.CBProbe, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
			return rpc.Marshal(struct{}{})
		})
		peer.Start()
		defer peer.Close()
		guard := srv.Recovery()
		half := restartAt.Add(l.cfg.grace / 2)
		for time.Now().Before(half) && guard.InGrace() {
			var reply proto.GetTokensReply
			err := peer.Call(proto.MGetTokens, proto.GetTokensArgs{
				FID:  rootFID,
				Want: proto.TokenRequest{Types: token.StatusRead, Range: token.WholeFile},
			}, &reply)
			probes.Add(1)
			switch {
			case err == nil:
				staleGrants.Add(1)
			case errors.Is(err, fs.ErrGrace):
				// The only correct answer.
			default:
				probeOther.Add(1)
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Phase 3b: the herd. Every client hammers FlushAll until its dirty
	// chunks are durably stored back — which forces reconnect, reclaim,
	// and replay under the grace window.
	reclaimNs := obs.NewHistogram()
	deadline := restartAt.Add(l.cfg.grace + 30*time.Second)
	for i := range l.fleet {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				if err := l.fleet[i].FlushAll(); err == nil {
					reclaimNs.Observe(time.Since(restartAt))
					errs[i] = nil
					return
				} else if time.Now().After(deadline) {
					errs[i] = fmt.Errorf("client %d never recovered: %w", i, err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	<-proberDone
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Phase 4: invariants.
	if probes.Load() == 0 {
		return fmt.Errorf("grace prober never ran")
	}
	if n := staleGrants.Load(); n != 0 {
		return fmt.Errorf("%d stale grants escaped the grace gate", n)
	}
	var reclaimed, conflicts, stale, replayed uint64
	for i, cl := range l.fleet {
		st := cl.Stats()
		d := st.ReclaimedTokens - baseline[i].ReclaimedTokens
		if d == 0 {
			return fmt.Errorf("client %d reclaimed no tokens", i)
		}
		reclaimed += d
		conflicts += st.ReclaimConflicts - baseline[i].ReclaimConflicts
		stale += st.StaleVnodes - baseline[i].StaleVnodes
		replayed += st.ReplayedBytes - baseline[i].ReplayedBytes
	}
	if conflicts != 0 {
		return fmt.Errorf("%d tokens lost to reclaim conflicts", conflicts)
	}
	if stale != 0 {
		return fmt.Errorf("%d vnodes discarded dirty cache", stale)
	}

	// Phase 5: a cache-cold verifier reads every byte back.
	verifier, vroot, err := l.newClient("verifier")
	if err != nil {
		return fmt.Errorf("verifier: %w", err)
	}
	defer verifier.Close()
	buf := make([]byte, fileSize)
	for i := range l.fleet {
		v, err := vroot.Lookup(ctx(), fmt.Sprintf("h%04d", i))
		if err != nil {
			return fmt.Errorf("verify h%04d: %w", i, err)
		}
		n, err := v.Read(ctx(), buf, 0)
		if err != nil {
			return fmt.Errorf("verify h%04d: %w", i, err)
		}
		want := pattern(i, fileSize)
		if n != fileSize {
			return fmt.Errorf("verify h%04d: short read %d of %d", i, n, fileSize)
		}
		for j := range want {
			if buf[j] != want[j] {
				return fmt.Errorf("verify h%04d: byte %d is %#x, want %#x", i, j, buf[j], want[j])
			}
		}
	}
	snap := reclaimNs.Snapshot()
	fmt.Printf("reclaim  %8d tokens re-established  %d probes all refused  replay %d B  latency p50 %.0fms p99 %.0fms\n",
		reclaimed, probes.Load(), replayed,
		snap.Quantile(0.5)/1e6, snap.Quantile(0.99)/1e6)
	if l.cfg.verbose && probeOther.Load() > 0 {
		fmt.Printf("reclaim  note: %d probes failed with non-grace errors (association churn)\n", probeOther.Load())
	}
	return nil
}
