package main

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"decorum/internal/anode"
	"decorum/internal/client"
	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/obs"
	"decorum/internal/stripe"
	"decorum/internal/vfs"
)

// runIntegrity is the corrupt-disk drill: rot bytes underneath the
// server — past every layer that would rehash them — and prove the
// end-to-end chunk hashes catch it, locate it exactly, and survive it.
//
// Leg 1, unstriped: a file's chunk is flipped directly in the aggregate
// store (the episode write path is bypassed, so the recorded leaf still
// describes the original bytes — silent disk rot). A cache-cold reader
// must fail that chunk with integrity.ErrMismatch after exhausting
// re-fetches while every clean chunk verifies; the offline scrub must
// locate exactly that (anode, chunk); and after a good copy is written
// back, a re-scrub and a fresh cold reader must both come up clean.
//
// Leg 2, striped: the same rot on one stripe member must be absorbed —
// the member serves garbage under its honestly-recorded hash, the
// client catches the mismatch and reconstructs the chunk from the
// row's parity, and the reader sees correct bytes with zero failed
// reads. The member's own scrub locates the rot for local repair. A
// second member is then diverged *self-consistently* (stale data,
// matching stale hashes — the returned-from-outage case invisible to
// the read path), and ScrubStripe must find it against the primary's
// logical tree and rewrite it from parity.
func (l *load) runIntegrity() error {
	if err := l.integrityUnstriped(); err != nil {
		return fmt.Errorf("unstriped: %w", err)
	}
	if err := l.integrityStriped(); err != nil {
		return fmt.Errorf("striped: %w", err)
	}
	return nil
}

// integrityCell builds a private single-server cell so the corruption
// cannot leak into other scenarios sharing l.cell.
func integrityClient(c *cell, name string) (*client.Client, vfs.Vnode, *obs.Registry, error) {
	reg := obs.NewRegistry()
	cl, err := client.New(client.Options{
		Name:             name,
		User:             fs.SuperUser,
		Dial:             c.dial,
		Locate:           c.locate,
		Obs:              reg,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	fsys, err := cl.MountVolume(c.vol.ID)
	if err != nil {
		cl.Close()
		return nil, nil, nil, err
	}
	root, err := fsys.Root()
	if err != nil {
		cl.Close()
		return nil, nil, nil, err
	}
	return cl, root, reg, nil
}

func (l *load) integrityUnstriped() error {
	c, err := newCell()
	if err != nil {
		return err
	}
	chunk := int(client.ChunkSize)
	const chunks = 4
	const badChunk = int64(2)
	data := pattern(3, chunks*chunk)

	// Seed the file through a normal client so the server's episode
	// layer records every leaf hash, then drop the tokens.
	writer, wroot, _, err := integrityClient(c, "int-writer")
	if err != nil {
		return err
	}
	f, err := wroot.Create(ctx(), "probe.dat", 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(ctx(), data, 0); err != nil {
		return err
	}
	if err := writer.FlushAll(); err != nil {
		return err
	}
	if err := writer.Close(); err != nil {
		return err
	}

	// Rot the disk: flip one byte of chunk 2 through the raw store,
	// underneath the episode layer that maintains the hash tree.
	mfs, err := c.agg.Mount(c.vol.ID)
	if err != nil {
		return err
	}
	mroot, err := mfs.Root()
	if err != nil {
		return err
	}
	mv, err := mroot.Lookup(ctx(), "probe.dat")
	if err != nil {
		return err
	}
	aid := anode.ID(mv.FID().Vnode)
	rotOff := badChunk*int64(chunk) + 99
	st := c.agg.Store()
	tx := st.Begin()
	if _, err := st.WriteAt(tx, aid, []byte{data[rotOff] ^ 0x5a}, rotOff); err != nil {
		return fmt.Errorf("rot write: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	// A cache-cold reader must refuse the rotten chunk — after burning
	// its re-fetch budget — and verify every clean one.
	reader, rroot, rreg, err := integrityClient(c, "int-reader")
	if err != nil {
		return err
	}
	defer reader.Close()
	rv, err := rroot.Lookup(ctx(), "probe.dat")
	if err != nil {
		return err
	}
	buf := make([]byte, chunk)
	if _, err := rv.Read(ctx(), buf, badChunk*int64(chunk)); !errors.Is(err, integrity.ErrMismatch) {
		return fmt.Errorf("rotten chunk read: got %v, want ErrMismatch", err)
	}
	for _, i := range []int64{0, 1, 3} {
		if _, err := rv.Read(ctx(), buf, i*int64(chunk)); err != nil {
			return fmt.Errorf("clean chunk %d: %w", i, err)
		}
		if !bytes.Equal(buf, data[i*int64(chunk):(i+1)*int64(chunk)]) {
			return fmt.Errorf("clean chunk %d: wrong bytes", i)
		}
	}
	rc := rreg.Snapshot().Counters
	if rc["integrity.mismatches"] == 0 || rc["integrity.refetches"] == 0 {
		return fmt.Errorf("rot went undetected (mismatches=%d refetches=%d)",
			rc["integrity.mismatches"], rc["integrity.refetches"])
	}
	if rc["integrity.verified_chunks"] == 0 {
		return fmt.Errorf("clean chunks were not verified")
	}

	// The offline scrub must locate the damage exactly: one mismatch,
	// right anode, right chunk.
	res, err := c.agg.ScrubVolume(c.vol.ID, false)
	if err != nil {
		return fmt.Errorf("scrub: %w", err)
	}
	if len(res.Mismatches) != 1 || res.Mismatches[0].Anode != aid || res.Mismatches[0].Chunk != badChunk {
		return fmt.Errorf("scrub found %+v, want exactly (anode %d, chunk %d)",
			res.Mismatches, aid, badChunk)
	}

	// Repair with a good copy (the redundancy-aware path: scrub says
	// which chunk, the caller supplies correct bytes): a full-chunk
	// client write re-records the leaf in the same transaction.
	repairer, proot, _, err := integrityClient(c, "int-repair")
	if err != nil {
		return err
	}
	defer repairer.Close()
	pv, err := proot.Lookup(ctx(), "probe.dat")
	if err != nil {
		return err
	}
	if _, err := pv.Write(ctx(), data[badChunk*int64(chunk):(badChunk+1)*int64(chunk)], badChunk*int64(chunk)); err != nil {
		return fmt.Errorf("repair write: %w", err)
	}
	if err := repairer.FlushAll(); err != nil {
		return fmt.Errorf("repair flush: %w", err)
	}
	res, err = c.agg.ScrubVolume(c.vol.ID, false)
	if err != nil {
		return err
	}
	if len(res.Mismatches) != 0 {
		return fmt.Errorf("post-repair scrub still sees %d mismatches", len(res.Mismatches))
	}

	// A fresh cold reader gets every byte, all verified, no mismatches.
	final, froot, freg, err := integrityClient(c, "int-final")
	if err != nil {
		return err
	}
	defer final.Close()
	fv, err := froot.Lookup(ctx(), "probe.dat")
	if err != nil {
		return err
	}
	got := make([]byte, len(data))
	for off := 0; off < len(data); {
		n, err := fv.Read(ctx(), got[off:], int64(off))
		if err != nil {
			return fmt.Errorf("final read at %d: %w", off, err)
		}
		if n == 0 {
			return fmt.Errorf("final read at %d: short file", off)
		}
		off += n
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("final read returned wrong bytes")
	}
	fc := freg.Snapshot().Counters
	if fc["integrity.verified_chunks"] == 0 || fc["integrity.mismatches"] != 0 {
		return fmt.Errorf("final read: verified=%d mismatches=%d",
			fc["integrity.verified_chunks"], fc["integrity.mismatches"])
	}
	fmt.Printf("integrity unstriped: rot detected (mismatches=%d refetches=%d), scrub located chunk %d, repaired, %d chunks re-verified clean\n",
		rc["integrity.mismatches"], rc["integrity.refetches"], badChunk,
		fc["integrity.verified_chunks"])
	return nil
}

func (l *load) integrityStriped() error {
	width := l.cfg.stripeWidth
	if width < 2 {
		width = 2
	}
	cell, err := newStripeCell(width)
	if err != nil {
		return fmt.Errorf("stripe cell: %w", err)
	}
	chunk := int(client.ChunkSize)
	rows := 2
	size := rows * width * chunk
	data := pattern(11, size)

	writer, root, _, err := cell.client("int-swriter")
	if err != nil {
		return fmt.Errorf("writer: %w", err)
	}
	defer writer.Close()
	f, err := root.Create(ctx(), "int.dat", 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(ctx(), data, 0); err != nil {
		return err
	}
	if err := writer.FlushAll(); err != nil {
		return err
	}
	scrubber, ok := f.(client.StripeScrubber)
	if !ok {
		return fmt.Errorf("striped handle does not scrub")
	}
	for m := range cell.lay.Members {
		r, err := scrubber.ScrubStripe(m, false)
		if err != nil {
			return fmt.Errorf("baseline scrub member %d: %w", m, err)
		}
		if len(r.StaleChunks) != 0 {
			return fmt.Errorf("baseline scrub member %d: stale %v", m, r.StaleChunks)
		}
	}

	// Rot member A: flip a byte of logical chunk 0 in its data object
	// through the member's raw store. The member's recorded leaf still
	// describes the original bytes, so its fetch replies carry an
	// honest hash over garbage data — the client must catch it.
	dm := cell.lay.DataMember(0)
	fid := f.FID()
	rotAgg := cell.aggs[cell.lay.Members[dm].Addr]
	rotVol := cell.vols[cell.lay.Members[dm].Addr]
	mfs, err := rotAgg.Mount(rotVol)
	if err != nil {
		return err
	}
	mroot, err := mfs.Root()
	if err != nil {
		return err
	}
	obj, err := mroot.Lookup(ctx(), stripe.DataObjectName(fid))
	if err != nil {
		return fmt.Errorf("member %d data object: %w", dm, err)
	}
	st := rotAgg.Store()
	tx := st.Begin()
	if _, err := st.WriteAt(tx, anode.ID(obj.FID().Vnode), []byte{data[123] ^ 0xa5}, 123); err != nil {
		return fmt.Errorf("member rot: %w", err)
	}
	if err := tx.Commit(); err != nil {
		return err
	}

	// A cache-cold reader must get every byte right anyway: the rotten
	// chunk fails verification and is reconstructed from parity.
	verifier, vroot, vreg, err := cell.client("int-sverifier")
	if err != nil {
		return fmt.Errorf("verifier: %w", err)
	}
	defer verifier.Close()
	vf, err := vroot.Lookup(ctx(), "int.dat")
	if err != nil {
		return err
	}
	got := make([]byte, size)
	for off := 0; off < size; {
		n, err := vf.Read(ctx(), got[off:], int64(off))
		if err != nil {
			return fmt.Errorf("degraded verify at %d: %w", off, err)
		}
		if n == 0 {
			return fmt.Errorf("degraded verify at %d: short file", off)
		}
		off += n
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("degraded verify returned wrong bytes")
	}
	vc := vreg.Snapshot().Counters
	if vc["integrity.mismatches"] == 0 || vc["stripe.degraded_reads"] == 0 {
		return fmt.Errorf("member rot not absorbed (mismatches=%d degraded=%d)",
			vc["integrity.mismatches"], vc["stripe.degraded_reads"])
	}

	// The member's own offline scrub locates the rot; repair it locally
	// with the bytes the verified degraded read just proved correct —
	// the member's episode layer re-records the leaf on write.
	sres, err := rotAgg.ScrubVolume(rotVol, false)
	if err != nil {
		return fmt.Errorf("member scrub: %w", err)
	}
	if len(sres.Mismatches) != 1 || sres.Mismatches[0].Chunk != 0 {
		return fmt.Errorf("member scrub found %+v, want exactly chunk 0", sres.Mismatches)
	}
	if _, err := obj.Write(ctx(), data[:chunk], 0); err != nil {
		return fmt.Errorf("member repair: %w", err)
	}
	if sres, err = rotAgg.ScrubVolume(rotVol, false); err != nil || len(sres.Mismatches) != 0 {
		return fmt.Errorf("member re-scrub: %d mismatches, err %v", len(sres.Mismatches), err)
	}

	// Diverge member B self-consistently: stale bytes written through
	// the member's episode layer, so data and hashes agree with each
	// other but not with the primary's logical tree — the read path
	// cannot see it, only ScrubStripe against the primary can.
	dm2 := cell.lay.DataMember(1)
	staleAgg := cell.aggs[cell.lay.Members[dm2].Addr]
	staleVol := cell.vols[cell.lay.Members[dm2].Addr]
	sfs, err := staleAgg.Mount(staleVol)
	if err != nil {
		return err
	}
	sroot, err := sfs.Root()
	if err != nil {
		return err
	}
	sobj, err := sroot.Lookup(ctx(), stripe.DataObjectName(fid))
	if err != nil {
		return fmt.Errorf("member %d data object: %w", dm2, err)
	}
	if _, err := sobj.Write(ctx(), pattern(99, chunk), int64(chunk)); err != nil {
		return fmt.Errorf("stale write: %w", err)
	}
	r, err := scrubber.ScrubStripe(dm2, true)
	if err != nil {
		return fmt.Errorf("scrub stripe member %d: %w", dm2, err)
	}
	if len(r.StaleChunks) != 1 || r.StaleChunks[0] != 1 || r.Rewritten != 1 {
		return fmt.Errorf("scrub stripe: stale=%v rewritten=%d, want exactly chunk 1 rewritten",
			r.StaleChunks, r.Rewritten)
	}
	for m := range cell.lay.Members {
		rr, err := scrubber.ScrubStripe(m, false)
		if err != nil {
			return fmt.Errorf("post-repair scrub member %d: %w", m, err)
		}
		if len(rr.StaleChunks) != 0 {
			return fmt.Errorf("post-repair scrub member %d: stale %v", m, rr.StaleChunks)
		}
	}

	// Final cold read: every byte correct, every chunk verified on the
	// healthy path — no mismatches, no reconstruction.
	final, froot, freg, err := cell.client("int-sfinal")
	if err != nil {
		return fmt.Errorf("final: %w", err)
	}
	defer final.Close()
	ff, err := froot.Lookup(ctx(), "int.dat")
	if err != nil {
		return err
	}
	for off := 0; off < size; {
		n, err := ff.Read(ctx(), got[off:], int64(off))
		if err != nil {
			return fmt.Errorf("final read at %d: %w", off, err)
		}
		if n == 0 {
			return fmt.Errorf("final read at %d: short file", off)
		}
		off += n
	}
	if !bytes.Equal(got, data) {
		return fmt.Errorf("final read returned wrong bytes")
	}
	fc := freg.Snapshot().Counters
	if fc["integrity.verified_chunks"] == 0 || fc["integrity.mismatches"] != 0 || fc["stripe.degraded_reads"] != 0 {
		return fmt.Errorf("final read: verified=%d mismatches=%d degraded=%d",
			fc["integrity.verified_chunks"], fc["integrity.mismatches"], fc["stripe.degraded_reads"])
	}
	fmt.Printf("integrity striped: width %d, member %d rot absorbed via parity (mismatches=%d degraded=%d), member %d stale chunk found+rewritten by ScrubStripe, %d chunks verified clean\n",
		width, dm, vc["integrity.mismatches"], vc["stripe.degraded_reads"],
		dm2, fc["integrity.verified_chunks"])
	return nil
}
