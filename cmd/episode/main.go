// episode is the offline tool for Episode aggregates: mkfs, info, volume
// listing, and a transaction-log dump.
//
//	episode mkfs  -store agg.img -size 64
//	episode info  -store agg.img
//	episode ls    -store agg.img -volume 1 [-path docs]
//	episode logdump -store agg.img
//	episode salvage -store agg.img
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"decorum/internal/anode"
	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/vfs"
	"decorum/internal/wal"
)

const blockSize = 4096

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	flags := flag.NewFlagSet(cmd, flag.ExitOnError)
	store := flags.String("store", "", "aggregate image file")
	sizeMiB := flags.Int64("size", 64, "size in MiB (mkfs)")
	volume := flags.Uint64("volume", 0, "volume id (ls)")
	path := flags.String("path", "", "path inside the volume (ls)")
	flags.Parse(os.Args[2:])
	if *store == "" {
		log.Fatalf("episode %s: -store is required", cmd)
	}

	switch cmd {
	case "mkfs":
		dev, err := blockdev.CreateFile(*store, blockSize, *sizeMiB<<20/blockSize)
		if err != nil {
			log.Fatal(err)
		}
		agg, err := episode.Format(dev, episode.Options{})
		if err != nil {
			log.Fatal(err)
		}
		sb := agg.Store().Superblock()
		fmt.Printf("formatted %s: %d blocks of %d bytes, log %d blocks\n",
			*store, sb.TotalBlocks, sb.BlockSize, sb.LogBlocks)
	case "info":
		agg := open(*store)
		sb := agg.Store().Superblock()
		st, err := agg.Statfs()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("aggregate %s\n", *store)
		fmt.Printf("  geometry: %d x %d bytes (log %d blocks at %d)\n",
			sb.TotalBlocks, sb.BlockSize, sb.LogBlocks, sb.LogStart)
		fmt.Printf("  free: %d blocks, anodes in use: %d\n", st.FreeBlocks, st.Files)
		if r := agg.RecoveryResult; r.Scanned > 0 {
			fmt.Printf("  log replay at open: %+v\n", r)
		}
		vols, _ := agg.Volumes()
		for _, v := range vols {
			fmt.Printf("  volume %d %q ro=%v cloneOf=%d\n", v.ID, v.Name, v.ReadOnly, v.CloneOf)
		}
	case "ls":
		agg := open(*store)
		fsys, err := agg.Mount(fs.VolumeID(*volume))
		if err != nil {
			log.Fatal(err)
		}
		root, err := fsys.Root()
		if err != nil {
			log.Fatal(err)
		}
		dir := root
		if *path != "" {
			dir, err = vfs.Walk(vfs.Superuser(), root, *path)
			if err != nil {
				log.Fatal(err)
			}
		}
		ents, err := dir.ReadDir(vfs.Superuser())
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range ents {
			child, err := dir.Lookup(vfs.Superuser(), e.Name)
			if err != nil {
				continue
			}
			a, _ := child.Attr(vfs.Superuser())
			fmt.Printf("%-8s %6d  %s\n", e.Type, a.Length, e.Name)
		}
	case "salvage":
		agg := open(*store)
		res, err := agg.Salvage()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("salvage: scanned %d anodes, freed %d orphans, dropped %d entries, fixed %d link counts\n",
			res.AnodesScanned, res.OrphansFreed, res.EntriesDropped, res.LinkFixes)
	case "logdump":
		dev, err := blockdev.OpenFile(*store, blockSize)
		if err != nil {
			log.Fatal(err)
		}
		sb, err := anode.ReadSuperblock(dev)
		if err != nil {
			log.Fatal(err)
		}
		l, err := wal.Open(dev, sb.LogStart, sb.LogBlocks)
		if err != nil {
			log.Fatal(err)
		}
		st := l.LogStats()
		fmt.Printf("log: head=%d tail=%d active=%d bytes of %d\n",
			st.Head, st.Tail, uint64(st.Head)-uint64(st.Tail), l.Capacity())
		for _, rec := range l.Records() {
			switch rec.Type {
			case 1:
				fmt.Printf("  %8d  update tx=%d block=%d off=%d len=%d\n",
					rec.LSN, rec.Tx, rec.Block, rec.Offset, len(rec.New))
			case 2:
				fmt.Printf("  %8d  commit tx=%d\n", rec.LSN, rec.Tx)
			}
		}
	default:
		usage()
	}
}

func open(store string) *episode.Aggregate {
	dev, err := blockdev.OpenFile(store, blockSize)
	if err != nil {
		log.Fatal(err)
	}
	agg, err := episode.Open(dev, episode.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return agg
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: episode {mkfs|info|ls|logdump|salvage} -store <img> [flags]")
	os.Exit(2)
}
