// vldbreg administers a vldbd: register volume locations and look them up.
//
//	vldbreg -vldb host:7100 register -id 3 -name proj -rw host:7000
//	vldbreg -vldb host:7100 register -id 3 -name proj -rw host:7000 \
//	    -stripe 101@m0:7000,102@m1:7000,103@m2:7000
//	vldbreg -vldb host:7100 lookup -name proj
//	vldbreg -vldb host:7100 list
//	vldbreg -vldb host:7100 allocid
//
// -stripe declares the volume striped (RAID-5 rotating parity): each
// comma-separated volID@addr names one member object volume; with N+1
// members the stripe width is N. The RW site keeps serving the
// namespace and tokens; file data lands on the members.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/stripe"
	"decorum/internal/vldb"
)

// parseStripe builds a layout from "volID@addr,volID@addr,...": width
// is the member count minus the one rotating parity stripe.
func parseStripe(spec string, logical fs.VolumeID) (*stripe.Layout, error) {
	var lay stripe.Layout
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		volStr, addr, ok := strings.Cut(part, "@")
		if !ok || addr == "" {
			return nil, fmt.Errorf("stripe member %q: want volID@addr", part)
		}
		var vol uint64
		if _, err := fmt.Sscanf(volStr, "%d", &vol); err != nil {
			return nil, fmt.Errorf("stripe member %q: bad volume id: %v", part, err)
		}
		lay.Members = append(lay.Members, stripe.Member{Addr: addr, Volume: fs.VolumeID(vol)})
	}
	lay.Width = len(lay.Members) - 1
	if err := lay.Validate(logical); err != nil {
		return nil, err
	}
	return &lay, nil
}

// stripeDesc renders a layout for lookup/list output.
func stripeDesc(lay *stripe.Layout) string {
	if lay == nil {
		return ""
	}
	parts := make([]string, len(lay.Members))
	for i, m := range lay.Members {
		parts[i] = fmt.Sprintf("%d@%s", m.Volume, m.Addr)
	}
	return fmt.Sprintf(" stripe[w=%d: %s]", lay.Width, strings.Join(parts, ","))
}

func main() {
	vldbAddr := flag.String("vldb", "", "vldbd address")
	flag.Parse()
	args := flag.Args()
	if *vldbAddr == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: vldbreg -vldb host:port {register|lookup|list|allocid} [flags]")
		os.Exit(2)
	}
	conn, err := net.Dial("tcp", *vldbAddr)
	if err != nil {
		log.Fatal(err)
	}
	peer := rpc.NewPeer(conn, rpc.Options{})
	peer.Start()
	defer peer.Close()

	// Registry RPCs surface classified errors like any other boundary
	// crossing.
	call := func(method string, args, reply any) error {
		return proto.DecodeErr(peer.Call(method, args, reply))
	}

	cmd := args[0]
	flags := flag.NewFlagSet(cmd, flag.ExitOnError)
	id := flags.Uint64("id", 0, "volume id")
	name := flags.String("name", "", "volume name")
	rw := flags.String("rw", "", "read-write site address")
	ro := flags.String("ro", "", "comma-separated read-only sites")
	striped := flags.String("stripe", "", "comma-separated volID@addr stripe members (RAID-5; width = count-1)")
	version := flags.Uint64("version", 1, "entry version (last writer wins)")
	flags.Parse(args[1:])

	switch cmd {
	case "register":
		var roAddrs []string
		for _, a := range strings.Split(*ro, ",") {
			if a = strings.TrimSpace(a); a != "" {
				roAddrs = append(roAddrs, a)
			}
		}
		var lay *stripe.Layout
		if *striped != "" {
			var perr error
			if lay, perr = parseStripe(*striped, fs.VolumeID(*id)); perr != nil {
				log.Fatal(perr)
			}
		}
		err := call(vldb.MRegister, vldb.RegisterArgs{Entry: vldb.Entry{
			ID: fs.VolumeID(*id), Name: *name, RWAddr: *rw, ROAddrs: roAddrs,
			Stripe: lay, Version: *version,
		}}, &struct{}{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered volume %d %q at %s%s\n", *id, *name, *rw, stripeDesc(lay))
	case "lookup":
		var reply vldb.LookupReply
		if err := call(vldb.MLookup, vldb.LookupArgs{ID: fs.VolumeID(*id), Name: *name}, &reply); err != nil {
			log.Fatal(err)
		}
		e := reply.Entry
		fmt.Printf("volume %d %q rw=%s ro=%v (v%d)%s\n",
			e.ID, e.Name, e.RWAddr, e.ROAddrs, e.Version, stripeDesc(e.Stripe))
	case "list":
		var reply vldb.ListReply
		if err := call(vldb.MList, struct{}{}, &reply); err != nil {
			log.Fatal(err)
		}
		for _, e := range reply.Entries {
			fmt.Printf("%-6d %-24s rw=%s ro=%v%s\n",
				e.ID, e.Name, e.RWAddr, e.ROAddrs, stripeDesc(e.Stripe))
		}
	case "allocid":
		var reply vldb.AllocIDReply
		if err := call(vldb.MAllocID, struct{}{}, &reply); err != nil {
			log.Fatal(err)
		}
		fmt.Println(reply.ID)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
