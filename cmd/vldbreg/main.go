// vldbreg administers a vldbd: register volume locations and look them up.
//
//	vldbreg -vldb host:7100 register -id 3 -name proj -rw host:7000
//	vldbreg -vldb host:7100 lookup -name proj
//	vldbreg -vldb host:7100 list
//	vldbreg -vldb host:7100 allocid
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/vldb"
)

func main() {
	vldbAddr := flag.String("vldb", "", "vldbd address")
	flag.Parse()
	args := flag.Args()
	if *vldbAddr == "" || len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: vldbreg -vldb host:port {register|lookup|list|allocid} [flags]")
		os.Exit(2)
	}
	conn, err := net.Dial("tcp", *vldbAddr)
	if err != nil {
		log.Fatal(err)
	}
	peer := rpc.NewPeer(conn, rpc.Options{})
	peer.Start()
	defer peer.Close()

	// Registry RPCs surface classified errors like any other boundary
	// crossing.
	call := func(method string, args, reply any) error {
		return proto.DecodeErr(peer.Call(method, args, reply))
	}

	cmd := args[0]
	flags := flag.NewFlagSet(cmd, flag.ExitOnError)
	id := flags.Uint64("id", 0, "volume id")
	name := flags.String("name", "", "volume name")
	rw := flags.String("rw", "", "read-write site address")
	ro := flags.String("ro", "", "comma-separated read-only sites")
	version := flags.Uint64("version", 1, "entry version (last writer wins)")
	flags.Parse(args[1:])

	switch cmd {
	case "register":
		var roAddrs []string
		for _, a := range strings.Split(*ro, ",") {
			if a = strings.TrimSpace(a); a != "" {
				roAddrs = append(roAddrs, a)
			}
		}
		err := call(vldb.MRegister, vldb.RegisterArgs{Entry: vldb.Entry{
			ID: fs.VolumeID(*id), Name: *name, RWAddr: *rw, ROAddrs: roAddrs, Version: *version,
		}}, &struct{}{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered volume %d %q at %s\n", *id, *name, *rw)
	case "lookup":
		var reply vldb.LookupReply
		if err := call(vldb.MLookup, vldb.LookupArgs{ID: fs.VolumeID(*id), Name: *name}, &reply); err != nil {
			log.Fatal(err)
		}
		e := reply.Entry
		fmt.Printf("volume %d %q rw=%s ro=%v (v%d)\n", e.ID, e.Name, e.RWAddr, e.ROAddrs, e.Version)
	case "list":
		var reply vldb.ListReply
		if err := call(vldb.MList, struct{}{}, &reply); err != nil {
			log.Fatal(err)
		}
		for _, e := range reply.Entries {
			fmt.Printf("%-6d %-24s rw=%s ro=%v\n", e.ID, e.Name, e.RWAddr, e.ROAddrs)
		}
	case "allocid":
		var reply vldb.AllocIDReply
		if err := call(vldb.MAllocID, struct{}{}, &reply); err != nil {
			log.Fatal(err)
		}
		fmt.Println(reply.ID)
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
