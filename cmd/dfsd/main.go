// dfsd is the DEcorum file server daemon: it opens (or formats) an
// Episode aggregate on a disk-image file and exports it over TCP.
//
//	dfsd -store /var/dfs/agg0.img -format -size 256 -volume user.alice -listen :7000
//	dfsd -store /var/dfs/agg0.img -listen :7000
//
// After a crash, restarting dfsd replays the aggregate's log before
// accepting connections — the fast restart of §2.2; there is no salvage
// step.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/obs"
	"decorum/internal/server"
)

func main() {
	var (
		store     = flag.String("store", "", "path to the aggregate image file (required)")
		format    = flag.Bool("format", false, "format the store as a new aggregate")
		sizeMiB   = flag.Int64("size", 256, "aggregate size in MiB when formatting")
		volumes   = flag.String("volume", "", "comma-separated volumes to create after formatting")
		listen    = flag.String("listen", ":7000", "TCP address to serve")
		name      = flag.String("name", "dfsd", "server name")
		syncEvery = flag.Duration("sync", 30*time.Second, "batch-commit interval (§2.2)")
		grace     = flag.Duration("grace", 0, "token-reclaim grace period after start (§6.2; 0 disables)")
		status    = flag.String("statusaddr", "", "HTTP address for the JSON metrics/trace endpoint (empty disables)")
	)
	flag.Parse()
	if *store == "" {
		fmt.Fprintln(os.Stderr, "dfsd: -store is required")
		flag.Usage()
		os.Exit(2)
	}

	const blockSize = 4096
	var dev blockdev.Device
	var agg *episode.Aggregate
	if *format {
		fd, err := blockdev.CreateFile(*store, blockSize, *sizeMiB<<20/blockSize)
		if err != nil {
			log.Fatalf("create store: %v", err)
		}
		dev = fd
		agg, err = episode.Format(dev, episode.Options{})
		if err != nil {
			log.Fatalf("format: %v", err)
		}
		for _, v := range strings.Split(*volumes, ",") {
			if v = strings.TrimSpace(v); v == "" {
				continue
			}
			info, err := agg.CreateVolume(v, 0)
			if err != nil {
				log.Fatalf("create volume %q: %v", v, err)
			}
			log.Printf("created volume %q (id %d)", v, info.ID)
		}
	} else {
		fd, err := blockdev.OpenFile(*store, blockSize)
		if err != nil {
			log.Fatalf("open store: %v", err)
		}
		dev = fd
		agg, err = episode.Open(dev, episode.Options{})
		if err != nil {
			log.Fatalf("open aggregate: %v", err)
		}
		if r := agg.RecoveryResult; r.Scanned > 0 {
			log.Printf("log replay: %d records scanned, %d tx committed, %d rolled back",
				r.Scanned, r.Committed, r.Uncommitted)
		}
	}

	// The §2.2 batch commit: "fidelity to the spirit of the UNIX file
	// system only requires batching commits every 30 seconds". The
	// checkpoint also destages user data, bounding what a crash loses.
	go func() {
		for range time.Tick(*syncEvery) {
			if err := agg.Sync(); err != nil {
				log.Printf("checkpoint: %v", err)
			}
		}
	}()

	var reg *obs.Registry
	if *status != "" {
		reg = obs.NewRegistry()
		sl, err := net.Listen("tcp", *status)
		if err != nil {
			log.Fatalf("status listener: %v", err)
		}
		go func() {
			log.Printf("status endpoint on http://%s/ (?pretty=1 to indent)", sl.Addr())
			if err := http.Serve(sl, obs.Handler(reg)); err != nil {
				log.Printf("status endpoint: %v", err)
			}
		}()
	}

	srv := server.New(server.Options{Name: *name, Obs: reg, GracePeriod: *grace}, agg)
	if *grace > 0 {
		log.Printf("recovery epoch %d: accepting only token reclaims for %v", srv.Recovery().Epoch(), *grace)
	}
	vols, err := agg.Volumes()
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range vols {
		log.Printf("exporting volume %q (id %d, ro=%v)", v.Name, v.ID, v.ReadOnly)
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("dfsd %q serving on %s", *name, *listen)
	if err := srv.Serve(l); err != nil {
		log.Fatal(err)
	}
}
