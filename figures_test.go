package decorum

import (
	"testing"

	"decorum/internal/token"
)

// TestFigure1Wiring verifies the server-side component graph of Figure 1:
// a call entering through the protocol exporter passes the glue layer's
// token manager and reaches the Episode physical file system — and the
// same token manager arbitrates the local system-call path.
func TestFigure1Wiring(t *testing.T) {
	cell := NewCell()
	srv, err := cell.AddServer("fs1", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := srv.CreateVolume("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Box: protocol exporter → glue → Episode (remote path).
	cl, _ := cell.NewClient("ws", SuperUser)
	defer cl.Close()
	fsys, _ := cl.Mount("v")
	root, _ := fsys.Root()
	ctx := Superuser()
	f, err := root.Create(ctx, "wired", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx, []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	// The token manager saw the remote host's grants.
	if srv.TokenManager().Stats().Grants == 0 {
		t.Fatal("exporter path bypassed the token manager")
	}
	// Box: generic system calls → glue → Episode (local path), same
	// token manager: the local read must revoke the remote write token.
	grants0 := srv.TokenManager().Stats().Revocations
	local, err := srv.LocalFS(vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	lroot, _ := local.Root()
	lf, err := lroot.Lookup(ctx, "wired")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := lf.Read(ctx, buf, 0); err != nil {
		t.Fatal(err)
	}
	if srv.TokenManager().Stats().Revocations == grants0 {
		t.Fatal("local path did not synchronize through the token manager")
	}
	// Box: the Episode aggregate under it all has the file on "disk".
	raw, _ := srv.Aggregate().Mount(vol.ID)
	rroot, _ := raw.Root()
	if _, err := rroot.Lookup(ctx, "wired"); err != nil {
		t.Fatal("file never reached the physical file system")
	}
}

// TestFigure2Wiring verifies the client-side layering of Figure 2: vnode
// ops flow through the directory cache, the data/status cache, and the
// resource layer — observable as cache hits without RPCs once warm, and
// exactly one association per server.
func TestFigure2Wiring(t *testing.T) {
	cell := NewCell()
	srv, _ := cell.AddServer("fs1", 16<<20)
	srv.CreateVolume("v", 0)
	cl, _ := cell.NewClient("ws", SuperUser)
	defer cl.Close()
	ctx := Superuser()
	fsys, _ := cl.Mount("v")
	root, _ := fsys.Root()
	f, _ := root.Create(ctx, "layered", 0o644)
	f.Write(ctx, []byte("data"), 0)
	buf := make([]byte, 4)
	f.Read(ctx, buf, 0)
	root.Lookup(ctx, "layered")

	// Warm: every layer serves from cache, zero RPCs.
	sent0 := cl.RPCStats().CallsSent
	f.Attr(ctx)                 // cache layer (status)
	f.Read(ctx, buf, 0)         // cache layer (data)
	root.Lookup(ctx, "layered") // directory layer
	if sent := cl.RPCStats().CallsSent; sent != sent0 {
		t.Fatalf("warm layers sent %d RPCs", sent-sent0)
	}
	st := cl.Stats()
	if st.AttrCacheHits == 0 || st.DataCacheHits == 0 || st.LookupHits == 0 {
		t.Fatalf("layer hit counters: %+v", st)
	}
	// Resource layer: one association for the whole volume set.
	if st2 := cl.RPCStats(); st2.CallsSent == 0 {
		t.Fatal("no traffic ever sent")
	}
}

// TestOpenTokenMatrixGolden pins Figure 3 at the facade level too (the
// token package has the detailed test; this guards re-exports).
func TestOpenTokenMatrixGolden(t *testing.T) {
	out := token.RenderFigure3()
	want := "open-read       ✓               ✓               ✓               ✓               ✗"
	if !contains(out, want) {
		t.Fatalf("figure 3 drifted:\n%s", out)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
