package decorum

import (
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/ffs"
	"decorum/internal/vldb"
)

// vldbEntryFor builds a VLDB entry for tests and examples.
func vldbEntryFor(id VolumeID, name, addr string) vldb.Entry {
	return vldb.Entry{ID: id, Name: name, RWAddr: addr, Version: 99}
}

// newTestFFS formats a small FFS file system exporting as volume 9000.
func newTestFFS(t *testing.T) *ffs.FS {
	t.Helper()
	dev := blockdev.NewMem(512, 4096)
	f, err := ffs.Format(dev, 256, 9000)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
