// Interop: one protocol exporter, three client protocols. A DEcorum cache
// manager, an AFS-style client, and an NFS-style client all work on the
// same volume of the same server. The token manager arbitrates everyone
// (§5.1: it is "invoked by all calls through the Vnode interface" because
// non-DEcorum exporters and local system calls must be synchronized too),
// so the DEcorum client always sees fresh data — while the baselines see
// exactly the staleness their protocols allow.
//
// The server also exports a native Berkeley-FFS-style file system
// alongside its Episode aggregate — §1's headline interoperability claim.
package main

import (
	"fmt"
	"log"

	"decorum"
	"decorum/internal/afsmode"
	"decorum/internal/blockdev"
	"decorum/internal/ffs"
	"decorum/internal/nfsmode"
	"decorum/internal/rpc"
	"decorum/internal/vldb"
)

func main() {
	cell := decorum.NewCell()
	srv, err := cell.AddServer("fs1", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	vol, err := srv.CreateVolume("shared", 0)
	if err != nil {
		log.Fatal(err)
	}

	// --- three protocols against one volume ---
	ctx := decorum.Superuser()
	dfsClient, _ := cell.NewClient("dfs-ws", decorum.SuperUser)
	defer dfsClient.Close()
	fsys, _ := dfsClient.Mount("shared")
	root, _ := fsys.Root()
	f, err := root.Create(ctx, "board.txt", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	f.Write(ctx, []byte("v1 by dfs"), 0)
	fid := f.FID()

	connA, _ := cell.Dial("fs1")
	afsClient, err := afsmode.Dial("afs-ws", connA, rpc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer afsClient.Shutdown()
	connN, _ := cell.Dial("fs1")
	nfsClient, err := nfsmode.Dial("nfs-ws", connN, rpc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer nfsClient.Close()

	// Everyone reads v1.
	buf := make([]byte, 16)
	afsClient.Open(fid)
	n, _ := afsClient.Read(fid, buf, 0)
	fmt.Printf("AFS client reads:     %q\n", buf[:n])
	n, _ = nfsClient.Read(fid, buf, 0)
	fmt.Printf("NFS client reads:     %q\n", buf[:n])
	n, _ = f.Read(ctx, buf, 0)
	fmt.Printf("DEcorum client reads: %q\n", buf[:n])

	// The NFS client writes through. The DEcorum client's tokens are
	// revoked by that write, so its very next read is fresh; the AFS
	// client keeps serving its open-file copy.
	nfsClient.Write(fid, []byte("v2 by nfs"), 0)
	fmt.Println("\nNFS client wrote v2 (write-through).")
	n, _ = f.Read(ctx, buf, 0)
	fmt.Printf("DEcorum client reads: %q   <- token revoked, fresh immediately\n", buf[:n])
	n, _ = afsClient.Read(fid, buf, 0)
	fmt.Printf("AFS client reads:     %q   <- stale until it reopens\n", buf[:n])
	afsClient.Close(fid)
	afsClient.Open(fid)
	n, _ = afsClient.Read(fid, buf, 0)
	fmt.Printf("AFS after reopen:     %q\n", buf[:n])

	// --- native file system export ---
	fmt.Println("\n== exporting a native FFS alongside Episode ==")
	dev := blockdev.NewMem(4096, 4096)
	nativeFS, err := ffs.Format(dev, 512, 9000)
	if err != nil {
		log.Fatal(err)
	}
	srv.ExportFS(9000, nativeFS)
	cell.VLDB().Register(vldb.Entry{ID: 9000, Name: "native.ufs", RWAddr: "fs1", Version: 1})
	nfsys, err := dfsClient.Mount("native.ufs")
	if err != nil {
		log.Fatal(err)
	}
	nroot, _ := nfsys.Root()
	nf, err := nroot.Create(ctx, "on-native-disk", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	nf.Write(ctx, []byte("DEcorum semantics over a pre-existing UNIX file system"), 0)
	got := make([]byte, 64)
	gn, _ := nf.Read(ctx, got, 0)
	fmt.Printf("through the exporter: %q\n", got[:gn])
	// The same file is visible to local users of the native fs.
	lroot, _ := nativeFS.Root()
	if _, err := lroot.Lookup(ctx, "on-native-disk"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("and visible locally on the native file system itself.")

	st := srv.TokenManager().Stats()
	fmt.Printf("\ntoken manager arbitrated everything: %d grants, %d revocations\n",
		st.Grants, st.Revocations)
	_ = vol
}
