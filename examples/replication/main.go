// Replication: the lazy replication server of §3.8 — a permanent read-only
// replica of a volume on a second server, guaranteed to lag the master by
// no more than MaxAge, always showing a consistent snapshot, and never
// going backward. Change detection rides on a whole-volume token; updates
// fetch only the files that changed.
package main

import (
	"fmt"
	"log"
	"time"

	"decorum"
	"decorum/internal/replication"
	"decorum/internal/vfs"
)

func main() {
	cell := decorum.NewCell()
	master, err := cell.AddServer("master", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	replicaSrv, err := cell.AddServer("replica-host", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	vol, err := master.CreateVolume("docs", 0)
	if err != nil {
		log.Fatal(err)
	}

	// Populate the master.
	ctx := decorum.Superuser()
	ws, _ := cell.NewClient("writer-ws", decorum.SuperUser)
	defer ws.Close()
	fsys, _ := ws.Mount("docs")
	root, _ := fsys.Root()
	for i, name := range []string{"intro.md", "design.md", "faq.md"} {
		f, err := root.Create(ctx, name, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(writerTo{ctx, f}, "document %d, revision 1\n", i)
	}

	// Start the replicator on the replica host.
	conn, err := cell.Dial("master")
	if err != nil {
		log.Fatal(err)
	}
	now := time.Now()
	repl, err := replication.New(conn, replicaSrv.Aggregate(), replication.Options{
		SourceVolume: vol.ID,
		ReplicaName:  "docs.readonly",
		MaxAge:       2 * time.Second,
		Clock:        func() time.Time { return now },
	})
	if err != nil {
		log.Fatal(err)
	}
	defer repl.Close()
	if err := repl.InitialSync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial sync done: replica volume %d on %s\n", repl.ReplicaID(), "replica-host")
	fmt.Printf("  stats: %+v\n", repl.Stats())

	// Update ONE document on the master.
	f, _ := root.Lookup(ctx, "design.md")
	fmt.Fprintf(writerTo{ctx, f}, "document 1, revision 2 — big rewrite\n")
	fmt.Printf("master updated design.md; replica stale? %v\n", repl.Stale())

	// Inside MaxAge nothing happens (lazy, bounded staleness)...
	now = now.Add(500 * time.Millisecond)
	ran, _ := repl.EnsureFresh()
	fmt.Printf("t+0.5s: EnsureFresh refreshed=%v (still within the staleness bound)\n", ran)

	// ...past MaxAge the replica refreshes, fetching only the change.
	now = now.Add(3 * time.Second)
	before := repl.Stats()
	ran, err = repl.EnsureFresh()
	if err != nil {
		log.Fatal(err)
	}
	after := repl.Stats()
	fmt.Printf("t+3.5s: EnsureFresh refreshed=%v, fetched %d file(s) of %d checked (%d bytes)\n",
		ran, after.FilesFetched-before.FilesFetched,
		after.FilesChecked-before.FilesChecked,
		after.BytesFetched-before.BytesFetched)

	// Read from the replica.
	rfs, err := replicaSrv.Aggregate().Mount(repl.ReplicaID())
	if err != nil {
		log.Fatal(err)
	}
	rroot, _ := rfs.Root()
	rf, err := rroot.Lookup(ctx, "design.md")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 128)
	n, _ := rf.Read(ctx, buf, 0)
	fmt.Printf("replica now serves: %s", buf[:n])
	if _, err := rroot.Create(ctx, "x", 0o644); err != nil {
		fmt.Printf("replica is read-only, as it should be (%v)\n", err)
	}
}

// writerTo adapts a vnode to io.Writer for fmt.Fprintf (appending).
type writerTo struct {
	ctx *vfs.Context
	v   decorum.Vnode
}

func (w writerTo) Write(p []byte) (int, error) {
	attr, err := w.v.Attr(w.ctx)
	if err != nil {
		return 0, err
	}
	return w.v.Write(w.ctx, p, attr.Length)
}
