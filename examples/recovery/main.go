// Recovery: the availability claim of §2.2 — after a crash, Episode
// replays its transaction log (work proportional to the ACTIVE LOG) while
// the FFS baseline runs fsck (work proportional to the FILE SYSTEM).
//
// Both file systems run the same create/write/delete burst on simulated
// disks with a volatile write cache; the crash drops a random subset of
// unsynced writes, exactly what a power failure does to a disk with a
// write-behind cache.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/ffs"
	"decorum/internal/vfs"
)

const (
	blockSize = 4096
	devBlocks = 16384 // 64 MiB
)

func main() {
	rng := rand.New(rand.NewSource(42))
	ctx := vfs.Superuser()

	// ---------- Episode ----------
	epMem := blockdev.NewMem(blockSize, devBlocks)
	epCrash := blockdev.NewCrash(epMem)
	agg, err := episode.Format(epCrash, episode.Options{})
	if err != nil {
		log.Fatal(err)
	}
	vol, err := agg.CreateVolume("v", 0)
	if err != nil {
		log.Fatal(err)
	}
	fsys, _ := agg.Mount(vol.ID)
	root, _ := fsys.Root()
	runBurst(ctx, root)
	// The periodic batch commit (§2.2: "batching commits every 30
	// seconds") would have forced the log by now; do it explicitly — the
	// buffers stay dirty, only the sequential log write happens.
	if err := agg.Log().Sync(); err != nil {
		log.Fatal(err)
	}
	// Crash: lose a random subset of unsynced writes.
	if err := epCrash.Crash(blockdev.RandomSubset, rng); err != nil {
		log.Fatal(err)
	}
	// Reboot: Open replays the log.
	epSim := blockdev.NewSim(epMem, blockdev.DefaultCostModel)
	agg2, err := episode.Open(epSim, episode.Options{})
	if err != nil {
		log.Fatal(err)
	}
	epStats := epSim.Stats()
	fmt.Println("== Episode (log replay) ==")
	fmt.Printf("  recovery result: %+v\n", agg2.RecoveryResult)
	fmt.Printf("  disk reads during recovery+open: %d, simulated time: %v\n",
		epStats.Reads, epStats.SimTime)
	fsys2, err := agg2.Mount(vol.ID)
	if err != nil {
		log.Fatal(err)
	}
	root2, _ := fsys2.Root()
	ents, _ := root2.ReadDir(ctx)
	fmt.Printf("  volume mounted immediately: %d entries intact\n", len(ents))

	// ---------- FFS ----------
	ffsMem := blockdev.NewMem(blockSize, devBlocks)
	ffsCrash := blockdev.NewCrash(ffsMem)
	f, err := ffs.Format(ffsCrash, 4096, 1)
	if err != nil {
		log.Fatal(err)
	}
	froot, _ := f.Root()
	runBurst(ctx, froot)
	if err := ffsCrash.Crash(blockdev.RandomSubset, rng); err != nil {
		log.Fatal(err)
	}
	// Reboot: the dirty flag forces the notorious fsck.
	ffsSim := blockdev.NewSim(ffsMem, blockdev.DefaultCostModel)
	if _, err := ffs.Open(ffsSim); err == nil {
		log.Fatal("ffs mounted dirty without fsck?")
	}
	res, err := ffs.Fsck(ffsSim)
	if err != nil {
		log.Fatal(err)
	}
	ffsStats := ffsSim.Stats()
	fmt.Println("== FFS (full-scan fsck) ==")
	fmt.Printf("  fsck result: %+v\n", res)
	fmt.Printf("  disk reads during fsck: %d, simulated time: %v\n",
		ffsStats.Reads, ffsStats.SimTime)
	if _, err := ffs.Open(ffsSim); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  mountable only after the scan")

	fmt.Println()
	fmt.Printf("Episode recovered with %d reads; fsck needed %d — and fsck grows with the\n",
		epStats.Reads, ffsStats.Reads)
	fmt.Println("file system while log replay grows only with the log (run the C1 benchmark).")
}

// runBurst does a metadata-heavy workload without syncing at the end.
func runBurst(ctx *vfs.Context, root vfs.Vnode) {
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("file-%02d", i)
		f, err := root.Create(ctx, name, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := f.Write(ctx, make([]byte, 2000), 0); err != nil {
			log.Fatal(err)
		}
		if i%4 == 0 {
			if err := root.Remove(ctx, name); err != nil {
				log.Fatal(err)
			}
		}
	}
}
