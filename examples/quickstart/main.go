// Quickstart: bring up an in-process DEcorum cell — one file server over
// an Episode aggregate, one cache-manager client — create a volume, and do
// ordinary file work through the client. Every operation crosses the
// protocol exporter and is synchronized by typed tokens; the client's
// second read is served from its cache with no RPC at all.
package main

import (
	"fmt"
	"log"

	"decorum"
)

func main() {
	cell := decorum.NewCell()

	// A file server with a 64 MiB simulated disk, formatted as an
	// Episode aggregate.
	srv, err := cell.AddServer("fileserver-1", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	vol, err := srv.CreateVolume("user.alice", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created volume %q (id %d) on %s\n", "user.alice", vol.ID, srv.Name())

	// A workstation client; its data cache is in memory (a diskless
	// client, §4.2 of the paper).
	ws, err := cell.NewClient("workstation-1", decorum.SuperUser)
	if err != nil {
		log.Fatal(err)
	}
	defer ws.Close()

	fsys, err := ws.Mount("user.alice")
	if err != nil {
		log.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		log.Fatal(err)
	}
	ctx := decorum.Superuser()

	// Build a little tree.
	docs, err := root.Mkdir(ctx, "docs", 0o755)
	if err != nil {
		log.Fatal(err)
	}
	f, err := docs.Create(ctx, "hello.txt", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write(ctx, []byte("hello from the DEcorum file system\n"), 0); err != nil {
		log.Fatal(err)
	}
	if _, err := root.Symlink(ctx, "latest", "docs/hello.txt"); err != nil {
		log.Fatal(err)
	}

	// Read it back — twice, to show the cache at work.
	buf := make([]byte, 64)
	n, err := f.Read(ctx, buf, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d bytes: %s", n, buf[:n])

	before := ws.RPCStats().CallsSent
	for i := 0; i < 100; i++ {
		if _, err := f.Read(ctx, buf, 0); err != nil {
			log.Fatal(err)
		}
		if _, err := f.Attr(ctx); err != nil {
			log.Fatal(err)
		}
	}
	after := ws.RPCStats().CallsSent
	fmt.Printf("100 more read+stat pairs cost %d RPCs (tokens let the cache answer)\n", after-before)

	ents, err := root.ReadDir(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("root directory:")
	for _, e := range ents {
		fmt.Printf("  %-10s %v\n", e.Name, e.Type)
	}
	st := ws.Stats()
	fmt.Printf("client cache: %d attr hits, %d data hits, %d local writes\n",
		st.AttrCacheHits, st.DataCacheHits, st.LocalWrites)
}
