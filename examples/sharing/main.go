// Sharing: two workstations work on the same files and see single-system
// UNIX semantics (§5 of the paper) — a write completed on one client is
// visible to the next read anywhere, because the server revokes the
// writer's tokens (forcing a store-back) before serving the reader.
//
// The second half shows byte-range data tokens: two clients writing
// DISJOINT halves of one large file keep their tokens and never ship data,
// where AFS-style whole-file caching would bounce the entire file (§5.4).
package main

import (
	"fmt"
	"log"

	"decorum"
)

func main() {
	cell := decorum.NewCell()
	srv, err := cell.AddServer("fileserver-1", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := srv.CreateVolume("shared", 0); err != nil {
		log.Fatal(err)
	}

	alice, err := cell.NewClient("alice-ws", decorum.SuperUser)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	bob, err := cell.NewClient("bob-ws", decorum.SuperUser)
	if err != nil {
		log.Fatal(err)
	}
	defer bob.Close()

	ctx := decorum.Superuser()
	fsA, _ := alice.Mount("shared")
	fsB, _ := bob.Mount("shared")
	rootA, _ := fsA.Root()
	rootB, _ := fsB.Root()

	// --- strict coherence ---
	fmt.Println("== single-system semantics ==")
	fA, err := rootA.Create(ctx, "notes.txt", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fA.Write(ctx, []byte("alice was here"), 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice wrote (the data is only in her cache, under a write token)")

	fB, err := rootB.Lookup(ctx, "notes.txt")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := fB.Read(ctx, buf, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bob reads immediately: %q\n", buf[:n])
	fmt.Printf("  (server revoked alice's write token: %d revocation(s), %d store-back(s))\n",
		alice.Stats().Revocations, alice.Stats().StoreBacks)

	// --- disjoint byte ranges ---
	fmt.Println("== disjoint writers of one large file ==")
	big, err := rootA.Create(ctx, "simulation.dat", 0o644)
	if err != nil {
		log.Fatal(err)
	}
	const half = 1 << 20
	if _, err := big.Write(ctx, make([]byte, 2*half), 0); err != nil {
		log.Fatal(err)
	}
	bigB, err := rootB.Lookup(ctx, "simulation.dat")
	if err != nil {
		log.Fatal(err)
	}
	// Warm both halves.
	if _, err := big.Write(ctx, []byte{1}, 0); err != nil {
		log.Fatal(err)
	}
	if _, err := bigB.Write(ctx, []byte{1}, half); err != nil {
		log.Fatal(err)
	}
	b0 := alice.RPCStats().BytesSent + bob.RPCStats().BytesSent
	for i := 0; i < 200; i++ {
		if _, err := big.Write(ctx, []byte{byte(i)}, int64(i%1024)); err != nil {
			log.Fatal(err)
		}
		if _, err := bigB.Write(ctx, []byte{byte(i)}, half+int64(i%1024)); err != nil {
			log.Fatal(err)
		}
	}
	b1 := alice.RPCStats().BytesSent + bob.RPCStats().BytesSent
	fmt.Printf("400 interleaved writes to disjoint halves moved %d bytes on the wire\n", b1-b0)
	fmt.Printf("  (the 2 MiB file itself stayed put: byte-range data tokens don't conflict)\n")
	fmt.Printf("alice: %+v\n", alice.Stats())
	fmt.Printf("bob:   %+v\n", bob.Stats())
}
