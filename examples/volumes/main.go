// Volumes: the administration story of §2.1/§3.6 — volumes are mountable
// subtrees decoupled from disks, so they can be snapshotted (cloned) with
// copy-on-write, backed up from the clone at leisure, and moved between
// servers while staying online except for a short blocked window.
package main

import (
	"fmt"
	"log"

	"decorum"
	"decorum/internal/vldb"
)

func main() {
	cell := decorum.NewCell()
	s1, err := cell.AddServer("fileserver-1", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := cell.AddServer("fileserver-2", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	info, err := s1.CreateVolume("proj.compiler", 0)
	if err != nil {
		log.Fatal(err)
	}

	ws, err := cell.NewClient("admin-ws", decorum.SuperUser)
	if err != nil {
		log.Fatal(err)
	}
	defer ws.Close()
	ctx := decorum.Superuser()
	fsys, _ := ws.Mount("proj.compiler")
	root, _ := fsys.Root()
	src, _ := root.Create(ctx, "parser.go", 0o644)
	if _, err := src.Write(ctx, []byte("package parser // v1\n"), 0); err != nil {
		log.Fatal(err)
	}

	// --- snapshot by cloning (copy-on-write) ---
	free0 := s1.Aggregate().Store().FreeBlocks()
	snap, err := s1.CloneVolume(info.ID, "proj.compiler.backup")
	if err != nil {
		log.Fatal(err)
	}
	free1 := s1.Aggregate().Store().FreeBlocks()
	fmt.Printf("cloned volume %d -> snapshot %d, consuming %d blocks (COW shares the data)\n",
		info.ID, snap.ID, free0-free1)

	// Damage the original; restore the file from the snapshot.
	if _, err := src.Write(ctx, []byte("package parser // CORRUPTED\n"), 0); err != nil {
		log.Fatal(err)
	}
	snapFS, err := s1.VolumeOps().Mount(snap.ID)
	if err != nil {
		log.Fatal(err)
	}
	snapRoot, _ := snapFS.Root()
	old, err := snapRoot.Lookup(ctx, "parser.go")
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 64)
	n, _ := old.Read(ctx, buf, 0)
	fmt.Printf("snapshot still has: %s", buf[:n])
	if _, err := src.Write(ctx, buf[:n], 0); err != nil {
		log.Fatal(err)
	}
	restoredLen := int64(n)
	if _, err := src.SetAttr(ctx, decorum.AttrChange{Length: &restoredLen}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored the file from the snapshot, no tape required")

	// --- full backup: dump the snapshot, not the live volume ---
	dump, err := s1.DumpVolume(snap.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backup dump of the snapshot: %d bytes (write to media at leisure, §2.1)\n", len(dump))

	// --- move the live volume to another server ---
	if err := s1.MoveVolume(info.ID, "fileserver-2"); err != nil {
		log.Fatal(err)
	}
	cell.VLDB().Register(vldb.Entry{ID: info.ID, Name: "proj.compiler", RWAddr: "fileserver-2", Version: 100})
	fmt.Println("moved proj.compiler fileserver-1 -> fileserver-2 (volume ID unchanged)")

	// A fresh client finds it at the new home through the VLDB.
	ws2, err := cell.NewClient("user-ws", decorum.SuperUser)
	if err != nil {
		log.Fatal(err)
	}
	defer ws2.Close()
	fs2, err := ws2.Mount("proj.compiler")
	if err != nil {
		log.Fatal(err)
	}
	root2, _ := fs2.Root()
	f2, err := root2.Lookup(ctx, "parser.go")
	if err != nil {
		log.Fatal(err)
	}
	n, _ = f2.Read(ctx, buf, 0)
	fmt.Printf("after the move, clients read: %s", buf[:n])

	vols1, _ := s1.VolumeOps().Volumes()
	vols2, _ := s2.VolumeOps().Volumes()
	fmt.Printf("fileserver-1 now holds %d volume(s) (the snapshot); fileserver-2 holds %d\n",
		len(vols1), len(vols2))
}
