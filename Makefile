GO ?= go

.PHONY: all build test vet dfsvet race

all: build vet dfsvet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# dfsvet runs the paper-invariant analyzers (WAL discipline, lock
# annotations, I/O error hygiene); see internal/lint.
dfsvet:
	$(GO) run ./cmd/dfsvet ./...

# race covers the packages with real cross-goroutine traffic.
race:
	$(GO) test -race ./internal/token ./internal/buffer ./internal/client ./internal/server
