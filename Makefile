GO ?= go

.PHONY: all build test vet dfsvet race bench bench-snapshot

all: build vet dfsvet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# dfsvet runs the paper-invariant analyzers (WAL discipline, lock
# annotations, I/O error hygiene); see internal/lint.
dfsvet:
	$(GO) run ./cmd/dfsvet ./...

# race covers the packages with real cross-goroutine traffic.
race:
	$(GO) test -race ./internal/token ./internal/buffer ./internal/client ./internal/server ./internal/wal ./internal/episode

# bench is a smoke run: every benchmark once, so CI catches benchmarks
# that no longer build or crash, without paying for measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/wal ./internal/buffer ./internal/episode .

# bench-snapshot records the PR's parallel benchmarks into BENCH_PR2.json.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -out BENCH_PR2.json
