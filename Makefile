GO ?= go

.PHONY: all build test vet dfsvet race bench bench-snapshot bench-snapshot-pr4 obs-smoke

all: build vet dfsvet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# dfsvet runs the paper-invariant analyzers (WAL discipline, lock
# annotations, I/O error hygiene); see internal/lint.
dfsvet:
	$(GO) run ./cmd/dfsvet ./...

# race covers the packages with real cross-goroutine traffic.
race:
	$(GO) test -race ./internal/obs ./internal/rpc ./internal/token ./internal/buffer ./internal/client ./internal/server ./internal/wal ./internal/episode

# bench is a smoke run: every benchmark once, so CI catches benchmarks
# that no longer build or crash, without paying for measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/wal ./internal/buffer ./internal/episode ./internal/client .

# bench-snapshot records the PR's parallel benchmarks into BENCH_PR2.json.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -out BENCH_PR2.json

# bench-snapshot-pr4 records the client data-path pipeline benchmarks
# (read-ahead depth sweep, scan and write-back scaling) into
# BENCH_PR4.json. The latency-injected iterations are slow, so the
# count is modest.
bench-snapshot-pr4:
	$(GO) run ./cmd/benchsnap -out BENCH_PR4.json \
		-bench 'SequentialScan|WriteBack' -benchtime 10x \
		-packages ./internal/client

# obs-smoke boots dfsd with -statusaddr on loopback and validates the
# metrics endpoint's JSON shape with dfsstat -check.
OBS_SMOKE_DIR := $(or $(TMPDIR),/tmp)/dfs-obs-smoke
obs-smoke:
	@rm -rf $(OBS_SMOKE_DIR) && mkdir -p $(OBS_SMOKE_DIR)
	$(GO) build -o $(OBS_SMOKE_DIR)/ ./cmd/dfsd ./cmd/dfsstat
	@$(OBS_SMOKE_DIR)/dfsd -store $(OBS_SMOKE_DIR)/agg.img -format -size 16 \
		-volume smoke -listen 127.0.0.1:17900 -statusaddr 127.0.0.1:17980 \
		>$(OBS_SMOKE_DIR)/dfsd.log 2>&1 & echo $$! >$(OBS_SMOKE_DIR)/dfsd.pid
	@ok=1; for i in 1 2 3 4 5 6 7 8 9 10; do \
		if $(OBS_SMOKE_DIR)/dfsstat -addr 127.0.0.1:17980 -check 2>/dev/null; then ok=0; break; fi; \
		sleep 1; \
	done; \
	kill `cat $(OBS_SMOKE_DIR)/dfsd.pid` 2>/dev/null; \
	if [ $$ok -ne 0 ]; then \
		echo "obs-smoke: endpoint never served a well-formed dump"; \
		cat $(OBS_SMOKE_DIR)/dfsd.log; exit 1; \
	fi
