GO ?= go

.PHONY: all build test vet dfsvet dfsvet-polarity vet-bench race bench bench-snapshot bench-snapshot-pr4 bench-snapshot-pr5 bench-snapshot-pr7 bench-snapshot-pr8 bench-snapshot-pr9 bench-snapshot-pr10 obs-smoke recovery-smoke load-smoke load-smoke-gob stripe-smoke integrity-smoke

all: build vet dfsvet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# dfsvet runs the paper-invariant analyzers (WAL discipline,
# interprocedural lock checking with deadlock-cycle detection, I/O error
# hygiene, RPC error classification, goroutine lifecycle, obs-cell
# wiring); see internal/lint. A clean tree exits 0.
dfsvet:
	$(GO) run ./cmd/dfsvet ./...

# dfsvet-polarity asserts the other polarity: every seeded-violation
# package under internal/lint/testdata must still produce findings
# (exit 1), so a regression that silences an analyzer cannot pass as a
# clean tree.
dfsvet-polarity:
	@for p in walbad lockbad errbad errbadclass goleakbad obsbad; do \
		status=0; \
		$(GO) run ./cmd/dfsvet ./internal/lint/testdata/src/$$p >/dev/null 2>&1 || status=$$?; \
		if [ $$status -ne 1 ]; then \
			echo "dfsvet-polarity: $$p exited $$status, want 1 (findings)"; exit 1; \
		fi; \
	done; echo "dfsvet-polarity: all seeded packages fire"

# vet-bench times the full dfsvet run so analyzer cost stays visible as
# the tree grows (the summary fixpoint is whole-program).
vet-bench:
	time $(GO) run ./cmd/dfsvet ./...

# race covers the packages with real cross-goroutine traffic.
race:
	$(GO) test -race ./internal/obs ./internal/rpc ./internal/token ./internal/buffer ./internal/client ./internal/server ./internal/wal ./internal/episode ./internal/recovery

# bench is a smoke run: every benchmark once, so CI catches benchmarks
# that no longer build or crash, without paying for measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/wal ./internal/buffer ./internal/episode ./internal/client .

# bench-snapshot records the PR's parallel benchmarks into BENCH_PR2.json.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -out BENCH_PR2.json

# bench-snapshot-pr4 records the client data-path pipeline benchmarks
# (read-ahead depth sweep, scan and write-back scaling) into
# BENCH_PR4.json. The latency-injected iterations are slow, so the
# count is modest.
bench-snapshot-pr4:
	$(GO) run ./cmd/benchsnap -out BENCH_PR4.json \
		-bench 'SequentialScan|WriteBack' -benchtime 10x \
		-packages ./internal/client

# bench-snapshot-pr5 records the token-recovery benchmarks (reclaim
# throughput over a populated manager, client reconnect latency) into
# BENCH_PR5.json. Each reconnect iteration restarts a full in-process
# cell, so the count is modest.
bench-snapshot-pr5:
	$(GO) run ./cmd/benchsnap -out BENCH_PR5.json \
		-bench 'Reconnect|Reclaim' -benchtime 50x \
		-packages ./internal/token,./internal/client

# bench-snapshot-pr7 records the sharded token manager against the
# pre-shard single-lock baseline (BenchmarkTokenOps: baseline=preshard
# vs shards=1 vs shards=16, 1-64 goroutines, disjoint and shared FID
# mixes) into BENCH_PR7.json.
bench-snapshot-pr7:
	$(GO) run ./cmd/benchsnap -out BENCH_PR7.json \
		-bench 'TokenOps' -benchtime 0.5s \
		-packages ./internal/token

# bench-snapshot-pr8 records the striped-scan throughput sweep into
# BENCH_PR8.json: width=1 is one server under a worker/latency cap,
# width=2 and width=4 stripe the same file over 3 and 5 capped member
# servers (RAID-5). Each width runs in its own process — leftover
# server goroutines and retained aggregates from one width otherwise
# contend with the next on small CI machines — and -append merges the
# slices into one snapshot. Acceptance: width=4 MB/s >= 3x width=1.
bench-snapshot-pr8:
	$(GO) run ./cmd/benchsnap -out BENCH_PR8.json \
		-bench 'StripedScan/width=1$$' -benchtime 5x -packages ./internal/client
	$(GO) run ./cmd/benchsnap -out BENCH_PR8.json -append \
		-bench 'StripedScan/width=2$$' -benchtime 5x -packages ./internal/client
	$(GO) run ./cmd/benchsnap -out BENCH_PR8.json -append \
		-bench 'StripedScan/width=4$$' -benchtime 5x -packages ./internal/client

# bench-snapshot-pr9 records the wire-format shoot-out into
# BENCH_PR9.json: gob vs the binary bulk-data lane on the same cell at
# zero injected latency, sequential scan and write-back, 1/8/64-chunk
# working sets. Acceptance: binary ≥ 2x gob MB/s on the multi-chunk
# scan and write-back rows.
# Each lane runs in its own process (as in bench-snapshot-pr8):
# leftover prefetch goroutines and GC pressure from one lane's leaves
# otherwise skew the other's numbers on small CI machines.
bench-snapshot-pr9:
	$(GO) run ./cmd/benchsnap -out BENCH_PR9.json \
		-bench 'WireFormat/.*/lane=gob$$' -benchtime 30x \
		-packages ./internal/client
	$(GO) run ./cmd/benchsnap -out BENCH_PR9.json -append \
		-bench 'WireFormat/.*/lane=binary$$' -benchtime 30x \
		-packages ./internal/client

# bench-snapshot-pr10 records the end-to-end integrity benchmarks into
# BENCH_PR10.json: BenchmarkMerkleDiff (Merkle-diff replication vs the
# full-copy refresh on a 1%-dirty 100-chunk file — acceptance is
# chunks_shipped/op ≈ 1 vs 100) and BenchmarkVerifiedScan (what the
# per-chunk SHA-256 verify costs a cache-cold scan vs the DisableVerify
# ablation). Separate processes as in bench-snapshot-pr8/9 so one
# suite's leftover goroutines don't skew the other.
bench-snapshot-pr10:
	$(GO) run ./cmd/benchsnap -out BENCH_PR10.json \
		-bench 'MerkleDiff' -benchtime 20x \
		-packages ./internal/replication
	$(GO) run ./cmd/benchsnap -out BENCH_PR10.json -append \
		-bench 'VerifiedScan' -benchtime 20x \
		-packages ./internal/client

# integrity-smoke is the corrupt-disk drill under -race: bytes are
# rotted underneath a plain server and underneath one stripe member
# (past every layer that would rehash them). Cold readers must catch
# the mismatch through the end-to-end chunk hashes — reconstructing
# from parity on the striped volume — the scrubs must locate the
# damage exactly, and repairs must bring re-scrubs and re-reads back
# clean.
integrity-smoke:
	$(GO) run -race ./cmd/dfsload -clients 2 -files 2 -duration 100ms \
		-scenario integrity -stripe-width 4

# stripe-smoke is the kill-one-server drill under -race: an in-process
# striped cell (width 4 + rotating parity) is written half-way, one
# data server is crashed mid-run, the rest lands as degraded writes,
# and a cache-cold verifier must read every byte back through parity
# reconstruction with the member still down.
stripe-smoke:
	$(GO) run -race ./cmd/dfsload -clients 2 -files 2 -duration 100ms \
		-scenario stripe -stripe-width 4

# load-smoke drives a cell-scale fleet (256 in-process clients over
# pipes) through the dfsload scenarios with the reclaim thundering herd
# included: the run fails on any lost token, any grant escaping the
# grace gate, or a byte that does not survive the restart.
load-smoke:
	$(GO) run ./cmd/dfsload -clients 256 -files 64 -duration 300ms

# load-smoke-gob is the same fleet with the binary lane forced off, so
# the gob fallback path (old peers) keeps passing the full scenario
# battery too.
load-smoke-gob:
	$(GO) run ./cmd/dfsload -clients 256 -files 64 -duration 300ms -gob-only

# obs-smoke boots dfsd with -statusaddr on loopback and validates the
# metrics endpoint's JSON shape with dfsstat -check.
OBS_SMOKE_DIR := $(or $(TMPDIR),/tmp)/dfs-obs-smoke
obs-smoke:
	@rm -rf $(OBS_SMOKE_DIR) && mkdir -p $(OBS_SMOKE_DIR)
	$(GO) build -o $(OBS_SMOKE_DIR)/ ./cmd/dfsd ./cmd/dfsstat
	@$(OBS_SMOKE_DIR)/dfsd -store $(OBS_SMOKE_DIR)/agg.img -format -size 16 \
		-volume smoke -listen 127.0.0.1:17900 -statusaddr 127.0.0.1:17980 \
		>$(OBS_SMOKE_DIR)/dfsd.log 2>&1 & echo $$! >$(OBS_SMOKE_DIR)/dfsd.pid
	@ok=1; for i in 1 2 3 4 5 6 7 8 9 10; do \
		if $(OBS_SMOKE_DIR)/dfsstat -addr 127.0.0.1:17980 -check 2>/dev/null; then ok=0; break; fi; \
		sleep 1; \
	done; \
	kill `cat $(OBS_SMOKE_DIR)/dfsd.pid` 2>/dev/null; \
	if [ $$ok -ne 0 ]; then \
		echo "obs-smoke: endpoint never served a well-formed dump"; \
		cat $(OBS_SMOKE_DIR)/dfsd.log; exit 1; \
	fi

# recovery-smoke kill -9s dfsd underneath a live writer and asserts
# zero loss (§6.2): dfscli smoke streams records with no per-record
# fsync, the server dies mid-stream and comes back with -grace, and the
# client must reconnect, reclaim its tokens, replay the dirty chunks,
# and verify every byte through a second cache-cold client. The first
# server instance checkpoints every 300ms so the file's *creation* is
# durable before the kill — the smoke exercises token/cache recovery,
# not the §2.2 batch-commit window (which deliberately trades the last
# 30s of metadata for restart speed).
RECOVERY_SMOKE_DIR := $(or $(TMPDIR),/tmp)/dfs-recovery-smoke
recovery-smoke:
	@rm -rf $(RECOVERY_SMOKE_DIR) && mkdir -p $(RECOVERY_SMOKE_DIR)
	$(GO) build -o $(RECOVERY_SMOKE_DIR)/ ./cmd/dfsd ./cmd/dfscli
	@set -e; d=$(RECOVERY_SMOKE_DIR); \
	$$d/dfsd -store $$d/agg.img -format -size 16 -volume smoke -sync 300ms \
		-listen 127.0.0.1:17910 >$$d/dfsd1.log 2>&1 & echo $$! >$(RECOVERY_SMOKE_DIR)/dfsd.pid; \
	d=$(RECOVERY_SMOKE_DIR); sleep 1; \
	$$d/dfscli -server 127.0.0.1:17910 -volume 1 smoke rec.dat \
		>$$d/smoke.log 2>&1 & echo $$! >$$d/cli.pid; \
	sleep 2; \
	kill -9 `cat $$d/dfsd.pid` 2>/dev/null; \
	sleep 0.3; \
	$$d/dfsd -store $$d/agg.img -grace 2s \
		-listen 127.0.0.1:17910 >$$d/dfsd2.log 2>&1 & echo $$! >$$d/dfsd.pid; \
	status=0; wait `cat $$d/cli.pid` || status=$$?; \
	kill `cat $$d/dfsd.pid` 2>/dev/null || true; \
	if [ $$status -ne 0 ] || ! grep -q 'SMOKE ok' $$d/smoke.log; then \
		echo "recovery-smoke failed (exit $$status):"; cat $$d/smoke.log; \
		echo "-- dfsd restart log --"; cat $$d/dfsd2.log; exit 1; \
	fi; \
	cat $$d/smoke.log
