package stripe

import (
	"errors"
	"math/rand"
	"testing"

	"decorum/internal/fs"
)

func layoutW(width int) *Layout {
	l := &Layout{Width: width}
	for i := 0; i <= width; i++ {
		l.Members = append(l.Members, Member{
			Addr:   string(rune('a' + i)),
			Volume: fs.VolumeID(100 + i),
		})
	}
	return l
}

func TestValidate(t *testing.T) {
	if err := layoutW(4).Validate(1); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Layout)
	}{
		{"width 1", func(l *Layout) { l.Width = 1; l.Members = l.Members[:2] }},
		{"width 0", func(l *Layout) { l.Width = 0; l.Members = l.Members[:1] }},
		{"member count mismatch", func(l *Layout) { l.Members = l.Members[:3] }},
		{"parity overlap (dup server)", func(l *Layout) { l.Members[4].Addr = l.Members[0].Addr }},
		{"dup member volume", func(l *Layout) { l.Members[4].Volume = l.Members[0].Volume }},
		{"member shadows logical", func(l *Layout) { l.Members[2].Volume = 1 }},
		{"empty addr", func(l *Layout) { l.Members[1].Addr = "" }},
		{"zero volume", func(l *Layout) { l.Members[1].Volume = 0 }},
	}
	for _, tc := range cases {
		l := layoutW(4)
		tc.mut(l)
		if err := l.Validate(1); !errors.Is(err, fs.ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", tc.name, err)
		}
	}
}

// Parity rotates: over MemberCount consecutive rows, every member holds
// parity exactly once, and within a row the data chunks cover exactly
// the other members.
func TestPlacementRotationAndCoverage(t *testing.T) {
	for _, width := range []int{2, 3, 4, 7} {
		l := layoutW(width)
		m := l.MemberCount()
		paritysSeen := make(map[int]int)
		for row := int64(0); row < int64(m); row++ {
			p := l.ParityMember(row)
			paritysSeen[p]++
			seen := map[int]bool{p: true}
			for _, c := range l.RowChunks(row) {
				d := l.DataMember(c)
				if seen[d] {
					t.Fatalf("width %d row %d: member %d assigned twice", width, row, d)
				}
				seen[d] = true
			}
			if len(seen) != m {
				t.Fatalf("width %d row %d: row covers %d members, want %d", width, row, len(seen), m)
			}
		}
		for i := 0; i < m; i++ {
			if paritysSeen[i] != 1 {
				t.Fatalf("width %d: member %d held parity %d times over %d rows",
					width, i, paritysSeen[i], m)
			}
		}
	}
}

func TestOwnsRange(t *testing.T) {
	l := layoutW(4)
	const cs = int64(64)
	// Chunk 0, row 0: parity member is 0, so data member of chunk 0 is 1.
	if got := l.DataMember(0); got != 1 {
		t.Fatalf("DataMember(0) = %d, want 1", got)
	}
	if !l.OwnsRange(1, 0, cs, cs) {
		t.Fatal("data owner must own its chunk's range")
	}
	// Member 0 owns chunk 0 too — as row 0's parity owner.
	if !l.OwnsRange(0, 0, cs, cs) {
		t.Fatal("parity owner must own the row offset range")
	}
	if l.OwnsRange(3, 0, cs, cs) {
		t.Fatal("unrelated member must not own chunk 0")
	}
	// A range spanning two chunks with different data owners is not
	// owned by either chunk's plain data member (member 1 does own it —
	// data owner of chunk 0 AND parity owner of row 1: the union rule).
	if l.OwnsRange(2, 0, 2*cs, cs) {
		t.Fatal("member 2 must not own chunks 0..1")
	}
	if !l.OwnsRange(1, 0, 2*cs, cs) {
		t.Fatal("union rule: member 1 owns chunk 0 (data) and chunk 1 (row-1 parity)")
	}
	if !l.OwnsRange(2, 0, 0, cs) {
		t.Fatal("empty range must be owned trivially")
	}
}

func TestXORReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const size = 256
	l := layoutW(4)
	row := int64(3)
	chunks := make(map[int64][]byte)
	parity := make([]byte, size)
	for _, c := range l.RowChunks(row) {
		b := make([]byte, size)
		rng.Read(b)
		chunks[c] = b
		XORInto(parity, b)
	}
	// Any single lost chunk reconstructs from parity + survivors.
	for _, lost := range l.RowChunks(row) {
		spans := [][]byte{parity}
		for c, b := range chunks {
			if c != lost {
				spans = append(spans, b)
			}
		}
		got := Reconstruct(size, spans...)
		want := chunks[lost]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lost chunk %d: byte %d = %#x, want %#x", lost, i, got[i], want[i])
			}
		}
	}
	// Short (sparse) spans act zero-padded.
	out := Reconstruct(4, []byte{1, 2}, []byte{1})
	if out[0] != 0 || out[1] != 2 || out[2] != 0 || out[3] != 0 {
		t.Fatalf("short-span reconstruct = %v", out)
	}
}

// The delta parity update (p' = p ⊕ old ⊕ new) agrees with recomputing
// parity from scratch.
func TestParityDeltaUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const size = 128
	a, b, c := make([]byte, size), make([]byte, size), make([]byte, size)
	rng.Read(a)
	rng.Read(b)
	rng.Read(c)
	parity := Reconstruct(size, a, b, c)
	bNew := make([]byte, size)
	rng.Read(bNew)
	// Delta update.
	XORInto(parity, b)
	XORInto(parity, bNew)
	want := Reconstruct(size, a, bNew, c)
	for i := range want {
		if parity[i] != want[i] {
			t.Fatalf("delta parity diverges at byte %d", i)
		}
	}
}
