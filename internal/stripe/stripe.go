// Package stripe implements RAID-5-style striping layouts for volumes:
// the layout math mapping a (file, chunk) to the member server owning
// it, the rotating parity placement, and the XOR encode/decode used for
// parity maintenance and degraded-read reconstruction.
//
// A striped volume separates the paper's metadata service from bulk
// data service (the Lustre split): the logical volume stays on one
// primary server, which serves the namespace, attributes, and every
// token (§5, §6 are untouched); file *data* is striped across Width+1
// member volumes, each on its own server. Rows of Width data chunks
// rotate one parity chunk across all Width+1 members, so losing any
// single member loses no data: a missing chunk is the XOR of the
// surviving chunks in its row plus the row's parity (§3.4's VLDB
// carries the layout to clients).
package stripe

import (
	"fmt"

	"decorum/internal/fs"
)

// ChunkSize is the striping unit: one chunk per member per row. It
// matches the client data cache's chunk size, so a cached chunk maps to
// exactly one member object span. It lives here (not in the client)
// because member servers need it to enforce range ownership.
const ChunkSize = 64 * 1024

// Member is one stripe member: a dedicated object volume on a server.
type Member struct {
	// Addr is the member server's address (dialable by the client).
	Addr string
	// Volume is the member's object volume ID — distinct from the
	// logical volume so member-object FIDs never collide with logical
	// FIDs in any client table.
	Volume fs.VolumeID
}

// Layout is a volume's striping declaration, stored in the VLDB
// alongside the volume→server mapping.
type Layout struct {
	// Width is the number of data chunks per row (N ≥ 2).
	Width int
	// Members lists the Width+1 member volumes; parity rotates across
	// all of them so no single member is "the parity server".
	Members []Member
}

// MemberCount is Width+1: the data members plus the rotating parity.
func (l *Layout) MemberCount() int { return l.Width + 1 }

// Validate rejects malformed layouts: width below 2, a member count
// that does not match Width+1, duplicate members (parity overlapping
// the data it protects — losing that server would lose both), and a
// member volume shadowing the logical volume. logical may be zero when
// the caller has no logical volume ID to check against.
func (l *Layout) Validate(logical fs.VolumeID) error {
	if l.Width < 2 {
		return fmt.Errorf("%w: stripe width %d (want ≥ 2)", fs.ErrInvalid, l.Width)
	}
	if len(l.Members) != l.Width+1 {
		return fmt.Errorf("%w: %d members for width %d (want width+1 = %d)",
			fs.ErrInvalid, len(l.Members), l.Width, l.Width+1)
	}
	seenAddr := make(map[string]bool, len(l.Members))
	seenVol := make(map[fs.VolumeID]bool, len(l.Members))
	for i, m := range l.Members {
		if m.Addr == "" {
			return fmt.Errorf("%w: member %d has no address", fs.ErrInvalid, i)
		}
		if m.Volume == 0 {
			return fmt.Errorf("%w: member %d has no volume", fs.ErrInvalid, i)
		}
		if seenAddr[m.Addr] {
			return fmt.Errorf("%w: parity overlap — member server %q appears twice",
				fs.ErrInvalid, m.Addr)
		}
		if seenVol[m.Volume] {
			return fmt.Errorf("%w: member volume %d appears twice", fs.ErrInvalid, m.Volume)
		}
		if logical != 0 && m.Volume == logical {
			return fmt.Errorf("%w: member volume %d shadows the logical volume",
				fs.ErrInvalid, m.Volume)
		}
		seenAddr[m.Addr] = true
		seenVol[m.Volume] = true
	}
	return nil
}

// RowOf is the stripe row a chunk belongs to: each row holds Width
// consecutive data chunks plus one parity chunk.
func (l *Layout) RowOf(chunk int64) int64 { return chunk / int64(l.Width) }

// ParityMember is the member index holding row's parity chunk. Parity
// rotates one member per row (RAID-5), so writes spread parity load
// across the whole member set.
func (l *Layout) ParityMember(row int64) int {
	return int(row % int64(l.MemberCount()))
}

// DataMember is the member index holding a data chunk: the chunk's
// position within its row, skipping the row's parity member.
func (l *Layout) DataMember(chunk int64) int {
	p := l.ParityMember(l.RowOf(chunk))
	k := int(chunk % int64(l.Width))
	if k >= p {
		k++
	}
	return k
}

// RowChunks returns the data chunk indexes of a row, in order.
func (l *Layout) RowChunks(row int64) []int64 {
	out := make([]int64, l.Width)
	for i := range out {
		out[i] = row*int64(l.Width) + int64(i)
	}
	return out
}

// OwnsChunk reports whether member may serve bytes for chunk index c:
// either as the chunk's data owner, or — because a member server cannot
// tell a data object from a parity object by FID — as the parity owner
// of row c (parity objects store row r's parity at chunk offset r).
// The union keeps range enforcement byte-range-token shaped without a
// per-object kind table on the server.
func (l *Layout) OwnsChunk(member int, c int64) bool {
	return l.DataMember(c) == member || l.ParityMember(c) == member
}

// OwnsRange reports whether member owns every chunk the byte range
// [start, end) touches, at the given chunk size. Empty ranges are owned
// trivially.
func (l *Layout) OwnsRange(member int, start, end, chunkSize int64) bool {
	if end <= start {
		return true
	}
	for c := start / chunkSize; c*chunkSize < end; c++ {
		if !l.OwnsChunk(member, c) {
			return false
		}
	}
	return true
}

// DataObjectName is the member-volume object holding a logical file's
// data chunks (at their logical offsets, sparse).
func DataObjectName(fid fs.FID) string {
	return fmt.Sprintf("o%d.%d", fid.Vnode, fid.Uniq)
}

// ParityObjectName is the member-volume object holding a logical file's
// parity: row r's parity chunk lives at offset r*chunkSize.
func ParityObjectName(fid fs.FID) string {
	return fmt.Sprintf("p%d.%d", fid.Vnode, fid.Uniq)
}

// XORInto folds src into dst byte-wise over their common prefix:
// dst[i] ^= src[i]. Spans shorter than dst are implicitly zero-padded —
// exactly the semantics of reading past a sparse object's end.
func XORInto(dst, src []byte) {
	n := len(src)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// Reconstruct XORs spans together into a fresh buffer of size bytes —
// the degraded-read decode: parity ⊕ surviving data chunks of the row
// yields the missing chunk. Short spans act as zero-padded.
func Reconstruct(size int, spans ...[]byte) []byte {
	out := make([]byte, size)
	for _, s := range spans {
		XORInto(out, s)
	}
	return out
}
