package glue

import (
	"errors"

	"decorum/internal/fs"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// Wrap returns a vfs.FileSystem whose operations are synchronized through
// the layer's token manager as the LOCAL host. This is what the server
// node's own system calls go through (Figure 1): a local write first
// obtains a write data token, which revokes conflicting tokens held by
// remote clients — the §5.5 example end to end.
func (l *Layer) Wrap(inner vfs.FileSystem) vfs.FileSystem {
	return &wrapFS{layer: l, inner: inner}
}

type wrapFS struct {
	layer *Layer
	inner vfs.FileSystem
}

// Root implements vfs.FileSystem.
func (w *wrapFS) Root() (vfs.Vnode, error) {
	v, err := w.inner.Root()
	if err != nil {
		return nil, err
	}
	return &wrapVnode{fs: w, inner: v}, nil
}

// Get implements vfs.FileSystem.
func (w *wrapFS) Get(fid fs.FID) (vfs.Vnode, error) {
	v, err := w.inner.Get(fid)
	if err != nil {
		return nil, err
	}
	return &wrapVnode{fs: w, inner: v}, nil
}

// Statfs implements vfs.FileSystem.
func (w *wrapFS) Statfs() (fs.Statfs, error) { return w.inner.Statfs() }

// Sync implements vfs.FileSystem.
func (w *wrapFS) Sync() error { return w.inner.Sync() }

type wrapVnode struct {
	fs    *wrapFS
	inner vfs.Vnode
}

// FID implements vfs.Vnode.
func (v *wrapVnode) FID() fs.FID { return v.inner.FID() }

// withTokens locks the file, acquires local tokens, runs fn, releases.
//
// The vnode lock is deliberately held across the acquisition, and the
// order matters twice over. Acquiring first would deadlock locally: a
// tracked-but-lock-waiting operation would stall any revocation aimed
// at its token, while the lock holder stalls on that same revocation.
// Locking first is safe because the whole-cell cycle the acquisition
// opens (fidLock -> rpc(cb.Revoke) -> rpc(dfs.StoreData) -> fidLock)
// is broken by §6.3: store-backs issued by revocation code set
// FromRevocation and bypass the vnode lock on the server, and local
// operations become revocation-visible only once they already hold the
// lock. dfsvet's lock-order graph cannot see the FromRevocation flag,
// hence the suppression below.
func (v *wrapVnode) withTokens(types token.Type, rng token.Range, fn func() error) error {
	fid := v.inner.FID()
	unlock := v.fs.layer.LockFile(fid)
	defer unlock()
	//lint:ignore lockcheck the rpc(dfs.StoreData) -> fidLock edge of this cycle is cut at runtime by the §6.3 FromRevocation bypass
	release, err := v.fs.layer.acquireLocal(fid, types, rng)
	if err != nil {
		return mapTokenErr(err)
	}
	defer release()
	return fn()
}

func mapTokenErr(err error) error {
	if errors.Is(err, token.ErrConflict) {
		return fs.ErrBusy
	}
	return err
}

// Attr implements vfs.Vnode.
func (v *wrapVnode) Attr(ctx *vfs.Context) (fs.Attr, error) {
	var out fs.Attr
	err := v.withTokens(token.StatusRead, token.WholeFile, func() error {
		var err error
		out, err = v.inner.Attr(ctx)
		return err
	})
	return out, err
}

// SetAttr implements vfs.Vnode.
func (v *wrapVnode) SetAttr(ctx *vfs.Context, ch fs.AttrChange) (fs.Attr, error) {
	types := token.StatusWrite
	if ch.Length != nil {
		types |= token.DataWrite
	}
	var out fs.Attr
	err := v.withTokens(types, token.WholeFile, func() error {
		var err error
		out, err = v.inner.SetAttr(ctx, ch)
		return err
	})
	return out, err
}

// Read implements vfs.Vnode.
func (v *wrapVnode) Read(ctx *vfs.Context, p []byte, off int64) (int, error) {
	var n int
	err := v.withTokens(token.DataRead, token.Range{Start: off, End: off + int64(len(p))},
		func() error {
			var err error
			n, err = v.inner.Read(ctx, p, off)
			return err
		})
	return n, err
}

// Write implements vfs.Vnode.
func (v *wrapVnode) Write(ctx *vfs.Context, p []byte, off int64) (int, error) {
	var n int
	err := v.withTokens(token.DataWrite|token.StatusWrite,
		token.Range{Start: off, End: off + int64(len(p))},
		func() error {
			var err error
			n, err = v.inner.Write(ctx, p, off)
			return err
		})
	return n, err
}

// Lookup implements vfs.Vnode.
func (v *wrapVnode) Lookup(ctx *vfs.Context, name string) (vfs.Vnode, error) {
	var out vfs.Vnode
	err := v.withTokens(token.DataRead, token.WholeFile, func() error {
		inner, err := v.inner.Lookup(ctx, name)
		if err != nil {
			return err
		}
		out = &wrapVnode{fs: v.fs, inner: inner}
		return nil
	})
	return out, err
}

// Create implements vfs.Vnode.
func (v *wrapVnode) Create(ctx *vfs.Context, name string, mode fs.Mode) (vfs.Vnode, error) {
	var out vfs.Vnode
	err := v.withTokens(token.DataWrite|token.StatusWrite, token.WholeFile, func() error {
		inner, err := v.inner.Create(ctx, name, mode)
		if err != nil {
			return err
		}
		out = &wrapVnode{fs: v.fs, inner: inner}
		return nil
	})
	return out, err
}

// Mkdir implements vfs.Vnode.
func (v *wrapVnode) Mkdir(ctx *vfs.Context, name string, mode fs.Mode) (vfs.Vnode, error) {
	var out vfs.Vnode
	err := v.withTokens(token.DataWrite|token.StatusWrite, token.WholeFile, func() error {
		inner, err := v.inner.Mkdir(ctx, name, mode)
		if err != nil {
			return err
		}
		out = &wrapVnode{fs: v.fs, inner: inner}
		return nil
	})
	return out, err
}

// Symlink implements vfs.Vnode.
func (v *wrapVnode) Symlink(ctx *vfs.Context, name, target string) (vfs.Vnode, error) {
	var out vfs.Vnode
	err := v.withTokens(token.DataWrite|token.StatusWrite, token.WholeFile, func() error {
		inner, err := v.inner.Symlink(ctx, name, target)
		if err != nil {
			return err
		}
		out = &wrapVnode{fs: v.fs, inner: inner}
		return nil
	})
	return out, err
}

// Readlink implements vfs.Vnode.
func (v *wrapVnode) Readlink(ctx *vfs.Context) (string, error) {
	var out string
	err := v.withTokens(token.DataRead, token.WholeFile, func() error {
		var err error
		out, err = v.inner.Readlink(ctx)
		return err
	})
	return out, err
}

// Link implements vfs.Vnode.
func (v *wrapVnode) Link(ctx *vfs.Context, name string, target vfs.Vnode) error {
	tv, ok := target.(*wrapVnode)
	if !ok {
		return fs.ErrInvalid
	}
	// Target status changes (nlink); take its status-write token too.
	tfid := tv.inner.FID()
	return v.withTokens(token.DataWrite|token.StatusWrite, token.WholeFile, func() error {
		rel, err := v.fs.layer.acquireLocal(tfid, token.StatusWrite, token.WholeFile)
		if err != nil {
			return mapTokenErr(err)
		}
		defer rel()
		return v.inner.Link(ctx, name, tv.inner)
	})
}

// Remove implements vfs.Vnode. Before deleting, the glue acquires an
// exclusive-write open token on the victim, so "a virtual file system can
// assure itself that a file about to be deleted has no remote users"
// (§5.4). A remote host with the file open refuses, surfacing ErrBusy.
func (v *wrapVnode) Remove(ctx *vfs.Context, name string) error {
	return v.withTokens(token.DataWrite|token.StatusWrite, token.WholeFile, func() error {
		victim, err := v.inner.Lookup(ctx, name)
		if err != nil {
			return err
		}
		rel, err := v.fs.layer.acquireLocal(victim.FID(), token.OpenExclusive, token.WholeFile)
		if err != nil {
			return mapTokenErr(err)
		}
		defer rel()
		return v.inner.Remove(ctx, name)
	})
}

// Rmdir implements vfs.Vnode.
func (v *wrapVnode) Rmdir(ctx *vfs.Context, name string) error {
	return v.withTokens(token.DataWrite|token.StatusWrite, token.WholeFile, func() error {
		return v.inner.Rmdir(ctx, name)
	})
}

// Rename implements vfs.Vnode: both directory locks in FID order.
func (v *wrapVnode) Rename(ctx *vfs.Context, oldName string, newDir vfs.Vnode, newName string) error {
	nd, ok := newDir.(*wrapVnode)
	if !ok {
		return fs.ErrInvalid
	}
	srcFID, dstFID := v.inner.FID(), nd.inner.FID()
	unlock := v.fs.layer.LockFiles(srcFID, dstFID)
	defer unlock()
	rel1, err := v.fs.layer.acquireLocal(srcFID, token.DataWrite|token.StatusWrite, token.WholeFile)
	if err != nil {
		return mapTokenErr(err)
	}
	defer rel1()
	if dstFID != srcFID {
		rel2, err := v.fs.layer.acquireLocal(dstFID, token.DataWrite|token.StatusWrite, token.WholeFile)
		if err != nil {
			return mapTokenErr(err)
		}
		defer rel2()
	}
	return v.inner.Rename(ctx, oldName, nd.inner, newName)
}

// ReadDir implements vfs.Vnode.
func (v *wrapVnode) ReadDir(ctx *vfs.Context) ([]fs.Dirent, error) {
	var out []fs.Dirent
	err := v.withTokens(token.DataRead, token.WholeFile, func() error {
		var err error
		out, err = v.inner.ReadDir(ctx)
		return err
	})
	return out, err
}
