package glue

import (
	"errors"
	"sync"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/locking"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

func newWrapped(t *testing.T) (*Layer, vfs.FileSystem, *token.Manager) {
	t.Helper()
	dev := blockdev.NewMem(512, 4096)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 64, PoolSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := agg.CreateVolume("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := agg.Mount(vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	tm := token.NewManager()
	l := New(tm)
	return l, l.Wrap(inner), tm
}

func su() *vfs.Context { return vfs.Superuser() }

func TestWrappedOpsAcquireAndReleaseTokens(t *testing.T) {
	l, fsys, tm := newWrapped(t)
	_ = l
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	f, err := root.Create(su(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(su(), []byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.Read(su(), buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "data" {
		t.Fatalf("read %q", buf)
	}
	// Local ops return their tokens immediately (§5.5): nothing remains.
	if toks := tm.HoldersOf(f.FID()); len(toks) != 0 {
		t.Fatalf("local op left tokens: %v", toks)
	}
	st := tm.Stats()
	if st.Grants == 0 || st.Releases != st.Grants {
		t.Fatalf("grants %d, releases %d", st.Grants, st.Releases)
	}
}

// remoteHost simulates a registered client that holds tokens; its Revoke
// records the call.
type remoteHost struct {
	id      uint64
	mu      sync.Mutex
	revoked int
	refuse  bool
}

func (h *remoteHost) HostID() uint64 { return h.id }
func (h *remoteHost) Revoke(tok token.Token) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.revoked++
	return !h.refuse, nil
}

func TestLocalWriteRevokesRemoteTokens(t *testing.T) {
	_, fsys, tm := newWrapped(t)
	root, _ := fsys.Root()
	f, err := root.Create(su(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	remote := &remoteHost{id: 50}
	tm.Register(remote)
	if _, err := tm.Acquire(50, f.FID(), token.DataWrite|token.DataRead, token.WholeFile); err != nil {
		t.Fatal(err)
	}
	// A local write must first revoke the remote's data tokens (§5.5).
	if _, err := f.Write(su(), []byte("local"), 0); err != nil {
		t.Fatal(err)
	}
	if remote.revoked != 1 {
		t.Fatalf("remote revoked %d times, want 1", remote.revoked)
	}
}

func TestRemoveBlockedByRemoteOpen(t *testing.T) {
	_, fsys, tm := newWrapped(t)
	root, _ := fsys.Root()
	f, err := root.Create(su(), "busy", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	remote := &remoteHost{id: 51, refuse: true}
	tm.Register(remote)
	if _, err := tm.Acquire(51, f.FID(), token.OpenExecute, token.WholeFile); err != nil {
		t.Fatal(err)
	}
	// §5.4: the exclusive-write open for deletion is refused.
	if err := root.Remove(su(), "busy"); !errors.Is(err, fs.ErrBusy) {
		t.Fatalf("remove of remotely-open file: %v", err)
	}
	// The remote lets go; removal proceeds.
	remote.refuse = false
	if err := root.Remove(su(), "busy"); err != nil {
		t.Fatal(err)
	}
}

func TestLocalHostRevokeWaitsForOperation(t *testing.T) {
	l, _, tm := newWrapped(t)
	fid := fs.FID{Volume: 1, Vnode: 99, Uniq: 1}
	release, err := l.acquireLocal(fid, token.DataWrite, token.WholeFile)
	if err != nil {
		t.Fatal(err)
	}
	remote := &remoteHost{id: 52}
	tm.Register(remote)
	// The remote's conflicting acquire blocks until the local op releases.
	done := make(chan error, 1)
	go func() {
		_, err := tm.Acquire(52, fid, token.DataWrite, token.WholeFile)
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("acquire completed while local op held the token")
	case <-time.After(50 * time.Millisecond):
	}
	release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("acquire never completed after local release")
	}
}

func TestLockFilesOrderAndDedupe(t *testing.T) {
	l := New(token.NewManager())
	l.Order = locking.New()
	a := fs.FID{Volume: 1, Vnode: 2, Uniq: 1}
	b := fs.FID{Volume: 1, Vnode: 1, Uniq: 1}
	// Passing out of order (and with a duplicate) must still acquire in
	// canonical order.
	unlock := l.LockFiles(a, b, a)
	unlock()
	if v := l.Order.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestLockFileContention(t *testing.T) {
	l := New(token.NewManager())
	fid := fs.FID{Volume: 1, Vnode: 1, Uniq: 1}
	unlock := l.LockFile(fid)
	got := make(chan struct{})
	go func() {
		u := l.LockFile(fid)
		close(got)
		u()
	}()
	select {
	case <-got:
		t.Fatal("second lock acquired while first held")
	case <-time.After(30 * time.Millisecond):
	}
	unlock()
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("second lock never acquired")
	}
}

func TestRenameThroughWrapper(t *testing.T) {
	_, fsys, _ := newWrapped(t)
	root, _ := fsys.Root()
	d1, _ := root.Mkdir(su(), "d1", 0o755)
	d2, _ := root.Mkdir(su(), "d2", 0o755)
	if _, err := d1.Create(su(), "f", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := d1.Rename(su(), "f", d2, "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Lookup(su(), "g"); err != nil {
		t.Fatal(err)
	}
	// Link + ReadDir + Symlink + ACL pass through.
	f, _ := d2.Lookup(su(), "g")
	if err := root.Link(su(), "hard", f); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Symlink(su(), "sym", "d2/g"); err != nil {
		t.Fatal(err)
	}
	ents, err := root.ReadDir(su())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("%d entries", len(ents))
	}
	ln, _ := root.Lookup(su(), "sym")
	if target, err := ln.Readlink(su()); err != nil || target != "d2/g" {
		t.Fatalf("readlink %q %v", target, err)
	}
}
