// Package glue implements the Vnode glue layer (§3.3 of the paper): "For
// each Vnode operation provided by a conventional file system, a
// corresponding wrapper operation is substituted that obtains tokens and
// then performs the original operation."
//
// The glue layer is what makes the token manager authoritative over ALL
// access to an exported physical file system — local system calls and
// remote protocol exporters alike (§5.1). Local callers go through Wrap,
// which acquires tokens as the local host (immediately returning them when
// the operation completes, per the §5.5 example); the protocol exporter
// uses LockFile/Manager directly, acquiring tokens on behalf of remote
// hosts, which keep them.
//
// The per-file locks here are the middle level of the paper's locking
// hierarchy (§6.1): client high-level vnode lock ≺ server vnode lock ≺
// client low-level vnode lock. internal/locking's order checker enforces
// that relationship in tests.
package glue

import (
	"sync"

	"decorum/internal/fs"
	"decorum/internal/locking"
	"decorum/internal/token"
)

// LocalHostID is the token-manager host standing for the server node's
// own kernel (local system calls).
const LocalHostID uint64 = 1

// Layer owns the token manager, the server-side per-file locks, and the
// local host registration for one exported file system.
type Layer struct {
	tm    *token.Manager
	local *localHost

	mu    sync.Mutex
	locks map[fs.FID]*fidLock // guarded by mu

	// Order is the lock-order checker; tests arm it, production leaves it
	// nil-cheap.
	Order *locking.Checker
}

type fidLock struct {
	mu   sync.Mutex
	refs int // guarded by Layer.mu (the table lock, not the per-file mu)
}

// New builds a Layer around a token manager and registers the local host.
func New(tm *token.Manager) *Layer {
	l := &Layer{
		tm:    tm,
		local: newLocalHost(),
		locks: make(map[fs.FID]*fidLock),
	}
	tm.Register(l.local)
	return l
}

// Manager exposes the token manager (the exporter acquires remote-host
// tokens through it).
func (l *Layer) Manager() *token.Manager { return l.tm }

// LockFile takes the server vnode lock for fid and returns the unlock.
// The lock table allocates lazily and reclaims when uncontended.
func (l *Layer) LockFile(fid fs.FID) func() {
	l.mu.Lock()
	fl, ok := l.locks[fid]
	if !ok {
		fl = &fidLock{}
		l.locks[fid] = fl
	}
	fl.refs++
	l.mu.Unlock()

	if l.Order != nil {
		l.Order.Acquire(locking.LevelServerVnode, fid)
	}
	fl.mu.Lock()
	return func() {
		fl.mu.Unlock()
		if l.Order != nil {
			l.Order.Release(locking.LevelServerVnode, fid)
		}
		l.mu.Lock()
		fl.refs--
		if fl.refs == 0 {
			delete(l.locks, fid)
		}
		l.mu.Unlock()
	}
}

// LockFiles takes server vnode locks for several files in canonical FID
// order (the deadlock-avoidance rule for multi-file operations such as
// rename).
func (l *Layer) LockFiles(fids ...fs.FID) func() {
	ordered := append([]fs.FID(nil), fids...)
	// Dedupe and sort by (Volume, Vnode, Uniq).
	sortFIDs(ordered)
	uniq := ordered[:0]
	var last fs.FID
	for i, f := range ordered {
		if i == 0 || f != last {
			uniq = append(uniq, f)
		}
		last = f
	}
	unlocks := make([]func(), 0, len(uniq))
	for _, f := range uniq {
		unlocks = append(unlocks, l.LockFile(f))
	}
	return func() {
		for i := len(unlocks) - 1; i >= 0; i-- {
			unlocks[i]()
		}
	}
}

func sortFIDs(fids []fs.FID) {
	for i := 0; i < len(fids); i++ {
		for j := i + 1; j < len(fids); j++ {
			if fidLess(fids[j], fids[i]) {
				fids[i], fids[j] = fids[j], fids[i]
			}
		}
	}
}

func fidLess(a, b fs.FID) bool {
	if a.Volume != b.Volume {
		return a.Volume < b.Volume
	}
	if a.Vnode != b.Vnode {
		return a.Vnode < b.Vnode
	}
	return a.Uniq < b.Uniq
}

// localHost is the token.Host for the server's own kernel. It holds
// tokens only for the duration of one operation (§5.5: "the Vnode glue
// code need not hold onto its write data token for very long"); a
// revocation arriving mid-operation waits for the operation to finish and
// then reports the token returned.
type localHost struct {
	mu     sync.Mutex
	active map[token.ID]chan struct{} // guarded by mu
}

func newLocalHost() *localHost {
	return &localHost{active: make(map[token.ID]chan struct{})}
}

// HostID implements token.Host.
func (h *localHost) HostID() uint64 { return LocalHostID }

// Revoke implements token.Host: wait for the in-flight operation (if any)
// holding the token, then agree to return it.
func (h *localHost) Revoke(tok token.Token) (bool, error) {
	h.mu.Lock()
	ch, ok := h.active[tok.ID]
	h.mu.Unlock()
	if ok {
		<-ch
	}
	return true, nil
}

// track marks a token in use until the returned release func runs.
func (h *localHost) track(id token.ID) func() {
	ch := make(chan struct{})
	h.mu.Lock()
	h.active[id] = ch
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		delete(h.active, id)
		h.mu.Unlock()
		close(ch)
	}
}

// acquireLocal takes tokens for the local host and returns a release
// function that returns them to the manager.
func (l *Layer) acquireLocal(fid fs.FID, types token.Type, rng token.Range) (func(), error) {
	tok, err := l.tm.Acquire(LocalHostID, fid, types, rng)
	if err != nil {
		return nil, err
	}
	untrack := l.local.track(tok.ID)
	return func() {
		untrack()
		l.tm.Release(tok.ID)
	}, nil
}
