package fs

import (
	"fmt"
	"sort"
	"strings"
)

// Rights is a bitmask of the POSIX-style ACL rights DEcorum grants.
// Unlike AFS (directory-only ACLs with per-directory scope), DEcorum allows
// an ACL on any file or directory (§2.3 of the paper).
type Rights uint8

// Individual rights.
const (
	RightRead Rights = 1 << iota
	RightWrite
	RightExecute // lookup, for directories
	RightInsert  // create entries in a directory
	RightDelete  // remove entries from a directory
	RightAdmin   // change the ACL or mode bits
	RightLock    // set file locks

	// RightsAll is every right at once.
	RightsAll Rights = RightRead | RightWrite | RightExecute |
		RightInsert | RightDelete | RightAdmin | RightLock
)

// Has reports whether r includes all rights in want.
func (r Rights) Has(want Rights) bool { return r&want == want }

func (r Rights) String() string {
	if r == 0 {
		return "none"
	}
	var b strings.Builder
	for _, p := range []struct {
		bit Rights
		c   byte
	}{
		{RightRead, 'r'}, {RightWrite, 'w'}, {RightExecute, 'x'},
		{RightInsert, 'i'}, {RightDelete, 'd'}, {RightAdmin, 'a'},
		{RightLock, 'k'},
	} {
		if r&p.bit != 0 {
			b.WriteByte(p.c)
		}
	}
	return b.String()
}

// WhoKind says what an ACL entry's Who field names.
type WhoKind uint8

// ACL entry subject kinds.
const (
	WhoUser WhoKind = iota
	WhoGroup
	WhoOther // everyone not matched by a more specific entry
)

// ACLEntry pairs a principal (or group, or "other") with rights that are
// either granted or denied. Deny entries take precedence over grants, as in
// POSIX.1e deny-first evaluation within our fixed ordering.
type ACLEntry struct {
	Subject Who
	Deny    bool
	Rights  Rights
}

// Who identifies the subject of an ACL entry.
type Who struct {
	Kind WhoKind
	ID   uint32 // UserID or GroupID; unused for WhoOther
}

// ACL is an ordered association list of entries. Evaluation: collect the
// most specific matching layer (user entries, then group entries, then
// other); within the layer, deny bits remove rights granted by other
// entries of the same layer.
type ACL struct {
	Entries []ACLEntry
}

// Clone returns a deep copy of the ACL.
func (a ACL) Clone() ACL {
	out := ACL{Entries: make([]ACLEntry, len(a.Entries))}
	copy(out.Entries, a.Entries)
	return out
}

// Grant appends a grant entry.
func (a *ACL) Grant(w Who, r Rights) { a.Entries = append(a.Entries, ACLEntry{Subject: w, Rights: r}) }

// Denies appends a deny entry.
func (a *ACL) Denies(w Who, r Rights) {
	a.Entries = append(a.Entries, ACLEntry{Subject: w, Deny: true, Rights: r})
}

// Permits evaluates the ACL for a caller with the given identity and group
// memberships, returning the effective rights.
func (a ACL) Permits(user UserID, groups []GroupID) Rights {
	if user == SuperUser {
		return RightsAll
	}
	var (
		grant, deny  Rights
		matchedUser  bool
		matchedGroup bool
	)
	inGroup := func(g uint32) bool {
		for _, have := range groups {
			if uint32(have) == g {
				return true
			}
		}
		return false
	}
	// User layer.
	for _, e := range a.Entries {
		if e.Subject.Kind == WhoUser && UserID(e.Subject.ID) == user {
			matchedUser = true
			if e.Deny {
				deny |= e.Rights
			} else {
				grant |= e.Rights
			}
		}
	}
	if matchedUser {
		return grant &^ deny
	}
	// Group layer.
	for _, e := range a.Entries {
		if e.Subject.Kind == WhoGroup && inGroup(e.Subject.ID) {
			matchedGroup = true
			if e.Deny {
				deny |= e.Rights
			} else {
				grant |= e.Rights
			}
		}
	}
	if matchedGroup {
		return grant &^ deny
	}
	// Other layer.
	for _, e := range a.Entries {
		if e.Subject.Kind == WhoOther {
			if e.Deny {
				deny |= e.Rights
			} else {
				grant |= e.Rights
			}
		}
	}
	return grant &^ deny
}

// FromMode derives the default ACL implied by UNIX mode bits, so files with
// no explicit ACL still evaluate consistently.
func FromMode(mode Mode, owner UserID, group GroupID) ACL {
	var a ACL
	var or, gr, wr Rights
	if mode&ModeOwnerRead != 0 {
		or |= RightRead
	}
	if mode&ModeOwnerWrite != 0 {
		or |= RightWrite | RightInsert | RightDelete
	}
	if mode&ModeOwnerExec != 0 {
		or |= RightExecute
	}
	or |= RightAdmin | RightLock
	if mode&ModeGroupRead != 0 {
		gr |= RightRead
	}
	if mode&ModeGroupWrite != 0 {
		gr |= RightWrite | RightInsert | RightDelete
	}
	if mode&ModeGroupExec != 0 {
		gr |= RightExecute
	}
	if mode&ModeGroupRead != 0 || mode&ModeGroupWrite != 0 {
		gr |= RightLock
	}
	if mode&ModeOtherRead != 0 {
		wr |= RightRead
	}
	if mode&ModeOtherWrite != 0 {
		wr |= RightWrite | RightInsert | RightDelete
	}
	if mode&ModeOtherExec != 0 {
		wr |= RightExecute
	}
	if mode&ModeOtherRead != 0 || mode&ModeOtherWrite != 0 {
		wr |= RightLock
	}
	a.Grant(Who{Kind: WhoUser, ID: uint32(owner)}, or)
	if gr != 0 {
		a.Grant(Who{Kind: WhoGroup, ID: uint32(group)}, gr)
	}
	if wr != 0 {
		a.Grant(Who{Kind: WhoOther}, wr)
	}
	return a
}

// Normalize sorts entries into a canonical order (users, groups, other;
// grants before denies within a subject) and merges duplicates. Useful for
// golden tests and wire round-trips.
func (a *ACL) Normalize() {
	type key struct {
		kind WhoKind
		id   uint32
		deny bool
	}
	merged := map[key]Rights{}
	order := []key{}
	for _, e := range a.Entries {
		k := key{e.Subject.Kind, e.Subject.ID, e.Deny}
		if _, ok := merged[k]; !ok {
			order = append(order, k)
		}
		merged[k] |= e.Rights
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return !a.deny && b.deny
	})
	out := make([]ACLEntry, 0, len(order))
	for _, k := range order {
		out = append(out, ACLEntry{
			Subject: Who{Kind: k.kind, ID: k.id},
			Deny:    k.deny,
			Rights:  merged[k],
		})
	}
	a.Entries = out
}

func (a ACL) String() string {
	var b strings.Builder
	for i, e := range a.Entries {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch e.Subject.Kind {
		case WhoUser:
			fmt.Fprintf(&b, "u:%d", e.Subject.ID)
		case WhoGroup:
			fmt.Fprintf(&b, "g:%d", e.Subject.ID)
		case WhoOther:
			b.WriteString("o:")
		}
		if e.Deny {
			b.WriteString("-")
		} else {
			b.WriteString("+")
		}
		b.WriteString(e.Rights.String())
	}
	return b.String()
}
