package fs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestErrorCodeRoundTrip(t *testing.T) {
	all := []error{
		ErrNotExist, ErrExist, ErrNotDir, ErrIsDir, ErrNotEmpty, ErrPerm,
		ErrNoSpace, ErrStale, ErrReadOnly, ErrInvalid, ErrNameTooLong,
		ErrBusy, ErrOffline, ErrLockConflict, ErrQuota,
	}
	for _, e := range all {
		code := CodeOf(e)
		if code == CodeOK || code == CodeUnknown {
			t.Fatalf("%v mapped to %d", e, code)
		}
		back := ErrOf(code)
		if !errors.Is(back, e) {
			t.Fatalf("round trip lost %v", e)
		}
		// Wrapped errors keep their codes.
		if CodeOf(fmt.Errorf("context: %w", e)) != code {
			t.Fatalf("wrapping changed code for %v", e)
		}
	}
	if CodeOf(nil) != CodeOK || ErrOf(CodeOK) != nil {
		t.Fatal("nil handling")
	}
	if CodeOf(errors.New("novel")) != CodeUnknown {
		t.Fatal("unknown error code")
	}
	if ErrOf(ErrorCode(9999)) == nil {
		t.Fatal("unknown code should yield an error")
	}
}

func TestFIDString(t *testing.T) {
	f := FID{Volume: 3, Vnode: 14, Uniq: 15}
	if f.String() != "3.14.15" {
		t.Fatalf("String = %q", f.String())
	}
	if !(FID{}).IsZero() || f.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestAttrChangeAny(t *testing.T) {
	if (AttrChange{}).Any() {
		t.Fatal("empty change reports Any")
	}
	m := Mode(0o644)
	if !(AttrChange{Mode: &m}).Any() {
		t.Fatal("mode change not Any")
	}
}

func TestRightsHasAndString(t *testing.T) {
	r := RightRead | RightWrite
	if !r.Has(RightRead) || r.Has(RightAdmin) {
		t.Fatal("Has wrong")
	}
	if r.String() != "rw" {
		t.Fatalf("String = %q", r.String())
	}
	if Rights(0).String() != "none" {
		t.Fatal("zero rights string")
	}
	if !RightsAll.Has(RightLock | RightDelete) {
		t.Fatal("RightsAll incomplete")
	}
}

func TestACLLayering(t *testing.T) {
	var a ACL
	a.Grant(Who{Kind: WhoUser, ID: 10}, RightRead)
	a.Grant(Who{Kind: WhoGroup, ID: 20}, RightRead|RightWrite)
	a.Grant(Who{Kind: WhoOther}, RightExecute)

	// A matching user entry masks group and other layers entirely.
	if got := a.Permits(10, []GroupID{20}); got != RightRead {
		t.Fatalf("user layer: %v", got)
	}
	// A group member without a user entry gets the group layer.
	if got := a.Permits(11, []GroupID{20}); got != RightRead|RightWrite {
		t.Fatalf("group layer: %v", got)
	}
	// Everyone else gets the other layer.
	if got := a.Permits(12, nil); got != RightExecute {
		t.Fatalf("other layer: %v", got)
	}
	// Superuser bypasses.
	if got := a.Permits(SuperUser, nil); got != RightsAll {
		t.Fatalf("superuser: %v", got)
	}
}

func TestACLDenyWithinLayer(t *testing.T) {
	var a ACL
	a.Grant(Who{Kind: WhoGroup, ID: 5}, RightRead|RightWrite)
	a.Denies(Who{Kind: WhoUser, ID: 30}, RightWrite)
	a.Grant(Who{Kind: WhoUser, ID: 30}, RightRead|RightWrite)
	// The user layer matched: deny removes write from the same layer.
	if got := a.Permits(30, []GroupID{5}); got != RightRead {
		t.Fatalf("deny: %v", got)
	}
}

func TestFromModeOwnerGroupOther(t *testing.T) {
	a := FromMode(0o640, 100, 200)
	if got := a.Permits(100, nil); !got.Has(RightRead | RightWrite | RightAdmin) {
		t.Fatalf("owner: %v", got)
	}
	if got := a.Permits(5, []GroupID{200}); got != RightRead|RightLock {
		t.Fatalf("group: %v", got)
	}
	if got := a.Permits(5, nil); got != 0 {
		t.Fatalf("other on 0640: %v", got)
	}
	a = FromMode(0o644, 100, 200)
	if got := a.Permits(5, nil); !got.Has(RightRead) {
		t.Fatalf("other on 0644: %v", got)
	}
}

func TestNormalizeMergesAndOrders(t *testing.T) {
	var a ACL
	a.Grant(Who{Kind: WhoOther}, RightRead)
	a.Grant(Who{Kind: WhoUser, ID: 2}, RightRead)
	a.Grant(Who{Kind: WhoUser, ID: 2}, RightWrite)
	a.Grant(Who{Kind: WhoUser, ID: 1}, RightExecute)
	a.Normalize()
	if len(a.Entries) != 3 {
		t.Fatalf("entries %v", a.Entries)
	}
	if a.Entries[0].Subject.ID != 1 || a.Entries[1].Subject.ID != 2 {
		t.Fatalf("order %v", a.Entries)
	}
	if a.Entries[1].Rights != RightRead|RightWrite {
		t.Fatalf("merge %v", a.Entries[1])
	}
	if a.Entries[2].Subject.Kind != WhoOther {
		t.Fatalf("other last: %v", a.Entries)
	}
}

// Property: Normalize never changes evaluation results.
func TestQuickNormalizePreservesSemantics(t *testing.T) {
	f := func(entries []struct {
		Kind  uint8
		ID    uint16
		Deny  bool
		Right uint8
	}, user uint16, group uint16) bool {
		var a ACL
		for _, e := range entries {
			a.Entries = append(a.Entries, ACLEntry{
				Subject: Who{Kind: WhoKind(e.Kind % 3), ID: uint32(e.ID % 8)},
				Deny:    e.Deny,
				Rights:  Rights(e.Right) & RightsAll,
			})
		}
		u := UserID(user%8) + 1 // avoid superuser
		g := []GroupID{GroupID(group % 8)}
		before := a.Permits(u, g)
		n := a.Clone()
		n.Normalize()
		return n.Permits(u, g) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
