// Package fs defines the value types shared by every layer of the DEcorum
// file system: file identifiers, attributes, directory entries, access
// control lists, and the common error vocabulary.
//
// The package is deliberately free of behaviour so that the physical file
// systems (episode, ffs), the protocol exporter, and the cache manager can
// all exchange these values without import cycles.
package fs

import (
	"errors"
	"fmt"
)

// VolumeID names a volume within a cell. Volume IDs are allocated by the
// volume location database and are unique cell-wide, so a volume keeps its
// ID when it moves between aggregates or servers.
type VolumeID uint64

// FID identifies a file cell-wide, following the AFS/DFS convention:
// the volume it lives in, a per-volume vnode index, and a uniquifier that
// distinguishes reincarnations of the same vnode slot.
type FID struct {
	Volume VolumeID
	Vnode  uint64
	Uniq   uint64
}

// IsZero reports whether the FID is the zero value (no file).
func (f FID) IsZero() bool { return f == FID{} }

func (f FID) String() string {
	return fmt.Sprintf("%d.%d.%d", f.Volume, f.Vnode, f.Uniq)
}

// FileType is the type of the object a vnode refers to.
type FileType uint8

// File types.
const (
	TypeNone FileType = iota
	TypeFile
	TypeDir
	TypeSymlink
)

func (t FileType) String() string {
	switch t {
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	default:
		return "none"
	}
}

// Mode holds the UNIX permission bits (the low 12 bits: rwxrwxrwx plus
// setuid/setgid/sticky). ACLs refine but do not replace these.
type Mode uint16

// Permission bit masks within a Mode.
const (
	ModeOwnerRead  Mode = 0400
	ModeOwnerWrite Mode = 0200
	ModeOwnerExec  Mode = 0100
	ModeGroupRead  Mode = 0040
	ModeGroupWrite Mode = 0020
	ModeGroupExec  Mode = 0010
	ModeOtherRead  Mode = 0004
	ModeOtherWrite Mode = 0002
	ModeOtherExec  Mode = 0001
)

// UserID identifies an authenticated principal. UID 0 is the superuser;
// AnonymousID is an unauthenticated caller.
type UserID uint32

// GroupID identifies a group of principals.
type GroupID uint32

// Well-known identities.
const (
	SuperUser   UserID = 0
	AnonymousID UserID = 0xFFFFFFFE
)

// Attr carries the status information for a file: everything a client may
// cache under a status-read token and modify under a status-write token.
type Attr struct {
	FID         FID
	Type        FileType
	Mode        Mode
	Nlink       uint32
	Owner       UserID
	Group       GroupID
	Length      int64
	Blocks      int64 // allocated blocks, for du-style accounting
	Atime       int64 // nanoseconds since epoch (simulated clock)
	Mtime       int64
	Ctime       int64
	DataVersion uint64 // incremented on every data mutation
}

// AttrChange describes a partial attribute update (SetAttr). Nil fields are
// left unchanged.
type AttrChange struct {
	Mode   *Mode
	Owner  *UserID
	Group  *GroupID
	Length *int64 // truncate/extend
	Atime  *int64
	Mtime  *int64
}

// Any reports whether the change modifies anything.
func (c AttrChange) Any() bool {
	return c.Mode != nil || c.Owner != nil || c.Group != nil ||
		c.Length != nil || c.Atime != nil || c.Mtime != nil
}

// Dirent is one directory entry as returned by ReadDir.
type Dirent struct {
	Name  string
	Vnode uint64
	Uniq  uint64
	Type  FileType
}

// Statfs summarises a mounted volume or aggregate.
type Statfs struct {
	BlockSize   int
	TotalBlocks int64
	FreeBlocks  int64
	Files       int64
}

// Common error vocabulary. Each layer wraps these with context; tests and
// the protocol map them to wire codes with errors.Is.
var (
	ErrNotExist     = errors.New("file does not exist")
	ErrExist        = errors.New("file already exists")
	ErrNotDir       = errors.New("not a directory")
	ErrIsDir        = errors.New("is a directory")
	ErrNotEmpty     = errors.New("directory not empty")
	ErrPerm         = errors.New("permission denied")
	ErrNoSpace      = errors.New("no space left on aggregate")
	ErrStale        = errors.New("stale file handle")
	ErrReadOnly     = errors.New("read-only volume")
	ErrInvalid      = errors.New("invalid argument")
	ErrNameTooLong  = errors.New("name too long")
	ErrBusy         = errors.New("resource busy")
	ErrOffline      = errors.New("volume offline")
	ErrLockConflict = errors.New("conflicting file lock")
	ErrQuota        = errors.New("volume quota exceeded")
	// ErrGrace is the retryable answer a recovering server gives ordinary
	// token grants during its post-restart grace period, when only
	// reclaim requests are served (token state recovery).
	ErrGrace = errors.New("server recovering: only token reclaims are served")
	// ErrReclaim rejects a token reclaim that conflicts with state
	// already re-established by another host; the claimant must discard
	// the cache the token covered.
	ErrReclaim = errors.New("token reclaim conflict")
)

// ErrorCode is the wire representation of the error vocabulary.
type ErrorCode uint32

// Wire codes for the common errors. CodeOK is success; CodeUnknown is any
// error outside the shared vocabulary.
const (
	CodeOK ErrorCode = iota
	CodeUnknown
	CodeNotExist
	CodeExist
	CodeNotDir
	CodeIsDir
	CodeNotEmpty
	CodePerm
	CodeNoSpace
	CodeStale
	CodeReadOnly
	CodeInvalid
	CodeNameTooLong
	CodeBusy
	CodeOffline
	CodeLockConflict
	CodeQuota
	CodeGrace
	CodeReclaim
)

var codeToErr = map[ErrorCode]error{
	CodeNotExist:     ErrNotExist,
	CodeExist:        ErrExist,
	CodeNotDir:       ErrNotDir,
	CodeIsDir:        ErrIsDir,
	CodeNotEmpty:     ErrNotEmpty,
	CodePerm:         ErrPerm,
	CodeNoSpace:      ErrNoSpace,
	CodeStale:        ErrStale,
	CodeReadOnly:     ErrReadOnly,
	CodeInvalid:      ErrInvalid,
	CodeNameTooLong:  ErrNameTooLong,
	CodeBusy:         ErrBusy,
	CodeOffline:      ErrOffline,
	CodeLockConflict: ErrLockConflict,
	CodeQuota:        ErrQuota,
	CodeGrace:        ErrGrace,
	CodeReclaim:      ErrReclaim,
}

// CodeOf maps an error to its wire code.
func CodeOf(err error) ErrorCode {
	if err == nil {
		return CodeOK
	}
	for code, e := range codeToErr {
		if errors.Is(err, e) {
			return code
		}
	}
	return CodeUnknown
}

// ErrOf maps a wire code back to the canonical error. CodeOK yields nil;
// unknown codes yield a generic error carrying the code.
func ErrOf(code ErrorCode) error {
	if code == CodeOK {
		return nil
	}
	if err, ok := codeToErr[code]; ok {
		return err
	}
	return fmt.Errorf("remote error code %d", code)
}
