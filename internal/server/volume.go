package server

import (
	"errors"
	"fmt"
	"net"

	"decorum/internal/glue"
	"decorum/internal/token"

	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/vfs"
)

// The volume server (§3.6): per-volume operations — create, clone, dump,
// restore, and the online move — exposed to administrators at remote
// clients. A move offlines the volume briefly ("applications ... are
// blocked for a short time", §2.1), ships a dump to the target server,
// and deletes the source copy.

func volInfo(v vfs.VolumeInfo) proto.VolInfo {
	return proto.VolInfo{
		ID: v.ID, Name: v.Name, ReadOnly: v.ReadOnly,
		CloneOf: v.CloneOf, RootVnode: v.RootVnode, Quota: v.Quota,
	}
}

func (s *Server) registerVolumeHandlers(peer *rpc.Peer, wrap func(func(ctx *rpc.CallCtx, body []byte) (any, error)) func(ctx *rpc.CallCtx, body []byte) ([]byte, error)) {
	needAgg := func() (vfs.VolumeOps, error) {
		if s.agg == nil {
			return nil, vfs.ErrNotSupported
		}
		return s.agg, nil
	}
	peer.Handle(proto.VCreate, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.VolCreateArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		agg, err := needAgg()
		if err != nil {
			return nil, err
		}
		var info vfs.VolumeInfo
		if a.ID != 0 {
			// A cell-wide ID assigned by the VLDB (multi-server cells).
			type withID interface {
				CreateVolumeWithID(string, int64, fs.VolumeID) (vfs.VolumeInfo, error)
			}
			w, ok := agg.(withID)
			if !ok {
				return nil, vfs.ErrNotSupported
			}
			info, err = w.CreateVolumeWithID(a.Name, a.Quota, a.ID)
		} else {
			info, err = agg.CreateVolume(a.Name, a.Quota)
		}
		if err != nil {
			return nil, err
		}
		return proto.VolCreateReply{Info: volInfo(info)}, nil
	}))
	peer.Handle(proto.VDelete, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.VolIDArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		agg, err := needAgg()
		if err != nil {
			return nil, err
		}
		return proto.VolListReply{}, agg.DeleteVolume(a.ID)
	}))
	peer.Handle(proto.VClone, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.VolIDArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		agg, err := needAgg()
		if err != nil {
			return nil, err
		}
		info, err := s.cloneQuiesced(agg, a.ID, a.Name)
		if err != nil {
			return nil, err
		}
		return proto.VolCreateReply{Info: volInfo(info)}, nil
	}))
	peer.Handle(proto.VList, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		agg, err := needAgg()
		if err != nil {
			return nil, err
		}
		vols, err := agg.Volumes()
		if err != nil {
			return nil, err
		}
		out := proto.VolListReply{}
		for _, v := range vols {
			out.Volumes = append(out.Volumes, volInfo(v))
		}
		return out, nil
	}))
	peer.Handle(proto.VDump, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.VolIDArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		agg, err := needAgg()
		if err != nil {
			return nil, err
		}
		if err := s.quiesceVolume(a.ID); err != nil {
			return nil, err
		}
		dump, err := agg.Dump(a.ID)
		if err != nil {
			return nil, err
		}
		return proto.VolDumpReply{Dump: dump}, nil
	}))
	peer.Handle(proto.VRestore, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.VolRestoreArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		agg, err := needAgg()
		if err != nil {
			return nil, err
		}
		info, err := agg.Restore(a.Dump, a.Name)
		if err != nil {
			return nil, err
		}
		return proto.VolCreateReply{Info: volInfo(info)}, nil
	}))
	peer.Handle(proto.VSetOffline, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.VolIDArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		type offliner interface {
			SetOffline(fs.VolumeID, bool) error
		}
		agg, err := needAgg()
		if err != nil {
			return nil, err
		}
		o, ok := agg.(offliner)
		if !ok {
			return nil, vfs.ErrNotSupported
		}
		return proto.VolListReply{}, o.SetOffline(a.ID, a.Offline)
	}))
	peer.Handle(proto.VMoveTo, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.VolMoveArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return proto.VolListReply{}, s.MoveVolume(a.ID, a.TargetAddr)
	}))
}

// quiesceVolume recalls every outstanding write-class token in the volume
// by acquiring (and immediately releasing) a whole-volume token as the
// local host: clients store dirty data back before any dump, clone, or
// move captures the volume's state.
func (s *Server) quiesceVolume(id fs.VolumeID) error {
	fsys, err := s.volume(id)
	if err != nil {
		return err
	}
	root, err := fsys.Root()
	if err != nil {
		return err
	}
	tok, err := s.tm.Acquire(glue.LocalHostID, root.FID(), token.WholeVolume, token.WholeFile)
	if err != nil {
		return mapTokenErr(err)
	}
	return s.tm.Release(tok.ID)
}

// cloneQuiesced recalls dirty client state and offlines the volume for the
// duration of the clone so the snapshot is consistent, then brings it
// back — the transparent short block of §2.1.
func (s *Server) cloneQuiesced(agg vfs.VolumeOps, id fs.VolumeID, name string) (vfs.VolumeInfo, error) {
	if err := s.quiesceVolume(id); err != nil {
		return vfs.VolumeInfo{}, err
	}
	type offliner interface {
		SetOffline(fs.VolumeID, bool) error
	}
	if o, ok := agg.(offliner); ok {
		if err := o.SetOffline(id, true); err != nil {
			return vfs.VolumeInfo{}, err
		}
		defer o.SetOffline(id, false)
	}
	return agg.Clone(id, name)
}

// CloneVolume snapshots a volume after recalling dirty client state — the
// path administrators (and the facade) should use instead of raw
// VolumeOps.Clone, which cannot see client caches.
func (s *Server) CloneVolume(id fs.VolumeID, name string) (vfs.VolumeInfo, error) {
	if s.agg == nil {
		return vfs.VolumeInfo{}, vfs.ErrNotSupported
	}
	return s.cloneQuiesced(s.agg, id, name)
}

// DumpVolume serializes a volume after recalling dirty client state.
func (s *Server) DumpVolume(id fs.VolumeID) ([]byte, error) {
	if s.agg == nil {
		return nil, vfs.ErrNotSupported
	}
	if err := s.quiesceVolume(id); err != nil {
		return nil, err
	}
	return s.agg.Dump(id)
}

// MoveVolume implements the §3.6 move: offline, dump, restore at the
// target server, delete here. The volume keeps its identity; the caller
// (vos / VLDB) repoints clients afterwards.
func (s *Server) MoveVolume(id fs.VolumeID, targetAddr string) error {
	if s.agg == nil {
		return vfs.ErrNotSupported
	}
	type offliner interface {
		SetOffline(fs.VolumeID, bool) error
	}
	if err := s.quiesceVolume(id); err != nil {
		return err
	}
	o, canOffline := s.agg.(offliner)
	if canOffline {
		if err := o.SetOffline(id, true); err != nil {
			return err
		}
	}
	undo := func() {
		if canOffline {
			o.SetOffline(id, false)
		}
	}
	dump, err := s.agg.Dump(id)
	if err != nil {
		undo()
		return err
	}
	dial := s.opts.Dial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial(targetAddr)
	if err != nil {
		undo()
		return err
	}
	peer := rpc.NewPeer(conn, s.opts.RPC)
	peer.Start()
	defer peer.Close()
	var reply proto.VolCreateReply
	if err := proto.DecodeErr(peer.Call(proto.VRestore, proto.VolRestoreArgs{Dump: dump}, &reply)); err != nil {
		undo()
		return fmt.Errorf("restore at %s: %w", targetAddr, err)
	}
	if err := s.agg.DeleteVolume(id); err != nil {
		// The target has a copy; deleting locally failed. Surface it —
		// the administrator resolves the duplicate.
		return errors.Join(fmt.Errorf("source delete after move: %w", err))
	}
	return nil
}
