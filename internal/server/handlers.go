package server

import (
	"errors"
	"fmt"

	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// The server procedures (§3.5): each handler decodes its arguments, takes
// the server vnode lock, acquires tokens (for the calling host where the
// client keeps them, transiently where the server only needs them for one
// operation), performs the physical-file-system call, stamps the per-file
// serialization counter (§6.2), and replies.

func (s *Server) registerHandlers(peer *rpc.Peer, host *clientHost) {
	type h = func(ctx *rpc.CallCtx, body []byte) ([]byte, error)
	wrap := func(fn func(ctx *rpc.CallCtx, body []byte) (any, error)) h {
		return func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
			out, err := fn(ctx, body)
			if err != nil {
				return nil, proto.EncodeErr(err)
			}
			return rpc.Marshal(out)
		}
	}
	peer.Handle(proto.MRegister, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.RegisterArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		host.mu.Lock()
		host.name = a.ClientName
		host.mu.Unlock()
		return proto.RegisterReply{HostID: host.id, Epoch: s.guard.Epoch()}, nil
	}))
	peer.Handle(proto.MReclaimTokens, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.ReclaimArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.reclaimTokens(host, a)
	}))
	peer.Handle(proto.MGetRoot, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.GetRootArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		fsys, err := s.volume(a.Volume)
		if err != nil {
			return nil, err
		}
		root, err := fsys.Root()
		if err != nil {
			return nil, err
		}
		attr, err := root.Attr(ctxOf(ctx))
		if err != nil {
			return nil, err
		}
		return proto.GetRootReply{
			FID: root.FID(), Attr: attr,
			Serial: s.tm.NextSerial(root.FID()),
		}, nil
	}))
	peer.Handle(proto.MFetchStatus, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.FetchStatusArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.fetchStatus(ctx, host, a)
	}))
	peer.Handle(proto.MFetchData, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.FetchDataArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		r, err := s.fetchData(ctx, host, a)
		if err != nil {
			return nil, err
		}
		return r, nil
	}))
	peer.Handle(proto.MStoreData, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.StoreDataArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		r, err := s.storeData(ctx, host, a)
		if err != nil {
			return nil, err
		}
		return r, nil
	}))
	// The bulk-data procedures again, on the binary lane: same server
	// logic, fixed-layout codecs instead of gob, and raw payloads that
	// never pass through an encoder. Gob-only peers never negotiate the
	// lane and keep using the gob registrations above.
	peer.HandleBin(proto.BinFetchData, proto.MFetchData, func(ctx *rpc.CallCtx, meta, data []byte) ([]byte, [][]byte, error) {
		a, err := proto.DecodeFetchDataArgs(meta)
		if err != nil {
			return nil, nil, proto.EncodeErr(err)
		}
		r, err := s.fetchData(ctx, host, a)
		if err != nil {
			return nil, nil, proto.EncodeErr(err)
		}
		var payload [][]byte
		if len(r.Data) > 0 {
			payload = [][]byte{r.Data}
		}
		return proto.EncodeFetchDataReply(nil, &r), payload, nil
	})
	peer.HandleBin(proto.BinStoreData, proto.MStoreData, func(ctx *rpc.CallCtx, meta, data []byte) ([]byte, [][]byte, error) {
		a, err := proto.DecodeStoreDataArgs(meta, data)
		if err != nil {
			return nil, nil, proto.EncodeErr(err)
		}
		r, err := s.storeData(ctx, host, a)
		if err != nil {
			return nil, nil, proto.EncodeErr(err)
		}
		return proto.EncodeStoreDataReply(nil, &r), nil, nil
	})
	peer.HandleBin(proto.BinStoreBatch, proto.MStoreBatch, func(ctx *rpc.CallCtx, meta, data []byte) ([]byte, [][]byte, error) {
		a, err := proto.DecodeStoreBatchArgs(meta, data)
		if err != nil {
			return nil, nil, proto.EncodeErr(err)
		}
		r, err := s.storeBatch(ctx, host, a)
		if err != nil {
			return nil, nil, proto.EncodeErr(err)
		}
		return proto.EncodeStoreBatchReply(nil, &r), nil, nil
	})
	peer.Handle(proto.MStoreStatus, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.StoreStatusArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.storeStatus(ctx, host, a)
	}))
	peer.Handle(proto.MGetTokens, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.GetTokensArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		unlock := s.layer.LockFile(a.FID)
		defer unlock()
		g, err := s.grantFor(ctx.Trace, host.id, a.FID, a.Want)
		if err != nil {
			return nil, err
		}
		return proto.GetTokensReply{Grants: g, Serial: s.tm.NextSerial(a.FID)}, nil
	}))
	peer.Handle(proto.MReturnTokens, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.ReturnTokensArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		for _, id := range a.IDs {
			s.tm.Release(id) // unknown IDs are fine (already revoked)
		}
		return proto.ReturnTokensReply{}, nil
	}))
	peer.Handle(proto.MLookup, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.NameArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.lookup(ctx, host, a)
	}))
	peer.Handle(proto.MCreate, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.NameArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.makeEntry(ctx, host, a, entryCreate)
	}))
	peer.Handle(proto.MMakeDir, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.NameArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.makeEntry(ctx, host, a, entryMkdir)
	}))
	peer.Handle(proto.MSymlink, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.NameArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.makeEntry(ctx, host, a, entrySymlink)
	}))
	peer.Handle(proto.MLink, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.NameArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.link(ctx, host, a)
	}))
	peer.Handle(proto.MRemove, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.NameArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.remove(ctx, host, a, false)
	}))
	peer.Handle(proto.MRemoveDir, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.NameArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.remove(ctx, host, a, true)
	}))
	peer.Handle(proto.MRename, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.RenameArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.rename(ctx, host, a)
	}))
	peer.Handle(proto.MReadDir, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.ReadDirArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.readDir(ctx, host, a)
	}))
	peer.Handle(proto.MReadlink, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.ReadlinkArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		vn, err := s.vnodeOf(a.FID)
		if err != nil {
			return nil, err
		}
		unlock := s.layer.LockFile(a.FID)
		defer unlock()
		target, err := vn.Readlink(ctxOf(ctx))
		if err != nil {
			return nil, err
		}
		return proto.ReadlinkReply{Target: target, Serial: s.tm.NextSerial(a.FID)}, nil
	}))
	peer.Handle(proto.MGetACL, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.ACLArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		vn, err := s.vnodeOf(a.FID)
		if err != nil {
			return nil, err
		}
		av, ok := vn.(vfs.ACLVnode)
		if !ok {
			return nil, vfs.ErrNotSupported
		}
		acl, err := av.ACL(ctxOf(ctx))
		if err != nil {
			return nil, err
		}
		return proto.ACLReply{ACL: acl, Serial: s.tm.NextSerial(a.FID)}, nil
	}))
	peer.Handle(proto.MSetACL, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.ACLArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		vn, err := s.vnodeOf(a.FID)
		if err != nil {
			return nil, err
		}
		av, ok := vn.(vfs.ACLVnode)
		if !ok {
			return nil, vfs.ErrNotSupported
		}
		unlock := s.layer.LockFile(a.FID)
		defer unlock()
		err = s.withHostToken(ctx.Trace, host.id, a.FID, token.StatusWrite, token.WholeFile, func() error {
			return av.SetACL(ctxOf(ctx), a.ACL)
		})
		if err != nil {
			return nil, err
		}
		return proto.ACLReply{ACL: a.ACL, Serial: s.tm.NextSerial(a.FID)}, nil
	}))
	peer.Handle(proto.MHashTree, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.HashTreeArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		vn, err := s.vnodeOf(a.FID)
		if err != nil {
			return nil, err
		}
		hv, ok := vn.(vfs.HashVnode)
		if !ok {
			return nil, vfs.ErrNotSupported
		}
		unlock := s.layer.LockFile(a.FID)
		defer unlock()
		root, leaves, err := hv.HashRoot(ctxOf(ctx))
		if err != nil {
			return nil, err
		}
		r := proto.HashTreeReply{Root: root[:], Leaves: leaves, Serial: s.tm.NextSerial(a.FID)}
		if len(a.Indices) > 0 {
			nodes, err := hv.HashLevel(ctxOf(ctx), a.Level, a.Indices)
			if err != nil {
				return nil, err
			}
			r.Hashes = make([]byte, 0, len(nodes)*integrity.HashSize)
			for _, h := range nodes {
				r.Hashes = append(r.Hashes, h[:]...)
			}
		}
		return r, nil
	}))
	peer.Handle(proto.MStoreHashes, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.StoreHashesArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		if len(a.Hashes)%integrity.HashSize != 0 || a.Start < 0 {
			return nil, fs.ErrInvalid
		}
		vn, err := s.vnodeOf(a.FID)
		if err != nil {
			return nil, err
		}
		hv, ok := vn.(vfs.HashVnode)
		if !ok {
			return nil, vfs.ErrNotSupported
		}
		hs := make([][32]byte, len(a.Hashes)/integrity.HashSize)
		for i := range hs {
			copy(hs[i][:], a.Hashes[i*integrity.HashSize:])
		}
		unlock := s.layer.LockFile(a.FID)
		defer unlock()
		err = s.withHostToken(ctx.Trace, host.id, a.FID, token.StatusWrite, token.WholeFile,
			func() error { return hv.SetChunkHashes(ctxOf(ctx), a.Start, hs) })
		if err != nil {
			return nil, err
		}
		return proto.StoreHashesReply{Serial: s.tm.NextSerial(a.FID)}, nil
	}))
	peer.Handle(proto.MSetLock, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.LockArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.setLock(host, a)
	}))
	peer.Handle(proto.MReleaseLock, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.LockArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return s.releaseLock(host, a)
	}))
	peer.Handle(proto.MStatfs, wrap(func(ctx *rpc.CallCtx, body []byte) (any, error) {
		var a proto.StatfsArgs
		if err := rpc.Unmarshal(body, &a); err != nil {
			return nil, err
		}
		fsys, err := s.volume(a.Volume)
		if err != nil {
			return nil, err
		}
		st, err := fsys.Statfs()
		if err != nil {
			return nil, err
		}
		return proto.StatfsReply{Statfs: st}, nil
	}))
	s.registerVolumeHandlers(peer, wrap)
}

// reclaimTokens is the token-state-recovery procedure: a reconnecting
// client re-presents every token it held and gets back fresh grants for
// the claims that still stand, rejections for those that lost to another
// host's reclaim. It is the only token-granting call served during the
// grace window, and it also marks the calling host recovered so its
// ordinary grants pass the gate for the rest of the window.
func (s *Server) reclaimTokens(host *clientHost, a proto.ReclaimArgs) (any, error) {
	if a.OldHostID != 0 && a.OldHostID != host.id {
		// Same-incarnation reconnect (network blip, not a restart): the
		// dead association's host record still exists and its tokens
		// would spuriously conflict with their own reclaims. Retire it —
		// but only if its peer really is down; a live host keeps its
		// state regardless of what a confused client claims.
		s.mu.Lock()
		old := s.hosts[a.OldHostID]
		s.mu.Unlock()
		if old != nil {
			select {
			case <-old.peer.Done():
				s.DropHost(a.OldHostID)
			default:
			}
		}
	}
	reply := proto.ReclaimReply{Epoch: s.guard.Epoch()}
	for _, claim := range a.Tokens {
		unlock := s.layer.LockFile(claim.FID)
		tok, err := s.tm.Reclaim(host.id, claim)
		unlock()
		if err != nil {
			reply.Rejected = append(reply.Rejected, claim)
			continue
		}
		reply.Accepted = append(reply.Accepted, proto.Grant{Token: tok, Serial: tok.Serial})
	}
	s.guard.NoteReclaim(len(reply.Accepted), len(reply.Rejected))
	s.guard.MarkRecovered(host.id)
	return reply, nil
}

// normRange maps the zero range to whole-file.
func normRange(r token.Range) token.Range {
	if r == (token.Range{}) {
		return token.WholeFile
	}
	return r
}

// grantFor acquires tokens for the calling host (the client keeps them).
// Each token class is granted as its own token — that is what makes the
// tokens "typed" (§5.2): a later conflict on one class revokes only that
// class. Data and lock tokens carry the requested byte range; status and
// open tokens are whole-file by nature.
func (s *Server) grantFor(tc obs.SpanContext, hostID uint64, fid fs.FID, want proto.TokenRequest) ([]proto.Grant, error) {
	if want.Types == 0 {
		return nil, nil
	}
	classes := []struct {
		mask   token.Type
		ranged bool
	}{
		{token.DataTypes, true},
		{token.StatusTypes, false},
		{token.LockTypes, true},
		{token.OpenTypes, false},
		{token.WholeVolume, false},
	}
	var out []proto.Grant
	for _, cl := range classes {
		types := want.Types & cl.mask
		if types == 0 {
			continue
		}
		rng := token.WholeFile
		if cl.ranged {
			rng = normRange(want.Range)
		}
		if cl.mask == token.DataTypes {
			// A stripe member grants data tokens only over ranges it owns
			// (no new token types: ownership narrows the byte range).
			if err := s.checkStripeRange(fid, rng.Start, rng.End); err != nil {
				return out, err
			}
		}
		tok, err := s.tm.AcquireTraced(tc, hostID, fid, types, rng)
		if err != nil {
			return out, mapTokenErr(err)
		}
		out = append(out, proto.Grant{Token: tok, Serial: tok.Serial})
	}
	return out, nil
}

func mapTokenErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, token.ErrConflict) {
		return fmt.Errorf("%w: %v", fs.ErrBusy, err)
	}
	return err
}

// withHostToken acquires a transient token for the host around one
// operation (the server needs the exclusivity; the client does not keep
// the token).
func (s *Server) withHostToken(tc obs.SpanContext, hostID uint64, fid fs.FID, types token.Type, rng token.Range, fn func() error) error {
	tok, err := s.tm.AcquireTraced(tc, hostID, fid, types, rng)
	if err != nil {
		return mapTokenErr(err)
	}
	defer s.tm.Release(tok.ID)
	return fn()
}

func (s *Server) fetchStatus(ctx *rpc.CallCtx, host *clientHost, a proto.FetchStatusArgs) (any, error) {
	vn, err := s.vnodeOf(a.FID)
	if err != nil {
		return nil, err
	}
	unlock := s.layer.LockFile(a.FID)
	defer unlock()
	var g []proto.Grant
	if a.Want.Types != 0 {
		g, err = s.grantFor(ctx.Trace, host.id, a.FID, a.Want)
		if err != nil {
			return nil, err
		}
		attr, err := vn.Attr(ctxOf(ctx))
		if err != nil {
			return nil, err
		}
		return proto.FetchStatusReply{Attr: attr, Grants: g, Serial: s.tm.NextSerial(a.FID)}, nil
	}
	// Tokenless callers (NFS-style polls) still synchronize: §5.1 — "the
	// token manager is invoked by all calls through the Vnode interface".
	// A transient status-read token forces any cached writer to store its
	// status back first.
	var attr fs.Attr
	err = s.withHostToken(ctx.Trace, host.id, a.FID, token.StatusRead, token.WholeFile, func() error {
		var aerr error
		attr, aerr = vn.Attr(ctxOf(ctx))
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return proto.FetchStatusReply{Attr: attr, Serial: s.tm.NextSerial(a.FID)}, nil
}

func (s *Server) fetchData(ctx *rpc.CallCtx, host *clientHost, a proto.FetchDataArgs) (proto.FetchDataReply, error) {
	var zero proto.FetchDataReply
	vn, err := s.vnodeOf(a.FID)
	if err != nil {
		return zero, err
	}
	if a.Length < 0 {
		return zero, fs.ErrInvalid
	}
	if err := s.checkStripeRange(a.FID, a.Offset, a.Offset+int64(a.Length)); err != nil {
		return zero, err
	}
	unlock := s.layer.LockFile(a.FID)
	defer unlock()
	read := func() (fs.Attr, []byte, error) {
		attr, err := vn.Attr(ctxOf(ctx))
		if err != nil {
			return fs.Attr{}, nil, err
		}
		buf := make([]byte, a.Length)
		n, err := vn.Read(ctxOf(ctx), buf, a.Offset)
		if err != nil {
			return fs.Attr{}, nil, err
		}
		return attr, buf[:n], nil
	}
	if a.Want.Types != 0 {
		g, err := s.grantFor(ctx.Trace, host.id, a.FID, a.Want)
		if err != nil {
			return zero, err
		}
		attr, data, err := read()
		if err != nil {
			return zero, err
		}
		r := proto.FetchDataReply{
			Data: data, Attr: attr, Grants: g,
			Serial: s.tm.NextSerial(a.FID),
		}
		s.attachChunkHash(ctx, vn, a, &r)
		return r, nil
	}
	// Tokenless read (AFS/NFS-style): synchronize through a transient
	// read token (§5.1), revoking cached writers so the bytes returned
	// are the freshest completed write anywhere.
	var attr fs.Attr
	var data []byte
	err = s.withHostToken(ctx.Trace, host.id, a.FID,
		token.DataRead|token.StatusRead,
		token.Range{Start: a.Offset, End: a.Offset + int64(a.Length)},
		func() error {
			var rerr error
			attr, data, rerr = read()
			return rerr
		})
	if err != nil {
		return zero, err
	}
	r := proto.FetchDataReply{
		Data: data, Attr: attr,
		Serial: s.tm.NextSerial(a.FID),
	}
	s.attachChunkHash(ctx, vn, a, &r)
	return r, nil
}

// attachChunkHash adds the recorded leaf hash to a chunk-aligned fetch
// reply so the client can verify the payload before installing it in its
// cache. The leaf hash covers the chunk clipped at the file's length —
// exactly the bytes a chunk-aligned read returns — so the client can
// hash the payload as received. Unaligned reads, unhashed files, and
// vnodes without hash support simply return no hash; verification is
// strictly opportunistic on the fetch path (the scrub is the backstop).
func (s *Server) attachChunkHash(ctx *rpc.CallCtx, vn vfs.Vnode, a proto.FetchDataArgs, r *proto.FetchDataReply) {
	if a.Offset%integrity.LeafSize != 0 || a.Length != integrity.LeafSize {
		return
	}
	hv, ok := vn.(vfs.HashVnode)
	if !ok {
		return
	}
	h, recorded, err := hv.ChunkHash(ctxOf(ctx), a.Offset/integrity.LeafSize)
	if err != nil || !recorded {
		return
	}
	r.Hash = h[:]
}

func (s *Server) storeData(ctx *rpc.CallCtx, host *clientHost, a proto.StoreDataArgs) (proto.StoreDataReply, error) {
	var zero proto.StoreDataReply
	vn, err := s.vnodeOf(a.FID)
	if err != nil {
		return zero, err
	}
	if err := s.checkStripeRange(a.FID, a.Offset, a.Offset+int64(len(a.Data))); err != nil {
		return zero, err
	}
	var grants []proto.Grant
	if !a.FromRevocation {
		// Normal store: serialize on the vnode and hold a write token for
		// the duration (the client may or may not retain one; the same
		// host never conflicts with itself).
		unlock := s.layer.LockFile(a.FID)
		defer unlock()
		if a.Want.Types != 0 {
			// Piggybacked token request (§6.3's grants-on-replies, applied
			// to the write path): grant BEFORE writing, as in fetchData,
			// so any revocation the grant triggers is serialized ahead of
			// this write and the returned attributes are post-revocation.
			grants, err = s.grantFor(ctx.Trace, host.id, a.FID, a.Want)
			if err != nil {
				return zero, err
			}
		}
		err = s.withHostToken(ctx.Trace, host.id, a.FID,
			token.DataWrite|token.StatusWrite,
			token.Range{Start: a.Offset, End: a.Offset + int64(len(a.Data))},
			func() error {
				_, werr := vn.Write(ctxOf(ctx), a.Data, a.Offset)
				return werr
			})
		if err != nil {
			return zero, err
		}
	} else {
		// §6.3's special call, "issued only by token revocation code": it
		// bypasses the server vnode lock, which is held by the very
		// operation whose revocation requested this store-back. Want is
		// ignored on this path — revocation must never acquire.
		if _, err := vn.Write(ctxOf(ctx), a.Data, a.Offset); err != nil {
			return zero, err
		}
	}
	attr, err := vn.Attr(ctxOf(ctx))
	if err != nil {
		return zero, err
	}
	return proto.StoreDataReply{Attr: attr, Serial: s.tm.NextSerial(a.FID), Grants: grants}, nil
}

// storeBatch writes several spans of one file under a single vnode lock —
// the server half of the binary lane's scatter/gather flush. Semantically
// it equals the per-span StoreData sequence a gob-only client would
// issue, minus the per-call framing and locking.
func (s *Server) storeBatch(ctx *rpc.CallCtx, host *clientHost, a proto.StoreBatchArgs) (proto.StoreBatchReply, error) {
	var zero proto.StoreBatchReply
	vn, err := s.vnodeOf(a.FID)
	if err != nil {
		return zero, err
	}
	for _, sp := range a.Spans {
		if sp.Length < 0 {
			return zero, fs.ErrInvalid
		}
		if err := s.checkStripeRange(a.FID, sp.Offset, sp.Offset+int64(sp.Length)); err != nil {
			return zero, err
		}
	}
	if a.FromRevocation {
		// Revocation store-backs flush one span at a time today; reject
		// batches on this path rather than guess at lock bypass semantics.
		return zero, fs.ErrInvalid
	}
	unlock := s.layer.LockFile(a.FID)
	defer unlock()
	var grants []proto.Grant
	if a.Want.Types != 0 {
		grants, err = s.grantFor(ctx.Trace, host.id, a.FID, a.Want)
		if err != nil {
			return zero, err
		}
	}
	off := 0
	for _, sp := range a.Spans {
		data := a.Data[off : off+sp.Length]
		off += sp.Length
		err = s.withHostToken(ctx.Trace, host.id, a.FID,
			token.DataWrite|token.StatusWrite,
			token.Range{Start: sp.Offset, End: sp.Offset + int64(sp.Length)},
			func() error {
				_, werr := vn.Write(ctxOf(ctx), data, sp.Offset)
				return werr
			})
		if err != nil {
			return zero, err
		}
	}
	attr, err := vn.Attr(ctxOf(ctx))
	if err != nil {
		return zero, err
	}
	return proto.StoreBatchReply{Attr: attr, Serial: s.tm.NextSerial(a.FID), Grants: grants}, nil
}

func (s *Server) storeStatus(ctx *rpc.CallCtx, host *clientHost, a proto.StoreStatusArgs) (any, error) {
	vn, err := s.vnodeOf(a.FID)
	if err != nil {
		return nil, err
	}
	apply := func() (fs.Attr, error) { return vn.SetAttr(ctxOf(ctx), a.Change) }
	var attr fs.Attr
	if !a.FromRevocation {
		unlock := s.layer.LockFile(a.FID)
		defer unlock()
		err = s.withHostToken(ctx.Trace, host.id, a.FID, token.StatusWrite, token.WholeFile, func() error {
			var aerr error
			attr, aerr = apply()
			return aerr
		})
	} else {
		attr, err = apply()
	}
	if err != nil {
		return nil, err
	}
	return proto.StoreStatusReply{Attr: attr, Serial: s.tm.NextSerial(a.FID)}, nil
}

func (s *Server) lookup(ctx *rpc.CallCtx, host *clientHost, a proto.NameArgs) (any, error) {
	dir, err := s.vnodeOf(a.Dir)
	if err != nil {
		return nil, err
	}
	unlock := s.layer.LockFile(a.Dir)
	defer unlock()
	child, err := dir.Lookup(ctxOf(ctx), a.Name)
	if err != nil {
		return nil, err
	}
	// Grant a status-read token on the child BEFORE reading its status:
	// granting may revoke a write token elsewhere (store-back), and the
	// attributes in the reply must reflect the post-revocation state or
	// the serialization counter would lie (§6.2).
	g, err := s.grantFor(ctx.Trace, host.id, child.FID(), proto.TokenRequest{Types: token.StatusRead})
	if err != nil {
		return nil, err
	}
	attr, err := child.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	return proto.NameReply{
		FID: child.FID(), Attr: attr, Grants: g,
		Serial:    s.tm.NextSerial(child.FID()),
		DirSerial: s.tm.NextSerial(a.Dir),
	}, nil
}

type entryKind int

const (
	entryCreate entryKind = iota
	entryMkdir
	entrySymlink
)

func (s *Server) makeEntry(ctx *rpc.CallCtx, host *clientHost, a proto.NameArgs, kind entryKind) (any, error) {
	dir, err := s.vnodeOf(a.Dir)
	if err != nil {
		return nil, err
	}
	unlock := s.layer.LockFile(a.Dir)
	defer unlock()
	var child vfs.Vnode
	err = s.withHostToken(ctx.Trace, host.id, a.Dir, token.DataWrite|token.StatusWrite, token.WholeFile,
		func() error {
			var cerr error
			switch kind {
			case entryCreate:
				child, cerr = dir.Create(ctxOf(ctx), a.Name, a.Mode)
			case entryMkdir:
				child, cerr = dir.Mkdir(ctxOf(ctx), a.Name, a.Mode)
			case entrySymlink:
				child, cerr = dir.Symlink(ctxOf(ctx), a.Name, a.Target)
			}
			return cerr
		})
	if err != nil {
		return nil, err
	}
	g, err := s.grantFor(ctx.Trace, host.id, child.FID(), proto.TokenRequest{Types: token.StatusRead})
	if err != nil {
		return nil, err
	}
	attr, err := child.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	dirAttr, err := dir.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	return proto.NameReply{
		FID: child.FID(), Attr: attr, DirAttr: dirAttr, Grants: g,
		Serial:    s.tm.NextSerial(child.FID()),
		DirSerial: s.tm.NextSerial(a.Dir),
	}, nil
}

func (s *Server) link(ctx *rpc.CallCtx, host *clientHost, a proto.NameArgs) (any, error) {
	dir, err := s.vnodeOf(a.Dir)
	if err != nil {
		return nil, err
	}
	target, err := s.vnodeOf(a.LinkTo)
	if err != nil {
		return nil, err
	}
	unlock := s.layer.LockFiles(a.Dir, a.LinkTo)
	defer unlock()
	err = s.withHostToken(ctx.Trace, host.id, a.Dir, token.DataWrite|token.StatusWrite, token.WholeFile,
		func() error {
			return s.withHostToken(ctx.Trace, host.id, a.LinkTo, token.StatusWrite, token.WholeFile,
				func() error { return dir.Link(ctxOf(ctx), a.Name, target) })
		})
	if err != nil {
		return nil, err
	}
	attr, err := target.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	dirAttr, err := dir.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	return proto.NameReply{
		FID: a.LinkTo, Attr: attr, DirAttr: dirAttr,
		Serial:    s.tm.NextSerial(a.LinkTo),
		DirSerial: s.tm.NextSerial(a.Dir),
	}, nil
}

func (s *Server) remove(ctx *rpc.CallCtx, host *clientHost, a proto.NameArgs, isDir bool) (any, error) {
	dir, err := s.vnodeOf(a.Dir)
	if err != nil {
		return nil, err
	}
	unlock := s.layer.LockFile(a.Dir)
	defer unlock()
	err = s.withHostToken(ctx.Trace, host.id, a.Dir, token.DataWrite|token.StatusWrite, token.WholeFile,
		func() error {
			victim, verr := dir.Lookup(ctxOf(ctx), a.Name)
			if verr != nil {
				return verr
			}
			// §5.4: exclusive-write open ensures no remote user has the
			// file open; a refusal surfaces as ErrBusy.
			return s.withHostToken(ctx.Trace, host.id, victim.FID(), token.OpenExclusive, token.WholeFile,
				func() error {
					if isDir {
						return dir.Rmdir(ctxOf(ctx), a.Name)
					}
					return dir.Remove(ctxOf(ctx), a.Name)
				})
		})
	if err != nil {
		return nil, err
	}
	dirAttr, err := dir.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	return proto.NameReply{
		DirAttr:   dirAttr,
		DirSerial: s.tm.NextSerial(a.Dir),
	}, nil
}

func (s *Server) rename(ctx *rpc.CallCtx, host *clientHost, a proto.RenameArgs) (any, error) {
	oldDir, err := s.vnodeOf(a.OldDir)
	if err != nil {
		return nil, err
	}
	newDir, err := s.vnodeOf(a.NewDir)
	if err != nil {
		return nil, err
	}
	unlock := s.layer.LockFiles(a.OldDir, a.NewDir)
	defer unlock()
	err = s.withHostToken(ctx.Trace, host.id, a.OldDir, token.DataWrite|token.StatusWrite, token.WholeFile,
		func() error {
			if a.NewDir == a.OldDir {
				return oldDir.Rename(ctxOf(ctx), a.OldName, newDir, a.NewName)
			}
			return s.withHostToken(ctx.Trace, host.id, a.NewDir, token.DataWrite|token.StatusWrite, token.WholeFile,
				func() error {
					return oldDir.Rename(ctxOf(ctx), a.OldName, newDir, a.NewName)
				})
		})
	if err != nil {
		return nil, err
	}
	oldAttr, err := oldDir.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	newAttr, err := newDir.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	return proto.RenameReply{
		OldDirAttr:   oldAttr,
		NewDirAttr:   newAttr,
		OldDirSerial: s.tm.NextSerial(a.OldDir),
		NewDirSerial: s.tm.NextSerial(a.NewDir),
	}, nil
}

func (s *Server) readDir(ctx *rpc.CallCtx, host *clientHost, a proto.ReadDirArgs) (any, error) {
	dir, err := s.vnodeOf(a.Dir)
	if err != nil {
		return nil, err
	}
	unlock := s.layer.LockFile(a.Dir)
	defer unlock()
	ents, err := dir.ReadDir(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	attr, err := dir.Attr(ctxOf(ctx))
	if err != nil {
		return nil, err
	}
	return proto.ReadDirReply{Entries: ents, Attr: attr, Serial: s.tm.NextSerial(a.Dir)}, nil
}

// setLock grants a server-side byte-range lock (clients without lock
// tokens call here for every lock, §5.2).
func (s *Server) setLock(host *clientHost, a proto.LockArgs) (any, error) {
	rng := normRange(a.Range)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.locks[a.FID] {
		if l.host == host.id {
			continue
		}
		if (l.write || a.Write) && l.rng.Overlaps(rng) {
			return nil, fs.ErrLockConflict
		}
	}
	s.locks[a.FID] = append(s.locks[a.FID], fileLock{host: host.id, rng: rng, write: a.Write})
	return proto.LockReply{Serial: s.tm.NextSerial(a.FID)}, nil
}

func (s *Server) releaseLock(host *clientHost, a proto.LockArgs) (any, error) {
	rng := normRange(a.Range)
	s.mu.Lock()
	defer s.mu.Unlock()
	ll := s.locks[a.FID]
	kept := ll[:0]
	for _, l := range ll {
		if l.host == host.id && l.rng == rng && l.write == a.Write {
			continue
		}
		kept = append(kept, l)
	}
	if len(kept) == 0 {
		delete(s.locks, a.FID)
	} else {
		s.locks[a.FID] = kept
	}
	return proto.LockReply{Serial: s.tm.NextSerial(a.FID)}, nil
}
