package server

import (
	"net"
	"testing"
	"time"

	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/token"
)

// TestTraceSpansRevocationAcrossClients is the end-to-end trace check of
// the observability subsystem: one traced vnode operation on client A
// conflicts with a token held by client B, and the SAME trace ID must be
// observable at all three hops — A's call site, the server procedure,
// and the PriorityRevoke callback arriving at B.
func TestTraceSpansRevocationAcrossClients(t *testing.T) {
	reg := obs.NewRegistry()
	srv, vol := newServer(t, Options{Name: "fs1", Obs: reg})

	// Client B: registers, creates a file, and keeps write tokens on it.
	// Its revocation handler captures the trace the callback carries.
	revokeTrace := make(chan obs.SpanContext, 4)
	csB, ssB := net.Pipe()
	srv.Attach(ssB)
	peerB := rpc.NewPeer(csB, rpc.Options{Metrics: reg})
	peerB.Handle(proto.CBRevoke, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		revokeTrace <- ctx.Trace
		return rpc.Marshal(proto.RevokeReply{Returned: true})
	})
	peerB.Start()
	t.Cleanup(func() { peerB.Close() })

	var regB proto.RegisterReply
	if err := peerB.Call(proto.MRegister, proto.RegisterArgs{ClientName: "B"}, &regB); err != nil {
		t.Fatal(err)
	}
	var root proto.GetRootReply
	if err := peerB.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	var created proto.NameReply
	if err := peerB.Call(proto.MCreate, proto.NameArgs{Dir: root.FID, Name: "f", Mode: 0o644}, &created); err != nil {
		t.Fatal(err)
	}
	var grantB proto.GetTokensReply
	err := peerB.Call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  created.FID,
		Want: proto.TokenRequest{Types: token.DataWrite | token.StatusWrite},
	}, &grantB)
	if err != nil {
		t.Fatal(err)
	}
	if len(grantB.Grants) == 0 {
		t.Fatal("client B got no tokens")
	}

	// Client A: a conflicting acquire, traced from the top of the call.
	peerA := rawPeer(t, srv, rpc.Options{Metrics: reg})
	var regA proto.RegisterReply
	if err := peerA.Call(proto.MRegister, proto.RegisterArgs{ClientName: "A"}, &regA); err != nil {
		t.Fatal(err)
	}
	rootTC := obs.NewRoot()
	var grantA proto.GetTokensReply
	err = peerA.CallTraced(proto.MGetTokens, proto.GetTokensArgs{
		FID:  created.FID,
		Want: proto.TokenRequest{Types: token.DataWrite},
	}, &grantA, rpc.PriorityNormal, rootTC)
	if err != nil {
		t.Fatal(err)
	}

	// Hop 3: the revocation callback at client B carried A's trace.
	select {
	case tc := <-revokeTrace:
		if tc.Trace != rootTC.Trace {
			t.Fatalf("revocation at B arrived with trace %x, want %x", tc.Trace, rootTC.Trace)
		}
		if tc.Span == rootTC.Span {
			t.Fatal("revocation reused the root span ID instead of deriving a child")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no revocation reached client B")
	}

	// Hop 2 (the server procedure) and hop 1 (A's call site) left spans in
	// the shared registry under the same trace.
	spans := reg.SpansFor(rootTC.Trace)
	want := map[string]bool{
		"rpc.serve " + proto.MGetTokens: false, // server handling A's call
		"rpc.call " + proto.CBRevoke:    false, // server calling B back
		"rpc.serve " + proto.CBRevoke:   false, // B handling the revocation
	}
	for _, s := range spans {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace %x has no span %q (got %d spans)", rootTC.Trace, name, len(spans))
		}
	}

	// The shared histograms saw both the client call and the revocation
	// round trip.
	if n := reg.Snapshot().Histograms["rpc.call_ns"].Count; n == 0 {
		t.Error("rpc.call_ns histogram is empty")
	}
	if rtt := srv.TokenManager().Stats(); rtt.Revocations == 0 {
		t.Error("token manager recorded no revocations")
	}
}

// TestServerInstrumentDump checks the per-host breakdown the server
// attaches for the status endpoint.
func TestServerInstrumentDump(t *testing.T) {
	reg := obs.NewRegistry()
	srv, vol := newServer(t, Options{Name: "fs1", Obs: reg})
	peer := rawPeer(t, srv, rpc.Options{})
	var r proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{ClientName: "ws1"}, &r); err != nil {
		t.Fatal(err)
	}
	var root proto.GetRootReply
	if err := peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	var created proto.NameReply
	if err := peer.Call(proto.MCreate, proto.NameArgs{Dir: root.FID, Name: "f", Mode: 0o644}, &created); err != nil {
		t.Fatal(err)
	}
	d := reg.Snapshot()
	hosts, ok := d.Info["server.hosts"].(map[string]any)
	if !ok {
		t.Fatalf("info server.hosts missing or wrong shape: %#v", d.Info["server.hosts"])
	}
	// One registered host plus the locked_files summary entry.
	if len(hosts) != 2 {
		t.Fatalf("server.hosts = %#v, want one host entry + locked_files", hosts)
	}
	if d.Counters["token.grants"] == 0 {
		t.Error("token manager not attached: token.grants is 0 after MCreate")
	}
}
