package server

import (
	"errors"
	"net"
	"testing"

	"decorum/internal/auth"
	"decorum/internal/blockdev"
	"decorum/internal/client"
	"decorum/internal/episode"
	"decorum/internal/ffs"
	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

func newServer(t *testing.T, opts Options) (*Server, vfs.VolumeInfo) {
	t.Helper()
	dev := blockdev.NewMem(512, 4096)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 64, PoolSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := agg.CreateVolume("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	return New(opts, agg), vol
}

// chownRoot gives user its home-volume root (what an administrator does
// after creating "user.<name>" volumes).
func chownRoot(t *testing.T, srv *Server, vol vfs.VolumeInfo, user fs.UserID) {
	t.Helper()
	fsys, err := srv.VolumeOps().Mount(vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.SetAttr(vfs.Superuser(), fs.AttrChange{Owner: &user}); err != nil {
		t.Fatal(err)
	}
}

// rawPeer attaches a bare RPC peer (no cache manager) to the server.
func rawPeer(t *testing.T, srv *Server, opts rpc.Options) *rpc.Peer {
	t.Helper()
	cs, ss := net.Pipe()
	srv.Attach(ss)
	peer := rpc.NewPeer(cs, opts)
	peer.Handle(proto.CBRevoke, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(proto.RevokeReply{Returned: true})
	})
	peer.Handle(proto.CBProbe, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(struct{}{})
	})
	peer.Start()
	t.Cleanup(func() { peer.Close() })
	return peer
}

func TestAuthenticatedServerPath(t *testing.T) {
	kdc := auth.NewKDC()
	kdc.AddPrincipal("alice", 700, "alice-pw")
	svc := kdc.AddPrincipal("fs1", 1, "svc-pw")
	srv, vol := newServer(t, Options{Name: "fs1", ServiceKey: svc.Key})
	chownRoot(t, srv, vol, 700)

	tkt, session, err := kdc.Issue("alice", "fs1")
	if err != nil {
		t.Fatal(err)
	}
	peer := rawPeer(t, srv, rpc.Options{
		Auth: &proto.ClientAuthenticator{Ticket: tkt, Session: session},
	})
	var reg proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{ClientName: "alice-ws"}, &reg); err != nil {
		t.Fatal(err)
	}
	var root proto.GetRootReply
	if err := peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	// The create runs AS alice (uid 700): the new file is hers.
	var created proto.NameReply
	err = peer.Call(proto.MCreate, proto.NameArgs{
		Dir: root.FID, Name: "mine", Mode: 0o600,
	}, &created)
	if err != nil {
		t.Fatal(err)
	}
	if created.Attr.Owner != 700 {
		t.Fatalf("owner = %d, want alice (700)", created.Attr.Owner)
	}
}

func TestUnauthenticatedCallRejected(t *testing.T) {
	kdc := auth.NewKDC()
	svc := kdc.AddPrincipal("fs1", 1, "svc-pw")
	srv, _ := newServer(t, Options{Name: "fs1", ServiceKey: svc.Key})
	peer := rawPeer(t, srv, rpc.Options{}) // no authenticator
	var reg proto.RegisterReply
	err := peer.Call(proto.MRegister, proto.RegisterArgs{}, &reg)
	if err == nil {
		t.Fatal("unauthenticated call accepted by authenticated server")
	}
}

func TestPermissionEnforcedOverWire(t *testing.T) {
	kdc := auth.NewKDC()
	kdc.AddPrincipal("alice", 700, "a-pw")
	kdc.AddPrincipal("mallory", 666, "m-pw")
	svc := kdc.AddPrincipal("fs1", 1, "svc-pw")
	srv, vol := newServer(t, Options{Name: "fs1", ServiceKey: svc.Key})
	chownRoot(t, srv, vol, 700)

	dial := func(user string) *rpc.Peer {
		tkt, session, err := kdc.Issue(user, "fs1")
		if err != nil {
			t.Fatal(err)
		}
		p := rawPeer(t, srv, rpc.Options{Auth: &proto.ClientAuthenticator{Ticket: tkt, Session: session}})
		var reg proto.RegisterReply
		if err := p.Call(proto.MRegister, proto.RegisterArgs{ClientName: user}, &reg); err != nil {
			t.Fatal(err)
		}
		return p
	}
	alice := dial("alice")
	mallory := dial("mallory")
	var root proto.GetRootReply
	if err := alice.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	var created proto.NameReply
	if err := alice.Call(proto.MCreate, proto.NameArgs{Dir: root.FID, Name: "secret", Mode: 0o600}, &created); err != nil {
		t.Fatal(err)
	}
	// Mallory cannot read alice's 0600 file.
	var fetch proto.FetchDataReply
	err := mallory.Call(proto.MFetchData, proto.FetchDataArgs{
		FID: created.FID, Length: 10,
	}, &fetch)
	if !errors.Is(proto.DecodeErr(err), fs.ErrPerm) {
		t.Fatalf("mallory read: %v", err)
	}
}

func TestExportedFFSSubset(t *testing.T) {
	// A native FFS export serves files but reports NotSupported for the
	// VFS+ ACL extension — §3.3's "some subset of DEcorum functionality".
	srv, _ := newServer(t, Options{Name: "fs1"})
	dev := blockdev.NewMem(512, 2048)
	nfs, err := ffs.Format(dev, 128, 777)
	if err != nil {
		t.Fatal(err)
	}
	srv.ExportFS(777, nfs)
	peer := rawPeer(t, srv, rpc.Options{})
	var reg proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{}, &reg); err != nil {
		t.Fatal(err)
	}
	var root proto.GetRootReply
	if err := peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: 777}, &root); err != nil {
		t.Fatal(err)
	}
	var created proto.NameReply
	if err := peer.Call(proto.MCreate, proto.NameArgs{Dir: root.FID, Name: "f", Mode: 0o644}, &created); err != nil {
		t.Fatal(err)
	}
	var aclReply proto.ACLReply
	err = peer.Call(proto.MGetACL, proto.ACLArgs{FID: created.FID}, &aclReply)
	if err == nil {
		t.Fatal("FFS export claimed ACL support")
	}
	// Volume ops are Episode-only too: cloning the FFS volume fails
	// cleanly rather than corrupting anything.
	var cloneReply proto.VolCreateReply
	if err := peer.Call(proto.VClone, proto.VolIDArgs{ID: 777, Name: "x"}, &cloneReply); err == nil {
		t.Fatal("clone of native FFS volume succeeded")
	}
}

func TestDropHostForfeitsTokensAndLocks(t *testing.T) {
	srv, vol := newServer(t, Options{Name: "fs1"})
	peer := rawPeer(t, srv, rpc.Options{})
	var reg proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{}, &reg); err != nil {
		t.Fatal(err)
	}
	var root proto.GetRootReply
	if err := peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	var created proto.NameReply
	if err := peer.Call(proto.MCreate, proto.NameArgs{Dir: root.FID, Name: "f", Mode: 0o644}, &created); err != nil {
		t.Fatal(err)
	}
	var tokReply proto.GetTokensReply
	err := peer.Call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  created.FID,
		Want: proto.TokenRequest{Types: token.DataWrite},
	}, &tokReply)
	if err != nil {
		t.Fatal(err)
	}
	var lockReply proto.LockReply
	if err := peer.Call(proto.MSetLock, proto.LockArgs{FID: created.FID, Write: true}, &lockReply); err != nil {
		t.Fatal(err)
	}
	if got := len(srv.TokenManager().HoldersOf(created.FID)); got == 0 {
		t.Fatal("no tokens outstanding")
	}
	// The client dies.
	srv.DropHost(reg.HostID)
	if got := len(srv.TokenManager().HoldersOf(created.FID)); got != 0 {
		t.Fatalf("%d tokens survive DropHost", got)
	}
	// A second client can immediately take the conflicting lock.
	peer2 := rawPeer(t, srv, rpc.Options{})
	var reg2 proto.RegisterReply
	if err := peer2.Call(proto.MRegister, proto.RegisterArgs{}, &reg2); err != nil {
		t.Fatal(err)
	}
	if err := peer2.Call(proto.MSetLock, proto.LockArgs{FID: created.FID, Write: true}, &lockReply); err != nil {
		t.Fatalf("lock after DropHost: %v", err)
	}
}

func TestStatfsAndReadlinkOverWire(t *testing.T) {
	srv, vol := newServer(t, Options{Name: "fs1"})
	peer := rawPeer(t, srv, rpc.Options{})
	var reg proto.RegisterReply
	peer.Call(proto.MRegister, proto.RegisterArgs{}, &reg)
	var root proto.GetRootReply
	if err := peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	var st proto.StatfsReply
	if err := peer.Call(proto.MStatfs, proto.StatfsArgs{Volume: vol.ID}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Statfs.TotalBlocks == 0 || st.Statfs.FreeBlocks == 0 {
		t.Fatalf("statfs %+v", st.Statfs)
	}
	var sym proto.NameReply
	if err := peer.Call(proto.MSymlink, proto.NameArgs{Dir: root.FID, Name: "ln", Target: "over/there"}, &sym); err != nil {
		t.Fatal(err)
	}
	var rl proto.ReadlinkReply
	if err := peer.Call(proto.MReadlink, proto.ReadlinkArgs{FID: sym.FID}, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Target != "over/there" {
		t.Fatalf("readlink %q", rl.Target)
	}
}

func TestSerialsMonotonePerFile(t *testing.T) {
	srv, vol := newServer(t, Options{Name: "fs1"})
	peer := rawPeer(t, srv, rpc.Options{})
	var reg proto.RegisterReply
	peer.Call(proto.MRegister, proto.RegisterArgs{}, &reg)
	var root proto.GetRootReply
	if err := peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	var created proto.NameReply
	if err := peer.Call(proto.MCreate, proto.NameArgs{Dir: root.FID, Name: "f", Mode: 0o644}, &created); err != nil {
		t.Fatal(err)
	}
	last := uint64(0)
	for i := 0; i < 10; i++ {
		var fetch proto.FetchStatusReply
		if err := peer.Call(proto.MFetchStatus, proto.FetchStatusArgs{FID: created.FID}, &fetch); err != nil {
			t.Fatal(err)
		}
		if fetch.Serial <= last {
			t.Fatalf("serial %d after %d", fetch.Serial, last)
		}
		last = fetch.Serial
	}
}

// The §6.3 special call: a StoreData flagged FromRevocation must succeed
// even while another operation holds the server vnode lock.
func TestRevocationStoreBypassesVnodeLock(t *testing.T) {
	srv, vol := newServer(t, Options{Name: "fs1"})
	peer := rawPeer(t, srv, rpc.Options{})
	var reg proto.RegisterReply
	peer.Call(proto.MRegister, proto.RegisterArgs{}, &reg)
	var root proto.GetRootReply
	if err := peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	var created proto.NameReply
	if err := peer.Call(proto.MCreate, proto.NameArgs{Dir: root.FID, Name: "f", Mode: 0o644}, &created); err != nil {
		t.Fatal(err)
	}
	// Hold the vnode lock as a stuck operation would.
	unlock := srv.Glue().LockFile(created.FID)
	defer unlock()
	var reply proto.StoreDataReply
	err := peer.Call(proto.MStoreData, proto.StoreDataArgs{
		FID: created.FID, Data: []byte("store-back"), FromRevocation: true,
	}, &reply)
	if err != nil {
		t.Fatalf("revocation store-back blocked by vnode lock: %v", err)
	}
}

// decorumClientAgainstServer ties the real cache manager to this server
// with authentication, end to end.
func TestAuthenticatedCacheManager(t *testing.T) {
	kdc := auth.NewKDC()
	kdc.AddPrincipal("alice", 700, "alice-pw")
	svc := kdc.AddPrincipal("fs1", 1, "svc-pw")
	srv, vol := newServer(t, Options{Name: "fs1", ServiceKey: svc.Key})
	chownRoot(t, srv, vol, 700)

	locate := client.NewStaticLocator()
	locate.Add(vol.ID, "v", "fs1")
	cl, err := client.New(client.Options{
		Name: "alice-ws",
		User: 700,
		Dial: func(addr string) (net.Conn, error) {
			cs, ss := net.Pipe()
			srv.Attach(ss)
			return cs, nil
		},
		Locate: locate,
		Credentials: func(addr string) (*proto.ClientAuthenticator, error) {
			tkt, session, err := kdc.Issue("alice", "fs1")
			if err != nil {
				return nil, err
			}
			return &proto.ClientAuthenticator{Ticket: tkt, Session: session}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fsys, err := cl.MountVolume(vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		t.Fatal(err)
	}
	ctx := &vfs.Context{User: 700}
	f, err := root.Create(ctx, "authn-file", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx, []byte("over an authenticated association"), 0); err != nil {
		t.Fatal(err)
	}
	attr, err := f.Attr(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if attr.Owner != 700 {
		t.Fatalf("owner %d", attr.Owner)
	}
}

func TestProbeHostsDropsDead(t *testing.T) {
	srv, vol := newServer(t, Options{Name: "fs1"})
	peerLive := rawPeer(t, srv, rpc.Options{})
	var regLive proto.RegisterReply
	if err := peerLive.Call(proto.MRegister, proto.RegisterArgs{ClientName: "live"}, &regLive); err != nil {
		t.Fatal(err)
	}
	// A client that registers, takes a token, and dies.
	cs, ss := net.Pipe()
	srv.Attach(ss)
	peerDead := rpc.NewPeer(cs, rpc.Options{})
	peerDead.Start()
	var regDead proto.RegisterReply
	if err := peerDead.Call(proto.MRegister, proto.RegisterArgs{ClientName: "dead"}, &regDead); err != nil {
		t.Fatal(err)
	}
	var root proto.GetRootReply
	if err := peerDead.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol.ID}, &root); err != nil {
		t.Fatal(err)
	}
	var created proto.NameReply
	if err := peerDead.Call(proto.MCreate, proto.NameArgs{Dir: root.FID, Name: "f", Mode: 0o644}, &created); err != nil {
		t.Fatal(err)
	}
	var tok proto.GetTokensReply
	if err := peerDead.Call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  created.FID,
		Want: proto.TokenRequest{Types: token.DataWrite},
	}, &tok); err != nil {
		t.Fatal(err)
	}
	peerDead.Close() // the workstation crashes

	alive, dropped := srv.ProbeHosts()
	if alive != 1 || dropped != 1 {
		t.Fatalf("probe: alive=%d dropped=%d", alive, dropped)
	}
	if got := len(srv.TokenManager().HoldersOf(created.FID)); got != 0 {
		t.Fatalf("%d tokens survive the dead host", got)
	}
}
