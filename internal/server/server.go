// Package server implements the DEcorum protocol exporter and its sibling
// per-server components (§3 of the paper):
//
//   - the server procedures (§3.5), implementing the RPC interface of
//     internal/proto in terms of the token manager, host model, glue
//     layer, and physical file systems;
//   - the host model (§3.2), tracking each authenticated client, the RPC
//     association it arrived on, and its revocation state;
//   - the volume server procedures (§3.6), exposing clone / dump /
//     restore / move to administrators;
//   - the volume registry (§3.4): the per-server table of local volumes,
//     provided by the Episode aggregate plus any attached native file
//     systems (the FFS interoperability story of §1).
//
// One Server can export an Episode aggregate (full VFS+) and any number of
// additional plain-VFS file systems; all of them are synchronized through
// a single token manager and glue layer, so local access, DEcorum clients,
// and any other exporter see one coherent view (§5.1).
package server

import (
	"fmt"
	"net"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/glue"
	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/recovery"
	"decorum/internal/rpc"
	"decorum/internal/stripe"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// Options configures a Server.
type Options struct {
	// Name labels the server (diagnostics, VLDB registration).
	Name string
	// ServiceKey verifies client tickets (internal/auth). Nil disables
	// authentication (in-process tests).
	ServiceKey []byte
	// RPC configures each accepted association's worker pools/latency.
	RPC rpc.Options
	// Dial reaches other servers for volume moves; nil uses net.Dial.
	Dial func(addr string) (net.Conn, error)
	// Clock drives token leases; nil uses time.Now.
	Clock func() int64
	// Obs, when non-nil, registers the server's metrics (token manager,
	// per-association RPC, host model) and receives trace spans for every
	// procedure and revocation callback. Nil disables instrumentation.
	Obs *obs.Registry
	// Epoch identifies this server incarnation (token state recovery); it
	// is stamped into every RPC frame the server sends and returned from
	// MRegister. Zero derives one from the clock.
	Epoch uint64
	// GracePeriod is the post-start window during which the token manager
	// serves only reclaims: ordinary grants from hosts that have not
	// reclaimed answer with the retryable fs.ErrGrace. Zero disables the
	// window (a restart simply forfeits all client tokens, the
	// pre-recovery behaviour).
	GracePeriod time.Duration
}

// Server is one DEcorum file server.
type Server struct {
	opts  Options
	tm    *token.Manager
	layer *glue.Layer
	guard *recovery.Guard

	mu       sync.Mutex
	agg      vfs.VolumeOps                  // set once in New
	extra    map[fs.VolumeID]vfs.FileSystem // guarded by mu (attached native file systems)
	mounted  map[fs.VolumeID]vfs.FileSystem // guarded by mu
	hosts    map[uint64]*clientHost         // guarded by mu
	nextHost uint64                         // guarded by mu
	locks    map[fs.FID][]fileLock          // guarded by mu
	stripes  map[fs.VolumeID]stripeRole     // guarded by mu (member volumes this server serves)
}

// stripeRole marks one local volume as stripe member `member` of a
// striped logical volume: data and token requests on its files are
// rejected unless the byte range lies entirely on chunks the layout
// assigns this member (data chunks it owns, or — a chunk index doubling
// as a row index — rows whose parity it holds). Ownership enforcement
// keeps a buggy or malicious client from scattering bytes across the
// wrong members, where reads and parity math would never find them.
type stripeRole struct {
	layout *stripe.Layout
	member int
}

// fileLock is one server-side advisory byte-range lock (§5.2: without a
// lock token, clients call the server to set locks).
type fileLock struct {
	host  uint64
	rng   token.Range
	write bool
}

// New builds a server. agg may be nil (a server exporting only native file
// systems); attach them with ExportFS.
func New(opts Options, agg vfs.VolumeOps) *Server {
	tm := token.NewManager()
	if opts.Clock != nil {
		tm.Clock = opts.Clock
	} else {
		tm.Clock = func() int64 { return time.Now().UnixNano() }
	}
	s := &Server{
		opts:     opts,
		tm:       tm,
		layer:    glue.New(tm),
		agg:      agg,
		extra:    make(map[fs.VolumeID]vfs.FileSystem),
		mounted:  make(map[fs.VolumeID]vfs.FileSystem),
		hosts:    make(map[uint64]*clientHost),
		nextHost: glue.LocalHostID + 1,
		locks:    make(map[fs.FID][]fileLock),
		stripes:  make(map[fs.VolumeID]stripeRole),
	}
	s.guard = recovery.NewGuard(opts.Epoch, opts.GracePeriod)
	tm.Gate = s.guard.GrantGate
	// The server-local host (glue layer, Figure 1's system-call path) has
	// no remote cache to reclaim; it passes the gate from the start.
	s.guard.MarkRecovered(glue.LocalHostID)
	if opts.Obs != nil {
		s.Instrument(opts.Obs)
	}
	return s
}

// Instrument registers the server's components with reg: the token
// manager's counters and latency histograms, the host model, and — when
// the aggregate supports it — the Episode WAL and buffer pool. Called
// automatically by New when Options.Obs is set.
func (s *Server) Instrument(reg *obs.Registry) {
	s.tm.Instrument(reg)
	s.guard.Instrument(reg)
	if ag, ok := s.agg.(interface{ Instrument(*obs.Registry) }); ok {
		ag.Instrument(reg)
	}
	reg.AttachInfo("server.hosts", func() any {
		s.mu.Lock()
		hosts := make([]*clientHost, 0, len(s.hosts))
		for _, h := range s.hosts {
			hosts = append(hosts, h)
		}
		locked := len(s.locks)
		s.mu.Unlock()
		out := make(map[string]any, len(hosts)+1)
		for _, h := range hosts {
			h.mu.Lock()
			name, pending := h.name, h.pendingRevokes
			h.mu.Unlock()
			st := h.peer.Stats()
			out[fmt.Sprintf("host-%d", h.id)] = map[string]any{
				"name":            name,
				"pending_revokes": pending,
				"calls_sent":      st.CallsSent,
				"calls_received":  st.CallsReceived,
				"bytes_sent":      st.BytesSent,
				"bytes_received":  st.BytesReceived,
			}
		}
		out["locked_files"] = locked
		return out
	})
}

// TokenManager exposes the token manager (tests, dfsarch).
func (s *Server) TokenManager() *token.Manager { return s.tm }

// Recovery exposes the recovery guard (tests, dfsd logging).
func (s *Server) Recovery() *recovery.Guard { return s.guard }

// Glue exposes the glue layer (tests arm the lock-order checker on it).
func (s *Server) Glue() *glue.Layer { return s.layer }

// VolumeOps exposes the aggregate's volume interface (volume server).
func (s *Server) VolumeOps() vfs.VolumeOps { return s.agg }

// SetStripeMember declares a local volume to be stripe member `member`
// of a striped logical volume with the given layout. From then on the
// server grants ranged data tokens — and serves data reads and writes —
// on that volume's files only for byte ranges lying entirely on chunks
// the layout assigns this member.
func (s *Server) SetStripeMember(vol fs.VolumeID, lay *stripe.Layout, member int) error {
	if err := lay.Validate(0); err != nil {
		return err
	}
	if member < 0 || member >= lay.MemberCount() {
		return fmt.Errorf("%w: member index %d of %d", fs.ErrInvalid, member, lay.MemberCount())
	}
	if lay.Members[member].Volume != vol {
		return fmt.Errorf("%w: member %d's volume is %d, not %d",
			fs.ErrInvalid, member, lay.Members[member].Volume, vol)
	}
	s.mu.Lock()
	s.stripes[vol] = stripeRole{layout: lay, member: member}
	s.mu.Unlock()
	return nil
}

// checkStripeRange rejects data access on a stripe-member volume
// outside the chunks this member owns. Ranges on unstriped volumes
// pass untouched.
func (s *Server) checkStripeRange(fid fs.FID, start, end int64) error {
	s.mu.Lock()
	role, ok := s.stripes[fid.Volume]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	if !role.layout.OwnsRange(role.member, start, end, stripe.ChunkSize) {
		return fmt.Errorf("%w: range [%d,%d) not owned by stripe member %d",
			fs.ErrInvalid, start, end, role.member)
	}
	return nil
}

// ExportFS attaches a native (non-Episode) physical file system under a
// volume ID — the interoperability path (§1): "if a file server is
// installed on a host running UNIX, the server can export file systems
// that were already in use on that host."
func (s *Server) ExportFS(id fs.VolumeID, fsys vfs.FileSystem) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.extra[id] = fsys
}

// LocalFS returns the glue-wrapped file system for local system calls on
// the server node (Figure 1's "generic system calls" path). All local
// operations acquire tokens like any other client.
func (s *Server) LocalFS(id fs.VolumeID) (vfs.FileSystem, error) {
	inner, err := s.volume(id)
	if err != nil {
		return nil, err
	}
	return s.layer.Wrap(inner), nil
}

// volume resolves a volume ID to its (unwrapped) file system.
func (s *Server) volume(id fs.VolumeID) (vfs.FileSystem, error) {
	s.mu.Lock()
	if fsys, ok := s.mounted[id]; ok {
		s.mu.Unlock()
		return fsys, nil
	}
	if fsys, ok := s.extra[id]; ok {
		s.mu.Unlock()
		return fsys, nil
	}
	agg := s.agg
	s.mu.Unlock()
	if agg == nil {
		return nil, fmt.Errorf("%w: volume %d", fs.ErrNotExist, id)
	}
	fsys, err := agg.Mount(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.mounted[id] = fsys
	s.mu.Unlock()
	return fsys, nil
}

// vnodeOf resolves a FID.
func (s *Server) vnodeOf(fid fs.FID) (vfs.Vnode, error) {
	fsys, err := s.volume(fid.Volume)
	if err != nil {
		return nil, err
	}
	return fsys.Get(fid)
}

// clientHost is the host-model record (§3.2) for one client association.
type clientHost struct {
	id   uint64
	name string
	peer *rpc.Peer
	// pendingRevokes counts revocations issued but not yet answered,
	// the "whether all token revocation messages have been delivered"
	// state of §3.2.
	mu             sync.Mutex
	pendingRevokes int // guarded by mu
}

// HostID implements token.Host.
func (h *clientHost) HostID() uint64 { return h.id }

// Revoke implements token.Host: call the client back (§5.3), on the
// revocation priority class so the client's reserved workers serve it.
func (h *clientHost) Revoke(tok token.Token) (bool, error) {
	return h.RevokeTraced(tok, obs.SpanContext{})
}

// RevokeTraced implements token.TracedHost: the revocation callback
// carries the trace of the operation whose grant forced it, so a single
// client write is traceable through the server to the second client.
func (h *clientHost) RevokeTraced(tok token.Token, tc obs.SpanContext) (bool, error) {
	h.mu.Lock()
	h.pendingRevokes++
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.pendingRevokes--
		h.mu.Unlock()
	}()
	var reply proto.RevokeReply
	err := proto.DecodeErr(h.peer.CallTraced(proto.CBRevoke, proto.RevokeArgs{
		Token:  tok,
		Serial: tok.Serial,
	}, &reply, rpc.PriorityRevoke, tc))
	if err != nil {
		return false, err
	}
	return reply.Returned, nil
}

// Attach binds a new client association to the server: it creates the RPC
// peer, registers every handler, and starts it. The returned peer is also
// how the server calls the client back.
func (s *Server) Attach(conn net.Conn) *rpc.Peer {
	opts := s.opts.RPC
	if s.opts.ServiceKey != nil {
		opts.Auth = &proto.ServerAuthenticator{Key: s.opts.ServiceKey}
	}
	if opts.Metrics == nil {
		opts.Metrics = s.opts.Obs
	}
	opts.Epoch = s.guard.Epoch()
	peer := rpc.NewPeer(conn, opts)
	host := s.newHost(peer)
	s.registerHandlers(peer, host)
	peer.Start()
	return peer
}

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.Attach(conn)
	}
}

func (s *Server) newHost(peer *rpc.Peer) *clientHost {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextHost++
	h := &clientHost{id: s.nextHost, peer: peer}
	s.hosts[h.id] = h
	s.tm.Register(h)
	return h
}

// DropHost unregisters a client (connection teardown), forfeiting its
// tokens and releasing its server-side file locks.
func (s *Server) DropHost(id uint64) {
	s.mu.Lock()
	delete(s.hosts, id)
	for fid, ll := range s.locks {
		kept := ll[:0]
		for _, l := range ll {
			if l.host != id {
				kept = append(kept, l)
			}
		}
		if len(kept) == 0 {
			delete(s.locks, fid)
		} else {
			s.locks[fid] = kept
		}
	}
	s.mu.Unlock()
	s.tm.Unregister(id)
}

// ProbeHosts checks client liveness with the CBProbe callback and drops
// hosts that fail — the host-model maintenance of §3.2 (a dead client's
// tokens must not block the living forever; leases back this up).
func (s *Server) ProbeHosts() (alive, dropped int) {
	s.mu.Lock()
	hosts := make([]*clientHost, 0, len(s.hosts))
	for _, h := range s.hosts {
		hosts = append(hosts, h)
	}
	s.mu.Unlock()
	for _, h := range hosts {
		var reply struct{}
		if err := proto.DecodeErr(h.peer.Call(proto.CBProbe, struct{}{}, &reply)); err != nil {
			s.DropHost(h.id)
			dropped++
		} else {
			alive++
		}
	}
	return alive, dropped
}

// ctxOf builds the vfs context for a call from its verified identity.
func ctxOf(ctx *rpc.CallCtx) *vfs.Context {
	if ctx.Identity == nil {
		return vfs.Superuser()
	}
	if id, ok := ctx.Identity.(interface{ UserID() fs.UserID }); ok {
		return &vfs.Context{User: id.UserID()}
	}
	return &vfs.Context{User: fs.AnonymousID}
}
