// Package recovery implements token state recovery: the machinery that
// lets a DEcorum cell survive a file-server restart without losing the
// guarantees (or the dirty data) its clients cached.
//
// The paper's exporter keeps all token state in server memory (§3.1, §5),
// and Episode restarts "in seconds" (§2.2) — so a bare dfsd restart would
// silently invalidate every client's tokens even though the disk
// recovered perfectly. DCE/DFS closed this gap with Token State Recovery,
// and this package reproduces its shape:
//
//   - Every server incarnation has an *epoch*, stamped into every RPC
//     frame it sends. A client that reconnects and sees a new epoch knows
//     its tokens are gone and must be reclaimed.
//   - For a *grace period* after start, the server answers ordinary token
//     grants with a retryable fs.ErrGrace and serves only *reclaims*:
//     requests that re-establish tokens a client previously held,
//     validated against the per-file serialization counters (§6.2).
//     Hosts that reclaim within the window keep their guarantees; hosts
//     that do not are simply absent from the rebuilt state — whatever
//     they held is forfeit once grace closes and grants reopen.
//   - A reclaim that conflicts with state another host already
//     re-established is rejected (fs.ErrReclaim); the loser must drop the
//     cache those tokens covered, never merge it.
//
// The Guard here is the server-side gatekeeper; the client side (loss
// detection, capped-backoff reconnect, reclaim, write-back replay) lives
// in internal/client's resource layer.
package recovery

import (
	"fmt"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/obs"
)

// NewEpoch derives a fresh restart epoch from the wall clock. Epochs only
// need to differ between incarnations of one server; nanosecond
// timestamps do that without any persistent state.
func NewEpoch() uint64 { return uint64(time.Now().UnixNano()) }

// Guard is the server-side recovery state: the incarnation epoch, the
// grace window, and the set of hosts that have completed a reclaim. It is
// consulted by the token manager (via Manager.Gate) before every ordinary
// grant. A nil *Guard is a no-op that never gates.
type Guard struct {
	epoch uint64

	mu        sync.Mutex
	inGrace   bool            // guarded by mu
	recovered map[uint64]bool // guarded by mu; host IDs that reclaimed
	timer     *time.Timer     // guarded by mu; closes grace when it fires

	reclaims        *obs.Counter
	reclaimRejects  *obs.Counter
	graceRejections *obs.Counter
	epochGauge      *obs.Gauge
	inGraceGauge    *obs.Gauge
	recoveredGauge  *obs.Gauge
}

// NewGuard builds the guard for one server incarnation. A zero epoch
// derives one from the clock. A zero grace disables the window entirely
// (grants are never gated; reclaims are still answered, they just never
// have priority), which preserves the pre-recovery behaviour.
func NewGuard(epoch uint64, grace time.Duration) *Guard {
	if epoch == 0 {
		epoch = NewEpoch()
	}
	g := &Guard{
		epoch:           epoch,
		recovered:       make(map[uint64]bool),
		inGrace:         grace > 0,
		reclaims:        obs.NewCounter(),
		reclaimRejects:  obs.NewCounter(),
		graceRejections: obs.NewCounter(),
		epochGauge:      obs.NewGauge(),
		inGraceGauge:    obs.NewGauge(),
		recoveredGauge:  obs.NewGauge(),
	}
	g.epochGauge.Set(int64(epoch))
	if grace > 0 {
		g.inGraceGauge.Set(1)
		g.timer = time.AfterFunc(grace, g.EndGrace)
	}
	return g
}

// Epoch returns the incarnation epoch (zero on a nil guard).
func (g *Guard) Epoch() uint64 {
	if g == nil {
		return 0
	}
	return g.epoch
}

// InGrace reports whether the post-start grace window is still open.
func (g *Guard) InGrace() bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inGrace
}

// EndGrace closes the grace window immediately: ordinary grants are
// accepted from every host from here on. Idempotent; also called by the
// internal timer when the configured period elapses.
func (g *Guard) EndGrace() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	g.inGrace = false
	g.inGraceGauge.Set(0)
}

// MarkRecovered records that a host completed a reclaim exchange (even an
// empty one, for a reconnecting host that held nothing): its ordinary
// grants pass the gate for the rest of the grace window.
func (g *Guard) MarkRecovered(hostID uint64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.recovered[hostID] {
		g.recovered[hostID] = true
		g.recoveredGauge.Set(int64(len(g.recovered)))
	}
}

// Recovered reports whether the host has completed a reclaim.
func (g *Guard) Recovered(hostID uint64) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.recovered[hostID]
}

// GrantGate is installed as the token manager's Gate hook. During grace
// it rejects ordinary grants from hosts that have not reclaimed with a
// retryable fs.ErrGrace; outside grace (or for recovered hosts) it passes.
func (g *Guard) GrantGate(hostID uint64) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.inGrace || g.recovered[hostID] {
		return nil
	}
	g.graceRejections.Add(1)
	return fmt.Errorf("%w (host %d has not reclaimed)", fs.ErrGrace, hostID)
}

// NoteReclaim records the outcome of one reclaim exchange.
func (g *Guard) NoteReclaim(accepted, rejected int) {
	if g == nil {
		return
	}
	g.reclaims.Add(uint64(accepted))
	g.reclaimRejects.Add(uint64(rejected))
}

// Stats is a point-in-time view of the guard.
type Stats struct {
	Epoch           uint64
	InGrace         bool
	RecoveredHosts  int
	Reclaims        uint64
	ReclaimRejects  uint64
	GraceRejections uint64
}

// Stats returns the guard's counters.
func (g *Guard) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	g.mu.Lock()
	inGrace, recovered := g.inGrace, len(g.recovered)
	g.mu.Unlock()
	return Stats{
		Epoch:           g.epoch,
		InGrace:         inGrace,
		RecoveredHosts:  recovered,
		Reclaims:        g.reclaims.Load(),
		ReclaimRejects:  g.reclaimRejects.Load(),
		GraceRejections: g.graceRejections.Load(),
	}
}

// Instrument attaches the guard's cells to a shared registry under the
// recovery.* names dfsstat's recovery section reads.
func (g *Guard) Instrument(reg *obs.Registry) {
	if g == nil || reg == nil {
		return
	}
	reg.AttachCounter("recovery.reclaims", g.reclaims)
	reg.AttachCounter("recovery.reclaim_rejects", g.reclaimRejects)
	reg.AttachCounter("recovery.grace_rejections", g.graceRejections)
	reg.AttachGauge("recovery.epoch", g.epochGauge)
	reg.AttachGauge("recovery.in_grace", g.inGraceGauge)
	reg.AttachGauge("recovery.recovered_hosts", g.recoveredGauge)
}

// Backoff produces capped exponential reconnect delays: Initial, then
// doubling up to Max. The zero value is usable (defaults below). Not
// goroutine-safe; each reconnect loop owns one.
type Backoff struct {
	Initial time.Duration // first delay (default 20ms)
	Max     time.Duration // cap (default 1s, never below Initial)

	next time.Duration
}

// Next returns the delay to wait before the upcoming attempt and advances
// the schedule.
func (b *Backoff) Next() time.Duration {
	if b.next == 0 {
		b.next = b.Initial
		if b.next <= 0 {
			b.next = 20 * time.Millisecond
		}
	}
	d := b.next
	max := b.Max
	if max <= 0 {
		max = time.Second
	}
	if max < b.Initial {
		max = b.Initial
	}
	if b.next *= 2; b.next > max {
		b.next = max
	}
	return d
}

// Reset restarts the schedule from Initial, for reuse after a successful
// reconnect.
func (b *Backoff) Reset() { b.next = 0 }
