package recovery

import (
	"errors"
	"testing"
	"time"

	"decorum/internal/fs"
	"decorum/internal/obs"
)

// During grace, ordinary grants are rejected with the retryable
// fs.ErrGrace until the host reclaims; afterwards they pass.
func TestGrantGateDuringGrace(t *testing.T) {
	g := NewGuard(7, time.Hour)
	if !g.InGrace() {
		t.Fatal("guard not in grace after start")
	}
	if g.Epoch() != 7 {
		t.Fatalf("epoch = %d, want 7", g.Epoch())
	}
	err := g.GrantGate(42)
	if !errors.Is(err, fs.ErrGrace) {
		t.Fatalf("gate during grace = %v, want fs.ErrGrace", err)
	}
	g.MarkRecovered(42)
	if err := g.GrantGate(42); err != nil {
		t.Fatalf("gate after reclaim = %v, want nil", err)
	}
	if err := g.GrantGate(43); !errors.Is(err, fs.ErrGrace) {
		t.Fatalf("gate for unrecovered host = %v, want fs.ErrGrace", err)
	}
	st := g.Stats()
	if st.GraceRejections != 2 {
		t.Fatalf("grace rejections = %d, want 2", st.GraceRejections)
	}
	if st.RecoveredHosts != 1 {
		t.Fatalf("recovered hosts = %d, want 1", st.RecoveredHosts)
	}
}

// EndGrace opens the gate for everyone and is idempotent.
func TestEndGrace(t *testing.T) {
	g := NewGuard(0, time.Hour)
	if g.Epoch() == 0 {
		t.Fatal("zero epoch not replaced with a fresh one")
	}
	g.EndGrace()
	g.EndGrace()
	if g.InGrace() {
		t.Fatal("still in grace after EndGrace")
	}
	if err := g.GrantGate(99); err != nil {
		t.Fatalf("gate after EndGrace = %v, want nil", err)
	}
}

// The grace timer closes the window on its own.
func TestGraceTimerExpires(t *testing.T) {
	g := NewGuard(1, 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for g.InGrace() {
		if time.Now().After(deadline) {
			t.Fatal("grace window never closed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := g.GrantGate(1); err != nil {
		t.Fatalf("gate after expiry = %v, want nil", err)
	}
}

// A zero grace period disables gating entirely (the pre-recovery
// behaviour), and a nil guard never gates.
func TestNoGraceAndNilGuard(t *testing.T) {
	g := NewGuard(1, 0)
	if g.InGrace() {
		t.Fatal("in grace with zero period")
	}
	if err := g.GrantGate(5); err != nil {
		t.Fatalf("gate with zero grace = %v, want nil", err)
	}
	var nilG *Guard
	if err := nilG.GrantGate(5); err != nil {
		t.Fatalf("nil guard gate = %v, want nil", err)
	}
	if nilG.InGrace() || nilG.Epoch() != 0 || nilG.Recovered(1) {
		t.Fatal("nil guard not inert")
	}
	nilG.MarkRecovered(1)
	nilG.EndGrace()
	nilG.NoteReclaim(1, 1)
	nilG.Instrument(obs.NewRegistry())
}

// Instrument exposes the recovery.* cells through a registry.
func TestInstrument(t *testing.T) {
	g := NewGuard(123, time.Hour)
	reg := obs.NewRegistry()
	g.Instrument(reg)
	g.NoteReclaim(3, 1)
	_ = g.GrantGate(9)
	snap := reg.Snapshot()
	if got := snap.Counters["recovery.reclaims"]; got != 3 {
		t.Fatalf("recovery.reclaims = %d, want 3", got)
	}
	if got := snap.Counters["recovery.reclaim_rejects"]; got != 1 {
		t.Fatalf("recovery.reclaim_rejects = %d, want 1", got)
	}
	if got := snap.Counters["recovery.grace_rejections"]; got != 1 {
		t.Fatalf("recovery.grace_rejections = %d, want 1", got)
	}
	if got := snap.Gauges["recovery.epoch"]; got != 123 {
		t.Fatalf("recovery.epoch = %d, want 123", got)
	}
	if got := snap.Gauges["recovery.in_grace"]; got != 1 {
		t.Fatalf("recovery.in_grace = %d, want 1", got)
	}
}

// Backoff doubles from Initial and caps at Max; Reset restarts it.
func TestBackoff(t *testing.T) {
	b := Backoff{Initial: 10 * time.Millisecond, Max: 45 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		45 * time.Millisecond,
		45 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Next(); got != w {
			t.Fatalf("Next() #%d = %v, want %v", i, got, w)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("Next() after Reset = %v, want 10ms", got)
	}
}

// The zero Backoff is usable with sane defaults.
func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	first := b.Next()
	if first != 20*time.Millisecond {
		t.Fatalf("zero-value first delay = %v, want 20ms", first)
	}
	var last time.Duration
	for i := 0; i < 20; i++ {
		last = b.Next()
	}
	if last != time.Second {
		t.Fatalf("zero-value cap = %v, want 1s", last)
	}
}
