package client

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/locking"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/server"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// cell is an in-process DEcorum cell: one file server over an Episode
// aggregate, plus any number of cache-manager clients connected through
// net.Pipe associations.
type cell struct {
	t      testing.TB
	srv    *server.Server
	agg    *episode.Aggregate
	vol    vfs.VolumeInfo
	locate *StaticLocator
	order  *locking.Checker
}

const cellAddr = "fileserver-1"

func newCell(t testing.TB) *cell {
	return newCellRPC(t, rpc.Options{})
}

// newCellRPC builds a cell whose server runs with the given RPC options —
// e.g. DisableBinaryLane to stand in for an old, gob-only file server.
func newCellRPC(t testing.TB, srvRPC rpc.Options) *cell {
	t.Helper()
	dev := blockdev.NewMem(512, 8192)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 128, PoolSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := agg.CreateVolume("user.test", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Name: cellAddr, RPC: srvRPC}, agg)
	locate := NewStaticLocator()
	locate.Add(vol.ID, "user.test", cellAddr)
	return &cell{
		t: t, srv: srv, agg: agg, vol: vol,
		locate: locate, order: locking.New(),
	}
}

// dial wires a client to the in-process server.
func (c *cell) dial(addr string) (net.Conn, error) {
	if addr != cellAddr {
		return nil, fmt.Errorf("no such server %q", addr)
	}
	clientSide, serverSide := net.Pipe()
	c.srv.Attach(serverSide)
	return clientSide, nil
}

// client builds a cache manager attached to the cell.
func (c *cell) client(name string) *Client {
	c.t.Helper()
	cl, err := New(Options{
		Name:   name,
		User:   fs.SuperUser,
		Dial:   c.dial,
		Locate: c.locate,
		Order:  c.order,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() { cl.Close() })
	return cl
}

// mount returns the volume root for a client.
func (c *cell) mount(cl *Client) vfs.Vnode {
	c.t.Helper()
	fsys, err := cl.MountVolume(c.vol.ID)
	if err != nil {
		c.t.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		c.t.Fatal(err)
	}
	return root
}

func (c *cell) checkOrder() {
	c.t.Helper()
	if v := c.order.Violations(); len(v) != 0 {
		c.t.Fatalf("lock hierarchy violations: %v", v)
	}
}

func ctx() *vfs.Context { return vfs.Superuser() }

// livePeer reads the association's current peer for tests that drive
// the revocation path directly.
func livePeer(sc *serverConn) *rpc.Peer {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.peer
}

func TestCreateWriteReadThroughClient(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "hello.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("over the wire")
	if n, err := f.Write(ctx(), msg, 0); err != nil || n != len(msg) {
		t.Fatalf("write: %d, %v", n, err)
	}
	got := make([]byte, len(msg))
	if n, err := f.Read(ctx(), got, 0); err != nil || n != len(msg) {
		t.Fatalf("read: %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	attr, err := f.Attr(ctx())
	if err != nil {
		t.Fatal(err)
	}
	if attr.Length != int64(len(msg)) {
		t.Fatalf("length %d", attr.Length)
	}
	c.checkOrder()
}

func TestAttrCachingAvoidsRPCs(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attr(ctx()); err != nil {
		t.Fatal(err)
	}
	sent0 := cl.RPCStats().CallsSent
	for i := 0; i < 50; i++ {
		if _, err := f.Attr(ctx()); err != nil {
			t.Fatal(err)
		}
	}
	if sent := cl.RPCStats().CallsSent; sent != sent0 {
		t.Fatalf("50 cached Attr calls sent %d RPCs", sent-sent0)
	}
	if hits := cl.Stats().AttrCacheHits; hits < 50 {
		t.Fatalf("AttrCacheHits = %d", hits)
	}
}

func TestDataCachingAvoidsRPCs(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, _ := root.Create(ctx(), "f", 0o644)
	if _, err := f.Write(ctx(), bytes.Repeat([]byte{7}, 1000), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1000)
	if _, err := f.Read(ctx(), buf, 0); err != nil {
		t.Fatal(err)
	}
	sent0 := cl.RPCStats().CallsSent
	for i := 0; i < 20; i++ {
		if _, err := f.Read(ctx(), buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if sent := cl.RPCStats().CallsSent; sent != sent0 {
		t.Fatalf("cached reads sent %d RPCs", sent-sent0)
	}
}

// Single-system UNIX semantics (§5.1): when one user modifies a file,
// other users see the modification as soon as the write completes — even
// though the writer's data was only in its cache.
func TestSingleSystemSemantics(t *testing.T) {
	c := newCell(t)
	a := c.client("wsA")
	b := c.client("wsB")
	rootA := c.mount(a)
	rootB := c.mount(b)

	fA, err := rootA.Create(ctx(), "shared", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fA.Write(ctx(), []byte("v1-from-A"), 0); err != nil {
		t.Fatal(err)
	}
	// A's write is cached under its write token; B's read must revoke it
	// (store-back) and observe the new data immediately.
	fB, err := rootB.Lookup(ctx(), "shared")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	if _, err := fB.Read(ctx(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1-from-A" {
		t.Fatalf("B read %q, want A's cached write", got)
	}
	// And the other direction: B writes, A reads.
	if _, err := fB.Write(ctx(), []byte("v2-from-B"), 0); err != nil {
		t.Fatal(err)
	}
	fA2, err := rootA.Lookup(ctx(), "shared")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fA2.Read(ctx(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-from-B" {
		t.Fatalf("A read %q after B's write", got)
	}
	if a.Stats().Revocations == 0 && b.Stats().Revocations == 0 {
		t.Fatal("sharing produced no revocations; tokens not working")
	}
	c.checkOrder()
}

// §5.4: writers of disjoint parts of one large file keep their tokens;
// nothing is shipped back and forth.
func TestDisjointWritersNoRevocation(t *testing.T) {
	c := newCell(t)
	a := c.client("wsA")
	b := c.client("wsB")
	rootA := c.mount(a)
	rootB := c.mount(b)
	fA, err := rootA.Create(ctx(), "big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Preallocate so both halves exist.
	if _, err := fA.Write(ctx(), make([]byte, 2*ChunkSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := fA.(*cvnode).Fsync(); err != nil {
		t.Fatal(err)
	}
	fB, err := rootB.Lookup(ctx(), "big")
	if err != nil {
		t.Fatal(err)
	}
	// Warm both writers' caches and data tokens.
	if _, err := fA.Write(ctx(), []byte{0xAA}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fB.Write(ctx(), []byte{0xBB}, ChunkSize); err != nil {
		t.Fatal(err)
	}
	// The §5.4 claim is that the FILE is not shipped back and forth:
	// data store-backs and chunk refetches must not grow. (Status tokens
	// for length/mtime do ping-pong; those are small messages.)
	misses0 := a.Stats().DataCacheMisses + b.Stats().DataCacheMisses
	stores0 := a.Stats().StoreBacks + b.Stats().StoreBacks
	for i := 0; i < 20; i++ {
		if _, err := fA.Write(ctx(), []byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := fB.Write(ctx(), []byte{byte(i)}, ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	if d := a.Stats().DataCacheMisses + b.Stats().DataCacheMisses - misses0; d != 0 {
		t.Fatalf("disjoint writers refetched data %d times", d)
	}
	if d := a.Stats().StoreBacks + b.Stats().StoreBacks - stores0; d != 0 {
		t.Fatalf("disjoint writers shipped data back %d times", d)
	}
	c.checkOrder()
}

// The §5.5 example: a local process on the server node and a remote
// client write the same file; the glue layer synchronizes them through
// the same token manager.
func TestLocalRemoteCoherence(t *testing.T) {
	c := newCell(t)
	a := c.client("wsA")
	rootA := c.mount(a)
	fA, err := rootA.Create(ctx(), "mixed", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Remote client writes (cached under its data write token).
	if _, err := fA.Write(ctx(), []byte("remote-data"), 0); err != nil {
		t.Fatal(err)
	}
	// A local process on the server node reads via VOP_RDWR: the glue
	// code requests a read token, which revokes A's write token; A
	// stores back, and the local read sees the data.
	local, err := c.srv.LocalFS(c.vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	lroot, err := local.Root()
	if err != nil {
		t.Fatal(err)
	}
	lf, err := lroot.Lookup(ctx(), "mixed")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if _, err := lf.Read(ctx(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "remote-data" {
		t.Fatalf("local read %q", got)
	}
	// Local write, then remote read sees it.
	if _, err := lf.Write(ctx(), []byte("local-write"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fA.Read(ctx(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "local-write" {
		t.Fatalf("remote read %q after local write", got)
	}
	c.checkOrder()
}

func TestDirectoryCachingAndInvalidation(t *testing.T) {
	c := newCell(t)
	a := c.client("wsA")
	b := c.client("wsB")
	rootA := c.mount(a)
	rootB := c.mount(b)
	if _, err := rootA.Create(ctx(), "one", 0o644); err != nil {
		t.Fatal(err)
	}
	// Prime A's dir cache.
	if _, err := rootA.Lookup(ctx(), "one"); err != nil {
		t.Fatal(err)
	}
	sent0 := a.RPCStats().CallsSent
	if _, err := rootA.Lookup(ctx(), "one"); err != nil {
		t.Fatal(err)
	}
	if sent := a.RPCStats().CallsSent; sent != sent0 {
		t.Fatalf("cached lookup sent %d RPCs", sent-sent0)
	}
	// B creates a file: A's dir data token is revoked; A's next lookup
	// refetches and finds it.
	if _, err := rootB.Create(ctx(), "two", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := rootA.Lookup(ctx(), "two"); err != nil {
		t.Fatalf("A cannot see B's create: %v", err)
	}
	ents, err := rootA.ReadDir(ctx())
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("A sees %d entries", len(ents))
	}
	c.checkOrder()
}

func TestNamespaceOpsThroughClient(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	d, err := root.Mkdir(ctx(), "dir", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	f, err := d.Create(ctx(), "file", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx(), []byte("content"), 0); err != nil {
		t.Fatal(err)
	}
	if err := root.Link(ctx(), "hard", f); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Symlink(ctx(), "soft", "dir/file"); err != nil {
		t.Fatal(err)
	}
	ln, err := root.Lookup(ctx(), "soft")
	if err != nil {
		t.Fatal(err)
	}
	if target, err := ln.Readlink(ctx()); err != nil || target != "dir/file" {
		t.Fatalf("readlink %q, %v", target, err)
	}
	if err := d.Rename(ctx(), "file", root, "moved"); err != nil {
		t.Fatal(err)
	}
	mv, err := root.Lookup(ctx(), "moved")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if _, err := mv.Read(ctx(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "content" {
		t.Fatalf("moved file %q", got)
	}
	if err := root.Remove(ctx(), "hard"); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove(ctx(), "moved"); err != nil {
		t.Fatal(err)
	}
	if err := root.Rmdir(ctx(), "dir"); err != nil {
		t.Fatal(err)
	}
	c.checkOrder()
}

func TestTruncateThroughClient(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, _ := root.Create(ctx(), "f", 0o644)
	if _, err := f.Write(ctx(), bytes.Repeat([]byte{9}, 3000), 0); err != nil {
		t.Fatal(err)
	}
	nl := int64(5)
	attr, err := f.SetAttr(ctx(), fs.AttrChange{Length: &nl})
	if err != nil {
		t.Fatal(err)
	}
	if attr.Length != 5 {
		t.Fatalf("length after truncate %d", attr.Length)
	}
	buf := make([]byte, 10)
	n, err := f.Read(ctx(), buf, 0)
	if err != nil || n != 5 {
		t.Fatalf("read after truncate: %d, %v", n, err)
	}
}

func TestACLThroughClient(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, _ := root.Create(ctx(), "f", 0o644)
	av, ok := f.(vfs.ACLVnode)
	if !ok {
		t.Fatal("client vnode must implement ACLVnode")
	}
	var acl fs.ACL
	acl.Grant(fs.Who{Kind: fs.WhoUser, ID: 77}, fs.RightRead|fs.RightLock)
	if err := av.SetACL(ctx(), acl); err != nil {
		t.Fatal(err)
	}
	got, err := av.ACL(ctx())
	if err != nil {
		t.Fatal(err)
	}
	got.Normalize()
	acl.Normalize()
	if got.String() != acl.String() {
		t.Fatalf("ACL round trip %v != %v", got, acl)
	}
}

// Open tokens: a file open for execution on one client cannot be removed
// (or opened for writing) from another (§5.4).
func TestOpenTokensProtectRunningFile(t *testing.T) {
	c := newCell(t)
	a := c.client("wsA")
	b := c.client("wsB")
	rootA := c.mount(a)
	rootB := c.mount(b)
	if _, err := rootA.Create(ctx(), "prog", 0o755); err != nil {
		t.Fatal(err)
	}
	fB, err := rootB.Lookup(ctx(), "prog")
	if err != nil {
		t.Fatal(err)
	}
	bv := fB.(*cvnode)
	if err := bv.OpenFile(token.OpenExecute); err != nil {
		t.Fatal(err)
	}
	// A cannot delete it while B executes it.
	if err := rootA.Remove(ctx(), "prog"); !errors.Is(err, fs.ErrBusy) {
		t.Fatalf("remove of executing file: %v", err)
	}
	// B stops executing; A can delete.
	bv.CloseFile(token.OpenExecute)
	if err := rootA.Remove(ctx(), "prog"); err != nil {
		t.Fatalf("remove after close: %v", err)
	}
	c.checkOrder()
}

func TestFileLocks(t *testing.T) {
	c := newCell(t)
	a := c.client("wsA")
	b := c.client("wsB")
	rootA := c.mount(a)
	rootB := c.mount(b)
	if _, err := rootA.Create(ctx(), "db", 0o644); err != nil {
		t.Fatal(err)
	}
	fA, _ := rootA.Lookup(ctx(), "db")
	fB, _ := rootB.Lookup(ctx(), "db")
	av, bv := fA.(*cvnode), fB.(*cvnode)
	if err := av.LockRange(token.Range{Start: 0, End: 100}, true); err != nil {
		t.Fatal(err)
	}
	if err := bv.LockRange(token.Range{Start: 50, End: 150}, true); !errors.Is(err, fs.ErrLockConflict) {
		t.Fatalf("conflicting lock: %v", err)
	}
	if err := bv.LockRange(token.Range{Start: 200, End: 300}, true); err != nil {
		t.Fatalf("disjoint lock: %v", err)
	}
	if err := av.UnlockRange(token.Range{Start: 0, End: 100}, true); err != nil {
		t.Fatal(err)
	}
	if err := bv.LockRange(token.Range{Start: 50, End: 150}, true); err != nil {
		t.Fatalf("lock after unlock: %v", err)
	}
}

func TestStalenessIsZero(t *testing.T) {
	// C5's property at unit-test scale: a reader never observes data
	// older than the last completed write, with no polling delay.
	c := newCell(t)
	a := c.client("wsA")
	b := c.client("wsB")
	rootA := c.mount(a)
	rootB := c.mount(b)
	fA, err := rootA.Create(ctx(), "counter", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fB, err := rootB.Lookup(ctx(), "counter")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	for i := byte(1); i <= 20; i++ {
		if _, err := fA.Write(ctx(), []byte{i}, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := fB.Read(ctx(), buf[:1], 0); err != nil {
			t.Fatal(err)
		}
		if buf[0] != i {
			t.Fatalf("B read %d after A wrote %d: stale", buf[0], i)
		}
	}
	c.checkOrder()
}

func TestFsyncDurability(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, _ := root.Create(ctx(), "f", 0o644)
	if _, err := f.Write(ctx(), []byte("must-persist"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.(*cvnode).Fsync(); err != nil {
		t.Fatal(err)
	}
	// Verify through the raw (unwrapped) server file system.
	fsys, err := c.agg.Mount(c.vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	sroot, _ := fsys.Root()
	sf, err := sroot.Lookup(ctx(), "f")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 12)
	if _, err := sf.Read(ctx(), got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "must-persist" {
		t.Fatalf("server has %q", got)
	}
}

func TestDisklessVsDiskCache(t *testing.T) {
	// C10: the same workload works with the in-memory store and a
	// disk-backed store.
	for _, diskless := range []bool{true, false} {
		c := newCell(t)
		opts := Options{
			Name:   "ws",
			Dial:   c.dial,
			Locate: c.locate,
		}
		if !diskless {
			opts.CacheDir = t.TempDir()
		}
		cl, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		root := c.mount(cl)
		f, err := root.Create(ctx(), "f", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{0xAD}, ChunkSize+500)
		if _, err := f.Write(ctx(), data, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := f.Read(ctx(), got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("diskless=%v: data corrupted through cache", diskless)
		}
		cl.Close()
	}
}

// Randomized multi-client stress on a handful of files: the C8 deadlock
// experiment at test scale. Timeouts fail the test (a deadlock would hang
// forever otherwise).
func TestNoDeadlockStress(t *testing.T) {
	c := newCell(t)
	const nClients = 4
	clients := make([]*Client, nClients)
	roots := make([]vfs.Vnode, nClients)
	for i := range clients {
		clients[i] = c.client(fmt.Sprintf("ws%d", i))
		roots[i] = c.mount(clients[i])
	}
	// Seed files.
	for i := 0; i < 3; i++ {
		if _, err := roots[0].Create(ctx(), fmt.Sprintf("f%d", i), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, nClients)
	for g := 0; g < nClients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			root := roots[g]
			buf := make([]byte, 64)
			for i := 0; i < 60; i++ {
				name := fmt.Sprintf("f%d", i%3)
				f, err := root.Lookup(ctx(), name)
				if err != nil {
					continue // transient remove by another client
				}
				switch i % 4 {
				case 0:
					f.Write(ctx(), []byte(fmt.Sprintf("g%d-%d", g, i)), int64(g*10))
				case 1:
					f.Read(ctx(), buf, 0)
				case 2:
					f.Attr(ctx())
				case 3:
					f.(*cvnode).Fsync()
				}
			}
			errs <- nil
		}(g)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress workload hung: likely distributed deadlock")
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	c.checkOrder()
}

func TestBackgroundFlushLoop(t *testing.T) {
	c := newCell(t)
	cl, err := New(Options{
		Name:          "ws",
		Dial:          c.dial,
		Locate:        c.locate,
		FlushInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	fsys, _ := cl.MountVolume(c.vol.ID)
	root, _ := fsys.Root()
	f, err := root.Create(ctx(), "bg", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx(), []byte("flushed in the background"), 0); err != nil {
		t.Fatal(err)
	}
	// Without any Fsync, the background loop must store the data back.
	deadline := time.Now().Add(3 * time.Second)
	for {
		fsysRaw, _ := c.agg.Mount(c.vol.ID)
		sroot, _ := fsysRaw.Root()
		sf, err := sroot.Lookup(ctx(), "bg")
		if err == nil {
			attr, _ := sf.Attr(ctx())
			if attr.Length == 25 {
				buf := make([]byte, 25)
				sf.Read(ctx(), buf, 0)
				if string(buf) == "flushed in the background" {
					return // success
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("background flush never stored the data")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The §6.3 ordering rule: a revocation naming a token the client has not
// processed yet (its granting RPC is still in flight) must WAIT for the
// in-flight RPC, then resolve by the serialization counter — not race it.
func TestRevokeUnknownTokenWaitsForInflightRPC(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	v := f.(*cvnode)

	// Simulate an in-flight RPC that will grant token 999.
	v.lmu.Lock()
	v.rpcs++
	v.lmu.Unlock()

	phantom := token.Token{ID: 999, FID: v.fid, Types: token.DataWrite, Range: token.WholeFile}
	done := make(chan bool, 1)
	go func() {
		done <- v.conn.revoke(livePeer(v.conn), proto.RevokeArgs{Token: phantom, Serial: 10_000})
	}()
	// The revocation must wait: the grant may be in the in-flight reply.
	select {
	case <-done:
		t.Fatal("revocation of unknown token did not wait for the in-flight RPC")
	case <-time.After(50 * time.Millisecond):
	}
	// The in-flight RPC completes and processes the grant.
	v.lmu.Lock()
	v.toks[999] = phantom
	v.rpcs--
	v.cond.Broadcast()
	v.lmu.Unlock()
	select {
	case returned := <-done:
		if !returned {
			t.Fatal("revocation refused a returnable token")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("revocation never completed after the RPC finished")
	}
	// The token is gone and the serial advanced to the revocation's.
	v.lmu.Lock()
	_, still := v.toks[999]
	serial := v.serial
	v.lmu.Unlock()
	if still {
		t.Fatal("revoked token still held")
	}
	if serial < 10_000 {
		t.Fatalf("serial %d did not advance to the revocation's stamp", serial)
	}
}

// A revocation for a token that never arrives (the reply lost it, or it
// was already returned) resolves as returnable once no RPC is in flight.
func TestRevokeUnknownTokenNoInflight(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	v := f.(*cvnode)
	phantom := token.Token{ID: 777, FID: v.fid, Types: token.DataRead, Range: token.WholeFile}
	if !v.conn.revoke(livePeer(v.conn), proto.RevokeArgs{Token: phantom, Serial: 1}) {
		t.Fatal("phantom revocation not returnable")
	}
}

// A revocation for a file this client has never touched is trivially
// returnable.
func TestRevokeUnknownFile(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	c.mount(cl)
	sc, err := cl.connFor(c.vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	phantom := token.Token{
		ID: 5, FID: fs.FID{Volume: c.vol.ID, Vnode: 424242, Uniq: 1},
		Types: token.DataWrite, Range: token.WholeFile,
	}
	if !sc.revoke(livePeer(sc), proto.RevokeArgs{Token: phantom, Serial: 1}) {
		t.Fatal("revocation for unknown file not returnable")
	}
}
