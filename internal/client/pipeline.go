package client

import (
	"fmt"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/proto"
	"decorum/internal/token"
)

// This file is the client data-path pipeline: sequential read-ahead
// (prefetch the next K chunks over the multiplexed association while the
// application consumes the current one), single-flight deduplication of
// chunk fetches, and the bounded worker pool that ships dirty spans
// concurrently on flush. Data RPCs go through the lane-aware helpers in
// lane.go: on an association with the binary bulk-data lane a chunk
// travels as a raw frame payload (zero-copy into the chunk store, one
// writev per store), and otherwise rides the same gob MFetchData and
// MStoreData procedures as always (§4.2, §6.1).

// fetchTable single-flights chunk fetches per (FID, chunk): when a
// demand read and a prefetch (or two readers) want the same chunk, one
// MFetchData goes out and every caller shares its result.
//
// Lock order: mu ranks below the vnode's lmu and is never held across
// an RPC or while taking any other lock.
type fetchTable struct {
	mu       sync.Mutex
	inflight map[chunkKey]*fetchCall // guarded by mu
}

// fetchCall is one in-flight chunk fetch. data and err are written by
// the owner before done is closed; waiters read them only after done.
type fetchCall struct {
	done     chan struct{}
	prefetch bool // the owner is a read-ahead, not a demand read
	data     []byte
	err      error
}

// begin joins the in-flight fetch for k, or registers a new one.
// started reports whether the caller owns the fetch and must complete
// it with finish.
func (t *fetchTable) begin(k chunkKey, prefetch bool) (fc *fetchCall, started bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if fc, ok := t.inflight[k]; ok {
		return fc, false
	}
	fc = &fetchCall{done: make(chan struct{}), prefetch: prefetch}
	t.inflight[k] = fc
	return fc, true
}

// finish publishes the owner's result and releases every waiter.
func (t *fetchTable) finish(k chunkKey, fc *fetchCall, data []byte, err error) {
	fc.data, fc.err = data, err
	t.mu.Lock()
	delete(t.inflight, k)
	t.mu.Unlock()
	close(fc.done)
}

// fetchChunk fetches one chunk over the wire, deduplicated through the
// client's fetch table. gen is the prefetch generation the caller
// sampled; it only matters when prefetch is true.
func (v *cvnode) fetchChunk(idx int64, prefetch bool, gen uint64) ([]byte, error) {
	k := chunkKey{v.fid, idx}
	fc, started := v.c.fetches.begin(k, prefetch)
	if !started {
		<-fc.done
		if !prefetch && fc.prefetch && fc.err == nil {
			// A demand read landed on an in-flight prefetch: that is the
			// hit — consume the mark so the cached copy is not counted
			// again later.
			v.llock()
			delete(v.prefetched, idx)
			v.lunlock()
			v.c.prefetchHits.Inc()
		}
		return fc.data, fc.err
	}
	data, err := v.fetchChunkRPC(idx, prefetch, gen)
	v.c.fetches.finish(k, fc, data, err)
	return data, err
}

// fetchChunkRPC issues the MFetchData call for one chunk and merges the
// reply. Prefetch results are discarded (not cached) when the vnode's
// prefetch generation moved while the call was in flight — a revocation
// or truncation made the bytes suspect.
func (v *cvnode) fetchChunkRPC(idx int64, prefetch bool, gen uint64) ([]byte, error) {
	if lay, err := v.c.layoutFor(v.fid.Volume); err != nil {
		return nil, err
	} else if lay != nil {
		return v.stripeFetchChunk(lay, idx, prefetch, gen)
	}
	rng := v.tokenRange(idx)
	if prefetch {
		v.c.prefetchIssued.Inc()
		v.c.prefetchInflight.Add(1)
		defer v.c.prefetchInflight.Add(-1)
	}
	start := time.Now()
	var reply proto.FetchDataReply
	var err error
	// A hash mismatch on the reply is retried in place (the damage may be
	// a transient read error on the server's disk); a chunk that keeps
	// failing surfaces as integrity.MismatchError, which unwraps to the
	// retryable ErrMismatch so callers above can route around it.
	for attempt := 0; ; attempt++ {
		err = v.withRPC(func() error {
			var ferr error
			reply, ferr = v.conn.fetchData(proto.FetchDataArgs{
				FID:    v.fid,
				Offset: idx * ChunkSize,
				Length: ChunkSize,
				Want:   proto.TokenRequest{Types: token.DataRead | token.StatusRead, Range: rng},
			}, nil)
			return ferr
		})
		if err != nil {
			break
		}
		if err = v.verifyFetched(idx, &reply); err == nil {
			break
		}
		if attempt >= verifyRetries {
			break
		}
		v.c.refetches.Inc()
	}
	v.c.fetchNs.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	// The reply payload is an exclusively owned buffer in both transports
	// (the binary lane reads data into its own exactly-sized buffer; gob
	// decoding allocates), so a full chunk is adopted by the cache without
	// a copy. Short reads at EOF pad into a fresh chunk.
	chunk := reply.Data
	if len(chunk) != ChunkSize {
		chunk = make([]byte, ChunkSize)
		copy(chunk, reply.Data)
	}
	v.llock()
	v.addTokensLocked(reply.Grants)
	v.mergeLocked(reply.Attr, reply.Serial)
	if prefetch && gen != v.prefetchGen {
		v.lunlock()
		v.c.prefetchCancels.Inc()
		return chunk, nil
	}
	v.c.store.PutOwned(v.fid, idx, chunk)
	if prefetch {
		v.prefetched[idx] = true
	}
	v.lunlock()
	return chunk, nil
}

// verifyRetries bounds in-place re-fetches of a chunk that fails hash
// verification before the mismatch surfaces to the caller.
const verifyRetries = 2

// verifyFetched checks a fetch reply's payload against the leaf hash the
// server attached, before the bytes can reach the cache. Replies without
// a hash (unaligned reads, unhashed files, pre-integrity servers) pass
// unchecked — the scrub is the backstop for those. The hash covers the
// payload exactly as received (the server clips the leaf at the file's
// length the same way), so no padding or length juggling is needed here.
func (v *cvnode) verifyFetched(idx int64, reply *proto.FetchDataReply) error {
	return v.verifyChunk(idx, reply.Data, reply.Hash)
}

// verifyChunk is the shared verification core: hash the received bytes,
// compare against the server's recorded leaf, keep the books. hash is
// nil (no check) or exactly HashSize bytes. Used by the unstriped fetch
// path and by striped member reads.
func (v *cvnode) verifyChunk(idx int64, data, hash []byte) error {
	if v.c.opts.DisableVerify || len(hash) != integrity.HashSize {
		return nil
	}
	start := time.Now()
	got := integrity.LeafHash(data)
	v.c.verifyNs.Observe(time.Since(start))
	ref := integrity.ChunkRef{Vnode: v.fid.Vnode, Uniq: v.fid.Uniq, Chunk: idx}
	var want integrity.Hash
	copy(want[:], hash)
	if got == want {
		v.c.verifiedChunks.Inc()
		v.c.verifier.Clear(ref)
		return nil
	}
	v.c.hashMismatches.Inc()
	v.c.verifier.Note(ref)
	return &integrity.MismatchError{Chunk: idx, Want: want, Got: got}
}

// notePrefetchHitLocked credits a demand read served by a previously
// prefetched chunk. Called with lmu held.
func (v *cvnode) notePrefetchHitLocked(idx int64) {
	if v.prefetched[idx] {
		delete(v.prefetched, idx)
		v.c.prefetchHits.Inc()
	}
}

// maybeReadAhead runs at the end of a Read covering chunks
// [firstChunk, lastChunk]: when the access pattern is sequential it
// schedules asynchronous prefetches for the next K chunks. Prefetches
// are best-effort — a saturated pool skips them rather than delaying
// the read that triggered them.
func (v *cvnode) maybeReadAhead(firstChunk, lastChunk int64) {
	if v.c.readAhead == 0 {
		return
	}
	v.llock()
	sequential := firstChunk == v.seqNext
	v.seqNext = lastChunk + 1
	if !sequential {
		// The scan cursor moved: restart the window behind the new
		// position so a later sequential run prefetches fresh chunks.
		v.raNext = lastChunk + 1
		v.lunlock()
		return
	}
	gen := v.prefetchGen
	length := v.attr.Length
	from := lastChunk + 1
	if from < v.raNext {
		from = v.raNext // already scheduled by an earlier read
	}
	to := lastChunk + int64(v.c.readAhead)
	if length <= 0 {
		v.lunlock()
		return
	}
	if lastFileChunk := (length - 1) / ChunkSize; to > lastFileChunk {
		to = lastFileChunk
	}
	if to >= from {
		v.raNext = to + 1
	}
	v.lunlock()
	for idx := from; idx <= to; idx++ {
		select {
		case v.c.prefetchSem <- struct{}{}:
			go v.prefetchChunk(idx, gen)
		default:
			return
		}
	}
}

// prefetchChunk is one read-ahead worker: it re-checks that the work is
// still wanted (generation unchanged, chunk not already cached under a
// token) and then fetches through the single-flight table. The caller
// has already reserved a prefetchSem slot.
func (v *cvnode) prefetchChunk(idx int64, gen uint64) {
	defer func() { <-v.c.prefetchSem }()
	rng := v.tokenRange(idx)
	v.llock()
	if gen != v.prefetchGen {
		v.lunlock()
		v.c.prefetchCancels.Inc()
		return
	}
	if v.hasTokenLocked(token.DataRead, rng) {
		if _, ok := v.c.store.Get(v.fid, idx); ok {
			v.lunlock()
			return
		}
	}
	v.lunlock()
	_, _ = v.fetchChunk(idx, true, gen)
}

// discardPrefetchedLocked cancels queued and in-flight prefetches (they
// re-check the generation) and counts still-unread prefetched chunks in
// [first, last) as waste. last < 0 means the whole file. Called with
// lmu held when tokens are lost or the file truncated.
func (v *cvnode) discardPrefetchedLocked(first, last int64) {
	v.prefetchGen++
	for idx := range v.prefetched {
		if idx >= first && (last < 0 || idx < last) {
			delete(v.prefetched, idx)
			v.c.prefetchWaste.Inc()
		}
	}
}

// flushJob is one dirty span headed for MStoreData; data aliases the
// snapshot copy taken from the chunk store under lmu. gen is the
// vnode's staleGen at snapshot time: if a reclaim conflict invalidates
// the cache while the job is queued or retrying, the generations
// diverge and the job aborts instead of shipping discarded bytes.
type flushJob struct {
	idx  int64
	span dirtySpan
	off  int64
	data []byte
	gen  uint64
}

// storeSpan ships one dirty span through the per-target write-back
// gate, merges the reply by serial, and unpins the chunk. Striped
// spans route to their data member with a parity update (stripe.go);
// their status flows to the primary separately, so the serial
// bookkeeping below only runs unstriped. On error the span is put
// back so the data is not lost; the flush reports the error and a
// later flush retries.
func (v *cvnode) storeSpan(j flushJob) error {
	// The pre hook runs before every (re)attempt inside the recovery
	// path: a store that survives a reconnect whose reclaim was REJECTED
	// must not ship the now-discarded bytes to the new server.
	pre := func() error {
		v.llock()
		stale := j.gen != v.staleGen
		v.lunlock()
		if stale {
			return fmt.Errorf("%w: write-back invalidated by reclaim conflict", fs.ErrStale)
		}
		return nil
	}
	lay, err := v.c.layoutFor(v.fid.Volume)
	start := time.Now()
	var reply proto.StoreDataReply
	if err == nil {
		if lay != nil {
			err = v.stripeStoreSpan(lay, j, pre)
		} else {
			args := proto.StoreDataArgs{
				FID:    v.fid,
				Offset: j.off,
				Data:   j.data,
			}
			// Piggyback a token want when the span's range is not held:
			// the grant rides back on the store reply instead of costing
			// a separate MGetTokens round trip.
			want := token.DataWrite | token.StatusWrite
			rng := v.tokenRange(j.idx)
			v.llock()
			if !v.hasTokenLocked(want, rng) {
				args.Want = proto.TokenRequest{Types: want, Range: rng}
			}
			v.lunlock()
			gate := v.c.storeGate(v.conn.addr)
			gate <- struct{}{}
			v.c.storeInflight.Add(1)
			err = v.withRPC(func() error {
				var serr error
				reply, serr = v.conn.storeData(args, pre)
				return serr
			})
			v.c.storeInflight.Add(-1)
			<-gate
		}
	}
	v.c.storeNs.Observe(time.Since(start))
	v.llock()
	v.flushing--
	if err != nil {
		v.redirtyJobLocked(j)
	} else {
		v.c.storeBacks.Inc()
		if lay == nil {
			v.addTokensLocked(reply.Grants)
			// Track the freshest reply of the batch; the last job standing
			// installs it wholesale once the vnode is clean again. Striped
			// stores have no logical reply to merge — member attributes
			// describe member objects, never the logical file.
			if reply.Serial > v.flushSerial {
				v.flushSerial, v.flushAttr = reply.Serial, reply.Attr
			}
			if len(v.dirty) == 0 && v.flushing == 0 {
				v.mergeForceLocked(v.flushAttr, v.flushSerial)
				v.flushSerial = 0
			} else {
				v.mergeLocked(reply.Attr, reply.Serial)
			}
		}
		v.c.store.Unpin(v.fid, j.idx)
	}
	v.cond.Broadcast()
	v.lunlock()
	return err
}

// redirtyJobLocked puts a failed flush job's span back so the data is
// not lost: discarded-by-conflict jobs only release their pin, spans
// re-dirtied while in flight widen the live entry, and everything else
// goes back in the dirty map keeping the job's pin. Shared by storeSpan
// and storeSpanBatch. Called with lmu held.
func (v *cvnode) redirtyJobLocked(j flushJob) {
	if j.gen != v.staleGen {
		// The span's bytes were discarded by the conflict policy while
		// this job was in flight; markStaleLocked already dropped the
		// map entry, so only the job's pin remains to release.
		v.c.store.Unpin(v.fid, j.idx)
	} else if cur, had := v.dirty[j.idx]; had {
		// Re-dirtied while in flight: widen the live span and fold
		// the job's pin into the entry's own.
		if j.span.lo < cur.lo {
			cur.lo = j.span.lo
		}
		if j.span.hi > cur.hi {
			cur.hi = j.span.hi
		}
		v.dirty[j.idx] = cur
		v.c.store.Unpin(v.fid, j.idx)
	} else {
		v.dirty[j.idx] = j.span // keeps the job's pin
	}
}
