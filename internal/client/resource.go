package client

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/recovery"
	"decorum/internal/rpc"
	"decorum/internal/token"
)

// This file is the resource layer's recovery half (token state
// recovery): each server association is a small state machine that
// detects loss (rpc.ErrClosed / rpc.ErrTimeout, or the peer's Done
// channel firing), reconnects with capped exponential backoff,
// re-authenticates, reclaims the tokens backing this client's vnodes,
// and replays pending write-back through the normal flush pipeline.
// Vnode callers never see the raw transport errors: a call either
// succeeds on the recovered association or fails with the typed,
// retryable ErrDisconnected.

// ErrDisconnected is the typed, retryable error vnode operations get
// when a server association is lost and could not be recovered within
// the client's RecoveryTimeout. Test with errors.Is.
var ErrDisconnected = errors.New("client: server association lost")

// connState is the association's recovery state.
type connState int

const (
	// connUp: peer is live; calls go straight through.
	connUp connState = iota
	// connReconnecting: one goroutine owns the reconnect; callers wait
	// on waitCh.
	connReconnecting
	// connDown: a reconnect attempt exhausted its budget; the next
	// caller retries the dial.
	connDown
)

// serverConn is the resource-layer record for one server association.
type serverConn struct {
	c    *Client
	addr string

	mu     sync.Mutex
	peer   *rpc.Peer     // guarded by mu (current association, nil only before first connect)
	hostID uint64        // guarded by mu
	epoch  uint64        // guarded by mu (server restart epoch, from MRegister)
	state  connState     // guarded by mu
	waitCh chan struct{} // guarded by mu; non-nil while reconnecting, closed when the attempt settles
	// revokedAhead tombstones revocations that arrived for files with no
	// vnode (§6.3): FID → revocation serial. The killed grant may still
	// be in flight on the RPC that will create the vnode; the entry is
	// consumed by its constructor and cleared on reclaim (a restarted
	// server's serial counters start over).
	revokedAhead map[fs.FID]uint64 // guarded by mu
}

// noteRevokedAhead records a revocation for a file with no vnode; the
// serial is handed to the vnode's constructor by takeRevokedAhead.
func (sc *serverConn) noteRevokedAhead(fid fs.FID, serial uint64) {
	sc.mu.Lock()
	if sc.revokedAhead == nil {
		sc.revokedAhead = make(map[fs.FID]uint64)
	}
	if serial > sc.revokedAhead[fid] {
		sc.revokedAhead[fid] = serial
	}
	sc.mu.Unlock()
}

func (sc *serverConn) takeRevokedAhead(fid fs.FID) uint64 {
	sc.mu.Lock()
	s := sc.revokedAhead[fid]
	if s != 0 {
		delete(sc.revokedAhead, fid)
	}
	sc.mu.Unlock()
	return s
}

// conn returns (dialing if needed) the association for addr.
func (c *Client) conn(addr string) (*serverConn, error) {
	c.mu.Lock()
	if sc, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		return sc, nil
	}
	c.mu.Unlock()

	sc := &serverConn{c: c, addr: addr}
	peer, hostID, epoch, err := sc.connect()
	if err != nil {
		return nil, err
	}
	sc.mu.Lock()
	sc.peer, sc.hostID, sc.epoch = peer, hostID, epoch
	sc.state = connUp
	sc.mu.Unlock()

	c.mu.Lock()
	if existing, ok := c.conns[addr]; ok {
		c.mu.Unlock()
		peer.Close()
		return existing, nil
	}
	c.conns[addr] = sc
	c.mu.Unlock()
	go sc.watch(peer)
	return sc, nil
}

// connect dials, authenticates, and registers one fresh association.
// Credentials are requested anew on every attempt, so a reconnect
// re-authenticates rather than replaying a possibly expired ticket.
func (sc *serverConn) connect() (*rpc.Peer, uint64, uint64, error) {
	c := sc.c
	nc, err := c.opts.Dial(sc.addr)
	if err != nil {
		return nil, 0, 0, err
	}
	opts := c.opts.RPC
	if c.opts.Credentials != nil {
		a, err := c.opts.Credentials(sc.addr)
		if err != nil {
			nc.Close()
			return nil, 0, 0, err
		}
		opts.Auth = a
	}
	peer := rpc.NewPeer(nc, opts)
	peer.Handle(proto.CBRevoke, sc.handleRevoke)
	peer.Handle(proto.CBProbe, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(struct{}{})
	})
	peer.Start()
	var reg proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{ClientName: c.opts.Name}, &reg); err != nil {
		peer.Close()
		return nil, 0, 0, proto.DecodeErr(err)
	}
	return peer, reg.HostID, reg.Epoch, nil
}

// watch begins recovery the moment the association dies, without
// waiting for the next call to trip over it — dirty data should be
// replayed promptly, not when the application happens to return.
func (sc *serverConn) watch(peer *rpc.Peer) {
	select {
	case <-peer.Done():
	case <-sc.c.done:
		return
	}
	select {
	case <-sc.c.done:
		return
	default:
	}
	sc.recover(peer)
}

// peerStats reads the current peer's traffic counters (zero when the
// association never came up).
func (sc *serverConn) peerStats() rpc.Stats {
	sc.mu.Lock()
	p := sc.peer
	sc.mu.Unlock()
	if p == nil {
		return rpc.Stats{}
	}
	return p.Stats()
}

// call performs one RPC on the association with full recovery handling.
func (sc *serverConn) call(method string, args, reply any) error {
	return sc.callGuarded(method, args, reply, nil)
}

// callGuarded is call with a precondition hook: pre (when non-nil) runs
// before every attempt, and a non-nil error aborts the call. The flush
// pipeline uses it so a dirty span invalidated by a reclaim conflict
// mid-retry is never shipped to the server.
//
// Failure handling: fs.ErrGrace (the server is in its post-restart
// grace window) retries with backoff; rpc.ErrClosed / rpc.ErrTimeout
// (association loss) trigger recovery — reconnect, re-authenticate,
// reclaim, replay — and then the call retries on the new association.
// When the recovery budget (RecoveryTimeout) is spent the caller gets
// the typed, retryable ErrDisconnected instead of a raw transport
// error. All other errors pass through untouched.
func (sc *serverConn) callGuarded(method string, args, reply any, pre func() error) error {
	return sc.callGuardedFn(pre, func(peer *rpc.Peer) error {
		return proto.DecodeErr(peer.Call(method, args, reply))
	})
}

// callGuardedFn is the closure form of callGuarded: do runs one attempt
// against the association's current peer, and the surrounding loop
// supplies the same grace-wait/recovery/retry handling. The binary-lane
// helpers (lane.go) use it because one logical call is a CallBin or a
// gob Call depending on what the attempt's peer negotiated.
func (sc *serverConn) callGuardedFn(pre func() error, do func(*rpc.Peer) error) error {
	c := sc.c
	deadline := time.Now().Add(c.recoveryTimeout)
	graceWait := recovery.Backoff{Initial: c.reconnectBackoff}
	for {
		if pre != nil {
			if err := pre(); err != nil {
				return err
			}
		}
		sc.mu.Lock()
		peer, st, wait := sc.peer, sc.state, sc.waitCh
		sc.mu.Unlock()
		switch st {
		case connReconnecting:
			select {
			case <-wait:
			case <-c.done:
				return fmt.Errorf("%w: client closed", ErrDisconnected)
			case <-time.After(time.Until(deadline)):
				return fmt.Errorf("%w: %s: reconnect still in progress", ErrDisconnected, sc.addr)
			}
			continue
		case connDown:
			if !time.Now().Before(deadline) {
				return fmt.Errorf("%w: %s unreachable", ErrDisconnected, sc.addr)
			}
			sc.recover(nil)
			continue
		}
		err := proto.DecodeErr(do(peer))
		switch {
		case err == nil:
			return nil
		case errors.Is(err, fs.ErrGrace):
			if !time.Now().Before(deadline) {
				return err
			}
			select {
			case <-time.After(graceWait.Next()):
			case <-c.done:
				return err
			}
		case errors.Is(err, rpc.ErrClosed), errors.Is(err, rpc.ErrTimeout):
			sc.recover(peer)
			if !time.Now().Before(deadline) {
				return fmt.Errorf("%w: %s: %v", ErrDisconnected, sc.addr, err)
			}
		default:
			return err
		}
	}
}

// recover re-establishes the association after failed is observed dead
// (failed == nil forces an attempt from the down state). Exactly one
// goroutine owns the reconnect; others wait on waitCh. The owner loops
// dial → authenticate → register → reclaim with capped exponential
// backoff until it succeeds or the recovery budget is spent, and only
// wakes the waiters after the reclaimed tokens are installed — an
// operation must never run on a recovered association whose cache
// guarantees are still unsettled.
func (sc *serverConn) recover(failed *rpc.Peer) {
	c := sc.c
	sc.mu.Lock()
	switch {
	case sc.state == connReconnecting:
		wait := sc.waitCh
		sc.mu.Unlock()
		select {
		case <-wait:
		case <-c.done:
		}
		return
	case sc.state == connUp && failed == nil:
		sc.mu.Unlock()
		return
	case sc.state == connUp && sc.peer != failed:
		// Someone else already recovered past this failure.
		sc.mu.Unlock()
		return
	}
	oldPeer, oldHost := sc.peer, sc.hostID
	sc.state = connReconnecting
	sc.waitCh = make(chan struct{})
	sc.mu.Unlock()
	if oldPeer != nil {
		oldPeer.Close()
	}

	start := time.Now()
	var tc obs.SpanContext
	if c.opts.Obs != nil {
		tc = obs.NewRoot()
	}
	deadline := start.Add(c.recoveryTimeout)
	bo := recovery.Backoff{Initial: c.reconnectBackoff}
	for {
		select {
		case <-c.done:
			sc.abandon()
			return
		default:
		}
		peer, hostID, epoch, err := sc.connect()
		if err != nil {
			if !time.Now().Before(deadline) {
				sc.abandon()
				return
			}
			select {
			case <-time.After(bo.Next()):
			case <-c.done:
				sc.abandon()
			}
			if c.isClosed() {
				return
			}
			continue
		}
		replay := sc.reclaim(peer, oldHost, tc)
		sc.mu.Lock()
		sc.peer, sc.hostID, sc.epoch = peer, hostID, epoch
		sc.state = connUp
		close(sc.waitCh)
		sc.waitCh = nil
		sc.mu.Unlock()
		c.reconnects.Inc()
		c.reconnectNs.Observe(time.Since(start))
		if c.opts.Obs != nil {
			c.opts.Obs.RecordSpan(obs.Span{
				Trace: tc.Trace, Span: tc.Span,
				Name: "recovery.reconnect " + sc.addr, Start: start, Dur: time.Since(start),
			})
		}
		go sc.watch(peer)
		// Replay pending write-back through the normal flush pipeline,
		// off the recovery path so waiters are not serialized behind it.
		for _, rv := range replay {
			go func(rv replayVnode) {
				if rv.v.Fsync() == nil {
					c.replayedBytes.Add(uint64(rv.bytes))
				}
			}(rv)
		}
		return
	}
}

// abandon marks the association down and wakes blocked callers; a later
// call retries the dial from the down state.
func (sc *serverConn) abandon() {
	sc.mu.Lock()
	sc.state = connDown
	if sc.waitCh != nil {
		close(sc.waitCh)
		sc.waitCh = nil
	}
	sc.mu.Unlock()
}

func (c *Client) isClosed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

// replayVnode is one vnode whose dirty data must be replayed after a
// successful reclaim.
type replayVnode struct {
	v     *cvnode
	bytes int64
}

// reclaim re-presents every token backing this association's vnodes to
// the (possibly restarted) server and installs the outcome:
//
//   - accepted claims become fresh tokens, replacing the dead ones
//     one-for-one, with serials past everything seen pre-loss;
//   - a rejected claim means another host re-established conflicting
//     state first — the vnode is marked stale and its cached data
//     dropped, never merged (§6.2's counters decide who lost);
//   - a failed reclaim RPC voids everything conservatively.
//
// While the new tokens install, every involved vnode's in-flight RPC
// counter is raised so a revocation racing the install waits on the
// condition variable (§6.3) instead of concluding the token was never
// granted. Returns the vnodes whose dirty write-back must be replayed.
func (sc *serverConn) reclaim(peer *rpc.Peer, oldHostID uint64, tc obs.SpanContext) []replayVnode {
	c := sc.c
	c.mu.Lock()
	var vns []*cvnode
	for _, v := range c.vnodes {
		if v.conn == sc {
			vns = append(vns, v)
		}
	}
	c.mu.Unlock()
	sort.Slice(vns, func(i, j int) bool { return fidAfter(vns[j].fid, vns[i].fid) })

	// The restarted server's serial counters start over: pre-crash
	// revocation serials would suppress legitimate new-epoch grants.
	sc.mu.Lock()
	sc.revokedAhead = nil
	sc.mu.Unlock()

	var claims []token.Token
	for _, v := range vns {
		v.llock()
		v.rpcs++
		v.revokedSerial = 0
		for _, t := range v.toks {
			claims = append(claims, t)
		}
		v.lunlock()
	}
	sort.Slice(claims, func(i, j int) bool { return claims[i].ID < claims[j].ID })
	release := func() {
		for _, v := range vns {
			v.llock()
			v.rpcs--
			v.cond.Broadcast()
			v.lunlock()
		}
	}

	start := time.Now()
	var reply proto.ReclaimReply
	err := proto.DecodeErr(peer.CallTraced(proto.MReclaimTokens, proto.ReclaimArgs{
		OldHostID: oldHostID,
		Tokens:    claims,
	}, &reply, rpc.PriorityNormal, tc))
	if c.opts.Obs != nil && !tc.IsZero() {
		c.opts.Obs.RecordSpan(obs.Span{
			Trace: tc.Trace, Span: obs.NewID(), Parent: tc.Span,
			Name: "recovery.reclaim", Start: start, Dur: time.Since(start),
		})
	}
	if err != nil {
		// Could not reclaim at all: every cached guarantee is void.
		for _, v := range vns {
			v.llock()
			v.markStaleLocked()
			v.lunlock()
		}
		c.reclaimConflicts.Add(uint64(len(claims)))
		release()
		return nil
	}

	accepted := make(map[fs.FID][]proto.Grant)
	for _, g := range reply.Accepted {
		accepted[g.Token.FID] = append(accepted[g.Token.FID], g)
	}
	rejected := make(map[fs.FID]bool)
	for _, t := range reply.Rejected {
		rejected[t.FID] = true
	}

	var replay []replayVnode
	for _, v := range vns {
		v.llock()
		if rejected[v.fid] {
			// Any rejected claim poisons the whole vnode: partial
			// guarantees over data written under the lost ones cannot be
			// trusted.
			v.markStaleLocked()
			v.lunlock()
			continue
		}
		// Replace the pre-loss tokens wholesale: their IDs mean nothing
		// to the restarted server.
		v.toks = make(map[token.ID]token.Token)
		for _, g := range accepted[v.fid] {
			v.toks[g.Token.ID] = g.Token
			if g.Serial > v.serial {
				v.serial = g.Serial
			}
		}
		if n := v.dirtyBytesLocked(); n > 0 {
			replay = append(replay, replayVnode{v: v, bytes: n})
		}
		v.cond.Broadcast()
		v.lunlock()
	}
	c.reclaimedTokens.Add(uint64(len(reply.Accepted)))
	c.reclaimConflicts.Add(uint64(len(reply.Rejected)))
	release()
	return replay
}

// returnTokens gives evicted vnodes' tokens back voluntarily (the
// release half of §5.2's acquire-operate-release). Best effort: on
// failure the server revokes or expires them later.
func (sc *serverConn) returnTokens(ids []token.ID) {
	var reply proto.ReturnTokensReply
	_ = sc.call(proto.MReturnTokens, proto.ReturnTokensArgs{IDs: ids}, &reply)
}

// markStaleLocked discards every cached guarantee and byte for the
// vnode: tokens, attributes, chunks, directory caches, pending dirty
// spans. Used when a reclaim conflict (or a failed reclaim) voids the
// cache — the data another host may have changed while this client was
// disconnected is dropped, never merged. A vnode that held dirty data
// is additionally flagged so the next write-path operation surfaces
// fs.ErrStale once: the application must learn its writes were lost.
// Called with lmu held.
func (v *cvnode) markStaleLocked() {
	hadDirty := len(v.dirty) > 0 || v.dirtyStatus
	for idx := range v.dirty {
		delete(v.dirty, idx)
		v.c.store.Unpin(v.fid, idx)
	}
	v.dirtyStatus = false
	v.staleGen++
	v.toks = make(map[token.ID]token.Token)
	v.revokedSerial = 0
	v.attrValid = false
	v.discardPrefetchedLocked(0, -1)
	v.invalidateDirLocked()
	v.c.store.DropFile(v.fid)
	if hadDirty {
		v.conflicted = true
		v.c.staleVnodes.Inc()
	}
	v.cond.Broadcast()
}

// dirtyBytesLocked sums the vnode's dirty span lengths. Called with lmu
// held.
func (v *cvnode) dirtyBytesLocked() int64 {
	var n int64
	for _, span := range v.dirty {
		n += int64(span.hi - span.lo)
	}
	return n
}
