package client

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/proto"
	"decorum/internal/stripe"
	"decorum/internal/token"
)

// This file is the client side of striped multi-server volumes: the
// placement layer resolving (FID, chunk) to the member server and
// object holding it, the fan-out read path with RAID-5 degraded-read
// reconstruction, and the write path maintaining rotating parity.
//
// The split follows Lustre's metadata/data separation grafted onto the
// paper's architecture: the LOGICAL volume stays on its primary server,
// which serves the namespace, attributes, and every token exactly as
// before (§5, §6 unchanged — no new token message types). Only file
// DATA moves: chunk c of a striped file lives in a per-file object
// ("o<vnode>.<uniq>") on member DataMember(c)'s object volume, at its
// logical offset (sparse); row r's parity lives in "p<vnode>.<uniq>"
// on member ParityMember(r), at offset r*ChunkSize.
//
// Consistency: cache coherence rides entirely on the LOGICAL file's
// whole-file tokens from the primary — a striped writer holds exclusive
// whole-file data-write tokens, so no other client reads or writes the
// file (or its member objects) concurrently. Member-object I/O is
// therefore tokenless (the member server's transient per-call tokens
// and fid lock serialize same-object access), and member replies are
// NEVER merged into the logical vnode's status — attributes flow only
// through the primary's serial-stamped replies.

// LayoutLocator is the optional Locator extension resolving striping
// layouts: the VLDB client implements it cell-wide, StaticLocator for
// tests. A Locator without it makes every volume unstriped.
type LayoutLocator interface {
	// VolumeLayout returns the volume's striping layout, or nil when
	// the volume is unstriped.
	VolumeLayout(id fs.VolumeID) (*stripe.Layout, error)
}

// objKey names one member object: a logical file's data or parity
// object on one member.
type objKey struct {
	fid    fs.FID
	member int
	parity bool
}

// placement caches striping resolution results: volume layouts
// (including the negative "unstriped" answer), member-volume roots,
// and member-object FIDs. Everything here is immutable once learned —
// a relayout is a volume move, repointed through the locator's own
// invalidation.
//
// Lock order: placement.mu ranks below cvnode.hmu (a high-level
// operation consults the cache) and above Client.mu; it is never held
// across an RPC or while taking any other lock.
type placement struct {
	mu      sync.Mutex
	layouts map[fs.VolumeID]*stripe.Layout // guarded by mu; nil value = unstriped
	roots   map[fs.VolumeID]fs.FID         // guarded by mu; member volume → root
	objects map[objKey]fs.FID              // guarded by mu
}

// errNoObject reports a member object that was never created: its
// bytes read as zeros (a sparse region of the striped file).
var errNoObject = errors.New("client: member object not created")

// layoutFor resolves a volume's striping layout through the placement
// cache; nil means unstriped. Resolution errors are not cached — a
// transient VLDB failure must not freeze a volume as unstriped.
func (c *Client) layoutFor(vol fs.VolumeID) (*stripe.Layout, error) {
	c.placement.mu.Lock()
	lay, ok := c.placement.layouts[vol]
	c.placement.mu.Unlock()
	if ok {
		return lay, nil
	}
	if ll, isLL := c.opts.Locate.(LayoutLocator); isLL {
		var err error
		lay, err = ll.VolumeLayout(vol)
		if err != nil {
			return nil, err
		}
	}
	c.placement.mu.Lock()
	c.placement.layouts[vol] = lay
	c.placement.mu.Unlock()
	return lay, nil
}

// memberRoot returns the association and root FID of one member's
// object volume.
func (c *Client) memberRoot(mv stripe.Member) (*serverConn, fs.FID, error) {
	sc, err := c.conn(mv.Addr)
	if err != nil {
		return nil, fs.FID{}, err
	}
	c.placement.mu.Lock()
	root, ok := c.placement.roots[mv.Volume]
	c.placement.mu.Unlock()
	if ok {
		return sc, root, nil
	}
	var reply proto.GetRootReply
	if err := sc.call(proto.MGetRoot, proto.GetRootArgs{Volume: mv.Volume}, &reply); err != nil {
		return nil, fs.FID{}, err
	}
	c.placement.mu.Lock()
	c.placement.roots[mv.Volume] = reply.FID
	c.placement.mu.Unlock()
	return sc, reply.FID, nil
}

// memberObject resolves a logical file's data or parity object on one
// member, creating it lazily on the write path. A missing object on
// the read path returns errNoObject (the span reads as zeros).
func (c *Client) memberObject(fid fs.FID, lay *stripe.Layout, member int, parity, create bool) (*serverConn, fs.FID, error) {
	mv := lay.Members[member]
	k := objKey{fid: fid, member: member, parity: parity}
	c.placement.mu.Lock()
	obj, ok := c.placement.objects[k]
	c.placement.mu.Unlock()
	if ok {
		sc, err := c.conn(mv.Addr)
		if err != nil {
			return nil, fs.FID{}, err
		}
		return sc, obj, nil
	}
	sc, root, err := c.memberRoot(mv)
	if err != nil {
		return nil, fs.FID{}, err
	}
	name := stripe.DataObjectName(fid)
	if parity {
		name = stripe.ParityObjectName(fid)
	}
	var reply proto.NameReply
	err = sc.call(proto.MLookup, proto.NameArgs{Dir: root, Name: name}, &reply)
	if errors.Is(err, fs.ErrNotExist) {
		if !create {
			return nil, fs.FID{}, errNoObject
		}
		err = sc.call(proto.MCreate, proto.NameArgs{Dir: root, Name: name, Mode: 0o600}, &reply)
		if errors.Is(err, fs.ErrExist) {
			// Another flush goroutine of this client won the create race.
			err = sc.call(proto.MLookup, proto.NameArgs{Dir: root, Name: name}, &reply)
		}
	}
	if err != nil {
		return nil, fs.FID{}, err
	}
	c.placement.mu.Lock()
	c.placement.objects[k] = reply.FID
	c.placement.mu.Unlock()
	return sc, reply.FID, nil
}

// stripeRead reads one span from a member object, tokenless, over the
// member association's binary lane when it has one (each member peer
// negotiates independently). A member object that was never created
// yields (nil, nil, nil): zeros. The caller distinguishes "member down"
// (err != nil, triggers the degraded path) from "sparse" (nil data).
// hash is the member's recorded leaf hash for a chunk-aligned read of a
// hashed chunk (the member's own episode layer maintains it), nil
// otherwise. The vnode's in-flight counter is raised around every
// member RPC so logical-token revocations order themselves after member
// I/O exactly as they do after primary I/O (§6.3).
func (v *cvnode) stripeRead(lay *stripe.Layout, member int, parity bool, off int64, length int) (data, hash []byte, err error) {
	sc, obj, err := v.c.memberObject(v.fid, lay, member, parity, false)
	if errors.Is(err, errNoObject) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	var reply proto.FetchDataReply
	err = v.withRPC(func() error {
		var ferr error
		reply, ferr = sc.fetchData(proto.FetchDataArgs{
			FID:    obj,
			Offset: off,
			Length: length,
		}, nil)
		return ferr
	})
	if err != nil {
		return nil, nil, err
	}
	return reply.Data, reply.Hash, nil
}

// stripeWrite writes one span to a member object, tokenless, creating
// the object on first touch. On a lane-capable member the span ships
// as a raw frame payload in one writev — the fan-out pool reuses each
// member association's batch writer.
func (v *cvnode) stripeWrite(lay *stripe.Layout, member int, parity bool, off int64, data []byte, pre func() error) error {
	sc, obj, err := v.c.memberObject(v.fid, lay, member, parity, true)
	if err != nil {
		return err
	}
	return v.withRPC(func() error {
		_, serr := sc.storeData(proto.StoreDataArgs{
			FID:    obj,
			Offset: off,
			Data:   data,
		}, pre)
		return serr
	})
}

// ensureLogicalReadTokens holds whole-file data-read and status-read
// tokens on the LOGICAL file before any member fan-out: the primary's
// token manager remains the single consistency authority for striped
// files, with no new token machinery.
func (v *cvnode) ensureLogicalReadTokens() error {
	v.llock()
	ok := v.hasTokenLocked(token.DataRead|token.StatusRead, token.WholeFile)
	v.lunlock()
	if ok {
		return nil
	}
	var reply proto.GetTokensReply
	err := v.call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  v.fid,
		Want: proto.TokenRequest{Types: token.DataRead | token.StatusRead},
	}, &reply)
	if err != nil {
		return err
	}
	v.llock()
	v.addTokensLocked(reply.Grants)
	v.lunlock()
	return nil
}

// reconstructChunk performs the degraded read: the missing chunk is
// the XOR of its row's parity and the surviving data chunks. Any
// second failure within the row surfaces as an error (RAID-5 protects
// against exactly one).
func (v *cvnode) reconstructChunk(lay *stripe.Layout, idx int64) ([]byte, error) {
	start := time.Now()
	row := lay.RowOf(idx)
	spans := make([][]byte, 0, lay.Width+1)
	p, _, err := v.stripeRead(lay, lay.ParityMember(row), true, row*ChunkSize, ChunkSize)
	if err != nil {
		return nil, err
	}
	spans = append(spans, p)
	for _, c2 := range lay.RowChunks(row) {
		if c2 == idx {
			continue
		}
		b, _, err := v.stripeRead(lay, lay.DataMember(c2), false, c2*ChunkSize, ChunkSize)
		if err != nil {
			return nil, err
		}
		spans = append(spans, b)
	}
	data := stripe.Reconstruct(ChunkSize, spans...)
	v.c.degradedReads.Inc()
	v.c.reconstructNs.Observe(time.Since(start))
	return data, nil
}

// stripeFetchChunk is fetchChunkRPC for striped files: resolve the
// chunk's data member, fetch from it, and fall back to reconstruction
// when that member is unreachable. The logical tokens are taken first;
// member replies carry no tokens and never merge into the vnode.
func (v *cvnode) stripeFetchChunk(lay *stripe.Layout, idx int64, prefetch bool, gen uint64) ([]byte, error) {
	if prefetch {
		v.c.prefetchIssued.Inc()
		v.c.prefetchInflight.Add(1)
		defer v.c.prefetchInflight.Add(-1)
	}
	if err := v.ensureLogicalReadTokens(); err != nil {
		return nil, err
	}
	start := time.Now()
	v.c.fanoutFetches.Inc()
	data, hash, err := v.stripeRead(lay, lay.DataMember(idx), false, idx*ChunkSize, ChunkSize)
	if err == nil {
		// A member whose bytes no longer match its own recorded leaf hash
		// is rotting storage: treat it exactly like a dead member and
		// decode the chunk from parity instead. (Verifying against the
		// MEMBER's hash is sound — a member write updates data and hash
		// in the same episode transaction path, so a divergence means the
		// data block itself changed underneath the file system.)
		if merr := v.verifyChunk(idx, data, hash); merr != nil {
			err = merr
		}
	}
	if err != nil {
		data, err = v.reconstructChunk(lay, idx)
		if err != nil {
			return nil, err
		}
	}
	v.c.fetchNs.Observe(time.Since(start))
	chunk := make([]byte, ChunkSize)
	copy(chunk, data)
	v.llock()
	if prefetch && gen != v.prefetchGen {
		v.lunlock()
		v.c.prefetchCancels.Inc()
		return chunk, nil
	}
	v.c.store.Put(v.fid, idx, chunk)
	if prefetch {
		v.prefetched[idx] = true
	}
	v.lunlock()
	return chunk, nil
}

// stripeEnsureWritable is ensureWritable for striped files: whole-file
// tokens on the logical file (data + status, all from the primary) and
// the chunk's current content (fetched through the striped read path)
// unless the write overwrites the whole chunk.
func (v *cvnode) stripeEnsureWritable(lay *stripe.Layout, idx int64, fullOverwrite bool) error {
	const wantAll = token.DataRead | token.DataWrite | token.StatusRead | token.StatusWrite
	v.llock()
	haveTok := v.hasTokenLocked(wantAll, token.WholeFile)
	_, haveData := v.c.store.Get(v.fid, idx)
	v.lunlock()
	if !haveTok {
		var reply proto.GetTokensReply
		err := v.call(proto.MGetTokens, proto.GetTokensArgs{
			FID:  v.fid,
			Want: proto.TokenRequest{Types: wantAll},
		}, &reply)
		if err != nil {
			return err
		}
		v.llock()
		v.addTokensLocked(reply.Grants)
		v.lunlock()
	}
	if haveData || fullOverwrite {
		return nil
	}
	_, err := v.fetchChunk(idx, false, 0)
	return err
}

// stripeStoreSpan ships one dirty span to its data member and updates
// the row's parity by delta (p' = p ⊕ old ⊕ new). When the data member
// is down the write degrades: parity absorbs the new bytes so a later
// degraded read reconstructs them. When only the PARITY member is down
// the data write stands and the error is swallowed — the row's parity
// is stale until a rebuild, the classic RAID-5 window (documented in
// DESIGN.md); surfacing it would re-dirty a span whose data is durable.
//
// Callers serialize same-row stores (flushDirtyStriped groups jobs by
// row; revocation waits out in-flight flushes), so the read-modify-
// write of parity never races within this client; cross-client races
// are excluded by the exclusive whole-file logical write token.
func (v *cvnode) stripeStoreSpan(lay *stripe.Layout, j flushJob, pre func() error) error {
	dm := lay.DataMember(j.idx)
	row := lay.RowOf(j.idx)
	pm := lay.ParityMember(row)
	pOff := row*ChunkSize + (j.off - j.idx*ChunkSize)

	gate := v.c.storeGate(lay.Members[dm].Addr)
	gate <- struct{}{}
	v.c.storeInflight.Add(1)
	defer func() {
		v.c.storeInflight.Add(-1)
		<-gate
	}()

	oldData, _, err := v.stripeRead(lay, dm, false, j.off, len(j.data))
	if err == nil {
		err = v.stripeWrite(lay, dm, false, j.off, j.data, pre)
	}
	if err != nil {
		if pre != nil {
			if perr := pre(); perr != nil {
				return perr
			}
		}
		return v.stripeDegradedWrite(lay, j, row, pm, pOff, pre)
	}
	oldParity, _, perr := v.stripeRead(lay, pm, true, pOff, len(j.data))
	if perr != nil {
		return nil
	}
	parity := stripe.Reconstruct(len(j.data), oldParity, oldData, j.data)
	if v.stripeWrite(lay, pm, true, pOff, parity, pre) != nil {
		return nil
	}
	v.c.parityWrites.Inc()
	return nil
}

// stripeDegradedWrite recomputes the row's parity from the new span
// and the surviving members' spans, without touching the (down) data
// member: parity = new ⊕ (other chunks' spans). A degraded read of the
// lost chunk then decodes exactly the new bytes. A second member
// failure inside the loop surfaces as an error and the span re-dirties
// — with two members down a RAID-5 row is genuinely unwritable.
func (v *cvnode) stripeDegradedWrite(lay *stripe.Layout, j flushJob, row int64, pm int, pOff int64, pre func() error) error {
	spanLo := j.off - j.idx*ChunkSize
	parity := append([]byte(nil), j.data...)
	for _, c2 := range lay.RowChunks(row) {
		if c2 == j.idx {
			continue
		}
		span, _, err := v.stripeRead(lay, lay.DataMember(c2), false, c2*ChunkSize+spanLo, len(j.data))
		if err != nil {
			return err
		}
		stripe.XORInto(parity, span)
	}
	if err := v.stripeWrite(lay, pm, true, pOff, parity, pre); err != nil {
		return err
	}
	v.c.degradedWrites.Inc()
	v.c.parityWrites.Inc()
	return nil
}

// flushDirtyStriped is flushDirty for striped files. It differs from
// the unstriped loop in two ways: batches are fully serialized (the
// parity read-modify-write of a row must never race an earlier batch's
// in-flight jobs), and jobs are grouped by stripe row — rows flush
// concurrently across the member set, spans within a row sequentially.
// Dirty status goes to the PRIMARY once the data is clean; member
// replies never carry the file's attributes.
func (v *cvnode) flushDirtyStriped(lay *stripe.Layout) error {
	var firstErr error
	var errMu sync.Mutex
	// Leaf hashes of the chunks this flush ships, hashed from the cached
	// chunk at snapshot time (it may be evicted once unpinned) and pushed
	// to the PRIMARY's logical hash tree after data and status land. The
	// primary never sees striped data bytes, so the writing client is the
	// only party that can keep the logical tree current; a job that fails
	// re-dirties and drops out of the map.
	pending := make(map[int64]integrity.Hash)
	for {
		v.llock()
		for v.flushing > 0 {
			v.cond.Wait()
		}
		if len(v.dirty) == 0 || firstErr != nil {
			statusDirty := v.dirtyStatus
			v.lunlock()
			if firstErr == nil && statusDirty {
				firstErr = v.stripeFlushStatus()
			}
			if firstErr == nil {
				v.stripePushHashes(pending)
			}
			return firstErr
		}
		length := v.attr.Length
		jobs := make([]flushJob, 0, len(v.dirty))
		for idx, span := range v.dirty {
			delete(v.dirty, idx)
			lo, hi := idx*ChunkSize+int64(span.lo), idx*ChunkSize+int64(span.hi)
			if hi > length {
				hi = length
			}
			chunk, ok := v.c.store.Get(v.fid, idx)
			if !ok || lo >= hi {
				v.c.store.Unpin(v.fid, idx)
				continue
			}
			if clip := integrity.ClipLeaf(length, idx); clip > 0 {
				pending[idx] = integrity.LeafHash(chunk[:clip])
			}
			jobs = append(jobs, flushJob{
				idx:  idx,
				span: span,
				off:  lo,
				data: chunk[span.lo : int64(span.lo)+hi-lo],
				gen:  v.staleGen,
			})
		}
		v.flushing += len(jobs)
		v.lunlock()
		groups := make(map[int64][]flushJob)
		for _, j := range jobs {
			r := lay.RowOf(j.idx)
			groups[r] = append(groups[r], j)
		}
		var wg sync.WaitGroup
		for _, g := range groups {
			wg.Add(1)
			go func(g []flushJob) {
				defer wg.Done()
				for _, j := range g {
					if err := v.storeSpan(j); err != nil {
						errMu.Lock()
						delete(pending, j.idx)
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				}
			}(g)
		}
		wg.Wait()
	}
}

// stripePushHashes installs flushed chunks' leaf hashes on the PRIMARY's
// logical file via MStoreHashes, in contiguous runs. Ordering matters:
// this runs AFTER stripeFlushStatus, because a length change makes the
// primary rehash boundary leaves from its own (hole) data, and the
// client's hashes — covering the real striped bytes — must land last.
// Best effort: a push failure leaves those leaves unrecorded, which
// downstream reads treat as "unhashed" and the stripe scrub repairs.
func (v *cvnode) stripePushHashes(pending map[int64]integrity.Hash) {
	if len(pending) == 0 || v.c.opts.DisableVerify {
		return
	}
	idxs := make([]int64, 0, len(pending))
	for idx := range pending {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for i := 0; i < len(idxs); {
		j := i
		var buf []byte
		for j < len(idxs) && idxs[j] == idxs[i]+int64(j-i) {
			h := pending[idxs[j]]
			buf = append(buf, h[:]...)
			j++
		}
		var reply proto.StoreHashesReply
		_ = v.call(proto.MStoreHashes, proto.StoreHashesArgs{
			FID:    v.fid,
			Start:  idxs[i],
			Hashes: buf,
		}, &reply)
		i = j
	}
	for idx := range pending {
		delete(pending, idx)
	}
}

// stripeFlushStatus writes locally dirty attributes through to the
// primary after a striped flush drained the data. The primary stays
// the single status authority: striped readers clamp every read by the
// length it serves.
func (v *cvnode) stripeFlushStatus() error {
	v.llock()
	if !v.dirtyStatus {
		v.lunlock()
		return nil
	}
	length, mtime := v.attr.Length, v.attr.Mtime
	v.lunlock()
	var reply proto.StoreStatusReply
	err := v.call(proto.MStoreStatus, proto.StoreStatusArgs{
		FID:    v.fid,
		Change: proto.AttrChangeOf(length, mtime),
	}, &reply)
	if err != nil {
		return err
	}
	v.llock()
	v.mergeForceLocked(reply.Attr, reply.Serial)
	v.lunlock()
	return nil
}

// StripeScrubResult reports one member-recovery scrub of one striped
// file: how many member-held chunks had a recorded logical hash to
// check, which of them disagreed with the member's own tree, and how
// many were rewritten from parity.
type StripeScrubResult struct {
	ChunksChecked int64
	StaleChunks   []int64
	Rewritten     int64
}

// StripeScrubber is the interface harnesses assert a striped file
// handle to after a member returns from an outage.
type StripeScrubber interface {
	ScrubStripe(member int, repair bool) (StripeScrubResult, error)
}

// ScrubStripe audits one member's slice of this file against the
// PRIMARY's logical hash tree after the member returns from an outage:
// writes that landed degraded (absorbed by parity) never reached the
// member, so its chunks — and its own per-object hash tree — are stale.
// The comparison is pure tree traffic: the member's level-0 leaves for
// the chunks it owns against the primary's leaves at the same logical
// indices, no data moved until a row disagrees. With repair set, each
// stale chunk is decoded from the row's parity and rewritten to the
// member, whose episode layer rehashes it in the same transaction.
//
// Chunks whose logical leaf is unrecorded (zero) are skipped — there is
// no truth to compare against. Known limitation (DESIGN S30): after a
// truncate-down the primary's boundary leaf covers hole bytes while the
// member may retain the old tail, so one false stale per truncate is
// possible; the rewrite it triggers is harmless.
func (v *cvnode) ScrubStripe(member int, repair bool) (StripeScrubResult, error) {
	var res StripeScrubResult
	lay, err := v.c.layoutFor(v.fid.Volume)
	if err != nil {
		return res, err
	}
	if lay == nil || member < 0 || member >= len(lay.Members) {
		return res, fs.ErrInvalid
	}
	if err := v.ensureLogicalReadTokens(); err != nil {
		return res, err
	}
	var prim proto.HashTreeReply
	if err := v.call(proto.MHashTree, proto.HashTreeArgs{FID: v.fid}, &prim); err != nil {
		return res, err
	}
	if prim.Leaves == 0 {
		return res, nil
	}
	owned := make([]int64, 0, prim.Leaves/int64(lay.Width)+1)
	for idx := int64(0); idx < prim.Leaves; idx++ {
		if lay.DataMember(idx) == member {
			owned = append(owned, idx)
		}
	}
	if len(owned) == 0 {
		return res, nil
	}
	primLeaves, err := fetchLeafBatches(func(a proto.HashTreeArgs, r *proto.HashTreeReply) error {
		return v.call(proto.MHashTree, a, r)
	}, v.fid, owned)
	if err != nil {
		return res, err
	}
	// A member object that was never created (or came back on a fresh
	// disk) has no tree: every leaf reads as zero, so every recorded
	// chunk it owns is stale — exactly right.
	var memLeaves []integrity.Hash
	sc, obj, merr := v.c.memberObject(v.fid, lay, member, false, false)
	switch {
	case errors.Is(merr, errNoObject):
		memLeaves = make([]integrity.Hash, len(owned))
	case merr != nil:
		return res, merr
	default:
		memLeaves, err = fetchLeafBatches(func(a proto.HashTreeArgs, r *proto.HashTreeReply) error {
			a.FID = obj
			return sc.call(proto.MHashTree, a, r)
		}, obj, owned)
		if err != nil {
			return res, err
		}
	}
	v.llock()
	length := v.attr.Length
	v.lunlock()
	for i, idx := range owned {
		want := primLeaves[i]
		if want.IsZero() {
			continue
		}
		res.ChunksChecked++
		if memLeaves[i] == want {
			continue
		}
		res.StaleChunks = append(res.StaleChunks, idx)
		if !repair {
			continue
		}
		data, rerr := v.reconstructChunk(lay, idx)
		if rerr != nil {
			return res, rerr
		}
		clip := integrity.ClipLeaf(length, idx)
		if clip <= 0 {
			continue
		}
		if werr := v.stripeWrite(lay, member, false, idx*ChunkSize, data[:clip], nil); werr != nil {
			return res, werr
		}
		res.Rewritten++
	}
	return res, nil
}

// fetchLeafBatches pulls level-0 tree nodes for idxs through call in
// bounded batches, so a scrub of a large file never builds one huge
// request.
func fetchLeafBatches(call func(proto.HashTreeArgs, *proto.HashTreeReply) error, fid fs.FID, idxs []int64) ([]integrity.Hash, error) {
	out := make([]integrity.Hash, 0, len(idxs))
	const batch = 256
	for i := 0; i < len(idxs); i += batch {
		j := i + batch
		if j > len(idxs) {
			j = len(idxs)
		}
		var r proto.HashTreeReply
		if err := call(proto.HashTreeArgs{FID: fid, Level: 0, Indices: idxs[i:j]}, &r); err != nil {
			return nil, err
		}
		hs, err := integrity.Unmarshal(r.Hashes)
		if err != nil || len(hs) != j-i {
			return nil, fmt.Errorf("client: bad hash-tree batch (%d nodes for %d indices)", len(hs), j-i)
		}
		out = append(out, hs...)
	}
	return out, nil
}

// storeGate returns the per-target write-back gate for addr, created
// lazily at WriteBackWorkers capacity. Bounding in-flight stores per
// TARGET rather than per client keeps one slow or recovering stripe
// member from wedging flushes headed to healthy members (the S25
// pipeline assumed one vnode, one association; striping broke that).
func (c *Client) storeGate(addr string) chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	g, ok := c.storeGates[addr]
	if !ok {
		g = make(chan struct{}, c.writeBackWorkers)
		c.storeGates[addr] = g
	}
	return g
}
