package client

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/locking"
	"decorum/internal/server"
	"decorum/internal/vfs"
)

// rcell is a cell whose file server can be crashed (every association
// severed, all token state lost — the in-memory exporter state does not
// survive, §3.1) and restarted over the same Episode aggregate,
// optionally with a recovery grace period.
type rcell struct {
	t      testing.TB
	agg    *episode.Aggregate
	vol    vfs.VolumeInfo
	locate *StaticLocator
	order  *locking.Checker

	mu   sync.Mutex
	srv  *server.Server // guarded by mu; current incarnation
	side []net.Conn     // guarded by mu; server-side conns of this incarnation
	down bool           // guarded by mu; dials fail while set
}

func newRCell(t testing.TB) *rcell {
	t.Helper()
	dev := blockdev.NewMem(512, 8192)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 128, PoolSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := agg.CreateVolume("user.test", 0)
	if err != nil {
		t.Fatal(err)
	}
	locate := NewStaticLocator()
	locate.Add(vol.ID, "user.test", cellAddr)
	return &rcell{
		t: t, agg: agg, vol: vol, locate: locate, order: locking.New(),
		srv: server.New(server.Options{Name: cellAddr}, agg),
	}
}

func (c *rcell) dial(addr string) (net.Conn, error) {
	if addr != cellAddr {
		return nil, fmt.Errorf("no such server %q", addr)
	}
	c.mu.Lock()
	if c.down {
		c.mu.Unlock()
		return nil, fmt.Errorf("server %q is down", addr)
	}
	srv := c.srv
	clientSide, serverSide := net.Pipe()
	c.side = append(c.side, serverSide)
	c.mu.Unlock()
	srv.Attach(serverSide)
	return clientSide, nil
}

// crash severs every association of the current incarnation without
// touching the aggregate — a kill -9. Dials fail until restart.
func (c *rcell) crash() {
	c.mu.Lock()
	c.down = true
	side := c.side
	c.side = nil
	c.mu.Unlock()
	for _, nc := range side {
		nc.Close()
	}
}

// restart brings up a fresh server incarnation (new epoch, empty token
// state) over the surviving aggregate.
func (c *rcell) restart(grace time.Duration) {
	c.mu.Lock()
	c.srv = server.New(server.Options{Name: cellAddr, GracePeriod: grace}, c.agg)
	c.down = false
	c.mu.Unlock()
}

func (c *rcell) server() *server.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.srv
}

func (c *rcell) client(name string, opt func(*Options)) *Client {
	c.t.Helper()
	o := Options{
		Name:             name,
		User:             fs.SuperUser,
		Dial:             c.dial,
		Locate:           c.locate,
		Order:            c.order,
		ReconnectBackoff: time.Millisecond,
	}
	if opt != nil {
		opt(&o)
	}
	cl, err := New(o)
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() { cl.Close() })
	return cl
}

func (c *rcell) mount(cl *Client) vfs.Vnode {
	c.t.Helper()
	fsys, err := cl.MountVolume(c.vol.ID)
	if err != nil {
		c.t.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		c.t.Fatal(err)
	}
	return root
}

func (c *rcell) checkOrder() {
	c.t.Helper()
	if v := c.order.Violations(); len(v) != 0 {
		c.t.Fatalf("lock hierarchy violations: %v", v)
	}
}

// fsync drives the client-side fsync path (a *cvnode extra beyond
// vfs.Vnode).
func fsync(v vfs.Vnode) error { return v.(*cvnode).Fsync() }

func waitFor(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The tentpole scenario: the server restarts with a grace period while a
// client holds dirty cached writes. The client must detect the loss,
// reconnect, reclaim its tokens during grace, replay the dirty data, and
// lose nothing.
func TestServerRestartReclaimReplay(t *testing.T) {
	rc := newRCell(t)
	clA := rc.client("wsA", nil)
	root := rc.mount(clA)

	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("decorum!"), 512) // 4 KiB, chunk 0
	if _, err := f.Write(ctx(), payload, 0); err != nil {
		t.Fatal(err)
	}
	// NOT fsynced: the only copy of payload is the client's dirty cache.

	rc.crash()
	rc.restart(30 * time.Second)

	waitFor(t, 10*time.Second, "client reconnect", func() bool {
		return clA.Stats().Reconnects >= 1
	})
	st := clA.Stats()
	if st.ReclaimedTokens == 0 {
		t.Fatalf("no tokens reclaimed after reconnect: %+v", st)
	}
	if st.ReclaimConflicts != 0 {
		t.Fatalf("unexpected reclaim conflicts: %+v", st)
	}
	// The reconnecting host reclaimed during grace, so its writes pass
	// the gate while the window is still open.
	if !rc.server().Recovery().InGrace() {
		t.Fatal("grace window closed prematurely; test cannot assert in-grace behaviour")
	}
	if _, err := f.Write(ctx(), []byte("tail"), int64(len(payload))); err != nil {
		t.Fatalf("recovered host write during grace: %v", err)
	}
	if err := fsync(f); err != nil {
		t.Fatalf("fsync after recovery: %v", err)
	}
	waitFor(t, 5*time.Second, "replayed bytes", func() bool {
		return clA.Stats().StoreBacks > 0
	})

	srvStats := rc.server().Recovery().Stats()
	if srvStats.Reclaims == 0 {
		t.Fatalf("server counted no reclaims: %+v", srvStats)
	}

	// Zero loss: a fresh client (fresh cache) sees every byte.
	rc.server().Recovery().EndGrace()
	clB := rc.client("wsB", nil)
	rootB := rc.mount(clB)
	g, err := rootB.Lookup(ctx(), "f")
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]byte(nil), payload...), []byte("tail")...)
	got := make([]byte, len(want)+16)
	n, err := g.Read(ctx(), got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:n], want) {
		t.Fatalf("read %d bytes after restart, want %d matching bytes", n, len(want))
	}
	rc.checkOrder()
}

// During grace, a host that has not reclaimed gets the retryable
// fs.ErrGrace for ordinary grants; once grace ends it proceeds.
func TestGraceRejectsOrdinaryGrants(t *testing.T) {
	rc := newRCell(t)
	clA := rc.client("wsA", nil)
	root := rc.mount(clA)
	if _, err := root.Create(ctx(), "pre", 0o644); err != nil {
		t.Fatal(err)
	}

	rc.crash()
	rc.restart(time.Hour)

	// A fresh host (never held tokens, nothing to reclaim) is gated: its
	// grants could conflict with tokens not yet reclaimed.
	clB := rc.client("wsB", func(o *Options) {
		o.RecoveryTimeout = 250 * time.Millisecond
	})
	fsysB, err := clB.MountVolume(rc.vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	touch := func() error {
		rootB, err := fsysB.Root()
		if err != nil {
			return err
		}
		_, err = rootB.Create(ctx(), "fresh", 0o644)
		return err
	}
	if err := touch(); !errors.Is(err, fs.ErrGrace) {
		t.Fatalf("fresh host during grace = %v, want fs.ErrGrace", err)
	}
	if rc.server().Recovery().Stats().GraceRejections == 0 {
		t.Fatal("server counted no grace rejections")
	}

	// The reconnecting host reclaims (even an empty claim set marks it
	// recovered) and operates during grace.
	waitFor(t, 10*time.Second, "wsA reconnect", func() bool {
		return clA.Stats().Reconnects >= 1
	})
	if _, err := root.Lookup(ctx(), "pre"); err != nil {
		t.Fatalf("recovered host lookup during grace: %v", err)
	}

	rc.server().Recovery().EndGrace()
	if err := touch(); err != nil {
		t.Fatalf("fresh host after grace: %v", err)
	}
	rc.checkOrder()
}

// A reclaim that loses the race is rejected; the loser's cached dirty
// data is dropped — surfaced as fs.ErrStale, never silently merged.
func TestReclaimConflictDropsStaleCache(t *testing.T) {
	rc := newRCell(t)
	var blockA atomic.Bool
	clA := rc.client("wsA", func(o *Options) {
		inner := o.Dial
		o.Dial = func(addr string) (net.Conn, error) {
			if blockA.Load() {
				return nil, fmt.Errorf("wsA partitioned")
			}
			return inner(addr)
		}
		o.RecoveryTimeout = 20 * time.Second
	})
	root := rc.mount(clA)

	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx(), []byte("AAAAAAAA"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fsync(f); err != nil {
		t.Fatal(err)
	}
	// Dirty, unstored overwrite — the data a conflicting reclaim forfeits.
	if _, err := f.Write(ctx(), []byte("XXXXXXXX"), 0); err != nil {
		t.Fatal(err)
	}

	// Partition wsA, crash, restart with no grace: wsB takes over the
	// file before wsA can reclaim.
	blockA.Store(true)
	rc.crash()
	rc.restart(0)

	clB := rc.client("wsB", nil)
	rootB := rc.mount(clB)
	g, err := rootB.Lookup(ctx(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(ctx(), []byte("BBBBBBBB"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fsync(g); err != nil {
		t.Fatal(err)
	}

	// Heal the partition: wsA reconnects, reclaims, and loses.
	blockA.Store(false)
	waitFor(t, 10*time.Second, "wsA reclaim conflict", func() bool {
		return clA.Stats().ReclaimConflicts >= 1
	})
	if clA.Stats().StaleVnodes == 0 {
		t.Fatal("no vnode marked stale after the conflict")
	}

	// The first write-path operation reports the loss exactly once...
	if err := fsync(f); !errors.Is(err, fs.ErrStale) {
		t.Fatalf("fsync after conflict = %v, want fs.ErrStale", err)
	}
	if err := fsync(f); err != nil {
		t.Fatalf("second fsync = %v, want nil", err)
	}
	// ...and reads refetch the winner's content: nothing was merged.
	buf := make([]byte, 8)
	n, err := f.Read(ctx(), buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "BBBBBBBB" {
		t.Fatalf("read %q after conflict, want the winner's BBBBBBBB", buf[:n])
	}
	rc.checkOrder()
}

// When the server stays unreachable past the recovery budget, callers
// get the typed, retryable ErrDisconnected — not a raw transport error.
func TestDisconnectedClassification(t *testing.T) {
	rc := newRCell(t)
	cl := rc.client("wsA", func(o *Options) {
		o.RecoveryTimeout = 300 * time.Millisecond
	})
	root := rc.mount(cl)
	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx(), []byte("data"), 0); err != nil {
		t.Fatal(err)
	}
	rc.crash() // never restarted
	err = fsync(f)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("fsync with server down = %v, want ErrDisconnected", err)
	}
	rc.checkOrder()
}

// The vnode table stays bounded: clean idle vnodes are evicted in LRU
// order once MaxVnodes is exceeded, and evicted files remain readable
// (the cache refills on demand).
func TestVnodeEvictionBoundsTable(t *testing.T) {
	rc := newRCell(t)
	cl := rc.client("wsA", func(o *Options) {
		o.MaxVnodes = 8
	})
	root := rc.mount(cl)
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("f%02d", i)
		f, err := root.Create(ctx(), name, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(ctx(), []byte(name), 0); err != nil {
			t.Fatal(err)
		}
		if err := fsync(f); err != nil {
			t.Fatal(err)
		}
	}
	cl.mu.Lock()
	table := len(cl.vnodes)
	cl.mu.Unlock()
	if table > 8 {
		t.Fatalf("vnode table grew to %d, want <= 8", table)
	}
	if cl.Stats().VnodeEvictions == 0 {
		t.Fatal("no evictions counted")
	}
	// An evicted file reads back correctly through a fresh cache entry.
	f, err := root.Lookup(ctx(), "f03")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	n, err := f.Read(ctx(), buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "f03" {
		t.Fatalf("evicted file read back %q, want %q", buf[:n], "f03")
	}
	rc.checkOrder()
}

// Storm test for the race detector: two clients hammer a shared file
// (revocation ping-pong) through repeated crash/restart cycles. The
// assertions are weak on purpose — individual operations may fail with
// ErrDisconnected/ErrStale during the storm — but the test must finish
// with both clients live and the tree race- and deadlock-free.
func TestRecoveryStormRace(t *testing.T) {
	rc := newRCell(t)
	clA := rc.client("wsA", func(o *Options) { o.RecoveryTimeout = 5 * time.Second })
	clB := rc.client("wsB", func(o *Options) { o.RecoveryTimeout = 5 * time.Second })
	rootA := rc.mount(clA)
	f, err := rootA.Create(ctx(), "shared", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsync(f); err != nil {
		t.Fatal(err)
	}
	rootB := rc.mount(clB)
	g, err := rootB.Lookup(ctx(), "shared")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	writer := func(v vfs.Vnode, tag byte) {
		defer wg.Done()
		rec := bytes.Repeat([]byte{tag}, 32)
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			off := int64(i%16) * 32
			// Errors are expected mid-storm; the storm asserts liveness
			// and race-freedom, not per-op success.
			if _, err := v.Write(ctx(), rec, off); err == nil && i%8 == 0 {
				_ = fsync(v)
			}
		}
	}
	wg.Add(2)
	go writer(f, 'a')
	go writer(g, 'b')

	for cycle := 0; cycle < 3; cycle++ {
		time.Sleep(30 * time.Millisecond)
		rc.crash()
		time.Sleep(10 * time.Millisecond)
		rc.restart(50 * time.Millisecond)
		time.Sleep(60 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	// Both clients settle on the final incarnation.
	waitFor(t, 15*time.Second, "clients settle", func() bool {
		_, errA := f.Attr(ctx())
		_, errB := g.Attr(ctx())
		return errA == nil && errB == nil
	})
	rc.checkOrder()
}

// BenchmarkReconnectLatency measures the full recovery cycle — loss
// detection, redial, re-registration, reclaim — for a client holding one
// file's tokens.
func BenchmarkReconnectLatency(b *testing.B) {
	rc := newRCell(b)
	cl := rc.client("wsA", nil)
	root := rc.mount(cl)
	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Write(ctx(), []byte("payload"), 0); err != nil {
		b.Fatal(err)
	}
	if err := fsync(f); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		before := cl.Stats().Reconnects
		rc.crash()
		rc.restart(0)
		for cl.Stats().Reconnects == before {
			time.Sleep(50 * time.Microsecond)
		}
	}
}
