package client

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"decorum/internal/fs"
)

// clientOpts builds a cache manager attached to the cell with the
// caller's option tweaks applied on top of the standard test wiring.
func (c *cell) clientOpts(name string, mutate func(*Options)) *Client {
	c.t.Helper()
	opts := Options{
		Name:   name,
		User:   fs.SuperUser,
		Dial:   c.dial,
		Locate: c.locate,
		Order:  c.order,
	}
	if mutate != nil {
		mutate(&opts)
	}
	cl, err := New(opts)
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() { cl.Close() })
	return cl
}

// serverBytes reads a file's content through the raw (unwrapped) server
// file system, bypassing every client cache.
func (c *cell) serverBytes(name string, length int) []byte {
	c.t.Helper()
	fsys, err := c.agg.Mount(c.vol.ID)
	if err != nil {
		c.t.Fatal(err)
	}
	sroot, err := fsys.Root()
	if err != nil {
		c.t.Fatal(err)
	}
	sf, err := sroot.Lookup(ctx(), name)
	if err != nil {
		c.t.Fatal(err)
	}
	got := make([]byte, length)
	if _, err := sf.Read(ctx(), got, 0); err != nil {
		c.t.Fatal(err)
	}
	return got
}

// chunkOf returns a ChunkSize buffer filled with b.
func chunkOf(b byte) []byte {
	p := make([]byte, ChunkSize)
	for i := range p {
		p[i] = b
	}
	return p
}

// TestDirtyChunkEvictionDoesNotLoseWrites is the data-loss regression
// test: with a 2-chunk cache and 5 dirty chunks, the LRU used to evict
// dirty chunks, and flushDirty's store.Get miss silently dropped their
// spans. Pinning keeps every dirty chunk cached until its store-back
// lands.
func TestDirtyChunkEvictionDoesNotLoseWrites(t *testing.T) {
	c := newCell(t)
	cl := c.clientOpts("wsA", func(o *Options) { o.CacheChunks = 2 })
	root := c.mount(cl)
	f, err := root.Create(ctx(), "big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const chunks = 5
	for i := int64(0); i < chunks; i++ {
		if _, err := f.Write(ctx(), chunkOf(byte(i+1)), i*ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.(*cvnode).Fsync(); err != nil {
		t.Fatal(err)
	}
	got := c.serverBytes("big", chunks*ChunkSize)
	for i := 0; i < chunks; i++ {
		want := byte(i + 1)
		seg := got[i*ChunkSize : (i+1)*ChunkSize]
		if !bytes.Equal(seg, chunkOf(want)) {
			t.Fatalf("chunk %d lost: server holds %d, want %d (cache evicted a dirty chunk)",
				i, seg[0], want)
		}
	}
	c.checkOrder()
}

// TestFlushWaitsForInflightStores: a flusher that finds another
// flusher's spans still in flight must wait on the condition variable
// (they may fail and re-dirty the map), not spin or return early.
func TestFlushWaitsForInflightStores(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	v := f.(*cvnode)
	v.llock()
	v.flushing = 1 // pretend another flusher has one span in flight
	v.lunlock()
	done := make(chan error, 1)
	go func() { done <- v.Fsync() }()
	select {
	case err := <-done:
		t.Fatalf("Fsync returned (%v) while stores were in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	v.llock()
	v.flushing = 0
	v.cond.Broadcast()
	v.lunlock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Fsync: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Fsync still blocked after the in-flight store completed")
	}
}

// TestFetchSingleFlight: a demand read for a chunk with a fetch already
// in flight joins it — zero additional RPCs — and a join on a prefetch
// counts as a prefetch hit.
func TestFetchSingleFlight(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	v := f.(*cvnode)
	if _, err := f.Write(ctx(), chunkOf(0xAB), 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Fsync(); err != nil {
		t.Fatal(err)
	}
	// Drop the cached copy; the data-read token stays, so the next read
	// goes straight to the fetch path.
	cl.store.DropFile(v.fid)

	k := chunkKey{v.fid, 0}
	fc, started := cl.fetches.begin(k, true) // pose as an in-flight prefetch
	if !started {
		t.Fatal("fetch table not empty")
	}
	calls0 := cl.RPCStats().CallsSent
	got := make([]byte, 128)
	readDone := make(chan error, 1)
	go func() {
		_, err := f.Read(ctx(), got, 0)
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("read completed (%v) without waiting for the in-flight fetch", err)
	case <-time.After(50 * time.Millisecond):
	}
	cl.fetches.finish(k, fc, chunkOf(0xCD), nil)
	if err := <-readDone; err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xCD || got[127] != 0xCD {
		t.Fatalf("read %x, want the joined fetch's bytes (cd)", got[0])
	}
	if d := cl.RPCStats().CallsSent - calls0; d != 0 {
		t.Fatalf("joining read sent %d RPCs, want 0", d)
	}
	if hits := cl.Stats().PrefetchHits; hits != 1 {
		t.Fatalf("PrefetchHits = %d, want 1 (join on an in-flight prefetch)", hits)
	}
	c.checkOrder()
}

// TestSequentialReadAhead: one demand read at the start of a
// sequential scan prefetches the next K chunks; the scan's remaining
// reads are then served locally with no further RPCs.
func TestSequentialReadAhead(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "scan", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	v := f.(*cvnode)
	const chunks = 5 // 1 demand + K=4 prefetched, exactly the file
	for i := int64(0); i < chunks; i++ {
		if _, err := f.Write(ctx(), chunkOf(byte(i+1)), i*ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Fsync(); err != nil {
		t.Fatal(err)
	}
	// Cold data cache, warm tokens, fresh scan cursor.
	cl.store.DropFile(v.fid)
	v.llock()
	v.seqNext, v.raNext = 0, 0
	v.lunlock()

	buf := make([]byte, ChunkSize)
	if _, err := f.Read(ctx(), buf, 0); err != nil {
		t.Fatal(err)
	}
	// Wait for the 4 prefetches to land.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v.llock()
		landed := len(v.prefetched)
		v.lunlock()
		if landed == chunks-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d prefetches landed", landed, chunks-1)
		}
		time.Sleep(time.Millisecond)
	}
	calls0 := cl.RPCStats().CallsSent
	for i := int64(1); i < chunks; i++ {
		if _, err := f.Read(ctx(), buf, i*ChunkSize); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("chunk %d read %d, want %d", i, buf[0], i+1)
		}
	}
	if d := cl.RPCStats().CallsSent - calls0; d != 0 {
		t.Fatalf("scan issued %d RPCs after read-ahead, want 0", d)
	}
	st := cl.Stats()
	if st.PrefetchIssued != chunks-1 {
		t.Fatalf("PrefetchIssued = %d, want %d", st.PrefetchIssued, chunks-1)
	}
	if st.PrefetchHits != chunks-1 {
		t.Fatalf("PrefetchHits = %d, want %d", st.PrefetchHits, chunks-1)
	}
	if st.PrefetchWaste != 0 || st.PrefetchCancels != 0 {
		t.Fatalf("waste=%d cancels=%d, want 0/0", st.PrefetchWaste, st.PrefetchCancels)
	}
	c.checkOrder()
}

// TestPrefetchCancelledByGeneration: a prefetch scheduled before a
// revoke/truncate (generation bump) must not issue an RPC, and one
// whose RPC was already in flight must not cache its result.
func TestPrefetchCancelledByGeneration(t *testing.T) {
	c := newCell(t)
	cl := c.client("wsA")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	v := f.(*cvnode)
	if _, err := f.Write(ctx(), chunkOf(1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx(), chunkOf(2), ChunkSize); err != nil {
		t.Fatal(err)
	}
	if err := v.Fsync(); err != nil {
		t.Fatal(err)
	}
	cl.store.DropFile(v.fid)

	// Queued prefetch: gen moves before the worker runs → no RPC.
	v.llock()
	gen := v.prefetchGen
	v.discardPrefetchedLocked(0, -1) // what revoke/truncate do
	v.lunlock()
	calls0 := cl.RPCStats().CallsSent
	cl.prefetchSem <- struct{}{} // the slot prefetchChunk releases
	v.prefetchChunk(1, gen)
	if d := cl.RPCStats().CallsSent - calls0; d != 0 {
		t.Fatalf("cancelled prefetch sent %d RPCs, want 0", d)
	}
	if n := cl.Stats().PrefetchCancels; n != 1 {
		t.Fatalf("PrefetchCancels = %d, want 1", n)
	}

	// In-flight prefetch: gen moves while the RPC is out → result
	// discarded, nothing cached, no prefetched mark.
	if _, err := v.fetchChunk(1, true, gen); err != nil {
		t.Fatal(err)
	}
	if _, ok := cl.store.Get(v.fid, 1); ok {
		t.Fatal("stale prefetch result was cached")
	}
	v.llock()
	marked := v.prefetched[1]
	v.lunlock()
	if marked {
		t.Fatal("stale prefetch left a prefetched mark")
	}
	if n := cl.Stats().PrefetchCancels; n != 2 {
		t.Fatalf("PrefetchCancels = %d, want 2", n)
	}
	c.checkOrder()
}

// TestParallelWriteBack: with injected RPC latency, a W=4 flush of 8
// dirty chunks must beat the same flush with W=1, and both must land
// every byte on the server. The binary lane is disabled so the flush
// actually fans out one RPC per span — with the lane up, the whole
// batch collapses into a single StoreBatch frame and there is nothing
// to parallelize (that path is covered by the wire-lane tests).
func TestParallelWriteBack(t *testing.T) {
	c := newCell(t)
	const lat = 10 * time.Millisecond
	// Small spans keep the server-side write (serialized per file under
	// the server vnode lock) negligible, so the timing below measures
	// how many injected RPC latencies overlap — the thing under test.
	flush := func(name string, workers int) time.Duration {
		cl := c.clientOpts(name, func(o *Options) {
			o.WriteBackWorkers = workers
			o.RPC.Latency = lat
			o.RPC.DisableBinaryLane = true
		})
		root := c.mount(cl)
		f, err := root.Create(ctx(), name, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		const chunks = 8
		for i := int64(0); i < chunks; i++ {
			span := bytes.Repeat([]byte{byte(i + 1)}, 64)
			if _, err := f.Write(ctx(), span, i*ChunkSize); err != nil {
				t.Fatal(err)
			}
		}
		start := time.Now()
		if err := f.(*cvnode).Fsync(); err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		got := c.serverBytes(name, chunks*ChunkSize)
		for i := 0; i < chunks; i++ {
			if got[i*ChunkSize] != byte(i+1) {
				t.Fatalf("%s: chunk %d holds %d on the server", name, i, got[i*ChunkSize])
			}
		}
		return elapsed
	}
	serial := flush("serial", 1)
	parallel := flush("parallel", 4)
	// 8 sequential stores pay 8×lat; 4 workers pay ~2×lat. Demand a
	// conservative 2× to stay robust on loaded CI machines.
	if parallel*2 >= serial {
		t.Fatalf("parallel flush %v not clearly faster than serial %v", parallel, serial)
	}
	c.checkOrder()
}

// TestPipelineStressRace is the storm test: concurrent sequential
// readers and a writer on one client while a second client's reads and
// writes force PriorityRevoke storms and truncations, all while
// prefetch and write-back are in flight. At the end no update may be
// lost.
func TestPipelineStressRace(t *testing.T) {
	c := newCell(t)
	clA := c.clientOpts("wsA", func(o *Options) {
		o.CacheChunks = 8 // force eviction pressure against pinned chunks
		o.FlushInterval = 5 * time.Millisecond
	})
	clB := c.client("wsB")
	rootA := c.mount(clA)
	rootB := c.mount(clB)

	const (
		fileChunks   = 24
		writerChunks = 16 // chunks with asserted content, below all truncation points
		rounds       = 25
	)
	fA, err := rootA.Create(ctx(), "storm", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	vA := fA.(*cvnode)
	for i := int64(0); i < fileChunks; i++ {
		if _, err := fA.Write(ctx(), chunkOf(0), i*ChunkSize); err != nil {
			t.Fatal(err)
		}
	}
	if err := vA.Fsync(); err != nil {
		t.Fatal(err)
	}
	fB, err := rootB.Lookup(ctx(), "storm")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// Two sequential scanners on A keep read-ahead busy.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, ChunkSize)
			for s := 0; s < 6; s++ {
				for i := int64(0); i < fileChunks; i++ {
					if _, err := fA.Read(ctx(), buf, i*ChunkSize); err != nil {
						fail("scanner: %v", err)
						return
					}
				}
			}
		}()
	}

	// One writer on A bumps a version byte per chunk; lastVal records
	// what must survive.
	lastVal := make([]byte, writerChunks)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 1; r <= rounds; r++ {
			for i := 0; i < writerChunks; i++ {
				pat := []byte{byte(r), byte(r), byte(r), byte(r)}
				if _, err := fA.Write(ctx(), pat, int64(i)*ChunkSize+16); err != nil {
					fail("writer: %v", err)
					return
				}
				lastVal[i] = byte(r)
			}
			if r%5 == 0 {
				if err := vA.Fsync(); err != nil {
					fail("writer fsync: %v", err)
					return
				}
			}
		}
	}()

	// Client B's reads and writes force revocations of A's tokens.
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 512)
		for i := 0; i < 120; i++ {
			idx := int64(i % fileChunks)
			if _, err := fB.Read(ctx(), buf, idx*ChunkSize); err != nil {
				fail("B read: %v", err)
				return
			}
			if i%10 == 0 {
				off := int64(writerChunks+i%4) * ChunkSize
				if _, err := fB.Write(ctx(), []byte("intruder"), off); err != nil {
					fail("B write: %v", err)
					return
				}
			}
		}
	}()

	// Truncations above the writer's range race the prefetchers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			n := int64(fileChunks - 2 + i%2*2) // 22 ↔ 24 chunks
			length := n * ChunkSize
			if _, err := fA.SetAttr(ctx(), fs.AttrChange{Length: &length}); err != nil {
				fail("truncate: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if err := vA.Fsync(); err != nil {
		t.Fatal(err)
	}
	// Every chunk's last written version byte must be on the server.
	got := c.serverBytes("storm", writerChunks*ChunkSize)
	for i := 0; i < writerChunks; i++ {
		if lastVal[i] == 0 {
			continue
		}
		if b := got[i*ChunkSize+16]; b != lastVal[i] {
			t.Errorf("chunk %d lost: server has version %d, writer last wrote %d",
				i, b, lastVal[i])
		}
	}
	c.checkOrder()
}
