package client

import (
	"fmt"
	"net"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/locking"
	"decorum/internal/rpc"
	"decorum/internal/server"
	"decorum/internal/stripe"
)

// The striped-scan benchmark models server-bound sequential reads: each
// file server association gets ONE worker and a simulated reply
// latency, capping it at ~1/benchStripeLatency chunk replies per
// second. A single server is then the bottleneck no matter how deep the
// client pipelines, and striping the file over more servers is the only
// way up: width w should approach a w-fold speedup (experiment S28).
const benchStripeLatency = 8 * time.Millisecond

func benchStripeRPC() rpc.Options {
	return rpc.Options{Workers: 1, Latency: benchStripeLatency}
}

func benchStripeAgg(b *testing.B) *episode.Aggregate {
	b.Helper()
	dev := blockdev.NewMem(4096, 4096)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 256, PoolSize: 512})
	if err != nil {
		b.Fatal(err)
	}
	return agg
}

// benchStripedCell is newStripedCell with server-side RPC caps and a
// 16 MiB device per server, big enough for the scan file's members.
func benchStripedCell(b *testing.B, width int) *stripedCell {
	return benchStripedCellRPC(b, width, benchStripeRPC())
}

func benchStripedCellRPC(b *testing.B, width int, srvRPC rpc.Options) *stripedCell {
	b.Helper()
	c := &stripedCell{
		t:       b,
		servers: map[string]*server.Server{},
		dead:    map[string]bool{},
		conns:   map[string][]net.Conn{},
		locate:  NewStaticLocator(),
		order:   locking.New(),
	}
	agg := benchStripeAgg(b)
	vol, err := agg.CreateVolumeWithID("user.striped", 0, 100)
	if err != nil {
		b.Fatal(err)
	}
	c.logical = vol
	c.servers[stripePrimaryAddr] = server.New(server.Options{Name: stripePrimaryAddr, RPC: srvRPC}, agg)
	c.locate.Add(vol.ID, "user.striped", stripePrimaryAddr)

	lay := &stripe.Layout{Width: width}
	aggs := make([]*episode.Aggregate, 0, width+1)
	for i := 0; i <= width; i++ {
		magg := benchStripeAgg(b)
		mvol, err := magg.CreateVolumeWithID(fmt.Sprintf("stripe.m%d", i), 0, fs.VolumeID(101+i))
		if err != nil {
			b.Fatal(err)
		}
		aggs = append(aggs, magg)
		lay.Members = append(lay.Members, stripe.Member{Addr: fmt.Sprintf("stripe-m%d", i), Volume: mvol.ID})
	}
	for i, m := range lay.Members {
		srv := server.New(server.Options{Name: m.Addr, RPC: srvRPC}, aggs[i])
		if err := srv.SetStripeMember(m.Volume, lay, i); err != nil {
			b.Fatal(err)
		}
		c.servers[m.Addr] = srv
	}
	c.lay = lay
	c.locate.SetLayout(vol.ID, lay)
	return c
}

func (c *stripedCell) benchClient(b *testing.B) *Client {
	b.Helper()
	cl, err := New(Options{
		Name:      "stripe-bench",
		User:      fs.SuperUser,
		Dial:      c.dial,
		Locate:    c.locate,
		Order:     c.order,
		ReadAhead: 16,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	return cl
}

// benchCappedCell is the width=1 baseline: one ordinary (unstriped)
// volume on a single server under the same worker/latency cap the
// stripe members run with.
func benchCappedCell(b *testing.B) *cell {
	b.Helper()
	agg := benchStripeAgg(b)
	vol, err := agg.CreateVolume("user.test", 0)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Options{Name: cellAddr, RPC: benchStripeRPC()}, agg)
	locate := NewStaticLocator()
	locate.Add(vol.ID, "user.test", cellAddr)
	return &cell{t: b, srv: srv, agg: agg, vol: vol, locate: locate, order: locking.New()}
}

// BenchmarkStripedScan measures single-file sequential-scan throughput
// against server-capped associations: width=1 is an unstriped volume on
// one server (the paper's one-server-per-file ceiling), width=2 and
// width=4 stripe the same file over 3 and 5 member servers (RAID-5).
// Width 4 must clear 3x the width=1 bytes/sec (PR 8 acceptance).
func BenchmarkStripedScan(b *testing.B) {
	const chunks = 48
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("width=%d", width), func(b *testing.B) {
			var cl *Client
			var v *cvnode
			if width == 1 {
				c := benchCappedCell(b)
				cl = c.clientOpts("stripe-bench", func(o *Options) { o.ReadAhead = 16 })
				v = benchMakeFile(b, c, cl, "scan", chunks)
			} else {
				c := benchStripedCell(b, width)
				cl = c.benchClient(b)
				root := c.mount(cl)
				f, err := root.Create(ctx(), "scan", 0o644)
				if err != nil {
					b.Fatal(err)
				}
				payload := make([]byte, ChunkSize)
				for i := int64(0); i < chunks; i++ {
					if _, err := f.Write(ctx(), payload, i*ChunkSize); err != nil {
						b.Fatal(err)
					}
				}
				v = f.(*cvnode)
				if err := v.Fsync(); err != nil {
					b.Fatal(err)
				}
			}
			buf := make([]byte, ChunkSize)
			b.SetBytes(chunks * ChunkSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				benchResetScan(cl, v)
				b.StartTimer()
				benchScan(b, v, chunks, buf)
			}
		})
	}
}
