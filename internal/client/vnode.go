package client

import (
	"container/list"
	"fmt"
	"sync"

	"decorum/internal/fs"
	"decorum/internal/locking"
	"decorum/internal/proto"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// cvnode is one cached file: the client's vnode (§4.4) plus its cache
// state (§4.2) and directory cache (§4.3).
//
// Locking (§6.1): hmu is the high-level lock, held for a whole operation;
// lmu is the low-level lock protecting the fields below, released before
// every RPC and retaken afterwards. cond (tied to lmu) lets revocation
// handlers wait for in-flight RPCs when they receive a token they do not
// know yet (§6.3).
type cvnode struct {
	c    *Client
	conn *serverConn
	fid  fs.FID

	hmu sync.Mutex

	lmu  sync.Mutex
	cond *sync.Cond // tied to lmu; set once in newCvnode
	// rpcs counts in-flight RPCs touching this vnode.
	rpcs int // guarded by lmu
	// serial is the highest per-file serialization counter seen (§6.2).
	serial uint64 // guarded by lmu
	// revokedSerial is the highest serial carried by a processed
	// revocation. A grant stamped at or below it was revoked while its
	// granting reply was still in flight — piggybacked on an RPC naming a
	// different vnode (§6.3), where the rpcs counter cannot make the
	// revocation wait — so the merge must drop it, not record it.
	revokedSerial uint64 // guarded by lmu
	// attr is the cached status; valid only under a status token.
	attr      fs.Attr // guarded by lmu
	attrValid bool    // guarded by lmu
	// dirtyStatus marks locally updated attributes not yet stored back
	// (length/mtime advanced by cached writes under a write token).
	dirtyStatus bool // guarded by lmu
	// toks are the tokens this client holds on the file.
	toks map[token.ID]token.Token // guarded by lmu
	// dirty maps chunk index -> dirty byte range within the chunk. Every
	// entry owns one pin on its chunk in the store; the pin moves to the
	// in-flight flush job when the span is snapshotted and is released
	// when the store-back lands (or the span is discarded).
	dirty map[int64]dirtySpan // guarded by lmu
	// flushing counts dirty spans handed to in-flight MStoreData calls;
	// flushDirty is only done when dirty is empty AND flushing is zero,
	// so Fsync waits for exactly its own vnode's stores.
	flushing int // guarded by lmu
	// flushSerial/flushAttr remember the freshest StoreData reply of the
	// current flush batch; stores complete out of order, and only the
	// highest-serial status may be force-installed when the vnode turns
	// clean (§6.2).
	flushSerial uint64  // guarded by lmu
	flushAttr   fs.Attr // guarded by lmu
	// seqNext is the chunk a sequential scan would read next; a Read
	// starting there extends the read-ahead window. raNext is the first
	// chunk not yet scheduled for prefetch.
	seqNext int64 // guarded by lmu
	raNext  int64 // guarded by lmu
	// prefetchGen invalidates scheduled and in-flight prefetches: it is
	// bumped when data tokens are revoked or the file is truncated, and
	// prefetch workers re-check it before caching anything.
	prefetchGen uint64 // guarded by lmu
	// prefetched marks chunks fetched by read-ahead and not yet read,
	// for the hit/waste accounting.
	prefetched map[int64]bool // guarded by lmu
	// names caches lookup results (directory layer); nil = invalid.
	names map[string]fs.FID // guarded by lmu
	// entries caches ReadDir output.
	entries      []fs.Dirent // guarded by lmu
	entriesValid bool        // guarded by lmu
	// open counts per open-token subtype; a revocation is refused while
	// nonzero (§5.3).
	open map[token.Type]int // guarded by lmu
	// locks counts held file locks per range (token-backed locks).
	lockCount int // guarded by lmu
	// conflicted is set when a reclaim conflict discarded this vnode's
	// dirty cache; the next write-path operation reports it once as
	// fs.ErrStale (see takeConflict).
	conflicted bool // guarded by lmu
	// staleGen counts cache invalidations (markStaleLocked); in-flight
	// store-backs compare it against the generation they were snapshotted
	// under and abort instead of shipping discarded bytes.
	staleGen uint64 // guarded by lmu
	// lruElem is this vnode's position in the client's eviction list.
	lruElem *list.Element // guarded by c.mu
}

// dirtySpan is a dirty byte range within one chunk.
type dirtySpan struct {
	lo, hi int // [lo, hi) within the chunk
}

func newCvnode(c *Client, conn *serverConn, fid fs.FID) *cvnode {
	v := &cvnode{
		c:          c,
		conn:       conn,
		fid:        fid,
		toks:       make(map[token.ID]token.Token),
		dirty:      make(map[int64]dirtySpan),
		open:       make(map[token.Type]int),
		prefetched: make(map[int64]bool),
		// A revocation may have beaten the vnode into existence (§6.3):
		// the grant it killed rides the very RPC creating this entry.
		revokedSerial: conn.takeRevokedAhead(fid),
	}
	v.cond = sync.NewCond(&v.lmu)
	return v
}

// FID implements vfs.Vnode.
func (v *cvnode) FID() fs.FID { return v.fid }

// --- locking helpers ---

func (v *cvnode) hlock() {
	if v.c.opts.Order != nil {
		v.c.opts.Order.Acquire(locking.LevelClientHigh, v.fid)
	}
	v.hmu.Lock()
}

func (v *cvnode) hunlock() {
	v.hmu.Unlock()
	if v.c.opts.Order != nil {
		v.c.opts.Order.Release(locking.LevelClientHigh, v.fid)
	}
}

func (v *cvnode) llock() {
	if v.c.opts.Order != nil {
		v.c.opts.Order.Acquire(locking.LevelClientLow, v.fid)
	}
	v.lmu.Lock()
}

func (v *cvnode) lunlock() {
	v.lmu.Unlock()
	if v.c.opts.Order != nil {
		v.c.opts.Order.Release(locking.LevelClientLow, v.fid)
	}
}

// call performs one RPC with the low-level lock RELEASED (§6.1) and the
// in-flight counter raised so revocations can order themselves. The RPC
// goes through the association's recovery-aware path: it survives a
// server restart (reconnect, reclaim, replay, retry) and fails with the
// retryable ErrDisconnected only when recovery itself gives up.
func (v *cvnode) call(method string, args, reply any) error {
	return v.callPre(method, args, reply, nil)
}

// callPre is call with a precondition hook forwarded to the
// association (see serverConn.callGuarded).
func (v *cvnode) callPre(method string, args, reply any, pre func() error) error {
	return v.withRPC(func() error {
		return v.conn.callGuarded(method, args, reply, pre)
	})
}

// withRPC runs f with the vnode's in-flight RPC counter raised, so a
// revocation racing the call waits on the condition variable instead of
// concluding the token was never granted (§6.3). Every remote operation
// touching this vnode's guarantees — gob call, binary-lane call, member
// fan-out — goes through it.
func (v *cvnode) withRPC(f func() error) error {
	v.llock()
	v.rpcs++
	v.lunlock()
	err := f()
	v.llock()
	v.rpcs--
	v.cond.Broadcast()
	v.lunlock()
	return err
}

// takeConflict surfaces (exactly once) that a reclaim conflict
// discarded this vnode's cached writes: the first write-path caller
// after the conflict gets fs.ErrStale, so the application learns its
// data was dropped rather than silently merged.
func (v *cvnode) takeConflict() error {
	v.llock()
	defer v.lunlock()
	if !v.conflicted {
		return nil
	}
	v.conflicted = false
	return fmt.Errorf("%w: cached writes discarded after a token reclaim conflict", fs.ErrStale)
}

// mergeLocked applies a reply's status if its stamp is newer (§6.3: "the
// returned status information is older and can be simply ignored" when
// the counter says so). Locally dirty status is never overwritten by
// server state, which by construction predates the unstored local writes.
func (v *cvnode) mergeLocked(attr fs.Attr, serial uint64) {
	if serial > v.serial {
		v.serial = serial
		if !v.dirtyStatus {
			v.attr = attr
			v.attrValid = true
		}
	}
}

// mergeForceLocked installs server status after a flush made the cache
// clean again.
func (v *cvnode) mergeForceLocked(attr fs.Attr, serial uint64) {
	if serial > v.serial {
		v.serial = serial
	}
	v.dirtyStatus = false
	v.attr = attr
	v.attrValid = true
}

// addTokensLocked records granted tokens. A grant whose serial is at or
// below a revocation the vnode already processed is dead on arrival
// (§6.3): the server revoked it while the granting reply was in flight,
// and the revocation handler — finding no token and no RPC raising this
// vnode's rpcs counter — already answered "returned". Recording it would
// leave a stale guarantee the client would wrongly trust (and reclaim
// after a restart).
func (v *cvnode) addTokensLocked(grants []proto.Grant) {
	for _, g := range grants {
		if g.Token.ID == 0 {
			continue
		}
		if g.Serial != 0 && g.Serial <= v.revokedSerial {
			continue
		}
		v.toks[g.Token.ID] = g.Token
		if g.Serial > v.serial {
			v.serial = g.Serial
		}
	}
	v.cond.Broadcast()
}

// rangedTypes are the token types whose range matters.
const rangedTypes = token.DataRead | token.DataWrite | token.LockRead | token.LockWrite

// hasTokenLocked reports whether held tokens cover every type bit in
// want over rng.
func (v *cvnode) hasTokenLocked(want token.Type, rng token.Range) bool {
	for bit := token.Type(1); bit != 0 && bit <= want; bit <<= 1 {
		if want&bit == 0 {
			continue
		}
		found := false
		for _, t := range v.toks {
			if t.Types&bit == 0 {
				continue
			}
			if bit&rangedTypes != 0 && !t.Range.Contains(rng) {
				continue
			}
			found = true
			break
		}
		if !found {
			return false
		}
	}
	return true
}

// --- status ---

// ensureAttr makes the cached status usable, fetching it (with a
// status-read token) on a miss. Returns the current attr.
func (v *cvnode) ensureAttr() (fs.Attr, error) {
	v.llock()
	if v.attrValid && v.hasTokenLocked(token.StatusRead, token.WholeFile) {
		a := v.attr
		v.lunlock()
		v.c.attrHits.Inc()
		return a, nil
	}
	v.lunlock()
	v.c.attrMisses.Inc()
	var reply proto.FetchStatusReply
	err := v.call(proto.MFetchStatus, proto.FetchStatusArgs{
		FID:  v.fid,
		Want: proto.TokenRequest{Types: token.StatusRead},
	}, &reply)
	if err != nil {
		return fs.Attr{}, err
	}
	v.llock()
	v.addTokensLocked(reply.Grants)
	v.mergeLocked(reply.Attr, reply.Serial)
	a := v.attr
	v.lunlock()
	return a, nil
}

// Attr implements vfs.Vnode: served from cache under a status-read token
// — the zero-RPC path behind experiments C3 and C5.
func (v *cvnode) Attr(ctx *vfs.Context) (fs.Attr, error) {
	v.hlock()
	defer v.hunlock()
	return v.ensureAttr()
}

// SetAttr implements vfs.Vnode. Explicit attribute changes write through
// (after flushing affected dirty data), keeping truncation races simple.
func (v *cvnode) SetAttr(ctx *vfs.Context, ch fs.AttrChange) (fs.Attr, error) {
	v.hlock()
	defer v.hunlock()
	if ch.Length != nil {
		// Drop dirty data beyond the new length; flush the rest first so
		// the server applies everything in order.
		v.llock()
		for idx, span := range v.dirty {
			base := idx * ChunkSize
			if base+int64(span.lo) >= *ch.Length {
				delete(v.dirty, idx)
				v.c.store.Unpin(v.fid, idx)
			}
		}
		v.lunlock()
		if err := v.flushDirty(); err != nil {
			return fs.Attr{}, err
		}
	}
	var reply proto.StoreStatusReply
	err := v.call(proto.MStoreStatus, proto.StoreStatusArgs{FID: v.fid, Change: ch}, &reply)
	if err != nil {
		return fs.Attr{}, err
	}
	v.llock()
	v.mergeForceLocked(reply.Attr, reply.Serial)
	if ch.Length != nil {
		// Cached chunks beyond the new length are stale, and so is any
		// read-ahead still in flight for them.
		end := (*ch.Length + ChunkSize - 1) / ChunkSize
		v.discardPrefetchedLocked(end, -1)
		for idx := end; idx < end+1024; idx++ {
			v.c.store.Drop(v.fid, idx)
		}
	}
	a := v.attr
	v.lunlock()
	return a, nil
}

// --- data ---

func chunkRange(idx int64) token.Range {
	return token.Range{Start: idx * ChunkSize, End: (idx + 1) * ChunkSize}
}

// tokenRange is the range a data-token request covers: the chunk, or the
// whole file under the WholeFileDataTokens ablation.
func (v *cvnode) tokenRange(idx int64) token.Range {
	if v.c.opts.WholeFileDataTokens {
		return token.WholeFile
	}
	return chunkRange(idx)
}

// ensureChunk returns the chunk's bytes, fetching data and a data-read
// token as needed. The fetch goes through the single-flight table, so a
// demand read for a chunk with a prefetch in flight joins it instead of
// issuing a second RPC.
func (v *cvnode) ensureChunk(idx int64) ([]byte, error) {
	rng := v.tokenRange(idx)
	v.llock()
	if v.hasTokenLocked(token.DataRead, rng) {
		if b, ok := v.c.store.Get(v.fid, idx); ok {
			v.notePrefetchHitLocked(idx)
			v.lunlock()
			v.c.dataHits.Inc()
			return b, nil
		}
	}
	v.lunlock()
	v.c.dataMisses.Inc()
	return v.fetchChunk(idx, false, 0)
}

// Read implements vfs.Vnode.
func (v *cvnode) Read(ctx *vfs.Context, p []byte, off int64) (int, error) {
	v.hlock()
	defer v.hunlock()
	if off < 0 {
		return 0, fs.ErrInvalid
	}
	attr, err := v.ensureAttr()
	if err != nil {
		return 0, err
	}
	if attr.Type == fs.TypeDir {
		return 0, fs.ErrIsDir
	}
	n := 0
	firstChunk, lastChunk := int64(-1), int64(-1)
	for n < len(p) {
		v.llock()
		length := v.attr.Length
		v.lunlock()
		pos := off + int64(n)
		if pos >= length {
			break
		}
		idx := pos / ChunkSize
		bo := int(pos % ChunkSize)
		want := len(p) - n
		if max := ChunkSize - bo; want > max {
			want = max
		}
		if rem := length - pos; int64(want) > rem {
			want = int(rem)
		}
		if firstChunk < 0 {
			firstChunk = idx
		}
		lastChunk = idx
		// Fast path: token held and the span is in the store — copy just
		// the span, not the whole chunk.
		v.llock()
		served := v.hasTokenLocked(token.DataRead, v.tokenRange(idx)) &&
			v.c.store.ReadAt(v.fid, idx, p[n:n+want], bo)
		if served {
			v.notePrefetchHitLocked(idx)
		}
		v.lunlock()
		if served {
			v.c.dataHits.Inc()
			n += want
			continue
		}
		chunk, err := v.ensureChunk(idx)
		if err != nil {
			return n, err
		}
		copy(p[n:n+want], chunk[bo:])
		n += want
	}
	if lastChunk >= 0 {
		v.maybeReadAhead(firstChunk, lastChunk)
	}
	return n, nil
}

// ensureWritable guarantees a data-write token over the chunk and the
// chunk's current content in the cache (skipped when the write covers the
// whole chunk).
func (v *cvnode) ensureWritable(idx int64, fullOverwrite bool) error {
	if lay, err := v.c.layoutFor(v.fid.Volume); err != nil {
		return err
	} else if lay != nil {
		return v.stripeEnsureWritable(lay, idx, fullOverwrite)
	}
	rng := v.tokenRange(idx)
	v.llock()
	haveDataTok := v.hasTokenLocked(token.DataWrite, rng)
	haveStatusTok := v.hasTokenLocked(token.StatusWrite|token.StatusRead, token.WholeFile)
	_, haveData := v.c.store.Get(v.fid, idx)
	v.lunlock()
	if haveDataTok && haveStatusTok && (haveData || fullOverwrite) {
		return nil
	}
	if haveDataTok && (haveData || fullOverwrite) {
		// Only the status tokens were lost (a status-token revocation,
		// e.g. another writer touching disjoint ranges): regain them
		// without shipping any data — the point of typed tokens (§5.4).
		var reply proto.GetTokensReply
		err := v.call(proto.MGetTokens, proto.GetTokensArgs{
			FID:  v.fid,
			Want: proto.TokenRequest{Types: token.StatusRead | token.StatusWrite},
		}, &reply)
		if err != nil {
			return err
		}
		v.llock()
		v.addTokensLocked(reply.Grants)
		v.lunlock()
		return nil
	}
	var reply proto.FetchDataReply
	err := v.call(proto.MFetchData, proto.FetchDataArgs{
		FID:    v.fid,
		Offset: rng.Start,
		Length: ChunkSize,
		Want: proto.TokenRequest{
			Types: token.DataRead | token.DataWrite | token.StatusRead | token.StatusWrite,
			Range: rng,
		},
	}, &reply)
	if err != nil {
		return err
	}
	chunk := make([]byte, ChunkSize)
	copy(chunk, reply.Data)
	v.llock()
	v.addTokensLocked(reply.Grants)
	v.mergeLocked(reply.Attr, reply.Serial)
	v.c.store.Put(v.fid, idx, chunk)
	v.lunlock()
	return nil
}

// Write implements vfs.Vnode: under a write data token the write is
// absorbed by the cache "without storing the data back to the server or
// even notifying the server" (§5.2). Dirty data leaves the client on
// revocation or Fsync.
func (v *cvnode) Write(ctx *vfs.Context, p []byte, off int64) (int, error) {
	v.hlock()
	defer v.hunlock()
	if off < 0 {
		return 0, fs.ErrInvalid
	}
	if err := v.takeConflict(); err != nil {
		return 0, err
	}
	attr, err := v.ensureAttr()
	if err != nil {
		return 0, err
	}
	if attr.Type == fs.TypeDir {
		return 0, fs.ErrIsDir
	}
	n := 0
	for n < len(p) {
		pos := off + int64(n)
		idx := pos / ChunkSize
		bo := int(pos % ChunkSize)
		want := len(p) - n
		if max := ChunkSize - bo; want > max {
			want = max
		}
		full := bo == 0 && want == ChunkSize
		if err := v.ensureWritable(idx, full); err != nil {
			return n, err
		}
		v.llock()
		if !v.c.store.WriteAt(v.fid, idx, p[n:n+want], bo) {
			// Chunk absent (full-overwrite path): materialize it.
			chunk := make([]byte, ChunkSize)
			copy(chunk[bo:], p[n:n+want])
			v.c.store.Put(v.fid, idx, chunk)
		}
		span, had := v.dirty[idx]
		if !had {
			span = dirtySpan{lo: bo, hi: bo + want}
			// The new dirty entry owns a pin: LRU pressure must never
			// evict a chunk whose only copy of these bytes is local.
			v.c.store.Pin(v.fid, idx)
		} else {
			if bo < span.lo {
				span.lo = bo
			}
			if bo+want > span.hi {
				span.hi = bo + want
			}
		}
		v.dirty[idx] = span
		// Update cached status locally under the status-write token.
		if pos+int64(want) > v.attr.Length {
			v.attr.Length = pos + int64(want)
		}
		v.attr.Mtime = v.c.opts.Clock()
		v.attr.DataVersion++
		v.dirtyStatus = true
		v.lunlock()
		v.c.localWrites.Inc()
		n += want
	}
	return n, nil
}

// flushDirty stores every dirty span back to the server, up to
// WriteBackWorkers spans at a time: it snapshots the dirty map under
// lmu, hands each span to the bounded write-back pool, and waits for
// its own vnode's stores only. When another flusher's spans are still
// in flight it waits on the condition variable (they may fail and
// re-dirty the map) instead of spinning or returning early.
func (v *cvnode) flushDirty() error {
	if lay, err := v.c.layoutFor(v.fid.Volume); err != nil {
		return err
	} else if lay != nil {
		return v.flushDirtyStriped(lay)
	}
	var firstErr error
	var errMu sync.Mutex
	for {
		v.llock()
		for len(v.dirty) == 0 && v.flushing > 0 {
			v.cond.Wait()
		}
		if len(v.dirty) == 0 || firstErr != nil {
			v.lunlock()
			return firstErr
		}
		// Snapshot every dirty span, clipped to the file length (writes
		// past a truncation). Pinning guarantees the chunk is still
		// cached; each job inherits its map entry's pin.
		length := v.attr.Length
		jobs := make([]flushJob, 0, len(v.dirty))
		for idx, span := range v.dirty {
			delete(v.dirty, idx)
			lo, hi := idx*ChunkSize+int64(span.lo), idx*ChunkSize+int64(span.hi)
			if hi > length {
				hi = length
			}
			chunk, ok := v.c.store.Get(v.fid, idx)
			if !ok || lo >= hi {
				v.c.store.Unpin(v.fid, idx)
				continue
			}
			jobs = append(jobs, flushJob{
				idx:  idx,
				span: span,
				off:  lo,
				data: chunk[span.lo : int64(span.lo)+hi-lo],
				gen:  v.staleGen,
			})
		}
		v.flushing += len(jobs)
		v.lunlock()
		var wg sync.WaitGroup
		if len(jobs) > 1 && v.conn.binaryLane() {
			// The association has the binary lane: collapse the snapshot
			// into StoreBatch frames — a multi-chunk flush becomes a
			// handful of writev calls instead of one RPC per span.
			for _, b := range batchJobs(jobs) {
				wg.Add(1)
				go func(b []flushJob) {
					defer wg.Done()
					if err := v.storeSpanBatch(b); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
				}(b)
			}
			wg.Wait()
			continue
		}
		for _, j := range jobs {
			wg.Add(1)
			go func(j flushJob) {
				defer wg.Done()
				if err := v.storeSpan(j); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}(j)
		}
		wg.Wait()
	}
}

// Fsync stores dirty data and status back to the server (the client-side
// half of UNIX fsync semantics; the server's physical file system logs
// and checkpoints on its own schedule).
func (v *cvnode) Fsync() error {
	v.hlock()
	defer v.hunlock()
	if err := v.takeConflict(); err != nil {
		return err
	}
	return v.flushDirty()
}

// --- directory layer (§4.3) ---

// ensureDirToken holds a data-read token on the directory so cached
// lookup results stay valid until revoked.
func (v *cvnode) ensureDirToken() error {
	v.llock()
	ok := v.hasTokenLocked(token.DataRead, token.WholeFile)
	v.lunlock()
	if ok {
		return nil
	}
	var reply proto.GetTokensReply
	err := v.call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  v.fid,
		Want: proto.TokenRequest{Types: token.DataRead | token.StatusRead},
	}, &reply)
	if err != nil {
		return err
	}
	v.llock()
	v.addTokensLocked(reply.Grants)
	if v.names == nil {
		v.names = make(map[string]fs.FID)
	}
	v.lunlock()
	return nil
}

// Lookup implements vfs.Vnode with per-name caching.
func (v *cvnode) Lookup(ctx *vfs.Context, name string) (vfs.Vnode, error) {
	v.hlock()
	defer v.hunlock()
	if err := v.ensureDirToken(); err != nil {
		return nil, err
	}
	v.llock()
	if v.names != nil && v.hasTokenLocked(token.DataRead, token.WholeFile) {
		if fid, ok := v.names[name]; ok {
			v.lunlock()
			v.c.lookupHits.Inc()
			return v.c.vnode(v.conn, fid), nil
		}
	}
	v.lunlock()
	v.c.lookupMisses.Inc()
	var reply proto.NameReply
	err := v.call(proto.MLookup, proto.NameArgs{Dir: v.fid, Name: name}, &reply)
	if err != nil {
		return nil, err
	}
	v.llock()
	if v.names == nil {
		v.names = make(map[string]fs.FID)
	}
	v.names[name] = reply.FID
	if reply.DirSerial > v.serial {
		v.serial = reply.DirSerial
	}
	v.lunlock()
	child := v.c.vnode(v.conn, reply.FID)
	child.llock()
	child.addTokensLocked(reply.Grants)
	child.mergeLocked(reply.Attr, reply.Serial)
	child.lunlock()
	return child, nil
}

// ReadDir implements vfs.Vnode with whole-listing caching.
func (v *cvnode) ReadDir(ctx *vfs.Context) ([]fs.Dirent, error) {
	v.hlock()
	defer v.hunlock()
	if err := v.ensureDirToken(); err != nil {
		return nil, err
	}
	v.llock()
	if v.entriesValid && v.hasTokenLocked(token.DataRead, token.WholeFile) {
		out := append([]fs.Dirent(nil), v.entries...)
		v.lunlock()
		return out, nil
	}
	v.lunlock()
	var reply proto.ReadDirReply
	err := v.call(proto.MReadDir, proto.ReadDirArgs{Dir: v.fid}, &reply)
	if err != nil {
		return nil, err
	}
	v.llock()
	v.mergeLocked(reply.Attr, reply.Serial)
	v.entries = reply.Entries
	v.entriesValid = true
	if v.names == nil {
		v.names = make(map[string]fs.FID)
	}
	for _, e := range reply.Entries {
		v.names[e.Name] = fs.FID{Volume: v.fid.Volume, Vnode: e.Vnode, Uniq: e.Uniq}
	}
	out := append([]fs.Dirent(nil), reply.Entries...)
	v.lunlock()
	return out, nil
}

// dirMutated updates directory caches after a write-through mutation.
func (v *cvnode) dirMutated(reply proto.NameReply, name string, added bool, typ fs.FileType) {
	v.llock()
	defer v.lunlock()
	if reply.DirSerial > v.serial {
		v.serial = reply.DirSerial
		if !v.dirtyStatus {
			v.attr = reply.DirAttr
			v.attrValid = true
		}
	}
	if v.names != nil {
		if added {
			v.names[name] = reply.FID
		} else {
			delete(v.names, name)
		}
	}
	if v.entriesValid {
		if added {
			v.entries = append(v.entries, fs.Dirent{
				Name: name, Vnode: reply.FID.Vnode, Uniq: reply.FID.Uniq, Type: typ,
			})
		} else {
			kept := v.entries[:0]
			for _, e := range v.entries {
				if e.Name != name {
					kept = append(kept, e)
				}
			}
			v.entries = kept
		}
	}
}

func (v *cvnode) makeEntry(method, name string, mode fs.Mode, target string, typ fs.FileType) (vfs.Vnode, error) {
	v.hlock()
	defer v.hunlock()
	var reply proto.NameReply
	err := v.call(method, proto.NameArgs{
		Dir: v.fid, Name: name, Mode: mode, Target: target,
	}, &reply)
	if err != nil {
		return nil, err
	}
	v.dirMutated(reply, name, true, typ)
	child := v.c.vnode(v.conn, reply.FID)
	child.llock()
	child.addTokensLocked(reply.Grants)
	child.mergeLocked(reply.Attr, reply.Serial)
	child.lunlock()
	return child, nil
}

// Create implements vfs.Vnode (write-through, §4.3).
func (v *cvnode) Create(ctx *vfs.Context, name string, mode fs.Mode) (vfs.Vnode, error) {
	return v.makeEntry(proto.MCreate, name, mode, "", fs.TypeFile)
}

// Mkdir implements vfs.Vnode.
func (v *cvnode) Mkdir(ctx *vfs.Context, name string, mode fs.Mode) (vfs.Vnode, error) {
	return v.makeEntry(proto.MMakeDir, name, mode, "", fs.TypeDir)
}

// Symlink implements vfs.Vnode.
func (v *cvnode) Symlink(ctx *vfs.Context, name, target string) (vfs.Vnode, error) {
	return v.makeEntry(proto.MSymlink, name, 0o777, target, fs.TypeSymlink)
}

// Readlink implements vfs.Vnode.
func (v *cvnode) Readlink(ctx *vfs.Context) (string, error) {
	v.hlock()
	defer v.hunlock()
	var reply proto.ReadlinkReply
	if err := v.call(proto.MReadlink, proto.ReadlinkArgs{FID: v.fid}, &reply); err != nil {
		return "", err
	}
	return reply.Target, nil
}

// Link implements vfs.Vnode.
func (v *cvnode) Link(ctx *vfs.Context, name string, target vfs.Vnode) error {
	tv, ok := target.(*cvnode)
	if !ok {
		return fs.ErrInvalid
	}
	v.hlock()
	defer v.hunlock()
	var reply proto.NameReply
	err := v.call(proto.MLink, proto.NameArgs{
		Dir: v.fid, Name: name, LinkTo: tv.fid,
	}, &reply)
	if err != nil {
		return err
	}
	v.dirMutated(reply, name, true, reply.Attr.Type)
	tv.llock()
	tv.mergeLocked(reply.Attr, reply.Serial)
	tv.lunlock()
	return nil
}

// Remove implements vfs.Vnode.
func (v *cvnode) Remove(ctx *vfs.Context, name string) error {
	return v.removeEntry(proto.MRemove, name)
}

// Rmdir implements vfs.Vnode.
func (v *cvnode) Rmdir(ctx *vfs.Context, name string) error {
	return v.removeEntry(proto.MRemoveDir, name)
}

func (v *cvnode) removeEntry(method, name string) error {
	v.hlock()
	defer v.hunlock()
	var reply proto.NameReply
	err := v.call(method, proto.NameArgs{Dir: v.fid, Name: name}, &reply)
	if err != nil {
		return err
	}
	v.dirMutated(reply, name, false, fs.TypeNone)
	return nil
}

// Rename implements vfs.Vnode; both directories' high-level locks are
// taken in FID order (§6.1's same-level rule).
func (v *cvnode) Rename(ctx *vfs.Context, oldName string, newDir vfs.Vnode, newName string) error {
	nd, ok := newDir.(*cvnode)
	if !ok {
		return fs.ErrInvalid
	}
	first, second := v, nd
	if fidAfter(first.fid, second.fid) {
		first, second = second, first
	}
	first.hlock()
	defer first.hunlock()
	if second != first {
		second.hlock()
		defer second.hunlock()
	}
	var reply proto.RenameReply
	err := v.call(proto.MRename, proto.RenameArgs{
		OldDir: v.fid, OldName: oldName,
		NewDir: nd.fid, NewName: newName,
	}, &reply)
	if err != nil {
		return err
	}
	// Rename bookkeeping is fiddly (replaced targets, same-dir moves);
	// invalidate both directory caches and let the next ReadDir refill.
	v.llock()
	v.invalidateDirLocked()
	v.mergeLocked(reply.OldDirAttr, reply.OldDirSerial)
	v.lunlock()
	if nd != v {
		nd.llock()
		nd.invalidateDirLocked()
		nd.mergeLocked(reply.NewDirAttr, reply.NewDirSerial)
		nd.lunlock()
	}
	return nil
}

func fidAfter(a, b fs.FID) bool {
	if a.Volume != b.Volume {
		return a.Volume > b.Volume
	}
	if a.Vnode != b.Vnode {
		return a.Vnode > b.Vnode
	}
	return a.Uniq > b.Uniq
}

func (v *cvnode) invalidateDirLocked() {
	v.names = nil
	v.entries = nil
	v.entriesValid = false
}

// --- VFS+ extensions ---

// ACL implements vfs.ACLVnode over the wire.
func (v *cvnode) ACL(ctx *vfs.Context) (fs.ACL, error) {
	v.hlock()
	defer v.hunlock()
	var reply proto.ACLReply
	if err := v.call(proto.MGetACL, proto.ACLArgs{FID: v.fid}, &reply); err != nil {
		return fs.ACL{}, err
	}
	return reply.ACL, nil
}

// SetACL implements vfs.ACLVnode.
func (v *cvnode) SetACL(ctx *vfs.Context, acl fs.ACL) error {
	v.hlock()
	defer v.hunlock()
	var reply proto.ACLReply
	return v.call(proto.MSetACL, proto.ACLArgs{FID: v.fid, ACL: acl}, &reply)
}

// --- open and lock tokens (client extras beyond vfs.Vnode) ---

// OpenFile acquires an open token of the given subtype (one of the five
// §5.2 open modes) and counts the open. The token is kept — and a
// revocation refused — until the matching CloseFile (§5.3).
func (v *cvnode) OpenFile(mode token.Type) error {
	if mode&token.OpenTypes == 0 || mode&^token.OpenTypes != 0 {
		return fmt.Errorf("%w: not an open mode", fs.ErrInvalid)
	}
	v.hlock()
	defer v.hunlock()
	v.llock()
	have := v.hasTokenLocked(mode, token.WholeFile)
	if have {
		v.open[mode]++
		v.lunlock()
		return nil
	}
	v.lunlock()
	var reply proto.GetTokensReply
	err := v.call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  v.fid,
		Want: proto.TokenRequest{Types: mode},
	}, &reply)
	if err != nil {
		return err
	}
	v.llock()
	v.addTokensLocked(reply.Grants)
	v.open[mode]++
	v.lunlock()
	return nil
}

// CloseFile drops one open count; the token itself stays cached until
// revoked.
func (v *cvnode) CloseFile(mode token.Type) {
	v.llock()
	if v.open[mode] > 0 {
		v.open[mode]--
	}
	v.lunlock()
}

// LockRange takes a byte-range lock. With a lock token the client could
// grant it locally; this implementation always asks the server (the
// paper's fallback path) and uses the token only to keep its lock state
// revocation-aware.
func (v *cvnode) LockRange(rng token.Range, write bool) error {
	v.hlock()
	defer v.hunlock()
	var reply proto.LockReply
	err := v.call(proto.MSetLock, proto.LockArgs{FID: v.fid, Range: rng, Write: write}, &reply)
	if err != nil {
		return err
	}
	v.llock()
	v.lockCount++
	v.lunlock()
	return nil
}

// UnlockRange releases a byte-range lock.
func (v *cvnode) UnlockRange(rng token.Range, write bool) error {
	v.hlock()
	defer v.hunlock()
	var reply proto.LockReply
	err := v.call(proto.MReleaseLock, proto.LockArgs{FID: v.fid, Range: rng, Write: write}, &reply)
	if err != nil {
		return err
	}
	v.llock()
	if v.lockCount > 0 {
		v.lockCount--
	}
	v.lunlock()
	return nil
}
