package client

import (
	"fmt"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/locking"
	"decorum/internal/server"
)

// wireBenchCell is benchCell with a buffer pool big enough (16 MiB)
// that the 64-chunk working set stays resident server-side: these
// benchmarks isolate the wire format, so the episode layer must not
// turn into a device-bound bottleneck that flattens both lanes.
func wireBenchCell(b *testing.B) *cell {
	b.Helper()
	dev := blockdev.NewMem(4096, 16384)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 512, PoolSize: 4096})
	if err != nil {
		b.Fatal(err)
	}
	vol, err := agg.CreateVolume("user.test", 0)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Options{Name: cellAddr}, agg)
	locate := NewStaticLocator()
	locate.Add(vol.ID, "user.test", cellAddr)
	return &cell{
		t: b, srv: srv, agg: agg, vol: vol,
		locate: locate, order: locking.New(),
	}
}

// BenchmarkWireFormat pits the two bulk-data encodings against each
// other at zero injected latency, so the numbers isolate per-frame CPU
// and copies rather than round-trip hiding: lane=gob forces every
// FetchData/StoreData through the reflective gob codec (the old wire
// format), lane=binary rides the framed lane — fixed-layout headers,
// zero-copy receive into the chunk store, and multi-chunk flushes
// coalesced into scatter/gather StoreBatch frames.
func BenchmarkWireFormat(b *testing.B) {
	for _, lane := range []struct {
		name    string
		disable bool
	}{{"gob", true}, {"binary", false}} {
		for _, chunks := range []int64{1, 8, 64} {
			c := wireBenchCell(b)
			cl := c.clientOpts("bench", func(o *Options) {
				o.RPC.DisableBinaryLane = lane.disable
				// Deep read-ahead on both lanes: scans should saturate the
				// wire, not wait on prefetch depth.
				o.ReadAhead = 8
			})
			v := benchMakeFile(b, c, cl, fmt.Sprintf("wire-%s-%d", lane.name, chunks), chunks)
			buf := make([]byte, ChunkSize)

			b.Run(fmt.Sprintf("op=scan/lane=%s/chunks=%d", lane.name, chunks), func(b *testing.B) {
				b.SetBytes(chunks * ChunkSize)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					benchResetScan(cl, v)
					b.StartTimer()
					benchScan(b, v, chunks, buf)
				}
			})

			b.Run(fmt.Sprintf("op=writeback/lane=%s/chunks=%d", lane.name, chunks), func(b *testing.B) {
				payload := make([]byte, ChunkSize)
				b.SetBytes(chunks * ChunkSize)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := int64(0); j < chunks; j++ {
						if _, err := v.Write(ctx(), payload, j*ChunkSize); err != nil {
							b.Fatal(err)
						}
					}
					if err := v.Fsync(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
