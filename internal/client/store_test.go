package client

import (
	"os"
	"testing"

	"decorum/internal/fs"
)

func chunkFID(v uint64) fs.FID {
	return fs.FID{Volume: fs.VolumeID(v), Vnode: 1, Uniq: 1}
}

func fill(b byte) []byte {
	p := make([]byte, ChunkSize)
	for i := range p {
		p[i] = b
	}
	return p
}

// testStoreLRU exercises the shared capacity contract: eviction in LRU
// order, touch-on-read, and the eviction counter.
func testStoreLRU(t *testing.T, s ChunkStore) {
	t.Helper()
	fid := chunkFID(1)
	// Capacity is 3. Insert 3 chunks, touch chunk 0, insert a 4th: the
	// least recently used is now chunk 1.
	for i := int64(0); i < 3; i++ {
		s.Put(fid, i, fill(byte(i)))
	}
	if _, ok := s.Get(fid, 0); !ok {
		t.Fatal("chunk 0 missing before eviction")
	}
	s.Put(fid, 3, fill(3))
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions())
	}
	if _, ok := s.Get(fid, 1); ok {
		t.Fatal("chunk 1 should have been evicted (LRU)")
	}
	for _, want := range []int64{0, 2, 3} {
		b, ok := s.Get(fid, want)
		if !ok {
			t.Fatalf("chunk %d missing after eviction", want)
		}
		if b[0] != byte(want) {
			t.Fatalf("chunk %d holds %d", want, b[0])
		}
	}
	// Re-putting a cached chunk must not evict.
	s.Put(fid, 3, fill(30))
	if s.Evictions() != 1 {
		t.Fatalf("Evictions after overwrite = %d, want 1", s.Evictions())
	}
	// Drop + DropFile free space without counting as evictions.
	s.Drop(fid, 3)
	s.DropFile(fid)
	if s.Evictions() != 1 {
		t.Fatalf("Evictions after drops = %d, want 1", s.Evictions())
	}
	if _, ok := s.Get(fid, 0); ok {
		t.Fatal("DropFile left a chunk behind")
	}
}

func TestMemStoreLRU(t *testing.T) {
	testStoreLRU(t, NewMemStoreSize(3))
}

func TestDiskStoreLRU(t *testing.T) {
	s, err := NewDiskStoreSize(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	testStoreLRU(t, s)
}

// TestDiskStoreEvictionRemovesFile checks the disk cache actually frees
// the native-FS space it evicts.
func TestDiskStoreEvictionRemovesFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStoreSize(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	fid := chunkFID(1)
	s.Put(fid, 0, fill(0))
	path0 := s.path(fid, 0)
	if _, err := os.Stat(path0); err != nil {
		t.Fatalf("cache file missing after Put: %v", err)
	}
	s.Put(fid, 1, fill(1))
	if _, err := os.Stat(path0); !os.IsNotExist(err) {
		t.Fatalf("evicted cache file still on disk (err=%v)", err)
	}
}
