package client

import (
	"os"
	"testing"

	"decorum/internal/fs"
)

func chunkFID(v uint64) fs.FID {
	return fs.FID{Volume: fs.VolumeID(v), Vnode: 1, Uniq: 1}
}

func fill(b byte) []byte {
	p := make([]byte, ChunkSize)
	for i := range p {
		p[i] = b
	}
	return p
}

// testStoreLRU exercises the shared capacity contract: eviction in LRU
// order, touch-on-read, and the eviction counter.
func testStoreLRU(t *testing.T, s ChunkStore) {
	t.Helper()
	fid := chunkFID(1)
	// Capacity is 3. Insert 3 chunks, touch chunk 0, insert a 4th: the
	// least recently used is now chunk 1.
	for i := int64(0); i < 3; i++ {
		s.Put(fid, i, fill(byte(i)))
	}
	if _, ok := s.Get(fid, 0); !ok {
		t.Fatal("chunk 0 missing before eviction")
	}
	s.Put(fid, 3, fill(3))
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions())
	}
	if _, ok := s.Get(fid, 1); ok {
		t.Fatal("chunk 1 should have been evicted (LRU)")
	}
	for _, want := range []int64{0, 2, 3} {
		b, ok := s.Get(fid, want)
		if !ok {
			t.Fatalf("chunk %d missing after eviction", want)
		}
		if b[0] != byte(want) {
			t.Fatalf("chunk %d holds %d", want, b[0])
		}
	}
	// Re-putting a cached chunk must not evict.
	s.Put(fid, 3, fill(30))
	if s.Evictions() != 1 {
		t.Fatalf("Evictions after overwrite = %d, want 1", s.Evictions())
	}
	// Drop + DropFile free space without counting as evictions.
	s.Drop(fid, 3)
	s.DropFile(fid)
	if s.Evictions() != 1 {
		t.Fatalf("Evictions after drops = %d, want 1", s.Evictions())
	}
	if _, ok := s.Get(fid, 0); ok {
		t.Fatal("DropFile left a chunk behind")
	}
}

func TestMemStoreLRU(t *testing.T) {
	testStoreLRU(t, NewMemStoreSize(3))
}

func TestDiskStoreLRU(t *testing.T) {
	s, err := NewDiskStoreSize(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	testStoreLRU(t, s)
}

// TestDiskStoreEvictionRemovesFile checks the disk cache actually frees
// the native-FS space it evicts.
func TestDiskStoreEvictionRemovesFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStoreSize(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	fid := chunkFID(1)
	s.Put(fid, 0, fill(0))
	path0 := s.path(fid, 0)
	if _, err := os.Stat(path0); err != nil {
		t.Fatalf("cache file missing after Put: %v", err)
	}
	s.Put(fid, 1, fill(1))
	if _, err := os.Stat(path0); !os.IsNotExist(err) {
		t.Fatalf("evicted cache file still on disk (err=%v)", err)
	}
}

// testStorePinning exercises the pin contract on a capacity-3 store:
// pinned chunks are skipped by LRU eviction, a fully pinned cache
// overcommits instead of discarding data, pins are counted, and
// unpinning restores normal eviction.
func testStorePinning(t *testing.T, s ChunkStore) {
	t.Helper()
	fid := chunkFID(1)
	for i := int64(0); i < 3; i++ {
		s.Put(fid, i, fill(byte(i)))
	}
	// LRU back-to-front is 0, 1, 2. Pin the two oldest: the next insert
	// must skip them and evict chunk 2 instead.
	s.Pin(fid, 0)
	s.Pin(fid, 1)
	s.Put(fid, 3, fill(3))
	if _, ok := s.Get(fid, 2); ok {
		t.Fatal("eviction took a pinned chunk's place: chunk 2 survived")
	}
	for _, want := range []int64{0, 1, 3} {
		if _, ok := s.Get(fid, want); !ok {
			t.Fatalf("chunk %d missing (pinned or fresh)", want)
		}
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions())
	}
	// All three cached chunks pinned: the cache must overcommit.
	s.Pin(fid, 3)
	s.Put(fid, 4, fill(4))
	for _, want := range []int64{0, 1, 3, 4} {
		if _, ok := s.Get(fid, want); !ok {
			t.Fatalf("chunk %d missing while cache fully pinned", want)
		}
	}
	if s.Evictions() != 1 {
		t.Fatalf("Evictions with all pinned = %d, want 1", s.Evictions())
	}
	// Unpinning lets the next insert restore the bound: both unpinned
	// chunks (0, then 4) go.
	s.Unpin(fid, 0)
	s.Put(fid, 5, fill(5))
	for _, gone := range []int64{0, 4} {
		if _, ok := s.Get(fid, gone); ok {
			t.Fatalf("chunk %d survived after unpin", gone)
		}
	}
	if s.Evictions() != 3 {
		t.Fatalf("Evictions after unpin = %d, want 3", s.Evictions())
	}
	// Pins are counted: two pins need two unpins.
	s.Pin(fid, 1) // second pin on 1
	s.Unpin(fid, 1)
	s.Put(fid, 6, fill(6))
	if _, ok := s.Get(fid, 1); !ok {
		t.Fatal("chunk 1 evicted while still holding one pin")
	}
	if _, ok := s.Get(fid, 5); ok {
		t.Fatal("chunk 5 should have been the eviction victim")
	}
	// Unmatched Unpin is a no-op.
	s.Unpin(fid, 99)
	s.Unpin(fid, 1)
	s.Unpin(fid, 3)
}

func TestMemStorePinning(t *testing.T) {
	testStorePinning(t, NewMemStoreSize(3))
}

func TestDiskStorePinning(t *testing.T) {
	s, err := NewDiskStoreSize(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	testStorePinning(t, s)
}
