package client

import (
	"fmt"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/locking"
	"decorum/internal/server"
)

// benchLatency is the simulated per-call RPC latency for the pipeline
// benchmarks: large enough to dominate the in-process server's work, so
// the numbers measure how many round-trips the client overlaps.
const benchLatency = 3 * time.Millisecond

// benchCell is newCell over a 64 MiB device: the goroutines= variants
// keep up to 16 files of 8 chunks resident, which outgrows the 4 MiB
// aggregate the correctness tests use.
func benchCell(b *testing.B) *cell {
	b.Helper()
	dev := blockdev.NewMem(4096, 16384)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 256, PoolSize: 512})
	if err != nil {
		b.Fatal(err)
	}
	vol, err := agg.CreateVolume("user.test", 0)
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Options{Name: cellAddr}, agg)
	locate := NewStaticLocator()
	locate.Add(vol.ID, "user.test", cellAddr)
	return &cell{
		t: b, srv: srv, agg: agg, vol: vol,
		locate: locate, order: locking.New(),
	}
}

// benchPipelineClient builds a latency-injected client with the given
// read-ahead depth (0 disables read-ahead entirely).
func benchPipelineClient(b *testing.B, c *cell, readAhead int) *Client {
	b.Helper()
	if readAhead == 0 {
		readAhead = -1
	}
	return c.clientOpts("bench", func(o *Options) {
		o.ReadAhead = readAhead
		o.RPC.Latency = benchLatency
	})
}

// benchMakeFile creates an n-chunk file through cl and flushes it.
func benchMakeFile(b *testing.B, c *cell, cl *Client, name string, chunks int64) *cvnode {
	b.Helper()
	root := c.mount(cl)
	f, err := root.Create(ctx(), name, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, ChunkSize)
	for i := int64(0); i < chunks; i++ {
		if _, err := f.Write(ctx(), payload, i*ChunkSize); err != nil {
			b.Fatal(err)
		}
	}
	v := f.(*cvnode)
	if err := v.Fsync(); err != nil {
		b.Fatal(err)
	}
	return v
}

// benchResetScan evicts a file's chunks and rewinds its scan cursor so
// the next sequential pass starts cold. It first waits out straggling
// prefetches so a late Put cannot re-populate the store after the drop
// and let one iteration warm the next.
func benchResetScan(cl *Client, v *cvnode) {
	for cl.prefetchInflight.Load() > 0 {
		time.Sleep(50 * time.Microsecond)
	}
	cl.store.DropFile(v.fid)
	v.llock()
	v.seqNext, v.raNext = 0, 0
	v.lunlock()
}

// benchScan reads the whole file sequentially in chunk-sized reads.
func benchScan(b *testing.B, v *cvnode, chunks int64, buf []byte) {
	for i := int64(0); i < chunks; i++ {
		if _, err := v.Read(ctx(), buf, i*ChunkSize); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialScan measures sequential-read throughput under
// simulated RPC latency: the K= variants sweep the read-ahead depth on
// one scanning goroutine (K=0 is one synchronous round-trip per chunk —
// the pre-pipeline client), and the goroutines= variants scan
// independent files concurrently at the default depth.
func BenchmarkSequentialScan(b *testing.B) {
	const chunks = 32
	for _, k := range []int{0, 1, 4, 8} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			c := benchCell(b)
			cl := benchPipelineClient(b, c, k)
			v := benchMakeFile(b, c, cl, "scan", chunks)
			buf := make([]byte, ChunkSize)
			b.SetBytes(chunks * ChunkSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				benchResetScan(cl, v)
				b.StartTimer()
				benchScan(b, v, chunks, buf)
			}
		})
	}
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			const perFile = 8
			c := benchCell(b)
			cl := benchPipelineClient(b, c, DefaultReadAhead)
			files := make([]*cvnode, g)
			for i := range files {
				files[i] = benchMakeFile(b, c, cl, fmt.Sprintf("scan%d", i), perFile)
			}
			b.SetBytes(int64(g) * perFile * ChunkSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for _, v := range files {
					benchResetScan(cl, v)
				}
				b.StartTimer()
				done := make(chan struct{}, g)
				for _, v := range files {
					go func(v *cvnode) {
						benchScan(b, v, perFile, make([]byte, ChunkSize))
						done <- struct{}{}
					}(v)
				}
				for range files {
					<-done
				}
			}
		})
	}
}

// BenchmarkVerifiedScan measures what end-to-end chunk verification
// costs on a cache-cold sequential scan: the server attaches each
// chunk's recorded leaf hash to the fetch reply and the client
// re-hashes the payload before cache install. verify=off is the C10e
// ablation (Options.DisableVerify); no injected latency, so the delta
// is the SHA-256 work itself.
func BenchmarkVerifiedScan(b *testing.B) {
	const chunks = 32
	for _, disable := range []bool{false, true} {
		name := "verify=on"
		if disable {
			name = "verify=off"
		}
		b.Run(name, func(b *testing.B) {
			c := benchCell(b)
			cl := c.clientOpts("bench", func(o *Options) {
				o.DisableVerify = disable
			})
			v := benchMakeFile(b, c, cl, "scan", chunks)
			buf := make([]byte, ChunkSize)
			b.SetBytes(chunks * ChunkSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				benchResetScan(cl, v)
				b.StartTimer()
				benchScan(b, v, chunks, buf)
			}
			b.StopTimer()
			if !disable && cl.verifiedChunks.Load() == 0 {
				b.Fatal("verify=on scan verified nothing")
			}
			if cl.hashMismatches.Load() != 0 {
				b.Fatal("clean scan produced hash mismatches")
			}
		})
	}
}

// BenchmarkWriteBack measures Fsync throughput: each goroutine dirties
// 8 chunks of its own file and flushes them through the client's shared
// write-back pool under simulated RPC latency.
func BenchmarkWriteBack(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			const perFile = 8
			c := benchCell(b)
			cl := benchPipelineClient(b, c, DefaultReadAhead)
			files := make([]*cvnode, g)
			for i := range files {
				files[i] = benchMakeFile(b, c, cl, fmt.Sprintf("wb%d", i), perFile)
			}
			payload := make([]byte, ChunkSize)
			b.SetBytes(int64(g) * perFile * ChunkSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				done := make(chan error, g)
				for _, v := range files {
					go func(v *cvnode) {
						for j := int64(0); j < perFile; j++ {
							if _, err := v.Write(ctx(), payload, j*ChunkSize); err != nil {
								done <- err
								return
							}
						}
						done <- v.Fsync()
					}(v)
				}
				for range files {
					if err := <-done; err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
