package client

import (
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/token"
)

// handleRevoke serves cb.Revoke (§5.3): a server asking this client to
// stop using a token. The handler runs on the association's reserved
// worker pool (the server marks revocations PriorityRevoke).
//
// Ordering (§6.3): the revocation may name a token the client has not
// processed yet — the RPC that granted it is still in flight. In that
// case the handler waits (on the vnode's condition variable) until no RPC
// is in flight for the vnode, then decides: the per-file serialization
// counter makes the outcome identical to the server's order.
func (sc *serverConn) handleRevoke(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
	var args proto.RevokeArgs
	if err := rpc.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	// Store-backs go out on the peer the revocation arrived on: a
	// revocation is server-driven on one specific association, which may
	// not be sc's current peer while a reconnect is settling.
	returned := sc.revoke(ctx.Peer, args)
	sc.c.revocations.Inc()
	return rpc.Marshal(proto.RevokeReply{Returned: returned})
}

func (sc *serverConn) revoke(peer *rpc.Peer, args proto.RevokeArgs) bool {
	// Resolve the volume's striping layout BEFORE taking any vnode lock
	// (the lookup may RPC to the VLDB): a striped file's dirty spans
	// must store back to the stripe members, never to the primary. If
	// the layout cannot be resolved the revocation is refused — shipping
	// striped bytes to the wrong server would corrupt the file.
	lay, layErr := sc.c.layoutFor(args.Token.FID.Volume)
	if layErr != nil {
		return false
	}
	v := sc.c.lookupVnode(args.Token.FID)
	if v == nil {
		// Nothing cached for the file: the guarantee is trivially
		// returnable. But the grant may still be in flight on the RPC
		// that will create the vnode (§6.3) — leave a tombstone so the
		// merge drops it instead of recording a revoked token.
		sc.noteRevokedAhead(args.Token.FID, args.Serial)
		return true
	}
	v.llock()
	// Wait out in-flight RPCs when the token is unknown: its granting
	// reply may not have been processed yet (§6.3's first example).
	for {
		if _, known := v.toks[args.Token.ID]; known {
			break
		}
		if v.rpcs == 0 {
			// No RPC in flight on this vnode and still unknown: the grant
			// was never received, already returned — or riding an RPC
			// that names a different vnode (a lookup on the directory
			// granting the child's tokens, §6.3). Record the revocation
			// serial so such a grant is dead on arrival.
			if args.Serial > v.serial {
				v.serial = args.Serial
			}
			if args.Serial > v.revokedSerial {
				v.revokedSerial = args.Serial
			}
			v.lunlock()
			return true
		}
		v.cond.Wait()
	}
	tok := v.toks[args.Token.ID]

	// A token backing an open file or held lock is kept (§5.3: "the
	// client may elect not to return the token at all; this is the
	// normal action if the client has already locked or opened the
	// file").
	if tok.Types&token.OpenTypes != 0 {
		for mode, n := range v.open {
			if n > 0 && tok.Types&mode != 0 {
				v.lunlock()
				return false
			}
		}
	}
	if tok.Types&token.LockTypes != 0 && v.lockCount > 0 {
		v.lunlock()
		return false
	}

	// Write-data token: store dirty spans in the revoked range back
	// first (§5.3: "the client must write back any status or data that
	// it has modified, before returning the token"). The store-back is
	// the §6.3 special call: revocation priority, bypassing the server
	// vnode lock its requester holds.
	var stores []proto.StoreDataArgs
	var stripeJobs []flushJob
	if tok.Types&token.DataWrite != 0 {
		if lay != nil {
			// Striped: wait out in-flight flush jobs first — they are
			// mid-parity-RMW on the members, and a concurrent store of the
			// same row would corrupt parity. They run against member
			// associations, not this one, so they always drain.
			for v.flushing > 0 {
				v.cond.Wait()
			}
		}
		for idx, span := range v.dirty {
			lo := idx*ChunkSize + int64(span.lo)
			hi := idx*ChunkSize + int64(span.hi)
			if !(token.Range{Start: lo, End: hi}).Overlaps(tok.Range) {
				continue
			}
			if chunk, ok := sc.c.store.Get(v.fid, idx); ok {
				if hi > v.attr.Length {
					hi = v.attr.Length
				}
				if lo < hi {
					data := append([]byte(nil), chunk[lo-idx*ChunkSize:hi-idx*ChunkSize]...)
					if lay != nil {
						stripeJobs = append(stripeJobs, flushJob{idx: idx, off: lo, data: data})
					} else {
						stores = append(stores, proto.StoreDataArgs{
							FID:            v.fid,
							Offset:         lo,
							Data:           data,
							FromRevocation: true,
						})
					}
				}
			}
			delete(v.dirty, idx)
			// The span's bytes (if any) were copied above; release the
			// dirty entry's pin.
			sc.c.store.Unpin(v.fid, idx)
		}
	}
	statusDirty := tok.Types&token.StatusWrite != 0 && v.dirtyStatus
	var statusStore *proto.StoreStatusArgs
	if statusDirty && len(stores) == 0 {
		// Data stores already carry the length; an explicit status
		// store-back is only needed when only status is dirty.
		length := v.attr.Length
		mtime := v.attr.Mtime
		statusStore = &proto.StoreStatusArgs{
			FID:            v.fid,
			Change:         proto.AttrChangeOf(length, mtime),
			FromRevocation: true,
		}
	}
	v.lunlock()

	for _, st := range stores {
		var reply proto.StoreDataReply
		if err := proto.DecodeErr(peer.CallPriority(proto.MStoreData, st, &reply, rpc.PriorityRevoke)); err != nil {
			// The store-back failed; those bytes are lost to the
			// revocation. The answer is still "returned", so the token
			// must be forgotten below like any other — keeping the
			// record would leave this client reclaiming a token the
			// server already dropped after a restart.
			break
		}
		sc.c.storeBacks.Inc()
		v.llock()
		v.mergeLocked(reply.Attr, reply.Serial)
		v.lunlock()
	}
	// Striped spans store back at normal priority: they go to the stripe
	// MEMBERS, whose fid locks are free — the primary's vnode lock (held
	// by this revocation's requester) is never taken by a member store.
	// The dirty status that accompanies them rides the FromRevocation
	// status store to the primary below.
	for _, j := range stripeJobs {
		if err := v.stripeStoreSpan(lay, j, nil); err != nil {
			// Same policy as above: the bytes are lost to the revocation,
			// the token is still returned.
			break
		}
		sc.c.storeBacks.Inc()
	}
	if statusStore != nil {
		var reply proto.StoreStatusReply
		if err := proto.DecodeErr(peer.CallPriority(proto.MStoreStatus, *statusStore, &reply, rpc.PriorityRevoke)); err == nil {
			v.llock()
			v.mergeLocked(reply.Attr, reply.Serial)
			v.lunlock()
		}
	}

	// Drop the cached state the token covered and forget the token.
	v.llock()
	delete(v.toks, args.Token.ID)
	if tok.Types&(token.StatusRead|token.StatusWrite) != 0 &&
		!v.hasTokenLocked(token.StatusRead, token.WholeFile) {
		v.attrValid = false
		v.dirtyStatus = false
	}
	if tok.Types&(token.DataRead|token.DataWrite) != 0 {
		first := tok.Range.Start / ChunkSize
		last := (tok.Range.End + ChunkSize - 1) / ChunkSize
		if tok.Range == token.WholeFile {
			v.discardPrefetchedLocked(0, -1)
			sc.c.store.DropFile(v.fid)
			v.invalidateDirLocked()
		} else {
			v.discardPrefetchedLocked(first, last)
			for idx := first; idx < last; idx++ {
				if !v.hasTokenLocked(token.DataRead, chunkRange(idx)) {
					sc.c.store.Drop(v.fid, idx)
				}
			}
		}
		// Directory caches ride on the data token.
		v.invalidateDirLocked()
	}
	if args.Serial > v.serial {
		v.serial = args.Serial
	}
	if args.Serial > v.revokedSerial {
		v.revokedSerial = args.Serial
	}
	v.cond.Broadcast()
	v.lunlock()
	return true
}
