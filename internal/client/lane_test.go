package client

import (
	"bytes"
	"testing"

	"decorum/internal/rpc"
	"decorum/internal/vfs"
)

// laneBody builds a deterministic multi-chunk payload whose bytes encode
// their own offset, so any misassembled frame section shows up as a
// content mismatch rather than just a length error.
func laneBody(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*7 + i/ChunkSize)
	}
	return p
}

// writeFsync creates name under root, writes body, and flushes it back.
func writeFsync(t *testing.T, root vfs.Vnode, name string, body []byte) {
	t.Helper()
	f, err := root.Create(ctx(), name, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(ctx(), body, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.(*cvnode).Fsync(); err != nil {
		t.Fatal(err)
	}
}

// laneRead reads length bytes of name through a client mount.
func laneRead(t *testing.T, root vfs.Vnode, name string, length int) []byte {
	t.Helper()
	f, err := root.Lookup(ctx(), name)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, length)
	n, err := f.Read(ctx(), got, 0)
	if err != nil {
		t.Fatal(err)
	}
	return got[:n]
}

// TestWireLaneEndToEnd: with lane-capable peers on both sides, a
// multi-chunk write-back and a cold read on a second client move their
// bulk payloads over the binary lane and stay byte-identical.
func TestWireLaneEndToEnd(t *testing.T) {
	c := newCell(t)
	w := c.client("lane-writer")
	r := c.client("lane-reader")

	body := laneBody(5*ChunkSize + 777)
	writeFsync(t, c.mount(w), "lane.bin", body)

	if got := c.serverBytes("lane.bin", len(body)); !bytes.Equal(got, body) {
		t.Fatal("server content differs from what the client wrote")
	}

	got := laneRead(t, c.mount(r), "lane.bin", len(body))
	if !bytes.Equal(got, body) {
		t.Fatal("read-back content differs across clients")
	}

	for _, cl := range []*Client{w, r} {
		st := cl.RPCStats()
		if st.BinSent == 0 || st.BinReceived == 0 {
			t.Fatalf("%s: bulk traffic never used the binary lane: %+v", cl.opts.Name, st)
		}
		if st.LaneFallbacks != 0 {
			t.Fatalf("%s: unexpected lane fallbacks: %+v", cl.opts.Name, st)
		}
		if st.WireBytesOut == 0 || st.WireBytesIn == 0 {
			t.Fatalf("%s: wire byte counters never moved: %+v", cl.opts.Name, st)
		}
	}
	c.checkOrder()
}

// TestWireLaneMixedVersion: a lane-capable client against a gob-only
// file server (an old peer that never answers the hello). Every bulk
// call must fall back to gob — counted, not fatal — and the data must
// come back byte-identical to the lane-on path.
func TestWireLaneMixedVersion(t *testing.T) {
	c := newCellRPC(t, rpc.Options{DisableBinaryLane: true})
	w := c.client("mixed-writer")

	body := laneBody(4*ChunkSize + 123)
	writeFsync(t, c.mount(w), "mixed.bin", body)

	if got := c.serverBytes("mixed.bin", len(body)); !bytes.Equal(got, body) {
		t.Fatal("server content differs from what the client wrote")
	}
	got := laneRead(t, c.mount(w), "mixed.bin", len(body))
	if !bytes.Equal(got, body) {
		t.Fatal("read-back content differs on the gob fallback path")
	}

	st := w.RPCStats()
	if st.BinSent != 0 {
		t.Fatalf("binary frames sent to a gob-only server: %+v", st)
	}
	if st.LaneFallbacks == 0 {
		t.Fatalf("no lane fallbacks recorded against a gob-only server: %+v", st)
	}
	c.checkOrder()
}

// TestWireLaneGobOnlyClient is the converse: an old client (lane off)
// against a lane-capable server; nothing negotiates and gob carries
// the traffic unchanged.
func TestWireLaneGobOnlyClient(t *testing.T) {
	c := newCell(t)
	w := c.clientOpts("old-writer", func(o *Options) { o.RPC.DisableBinaryLane = true })

	body := laneBody(2*ChunkSize + 9)
	writeFsync(t, c.mount(w), "old.bin", body)

	if got := c.serverBytes("old.bin", len(body)); !bytes.Equal(got, body) {
		t.Fatal("server content differs from what the old client wrote")
	}
	if st := w.RPCStats(); st.BinSent != 0 || st.BinReceived != 0 {
		t.Fatalf("binary frames moved for a lane-disabled client: %+v", st)
	}
	c.checkOrder()
}
