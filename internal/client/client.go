// Package client implements the DEcorum client — the cache manager (§4 of
// the paper) — in its four layers:
//
//   - the resource layer (§4.1): RPC associations to file servers and the
//     volume-location cache;
//   - the cache layer (§4.2): status and chunked data caching, disk-backed
//     or in-memory (diskless clients), kept consistent with typed tokens;
//   - the directory layer (§4.3): per-lookup result caching, valid while
//     the client holds the directory's data-read token (the client cannot
//     assume it understands every server's directory format, so it caches
//     individual lookups, not raw pages);
//   - the vnode layer (§4.4): the vfs.Vnode implementation applications
//     use, indistinguishable from a local file system.
//
// Synchronization follows §6: each client vnode has a high-level lock
// serializing whole operations and a low-level lock protecting vnode
// state. The low-level lock is NEVER held across a client-to-server RPC;
// after each RPC the client retakes it and merges the reply with any
// token revocations that ran concurrently, strictly by the per-file
// serialization counter the server stamps on every reply (§6.2, §6.3).
package client

import (
	"container/list"
	"fmt"
	"net"
	"sync"
	"time"

	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/locking"
	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/stripe"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// Locator resolves volumes to server addresses — the interface the volume
// location database fills cell-wide (§3.4); tests use a StaticLocator.
type Locator interface {
	// VolumeAddr returns the server address holding the volume.
	VolumeAddr(id fs.VolumeID) (string, error)
	// VolumeByName resolves a volume name to (id, server address).
	VolumeByName(name string) (fs.VolumeID, string, error)
}

// StaticLocator is a fixed volume→address table.
type StaticLocator struct {
	mu      sync.Mutex
	addrs   map[fs.VolumeID]string         // guarded by mu
	names   map[string]fs.VolumeID         // guarded by mu
	layouts map[fs.VolumeID]*stripe.Layout // guarded by mu
}

// NewStaticLocator returns an empty table.
func NewStaticLocator() *StaticLocator {
	return &StaticLocator{
		addrs:   make(map[fs.VolumeID]string),
		names:   make(map[string]fs.VolumeID),
		layouts: make(map[fs.VolumeID]*stripe.Layout),
	}
}

// SetLayout declares a volume striped (tests and tools; the VLDB
// serves layouts cell-wide).
func (l *StaticLocator) SetLayout(id fs.VolumeID, lay *stripe.Layout) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.layouts[id] = lay
}

// VolumeLayout implements LayoutLocator.
func (l *StaticLocator) VolumeLayout(id fs.VolumeID) (*stripe.Layout, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.layouts[id], nil
}

// Add registers a volume.
func (l *StaticLocator) Add(id fs.VolumeID, name, addr string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.addrs[id] = addr
	if name != "" {
		l.names[name] = id
	}
}

// VolumeAddr implements Locator.
func (l *StaticLocator) VolumeAddr(id fs.VolumeID) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	addr, ok := l.addrs[id]
	if !ok {
		return "", fmt.Errorf("%w: volume %d has no location", fs.ErrNotExist, id)
	}
	return addr, nil
}

// VolumeByName implements Locator.
func (l *StaticLocator) VolumeByName(name string) (fs.VolumeID, string, error) {
	l.mu.Lock()
	id, ok := l.names[name]
	l.mu.Unlock()
	if !ok {
		return 0, "", fmt.Errorf("%w: volume %q has no location", fs.ErrNotExist, name)
	}
	addr, err := l.VolumeAddr(id)
	return id, addr, err
}

// Options configures a Client.
type Options struct {
	// Name labels the client (the paper's workstation hostname).
	Name string
	// User is the identity operations run as.
	User fs.UserID
	// Groups are the user's group memberships.
	Groups []fs.GroupID
	// Dial reaches servers; nil uses net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Locate resolves volumes to servers.
	Locate Locator
	// Credentials supplies the RPC authenticator per service; nil runs
	// unauthenticated.
	Credentials func(addr string) (*proto.ClientAuthenticator, error)
	// CacheDir, when set, uses a disk-backed data cache; empty uses the
	// in-memory (diskless, §4.2) cache.
	CacheDir string
	// CacheChunks bounds the data cache (chunks, 64 KiB each); zero uses
	// DefaultCacheChunks. Dirty chunks are pinned and may push the cache
	// past this bound temporarily.
	CacheChunks int
	// ReadAhead is how many chunks the client prefetches once a vnode's
	// reads turn sequential (§4.2's chunked transfer, pipelined). Zero
	// uses DefaultReadAhead; negative disables read-ahead.
	ReadAhead int
	// WriteBackWorkers bounds the client's concurrent MStoreData calls
	// (flush write-back pool). Zero uses DefaultWriteBackWorkers.
	WriteBackWorkers int
	// RPC configures associations (latency injection, worker pools).
	RPC rpc.Options
	// Clock stamps locally cached attribute updates.
	Clock func() int64
	// WholeFileDataTokens disables byte-range data tokens: every data
	// token covers the whole file. This is the DESIGN.md ablation that
	// reproduces the AFS granularity pathology (experiment C4) inside
	// the DEcorum client.
	WholeFileDataTokens bool
	// FlushInterval starts a background write-back of dirty cached data
	// (the client-side analogue of §2.2's 30-second batch commit). Zero
	// disables it: dirty data then leaves only on Fsync or revocation.
	FlushInterval time.Duration
	// MaxVnodes bounds the client vnode table: once exceeded, clean idle
	// vnodes are evicted in LRU order (token-less ones first; clean
	// token-holders return their tokens voluntarily). Zero uses
	// DefaultMaxVnodes; negative disables eviction.
	MaxVnodes int
	// RecoveryTimeout bounds how long an operation blocks while its
	// server association is being recovered (reconnect + reclaim +
	// replay, or a post-restart grace window) before failing with the
	// retryable ErrDisconnected. Zero uses DefaultRecoveryTimeout.
	RecoveryTimeout time.Duration
	// ReconnectBackoff is the initial reconnect delay; attempts back off
	// exponentially from here, capped at 1s. Zero uses
	// DefaultReconnectBackoff.
	ReconnectBackoff time.Duration
	// DisableVerify turns off end-to-end chunk verification: fetched
	// chunks are installed in the cache without checking the server's
	// leaf hash. The integrity ablation (experiment C10e) measures the
	// verification overhead through this switch; production clients
	// leave it off.
	DisableVerify bool
	// Order, when set, records lock acquisitions for hierarchy checking.
	Order *locking.Checker
	// Obs, when set, registers the client's cache counters (the
	// "client." family) and its RPC traffic into the shared registry;
	// it is also propagated to RPC.Metrics so every server association
	// records calls, bytes, latency, and trace spans there.
	Obs *obs.Registry
}

// DefaultReadAhead is the prefetch depth K used when Options.ReadAhead
// is zero: deep enough to hide one RPC round-trip behind four in-flight
// chunk fetches, shallow enough not to flood the association's worker
// pool.
const DefaultReadAhead = 4

// DefaultWriteBackWorkers bounds concurrent flush store-backs when
// Options.WriteBackWorkers is zero.
const DefaultWriteBackWorkers = 4

// DefaultMaxVnodes bounds the vnode table when Options.MaxVnodes is
// zero.
const DefaultMaxVnodes = 4096

// DefaultRecoveryTimeout is the association-recovery budget when
// Options.RecoveryTimeout is zero.
const DefaultRecoveryTimeout = 30 * time.Second

// DefaultReconnectBackoff is the initial reconnect delay when
// Options.ReconnectBackoff is zero.
const DefaultReconnectBackoff = 20 * time.Millisecond

// Client is one cache manager.
type Client struct {
	opts  Options
	store ChunkStore

	// Data-path pipelining (set once in New, then read-only):
	// readAhead is the resolved prefetch depth K (0 = disabled);
	// writeBackWorkers bounds concurrent MStoreData calls PER TARGET
	// SERVER (see storeGate — striped volumes flush to many servers at
	// once, and one slow member must not wedge the rest);
	// prefetchSem bounds prefetch goroutines — acquired with a
	// non-blocking try so a saturated pool degrades to plain demand
	// fetching instead of stalling reads; fetches single-flights
	// MFetchData per (FID, chunk) so demand reads and prefetches never
	// duplicate an RPC.
	readAhead        int
	writeBackWorkers int
	prefetchSem      chan struct{}
	fetches          *fetchTable

	// placement caches striping resolution (layouts, member roots and
	// objects); see stripe.go.
	placement placement

	// Recovery tuning (resolved once in New, then read-only).
	maxVnodes        int
	recoveryTimeout  time.Duration
	reconnectBackoff time.Duration

	mu         sync.Mutex
	conns      map[string]*serverConn   // guarded by mu
	vnodes     map[fs.FID]*cvnode       // guarded by mu
	vlru       *list.List               // guarded by mu; *cvnode, front = most recent
	storeGates map[string]chan struct{} // guarded by mu; per-target write-back gates
	done       chan struct{}            // set once in New
	closed     bool                     // guarded by mu

	// Cache-behaviour metrics (obs counters: atomic, no lock needed).
	// Stats() reads the same cells a registry sees after Instrument.
	attrHits         *obs.Counter
	attrMisses       *obs.Counter
	dataHits         *obs.Counter
	dataMisses       *obs.Counter
	localWrites      *obs.Counter
	storeBacks       *obs.Counter
	revocations      *obs.Counter
	lookupHits       *obs.Counter
	lookupMisses     *obs.Counter
	prefetchIssued   *obs.Counter
	prefetchHits     *obs.Counter
	prefetchWaste    *obs.Counter
	prefetchCancels  *obs.Counter
	prefetchInflight *obs.Gauge
	storeInflight    *obs.Gauge
	fetchNs          *obs.Histogram
	storeNs          *obs.Histogram

	// Striping metrics (the "stripe." family).
	fanoutFetches  *obs.Counter
	degradedReads  *obs.Counter
	degradedWrites *obs.Counter
	parityWrites   *obs.Counter
	reconstructNs  *obs.Histogram

	// End-to-end integrity (the "integrity." family): every verified
	// fetch, every mismatch, and the ledger of chunks currently known
	// bad (cleared when a re-fetch verifies).
	verifier       *integrity.Verifier
	verifiedChunks *obs.Counter
	hashMismatches *obs.Counter
	refetches      *obs.Counter
	verifyNs       *obs.Histogram

	// Recovery metrics (the "recovery." family client-side).
	reconnects       *obs.Counter
	reclaimedTokens  *obs.Counter
	reclaimConflicts *obs.Counter
	replayedBytes    *obs.Counter
	staleVnodes      *obs.Counter
	vnodeEvictions   *obs.Counter
	reconnectNs      *obs.Histogram
}

// Stats counts client-side cache behaviour (experiments C3, C5, C10).
type Stats struct {
	AttrCacheHits   uint64
	AttrCacheMisses uint64
	DataCacheHits   uint64 // chunk reads served locally
	DataCacheMisses uint64
	LocalWrites     uint64 // writes absorbed by the cache under a token
	StoreBacks      uint64 // chunks stored back (revocation or fsync)
	Revocations     uint64 // tokens revoked by servers
	LookupHits      uint64
	LookupMisses    uint64
	PrefetchIssued  uint64 // read-ahead MFetchData calls sent
	PrefetchHits    uint64 // demand reads served by a prefetched chunk
	PrefetchWaste   uint64 // prefetched chunks dropped before any read
	PrefetchCancels uint64 // prefetches abandoned on revoke/truncate

	VerifiedChunks uint64 // fetched chunks whose hash checked out
	HashMismatches uint64 // fetched chunks whose hash did not
	Refetches      uint64 // extra fetches issued after a mismatch

	Reconnects       uint64 // associations re-established after loss
	ReclaimedTokens  uint64 // tokens re-established by reclaim
	ReclaimConflicts uint64 // reclaim claims rejected (state lost)
	ReplayedBytes    uint64 // dirty bytes replayed after reconnect
	StaleVnodes      uint64 // vnodes whose dirty cache was discarded
	VnodeEvictions   uint64 // clean vnodes evicted from the table
}

// New builds a client.
func New(opts Options) (*Client, error) {
	if opts.Locate == nil {
		return nil, fmt.Errorf("client: Locate is required")
	}
	if opts.Clock == nil {
		opts.Clock = func() int64 { return time.Now().UnixNano() }
	}
	if opts.Dial == nil {
		opts.Dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	cacheChunks := opts.CacheChunks
	if cacheChunks == 0 {
		cacheChunks = DefaultCacheChunks
	}
	var store ChunkStore
	if opts.CacheDir != "" {
		ds, err := NewDiskStoreSize(opts.CacheDir, cacheChunks)
		if err != nil {
			return nil, err
		}
		store = ds
	} else {
		store = NewMemStoreSize(cacheChunks)
	}
	if opts.Obs != nil && opts.RPC.Metrics == nil {
		opts.RPC.Metrics = opts.Obs
	}
	readAhead := opts.ReadAhead
	switch {
	case readAhead == 0:
		readAhead = DefaultReadAhead
	case readAhead < 0:
		readAhead = 0
	}
	workers := opts.WriteBackWorkers
	if workers <= 0 {
		workers = DefaultWriteBackWorkers
	}
	maxVnodes := opts.MaxVnodes
	switch {
	case maxVnodes == 0:
		maxVnodes = DefaultMaxVnodes
	case maxVnodes < 0:
		maxVnodes = 0
	}
	recoveryTimeout := opts.RecoveryTimeout
	if recoveryTimeout <= 0 {
		recoveryTimeout = DefaultRecoveryTimeout
	}
	reconnectBackoff := opts.ReconnectBackoff
	if reconnectBackoff <= 0 {
		reconnectBackoff = DefaultReconnectBackoff
	}
	// Allow a couple of vnodes' worth of prefetches before the pool
	// saturates and further read-ahead is skipped.
	prefetchSlots := 2 * readAhead
	if prefetchSlots < 8 {
		prefetchSlots = 8
	}
	c := &Client{
		opts:             opts,
		store:            store,
		readAhead:        readAhead,
		writeBackWorkers: workers,
		prefetchSem:      make(chan struct{}, prefetchSlots),
		fetches:          &fetchTable{inflight: make(map[chunkKey]*fetchCall)},
		placement: placement{
			layouts: make(map[fs.VolumeID]*stripe.Layout),
			roots:   make(map[fs.VolumeID]fs.FID),
			objects: make(map[objKey]fs.FID),
		},
		maxVnodes:        maxVnodes,
		recoveryTimeout:  recoveryTimeout,
		reconnectBackoff: reconnectBackoff,
		conns:            make(map[string]*serverConn),
		vnodes:           make(map[fs.FID]*cvnode),
		vlru:             list.New(),
		storeGates:       make(map[string]chan struct{}),
		done:             make(chan struct{}),
		attrHits:         obs.NewCounter(),
		attrMisses:       obs.NewCounter(),
		dataHits:         obs.NewCounter(),
		dataMisses:       obs.NewCounter(),
		localWrites:      obs.NewCounter(),
		storeBacks:       obs.NewCounter(),
		revocations:      obs.NewCounter(),
		lookupHits:       obs.NewCounter(),
		lookupMisses:     obs.NewCounter(),
		prefetchIssued:   obs.NewCounter(),
		prefetchHits:     obs.NewCounter(),
		prefetchWaste:    obs.NewCounter(),
		prefetchCancels:  obs.NewCounter(),
		prefetchInflight: obs.NewGauge(),
		storeInflight:    obs.NewGauge(),
		fetchNs:          obs.NewHistogram(),
		storeNs:          obs.NewHistogram(),
		fanoutFetches:    obs.NewCounter(),
		degradedReads:    obs.NewCounter(),
		degradedWrites:   obs.NewCounter(),
		parityWrites:     obs.NewCounter(),
		reconstructNs:    obs.NewHistogram(),
		verifier:         integrity.NewVerifier(),
		verifiedChunks:   obs.NewCounter(),
		hashMismatches:   obs.NewCounter(),
		refetches:        obs.NewCounter(),
		verifyNs:         obs.NewHistogram(),
		reconnects:       obs.NewCounter(),
		reclaimedTokens:  obs.NewCounter(),
		reclaimConflicts: obs.NewCounter(),
		replayedBytes:    obs.NewCounter(),
		staleVnodes:      obs.NewCounter(),
		vnodeEvictions:   obs.NewCounter(),
		reconnectNs:      obs.NewHistogram(),
	}
	if opts.Obs != nil {
		c.Instrument(opts.Obs)
	}
	if opts.FlushInterval > 0 {
		go c.flushLoop(opts.FlushInterval)
	}
	return c, nil
}

// Instrument attaches the client's cache counters to reg under the
// "client." prefix, plus a per-association traffic view.
func (c *Client) Instrument(reg *obs.Registry) {
	reg.AttachCounter("client.attr_cache_hits", c.attrHits)
	reg.AttachCounter("client.attr_cache_misses", c.attrMisses)
	reg.AttachCounter("client.data_cache_hits", c.dataHits)
	reg.AttachCounter("client.data_cache_misses", c.dataMisses)
	reg.AttachCounter("client.local_writes", c.localWrites)
	reg.AttachCounter("client.store_backs", c.storeBacks)
	reg.AttachCounter("client.revocations", c.revocations)
	reg.AttachCounter("client.lookup_hits", c.lookupHits)
	reg.AttachCounter("client.lookup_misses", c.lookupMisses)
	reg.AttachCounter("client.prefetch_issued", c.prefetchIssued)
	reg.AttachCounter("client.prefetch_hits", c.prefetchHits)
	reg.AttachCounter("client.prefetch_waste", c.prefetchWaste)
	reg.AttachCounter("client.prefetch_cancels", c.prefetchCancels)
	reg.AttachGauge("client.prefetch_inflight", c.prefetchInflight)
	reg.AttachGauge("client.store_inflight", c.storeInflight)
	reg.AttachHistogram("client.fetch_ns", c.fetchNs)
	reg.AttachHistogram("client.store_ns", c.storeNs)
	reg.AttachCounter("integrity.verified_chunks", c.verifiedChunks)
	reg.AttachCounter("integrity.mismatches", c.hashMismatches)
	reg.AttachCounter("integrity.refetches", c.refetches)
	reg.AttachHistogram("integrity.verify_ns", c.verifyNs)
	reg.AttachCounter("stripe.fanout_fetches", c.fanoutFetches)
	reg.AttachCounter("stripe.degraded_reads", c.degradedReads)
	reg.AttachCounter("stripe.degraded_writes", c.degradedWrites)
	reg.AttachCounter("stripe.parity_writes", c.parityWrites)
	reg.AttachHistogram("stripe.reconstruct_ns", c.reconstructNs)
	reg.AttachCounter("recovery.reconnects", c.reconnects)
	reg.AttachCounter("recovery.reclaimed_tokens", c.reclaimedTokens)
	reg.AttachCounter("recovery.reclaim_conflicts", c.reclaimConflicts)
	reg.AttachCounter("recovery.replayed_bytes", c.replayedBytes)
	reg.AttachCounter("recovery.stale_vnodes", c.staleVnodes)
	reg.AttachCounter("client.vnode_evictions", c.vnodeEvictions)
	reg.AttachHistogram("recovery.reconnect_ns", c.reconnectNs)
	reg.AttachInfo("client.conns", func() any {
		c.mu.Lock()
		conns := make(map[string]*serverConn, len(c.conns))
		for addr, sc := range c.conns {
			conns[addr] = sc
		}
		c.mu.Unlock()
		out := make(map[string]rpc.Stats, len(conns))
		for addr, sc := range conns {
			out[addr] = sc.peerStats()
		}
		return out
	})
}

// flushLoop periodically writes dirty cached data back.
func (c *Client) flushLoop(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.FlushAll()
		case <-c.done:
			return
		}
	}
}

// FlushAll stores every vnode's dirty data back to its server. Dirty
// vnodes flush concurrently; the per-client write-back pool bounds the
// RPCs actually in flight.
func (c *Client) FlushAll() error {
	c.mu.Lock()
	vnodes := make([]*cvnode, 0, len(c.vnodes))
	for _, v := range c.vnodes {
		vnodes = append(vnodes, v)
	}
	c.mu.Unlock()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for _, v := range vnodes {
		v.llock()
		clean := len(v.dirty) == 0 && v.flushing == 0
		v.lunlock()
		if clean {
			continue
		}
		wg.Add(1)
		go func(v *cvnode) {
			defer wg.Done()
			if err := v.Fsync(); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(v)
	}
	wg.Wait()
	return firstErr
}

// Stats returns a snapshot of the cache counters.
func (c *Client) Stats() Stats {
	return Stats{
		AttrCacheHits:   c.attrHits.Load(),
		AttrCacheMisses: c.attrMisses.Load(),
		DataCacheHits:   c.dataHits.Load(),
		DataCacheMisses: c.dataMisses.Load(),
		LocalWrites:     c.localWrites.Load(),
		StoreBacks:      c.storeBacks.Load(),
		Revocations:     c.revocations.Load(),
		LookupHits:      c.lookupHits.Load(),
		LookupMisses:    c.lookupMisses.Load(),
		PrefetchIssued:  c.prefetchIssued.Load(),
		PrefetchHits:    c.prefetchHits.Load(),
		PrefetchWaste:   c.prefetchWaste.Load(),
		PrefetchCancels: c.prefetchCancels.Load(),

		VerifiedChunks: c.verifiedChunks.Load(),
		HashMismatches: c.hashMismatches.Load(),
		Refetches:      c.refetches.Load(),

		Reconnects:       c.reconnects.Load(),
		ReclaimedTokens:  c.reclaimedTokens.Load(),
		ReclaimConflicts: c.reclaimConflicts.Load(),
		ReplayedBytes:    c.replayedBytes.Load(),
		StaleVnodes:      c.staleVnodes.Load(),
		VnodeEvictions:   c.vnodeEvictions.Load(),
	}
}

// RPCStats sums traffic over all server associations.
func (c *Client) RPCStats() rpc.Stats {
	c.mu.Lock()
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.mu.Unlock()
	var out rpc.Stats
	for _, sc := range conns {
		st := sc.peerStats()
		out.CallsSent += st.CallsSent
		out.CallsReceived += st.CallsReceived
		out.BytesSent += st.BytesSent
		out.BytesReceived += st.BytesReceived
		out.WireBytesIn += st.WireBytesIn
		out.WireBytesOut += st.WireBytesOut
		out.BinSent += st.BinSent
		out.BinReceived += st.BinReceived
		out.LaneFallbacks += st.LaneFallbacks
	}
	return out
}

// Close tears down every association and stops the flush loop.
func (c *Client) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	conns := make([]*serverConn, 0, len(c.conns))
	for _, sc := range c.conns {
		conns = append(conns, sc)
	}
	c.conns = make(map[string]*serverConn)
	c.mu.Unlock()
	for _, sc := range conns {
		sc.mu.Lock()
		p := sc.peer
		sc.mu.Unlock()
		if p != nil {
			p.Close()
		}
	}
	return nil
}

// connFor resolves the association for a volume.
func (c *Client) connFor(vol fs.VolumeID) (*serverConn, error) {
	addr, err := c.opts.Locate.VolumeAddr(vol)
	if err != nil {
		return nil, err
	}
	return c.conn(addr)
}

// ctx is the vfs context all client operations carry to the server
// implicitly (the server rebuilds it from the authenticated identity;
// locally it parameterizes nothing but is accepted for interface
// symmetry).
func (c *Client) ctx() *vfs.Context {
	return &vfs.Context{User: c.opts.User, Groups: c.opts.Groups}
}

// MountVolume returns the vfs.FileSystem view of a volume.
func (c *Client) MountVolume(id fs.VolumeID) (vfs.FileSystem, error) {
	sc, err := c.connFor(id)
	if err != nil {
		return nil, err
	}
	return &clientFS{c: c, conn: sc, vol: id}, nil
}

// MountVolumeByName resolves a volume name through the locator and mounts
// it.
func (c *Client) MountVolumeByName(name string) (vfs.FileSystem, error) {
	id, addr, err := c.opts.Locate.VolumeByName(name)
	if err != nil {
		return nil, err
	}
	sc, err := c.conn(addr)
	if err != nil {
		return nil, err
	}
	return &clientFS{c: c, conn: sc, vol: id}, nil
}

// clientFS is the vfs.FileSystem for one mounted volume.
type clientFS struct {
	c    *Client
	conn *serverConn
	vol  fs.VolumeID

	mu   sync.Mutex
	root fs.FID // guarded by mu
}

// Root implements vfs.FileSystem.
func (f *clientFS) Root() (vfs.Vnode, error) {
	f.mu.Lock()
	root := f.root
	f.mu.Unlock()
	if !root.IsZero() {
		return f.c.vnode(f.conn, root), nil
	}
	var reply proto.GetRootReply
	if err := f.conn.call(proto.MGetRoot, proto.GetRootArgs{Volume: f.vol}, &reply); err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.root = reply.FID
	f.mu.Unlock()
	v := f.c.vnode(f.conn, reply.FID)
	v.lmu.Lock()
	v.mergeLocked(reply.Attr, reply.Serial)
	v.lmu.Unlock()
	return v, nil
}

// Get implements vfs.FileSystem.
func (f *clientFS) Get(fid fs.FID) (vfs.Vnode, error) {
	if fid.Volume != f.vol {
		return nil, fs.ErrStale
	}
	return f.c.vnode(f.conn, fid), nil
}

// Statfs implements vfs.FileSystem.
func (f *clientFS) Statfs() (fs.Statfs, error) {
	var reply proto.StatfsReply
	if err := f.conn.call(proto.MStatfs, proto.StatfsArgs{Volume: f.vol}, &reply); err != nil {
		return fs.Statfs{}, err
	}
	return reply.Statfs, nil
}

// Sync implements vfs.FileSystem: flush every dirty vnode in the volume.
func (f *clientFS) Sync() error {
	f.c.mu.Lock()
	var dirty []*cvnode
	for fid, v := range f.c.vnodes {
		if fid.Volume == f.vol {
			dirty = append(dirty, v)
		}
	}
	f.c.mu.Unlock()
	for _, v := range dirty {
		if err := v.Fsync(); err != nil {
			return err
		}
	}
	return nil
}

// vnode returns the cache entry for fid, creating it on first use, and
// keeps the table bounded: once it exceeds MaxVnodes, clean idle
// vnodes are evicted in LRU order.
func (c *Client) vnode(conn *serverConn, fid fs.FID) *cvnode {
	c.mu.Lock()
	if v, ok := c.vnodes[fid]; ok {
		if v.lruElem != nil {
			c.vlru.MoveToFront(v.lruElem)
		}
		c.mu.Unlock()
		return v
	}
	v := newCvnode(c, conn, fid)
	c.vnodes[fid] = v
	v.lruElem = c.vlru.PushFront(v)
	var returns map[*serverConn][]token.ID
	if c.maxVnodes > 0 && len(c.vnodes) > c.maxVnodes {
		returns = c.evictVnodesLocked(v)
	}
	c.mu.Unlock()
	// Voluntary token returns go out after c.mu is released, off the
	// caller's path — they are advisory; the server can always revoke.
	for sc, ids := range returns {
		go sc.returnTokens(ids)
	}
	return v
}

// evictVnodesLocked trims the vnode table to maxVnodes by dropping
// clean, idle vnodes in LRU order, never touching keep. Token-less
// vnodes go first (they are pure cache entries); if the table is still
// over budget, clean token-holding vnodes are evicted too and their
// tokens returned voluntarily (the release half of §5.2's
// acquire-operate-release). Returns the token IDs to hand back per
// association. Called with c.mu held.
//
// Known simplification: an application that retains a Vnode pointer
// across eviction keeps a detached cvnode — its operations still work
// (tokens re-acquire on demand) but a later Get of the same FID builds
// a second cvnode. DESIGN.md §26 discusses the trade-off.
func (c *Client) evictVnodesLocked(keep *cvnode) map[*serverConn][]token.ID {
	var returns map[*serverConn][]token.ID
	for pass := 0; pass < 2 && len(c.vnodes) > c.maxVnodes; pass++ {
		tokenless := pass == 0
		e := c.vlru.Back()
		for e != nil && len(c.vnodes) > c.maxVnodes {
			prev := e.Prev()
			if v := e.Value.(*cvnode); v != keep {
				if ids, ok := c.tryEvictLocked(v, tokenless); ok && len(ids) > 0 {
					if returns == nil {
						returns = make(map[*serverConn][]token.ID)
					}
					returns[v.conn] = append(returns[v.conn], ids...)
				}
			}
			e = prev
		}
	}
	return returns
}

// tryEvictLocked evicts v if it is clean and idle (and, when tokenless
// is set, holds no tokens), returning any token IDs to hand back. The
// low-level lock is only tried, never waited on: a busy vnode simply
// stays. Called with c.mu held.
func (c *Client) tryEvictLocked(v *cvnode, tokenless bool) ([]token.ID, bool) {
	if !v.lmu.TryLock() {
		return nil, false
	}
	busy := v.rpcs > 0 || v.flushing > 0 || len(v.dirty) > 0 || v.dirtyStatus ||
		v.lockCount > 0 || v.conflicted
	for _, n := range v.open {
		if n > 0 {
			busy = true
			break
		}
	}
	if busy || (tokenless && len(v.toks) > 0) {
		v.lmu.Unlock()
		return nil, false
	}
	ids := make([]token.ID, 0, len(v.toks))
	for id := range v.toks {
		ids = append(ids, id)
	}
	v.toks = make(map[token.ID]token.Token)
	v.attrValid = false
	v.discardPrefetchedLocked(0, -1)
	v.invalidateDirLocked()
	v.lmu.Unlock()
	c.store.DropFile(v.fid)
	delete(c.vnodes, v.fid)
	c.vlru.Remove(v.lruElem)
	v.lruElem = nil
	c.vnodeEvictions.Inc()
	return ids, true
}

// lookupVnode finds an existing cache entry without creating one.
func (c *Client) lookupVnode(fid fs.FID) *cvnode {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vnodes[fid]
}
