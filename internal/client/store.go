package client

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"decorum/internal/fs"
)

// ChunkSize is the granularity of the client data cache.
const ChunkSize = 64 * 1024

// ChunkStore holds cached file data. Two implementations mirror §4.2: a
// disk-backed cache using the client's native file system, and an
// in-memory cache "enabling diskless clients to be used".
type ChunkStore interface {
	// Get returns the cached chunk (always ChunkSize long) if present.
	Get(fid fs.FID, idx int64) ([]byte, bool)
	// Put stores a chunk (stores keep their own copy).
	Put(fid fs.FID, idx int64, data []byte)
	// ReadAt copies part of a cached chunk into p, starting at byte off
	// within the chunk; false if the chunk is absent. Avoids whole-chunk
	// copies on the cached-read fast path.
	ReadAt(fid fs.FID, idx int64, p []byte, off int) bool
	// WriteAt modifies part of a cached chunk in place; false if absent.
	WriteAt(fid fs.FID, idx int64, p []byte, off int) bool
	// Drop discards one chunk.
	Drop(fid fs.FID, idx int64)
	// DropFile discards every chunk of a file.
	DropFile(fid fs.FID)
}

type chunkKey struct {
	fid fs.FID
	idx int64
}

// MemStore is the in-memory (diskless) cache.
type MemStore struct {
	mu sync.Mutex
	m  map[chunkKey][]byte // guarded by mu
}

// NewMemStore returns an empty in-memory chunk cache.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[chunkKey][]byte)}
}

// Get implements ChunkStore.
func (s *MemStore) Get(fid fs.FID, idx int64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[chunkKey{fid, idx}]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, true
}

// Put implements ChunkStore.
func (s *MemStore) Put(fid fs.FID, idx int64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.m[chunkKey{fid, idx}] = cp
	s.mu.Unlock()
}

// ReadAt implements ChunkStore.
func (s *MemStore) ReadAt(fid fs.FID, idx int64, p []byte, off int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[chunkKey{fid, idx}]
	if !ok || off < 0 || off+len(p) > len(b) {
		return false
	}
	copy(p, b[off:])
	return true
}

// WriteAt implements ChunkStore.
func (s *MemStore) WriteAt(fid fs.FID, idx int64, p []byte, off int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[chunkKey{fid, idx}]
	if !ok || off < 0 || off+len(p) > len(b) {
		return false
	}
	copy(b[off:], p)
	return true
}

// Drop implements ChunkStore.
func (s *MemStore) Drop(fid fs.FID, idx int64) {
	s.mu.Lock()
	delete(s.m, chunkKey{fid, idx})
	s.mu.Unlock()
}

// DropFile implements ChunkStore.
func (s *MemStore) DropFile(fid fs.FID) {
	s.mu.Lock()
	for k := range s.m {
		if k.fid == fid {
			delete(s.m, k)
		}
	}
	s.mu.Unlock()
}

// DiskStore caches chunks as files in a directory of the client's native
// file system, the classic AFS/DEcorum arrangement (§4.2).
type DiskStore struct {
	dir string
	mu  sync.Mutex
	// present avoids stat calls on known-missing chunks.
	present map[chunkKey]bool // guarded by mu
}

// NewDiskStore caches under dir, creating it if needed.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	return &DiskStore{dir: dir, present: make(map[chunkKey]bool)}, nil
}

func (s *DiskStore) path(fid fs.FID, idx int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("V%dN%dU%d.%d", fid.Volume, fid.Vnode, fid.Uniq, idx))
}

// Get implements ChunkStore.
func (s *DiskStore) Get(fid fs.FID, idx int64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.present[chunkKey{fid, idx}] {
		return nil, false
	}
	b, err := os.ReadFile(s.path(fid, idx))
	if err != nil {
		return nil, false
	}
	return b, true
}

// Put implements ChunkStore.
func (s *DiskStore) Put(fid fs.FID, idx int64, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.WriteFile(s.path(fid, idx), data, 0o600); err == nil {
		s.present[chunkKey{fid, idx}] = true
	}
}

// ReadAt implements ChunkStore.
func (s *DiskStore) ReadAt(fid fs.FID, idx int64, p []byte, off int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.present[chunkKey{fid, idx}] {
		return false
	}
	f, err := os.Open(s.path(fid, idx))
	if err != nil {
		return false
	}
	defer f.Close()
	_, err = f.ReadAt(p, int64(off))
	return err == nil
}

// WriteAt implements ChunkStore.
func (s *DiskStore) WriteAt(fid fs.FID, idx int64, p []byte, off int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.present[chunkKey{fid, idx}] {
		return false
	}
	f, err := os.OpenFile(s.path(fid, idx), os.O_WRONLY, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	_, err = f.WriteAt(p, int64(off))
	return err == nil
}

// Drop implements ChunkStore.
func (s *DiskStore) Drop(fid fs.FID, idx int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove(s.path(fid, idx))
	delete(s.present, chunkKey{fid, idx})
}

// DropFile implements ChunkStore.
func (s *DiskStore) DropFile(fid fs.FID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.present {
		if k.fid == fid {
			os.Remove(s.path(k.fid, k.idx))
			delete(s.present, k)
		}
	}
}
