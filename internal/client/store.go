package client

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"decorum/internal/fs"
	"decorum/internal/stripe"
)

// ChunkSize is the granularity of the client data cache — shared with
// the striping layer, where it is also the stripe unit.
const ChunkSize = stripe.ChunkSize

// DefaultCacheChunks bounds the chunk caches when the caller does not
// choose a size: 4096 chunks × 64 KiB = 256 MiB, in the spirit of the
// paper's workstation cache partitions (§4.2) and far above what any
// test or benchmark in this repo touches.
const DefaultCacheChunks = 4096

// ChunkStore holds cached file data. Two implementations mirror §4.2: a
// disk-backed cache using the client's native file system, and an
// in-memory cache "enabling diskless clients to be used". Both are
// bounded LRU caches; dropping a chunk is always safe because the server
// holds the authoritative copy.
type ChunkStore interface {
	// Get returns the cached chunk (always ChunkSize long) if present.
	Get(fid fs.FID, idx int64) ([]byte, bool)
	// Put stores a chunk (stores keep their own copy).
	Put(fid fs.FID, idx int64, data []byte)
	// PutOwned stores a chunk whose buffer the caller relinquishes: the
	// store may keep the slice itself instead of copying it. The binary
	// wire lane delivers each fetched chunk in its own exactly-sized
	// buffer, which lands here copy-free.
	PutOwned(fid fs.FID, idx int64, data []byte)
	// ReadAt copies part of a cached chunk into p, starting at byte off
	// within the chunk; false if the chunk is absent. Avoids whole-chunk
	// copies on the cached-read fast path.
	ReadAt(fid fs.FID, idx int64, p []byte, off int) bool
	// WriteAt modifies part of a cached chunk in place; false if absent.
	WriteAt(fid fs.FID, idx int64, p []byte, off int) bool
	// Drop discards one chunk.
	Drop(fid fs.FID, idx int64)
	// DropFile discards every chunk of a file.
	DropFile(fid fs.FID)
	// Pin marks a chunk ineligible for LRU eviction until a matching
	// Unpin. Pins are counted and independent of chunk presence. The
	// cache temporarily exceeds its capacity rather than discard a
	// pinned chunk: the client pins dirty chunks so write-behind can
	// never silently lose data under cache pressure.
	Pin(fid fs.FID, idx int64)
	// Unpin releases one pin; an Unpin without a matching Pin is a no-op.
	Unpin(fid fs.FID, idx int64)
	// Evictions reports how many chunks capacity pressure has discarded.
	Evictions() uint64
}

type chunkKey struct {
	fid fs.FID
	idx int64
}

// MemStore is the in-memory (diskless) cache.
type MemStore struct {
	cap int

	mu   sync.Mutex
	m    map[chunkKey][]byte        // guarded by mu
	lru  *list.List                 // guarded by mu (of chunkKey, front = most recent)
	elem map[chunkKey]*list.Element // guarded by mu
	pins map[chunkKey]int           // guarded by mu
	// guarded by mu
	evictions uint64
}

// NewMemStore returns an in-memory chunk cache bounded at
// DefaultCacheChunks.
func NewMemStore() *MemStore {
	return NewMemStoreSize(DefaultCacheChunks)
}

// NewMemStoreSize returns an in-memory chunk cache holding at most
// capChunks chunks.
func NewMemStoreSize(capChunks int) *MemStore {
	if capChunks < 1 {
		panic("client: cache capacity must be positive")
	}
	return &MemStore{
		cap:  capChunks,
		m:    make(map[chunkKey][]byte),
		lru:  list.New(),
		elem: make(map[chunkKey]*list.Element),
		pins: make(map[chunkKey]int),
	}
}

// touchLocked moves k to the recent end. Called with mu held.
func (s *MemStore) touchLocked(k chunkKey) {
	if e, ok := s.elem[k]; ok {
		s.lru.MoveToFront(e)
	}
}

// removeLocked forgets one chunk. Called with mu held.
func (s *MemStore) removeLocked(k chunkKey) {
	delete(s.m, k)
	if e, ok := s.elem[k]; ok {
		s.lru.Remove(e)
		delete(s.elem, k)
	}
}

// Get implements ChunkStore.
func (s *MemStore) Get(fid fs.FID, idx int64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := chunkKey{fid, idx}
	b, ok := s.m[k]
	if !ok {
		return nil, false
	}
	s.touchLocked(k)
	out := make([]byte, len(b))
	copy(out, b)
	return out, true
}

// Put implements ChunkStore, evicting the least recently used chunk when
// the cache is full.
func (s *MemStore) Put(fid fs.FID, idx int64, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.putOwned(chunkKey{fid, idx}, cp)
}

// PutOwned implements ChunkStore: the diskless cache adopts the buffer
// directly — a wire-lane chunk is cached with zero copies.
func (s *MemStore) PutOwned(fid fs.FID, idx int64, data []byte) {
	s.putOwned(chunkKey{fid, idx}, data)
}

func (s *MemStore) putOwned(k chunkKey, cp []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[k]; ok {
		s.m[k] = cp
		s.touchLocked(k)
		return
	}
	for len(s.m) >= s.cap {
		victim := s.lru.Back()
		for victim != nil && s.pins[victim.Value.(chunkKey)] > 0 {
			victim = victim.Prev()
		}
		if victim == nil {
			// Every cached chunk is pinned (dirty): overcommit rather
			// than lose data; the flusher unpins as spans are stored.
			break
		}
		s.removeLocked(victim.Value.(chunkKey))
		s.evictions++
	}
	s.m[k] = cp
	s.elem[k] = s.lru.PushFront(k)
}

// ReadAt implements ChunkStore.
func (s *MemStore) ReadAt(fid fs.FID, idx int64, p []byte, off int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := chunkKey{fid, idx}
	b, ok := s.m[k]
	if !ok || off < 0 || off+len(p) > len(b) {
		return false
	}
	s.touchLocked(k)
	copy(p, b[off:])
	return true
}

// WriteAt implements ChunkStore.
func (s *MemStore) WriteAt(fid fs.FID, idx int64, p []byte, off int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := chunkKey{fid, idx}
	b, ok := s.m[k]
	if !ok || off < 0 || off+len(p) > len(b) {
		return false
	}
	s.touchLocked(k)
	copy(b[off:], p)
	return true
}

// Drop implements ChunkStore.
func (s *MemStore) Drop(fid fs.FID, idx int64) {
	s.mu.Lock()
	s.removeLocked(chunkKey{fid, idx})
	s.mu.Unlock()
}

// DropFile implements ChunkStore.
func (s *MemStore) DropFile(fid fs.FID) {
	s.mu.Lock()
	for k := range s.m {
		if k.fid == fid {
			s.removeLocked(k)
		}
	}
	s.mu.Unlock()
}

// Pin implements ChunkStore.
func (s *MemStore) Pin(fid fs.FID, idx int64) {
	s.mu.Lock()
	s.pins[chunkKey{fid, idx}]++
	s.mu.Unlock()
}

// Unpin implements ChunkStore.
func (s *MemStore) Unpin(fid fs.FID, idx int64) {
	s.mu.Lock()
	k := chunkKey{fid, idx}
	if n := s.pins[k]; n > 1 {
		s.pins[k] = n - 1
	} else {
		delete(s.pins, k)
	}
	s.mu.Unlock()
}

// Evictions implements ChunkStore.
func (s *MemStore) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// DiskStore caches chunks as files in a directory of the client's native
// file system, the classic AFS/DEcorum arrangement (§4.2).
type DiskStore struct {
	dir string
	cap int

	mu sync.Mutex
	// elem doubles as the presence index (avoids stat calls on
	// known-missing chunks) and the LRU position.
	elem map[chunkKey]*list.Element // guarded by mu
	lru  *list.List                 // guarded by mu (of chunkKey, front = most recent)
	pins map[chunkKey]int           // guarded by mu
	// guarded by mu
	evictions uint64
}

// NewDiskStore caches under dir (created if needed), bounded at
// DefaultCacheChunks.
func NewDiskStore(dir string) (*DiskStore, error) {
	return NewDiskStoreSize(dir, DefaultCacheChunks)
}

// NewDiskStoreSize caches at most capChunks chunks under dir.
func NewDiskStoreSize(dir string, capChunks int) (*DiskStore, error) {
	if capChunks < 1 {
		return nil, fmt.Errorf("client: cache capacity %d must be positive", capChunks)
	}
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	return &DiskStore{
		dir:  dir,
		cap:  capChunks,
		elem: make(map[chunkKey]*list.Element),
		lru:  list.New(),
		pins: make(map[chunkKey]int),
	}, nil
}

func (s *DiskStore) path(fid fs.FID, idx int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("V%dN%dU%d.%d", fid.Volume, fid.Vnode, fid.Uniq, idx))
}

// touchLocked moves k to the recent end. Called with mu held.
func (s *DiskStore) touchLocked(k chunkKey) {
	if e, ok := s.elem[k]; ok {
		s.lru.MoveToFront(e)
	}
}

// removeLocked forgets one chunk and deletes its cache file. Called with
// mu held.
func (s *DiskStore) removeLocked(k chunkKey) {
	if e, ok := s.elem[k]; ok {
		s.lru.Remove(e)
		delete(s.elem, k)
	}
	os.Remove(s.path(k.fid, k.idx))
}

// Get implements ChunkStore.
func (s *DiskStore) Get(fid fs.FID, idx int64) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := chunkKey{fid, idx}
	if _, ok := s.elem[k]; !ok {
		return nil, false
	}
	b, err := os.ReadFile(s.path(fid, idx))
	if err != nil {
		return nil, false
	}
	s.touchLocked(k)
	return b, true
}

// PutOwned implements ChunkStore. The disk cache writes through to a
// file either way, so owning the buffer buys nothing: it is Put.
func (s *DiskStore) PutOwned(fid fs.FID, idx int64, data []byte) {
	s.Put(fid, idx, data)
}

// Put implements ChunkStore, evicting the least recently used chunk when
// the cache is full.
func (s *DiskStore) Put(fid fs.FID, idx int64, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := chunkKey{fid, idx}
	if _, ok := s.elem[k]; ok {
		if err := os.WriteFile(s.path(fid, idx), data, 0o600); err == nil {
			s.touchLocked(k)
		}
		return
	}
	for len(s.elem) >= s.cap {
		victim := s.lru.Back()
		for victim != nil && s.pins[victim.Value.(chunkKey)] > 0 {
			victim = victim.Prev()
		}
		if victim == nil {
			// Every cached chunk is pinned (dirty): overcommit rather
			// than lose data; the flusher unpins as spans are stored.
			break
		}
		s.removeLocked(victim.Value.(chunkKey))
		s.evictions++
	}
	if err := os.WriteFile(s.path(fid, idx), data, 0o600); err == nil {
		s.elem[k] = s.lru.PushFront(k)
	}
}

// ReadAt implements ChunkStore.
func (s *DiskStore) ReadAt(fid fs.FID, idx int64, p []byte, off int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := chunkKey{fid, idx}
	if _, ok := s.elem[k]; !ok {
		return false
	}
	f, err := os.Open(s.path(fid, idx))
	if err != nil {
		return false
	}
	defer f.Close()
	if _, err := f.ReadAt(p, int64(off)); err != nil {
		return false
	}
	s.touchLocked(k)
	return true
}

// WriteAt implements ChunkStore.
func (s *DiskStore) WriteAt(fid fs.FID, idx int64, p []byte, off int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := chunkKey{fid, idx}
	if _, ok := s.elem[k]; !ok {
		return false
	}
	f, err := os.OpenFile(s.path(fid, idx), os.O_WRONLY, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	if _, err := f.WriteAt(p, int64(off)); err != nil {
		return false
	}
	s.touchLocked(k)
	return true
}

// Drop implements ChunkStore.
func (s *DiskStore) Drop(fid fs.FID, idx int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeLocked(chunkKey{fid, idx})
}

// DropFile implements ChunkStore.
func (s *DiskStore) DropFile(fid fs.FID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.elem {
		if k.fid == fid {
			s.removeLocked(k)
		}
	}
}

// Pin implements ChunkStore.
func (s *DiskStore) Pin(fid fs.FID, idx int64) {
	s.mu.Lock()
	s.pins[chunkKey{fid, idx}]++
	s.mu.Unlock()
}

// Unpin implements ChunkStore.
func (s *DiskStore) Unpin(fid fs.FID, idx int64) {
	s.mu.Lock()
	k := chunkKey{fid, idx}
	if n := s.pins[k]; n > 1 {
		s.pins[k] = n - 1
	} else {
		delete(s.pins, k)
	}
	s.mu.Unlock()
}

// Evictions implements ChunkStore.
func (s *DiskStore) Evictions() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}
