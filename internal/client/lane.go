package client

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"decorum/internal/fs"
	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/token"
)

// This file is the client half of the rpc binary bulk-data lane
// (rpc/wire.go): lane-aware FetchData/StoreData/StoreBatch helpers that
// ship chunk payloads as raw frame sections when the association has
// negotiated the lane, and fall back to the gob procedures — byte for
// byte the same results — when it has not. The fallback is decided per
// attempt: a reconnected association renegotiates from scratch, and its
// first bulk calls ride gob until the handshake lands.

// maxBatchSpans bounds one StoreBatch frame: at most this many spans
// per call. With ChunkSize spans that is 1 MiB of payload per writev —
// big enough to amortize framing, small enough that a large flush
// splits into several concurrent batches and keeps the server's worker
// pool busy instead of serializing on one handler.
const maxBatchSpans = 16

// fetchData performs one FetchData on the association: a single binary
// frame whose reply payload lands in its own exactly-sized buffer, or
// the gob procedure when the lane is down.
func (sc *serverConn) fetchData(args proto.FetchDataArgs, pre func() error) (proto.FetchDataReply, error) {
	var reply proto.FetchDataReply
	err := sc.callGuardedFn(pre, func(peer *rpc.Peer) error {
		meta := proto.EncodeFetchDataArgs(nil, &args)
		respMeta, respData, err := peer.CallBin(proto.BinFetchData, proto.MFetchData, meta, nil, rpc.PriorityNormal, obs.SpanContext{})
		err = proto.DecodeErr(err)
		if err == nil {
			reply, err = proto.DecodeFetchDataReply(respMeta, respData)
			return err
		}
		if !errors.Is(err, rpc.ErrNoBinaryLane) {
			return err
		}
		return proto.DecodeErr(peer.Call(proto.MFetchData, args, &reply))
	})
	return reply, err
}

// storeData performs one StoreData on the association; on the binary
// lane args.Data travels as a raw frame section, scatter/gather with
// the header, in one writev.
func (sc *serverConn) storeData(args proto.StoreDataArgs, pre func() error) (proto.StoreDataReply, error) {
	var reply proto.StoreDataReply
	err := sc.callGuardedFn(pre, func(peer *rpc.Peer) error {
		meta := proto.EncodeStoreDataArgs(nil, &args)
		var parts [][]byte
		if len(args.Data) > 0 {
			parts = [][]byte{args.Data}
		}
		respMeta, _, err := peer.CallBin(proto.BinStoreData, proto.MStoreData, meta, parts, rpc.PriorityNormal, obs.SpanContext{})
		err = proto.DecodeErr(err)
		if err == nil {
			reply, err = proto.DecodeStoreDataReply(respMeta)
			return err
		}
		if !errors.Is(err, rpc.ErrNoBinaryLane) {
			return err
		}
		return proto.DecodeErr(peer.Call(proto.MStoreData, args, &reply))
	})
	return reply, err
}

// storeBatch ships several spans of one file as a single binary frame:
// each span's bytes are a separate gather section, so the whole batch
// is one writev on the association's socket. Without the lane a batch
// is exactly its spans' StoreDatas, issued sequentially (the want rides
// on the first; grants are collected from every reply).
func (sc *serverConn) storeBatch(args proto.StoreBatchArgs, parts [][]byte, pre func() error) (proto.StoreBatchReply, error) {
	var reply proto.StoreBatchReply
	err := sc.callGuardedFn(pre, func(peer *rpc.Peer) error {
		reply = proto.StoreBatchReply{}
		meta := proto.EncodeStoreBatchArgs(nil, &args)
		respMeta, _, err := peer.CallBin(proto.BinStoreBatch, proto.MStoreBatch, meta, parts, rpc.PriorityNormal, obs.SpanContext{})
		err = proto.DecodeErr(err)
		if err == nil {
			reply, err = proto.DecodeStoreBatchReply(respMeta)
			return err
		}
		if !errors.Is(err, rpc.ErrNoBinaryLane) {
			return err
		}
		var last proto.StoreDataReply
		for i, s := range args.Spans {
			sd := proto.StoreDataArgs{
				FID:            args.FID,
				Offset:         s.Offset,
				Data:           parts[i],
				FromRevocation: args.FromRevocation,
			}
			if i == 0 {
				sd.Want = args.Want
			}
			if err := proto.DecodeErr(peer.Call(proto.MStoreData, sd, &last)); err != nil {
				return err
			}
			reply.Grants = append(reply.Grants, last.Grants...)
		}
		reply.Attr, reply.Serial = last.Attr, last.Serial
		return nil
	})
	return reply, err
}

// binaryLane reports whether the association's current peer has the
// binary lane negotiated. Advisory only — the call helpers re-decide
// per attempt — but cheap enough for the flush planner to choose
// between batching and the per-span pool.
func (sc *serverConn) binaryLane() bool {
	sc.mu.Lock()
	p := sc.peer
	sc.mu.Unlock()
	return p != nil && p.BinaryLane()
}

// batchJobs splits a flush snapshot into StoreBatch-sized groups of
// offset-ordered spans. Jobs are sorted so each batch covers a
// contiguous run of the file — the server applies spans in order under
// one file lock.
func batchJobs(jobs []flushJob) [][]flushJob {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].off < jobs[j].off })
	var out [][]flushJob
	for len(jobs) > maxBatchSpans {
		out = append(out, jobs[:maxBatchSpans])
		jobs = jobs[maxBatchSpans:]
	}
	if len(jobs) > 0 {
		out = append(out, jobs)
	}
	return out
}

// storeSpanBatch is storeSpan for a group of spans riding one
// StoreBatch call. The per-job bookkeeping (flushing counter, re-dirty
// on failure, pin release, serial tracking) mirrors storeSpan exactly;
// a batch failure re-dirties every job, which is safe because stores
// are idempotent overwrites.
func (v *cvnode) storeSpanBatch(jobs []flushJob) error {
	if len(jobs) == 1 {
		return v.storeSpan(jobs[0])
	}
	pre := func() error {
		v.llock()
		stale := jobs[0].gen != v.staleGen
		v.lunlock()
		if stale {
			return fmt.Errorf("%w: write-back invalidated by reclaim conflict", fs.ErrStale)
		}
		return nil
	}
	args := proto.StoreBatchArgs{FID: v.fid}
	parts := make([][]byte, len(jobs))
	lo, hi := jobs[0].off, jobs[0].off
	for i, j := range jobs {
		args.Spans = append(args.Spans, proto.StoreSpan{Offset: j.off, Length: len(j.data)})
		parts[i] = j.data
		if j.off < lo {
			lo = j.off
		}
		if end := j.off + int64(len(j.data)); end > hi {
			hi = end
		}
	}
	// Piggyback a token want when the batch's covering range is not
	// already held: the grant comes back on the same reply instead of a
	// separate MGetTokens round trip.
	want := token.DataWrite | token.StatusWrite
	rng := token.Range{Start: lo, End: hi}
	if v.c.opts.WholeFileDataTokens {
		rng = token.WholeFile
	}
	v.llock()
	if !v.hasTokenLocked(want, rng) {
		args.Want = proto.TokenRequest{Types: want, Range: rng}
	}
	v.lunlock()

	gate := v.c.storeGate(v.conn.addr)
	gate <- struct{}{}
	v.c.storeInflight.Add(1)
	start := time.Now()
	var reply proto.StoreBatchReply
	err := v.withRPC(func() error {
		var serr error
		reply, serr = v.conn.storeBatch(args, parts, pre)
		return serr
	})
	v.c.storeNs.Observe(time.Since(start))
	v.c.storeInflight.Add(-1)
	<-gate

	v.llock()
	v.flushing -= len(jobs)
	if err != nil {
		for _, j := range jobs {
			v.redirtyJobLocked(j)
		}
	} else {
		v.c.storeBacks.Add(uint64(len(jobs)))
		v.addTokensLocked(reply.Grants)
		if reply.Serial > v.flushSerial {
			v.flushSerial, v.flushAttr = reply.Serial, reply.Attr
		}
		if len(v.dirty) == 0 && v.flushing == 0 {
			v.mergeForceLocked(v.flushAttr, v.flushSerial)
			v.flushSerial = 0
		} else {
			v.mergeLocked(reply.Attr, reply.Serial)
		}
		for _, j := range jobs {
			v.c.store.Unpin(v.fid, j.idx)
		}
	}
	v.cond.Broadcast()
	v.lunlock()
	return err
}
