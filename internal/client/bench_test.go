package client

import (
	"testing"
)

// benchCell builds a one-server cell with a warm client vnode.
func benchFile(b *testing.B) (*Client, *cvnode) {
	b.Helper()
	c := newCell(b)
	cl, err := New(Options{Name: "bench", Dial: c.dial, Locate: c.locate})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	fsys, err := cl.MountVolume(c.vol.ID)
	if err != nil {
		b.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		b.Fatal(err)
	}
	f, err := root.Create(ctx(), "bench", 0o644)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Write(ctx(), make([]byte, 256*1024), 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := f.Read(ctx(), buf, 0); err != nil {
		b.Fatal(err)
	}
	return cl, f.(*cvnode)
}

// BenchmarkCachedAttr is the zero-RPC stat path under a status token.
func BenchmarkCachedAttr(b *testing.B) {
	_, f := benchFile(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Attr(ctx()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedRead4K is the zero-RPC read path under a data token.
func BenchmarkCachedRead4K(b *testing.B) {
	_, f := benchFile(b)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Read(ctx(), buf, int64(i%16)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCachedWrite4K is the write-absorbed-by-cache path (§5.2's
// "without ... even notifying the server").
func BenchmarkCachedWrite4K(b *testing.B) {
	_, f := benchFile(b)
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Write(ctx(), payload, int64(i%16)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUncachedFetchRoundTrip forces one full FetchStatus RPC per
// iteration (the cold path), by invalidating the cached attr each time.
func BenchmarkUncachedFetchRoundTrip(b *testing.B) {
	_, f := benchFile(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.llock()
		f.attrValid = false
		f.lunlock()
		if _, err := f.Attr(ctx()); err != nil {
			b.Fatal(err)
		}
	}
}
