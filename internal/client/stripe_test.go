package client

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/locking"
	"decorum/internal/proto"
	"decorum/internal/server"
	"decorum/internal/stripe"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// stripedCell is an in-process striped cell: one primary server holding
// the logical volume (namespace, status, logical tokens) plus Width+1
// member servers each holding one object volume. Members can be killed
// mid-test to exercise degraded reads and writes.
type stripedCell struct {
	t       testing.TB
	mu      sync.Mutex
	servers map[string]*server.Server
	dead    map[string]bool       // guarded by mu
	conns   map[string][]net.Conn // guarded by mu; both pipe ends
	locate  *StaticLocator
	order   *locking.Checker
	logical vfs.VolumeInfo
	lay     *stripe.Layout
}

const stripePrimaryAddr = "stripe-primary"

func newStripedCell(t testing.TB, width int) *stripedCell {
	t.Helper()
	c := &stripedCell{
		t:       t,
		servers: map[string]*server.Server{},
		dead:    map[string]bool{},
		conns:   map[string][]net.Conn{},
		locate:  NewStaticLocator(),
		order:   locking.New(),
	}
	newAgg := func() *episode.Aggregate {
		dev := blockdev.NewMem(512, 8192)
		agg, err := episode.Format(dev, episode.Options{LogBlocks: 128, PoolSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	agg := newAgg()
	vol, err := agg.CreateVolumeWithID("user.striped", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	c.logical = vol
	c.servers[stripePrimaryAddr] = server.New(server.Options{Name: stripePrimaryAddr}, agg)
	c.locate.Add(vol.ID, "user.striped", stripePrimaryAddr)

	lay := &stripe.Layout{Width: width}
	for i := 0; i <= width; i++ {
		addr := fmt.Sprintf("stripe-m%d", i)
		magg := newAgg()
		mvol, err := magg.CreateVolumeWithID(fmt.Sprintf("stripe.m%d", i), 0, fs.VolumeID(101+i))
		if err != nil {
			t.Fatal(err)
		}
		c.servers[addr] = server.New(server.Options{Name: addr}, magg)
		lay.Members = append(lay.Members, stripe.Member{Addr: addr, Volume: mvol.ID})
	}
	if err := lay.Validate(vol.ID); err != nil {
		t.Fatal(err)
	}
	for i, m := range lay.Members {
		if err := c.servers[m.Addr].SetStripeMember(m.Volume, lay, i); err != nil {
			t.Fatal(err)
		}
	}
	c.lay = lay
	c.locate.SetLayout(vol.ID, lay)
	return c
}

func (c *stripedCell) dial(addr string) (net.Conn, error) {
	c.mu.Lock()
	srv, ok := c.servers[addr]
	if !ok || c.dead[addr] {
		c.mu.Unlock()
		return nil, fmt.Errorf("stripe cell: server %q unreachable", addr)
	}
	clientSide, serverSide := net.Pipe()
	c.conns[addr] = append(c.conns[addr], clientSide, serverSide)
	c.mu.Unlock()
	srv.Attach(serverSide)
	return clientSide, nil
}

// kill makes addr unreachable: future dials fail and live associations
// drop mid-flight, like a crashed stripe server.
func (c *stripedCell) kill(addr string) {
	c.mu.Lock()
	c.dead[addr] = true
	conns := c.conns[addr]
	c.conns[addr] = nil
	c.mu.Unlock()
	for _, cn := range conns {
		cn.Close()
	}
}

func (c *stripedCell) client(name string) *Client {
	c.t.Helper()
	cl, err := New(Options{
		Name:   name,
		User:   fs.SuperUser,
		Dial:   c.dial,
		Locate: c.locate,
		Order:  c.order,
		// Calls to a killed member should fail fast, not wait out the
		// default recovery window on every degraded chunk.
		RecoveryTimeout:  200 * time.Millisecond,
		ReconnectBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		c.t.Fatal(err)
	}
	c.t.Cleanup(func() { cl.Close() })
	return cl
}

func (c *stripedCell) mount(cl *Client) vfs.Vnode {
	c.t.Helper()
	fsys, err := cl.MountVolume(c.logical.ID)
	if err != nil {
		c.t.Fatal(err)
	}
	root, err := fsys.Root()
	if err != nil {
		c.t.Fatal(err)
	}
	return root
}

func (c *stripedCell) checkOrder() {
	c.t.Helper()
	if v := c.order.Violations(); len(v) != 0 {
		c.t.Fatalf("lock hierarchy violations: %v", v)
	}
}

// stripePattern is the deterministic byte oracle shared by the tests.
func stripePattern(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i*31 + i/ChunkSize*7 + 11)
	}
	return p
}

func writeAll(t testing.TB, f vfs.Vnode, data []byte, off int64) {
	t.Helper()
	if _, err := f.Write(ctx(), data, off); err != nil {
		t.Fatalf("write at %d: %v", off, err)
	}
}

func readAll(t testing.TB, f vfs.Vnode, n int, off int64) []byte {
	t.Helper()
	buf := make([]byte, n)
	got := 0
	for got < n {
		m, err := f.Read(ctx(), buf[got:], off+int64(got))
		if err != nil {
			t.Fatalf("read at %d: %v", off+int64(got), err)
		}
		if m == 0 {
			break
		}
		got += m
	}
	return buf[:got]
}

// TestStripedWriteReadRoundTrip writes a multi-row file out of order
// (holes between chunks while writing), syncs, and reads it back byte
// for byte through a second, cache-cold client. Parity must have been
// written for every dirty row.
func TestStripedWriteReadRoundTrip(t *testing.T) {
	c := newStripedCell(t, 2)
	wcl := c.client("stripe-writer")
	root := c.mount(wcl)
	f, err := root.Create(ctx(), "striped.dat", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// ~4.6 chunks: rows 0, 1 and a partial row 2 at width 2.
	data := stripePattern(3*ChunkSize + ChunkSize/2 + 137)
	// Out-of-order writes: the tail first, then the head, so member
	// objects see holes that must read back as zeros until filled.
	writeAll(t, f, data[2*ChunkSize:], 2*ChunkSize)
	writeAll(t, f, data[:2*ChunkSize], 0)
	if err := f.(*cvnode).Fsync(); err != nil {
		t.Fatal(err)
	}
	if got := wcl.parityWrites.Load(); got == 0 {
		t.Fatal("flush of a striped file wrote no parity")
	}
	if wcl.degradedReads.Load() != 0 || wcl.degradedWrites.Load() != 0 {
		t.Fatal("healthy cell took a degraded path")
	}

	rcl := c.client("stripe-reader")
	rroot := c.mount(rcl)
	rf, err := rroot.Lookup(ctx(), "striped.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, rf, len(data), 0)
	if !bytes.Equal(got, data) {
		t.Fatalf("striped round trip mismatch: got %d bytes, want %d", len(got), len(data))
	}
	if rcl.fanoutFetches.Load() == 0 {
		t.Fatal("cold read of a striped file fetched no chunks from members")
	}
	c.checkOrder()
}

// TestStripedDegradedRead kills one data member after a clean write and
// verifies a cache-cold reader still reconstructs every byte from the
// survivors plus parity.
func TestStripedDegradedRead(t *testing.T) {
	c := newStripedCell(t, 2)
	wcl := c.client("stripe-writer")
	root := c.mount(wcl)
	f, err := root.Create(ctx(), "degraded.dat", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := stripePattern(4 * ChunkSize)
	writeAll(t, f, data, 0)
	if err := f.(*cvnode).Fsync(); err != nil {
		t.Fatal(err)
	}

	// Member 1 is the data owner of chunk 0 at width 2 (member 0 holds
	// row 0's parity). Killing it forces reconstruction for its chunks.
	dead := c.lay.DataMember(0)
	c.kill(c.lay.Members[dead].Addr)

	rcl := c.client("stripe-reader")
	rroot := c.mount(rcl)
	rf, err := rroot.Lookup(ctx(), "degraded.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, rf, len(data), 0)
	if !bytes.Equal(got, data) {
		t.Fatalf("degraded read mismatch (member %d down)", dead)
	}
	if rcl.degradedReads.Load() == 0 {
		t.Fatal("reads with a dead data member never took the degraded path")
	}
	c.checkOrder()
}

// TestStripedDegradedWrite kills a member BEFORE the flush: spans owned
// by the dead member must land in parity (degraded write) so that a
// later degraded read reproduces them, with zero data loss.
func TestStripedDegradedWrite(t *testing.T) {
	c := newStripedCell(t, 2)
	wcl := c.client("stripe-writer")
	root := c.mount(wcl)
	f, err := root.Create(ctx(), "degraded-write.dat", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := stripePattern(4 * ChunkSize)
	writeAll(t, f, data, 0)

	dead := c.lay.DataMember(0)
	c.kill(c.lay.Members[dead].Addr)
	if err := f.(*cvnode).Fsync(); err != nil {
		t.Fatalf("flush with one member down must succeed degraded: %v", err)
	}
	if wcl.degradedWrites.Load() == 0 {
		t.Fatal("flush with a dead data member never took the degraded write path")
	}

	rcl := c.client("stripe-reader")
	rroot := c.mount(rcl)
	rf, err := rroot.Lookup(ctx(), "degraded-write.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, rf, len(data), 0)
	if !bytes.Equal(got, data) {
		t.Fatalf("bytes written degraded did not read back (member %d down)", dead)
	}
	c.checkOrder()
}

// TestStripedRangeEnforcement talks to a member server directly: data
// tokens and I/O on ranges the member does not own must be refused.
func TestStripedRangeEnforcement(t *testing.T) {
	c := newStripedCell(t, 2)
	cl := c.client("stripe-writer")
	root := c.mount(cl)
	f, err := root.Create(ctx(), "owned.dat", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := stripePattern(4 * ChunkSize)
	writeAll(t, f, data, 0)
	if err := f.(*cvnode).Fsync(); err != nil {
		t.Fatal(err)
	}
	fid := f.(*cvnode).fid

	// Member 0 at width 2 owns chunk offset c when it is the data owner
	// (c = 2, 4, ...) or c%3 == 0 (parity of row c under the union rule:
	// parity objects keep row r's parity at chunk offset r). The first
	// offset it does NOT own is chunk 1: data owner is member 2, parity
	// owner of row 1 is member 1.
	sc, ofid, err := cl.memberObject(fid, c.lay, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}

	var fr proto.FetchDataReply
	err = sc.call(proto.MFetchData, proto.FetchDataArgs{
		FID: ofid, Offset: 1 * ChunkSize, Length: ChunkSize,
	}, &fr)
	if !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("fetch of unowned chunk 1 on member 0: err=%v, want ErrInvalid", err)
	}
	var sr proto.StoreDataReply
	err = sc.call(proto.MStoreData, proto.StoreDataArgs{
		FID: ofid, Offset: 1 * ChunkSize, Data: make([]byte, 16),
	}, &sr)
	if !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("store into unowned chunk 1 on member 0: err=%v, want ErrInvalid", err)
	}
	var tr proto.GetTokensReply
	err = sc.call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  ofid,
		Want: proto.TokenRequest{Types: token.DataRead, Range: token.WholeFile},
	}, &tr)
	if !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("whole-file data token on member 0: err=%v, want ErrInvalid", err)
	}

	// Owned ranges still work: chunk 2 is member 0's data chunk.
	err = sc.call(proto.MFetchData, proto.FetchDataArgs{
		FID: ofid, Offset: 2 * ChunkSize, Length: ChunkSize,
	}, &fr)
	if err != nil {
		t.Fatalf("fetch of owned chunk 2 on member 0: %v", err)
	}
	err = sc.call(proto.MGetTokens, proto.GetTokensArgs{
		FID: ofid,
		Want: proto.TokenRequest{
			Types: token.DataRead,
			Range: token.Range{Start: 2 * ChunkSize, End: 3 * ChunkSize},
		},
	}, &tr)
	if err != nil {
		t.Fatalf("data token over owned chunk 2 on member 0: %v", err)
	}
	c.checkOrder()
}

// TestStripedVerifyAndScrub covers the integrity path for striped
// files end to end: the flush pushes every chunk's leaf hash to the
// primary's logical tree; a member whose bytes stop matching its OWN
// recorded leaf is treated as rotting storage and the chunk decodes
// from parity; and a member that is self-consistent but diverged from
// the logical tree (a write it never saw) is caught and repaired only
// by ScrubStripe.
func TestStripedVerifyAndScrub(t *testing.T) {
	c := newStripedCell(t, 2)
	wcl := c.client("stripe-writer")
	root := c.mount(wcl)
	f, err := root.Create(ctx(), "verified.dat", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := stripePattern(4 * ChunkSize)
	writeAll(t, f, data, 0)
	if err := f.(*cvnode).Fsync(); err != nil {
		t.Fatal(err)
	}
	fid := f.(*cvnode).fid

	// The flush must have pushed all 4 leaf hashes to the primary: a
	// dry-run scrub of every member finds them recorded and clean.
	var checked int64
	for m := range c.lay.Members {
		res, err := f.(StripeScrubber).ScrubStripe(m, false)
		if err != nil {
			t.Fatalf("scrub member %d: %v", m, err)
		}
		if len(res.StaleChunks) != 0 {
			t.Fatalf("clean cell: member %d has stale chunks %v", m, res.StaleChunks)
		}
		checked += res.ChunksChecked
	}
	if checked != 4 {
		t.Fatalf("scrub checked %d chunks, want 4 (flush did not push hashes)", checked)
	}

	// Rotting storage: poison the member's own recorded leaf for chunk 0
	// so its data no longer matches its hash. A cold reader must detect
	// the mismatch on fetch and decode the chunk from parity instead.
	dm0 := c.lay.DataMember(0)
	sc, obj, err := wcl.memberObject(fid, c.lay, dm0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Repeat([]byte{0xa5}, 32)
	var shr proto.StoreHashesReply
	if err := sc.call(proto.MStoreHashes, proto.StoreHashesArgs{FID: obj, Start: 0, Hashes: bad}, &shr); err != nil {
		t.Fatalf("poison member leaf: %v", err)
	}
	rcl := c.client("stripe-reader")
	rroot := c.mount(rcl)
	rf, err := rroot.Lookup(ctx(), "verified.dat")
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, rf, len(data), 0); !bytes.Equal(got, data) {
		t.Fatal("read through a poisoned member returned wrong bytes")
	}
	if rcl.hashMismatches.Load() == 0 {
		t.Fatal("poisoned member leaf was never detected on fetch")
	}
	if rcl.degradedReads.Load() == 0 {
		t.Fatal("mismatching chunk was not reconstructed from parity")
	}

	// Silent divergence: overwrite part of chunk 1 directly on its member.
	// The member rehashes in the same transaction, so it is self-consistent
	// and the read path cannot see anything wrong — only the logical tree
	// on the primary still names the real bytes. ScrubStripe must flag
	// exactly chunk 1 and rewrite it from parity.
	dm1 := c.lay.DataMember(1)
	sc1, obj1, err := wcl.memberObject(fid, c.lay, dm1, false, false)
	if err != nil {
		t.Fatal(err)
	}
	var sr proto.StoreDataReply
	err = sc1.call(proto.MStoreData, proto.StoreDataArgs{
		FID: obj1, Offset: 1 * ChunkSize, Data: bytes.Repeat([]byte{0x5a}, 512),
	}, &sr)
	if err != nil {
		t.Fatalf("diverge member chunk 1: %v", err)
	}
	res, err := f.(StripeScrubber).ScrubStripe(dm1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StaleChunks) != 1 || res.StaleChunks[0] != 1 || res.Rewritten != 1 {
		t.Fatalf("scrub of diverged member: stale=%v rewritten=%d, want [1] and 1",
			res.StaleChunks, res.Rewritten)
	}
	// Repair the poisoned member too, then everything is clean again and
	// a fresh cache-cold reader verifies every chunk without a fallback.
	if res, err = f.(StripeScrubber).ScrubStripe(dm0, true); err != nil || res.Rewritten != 1 {
		t.Fatalf("scrub of poisoned member: res=%+v err=%v", res, err)
	}
	for m := range c.lay.Members {
		res, err := f.(StripeScrubber).ScrubStripe(m, false)
		if err != nil || len(res.StaleChunks) != 0 {
			t.Fatalf("post-repair member %d: res=%+v err=%v", m, res, err)
		}
	}
	fcl := c.client("stripe-final")
	froot := c.mount(fcl)
	ff, err := froot.Lookup(ctx(), "verified.dat")
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, ff, len(data), 0); !bytes.Equal(got, data) {
		t.Fatal("post-repair read mismatch")
	}
	if fcl.hashMismatches.Load() != 0 || fcl.degradedReads.Load() != 0 {
		t.Fatalf("post-repair read was not clean: mismatches=%d degraded=%d",
			fcl.hashMismatches.Load(), fcl.degradedReads.Load())
	}
	if fcl.verifiedChunks.Load() == 0 {
		t.Fatal("post-repair read verified nothing")
	}
	c.checkOrder()
}

// TestStripedRevocation puts dirty striped data on client A and has
// client B read the file: the primary revokes A's whole-file write
// token, A's revocation handler stores the dirty spans to the stripe
// members (plus status to the primary), and B sees every byte.
func TestStripedRevocation(t *testing.T) {
	c := newStripedCell(t, 2)
	a := c.client("stripe-a")
	b := c.client("stripe-b")
	rootA := c.mount(a)
	f, err := rootA.Create(ctx(), "contended.dat", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := stripePattern(3 * ChunkSize)
	writeAll(t, f, data, 0)
	// No Fsync: the bytes leave A only through the revocation.

	rootB := c.mount(b)
	fb, err := rootB.Lookup(ctx(), "contended.dat")
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, fb, len(data), 0)
	if !bytes.Equal(got, data) {
		t.Fatalf("revoked striped data mismatch: got %d bytes, want %d", len(got), len(data))
	}
	if a.revocations.Load() == 0 {
		t.Fatal("writer was never revoked")
	}
	c.checkOrder()
}
