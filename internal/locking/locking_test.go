package locking

import (
	"strings"
	"sync"
	"testing"

	"decorum/internal/fs"
)

func fid(n uint64) fs.FID { return fs.FID{Volume: 1, Vnode: n, Uniq: 1} }

func TestAscendingLevelsAllowed(t *testing.T) {
	c := New()
	c.Acquire(LevelClientHigh, fid(1))
	c.Acquire(LevelServerVnode, fid(1))
	c.Acquire(LevelClientLow, fid(1))
	c.Release(LevelClientLow, fid(1))
	c.Release(LevelServerVnode, fid(1))
	c.Release(LevelClientHigh, fid(1))
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestDescendingLevelsFlagged(t *testing.T) {
	c := New()
	c.Acquire(LevelClientLow, fid(1))
	c.Acquire(LevelServerVnode, fid(2)) // low before server: violation
	v := c.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "server-vnode") {
		t.Fatalf("violations: %v", v)
	}
}

func TestSameLevelFIDOrder(t *testing.T) {
	c := New()
	c.Acquire(LevelServerVnode, fid(1))
	c.Acquire(LevelServerVnode, fid(2)) // ascending FIDs: fine
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("ascending same-level flagged: %v", v)
	}
	c.Release(LevelServerVnode, fid(2))
	c.Acquire(LevelServerVnode, fid(0)) // descending: violation
	if v := c.Violations(); len(v) != 1 {
		t.Fatalf("violations: %v", v)
	}
}

func TestReleaseUnheldFlagged(t *testing.T) {
	c := New()
	c.Release(LevelClientHigh, fid(1))
	if v := c.Violations(); len(v) != 1 || !strings.Contains(v[0], "not held") {
		t.Fatalf("violations: %v", v)
	}
}

func TestSkippingLevelsAllowed(t *testing.T) {
	// A pure-client chain goes high -> low without a server lock.
	c := New()
	c.Acquire(LevelClientHigh, fid(1))
	c.Acquire(LevelClientLow, fid(1))
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestChainsArePerGoroutine(t *testing.T) {
	c := New()
	c.Acquire(LevelClientLow, fid(1))
	done := make(chan struct{})
	go func() {
		defer close(done)
		// This goroutine holds nothing: no violation.
		c.Acquire(LevelClientHigh, fid(2))
		c.Release(LevelClientHigh, fid(2))
	}()
	<-done
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("cross-goroutine leakage: %v", v)
	}
}

func TestNilCheckerIsNoop(t *testing.T) {
	var c *Checker
	c.Acquire(LevelClientHigh, fid(1)) // must not panic
	c.Release(LevelClientHigh, fid(1))
	if c.Violations() != nil {
		t.Fatal("nil checker returned violations")
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f := fid(uint64(g*1000 + i))
				c.Acquire(LevelClientHigh, f)
				c.Acquire(LevelClientLow, f)
				c.Release(LevelClientLow, f)
				c.Release(LevelClientHigh, f)
			}
		}(g)
	}
	wg.Wait()
	if v := c.Violations(); len(v) != 0 {
		t.Fatalf("violations under concurrency: %v", v)
	}
}

func TestLevelString(t *testing.T) {
	if LevelClientHigh.String() != "client-high" ||
		LevelServerVnode.String() != "server-vnode" ||
		LevelClientLow.String() != "client-low" {
		t.Fatal("level names wrong")
	}
}
