// Package locking encodes the deadlock-avoidance hierarchy of §6 of the
// paper and provides a debug checker that fails tests when code acquires
// locks out of order.
//
// The hierarchy (§6.1): "one always locks high-level vnode locks first,
// then server vnodes, and then low-level vnode locks":
//
//	LevelClientHigh  — the client cache manager's high-level vnode lock,
//	                   held for a whole high-level operation;
//	LevelServerVnode — the file server's per-file lock, held while the
//	                   server performs an operation and makes revocation
//	                   calls;
//	LevelClientLow   — the client's low-level vnode lock, protecting vnode
//	                   state; released before client-to-server RPCs and
//	                   retaken afterwards, and taken by revocation
//	                   handlers.
//
// Within one level, multiple locks are taken in canonical FID order.
//
// The checker tracks chains per goroutine. A distributed chain changes
// goroutines at each RPC hop, so cross-node ordering cannot be observed
// here; it is validated by the randomized no-deadlock stress test
// (experiment C8) plus the in-process orderings this checker does see.
package locking

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"decorum/internal/fs"
)

// Level is a rung of the locking hierarchy; higher values must be
// acquired after lower ones.
type Level int

// The hierarchy of §6.1, in acquisition order.
const (
	LevelClientHigh Level = 1 + iota
	LevelServerVnode
	LevelClientLow
)

func (l Level) String() string {
	switch l {
	case LevelClientHigh:
		return "client-high"
	case LevelServerVnode:
		return "server-vnode"
	case LevelClientLow:
		return "client-low"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

type held struct {
	level Level
	fid   fs.FID
}

// Checker records acquisitions per goroutine and collects violations of
// the hierarchy. The zero value is NOT usable; call New. A nil *Checker
// is safe to call (no-ops), so production paths pay one branch.
type Checker struct {
	mu     sync.Mutex
	chains map[uint64][]held
	viol   []string
}

// New returns an armed checker.
func New() *Checker {
	return &Checker{chains: make(map[uint64][]held)}
}

// gid extracts the current goroutine ID from the runtime stack header.
// Debug-only machinery, as in the standard net/http tests trick.
func gid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// "goroutine 123 [running]:"
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return 0
	}
	id, _ := strconv.ParseUint(string(fields[1]), 10, 64)
	return id
}

// Acquire records taking a lock and checks the hierarchy.
func (c *Checker) Acquire(level Level, fid fs.FID) {
	if c == nil {
		return
	}
	g := gid()
	c.mu.Lock()
	defer c.mu.Unlock()
	chain := c.chains[g]
	for _, h := range chain {
		ok := h.level < level ||
			(h.level == level && fidBefore(h.fid, fid))
		if !ok {
			c.viol = append(c.viol, fmt.Sprintf(
				"goroutine %d: %v(%v) acquired while holding %v(%v)",
				g, level, fid, h.level, h.fid))
		}
	}
	c.chains[g] = append(chain, held{level, fid})
}

// Release records dropping a lock.
func (c *Checker) Release(level Level, fid fs.FID) {
	if c == nil {
		return
	}
	g := gid()
	c.mu.Lock()
	defer c.mu.Unlock()
	chain := c.chains[g]
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].level == level && chain[i].fid == fid {
			c.chains[g] = append(chain[:i], chain[i+1:]...)
			if len(c.chains[g]) == 0 {
				delete(c.chains, g)
			}
			return
		}
	}
	c.viol = append(c.viol, fmt.Sprintf(
		"goroutine %d: release of %v(%v) not held", g, level, fid))
}

// Violations returns the recorded hierarchy violations.
func (c *Checker) Violations() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.viol...)
}

func fidBefore(a, b fs.FID) bool {
	if a.Volume != b.Volume {
		return a.Volume < b.Volume
	}
	if a.Vnode != b.Vnode {
		return a.Vnode < b.Vnode
	}
	return a.Uniq < b.Uniq
}
