// Binary bulk-data wire lane.
//
// The original transport gob-encodes every frame — including 64 KiB chunk
// payloads — paying reflection, intermediate buffers, and a full copy in
// each direction. This file adds a negotiated second lane for bulk data:
//
//   - At Start, a lane-capable peer sends a gob kindHello frame carrying
//     its wire version. A peer that predates the lane (or runs with
//     Options.DisableBinaryLane) ignores unknown frame kinds, never
//     answers, and the association stays pure gob — the mixed-version
//     fallback.
//   - On receiving a hello, a capable peer emits a gob kindSwitch frame
//     and flips its *write* side to framed transport. kindSwitch is the
//     last raw-gob value in that direction; the reader flips when it
//     decodes it, so no byte is ever parsed under the wrong framing.
//   - After the switch every outgoing message is length-prefixed:
//     [1-byte codec][4-byte big-endian payload length][payload]. Codec
//     codecGob wraps one gob-encoded frame (the persistent encoder keeps
//     its type-definition amortization because the decoder sees the same
//     byte stream, just interleaved with headers it strips first). Codec
//     codecBin is the binary data frame below.
//
// A binary frame's payload is a fixed 64-byte hand-rolled header followed
// by the authenticator, a small method-specific meta section, and the raw
// data bytes:
//
//	off  0  kind      uint8   (kindCall / kindReply)
//	off  1  priority  uint8
//	off  2  method    uint16  (compact method ID, registered via HandleBin)
//	off  4  flags     uint32  (bit 0: frame checksum present)
//	off  8  id        uint64  (call/reply matching)
//	off 16  trace     uint64
//	off 24  span      uint64
//	off 32  epoch     uint64
//	off 40  auth len  uint32
//	off 44  meta len  uint32
//	off 48  data len  uint32
//	off 52  checksum  uint32  (CRC32-C of auth+meta+data when flag bit 0 set)
//	off 56  reserved  (8 bytes, zero)
//
// Data bytes are read into their own exactly-sized buffer, so a chunk
// payload can be handed to the client's ChunkStore without another copy;
// on the send side header+meta and the payload slices go out through
// net.Buffers (writev on TCP), so a multi-chunk store batch is one
// syscall, not N encodes. Handler errors travel back as ordinary gob
// kindError frames — after the switch both codecs share the stream, so
// the error path needs no binary encoding of its own.
//
// The reader is a *bufio.Reader owned by the Peer. gob.NewDecoder uses it
// as-is (it implements io.ByteReader), reads exactly one message per
// Decode, and therefore interleaves safely with the framed reads.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"time"

	"decorum/internal/obs"
)

// WireVersion is the binary lane version this build speaks, advertised in
// the handshake hello.
const WireVersion = 1

// ErrNoBinaryLane reports a CallBin attempted before (or without) the
// binary lane being negotiated; callers fall back to the gob path.
var ErrNoBinaryLane = errors.New("rpc: binary lane not negotiated")

// Framed-transport codecs (first byte of every post-switch message).
const (
	codecGob uint8 = 1
	codecBin uint8 = 2
)

const (
	binHeaderSize = 64
	// maxFramePayload bounds a framed message; a length prefix beyond it
	// means a corrupt or hostile stream, and the peer shuts down rather
	// than allocate.
	maxFramePayload = 64 << 20

	// flagFrameCRC marks a binary frame carrying a CRC32-C of its
	// auth+meta+data sections at header offset 52. Every frame this build
	// sends sets it; a frame from an older peer leaves flags zero and is
	// accepted unchecked, so mixed versions interoperate.
	flagFrameCRC uint32 = 1 << 0
)

// castagnoli is the CRC32-C table for frame checksums — hardware-assisted
// on amd64/arm64, so the per-frame cost is a few ns per KiB.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PartsAuthenticator extends Authenticator with scatter/gather signing so
// the binary lane can authenticate header+payload without concatenating
// them into a fresh buffer. Authenticators that do not implement it fall
// back to a one-copy concatenation.
type PartsAuthenticator interface {
	Authenticator
	SignCallParts(method string, parts ...[]byte) ([]byte, error)
	VerifyCallParts(method string, sig []byte, parts ...[]byte) (any, error)
}

// BinHandler serves one binary-lane method. meta is the method-specific
// header; data is the raw payload and aliases a buffer the handler may
// retain (ownership passes to the handler). respData slices are written
// scatter/gather without copying.
type BinHandler func(ctx *CallCtx, meta, data []byte) (respMeta []byte, respData [][]byte, err error)

type binMethod struct {
	name string // method name used for authentication and errors
	h    BinHandler
}

// HandleBin registers a binary-lane method under a compact ID. name is
// the method's wire name, used for signing and error reporting (binary
// methods conventionally reuse their gob method name). Must be called
// before Start.
func (p *Peer) HandleBin(id uint16, name string, h BinHandler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.binHandlers[id] = binMethod{name: name, h: h}
}

// BinaryLane reports whether the binary lane is negotiated: this peer has
// seen the remote hello and switched its write side to framed transport.
func (p *Peer) BinaryLane() bool { return p.laneUp.Load() }

// RemoteWire reports the wire version the remote advertised, or zero for
// a gob-only remote.
func (p *Peer) RemoteWire() uint16 { return uint16(p.remoteWire.Load()) }

// sendHello advertises the binary lane, once, at Start. It runs in its
// own goroutine because a synchronous write would deadlock on in-process
// pipes (the remote's read loop may not be running yet); the hello's
// position in the stream does not matter — only kindSwitch orders the
// framing change, and writeMu serializes that. It goes through send so a
// hello racing past our own switch is framed correctly. A gob-only
// remote ignores the unknown frame kind.
func (p *Peer) sendHello() {
	if p.opts.DisableBinaryLane {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		// Send errors here mean the transport is already dead; the read
		// loop will notice and shut the peer down.
		_ = p.send(frame{Kind: kindHello, Wire: WireVersion})
	}()
}

// noteRemoteHello runs when the read loop decodes the remote's hello: the
// remote speaks the binary lane, so switch our write side to framed
// transport. kindSwitch is the last raw-gob frame we emit; everything
// after it is length-prefixed. The switch is written from a fresh
// goroutine — the read loop must never perform a blocking write, or two
// peers handshaking over an in-process pipe deadlock writing at each
// other.
//
// The lane counts as up only when both directions are confirmed: we have
// framed our write side (seen the remote hello) AND seen the remote's
// kindSwitch — which proves the remote received *our* hello, because a
// switch is only ever sent in response to one. Before that, a binary call
// could reach a peer whose write side cannot yet carry the binary reply.
func (p *Peer) noteRemoteHello(wire uint16) {
	p.remoteWire.Store(uint32(wire))
	if p.opts.DisableBinaryLane || wire == 0 {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.writeMu.Lock()
		if !p.framedOut.Load() {
			if err := p.enc.Encode(frame{Kind: kindSwitch, Epoch: p.opts.Epoch}); err == nil {
				p.framedOut.Store(true)
			}
		}
		p.writeMu.Unlock()
		if p.framedOut.Load() && p.framedIn.Load() {
			p.laneUp.Store(true)
		}
	}()
}

// noteRemoteSwitch runs when the read loop decodes the remote's
// kindSwitch: the remote's write side is framed from here on. Lock-free —
// see noteRemoteHello for why the read loop cannot touch writeMu.
func (p *Peer) noteRemoteSwitch() {
	p.framedIn.Store(true)
	if p.framedOut.Load() {
		p.laneUp.Store(true)
	}
}

// gobSink is the persistent gob encoder's destination: the connection
// while the stream is raw, the capture buffer once framed. writeFramed
// and encBuf are guarded by writeMu, which is held across every Encode.
type gobSink struct{ p *Peer }

func (s gobSink) Write(b []byte) (int, error) {
	if s.p.framedOut.Load() {
		return s.p.encBuf.Write(b)
	}
	n, err := s.p.conn.Write(b)
	s.p.countOut(n)
	return n, err
}

// meteredReader counts actual bytes read off the connection (under the
// peer's bufio.Reader, so read-ahead is included — these are wire bytes,
// not frame bytes).
type meteredReader struct{ p *Peer }

func (m meteredReader) Read(b []byte) (int, error) {
	n, err := m.p.conn.Read(b)
	m.p.countIn(n)
	return n, err
}

func (p *Peer) countOut(n int) {
	if n > 0 {
		p.wireBytesOut.Add(uint64(n))
		p.mBytesOut.Add(uint64(n))
	}
}

func (p *Peer) countIn(n int) {
	if n > 0 {
		p.wireBytesIn.Add(uint64(n))
		p.mBytesIn.Add(uint64(n))
	}
}

// writeFramedGob frames one gob-encoded frame. Caller holds writeMu with
// writeFramed set; the encoder has just written the message into encBuf.
func (p *Peer) writeFramedGob() error {
	var hdr [5]byte
	hdr[0] = codecGob
	binary.BigEndian.PutUint32(hdr[1:], uint32(p.encBuf.Len()))
	total := len(hdr) + p.encBuf.Len()
	p.mFrameBytes.ObserveNs(int64(total))
	bufs := net.Buffers{hdr[:], p.encBuf.Bytes()}
	n, err := bufs.WriteTo(p.conn)
	p.countOut(int(n))
	return err
}

// binFrame is an outgoing binary-lane message.
type binFrame struct {
	kind   uint8
	prio   uint8
	method uint16
	id     uint64
	trace  uint64
	span   uint64
	auth   []byte
	meta   []byte
	data   [][]byte
}

// sendBin transmits one binary frame: header+auth+meta build in a scratch
// buffer reused under writeMu, payload slices appended scatter/gather.
func (p *Peer) sendBin(bf binFrame) error {
	if p.opts.Latency > 0 {
		time.Sleep(p.opts.Latency)
	}
	dataLen := 0
	for _, d := range bf.data {
		dataLen += len(d)
	}
	payload := binHeaderSize + len(bf.auth) + len(bf.meta) + dataLen
	if payload > maxFramePayload {
		return fmt.Errorf("rpc: binary frame payload %d exceeds limit", payload)
	}

	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	if !p.framedOut.Load() {
		return ErrNoBinaryLane
	}
	need := 5 + binHeaderSize + len(bf.auth) + len(bf.meta)
	if cap(p.binScratch) < need {
		p.binScratch = make([]byte, need+256)
	}
	s := p.binScratch[:need]
	s[0] = codecBin
	binary.BigEndian.PutUint32(s[1:], uint32(payload))
	h := s[5:]
	h[0] = bf.kind
	h[1] = bf.prio
	binary.BigEndian.PutUint16(h[2:], bf.method)
	binary.BigEndian.PutUint32(h[4:], flagFrameCRC)
	binary.BigEndian.PutUint64(h[8:], bf.id)
	binary.BigEndian.PutUint64(h[16:], bf.trace)
	binary.BigEndian.PutUint64(h[24:], bf.span)
	binary.BigEndian.PutUint64(h[32:], p.opts.Epoch)
	binary.BigEndian.PutUint32(h[40:], uint32(len(bf.auth)))
	binary.BigEndian.PutUint32(h[44:], uint32(len(bf.meta)))
	binary.BigEndian.PutUint32(h[48:], uint32(dataLen))
	crc := crc32.Update(0, castagnoli, bf.auth)
	crc = crc32.Update(crc, castagnoli, bf.meta)
	for _, d := range bf.data {
		crc = crc32.Update(crc, castagnoli, d)
	}
	binary.BigEndian.PutUint32(h[52:], crc)
	for i := 56; i < binHeaderSize; i++ {
		h[i] = 0
	}
	off := 5 + binHeaderSize
	copy(s[off:], bf.auth)
	copy(s[off+len(bf.auth):], bf.meta)

	bufs := make(net.Buffers, 0, 1+len(bf.data))
	bufs = append(bufs, s)
	for _, d := range bf.data {
		if len(d) > 0 {
			bufs = append(bufs, d)
		}
	}
	p.mFrameBytes.ObserveNs(int64(5 + payload))
	p.binSent.Add(1)
	p.mLaneSent.Inc()
	n, err := bufs.WriteTo(p.conn)
	p.countOut(int(n))
	return err
}

// readFramedFrame reads one post-switch message. Gob payloads continue
// through the persistent decoder (which consumes exactly one message from
// the same bufio.Reader); binary payloads are parsed here, with the data
// section landing in its own exactly-sized buffer whose ownership passes
// to the consumer.
func (p *Peer) readFramedFrame(dec gobDecoder) (frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(p.br, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return frame{}, fmt.Errorf("rpc: framed payload %d exceeds limit", n)
	}
	switch hdr[0] {
	case codecGob:
		var f frame
		if err := dec.Decode(&f); err != nil {
			return frame{}, err
		}
		p.mFrameBytes.ObserveNs(int64(5 + n))
		return f, nil
	case codecBin:
		return p.readBinFrame(n)
	default:
		return frame{}, fmt.Errorf("rpc: unknown frame codec 0x%02x", hdr[0])
	}
}

type gobDecoder interface{ Decode(any) error }

func (p *Peer) readBinFrame(payload uint32) (frame, error) {
	if payload < binHeaderSize {
		return frame{}, fmt.Errorf("rpc: binary frame payload %d shorter than header", payload)
	}
	var h [binHeaderSize]byte
	if _, err := io.ReadFull(p.br, h[:]); err != nil {
		return frame{}, err
	}
	authLen := binary.BigEndian.Uint32(h[40:])
	metaLen := binary.BigEndian.Uint32(h[44:])
	dataLen := binary.BigEndian.Uint32(h[48:])
	if uint64(binHeaderSize)+uint64(authLen)+uint64(metaLen)+uint64(dataLen) != uint64(payload) {
		return frame{}, fmt.Errorf("rpc: binary frame sections (%d+%d+%d) disagree with payload %d",
			authLen, metaLen, dataLen, payload)
	}
	var authMeta []byte
	if authLen+metaLen > 0 {
		authMeta = make([]byte, authLen+metaLen)
		if _, err := io.ReadFull(p.br, authMeta); err != nil {
			return frame{}, err
		}
	}
	var data []byte
	if dataLen > 0 {
		// The payload's own buffer: handed to the consumer as-is, so a
		// chunk fetched over the lane lands in the cache with no re-copy.
		data = make([]byte, dataLen)
		if _, err := io.ReadFull(p.br, data); err != nil {
			return frame{}, err
		}
	}
	if binary.BigEndian.Uint32(h[4:])&flagFrameCRC != 0 {
		crc := crc32.Update(0, castagnoli, authMeta)
		crc = crc32.Update(crc, castagnoli, data)
		if want := binary.BigEndian.Uint32(h[52:]); crc != want {
			// A checksum failure means the stream itself is damaged —
			// nothing after this frame can be trusted either, so the error
			// propagates to readLoop, which shuts the peer down as
			// ErrClosed. Callers retry over a fresh association.
			p.frameChecksumErrs.Add(1)
			p.mFrameCRCErrs.Inc()
			return frame{}, fmt.Errorf("rpc: frame checksum mismatch (got %08x, want %08x)", crc, want)
		}
	}
	p.mFrameBytes.ObserveNs(int64(5 + payload))
	p.binReceived.Add(1)
	p.mLaneRecv.Inc()
	return frame{
		Kind:      h[0],
		Priority:  h[1],
		ID:        binary.BigEndian.Uint64(h[8:]),
		Trace:     binary.BigEndian.Uint64(h[16:]),
		Span:      binary.BigEndian.Uint64(h[24:]),
		Epoch:     binary.BigEndian.Uint64(h[32:]),
		Auth:      authMeta[:authLen:authLen],
		isBin:     true,
		binMethod: binary.BigEndian.Uint16(h[2:]),
		binMeta:   authMeta[authLen:],
		binData:   data,
	}, nil
}

// CallBin invokes a binary-lane method: meta is the method-specific
// header, data the raw payload slices (sent scatter/gather, no copy).
// The reply's meta and data come back as they arrived — respData is the
// read buffer itself, owned by the caller. Fails fast with
// ErrNoBinaryLane when the lane is not negotiated; callers fall back to
// the gob path (counted in rpc.lane_fallbacks).
func (p *Peer) CallBin(id uint16, method string, meta []byte, data [][]byte, prio Priority, tc obs.SpanContext) (respMeta, respData []byte, err error) {
	if !p.laneUp.Load() {
		p.laneFallbacks.Add(1)
		p.mLaneFallback.Inc()
		return nil, nil, ErrNoBinaryLane
	}
	var sig []byte
	if p.opts.Auth != nil {
		sig, err = p.signParts(method, meta, data)
		if err != nil {
			return nil, nil, err
		}
	}

	var callSC obs.SpanContext
	if !tc.IsZero() || p.reg != nil {
		callSC = tc.Child()
	}
	start := time.Now()

	ch := make(chan frame, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, nil, p.closeErr
	}
	p.nextID++
	callID := p.nextID
	p.pending[callID] = ch
	p.mu.Unlock()

	err = p.sendBin(binFrame{
		kind: kindCall, prio: uint8(prio), method: id, id: callID,
		trace: callSC.Trace, span: callSC.Span,
		auth: sig, meta: meta, data: data,
	})
	if err != nil {
		p.mu.Lock()
		delete(p.pending, callID)
		p.mu.Unlock()
		if errors.Is(err, ErrNoBinaryLane) {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("%w: send %s: %v", ErrClosed, method, err)
	}
	p.callsSent.Add(1)
	p.mCallsSent.Inc()

	resp, ok, err := p.awaitReply(callID, ch, method)
	p.mCallNs.Observe(time.Since(start))
	p.finishCallSpan(method, callSC, tc.Span, start)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, ErrClosed
	}
	if resp.Kind == kindError {
		return nil, nil, RemoteError{Method: method, Msg: resp.ErrMsg}
	}
	return resp.binMeta, resp.binData, nil
}

// signParts signs a binary call without concatenating header and payload
// when the authenticator supports it.
func (p *Peer) signParts(method string, meta []byte, data [][]byte) ([]byte, error) {
	if pa, ok := p.opts.Auth.(PartsAuthenticator); ok {
		parts := make([][]byte, 0, 1+len(data))
		parts = append(parts, meta)
		parts = append(parts, data...)
		return pa.SignCallParts(method, parts...)
	}
	return p.opts.Auth.SignCall(method, concatParts(meta, data))
}

func (p *Peer) verifyParts(method string, sig, meta, data []byte) (any, error) {
	if pa, ok := p.opts.Auth.(PartsAuthenticator); ok {
		return pa.VerifyCallParts(method, sig, meta, data)
	}
	return p.opts.Auth.VerifyCall(method, concatParts(meta, [][]byte{data}), sig)
}

func concatParts(meta []byte, data [][]byte) []byte {
	n := len(meta)
	for _, d := range data {
		n += len(d)
	}
	out := make([]byte, 0, n)
	out = append(out, meta...)
	for _, d := range data {
		out = append(out, d...)
	}
	return out
}

// dispatchBin serves one incoming binary call on a worker.
func (p *Peer) dispatchBin(f frame) {
	p.mu.Lock()
	bm, ok := p.binHandlers[f.binMethod]
	p.mu.Unlock()
	if !ok {
		p.sendReply(frame{Kind: kindError, ID: f.ID, ErrMsg: fmt.Sprintf("%v: bin method %d", ErrNoMethod, f.binMethod)})
		return
	}
	var identity any
	if p.opts.Auth != nil {
		id, err := p.verifyParts(bm.name, f.Auth, f.binMeta, f.binData)
		if err != nil {
			p.sendReply(frame{Kind: kindError, ID: f.ID, ErrMsg: ErrAuth.Error()})
			return
		}
		identity = id
	}
	var tc obs.SpanContext
	if f.Trace != 0 {
		tc = obs.SpanContext{Trace: f.Trace, Span: obs.NewID()}
	}
	start := time.Now()
	ctx := &CallCtx{Peer: p, Identity: identity, Priority: Priority(f.Priority), Trace: tc}
	respMeta, respData, err := bm.h(ctx, f.binMeta, f.binData)
	p.mServeNs.Observe(time.Since(start))
	if p.reg != nil && !tc.IsZero() {
		p.reg.RecordSpan(obs.Span{
			Trace: tc.Trace, Span: tc.Span, Parent: f.Span,
			Name: "rpc.serve " + bm.name, Start: start, Dur: time.Since(start),
		})
	}
	if err != nil {
		p.sendReply(frame{Kind: kindError, ID: f.ID, ErrMsg: err.Error()})
		return
	}
	if err := p.sendBin(binFrame{kind: kindReply, id: f.ID, meta: respMeta, data: respData}); err != nil {
		p.replySendErrors.Add(1)
		p.mReplySendErrs.Inc()
		p.shutdown(fmt.Errorf("%w: reply send failed: %v", ErrClosed, err))
	}
}
