package rpc

import (
	"testing"
	"time"
)

// Every frame a peer sends carries its configured restart epoch; the
// other side observes it via RemoteEpoch. A peer with no epoch (the
// client side) leaves the remote's view untouched.
func TestEpochStamping(t *testing.T) {
	client, server := startPair(t, Options{}, Options{Epoch: 42})
	server.Handle("echo", func(ctx *CallCtx, body []byte) ([]byte, error) {
		var a echoArgs
		if err := Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return Marshal(echoReply{S: a.S})
	})
	client.Start()
	server.Start()
	if got := client.RemoteEpoch(); got != 0 {
		t.Fatalf("remote epoch before any traffic = %d, want 0", got)
	}
	var r echoReply
	if err := client.Call("echo", echoArgs{S: "x"}, &r); err != nil {
		t.Fatal(err)
	}
	if got := client.RemoteEpoch(); got != 42 {
		t.Fatalf("client's view of server epoch = %d, want 42", got)
	}
	// The client sent no epoch, so the server's view stays zero.
	if got := server.RemoteEpoch(); got != 0 {
		t.Fatalf("server's view of client epoch = %d, want 0", got)
	}
}

// Done closes exactly when the association dies.
func TestDoneSignalsShutdown(t *testing.T) {
	p1, p2 := startPair(t, Options{}, Options{})
	p1.Start()
	p2.Start()
	select {
	case <-p1.Done():
		t.Fatal("Done closed while the peer was alive")
	default:
	}
	p2.Close()
	select {
	case <-p1.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("Done never closed after the remote side closed")
	}
}
