package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"net"
	"testing"
	"time"

	"decorum/internal/obs"
)

// waitLane blocks until p reports the binary lane negotiated; the
// handshake is asynchronous (hello → switch, both off the read loop).
func waitLane(t *testing.T, p *Peer) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !p.BinaryLane() {
		if time.Now().After(deadline) {
			t.Fatal("binary lane never came up")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBinaryLaneNegotiation: two lane-capable peers handshake and a
// CallBin round-trips a bulk payload — sent scatter/gather in parts,
// received as one contiguous buffer — with the lane counters moving.
func TestBinaryLaneNegotiation(t *testing.T) {
	p1, p2 := startPair(t, Options{}, Options{})
	p2.HandleBin(7, "bin.echo", func(ctx *CallCtx, meta, data []byte) ([]byte, [][]byte, error) {
		return append([]byte("meta:"), meta...), [][]byte{data}, nil
	})
	p1.Start()
	p2.Start()
	waitLane(t, p1)
	waitLane(t, p2)
	if w := p1.RemoteWire(); w != WireVersion {
		t.Fatalf("RemoteWire = %d, want %d", w, WireVersion)
	}

	a := bytes.Repeat([]byte{0xA5}, 40<<10)
	b := bytes.Repeat([]byte{0x5A}, 24<<10)
	respMeta, respData, err := p1.CallBin(7, "bin.echo", []byte("m"), [][]byte{a, b}, PriorityNormal, obs.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if string(respMeta) != "meta:m" {
		t.Fatalf("respMeta = %q", respMeta)
	}
	want := append(append([]byte(nil), a...), b...)
	if !bytes.Equal(respData, want) {
		t.Fatalf("respData mismatch: %d bytes, want %d", len(respData), len(want))
	}
	if s := p1.Stats(); s.BinSent == 0 || s.BinReceived == 0 || s.LaneFallbacks != 0 {
		t.Fatalf("p1 lane stats: %+v", s)
	}
	if s := p2.Stats(); s.BinReceived == 0 || s.BinSent == 0 {
		t.Fatalf("p2 lane stats: %+v", s)
	}
	if s := p1.Stats(); s.WireBytesOut < 64<<10 || s.WireBytesIn < 64<<10 {
		t.Fatalf("wire byte counters did not see the payload: %+v", s)
	}
}

// TestBinaryLaneHandlerError: a failing binary handler surfaces as an
// ordinary RemoteError (the error reply rides gob even post-switch), so
// the errclass machinery sees the same shapes on both lanes.
func TestBinaryLaneHandlerError(t *testing.T) {
	p1, p2 := startPair(t, Options{}, Options{})
	p2.HandleBin(9, "bin.fail", func(ctx *CallCtx, meta, data []byte) ([]byte, [][]byte, error) {
		return nil, nil, errors.New("kaboom")
	})
	p1.Start()
	p2.Start()
	waitLane(t, p1)
	_, _, err := p1.CallBin(9, "bin.fail", nil, nil, PriorityNormal, obs.SpanContext{})
	var re RemoteError
	if !errors.As(err, &re) || re.Msg == "" {
		t.Fatalf("want RemoteError, got %v", err)
	}
	// And both peers must still be healthy.
	select {
	case <-p1.Done():
		t.Fatal("caller shut down after a handler error")
	default:
	}
}

// TestBinaryLaneGobOnlyPeer: against a peer that never advertises the
// lane, CallBin reports ErrNoBinaryLane (counted as a fallback) and gob
// calls keep working — the mixed-version story.
func TestBinaryLaneGobOnlyPeer(t *testing.T) {
	p1, p2 := startPair(t, Options{}, Options{DisableBinaryLane: true})
	p2.Handle("echo", func(ctx *CallCtx, body []byte) ([]byte, error) {
		var a echoArgs
		if err := Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return Marshal(echoReply{S: a.S + "!"})
	})
	p1.Start()
	p2.Start()

	// Let the (one-sided) handshake drain: p2 sees p1's hello and must
	// ignore it rather than switch framing.
	var r echoReply
	if err := p1.Call("echo", echoArgs{S: "hi"}, &r); err != nil || r.S != "hi!" {
		t.Fatalf("gob call: %v %q", err, r.S)
	}
	if p1.BinaryLane() || p2.BinaryLane() {
		t.Fatal("lane negotiated against a gob-only peer")
	}
	if _, _, err := p1.CallBin(7, "bin.echo", nil, nil, PriorityNormal, obs.SpanContext{}); !errors.Is(err, ErrNoBinaryLane) {
		t.Fatalf("CallBin without lane: %v", err)
	}
	if n := p1.Stats().LaneFallbacks; n != 1 {
		t.Fatalf("LaneFallbacks = %d, want 1", n)
	}
	// Bulk traffic still flows over gob, byte-identical.
	if err := p1.Call("echo", echoArgs{S: "again"}, &r); err != nil || r.S != "again!" {
		t.Fatalf("gob call after fallback: %v %q", err, r.S)
	}
}

// rawLanePeer builds one real peer on a pipe and hand-drives the remote
// half of the lane handshake from the test, returning the raw test-side
// conn once the peer's read side expects framed input.
func rawLanePeer(t *testing.T) (*Peer, net.Conn) {
	t.Helper()
	c1, c2 := net.Pipe()
	p := NewPeer(c1, Options{})
	t.Cleanup(func() { p.Close(); c2.Close() })
	p.Start()

	dec := gob.NewDecoder(c2)
	enc := gob.NewEncoder(c2)
	var f frame
	if err := dec.Decode(&f); err != nil || f.Kind != kindHello {
		t.Fatalf("want peer hello, got kind %d err %v", f.Kind, err)
	}
	if err := enc.Encode(frame{Kind: kindHello, Wire: WireVersion}); err != nil {
		t.Fatal(err)
	}
	// Our hello makes the peer switch its write side; its kindSwitch is
	// the last raw-gob message it sends.
	if err := dec.Decode(&f); err != nil || f.Kind != kindSwitch {
		t.Fatalf("want peer switch, got kind %d err %v", f.Kind, err)
	}
	// Our own switch is the last raw-gob message the peer reads; from
	// here its read loop expects [codec][len] framing from us.
	if err := enc.Encode(frame{Kind: kindSwitch}); err != nil {
		t.Fatal(err)
	}
	waitLane(t, p)
	return p, c2
}

// wantClosed asserts the peer shut down and classifies the failure as
// the retryable ErrClosed (the shape the client recovery path switches
// on), within a bounded wait — a hang here is the bug under test.
func wantClosed(t *testing.T, p *Peer) {
	t.Helper()
	select {
	case <-p.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("peer did not shut down on a corrupt frame")
	}
	err := p.Call("echo", echoArgs{}, &echoReply{})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("call after corrupt frame: %v, want ErrClosed", err)
	}
}

// TestBinaryLaneCorruptFrame: a binary frame whose section lengths
// disagree with the payload must close the peer cleanly — no hang, and
// later calls fail with the classified ErrClosed.
func TestBinaryLaneCorruptFrame(t *testing.T) {
	p, c2 := rawLanePeer(t)
	// Outer frame: codecBin, declared payload 64 bytes (header only) —
	// but the header claims a 1 MiB data section that is not there.
	hdr := make([]byte, binHeaderSize)
	hdr[0] = byte(kindCall)
	binary.BigEndian.PutUint32(hdr[48:], 1<<20) // dataLen
	out := append([]byte{codecBin, 0, 0, 0, byte(binHeaderSize)}, hdr...)
	if _, err := c2.Write(out); err != nil {
		t.Fatal(err)
	}
	wantClosed(t, p)
}

// TestBinaryLaneOversizedFrame: a declared frame length beyond the lane
// cap must be rejected before any allocation, closing the peer.
func TestBinaryLaneOversizedFrame(t *testing.T) {
	p, c2 := rawLanePeer(t)
	out := []byte{codecBin, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := c2.Write(out); err != nil {
		t.Fatal(err)
	}
	wantClosed(t, p)
}

// TestBinaryLaneTruncatedFrame: the transport dying mid-frame (header
// promises more bytes than ever arrive) must also end in a clean
// ErrClosed shutdown, not a stuck read loop.
func TestBinaryLaneTruncatedFrame(t *testing.T) {
	p, c2 := rawLanePeer(t)
	out := []byte{codecBin, 0, 0, 4, 0} // 1 KiB promised
	out = append(out, make([]byte, 16)...)
	if _, err := c2.Write(out); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	wantClosed(t, p)
}

// TestBinaryLaneChecksumMismatch: a binary frame whose CRC32-C does not
// match its sections means the stream is damaged; the peer must count it
// and shut down as the retryable ErrClosed rather than hand corrupt
// bytes to a handler.
func TestBinaryLaneChecksumMismatch(t *testing.T) {
	p, c2 := rawLanePeer(t)
	data := []byte("payload that will be corrupted")
	hdr := make([]byte, binHeaderSize)
	hdr[0] = byte(kindCall)
	binary.BigEndian.PutUint32(hdr[4:], flagFrameCRC)
	binary.BigEndian.PutUint32(hdr[48:], uint32(len(data)))
	crc := crc32.Checksum(data, castagnoli)
	binary.BigEndian.PutUint32(hdr[52:], crc)
	payload := binHeaderSize + len(data)
	out := append([]byte{codecBin, 0, 0, 0, byte(payload)}, hdr...)
	out = append(out, data...)
	out[len(out)-3] ^= 0x40 // flip one payload bit in transit
	if _, err := c2.Write(out); err != nil {
		t.Fatal(err)
	}
	wantClosed(t, p)
	if n := p.Stats().FrameChecksumErrors; n != 1 {
		t.Fatalf("FrameChecksumErrors = %d, want 1", n)
	}
}

// TestBinaryLaneNoChecksumAccepted: a frame with flags zero (an older
// peer that predates frame checksums) is accepted unchecked — the
// mixed-version contract for the reserved flag bit.
func TestBinaryLaneNoChecksumAccepted(t *testing.T) {
	p, c2 := rawLanePeer(t)
	served := make(chan []byte, 1)
	p.binHandlers[3] = binMethod{name: "bin.sink", h: func(ctx *CallCtx, meta, data []byte) ([]byte, [][]byte, error) {
		served <- append([]byte(nil), data...)
		return nil, nil, nil
	}}
	data := []byte("legacy frame, no checksum")
	hdr := make([]byte, binHeaderSize)
	hdr[0] = byte(kindCall)
	binary.BigEndian.PutUint16(hdr[2:], 3)
	binary.BigEndian.PutUint64(hdr[8:], 1)
	binary.BigEndian.PutUint32(hdr[48:], uint32(len(data)))
	payload := binHeaderSize + len(data)
	out := append([]byte{codecBin, 0, 0, 0, byte(payload)}, hdr...)
	out = append(out, data...)
	if _, err := c2.Write(out); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-served:
		if !bytes.Equal(got, data) {
			t.Fatalf("handler saw %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unchecksummed frame was not dispatched")
	}
	if n := p.Stats().FrameChecksumErrors; n != 0 {
		t.Fatalf("FrameChecksumErrors = %d, want 0", n)
	}
}

// TestBinaryLaneUnknownCodec: a framed message with an unknown codec
// byte desynchronizes the stream by definition; the peer must give up
// rather than guess.
func TestBinaryLaneUnknownCodec(t *testing.T) {
	p, c2 := rawLanePeer(t)
	if _, err := c2.Write([]byte{0x7F, 0, 0, 0, 4, 1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	wantClosed(t, p)
}
