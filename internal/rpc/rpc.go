// Package rpc is the remote procedure call substrate standing in for
// Hewlett-Packard's NCS 2.0 (§1 of the paper). It supplies exactly the
// properties the DEcorum file system needs:
//
//   - connection-oriented, bidirectional calls: "RPC communication between
//     DEcorum clients and DEcorum servers is two-way: clients call servers
//     to access files, and servers call clients to revoke tokens" (§5.3) —
//     both directions run over one association (a Peer);
//   - authentication on every call (§3.7), via a pluggable Authenticator
//     (internal/auth supplies the Kerberos-style one);
//   - distinct worker classes: a peer reserves workers for calls flagged
//     PriorityRevoke, so a token-revocation store-back can always make
//     progress even when the normal request pool is saturated — the
//     deadlock the paper warns about in §6.4;
//   - instrumentation: message and byte counters per peer, plus an
//     optional per-message simulated latency, which is what the
//     consistency-traffic experiments (C3–C5) measure.
package rpc

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"decorum/internal/obs"
)

// Priority classes for calls (§6.4).
type Priority uint8

const (
	// PriorityNormal is the default request class.
	PriorityNormal Priority = iota
	// PriorityRevoke marks calls issued from token-revocation handlers;
	// they are served by reserved workers that normal traffic cannot
	// exhaust.
	PriorityRevoke
)

// frame kinds. kindHello and kindSwitch are the binary-lane handshake
// (wire.go); peers that predate the lane fall through their readLoop
// switch on unknown kinds, which is exactly the fallback the negotiation
// relies on.
const (
	kindCall   uint8 = 1
	kindReply  uint8 = 2
	kindError  uint8 = 3
	kindHello  uint8 = 4
	kindSwitch uint8 = 5
)

type frame struct {
	Kind     uint8
	ID       uint64
	Method   string
	Priority uint8
	Auth     []byte
	Body     []byte
	ErrMsg   string
	// Trace/Span carry the caller's span context so one vnode operation
	// can be followed client → server → revocation callback → second
	// client (obs package). Zero means the call is untraced.
	Trace uint64
	Span  uint64
	// Epoch is the sender's restart epoch (token state recovery): a
	// server stamps its incarnation into every frame it sends, so the
	// remote end can detect a restart from any reply. Zero means the
	// sender has no epoch (clients, untagged peers).
	Epoch uint64
	// Wire is the binary-lane version, carried only on kindHello frames.
	Wire uint16

	// In-memory-only binary-lane fields (unexported, so the gob codec
	// never sees them): a codecBin frame carries its method as a compact
	// ID and its payload split into meta and raw data.
	isBin     bool
	binMethod uint16
	binMeta   []byte
	binData   []byte
}

// Errors.
var (
	ErrClosed   = errors.New("rpc: peer closed")
	ErrNoMethod = errors.New("rpc: no such method")
	ErrAuth     = errors.New("rpc: authentication failed")
	ErrTimeout  = errors.New("rpc: call timed out")
)

// CallCtx carries per-call context into handlers.
type CallCtx struct {
	// Peer is the association the call arrived on; handlers use it to
	// make calls back (revocations, store-backs).
	Peer *Peer
	// Identity is whatever the Authenticator attached (e.g.
	// auth.Identity); nil without authentication.
	Identity any
	// Priority is the class the caller requested.
	Priority Priority
	// Trace is the handler's span context: same trace as the remote
	// caller, with a fresh span for this procedure. Handlers pass it (or
	// a Child) into any calls they make on behalf of this one — most
	// importantly the token-revocation callbacks — so the trace crosses
	// machines. Zero when the caller was untraced.
	Trace obs.SpanContext
}

// Handler serves one method. args is the gob-encoded argument; the return
// is gob-encoded into the reply.
type Handler func(ctx *CallCtx, body []byte) ([]byte, error)

// Authenticator signs outgoing calls and verifies incoming ones.
type Authenticator interface {
	// SignCall produces the Auth field for an outgoing call.
	SignCall(method string, body []byte) ([]byte, error)
	// VerifyCall checks an incoming call and returns the caller identity.
	VerifyCall(method string, body, sig []byte) (any, error)
}

// Stats counts traffic over one peer, the instrument behind C3–C5.
type Stats struct {
	CallsSent       uint64
	CallsReceived   uint64
	BytesSent       uint64
	BytesReceived   uint64
	ReplySendErrors uint64
	Timeouts        uint64
	// Wire-level accounting (actual bytes on the connection, both
	// framings) and binary-lane traffic.
	WireBytesIn   uint64
	WireBytesOut  uint64
	BinSent       uint64
	BinReceived   uint64
	LaneFallbacks uint64
	// FrameChecksumErrors counts binary frames whose CRC32-C failed on
	// receive; each one shuts the association down (the stream is damaged).
	FrameChecksumErrors uint64
}

// Options configures a Peer.
type Options struct {
	// Auth authenticates calls; nil allows unauthenticated peers (tests).
	Auth Authenticator
	// Workers is the normal worker pool size (default 8).
	Workers int
	// ReservedWorkers serve PriorityRevoke calls (default 2, §6.4).
	ReservedWorkers int
	// Latency is a simulated one-way network delay applied to each
	// message (experiments; default 0).
	Latency time.Duration
	// CallTimeout bounds how long a Call waits for the remote reply; 0
	// (the default) preserves the historical wait-forever behavior. On
	// expiry the call returns ErrTimeout; the association stays up.
	CallTimeout time.Duration
	// Metrics, when set, aggregates this peer's traffic into the shared
	// registry (counters rpc.calls_sent etc., histograms rpc.call_ns and
	// rpc.serve_ns) and enables span recording; every peer a process
	// creates normally shares the process registry. The per-peer Stats()
	// view works with or without it.
	Metrics *obs.Registry
	// Epoch, when nonzero, is stamped into every frame this peer sends
	// (calls and replies alike). Servers set it to their restart epoch so
	// clients learn the incarnation from any traffic, per token state
	// recovery.
	Epoch uint64
	// DisableBinaryLane keeps this peer gob-only: it neither advertises
	// the binary wire version at Start nor switches to framed transport
	// when the remote does. It stands in for a pre-lane build in the
	// mixed-version tests and the load-smoke fallback drill.
	DisableBinaryLane bool
}

// Peer is one end of a bidirectional RPC association.
type Peer struct {
	conn net.Conn
	opts Options
	// br is the peer's own buffered reader: it implements io.ByteReader,
	// so the gob decoder adds no buffering of its own and reads exactly
	// one message per Decode — which is what lets the framed binary lane
	// interleave with gob on the same stream (wire.go).
	br *bufio.Reader

	writeMu sync.Mutex
	enc     *gob.Encoder
	// Binary-lane write state, guarded by writeMu: once writeFramed is
	// set every outgoing message is length-prefixed; encBuf captures each
	// gob Encode so it can be framed, binScratch holds binary headers.
	// framedOut is flipped (once) under writeMu but read with atomic
	// loads, because the read loop consults it without taking writeMu —
	// it must never block on the write path or in-process pipes deadlock.
	framedOut  atomic.Bool
	framedIn   atomic.Bool
	encBuf     bytes.Buffer
	binScratch []byte

	mu          sync.Mutex
	handlers    map[string]Handler
	binHandlers map[uint16]binMethod
	pending     map[uint64]chan frame
	nextID      uint64
	closed      bool
	closeErr    error

	// Incoming calls flow readLoop -> inNormal/inReserved -> pump ->
	// normalQ/reservedQ -> workers. The pumps buffer without bound so the
	// read loop never stalls behind a saturated worker pool; concurrency
	// is still capped by the fixed pools (§6.4's point).
	inNormal   chan frame
	inReserved chan frame
	normalQ    chan frame
	reservedQ  chan frame
	done       chan struct{}
	wg         sync.WaitGroup

	callsSent         atomic.Uint64
	callsReceived     atomic.Uint64
	bytesSent         atomic.Uint64
	bytesReceived     atomic.Uint64
	replySendErrors   atomic.Uint64
	timeouts          atomic.Uint64
	remoteEpoch       atomic.Uint64
	laneUp            atomic.Bool
	remoteWire        atomic.Uint32
	wireBytesIn       atomic.Uint64
	wireBytesOut      atomic.Uint64
	binSent           atomic.Uint64
	binReceived       atomic.Uint64
	laneFallbacks     atomic.Uint64
	frameChecksumErrs atomic.Uint64

	// Shared-registry views, resolved once at NewPeer from opts.Metrics;
	// all nil (no-op) when the peer is unregistered.
	reg            *obs.Registry
	mCallsSent     *obs.Counter
	mCallsReceived *obs.Counter
	mBytesSent     *obs.Counter
	mBytesReceived *obs.Counter
	mReplySendErrs *obs.Counter
	mTimeouts      *obs.Counter
	mCallNs        *obs.Histogram
	mServeNs       *obs.Histogram
	mBytesIn       *obs.Counter
	mBytesOut      *obs.Counter
	mFrameBytes    *obs.Histogram
	mLaneSent      *obs.Counter
	mLaneRecv      *obs.Counter
	mLaneFallback  *obs.Counter
	mFrameCRCErrs  *obs.Counter
}

// NewPeer wraps conn. Call Handle to register methods, then Serve (or use
// Start which runs Serve in a goroutine).
func NewPeer(conn net.Conn, opts Options) *Peer {
	if opts.Workers <= 0 {
		opts.Workers = 8
	}
	if opts.ReservedWorkers <= 0 {
		opts.ReservedWorkers = 2
	}
	p := &Peer{
		conn:        conn,
		opts:        opts,
		handlers:    make(map[string]Handler),
		binHandlers: make(map[uint16]binMethod),
		pending:     make(map[uint64]chan frame),
		inNormal:    make(chan frame),
		inReserved:  make(chan frame),
		normalQ:     make(chan frame),
		reservedQ:   make(chan frame),
		done:        make(chan struct{}),
	}
	// The encoder writes through gobSink (conn until the binary-lane
	// switch, then the framing capture buffer); the reader is our own
	// bufio so the gob decoder and the framed reads share one stream.
	p.enc = gob.NewEncoder(gobSink{p})
	p.br = bufio.NewReaderSize(meteredReader{p}, 32<<10)
	if opts.Metrics != nil {
		p.reg = opts.Metrics
		p.mCallsSent = p.reg.Counter("rpc.calls_sent")
		p.mCallsReceived = p.reg.Counter("rpc.calls_received")
		p.mBytesSent = p.reg.Counter("rpc.bytes_sent")
		p.mBytesReceived = p.reg.Counter("rpc.bytes_received")
		p.mReplySendErrs = p.reg.Counter("rpc.reply_send_errors")
		p.mTimeouts = p.reg.Counter("rpc.timeouts")
		p.mCallNs = p.reg.Histogram("rpc.call_ns")
		p.mServeNs = p.reg.Histogram("rpc.serve_ns")
		p.mBytesIn = p.reg.Counter("rpc.bytes_in")
		p.mBytesOut = p.reg.Counter("rpc.bytes_out")
		p.mFrameBytes = p.reg.Histogram("rpc.frame_bytes")
		p.mLaneSent = p.reg.Counter("rpc.lane_bin_sent")
		p.mLaneRecv = p.reg.Counter("rpc.lane_bin_received")
		p.mLaneFallback = p.reg.Counter("rpc.lane_fallbacks")
		p.mFrameCRCErrs = p.reg.Counter("rpc.frame_checksum_errors")
	}
	return p
}

// Handle registers a method. Must be called before Start.
func (p *Peer) Handle(method string, h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handlers[method] = h
}

// Start launches the worker pools and the read loop. A lane-capable peer
// first advertises the binary wire version; a gob-only remote ignores the
// unknown frame kind and the association stays pure gob.
func (p *Peer) Start() {
	p.sendHello()
	for i := 0; i < p.opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker(p.normalQ)
	}
	for i := 0; i < p.opts.ReservedWorkers; i++ {
		p.wg.Add(1)
		go p.worker(p.reservedQ)
	}
	p.wg.Add(2)
	go p.pump(p.inNormal, p.normalQ)
	go p.pump(p.inReserved, p.reservedQ)
	p.wg.Add(1)
	go p.readLoop()
}

// pump forwards frames with unbounded buffering.
func (p *Peer) pump(in, out chan frame) {
	defer p.wg.Done()
	var backlog []frame
	for {
		var send chan frame
		var next frame
		if len(backlog) > 0 {
			send = out
			next = backlog[0]
		}
		select {
		case f := <-in:
			backlog = append(backlog, f)
		case send <- next:
			backlog = backlog[1:]
		case <-p.done:
			return
		}
	}
}

// Close tears down the association; in-flight calls fail with ErrClosed.
func (p *Peer) Close() error {
	p.shutdown(ErrClosed)
	return nil
}

func (p *Peer) shutdown(err error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.closeErr = err
	for id, ch := range p.pending {
		close(ch)
		delete(p.pending, id)
	}
	p.mu.Unlock()
	close(p.done)
	p.conn.Close()
}

// Done returns a channel closed when the association shuts down — on
// Close, a transport error, or remote hangup. The client resource layer
// watches it to begin reconnect + token reclaim without waiting for the
// next call to fail.
func (p *Peer) Done() <-chan struct{} { return p.done }

// RemoteEpoch reports the restart epoch most recently seen in a frame
// from the remote end, or zero if the remote never stamped one.
func (p *Peer) RemoteEpoch() uint64 { return p.remoteEpoch.Load() }

// Stats returns the peer's traffic counters.
func (p *Peer) Stats() Stats {
	return Stats{
		CallsSent:       p.callsSent.Load(),
		CallsReceived:   p.callsReceived.Load(),
		BytesSent:       p.bytesSent.Load(),
		BytesReceived:   p.bytesReceived.Load(),
		ReplySendErrors: p.replySendErrors.Load(),
		Timeouts:        p.timeouts.Load(),
		WireBytesIn:     p.wireBytesIn.Load(),
		WireBytesOut:    p.wireBytesOut.Load(),
		BinSent:         p.binSent.Load(),
		BinReceived:     p.binReceived.Load(),
		LaneFallbacks:   p.laneFallbacks.Load(),

		FrameChecksumErrors: p.frameChecksumErrs.Load(),
	}
}

func (p *Peer) send(f frame) error {
	f.Epoch = p.opts.Epoch
	if p.opts.Latency > 0 {
		time.Sleep(p.opts.Latency)
	}
	p.writeMu.Lock()
	defer p.writeMu.Unlock()
	n := uint64(len(f.Body) + len(f.Auth) + len(f.Method) + 16)
	p.bytesSent.Add(n)
	p.mBytesSent.Add(n)
	if !p.framedOut.Load() {
		p.mFrameBytes.ObserveNs(int64(n))
		return p.enc.Encode(f)
	}
	// Framed transport: capture the gob message and length-prefix it.
	p.encBuf.Reset()
	if err := p.enc.Encode(f); err != nil {
		return err
	}
	return p.writeFramedGob()
}

// Call invokes method on the remote end, gob-encoding args and decoding
// the result into reply (which may be nil for void methods).
func (p *Peer) Call(method string, args, reply any) error {
	return p.CallPriority(method, args, reply, PriorityNormal)
}

// CallPriority is Call with an explicit worker class; revocation handlers
// use PriorityRevoke for their store-backs (§6.4).
func (p *Peer) CallPriority(method string, args, reply any, prio Priority) error {
	return p.CallTraced(method, args, reply, prio, obs.SpanContext{})
}

// CallTraced is CallPriority carrying an explicit trace context. The call
// becomes a child span of tc, stamped into the frame so the remote
// handler (and anything it calls in turn) continues the same trace. With
// a zero tc, a registered peer roots a fresh trace — tracing starts at
// the outermost call site with no caller changes — while an unregistered
// peer stays untraced.
func (p *Peer) CallTraced(method string, args, reply any, prio Priority, tc obs.SpanContext) error {
	// Encode into a pooled scratch buffer: the bytes are consumed
	// synchronously by send (gob-copied or framed-copied into the
	// stream), so the buffer can go back to the pool when we return.
	body := bufPool.Get().(*bytes.Buffer)
	body.Reset()
	defer bufPool.Put(body)
	if args != nil {
		if err := gob.NewEncoder(body).Encode(args); err != nil {
			return err
		}
	}
	var sig []byte
	if p.opts.Auth != nil {
		s, err := p.opts.Auth.SignCall(method, body.Bytes())
		if err != nil {
			return err
		}
		sig = s
	}

	var callSC obs.SpanContext
	if !tc.IsZero() || p.reg != nil {
		callSC = tc.Child()
	}
	start := time.Now()

	ch := make(chan frame, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.closeErr
	}
	p.nextID++
	id := p.nextID
	p.pending[id] = ch
	p.mu.Unlock()

	err := p.send(frame{
		Kind: kindCall, ID: id, Method: method,
		Priority: uint8(prio), Auth: sig, Body: body.Bytes(),
		Trace: callSC.Trace, Span: callSC.Span,
	})
	if err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		// A failed frame write means the association is gone; classify it
		// so callers can distinguish transport loss from remote errors.
		return fmt.Errorf("%w: send %s: %v", ErrClosed, method, err)
	}
	p.callsSent.Add(1)
	p.mCallsSent.Inc()

	resp, ok, werr := p.awaitReply(id, ch, method)
	p.mCallNs.Observe(time.Since(start))
	p.finishCallSpan(method, callSC, tc.Span, start)
	if werr != nil {
		return werr
	}
	if !ok {
		return ErrClosed
	}
	if resp.Kind == kindError {
		return RemoteError{Method: method, Msg: resp.ErrMsg}
	}
	if reply != nil {
		return gob.NewDecoder(bytes.NewReader(resp.Body)).Decode(reply)
	}
	return nil
}

// awaitReply blocks for the reply to call id, honoring CallTimeout. ok is
// false when the peer shut down under the call.
func (p *Peer) awaitReply(id uint64, ch chan frame, method string) (resp frame, ok bool, err error) {
	if p.opts.CallTimeout > 0 {
		timer := time.NewTimer(p.opts.CallTimeout)
		defer timer.Stop()
		select {
		case resp, ok = <-ch:
		case <-timer.C:
			// Abandon the pending slot; a late reply finds no waiter and
			// is dropped by readLoop. The delivery channel is buffered,
			// so a reply racing this delete cannot block the read loop.
			p.mu.Lock()
			delete(p.pending, id)
			p.mu.Unlock()
			p.timeouts.Add(1)
			p.mTimeouts.Inc()
			return frame{}, false, fmt.Errorf("%w: %s after %v", ErrTimeout, method, p.opts.CallTimeout)
		}
	} else {
		resp, ok = <-ch
	}
	return resp, ok, nil
}

// finishCallSpan records the completed client-side call span.
func (p *Peer) finishCallSpan(method string, sc obs.SpanContext, parent uint64, start time.Time) {
	if p.reg == nil || sc.IsZero() {
		return
	}
	p.reg.RecordSpan(obs.Span{
		Trace: sc.Trace, Span: sc.Span, Parent: parent,
		Name: "rpc.call " + method, Start: start, Dur: time.Since(start),
	})
}

// RemoteError is a handler error transported back to the caller.
type RemoteError struct {
	Method string
	Msg    string
}

func (e RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}

func (p *Peer) readLoop() {
	defer p.wg.Done()
	// The decoder reads from the peer's own bufio.Reader (an
	// io.ByteReader), consuming exactly one gob message per Decode. After
	// the remote's kindSwitch the same decoder keeps serving the gob
	// payloads of framed messages — the stream it sees is byte-identical,
	// minus the frame headers stripped by readFramedFrame.
	dec := gob.NewDecoder(p.br)
	framed := false
	for {
		var f frame
		var err error
		if framed {
			f, err = p.readFramedFrame(dec)
		} else {
			err = dec.Decode(&f)
		}
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				err = fmt.Errorf("%w: %v", ErrClosed, err)
			} else {
				err = ErrClosed
			}
			p.shutdown(err)
			return
		}
		n := uint64(len(f.Body) + len(f.Auth) + len(f.Method) + len(f.binMeta) + len(f.binData) + 16)
		p.bytesReceived.Add(n)
		p.mBytesReceived.Add(n)
		if f.Epoch != 0 {
			p.remoteEpoch.Store(f.Epoch)
		}
		switch f.Kind {
		case kindHello:
			p.noteRemoteHello(f.Wire)
			continue
		case kindSwitch:
			// The remote's write side goes framed from here on.
			framed = true
			p.noteRemoteSwitch()
			continue
		}
		switch f.Kind {
		case kindCall:
			p.callsReceived.Add(1)
			p.mCallsReceived.Inc()
			q := p.inNormal
			if Priority(f.Priority) == PriorityRevoke {
				q = p.inReserved
			}
			select {
			case q <- f:
			case <-p.done:
				return
			}
		case kindReply, kindError:
			p.mu.Lock()
			ch, ok := p.pending[f.ID]
			if ok {
				delete(p.pending, f.ID)
			}
			p.mu.Unlock()
			if ok {
				ch <- f
			}
		}
	}
}

func (p *Peer) worker(q chan frame) {
	defer p.wg.Done()
	for {
		select {
		case f := <-q:
			p.dispatch(f)
		case <-p.done:
			return
		}
	}
}

func (p *Peer) dispatch(f frame) {
	if f.isBin {
		p.dispatchBin(f)
		return
	}
	var identity any
	if p.opts.Auth != nil {
		id, err := p.opts.Auth.VerifyCall(f.Method, f.Body, f.Auth)
		if err != nil {
			p.sendReply(frame{Kind: kindError, ID: f.ID, ErrMsg: ErrAuth.Error()})
			return
		}
		identity = id
	}
	p.mu.Lock()
	h := p.handlers[f.Method]
	p.mu.Unlock()
	if h == nil {
		p.sendReply(frame{Kind: kindError, ID: f.ID, ErrMsg: fmt.Sprintf("%v: %s", ErrNoMethod, f.Method)})
		return
	}
	// Continue the caller's trace: same trace ID, fresh span for this
	// procedure, parented on the caller's call span.
	var tc obs.SpanContext
	if f.Trace != 0 {
		tc = obs.SpanContext{Trace: f.Trace, Span: obs.NewID()}
	}
	start := time.Now()
	ctx := &CallCtx{Peer: p, Identity: identity, Priority: Priority(f.Priority), Trace: tc}
	out, err := h(ctx, f.Body)
	p.mServeNs.Observe(time.Since(start))
	if p.reg != nil && !tc.IsZero() {
		p.reg.RecordSpan(obs.Span{
			Trace: tc.Trace, Span: tc.Span, Parent: f.Span,
			Name: "rpc.serve " + f.Method, Start: start, Dur: time.Since(start),
		})
	}
	if err != nil {
		p.sendReply(frame{Kind: kindError, ID: f.ID, ErrMsg: err.Error()})
		return
	}
	p.sendReply(frame{Kind: kindReply, ID: f.ID, Body: out})
}

// sendReply transmits a reply or error frame. A failed send used to be
// silently dropped, leaving the remote caller blocked forever on a reply
// that would never come; now it is counted (rpc.reply_send_errors) and
// tears the association down, so every outstanding call on the other end
// fails fast with ErrClosed.
func (p *Peer) sendReply(f frame) {
	if err := p.send(f); err != nil {
		p.replySendErrors.Add(1)
		p.mReplySendErrs.Inc()
		p.shutdown(fmt.Errorf("%w: reply send failed: %v", ErrClosed, err))
	}
}

// bufPool recycles encode scratch buffers across Marshal and the Call
// path, so every control RPC stops allocating (and growing) a fresh
// bytes.Buffer.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Marshal gob-encodes a value for handler returns.
func Marshal(v any) ([]byte, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		bufPool.Put(buf)
		return nil, err
	}
	out := append([]byte(nil), buf.Bytes()...)
	bufPool.Put(buf)
	return out, nil
}

// Unmarshal gob-decodes handler arguments.
func Unmarshal(body []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(body)).Decode(v)
}

// Pipe returns two connected in-process peers (for tests and in-process
// cells). Callers register handlers and Start both.
func Pipe(a, b Options) (*Peer, *Peer) {
	c1, c2 := net.Pipe()
	return NewPeer(c1, a), NewPeer(c2, b)
}
