package rpc

import (
	"errors"
	"strings"
	"testing"
	"time"

	"decorum/internal/obs"
)

// TestTracePropagation is the satellite trace test: one trace ID must be
// observed at the client call site, inside the server handler, and inside
// the revocation callback the server makes back to the client — the full
// client → server → client loop of §5.3/§6.4.
func TestTracePropagation(t *testing.T) {
	reg := obs.NewRegistry()
	client, server := startPair(t, Options{Metrics: reg}, Options{Metrics: reg})

	root := obs.NewRoot()
	var serverTC, revokeTC obs.SpanContext
	client.Handle("revoke", func(ctx *CallCtx, body []byte) ([]byte, error) {
		revokeTC = ctx.Trace
		return Marshal(echoReply{S: "returned"})
	})
	server.Handle("write", func(ctx *CallCtx, body []byte) ([]byte, error) {
		serverTC = ctx.Trace
		// The revocation callback continues the trace across the wire
		// on the reserved-worker path.
		var r echoReply
		if err := ctx.Peer.CallTraced("revoke", echoArgs{S: "tok"}, &r, PriorityRevoke, ctx.Trace); err != nil {
			return nil, err
		}
		return Marshal(echoReply{S: "ok"})
	})
	client.Start()
	server.Start()

	var r echoReply
	if err := client.CallTraced("write", echoArgs{S: "x"}, &r, PriorityNormal, root); err != nil {
		t.Fatal(err)
	}

	if serverTC.Trace != root.Trace {
		t.Fatalf("server handler trace %x, want %x", serverTC.Trace, root.Trace)
	}
	if revokeTC.Trace != root.Trace {
		t.Fatalf("revocation callback trace %x, want %x", revokeTC.Trace, root.Trace)
	}
	if serverTC.Span == root.Span || revokeTC.Span == serverTC.Span {
		t.Fatal("span IDs must be fresh at each hop")
	}

	// The registry saw all four spans of the loop under the one trace.
	spans := reg.SpansFor(root.Trace)
	names := map[string]bool{}
	for _, s := range spans {
		names[s.Name] = true
	}
	for _, want := range []string{"rpc.call write", "rpc.serve write", "rpc.call revoke", "rpc.serve revoke"} {
		if !names[want] {
			t.Fatalf("trace %x missing span %q; have %v", root.Trace, want, names)
		}
	}
}

// TestTraceAutoRoot: a registered peer roots a trace for a plain Call, so
// tracing needs no caller changes at the outermost site.
func TestTraceAutoRoot(t *testing.T) {
	reg := obs.NewRegistry()
	client, server := startPair(t, Options{Metrics: reg}, Options{Metrics: reg})
	var got obs.SpanContext
	server.Handle("op", func(ctx *CallCtx, body []byte) ([]byte, error) {
		got = ctx.Trace
		return nil, nil
	})
	client.Start()
	server.Start()
	if err := client.Call("op", nil, nil); err != nil {
		t.Fatal(err)
	}
	if got.IsZero() {
		t.Fatal("registered peer did not auto-root a trace")
	}
	if len(reg.SpansFor(got.Trace)) < 2 {
		t.Fatalf("expected call+serve spans for trace %x", got.Trace)
	}
}

// TestUntracedStaysUntraced: without a registry and without an explicit
// context, the frame carries no trace and the handler sees a zero context
// — the historical wire behavior.
func TestUntracedStaysUntraced(t *testing.T) {
	client, server := startPair(t, Options{}, Options{})
	var got obs.SpanContext
	server.Handle("op", func(ctx *CallCtx, body []byte) ([]byte, error) {
		got = ctx.Trace
		return nil, nil
	})
	client.Start()
	server.Start()
	if err := client.Call("op", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !got.IsZero() {
		t.Fatalf("unregistered peer leaked a trace: %+v", got)
	}
}

func TestCallTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	release := make(chan struct{})
	client, server := startPair(t,
		Options{CallTimeout: 50 * time.Millisecond, Metrics: reg}, Options{})
	server.Handle("stall", func(ctx *CallCtx, body []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	server.Handle("quick", func(ctx *CallCtx, body []byte) ([]byte, error) {
		return Marshal(echoReply{S: "ok"})
	})
	client.Start()
	server.Start()

	err := client.Call("stall", echoArgs{S: "x"}, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := client.Stats().Timeouts; got != 1 {
		t.Fatalf("Stats().Timeouts = %d, want 1", got)
	}
	if got := reg.Snapshot().Counters["rpc.timeouts"]; got != 1 {
		t.Fatalf("rpc.timeouts = %d, want 1", got)
	}

	// The association survives a timeout: a later call succeeds, and the
	// stalled call's eventual late reply is dropped without blocking
	// anything.
	close(release)
	var r echoReply
	if err := client.Call("quick", echoArgs{S: "y"}, &r); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	if r.S != "ok" {
		t.Fatalf("reply %q", r.S)
	}
}

func TestCallNoTimeoutByDefault(t *testing.T) {
	client, server := startPair(t, Options{}, Options{})
	server.Handle("slow", func(ctx *CallCtx, body []byte) ([]byte, error) {
		time.Sleep(80 * time.Millisecond)
		return Marshal(echoReply{S: "done"})
	})
	client.Start()
	server.Start()
	var r echoReply
	if err := client.Call("slow", echoArgs{S: "x"}, &r); err != nil {
		t.Fatal(err)
	}
	if r.S != "done" {
		t.Fatalf("reply %q", r.S)
	}
}

// TestReplySendErrorShutsPeerDown: when a reply cannot be transmitted,
// the serving peer must count it and tear the association down rather
// than silently dropping the reply (the old behavior left the remote
// caller blocked forever).
func TestReplySendErrorShutsPeerDown(t *testing.T) {
	reg := obs.NewRegistry()
	client, server := startPair(t, Options{}, Options{Metrics: reg})
	server.Handle("op", func(ctx *CallCtx, body []byte) ([]byte, error) {
		// Sever the transport before the reply goes out.
		server.conn.Close()
		return Marshal(echoReply{S: "never delivered"})
	})
	client.Start()
	server.Start()

	err := client.Call("op", echoArgs{S: "x"}, nil)
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("caller err = %v, want a closed-peer failure", err)
	}

	// The server counted the failed send and shut down.
	deadline := time.Now().Add(2 * time.Second)
	for server.Stats().ReplySendErrors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ReplySendErrors never incremented")
		}
		time.Sleep(time.Millisecond)
	}
	if got := reg.Snapshot().Counters["rpc.reply_send_errors"]; got == 0 {
		t.Fatal("rpc.reply_send_errors not visible in registry")
	}
	select {
	case <-server.done:
	case <-time.After(2 * time.Second):
		t.Fatal("server peer did not shut down after failed reply send")
	}
}
