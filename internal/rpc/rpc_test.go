package rpc

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"decorum/internal/auth"
)

type echoArgs struct{ S string }
type echoReply struct{ S string }

func startPair(t *testing.T, a, b Options) (*Peer, *Peer) {
	t.Helper()
	p1, p2 := Pipe(a, b)
	t.Cleanup(func() { p1.Close(); p2.Close() })
	return p1, p2
}

func TestCallRoundTrip(t *testing.T) {
	p1, p2 := startPair(t, Options{}, Options{})
	p2.Handle("echo", func(ctx *CallCtx, body []byte) ([]byte, error) {
		var a echoArgs
		if err := Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return Marshal(echoReply{S: a.S + "!"})
	})
	p1.Start()
	p2.Start()
	var r echoReply
	if err := p1.Call("echo", echoArgs{S: "hi"}, &r); err != nil {
		t.Fatal(err)
	}
	if r.S != "hi!" {
		t.Fatalf("reply %q", r.S)
	}
}

func TestBidirectionalCalls(t *testing.T) {
	// The §5.3 shape: the "server" side calls back into the "client"
	// while serving the client's call.
	p1, p2 := startPair(t, Options{}, Options{})
	p1.Handle("revoke", func(ctx *CallCtx, body []byte) ([]byte, error) {
		return Marshal(echoReply{S: "returned"})
	})
	p2.Handle("write", func(ctx *CallCtx, body []byte) ([]byte, error) {
		// Serving a write requires revoking a token from the caller.
		var r echoReply
		if err := ctx.Peer.Call("revoke", echoArgs{S: "token"}, &r); err != nil {
			return nil, err
		}
		return Marshal(echoReply{S: "wrote after " + r.S})
	})
	p1.Start()
	p2.Start()
	var r echoReply
	if err := p1.Call("write", echoArgs{S: "x"}, &r); err != nil {
		t.Fatal(err)
	}
	if r.S != "wrote after returned" {
		t.Fatalf("reply %q", r.S)
	}
}

func TestNoMethodAndRemoteError(t *testing.T) {
	p1, p2 := startPair(t, Options{}, Options{})
	p2.Handle("fail", func(ctx *CallCtx, body []byte) ([]byte, error) {
		return nil, errors.New("kaboom")
	})
	p1.Start()
	p2.Start()
	if err := p1.Call("missing", echoArgs{}, nil); err == nil ||
		!strings.Contains(err.Error(), "no such method") {
		t.Fatalf("missing method: %v", err)
	}
	err := p1.Call("fail", echoArgs{}, nil)
	var re RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "kaboom") {
		t.Fatalf("remote error: %v", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	p1, p2 := startPair(t, Options{Workers: 4}, Options{Workers: 4})
	p2.Handle("echo", func(ctx *CallCtx, body []byte) ([]byte, error) {
		var a echoArgs
		Unmarshal(body, &a)
		return Marshal(echoReply{S: a.S})
	})
	p1.Start()
	p2.Start()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var r echoReply
				if err := p1.Call("echo", echoArgs{S: "m"}, &r); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p1.Stats()
	if st.CallsSent != 640 {
		t.Fatalf("CallsSent = %d", st.CallsSent)
	}
	if st.BytesSent == 0 || st.BytesReceived == 0 {
		t.Fatalf("byte counters empty: %+v", st)
	}
}

func TestCloseFailsPending(t *testing.T) {
	p1, p2 := startPair(t, Options{}, Options{})
	block := make(chan struct{})
	p2.Handle("hang", func(ctx *CallCtx, body []byte) ([]byte, error) {
		<-block
		return Marshal(echoReply{})
	})
	p1.Start()
	p2.Start()
	done := make(chan error, 1)
	go func() { done <- p1.Call("hang", echoArgs{}, nil) }()
	time.Sleep(20 * time.Millisecond)
	p1.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Fatalf("pending call after close: %v", err)
	}
	close(block)
	if err := p1.Call("hang", echoArgs{}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("call after close: %v", err)
	}
}

// The §6.4 property: with the normal pool saturated by hanging calls, a
// PriorityRevoke call still completes because reserved workers serve it.
func TestReservedWorkersPreventStarvation(t *testing.T) {
	p1, p2 := startPair(t,
		Options{Workers: 2, ReservedWorkers: 1},
		Options{Workers: 2, ReservedWorkers: 1})
	release := make(chan struct{})
	p2.Handle("slow", func(ctx *CallCtx, body []byte) ([]byte, error) {
		<-release
		return Marshal(echoReply{})
	})
	p2.Handle("storeback", func(ctx *CallCtx, body []byte) ([]byte, error) {
		return Marshal(echoReply{S: "stored"})
	})
	p1.Start()
	p2.Start()
	// Saturate p2's normal pool (2 workers) plus backlog.
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p1.Call("slow", echoArgs{}, nil)
		}()
	}
	time.Sleep(30 * time.Millisecond) // let the pool fill
	// The revocation-priority call must get through promptly.
	done := make(chan error, 1)
	go func() {
		var r echoReply
		done <- p1.CallPriority("storeback", echoArgs{}, &r, PriorityRevoke)
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("revocation-priority call starved by saturated normal pool")
	}
	close(release)
	wg.Wait()
}

// Conversely, a normal-priority call issued under the same saturation
// waits — showing the reserved class is what made the difference.
func TestNormalCallsQueueBehindSaturatedPool(t *testing.T) {
	p1, p2 := startPair(t,
		Options{Workers: 2, ReservedWorkers: 1},
		Options{Workers: 2, ReservedWorkers: 1})
	release := make(chan struct{})
	p2.Handle("slow", func(ctx *CallCtx, body []byte) ([]byte, error) {
		<-release
		return Marshal(echoReply{})
	})
	p2.Handle("quick", func(ctx *CallCtx, body []byte) ([]byte, error) {
		return Marshal(echoReply{})
	})
	p1.Start()
	p2.Start()
	for i := 0; i < 4; i++ {
		go p1.Call("slow", echoArgs{}, nil)
	}
	time.Sleep(30 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- p1.Call("quick", echoArgs{}, nil) }()
	select {
	case <-done:
		t.Fatal("normal call should be stuck behind the saturated pool")
	case <-time.After(100 * time.Millisecond):
		// expected: still queued
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// kdcAuth adapts internal/auth to the rpc Authenticator interface the way
// the server package does, to prove the pieces compose.
type clientAuth struct {
	session []byte
	ticket  auth.Ticket
}

func (a *clientAuth) SignCall(method string, body []byte) ([]byte, error) {
	sig := auth.Sign(a.session, append([]byte(method), body...))
	return append(append([]byte{byte(len(a.ticket.Sealed) >> 8), byte(len(a.ticket.Sealed))}, a.ticket.Sealed...), sig...), nil
}

func (a *clientAuth) VerifyCall(method string, body, sig []byte) (any, error) {
	return nil, nil // client side accepts server callbacks unauthenticated here
}

type serverAuth struct {
	key []byte
}

func (a *serverAuth) SignCall(method string, body []byte) ([]byte, error) { return nil, nil }

func (a *serverAuth) VerifyCall(method string, body, sig []byte) (any, error) {
	if len(sig) < 2 {
		return nil, ErrAuth
	}
	n := int(sig[0])<<8 | int(sig[1])
	if len(sig) < 2+n+32 {
		return nil, ErrAuth
	}
	tkt := auth.Ticket{Sealed: sig[2 : 2+n]}
	id, err := auth.Verify(a.key, tkt, time.Now())
	if err != nil {
		return nil, err
	}
	if err := auth.CheckSig(id.SessionKey, append([]byte(method), body...), sig[2+n:]); err != nil {
		return nil, err
	}
	return id, nil
}

func TestAuthenticatedCalls(t *testing.T) {
	kdc := auth.NewKDC()
	kdc.AddPrincipal("alice", 100, "alice-pw")
	svc := kdc.AddPrincipal("fileserver", 1, "server-pw")
	tkt, session, err := kdc.Issue("alice", "fileserver")
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := startPair(t,
		Options{Auth: &clientAuth{session: session, ticket: tkt}},
		Options{Auth: &serverAuth{key: svc.Key}})
	p2.Handle("whoami", func(ctx *CallCtx, body []byte) ([]byte, error) {
		id := ctx.Identity.(auth.Identity)
		return Marshal(echoReply{S: id.Name})
	})
	p1.Start()
	p2.Start()
	var r echoReply
	if err := p1.Call("whoami", echoArgs{}, &r); err != nil {
		t.Fatal(err)
	}
	if r.S != "alice" {
		t.Fatalf("identity %q", r.S)
	}
	// A forged ticket is rejected.
	bad, _ := Pipe(Options{Auth: &clientAuth{
		session: auth.KeyFromPassword("wrong"),
		ticket:  auth.Ticket{Sealed: []byte("garbage")},
	}}, Options{})
	_ = bad
	forged := &clientAuth{session: auth.KeyFromPassword("wrong"), ticket: auth.Ticket{Sealed: []byte("junk-ticket")}}
	p3, p4 := startPair(t, Options{Auth: forged}, Options{Auth: &serverAuth{key: svc.Key}})
	p4.Handle("whoami", func(ctx *CallCtx, body []byte) ([]byte, error) {
		return Marshal(echoReply{})
	})
	p3.Start()
	p4.Start()
	if err := p3.Call("whoami", echoArgs{}, &r); err == nil ||
		!strings.Contains(err.Error(), "auth") {
		t.Fatalf("forged ticket: %v", err)
	}
}

func TestLatencyOption(t *testing.T) {
	p1, p2 := startPair(t, Options{Latency: 20 * time.Millisecond}, Options{})
	p2.Handle("echo", func(ctx *CallCtx, body []byte) ([]byte, error) {
		return Marshal(echoReply{})
	})
	p1.Start()
	p2.Start()
	start := time.Now()
	if err := p1.Call("echo", echoArgs{}, nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}
