package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// spanRingCap bounds the per-registry span ring. 256 spans is a few
// seconds of traffic on a busy daemon — enough to follow a specific
// operation through dfsstat without turning the registry into a log.
const spanRingCap = 256

// Registry names a process's metrics and collects its recent trace
// spans. Components create their metrics standalone (so their Stats()
// accessors work registry or not) and attach them under canonical dotted
// names ("wal.appends", "rpc.call_ns"); daemons hand the registry to
// Handler and expose it behind -statusaddr.
//
// All methods are safe for concurrent use and accept a nil receiver
// (no-op / zero results), so "observability off" needs no branches at
// instrumentation sites.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter    // guarded by mu
	gauges     map[string]*Gauge      // guarded by mu
	histograms map[string]*Histogram  // guarded by mu
	infos      map[string]func() any  // guarded by mu
	spans      []Span                 // guarded by mu (ring, valid [0,spanN) rotated at spanNext)
	spanNext   int                    // guarded by mu
	spanN      int                    // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		infos:      make(map[string]func() any),
	}
}

// Counter returns the counter registered under name, creating and
// attaching one if needed. Returns nil (a no-op counter) on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating one if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating one if
// needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// AttachCounter registers an existing counter under name — the adoption
// path for components whose counters predate the registry (they keep
// their Stats() views; the registry sees the same cells). Re-attaching a
// name replaces the previous metric.
func (r *Registry) AttachCounter(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = c
}

// AttachGauge registers an existing gauge under name.
func (r *Registry) AttachGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = g
}

// AttachHistogram registers an existing histogram under name.
func (r *Registry) AttachHistogram(name string, h *Histogram) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.histograms[name] = h
}

// AttachInfo registers a live-introspection callback: fn is invoked at
// dump time and its (JSON-marshalable) result appears under "info".
// This is how daemons expose structured breakdowns a flat counter cannot
// carry — per-peer RPC traffic, the mounted-volume table, WAL head/tail.
func (r *Registry) AttachInfo(name string, fn func() any) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos[name] = fn
}

// RecordSpan appends one completed span to the ring.
func (r *Registry) RecordSpan(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		r.spans = make([]Span, spanRingCap)
	}
	r.spans[r.spanNext] = s
	r.spanNext = (r.spanNext + 1) % len(r.spans)
	if r.spanN < len(r.spans) {
		r.spanN++
	}
}

// RecentSpans returns the ring's contents, oldest first.
func (r *Registry) RecentSpans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.spanN)
	start := r.spanNext - r.spanN
	if start < 0 {
		start += len(r.spans)
	}
	for i := 0; i < r.spanN; i++ {
		out = append(out, r.spans[(start+i)%len(r.spans)])
	}
	return out
}

// SpansFor returns the recorded spans of one trace, oldest first — the
// "follow this operation" query behind the trace tests and dfsstat.
func (r *Registry) SpansFor(trace uint64) []Span {
	var out []Span
	for _, s := range r.RecentSpans() {
		if s.Trace == trace {
			out = append(out, s)
		}
	}
	return out
}

// HistogramDump is the JSON shape of one histogram: enough to read
// latency at a glance without shipping raw buckets.
type HistogramDump struct {
	Count  uint64  `json:"count"`
	SumNs  int64   `json:"sum_ns"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  float64 `json:"p50_ns"`
	P90Ns  float64 `json:"p90_ns"`
	P99Ns  float64 `json:"p99_ns"`
}

// SpanDump is the JSON shape of one span; IDs are hex strings so they
// are greppable across daemons.
type SpanDump struct {
	Trace  string  `json:"trace"`
	Span   string  `json:"span"`
	Parent string  `json:"parent,omitempty"`
	Name   string  `json:"name"`
	Start  string  `json:"start"`
	DurUs  float64 `json:"dur_us"`
}

// Dump is a complete JSON-marshalable snapshot of a registry.
type Dump struct {
	Counters   map[string]uint64        `json:"counters"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramDump `json:"histograms"`
	Info       map[string]any           `json:"info,omitempty"`
	Spans      []SpanDump               `json:"spans,omitempty"`
}

// Snapshot captures every metric, info callback, and recent span.
func (r *Registry) Snapshot() Dump {
	d := Dump{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramDump{},
	}
	if r == nil {
		return d
	}
	// Copy the maps under the lock, then read the (atomic) metrics and
	// run the info callbacks outside it: callbacks take their components'
	// own locks and must not nest inside the registry's.
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	infos := make(map[string]func() any, len(r.infos))
	for k, v := range r.infos {
		infos[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		d.Counters[name] = c.Load()
	}
	for name, g := range gauges {
		d.Gauges[name] = g.Load()
	}
	for name, h := range hists {
		s := h.Snapshot()
		d.Histograms[name] = HistogramDump{
			Count:  s.Count,
			SumNs:  s.SumNs,
			MeanNs: s.Mean(),
			P50Ns:  s.Quantile(0.50),
			P90Ns:  s.Quantile(0.90),
			P99Ns:  s.Quantile(0.99),
		}
	}
	if len(infos) > 0 {
		d.Info = make(map[string]any, len(infos))
		for name, fn := range infos {
			d.Info[name] = fn()
		}
	}
	for _, s := range r.RecentSpans() {
		sd := SpanDump{
			Trace: fmt.Sprintf("%016x", s.Trace),
			Span:  fmt.Sprintf("%016x", s.Span),
			Name:  s.Name,
			Start: s.Start.UTC().Format(time.RFC3339Nano),
			DurUs: float64(s.Dur) / 1e3,
		}
		if s.Parent != 0 {
			sd.Parent = fmt.Sprintf("%016x", s.Parent)
		}
		d.Spans = append(d.Spans, sd)
	}
	return d
}

// CounterNames returns the registered counter names, sorted (tests,
// dfsstat ordering).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler serves the registry as JSON on every GET: the live
// introspection endpoint dfsd and vldbd mount behind -statusaddr and
// cmd/dfsstat consumes. "?pretty=1" indents.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "metrics endpoint is read-only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if req.URL.Query().Get("pretty") != "" {
			enc.SetIndent("", "  ")
		}
		if err := enc.Encode(r.Snapshot()); err != nil {
			// The snapshot is built from marshal-safe types; a failure
			// here means a bad info callback. Surface it.
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
