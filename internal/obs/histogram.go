package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histogramBuckets is the fixed bucket count: bucket i holds values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), and bucket 0 holds
// exactly 0. Sixty-four buckets cover every int64 nanosecond value, from
// sub-nanosecond (bucket 1 = 1ns) to centuries, with log2 spacing.
const histogramBuckets = 64

// Histogram is a latency distribution with fixed log-spaced buckets.
// Recording is lock-free (three atomic adds), so it is cheap enough for
// the WAL flush and RPC hot paths; snapshots are mergeable across
// histograms (e.g. per-daemon dumps summed by an aggregator) and answer
// quantile queries by interpolating within a bucket. The zero value is
// ready to use; a nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [histogramBuckets]atomic.Uint64
}

// NewHistogram returns a fresh histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one value in nanoseconds. Negative values (clock
// steps) are recorded as 0 rather than corrupting a bucket index.
func (h *Histogram) ObserveNs(ns int64) {
	if h == nil {
		return
	}
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bits.Len64(uint64(ns))].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram, suitable for
// merging and quantile queries. Because recording is lock-free, a
// snapshot taken concurrently with writers may be mid-update by a few
// observations (Count and the bucket sum can transiently differ by
// in-flight records); after writers quiesce the totals agree exactly.
type HistogramSnapshot struct {
	Count   uint64
	SumNs   int64
	Buckets [histogramBuckets]uint64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Merge adds o into s (bucket-wise; the spacing is fixed, so merging is
// exact).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the average in nanoseconds (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}

// bucketBounds returns the value range [lo, hi) bucket i covers.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return math.Ldexp(1, i-1), math.Ldexp(1, i)
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) in nanoseconds by
// linear interpolation inside the containing bucket; log2 buckets bound
// the error by a factor of two, plenty for "is p99 microseconds or
// milliseconds". Returns 0 when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	// The total over buckets, not Count: under concurrent recording the
	// two can transiently differ, and the walk must terminate inside a
	// bucket.
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if rank <= next {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(b)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	// Unreachable while total > 0; keep the compiler and the reader calm.
	return math.Ldexp(1, histogramBuckets-1)
}
