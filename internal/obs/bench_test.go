package obs

import (
	"testing"
	"time"
)

// BenchmarkObsCounter is the hot-path budget check: the increment must
// stay ≲50 ns/op so WAL append and buffer lookup can afford it inline.
func BenchmarkObsCounter(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Load() == 0 {
		b.Fatal("counter never incremented")
	}
}

// BenchmarkObsCounterSerial measures the single-goroutine cost (the
// common case on the WAL path, which already holds the log mutex).
func BenchmarkObsCounterSerial(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsHistogram measures the lock-free record path.
func BenchmarkObsHistogram(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var ns int64
		for pb.Next() {
			h.ObserveNs(ns)
			ns += 137
		}
	})
	if h.Snapshot().Count == 0 {
		b.Fatal("histogram never recorded")
	}
}

// BenchmarkObsHistogramObserve includes the time.Duration entry point
// used by instrumented call sites.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
