// Package obs is the cell-wide observability subsystem: the common model
// behind every counter the paper's evaluation depends on. The RPC traffic
// counters (experiments C3–C5), the per-file serialization counters
// (§6.2), the WAL group-commit amortization (C9b) — all of those were
// grown as ad-hoc per-package Stats structs; obs gives them one registry,
// adds what none of them had (latency distributions, cross-machine
// traces), and makes a running daemon inspectable over HTTP.
//
// Three primitives, all stdlib-only and safe for concurrent use:
//
//   - Counter / Gauge: striped (cache-line-padded) atomic counters whose
//     increment is cheap enough for the WAL append and buffer hot paths
//     (see BenchmarkObsCounter; the target is ≲50 ns/op).
//   - Histogram: fixed log-spaced (power-of-two) latency buckets,
//     lock-free to record, mergeable and quantile-queryable from a
//     snapshot.
//   - SpanContext / Span: a lightweight trace identity that the rpc
//     package carries inside every call frame, so a single client vnode
//     operation can be followed from the client's call site through the
//     server procedure into a token-revocation callback on a *different*
//     client — including the PriorityRevoke path of §6.4.
//
// A Registry names metrics, collects completed spans in a ring, and dumps
// everything as JSON through Handler; dfsd and vldbd mount that behind
// -statusaddr and cmd/dfsstat pretty-prints it.
//
// Every method on every primitive is nil-receiver safe and every
// *Registry method accepts a nil receiver, so instrumented code never
// branches on "is observability enabled".
package obs

import (
	"crypto/rand"
	"encoding/binary"
	mrand "math/rand"
	"sync"
	"time"
)

// idSource generates span and trace IDs: a math/rand generator seeded
// from crypto/rand at startup, so IDs are unique across the cell's
// machines with overwhelming probability without any coordination.
var idSource struct {
	mu  sync.Mutex
	rng *mrand.Rand // guarded by mu
}

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// No entropy source: fall back to the clock. IDs remain unique
		// within the process, which the tests and single-cell tools need.
		binary.BigEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	idSource.rng = mrand.New(mrand.NewSource(int64(binary.BigEndian.Uint64(seed[:]))))
}

// NewID returns a nonzero random 64-bit identifier.
func NewID() uint64 {
	idSource.mu.Lock()
	defer idSource.mu.Unlock()
	for {
		if id := idSource.rng.Uint64(); id != 0 {
			return id
		}
	}
}

// SpanContext is the trace identity carried across process boundaries:
// which trace an operation belongs to and which span is its immediate
// parent. The zero value means "no trace".
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// IsZero reports whether the context carries no trace.
func (c SpanContext) IsZero() bool { return c == SpanContext{} }

// Child derives the context for a sub-operation: same trace, fresh span
// ID. On a zero context it starts a new root trace, so callers can
// unconditionally derive children and tracing begins at the outermost
// untraced call site.
func (c SpanContext) Child() SpanContext {
	if c.IsZero() {
		return SpanContext{Trace: NewID(), Span: NewID()}
	}
	return SpanContext{Trace: c.Trace, Span: NewID()}
}

// NewRoot starts a fresh trace.
func NewRoot() SpanContext {
	return SpanContext{Trace: NewID(), Span: NewID()}
}

// Span is one completed, named interval of a trace, as kept in a
// Registry's span ring. Parent is the span ID of the caller (0 for a
// root).
type Span struct {
	Trace  uint64
	Span   uint64
	Parent uint64
	Name   string
	Start  time.Time
	Dur    time.Duration
}
