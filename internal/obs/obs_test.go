package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestCounterBasic(t *testing.T) {
	c := NewCounter()
	if got := c.Load(); got != 0 {
		t.Fatalf("fresh counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestCounterNilSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if got := c.Load(); got != 0 {
		t.Fatalf("nil counter Load = %d, want 0", got)
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if got := g.Load(); got != 0 {
		t.Fatalf("nil gauge Load = %d, want 0", got)
	}
	var h *Histogram
	h.Observe(time.Millisecond)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram Count = %d, want 0", s.Count)
	}
	var r *Registry
	r.Counter("x").Inc()
	r.RecordSpan(Span{})
	if d := r.Snapshot(); len(d.Counters) != 0 {
		t.Fatalf("nil registry snapshot has counters: %v", d.Counters)
	}
}

// TestCounterConcurrent hammers one counter from many goroutines; run
// under -race this also proves the striping is race-free.
func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	const (
		workers = 16
		each    = 10_000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram()
	h.ObserveNs(0) // bucket 0
	h.ObserveNs(1) // bucket 1
	h.ObserveNs(2) // bucket 2: [2,4)
	h.ObserveNs(3)
	h.ObserveNs(1024)     // bucket 11: [1024,2048)
	h.ObserveNs(-5)       // clamped to 0 → bucket 0
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("Count = %d, want 6", s.Count)
	}
	if s.SumNs != 0+1+2+3+1024+0 {
		t.Fatalf("SumNs = %d, want 1030", s.SumNs)
	}
	want := map[int]uint64{0: 2, 1: 1, 2: 2, 11: 1}
	for i, n := range s.Buckets {
		if n != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, n, want[i])
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	// 100 observations of ~1µs and 1 of ~1ms: p50 should sit in the
	// microsecond bucket, p99.5+ in the millisecond bucket.
	for i := 0; i < 100; i++ {
		h.ObserveNs(1000)
	}
	h.ObserveNs(1_000_000)
	s := h.Snapshot()
	p50 := s.Quantile(0.5)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %v, want within [512,2048) (the 1µs bucket)", p50)
	}
	p999 := s.Quantile(0.999)
	if p999 < 512*1024 || p999 > 2*1024*1024 {
		t.Fatalf("p99.9 = %v, want within the 1ms bucket", p999)
	}
	if got := s.Quantile(0); got < 512 || got >= 2048 {
		t.Fatalf("q=0 = %v, want inside lowest nonempty bucket", got)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram()
	h.ObserveNs(100)
	h.ObserveNs(300)
	if m := h.Snapshot().Mean(); math.Abs(m-200) > 1e-9 {
		t.Fatalf("Mean = %v, want 200", m)
	}
}

// TestHistogramConcurrentRecordMerge is the satellite -race test: many
// recorders into two histograms concurrently with snapshot/merge readers,
// then a final merged snapshot must account for every observation.
func TestHistogramConcurrentRecordMerge(t *testing.T) {
	h1 := NewHistogram()
	h2 := NewHistogram()
	const (
		workers = 8
		each    = 5_000
	)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	// A concurrent reader merging mid-flight snapshots: must never see a
	// torn value that makes quantiles panic or counts exceed the final
	// total.
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h1.Snapshot()
			s.Merge(h2.Snapshot())
			if s.Count > 2*workers*each {
				t.Errorf("mid-flight merged Count = %d exceeds total %d", s.Count, 2*workers*each)
				return
			}
			_ = s.Quantile(0.9)
		}
	}()
	for w := 0; w < workers; w++ {
		writers.Add(2)
		go func(seed int) {
			defer writers.Done()
			for i := 0; i < each; i++ {
				h1.ObserveNs(int64(seed*1000 + i))
			}
		}(w)
		go func(seed int) {
			defer writers.Done()
			for i := 0; i < each; i++ {
				h2.ObserveNs(int64(seed*2000 + i))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	<-readerDone

	merged := h1.Snapshot()
	merged.Merge(h2.Snapshot())
	if merged.Count != 2*workers*each {
		t.Fatalf("merged Count = %d, want %d", merged.Count, 2*workers*each)
	}
	var bucketTotal uint64
	for _, b := range merged.Buckets {
		bucketTotal += b
	}
	if bucketTotal != merged.Count {
		t.Fatalf("bucket total %d != Count %d after quiesce", bucketTotal, merged.Count)
	}
}

func TestSpanContext(t *testing.T) {
	var zero SpanContext
	if !zero.IsZero() {
		t.Fatal("zero SpanContext not IsZero")
	}
	root := zero.Child()
	if root.IsZero() || root.Trace == 0 || root.Span == 0 {
		t.Fatalf("Child of zero did not root a trace: %+v", root)
	}
	child := root.Child()
	if child.Trace != root.Trace {
		t.Fatalf("child trace %x != parent trace %x", child.Trace, root.Trace)
	}
	if child.Span == root.Span {
		t.Fatal("child span ID not fresh")
	}
	a, b := NewRoot(), NewRoot()
	if a.Trace == b.Trace {
		t.Fatal("two roots share a trace ID")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("rpc.calls_sent")
	c2 := r.Counter("rpc.calls_sent")
	if c1 != c2 {
		t.Fatal("Counter(name) did not return the same counter")
	}
	c1.Add(3)
	if got := r.Snapshot().Counters["rpc.calls_sent"]; got != 3 {
		t.Fatalf("snapshot counter = %d, want 3", got)
	}
	if h1, h2 := r.Histogram("x"), r.Histogram("x"); h1 != h2 {
		t.Fatal("Histogram(name) not stable")
	}
	if g1, g2 := r.Gauge("y"), r.Gauge("y"); g1 != g2 {
		t.Fatal("Gauge(name) not stable")
	}
}

func TestRegistryAttachKeepsView(t *testing.T) {
	// The adoption contract: a component's own counter attached to the
	// registry is the SAME cell — Stats() views and registry dumps agree.
	own := NewCounter()
	r := NewRegistry()
	r.AttachCounter("wal.appends", own)
	own.Add(7)
	r.Counter("wal.appends").Add(1)
	if got := own.Load(); got != 8 {
		t.Fatalf("component view = %d, want 8", got)
	}
	if got := r.Snapshot().Counters["wal.appends"]; got != 8 {
		t.Fatalf("registry view = %d, want 8", got)
	}
}

func TestRegistrySpanRing(t *testing.T) {
	r := NewRegistry()
	tc := NewRoot()
	for i := 0; i < spanRingCap+10; i++ {
		r.RecordSpan(Span{Trace: tc.Trace, Span: uint64(i + 1), Name: "op"})
	}
	got := r.RecentSpans()
	if len(got) != spanRingCap {
		t.Fatalf("ring holds %d spans, want %d", len(got), spanRingCap)
	}
	// Oldest surviving span is #11 (the first 10 were overwritten).
	if got[0].Span != 11 {
		t.Fatalf("oldest span ID = %d, want 11", got[0].Span)
	}
	if got[len(got)-1].Span != spanRingCap+10 {
		t.Fatalf("newest span ID = %d, want %d", got[len(got)-1].Span, spanRingCap+10)
	}
	if n := len(r.SpansFor(tc.Trace)); n != spanRingCap {
		t.Fatalf("SpansFor = %d spans, want %d", n, spanRingCap)
	}
	if n := len(r.SpansFor(tc.Trace + 1)); n != 0 {
		t.Fatalf("SpansFor(other) = %d spans, want 0", n)
	}
}

func TestHandlerJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc.calls_sent").Add(5)
	r.Gauge("buffer.dirty").Set(2)
	r.Histogram("wal.commit_ns").Observe(100 * time.Microsecond)
	r.AttachInfo("server.volumes", func() any {
		return map[string]int{"v": 1}
	})
	r.RecordSpan(Span{Trace: 1, Span: 2, Name: "rpc.call", Start: time.Now(), Dur: time.Millisecond})

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/?pretty=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var d Dump
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatalf("endpoint did not return well-formed JSON: %v", err)
	}
	if d.Counters["rpc.calls_sent"] != 5 {
		t.Fatalf("counters over HTTP = %v", d.Counters)
	}
	if d.Gauges["buffer.dirty"] != 2 {
		t.Fatalf("gauges over HTTP = %v", d.Gauges)
	}
	hd := d.Histograms["wal.commit_ns"]
	if hd.Count != 1 || hd.P50Ns <= 0 {
		t.Fatalf("histogram over HTTP = %+v", hd)
	}
	if len(d.Spans) != 1 || d.Spans[0].Trace != "0000000000000001" {
		t.Fatalf("spans over HTTP = %+v", d.Spans)
	}
	if d.Info["server.volumes"] == nil {
		t.Fatalf("info over HTTP = %+v", d.Info)
	}

	// Write methods are rejected.
	post, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}
