package obs

import (
	"sync/atomic"
	"unsafe"
)

// counterStripes is the number of independent cells a Counter spreads its
// increments over; a power of two so the stripe pick is a mask.
const counterStripes = 8

// stripe is one cache-line-padded counter cell: the padding keeps two
// stripes from sharing a 64-byte line, so concurrent increments on
// different stripes never false-share.
type stripe struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically increasing counter. Increments go to one of
// several cache-line-padded atomic cells picked per goroutine, so the hot
// path is a single uncontended atomic add even when many goroutines bump
// the same counter; Load sums the cells. The zero value is ready to use
// and a nil *Counter is a no-op, so call sites never gate on whether
// observability is wired up.
type Counter struct {
	stripes [counterStripes]stripe
}

// NewCounter returns a fresh counter.
func NewCounter() *Counter { return &Counter{} }

// stripeIndex picks a stripe for the calling goroutine. The address of a
// stack variable differs between goroutines (each has its own stack), so
// its middle bits spread concurrent writers across stripes without any
// per-goroutine state; the pointer never escapes, so the pick costs a few
// instructions and no allocation.
func stripeIndex() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (counterStripes - 1)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.stripes[stripeIndex()].v.Add(n)
}

// Load returns the current total.
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value (queue depth, table size).
// Nil-receiver safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a fresh gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
