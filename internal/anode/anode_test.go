package anode

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"decorum/internal/blockdev"
	"decorum/internal/buffer"
	"decorum/internal/fs"
	"decorum/internal/wal"
)

const (
	testBS  = 512
	testDev = 2048 // blocks
)

func newStore(t *testing.T) (*Store, *blockdev.MemDevice) {
	t.Helper()
	dev := blockdev.NewMem(testBS, testDev)
	sb, err := Format(dev, 32)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dev, sb.LogStart, sb.LogBlocks)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(dev, l, 64)
	s, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	s.Clock = func() int64 { return 12345 }
	return s, dev
}

func mustAlloc(t *testing.T, s *Store, typ Type) Anode {
	t.Helper()
	tx := s.Begin()
	a, err := s.Alloc(tx, typ, 7, 0o644, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFormatAndOpen(t *testing.T) {
	s, _ := newStore(t)
	sb := s.Superblock()
	if sb.TotalBlocks != testDev || sb.BlockSize != testBS {
		t.Fatalf("geometry %+v", sb)
	}
	if sb.DataStart <= sb.RCStart || sb.RCStart <= sb.BitmapStart {
		t.Fatalf("layout out of order: %+v", sb)
	}
	if free := s.FreeBlocks(); free != testDev-sb.DataStart {
		t.Fatalf("FreeBlocks = %d, want %d", free, testDev-sb.DataStart)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := blockdev.NewMem(testBS, 64)
	pool := buffer.NewPool(dev, nil, 8)
	if _, err := Open(pool); !errors.Is(err, ErrBadAggregate) {
		t.Fatalf("open unformatted: %v", err)
	}
}

func TestAllocStampsFields(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	if a.ID == 0 {
		t.Fatal("allocated ID 0")
	}
	if a.Type != TypeFile || a.Mode != 0o644 || a.Owner != 100 || a.Group != 200 {
		t.Fatalf("fields %+v", a)
	}
	if a.Volume != 7 || a.Nlink != 1 || a.Uniq == 0 {
		t.Fatalf("fields %+v", a)
	}
	if a.Atime != 12345 || a.Mtime != 12345 || a.Ctime != 12345 {
		t.Fatalf("times %+v", a)
	}
	got, err := s.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Uniq != a.Uniq || got.Type != a.Type {
		t.Fatalf("Get round trip %+v", got)
	}
}

func TestAllocUniqMonotonic(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	b := mustAlloc(t, s, TypeFile)
	if b.Uniq <= a.Uniq {
		t.Fatalf("uniq not monotonic: %d then %d", a.Uniq, b.Uniq)
	}
	if a.ID == b.ID {
		t.Fatal("duplicate IDs")
	}
}

func TestFreeAndReuseSlot(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	tx := s.Begin()
	if err := s.Free(tx, a.ID); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(a.ID); !errors.Is(err, ErrBadID) {
		t.Fatalf("Get freed anode: %v", err)
	}
	b := mustAlloc(t, s, TypeDir)
	if b.ID != a.ID {
		t.Fatalf("slot not reused: got %d, want %d", b.ID, a.ID)
	}
	if b.Uniq == a.Uniq {
		t.Fatal("reincarnation must get a new uniquifier")
	}
}

func TestDoubleFree(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	tx := s.Begin()
	if err := s.Free(tx, a.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(tx, a.ID); !errors.Is(err, ErrBadID) {
		t.Fatalf("double free: %v", err)
	}
	tx.Commit()
}

func TestFreeNonEmptyRejected(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	tx := s.Begin()
	if _, err := s.WriteAt(tx, a.ID, []byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(tx, a.ID); !errors.Is(err, ErrHasBlocks) {
		t.Fatalf("free with data: %v", err)
	}
	if err := s.Truncate(tx, a.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(tx, a.ID); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
}

func TestTableGrowth(t *testing.T) {
	s, _ := newStore(t)
	seen := map[ID]bool{}
	for i := 0; i < 50; i++ {
		a := mustAlloc(t, s, TypeFile)
		if seen[a.ID] {
			t.Fatalf("duplicate id %d", a.ID)
		}
		seen[a.ID] = true
	}
	n, err := s.AnodesInUse()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("AnodesInUse = %d, want 50", n)
	}
}

func TestWriteReadSmall(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	tx := s.Begin()
	msg := []byte("the quick brown fox")
	if n, err := s.WriteAt(tx, a.ID, msg, 0); err != nil || n != len(msg) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if n, err := s.ReadAt(a.ID, got, 0); err != nil || n != len(msg) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q", got)
	}
	// Length updated.
	cur, err := s.Get(a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Length != int64(len(msg)) {
		t.Fatalf("Length = %d", cur.Length)
	}
	if cur.DataVer == 0 {
		t.Fatal("DataVer not bumped")
	}
}

func TestReadPastEndAndHoles(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	tx := s.Begin()
	// Sparse write: bytes at offset 3*bs.
	if _, err := s.WriteAt(tx, a.ID, []byte{0xAA}, 3*testBS); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// The hole reads as zeros.
	got := make([]byte, 2*testBS)
	n, err := s.ReadAt(a.ID, got, 0)
	if err != nil || n != len(got) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("hole byte %d = %#x", i, b)
		}
	}
	// Read past end returns 0.
	if n, err := s.ReadAt(a.ID, got, 3*testBS+1); err != nil || n != 0 {
		t.Fatalf("read past end = %d, %v", n, err)
	}
	// Holes consume no blocks beyond the one real data block.
	cur, _ := s.Get(a.ID)
	used := 0
	for _, d := range cur.Direct {
		if d != 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("sparse file uses %d direct blocks, want 1", used)
	}
}

// writeBig writes a pattern of size bytes in bounded transactions.
func writeBig(t *testing.T, s *Store, id ID, size int) {
	t.Helper()
	pat := make([]byte, 1024)
	for i := range pat {
		pat[i] = byte(i * 7)
	}
	for off := 0; off < size; off += len(pat) {
		chunk := len(pat)
		if off+chunk > size {
			chunk = size - off
		}
		tx := s.Begin()
		if _, err := s.WriteAt(tx, id, pat[:chunk], int64(off)); err != nil {
			t.Fatalf("WriteAt off %d: %v", off, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func checkBig(t *testing.T, s *Store, id ID, size int) {
	t.Helper()
	pat := make([]byte, 1024)
	for i := range pat {
		pat[i] = byte(i * 7)
	}
	got := make([]byte, 1024)
	for off := 0; off < size; off += len(pat) {
		chunk := len(pat)
		if off+chunk > size {
			chunk = size - off
		}
		n, err := s.ReadAt(id, got[:chunk], int64(off))
		if err != nil || n != chunk {
			t.Fatalf("ReadAt off %d = %d, %v", off, n, err)
		}
		if !bytes.Equal(got[:chunk], pat[:chunk]) {
			t.Fatalf("data mismatch at offset %d", off)
		}
	}
}

func TestWriteReadThroughIndirect(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	// > 10 direct blocks (5120B) but < 10+64 blocks: lands in indirect.
	size := 20 * testBS
	writeBig(t, s, a.ID, size)
	checkBig(t, s, a.ID, size)
	cur, _ := s.Get(a.ID)
	if cur.Indirect == 0 {
		t.Fatal("indirect block not allocated")
	}
	if cur.DIndir != 0 {
		t.Fatal("double indirect should not be needed")
	}
}

func TestWriteReadThroughDoubleIndirect(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	// Past 10 + 64 blocks: needs the double-indirect tree.
	size := 90 * testBS
	writeBig(t, s, a.ID, size)
	checkBig(t, s, a.ID, size)
	cur, _ := s.Get(a.ID)
	if cur.DIndir == 0 {
		t.Fatal("double indirect block not allocated")
	}
}

func TestMaxLengthEnforced(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	tx := s.Begin()
	defer tx.Commit()
	if _, err := s.WriteAt(tx, a.ID, []byte{1}, s.MaxLength()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("write past MaxLength: %v", err)
	}
}

func TestTruncateShrinkFreesBlocks(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	size := 30 * testBS
	writeBig(t, s, a.ID, size)
	before := s.FreeBlocks()
	tx := s.Begin()
	if err := s.Truncate(tx, a.ID, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after := s.FreeBlocks()
	// 30 data blocks + 1 indirect must come back.
	if after-before != 31 {
		t.Fatalf("freed %d blocks, want 31", after-before)
	}
	cur, _ := s.Get(a.ID)
	if cur.Length != 0 || cur.Indirect != 0 {
		t.Fatalf("descriptor after truncate: %+v", cur)
	}
}

func TestTruncatePartialBlockZeroesTail(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	full := bytes.Repeat([]byte{0xFF}, testBS)
	tx := s.Begin()
	if _, err := s.WriteAt(tx, a.ID, full, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(tx, a.ID, 10); err != nil {
		t.Fatal(err)
	}
	// Extend again: the formerly-0xFF tail must read as zeros.
	if err := s.Truncate(tx, a.ID, testBS); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testBS)
	if _, err := s.ReadAt(a.ID, got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < testBS; i++ {
		if got[i] != 0 {
			t.Fatalf("stale byte at %d after shrink+extend: %#x", i, got[i])
		}
	}
	for i := 0; i < 10; i++ {
		if got[i] != 0xFF {
			t.Fatalf("kept byte at %d lost", i)
		}
	}
}

func TestTruncateExtendIsHole(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	before := s.FreeBlocks()
	tx := s.Begin()
	if err := s.Truncate(tx, a.ID, 100*testBS); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if s.FreeBlocks() != before {
		t.Fatal("extending truncate must not allocate blocks")
	}
	cur, _ := s.Get(a.ID)
	if cur.Length != 100*testBS {
		t.Fatalf("Length = %d", cur.Length)
	}
}

func TestCloneSharesBlocksAndCOW(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	size := 20 * testBS // through the indirect tree
	writeBig(t, s, a.ID, size)
	// Pre-grow the anode table so the clone's slot allocation does not
	// consume a block and muddy the accounting below.
	dummy := mustAlloc(t, s, TypeFile)
	{
		tx := s.Begin()
		if err := s.Free(tx, dummy.ID); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	free0 := s.FreeBlocks()

	tx := s.Begin()
	clone, err := s.CloneAnode(tx, a.ID, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if clone.Volume != 8 || clone.Uniq == a.Uniq {
		t.Fatalf("clone fields %+v", clone)
	}
	// Cloning must not copy data blocks.
	if free0 != s.FreeBlocks() {
		t.Fatalf("clone consumed %d blocks", free0-s.FreeBlocks())
	}
	checkBig(t, s, clone.ID, size)

	// Write one byte into the clone: exactly the affected data block (and
	// the indirect block, if on that path) is copied.
	tx = s.Begin()
	if _, err := s.WriteAt(tx, clone.ID, []byte{0x5A}, 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	used := free0 - s.FreeBlocks()
	if used != 1 {
		t.Fatalf("COW of a direct block copied %d blocks, want 1", used)
	}
	// The original is untouched.
	got := make([]byte, 1)
	if _, err := s.ReadAt(a.ID, got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] == 0x5A {
		t.Fatal("write to clone leaked into original")
	}
	// The clone sees the new byte and the rest of the shared data.
	if _, err := s.ReadAt(clone.ID, got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x5A {
		t.Fatal("clone lost its own write")
	}
}

func TestCloneCOWThroughIndirect(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeFile)
	size := 20 * testBS
	writeBig(t, s, a.ID, size)
	tx := s.Begin()
	clone, err := s.CloneAnode(tx, a.ID, 8)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	free0 := s.FreeBlocks()
	// Write into block 15 (indirect range): copies the indirect block +
	// the data block.
	tx = s.Begin()
	if _, err := s.WriteAt(tx, clone.ID, []byte{1}, 15*testBS); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if used := free0 - s.FreeBlocks(); used != 2 {
		t.Fatalf("COW through indirect copied %d blocks, want 2", used)
	}
	// Original data in that block is intact.
	got := make([]byte, 4)
	if _, err := s.ReadAt(a.ID, got, 15*testBS); err != nil {
		t.Fatal(err)
	}
	if got[0] == 1 && got[1] == 0 {
		t.Fatal("original modified through shared indirect")
	}
}

func TestCloneDeleteEitherOrderReclaimsAll(t *testing.T) {
	for _, deleteCloneFirst := range []bool{true, false} {
		s, _ := newStore(t)
		a := mustAlloc(t, s, TypeFile)
		writeBig(t, s, a.ID, 25*testBS)
		// Pre-grow the anode table (see TestCloneSharesBlocksAndCOW).
		dummy := mustAlloc(t, s, TypeFile)
		{
			tx := s.Begin()
			if err := s.Free(tx, dummy.ID); err != nil {
				t.Fatal(err)
			}
			tx.Commit()
		}
		free0 := s.FreeBlocks()
		tx := s.Begin()
		clone, err := s.CloneAnode(tx, a.ID, 8)
		if err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		// Dirty half the clone so some blocks are private.
		writeBigAt := func(id ID) {
			tx := s.Begin()
			if _, err := s.WriteAt(tx, id, bytes.Repeat([]byte{3}, testBS), 0); err != nil {
				t.Fatal(err)
			}
			tx.Commit()
		}
		writeBigAt(clone.ID)
		first, second := a.ID, clone.ID
		if deleteCloneFirst {
			first, second = clone.ID, a.ID
		}
		for _, id := range []ID{first, second} {
			tx := s.Begin()
			if err := s.Truncate(tx, id, 0); err != nil {
				t.Fatal(err)
			}
			if err := s.Free(tx, id); err != nil {
				t.Fatal(err)
			}
			tx.Commit()
		}
		// Everything is back: the original's blocks plus the clone's COW
		// copies.
		if got := s.FreeBlocks(); got != free0+25+1 {
			t.Fatalf("deleteCloneFirst=%v: free = %d, want %d",
				deleteCloneFirst, got, free0+25+1)
		}
	}
}

func TestInlineSymlink(t *testing.T) {
	s, _ := newStore(t)
	a := mustAlloc(t, s, TypeSymlink)
	tx := s.Begin()
	if err := s.SetInline(tx, a.ID, []byte("/target/path")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	got := make([]byte, 64)
	n, err := s.ReadAt(a.ID, got, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[:n]) != "/target/path" {
		t.Fatalf("inline read %q", got[:n])
	}
	if err := func() error {
		tx := s.Begin()
		defer tx.Commit()
		return s.SetInline(tx, a.ID, bytes.Repeat([]byte{'x'}, InlineMax+1))
	}(); err == nil {
		t.Fatal("oversized inline accepted")
	}
}

func TestNoSpace(t *testing.T) {
	dev := blockdev.NewMem(testBS, 96) // tiny device
	sb, err := Format(dev, 8)
	if err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dev, sb.LogStart, sb.LogBlocks)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(buffer.NewPool(dev, l, 32))
	if err != nil {
		t.Fatal(err)
	}
	a := Anode{}
	{
		tx := s.Begin()
		a, err = s.Alloc(tx, TypeFile, 1, 0o644, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		tx.Commit()
	}
	var wErr error
	for off := int64(0); off < 200*testBS; off += testBS {
		tx := s.Begin()
		_, wErr = s.WriteAt(tx, a.ID, bytes.Repeat([]byte{1}, testBS), off)
		if wErr != nil {
			tx.Abort()
			break
		}
		tx.Commit()
	}
	if !errors.Is(wErr, fs.ErrNoSpace) {
		t.Fatalf("filling the device: %v", wErr)
	}
}

// Metadata crash consistency: interrupted multi-block operations either
// complete or vanish after recovery.
func TestCrashDuringWriteRecovers(t *testing.T) {
	mem := blockdev.NewMem(testBS, testDev)
	crash := blockdev.NewCrash(mem)
	sb, err := Format(crash, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := crash.Sync(); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(crash, sb.LogStart, sb.LogBlocks)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(crash, l, 64)
	s, err := Open(pool)
	if err != nil {
		t.Fatal(err)
	}
	// Committed, durable allocation.
	tx := s.Begin()
	a, err := s.Alloc(tx, TypeDir, 3, 0o755, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteAt(tx, a.ID, []byte("directory-page-1"), 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitDurable(); err != nil {
		t.Fatal(err)
	}
	// A second transaction, committed but NOT durable, then crash losing
	// all unsynced writes.
	tx2 := s.Begin()
	b, err := s.Alloc(tx2, TypeFile, 3, 0o644, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = b
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := crash.Crash(blockdev.RandomSubset, rng); err != nil {
		t.Fatal(err)
	}
	// Reboot: recover the log, reopen the store.
	l2, err := wal.Open(mem, sb.LogStart, sb.LogBlocks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Recover(); err != nil {
		t.Fatal(err)
	}
	pool2 := buffer.NewPool(mem, l2, 64)
	s2, err := Open(pool2)
	if err != nil {
		t.Fatal(err)
	}
	// The durable directory is intact, contents readable (directory data
	// is logged metadata).
	got := make([]byte, 16)
	n, err := s2.ReadAt(a.ID, got, 0)
	if err != nil || n != 16 {
		t.Fatalf("read after recovery: %d, %v", n, err)
	}
	if string(got) != "directory-page-1" {
		t.Fatalf("directory data corrupted: %q", got)
	}
	// The store is fully usable: allocations still work and the bitmap is
	// consistent with the anode table (no double-allocated blocks).
	tx3 := s2.Begin()
	c, err := s2.Alloc(tx3, TypeFile, 3, 0o644, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.WriteAt(tx3, c.ID, []byte("post-crash"), 0); err != nil {
		t.Fatal(err)
	}
	if err := tx3.CommitDurable(); err != nil {
		t.Fatal(err)
	}
}

// Property: random write/truncate sequences against a model []byte.
func TestQuickIOModelCheck(t *testing.T) {
	type op struct {
		Kind uint8
		Off  uint16
		Len  uint8
		Val  byte
	}
	f := func(ops []op) bool {
		s, _ := newStoreQuick()
		if s == nil {
			return false
		}
		tx := s.Begin()
		a, err := s.Alloc(tx, TypeFile, 1, 0o644, 0, 0)
		if err != nil {
			return false
		}
		tx.Commit()
		model := []byte{}
		const maxLen = 6 * testBS
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0: // write
				off := int64(o.Off) % maxLen
				n := int(o.Len)%256 + 1
				if off+int64(n) > maxLen {
					n = int(maxLen - off)
				}
				data := bytes.Repeat([]byte{o.Val}, n)
				tx := s.Begin()
				if _, err := s.WriteAt(tx, a.ID, data, off); err != nil {
					return false
				}
				tx.Commit()
				if int64(len(model)) < off+int64(n) {
					model = append(model, make([]byte, off+int64(n)-int64(len(model)))...)
				}
				copy(model[off:], data)
			case 1: // truncate
				nl := int64(o.Off) % maxLen
				tx := s.Begin()
				if err := s.Truncate(tx, a.ID, nl); err != nil {
					return false
				}
				tx.Commit()
				if int64(len(model)) > nl {
					model = model[:nl]
				} else {
					model = append(model, make([]byte, nl-int64(len(model)))...)
				}
			case 2: // read and compare
				off := int64(o.Off) % maxLen
				n := int(o.Len) + 1
				got := make([]byte, n)
				rn, err := s.ReadAt(a.ID, got, off)
				if err != nil {
					return false
				}
				want := 0
				if off < int64(len(model)) {
					want = copy(make([]byte, n), model[off:])
				}
				if rn != want {
					return false
				}
				if rn > 0 && !bytes.Equal(got[:rn], model[off:off+int64(rn)]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func newStoreQuick() (*Store, *blockdev.MemDevice) {
	dev := blockdev.NewMem(testBS, testDev)
	sb, err := Format(dev, 32)
	if err != nil {
		return nil, nil
	}
	l, err := wal.Open(dev, sb.LogStart, sb.LogBlocks)
	if err != nil {
		return nil, nil
	}
	s, err := Open(buffer.NewPool(dev, l, 64))
	if err != nil {
		return nil, nil
	}
	s.Clock = func() int64 { return 1 }
	return s, dev
}

// Property: clone + random writes to both sides never lets data leak
// between original and clone, and freeing both reclaims every block.
func TestQuickCloneIsolation(t *testing.T) {
	f := func(writes []struct {
		ToClone bool
		Block   uint8
		Val     byte
	}) bool {
		s, _ := newStoreQuick()
		if s == nil {
			return false
		}
		tx := s.Begin()
		orig, err := s.Alloc(tx, TypeFile, 1, 0o644, 0, 0)
		if err != nil {
			return false
		}
		tx.Commit()
		const nBlocks = 16
		base := make([]byte, nBlocks*testBS)
		for i := range base {
			base[i] = byte(i % 251)
		}
		for off := 0; off < len(base); off += testBS {
			tx := s.Begin()
			if _, err := s.WriteAt(tx, orig.ID, base[off:off+testBS], int64(off)); err != nil {
				return false
			}
			tx.Commit()
		}
		tx = s.Begin()
		clone, err := s.CloneAnode(tx, orig.ID, 2)
		if err != nil {
			return false
		}
		tx.Commit()
		origModel := append([]byte(nil), base...)
		cloneModel := append([]byte(nil), base...)
		for _, w := range writes {
			id, model := orig.ID, origModel
			if w.ToClone {
				id, model = clone.ID, cloneModel
			}
			off := int64(w.Block%nBlocks) * testBS
			tx := s.Begin()
			if _, err := s.WriteAt(tx, id, []byte{w.Val}, off); err != nil {
				return false
			}
			tx.Commit()
			model[off] = w.Val
		}
		check := func(id ID, model []byte) bool {
			got := make([]byte, len(model))
			n, err := s.ReadAt(id, got, 0)
			return err == nil && n == len(model) && bytes.Equal(got, model)
		}
		return check(orig.ID, origModel) && check(clone.ID, cloneModel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
