package anode

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"decorum/internal/buffer"
	"decorum/internal/fs"
)

// Block allocation: a one-bit-per-block bitmap plus a 32-bit reference
// count per block. The bitmap answers "is this block in use"; the refcount
// answers "by how many pointers", which is what makes copy-on-write clones
// (§2.1) safe to delete in any order. Both structures are metadata: every
// change is logged.

// bitmapPos locates the bitmap bit for blk.
func (s *Store) bitmapPos(blk int64) (devBlock int64, byteOff int, bit uint) {
	bs := int64(s.sb.BlockSize)
	return s.sb.BitmapStart + blk/(8*bs), int((blk / 8) % bs), uint(blk % 8)
}

// rcPos locates the refcount word for blk.
func (s *Store) rcPos(blk int64) (devBlock int64, byteOff int) {
	perBlock := int64(s.sb.BlockSize) / 4
	return s.sb.RCStart + blk/perBlock, int((blk % perBlock) * 4)
}

// allocBlock claims one free block (bit set, refcount 1) and returns it.
// Caller holds s.mu exclusively.
func (s *Store) allocBlock(tx *buffer.Tx) (int64, error) {
	total := s.sb.TotalBlocks
	probe := s.allocHint
	if probe < s.sb.DataStart || probe >= total {
		probe = s.sb.DataStart
	}
	for scanned := int64(0); scanned < total; {
		devBlock, byteOff, bit := s.bitmapPos(probe)
		b, err := s.pool.Get(devBlock)
		if err != nil {
			return 0, err
		}
		// Scan the rest of this bitmap block in one visit.
		bs := int64(s.sb.BlockSize)
		found := int64(-1)
		for p := probe; p < total && p/(8*bs) == probe/(8*bs); p++ {
			_, bo, bi := s.bitmapPos(p)
			if b.Data()[bo]&(1<<bi) == 0 {
				found = p
				byteOff, bit = bo, bi
				break
			}
			scanned++
		}
		if found < 0 {
			b.Release()
			// Advance to the next bitmap block (wrapping to DataStart).
			probe = (probe/(8*bs) + 1) * (8 * bs)
			if probe >= total {
				probe = s.sb.DataStart
			}
			continue
		}
		newByte := []byte{b.Data()[byteOff] | 1<<bit}
		if err := tx.Update(b, byteOff, newByte); err != nil {
			b.Release()
			return 0, err
		}
		b.Release()
		if err := s.setRefCount(tx, found, 1); err != nil {
			return 0, err
		}
		s.allocHint = found + 1
		s.freeCount--
		return found, nil
	}
	return 0, fs.ErrNoSpace
}

func (s *Store) setRefCount(tx *buffer.Tx, blk int64, rc uint32) error {
	devBlock, byteOff := s.rcPos(blk)
	b, err := s.pool.Get(devBlock)
	if err != nil {
		return err
	}
	defer b.Release()
	var p [4]byte
	binary.BigEndian.PutUint32(p[:], rc)
	return tx.Update(b, byteOff, p[:])
}

// RefCount returns the reference count of blk.
func (s *Store) RefCount(blk int64) (uint32, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.refCountLocked(blk)
}

func (s *Store) refCountLocked(blk int64) (uint32, error) {
	devBlock, byteOff := s.rcPos(blk)
	b, err := s.pool.Get(devBlock)
	if err != nil {
		return 0, err
	}
	defer b.Release()
	return binary.BigEndian.Uint32(b.Data()[byteOff:]), nil
}

// incRef adds one reference to blk. Caller holds s.mu exclusively.
func (s *Store) incRef(tx *buffer.Tx, blk int64) error {
	rc, err := s.refCountLocked(blk)
	if err != nil {
		return err
	}
	if rc == 0 {
		return fmt.Errorf("%w: incRef of free block %d", ErrBadAggregate, blk)
	}
	return s.setRefCount(tx, blk, rc+1)
}

// decRef drops one reference; at zero the block returns to the bitmap.
// Returns true if the block was freed. Caller holds s.mu exclusively.
func (s *Store) decRef(tx *buffer.Tx, blk int64) (bool, error) {
	rc, err := s.refCountLocked(blk)
	if err != nil {
		return false, err
	}
	if rc == 0 {
		return false, fmt.Errorf("%w: decRef of free block %d", ErrBadAggregate, blk)
	}
	if err := s.setRefCount(tx, blk, rc-1); err != nil {
		return false, err
	}
	if rc > 1 {
		return false, nil
	}
	devBlock, byteOff, bit := s.bitmapPos(blk)
	b, err := s.pool.Get(devBlock)
	if err != nil {
		return false, err
	}
	defer b.Release()
	newByte := []byte{b.Data()[byteOff] &^ (1 << bit)}
	if err := tx.Update(b, byteOff, newByte); err != nil {
		return false, err
	}
	if blk < s.allocHint {
		s.allocHint = blk
	}
	s.freeCount++
	return true, nil
}

// FreeBlocks returns the number of unallocated blocks.
func (s *Store) FreeBlocks() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.freeCount
}

// countFree scans the bitmap; used once at Open to seed the in-memory
// counter.
func (s *Store) countFree() (int64, error) {
	bs := int64(s.sb.BlockSize)
	free := int64(0)
	for bmIdx := int64(0); bmIdx < s.sb.BitmapBlocks; bmIdx++ {
		b, err := s.pool.Get(s.sb.BitmapStart + bmIdx)
		if err != nil {
			return 0, err
		}
		base := bmIdx * 8 * bs
		data := b.Data()
		for i := 0; i < s.sb.BlockSize; i++ {
			blocksHere := s.sb.TotalBlocks - (base + int64(i)*8)
			if blocksHere <= 0 {
				break
			}
			v := data[i]
			if blocksHere < 8 {
				v |= byte(0xFF) << uint(blocksHere) // blocks past the end count as used
			}
			free += int64(8 - bits.OnesCount8(v))
		}
		b.Release()
	}
	return free, nil
}
