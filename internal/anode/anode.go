// Package anode implements the Episode anode abstraction (§2.4 of the
// paper): "an open-ended address space of disk storage and nothing more."
//
// Anything that uses storage on the aggregate is an anode: files,
// directories, ACL containers, the anode table itself, and the volume
// registry. A file is an anode "with additional bells and whistles" — a
// set of status bytes, a pointer to an ACL, and a position in the
// directory hierarchy; those extra bytes live in the same fixed-size
// descriptor.
//
// Copy-on-write cloning (§2.1) is supported at this level: CloneAnode
// creates a duplicate whose pointers address the original's blocks, with
// per-block reference counts; a write to a block with refcount > 1 copies
// just that block (and the indirect blocks on the way to it).
//
// All metadata changes — descriptors, block pointers, allocation bitmap,
// reference counts — go through buffer.Tx and are therefore logged.
// User-data block contents are written unlogged (§2.2: "changes to user
// data are not logged"), so after a crash committed metadata may address
// data blocks whose latest contents were lost; that is the standard UNIX
// contract the paper preserves.
//
// Bootstrap: the anode table is itself an anode, whose descriptor lives in
// the superblock (slot 0 of the table addresses the table). The allocation
// bitmap and refcount table are fixed extents recorded in the superblock —
// a bootstrap simplification relative to the paper's "everything is an
// anode", documented in DESIGN.md.
package anode

import (
	"encoding/binary"
	"errors"
	"fmt"

	"decorum/internal/fs"
)

// ID names an anode within one aggregate: its slot in the anode table.
// ID 0 is the anode table itself; user anodes start at 1.
type ID uint64

// TableID is the anode table's own ID (its descriptor is in the
// superblock).
const TableID ID = 0

// Type tags what an anode's container holds.
type Type uint8

// Anode types.
const (
	TypeFree Type = iota
	TypeFile
	TypeDir
	TypeSymlink
	TypeACL
	TypeMeta // volume registry and other aggregate metadata
	TypeHash // per-file chunk hash tree leaves (integrity subsystem)
)

func (t Type) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeFile:
		return "file"
	case TypeDir:
		return "dir"
	case TypeSymlink:
		return "symlink"
	case TypeACL:
		return "acl"
	case TypeMeta:
		return "meta"
	case TypeHash:
		return "hash"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// FileType converts to the shared fs vocabulary (TypeNone for non-file
// anodes).
func (t Type) FileType() fs.FileType {
	switch t {
	case TypeFile:
		return fs.TypeFile
	case TypeDir:
		return fs.TypeDir
	case TypeSymlink:
		return fs.TypeSymlink
	default:
		return fs.TypeNone
	}
}

// Geometry constants.
const (
	// DescSize is the on-disk descriptor size; the anode table is an
	// array of these.
	DescSize = 256
	// NDirect is the number of direct block pointers per descriptor.
	NDirect = 10
	// InlineMax is the longest symlink target stored inline in the
	// descriptor.
	InlineMax = 72
)

// Descriptor field offsets.
const (
	offType    = 0
	offFlags   = 1
	offMode    = 2
	offNlink   = 4
	offOwner   = 8
	offGroup   = 12
	offVolume  = 16
	offLength  = 24
	offAtime   = 32
	offMtime   = 40
	offCtime   = 48
	offDataVer = 56
	offACL     = 64
	offUniq    = 72
	offDirect  = 80                    // 10 * 8 bytes
	offIndir   = offDirect + NDirect*8 // 160
	offDindir  = offIndir + 8          // 168
	offInline  = offDindir + 8         // 176; inline symlink target
	offHash    = offInline             // 176; hash anode when data is not inline
	offParent  = 248                   // directory parent anode (cycle checks)
)

// Flag bits.
const (
	// FlagInlineData marks a symlink whose target is stored inline.
	FlagInlineData uint8 = 1 << 0
)

// Anode is the decoded descriptor. Block pointers use 0 for a hole.
type Anode struct {
	ID       ID
	Type     Type
	Flags    uint8
	Mode     fs.Mode
	Nlink    uint32
	Owner    fs.UserID
	Group    fs.GroupID
	Volume   fs.VolumeID
	Length   int64
	Atime    int64
	Mtime    int64
	Ctime    int64
	DataVer  uint64
	ACL      ID // anode holding the ACL, 0 = none
	Hash     ID // anode holding the chunk hash tree leaves, 0 = none
	Uniq     uint64
	Direct   [NDirect]int64
	Indirect int64
	DIndir   int64
	Inline   []byte // inline symlink target when FlagInlineData is set
	Parent   ID     // containing directory, maintained for directories only
}

// Errors.
var (
	ErrBadAggregate = errors.New("anode: bad aggregate format")
	ErrBadID        = errors.New("anode: no such anode")
	ErrTooLarge     = errors.New("anode: file exceeds maximum size")
	ErrNotFree      = errors.New("anode: slot not free")
	ErrHasBlocks    = errors.New("anode: container not empty")
)

func decode(id ID, p []byte) Anode {
	a := Anode{
		ID:      id,
		Type:    Type(p[offType]),
		Flags:   p[offFlags],
		Mode:    fs.Mode(binary.BigEndian.Uint16(p[offMode:])),
		Nlink:   binary.BigEndian.Uint32(p[offNlink:]),
		Owner:   fs.UserID(binary.BigEndian.Uint32(p[offOwner:])),
		Group:   fs.GroupID(binary.BigEndian.Uint32(p[offGroup:])),
		Volume:  fs.VolumeID(binary.BigEndian.Uint64(p[offVolume:])),
		Length:  int64(binary.BigEndian.Uint64(p[offLength:])),
		Atime:   int64(binary.BigEndian.Uint64(p[offAtime:])),
		Mtime:   int64(binary.BigEndian.Uint64(p[offMtime:])),
		Ctime:   int64(binary.BigEndian.Uint64(p[offCtime:])),
		DataVer: binary.BigEndian.Uint64(p[offDataVer:]),
		ACL:     ID(binary.BigEndian.Uint64(p[offACL:])),
		Uniq:    binary.BigEndian.Uint64(p[offUniq:]),
	}
	for i := 0; i < NDirect; i++ {
		a.Direct[i] = int64(binary.BigEndian.Uint64(p[offDirect+8*i:]))
	}
	a.Indirect = int64(binary.BigEndian.Uint64(p[offIndir:]))
	a.DIndir = int64(binary.BigEndian.Uint64(p[offDindir:]))
	a.Parent = ID(binary.BigEndian.Uint64(p[offParent:]))
	if a.Flags&FlagInlineData != 0 {
		n := int(a.Length)
		if n > InlineMax {
			n = InlineMax
		}
		a.Inline = append([]byte(nil), p[offInline:offInline+n]...)
	} else {
		// The hash-anode pointer shares the inline area: a symlink's
		// target is never hashed, a file's data is never inline.
		a.Hash = ID(binary.BigEndian.Uint64(p[offHash:]))
	}
	return a
}

func encode(a Anode) []byte {
	p := make([]byte, DescSize)
	p[offType] = byte(a.Type)
	p[offFlags] = a.Flags
	binary.BigEndian.PutUint16(p[offMode:], uint16(a.Mode))
	binary.BigEndian.PutUint32(p[offNlink:], a.Nlink)
	binary.BigEndian.PutUint32(p[offOwner:], uint32(a.Owner))
	binary.BigEndian.PutUint32(p[offGroup:], uint32(a.Group))
	binary.BigEndian.PutUint64(p[offVolume:], uint64(a.Volume))
	binary.BigEndian.PutUint64(p[offLength:], uint64(a.Length))
	binary.BigEndian.PutUint64(p[offAtime:], uint64(a.Atime))
	binary.BigEndian.PutUint64(p[offMtime:], uint64(a.Mtime))
	binary.BigEndian.PutUint64(p[offCtime:], uint64(a.Ctime))
	binary.BigEndian.PutUint64(p[offDataVer:], a.DataVer)
	binary.BigEndian.PutUint64(p[offACL:], uint64(a.ACL))
	binary.BigEndian.PutUint64(p[offUniq:], a.Uniq)
	for i := 0; i < NDirect; i++ {
		binary.BigEndian.PutUint64(p[offDirect+8*i:], uint64(a.Direct[i]))
	}
	binary.BigEndian.PutUint64(p[offIndir:], uint64(a.Indirect))
	binary.BigEndian.PutUint64(p[offDindir:], uint64(a.DIndir))
	binary.BigEndian.PutUint64(p[offParent:], uint64(a.Parent))
	if a.Flags&FlagInlineData != 0 {
		copy(p[offInline:offInline+InlineMax], a.Inline)
	} else {
		binary.BigEndian.PutUint64(p[offHash:], uint64(a.Hash))
	}
	return p
}
