package anode

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/buffer"
	"decorum/internal/fs"
	"decorum/internal/wal"
)

// Superblock geometry and counters for one aggregate. It lives in block 0
// together with the inline descriptor of the anode table.
type Superblock struct {
	BlockSize    int
	TotalBlocks  int64
	LogStart     int64
	LogBlocks    int64
	BitmapStart  int64
	BitmapBlocks int64
	RCStart      int64
	RCBlocks     int64
	DataStart    int64 // first allocatable block
	NextUniq     uint64
	NextVolID    uint64
}

const (
	sbMagic   uint32 = 0x45504147 // "EPAG"
	sbVersion uint32 = 1

	sbOffMagic     = 0
	sbOffVersion   = 4
	sbOffBlockSize = 8
	sbOffTotal     = 16
	sbOffLogStart  = 24
	sbOffLogBlocks = 32
	sbOffBmStart   = 40
	sbOffBmBlocks  = 48
	sbOffRCStart   = 56
	sbOffRCBlocks  = 64
	sbOffDataStart = 72
	sbOffNextUniq  = 80
	sbOffNextVol   = 88
	sbOffCRC       = 96
	sbOffTableDesc = 128 // inline descriptor of the anode table (256 bytes)
)

// Store provides anode-level access to one aggregate: descriptor CRUD,
// container I/O, block allocation, and copy-on-write cloning.
//
// Concurrency: structural mutations take the store mutex exclusively;
// pure reads take it shared. Finer-grained locking (per-vnode) is layered
// above by the episode package.
type Store struct {
	pool *buffer.Pool
	// Clock supplies timestamps; overridable in tests.
	Clock func() int64

	mu sync.RWMutex
	sb Superblock
	// allocHint speeds up bitmap scans.
	allocHint int64
	// freeAnodeHint speeds up table scans.
	freeAnodeHint ID
	// freeCount caches the number of free blocks (seeded at Open).
	freeCount int64
}

// MinLogBlocks is the default log size if the caller passes zero.
const MinLogBlocks = wal.MinBlocks

// Format lays out an empty aggregate on dev: superblock, log region,
// allocation bitmap, refcount table. It returns the geometry it chose.
// The device must be freshly zeroed or the caller must not care about its
// contents.
func Format(dev blockdev.Device, logBlocks int64) (Superblock, error) {
	bs := int64(dev.BlockSize())
	total := dev.Blocks()
	if logBlocks < MinLogBlocks {
		logBlocks = MinLogBlocks
	}
	bmBlocks := (total + 8*bs - 1) / (8 * bs)
	rcBlocks := (total*4 + bs - 1) / bs
	sb := Superblock{
		BlockSize:    int(bs),
		TotalBlocks:  total,
		LogStart:     1,
		LogBlocks:    logBlocks,
		BitmapStart:  1 + logBlocks,
		BitmapBlocks: bmBlocks,
	}
	sb.RCStart = sb.BitmapStart + bmBlocks
	sb.RCBlocks = rcBlocks
	sb.DataStart = sb.RCStart + rcBlocks
	if sb.DataStart >= total {
		return sb, fmt.Errorf("%w: device too small (%d blocks, %d needed for metadata)",
			ErrBadAggregate, total, sb.DataStart)
	}

	// Bitmap: blocks [0, DataStart) — the metadata prefix — are allocated
	// with refcount 1; everything else is free.
	for bmIdx := int64(0); bmIdx < bmBlocks; bmIdx++ {
		img := make([]byte, bs)
		base := bmIdx * 8 * bs
		for i := int64(0); i < 8*bs; i++ {
			blk := base + i
			if blk >= total {
				break
			}
			if blk < sb.DataStart {
				img[i/8] |= 1 << uint(i%8)
			}
		}
		if err := dev.Write(sb.BitmapStart+bmIdx, img); err != nil {
			return sb, err
		}
	}
	for rcIdx := int64(0); rcIdx < rcBlocks; rcIdx++ {
		img := make([]byte, bs)
		base := rcIdx * bs / 4
		for i := int64(0); i < bs/4; i++ {
			blk := base + i
			if blk >= total {
				break
			}
			if blk < sb.DataStart {
				binary.BigEndian.PutUint32(img[i*4:], 1)
			}
		}
		if err := dev.Write(sb.RCStart+rcIdx, img); err != nil {
			return sb, err
		}
	}

	if err := wal.Format(dev, sb.LogStart, sb.LogBlocks); err != nil {
		return sb, err
	}
	if err := writeSuperblock(dev, sb, Anode{ID: TableID, Type: TypeMeta}); err != nil {
		return sb, err
	}
	return sb, dev.Sync()
}

func writeSuperblock(dev blockdev.Device, sb Superblock, table Anode) error {
	p := make([]byte, dev.BlockSize())
	binary.BigEndian.PutUint32(p[sbOffMagic:], sbMagic)
	binary.BigEndian.PutUint32(p[sbOffVersion:], sbVersion)
	binary.BigEndian.PutUint32(p[sbOffBlockSize:], uint32(sb.BlockSize))
	binary.BigEndian.PutUint64(p[sbOffTotal:], uint64(sb.TotalBlocks))
	binary.BigEndian.PutUint64(p[sbOffLogStart:], uint64(sb.LogStart))
	binary.BigEndian.PutUint64(p[sbOffLogBlocks:], uint64(sb.LogBlocks))
	binary.BigEndian.PutUint64(p[sbOffBmStart:], uint64(sb.BitmapStart))
	binary.BigEndian.PutUint64(p[sbOffBmBlocks:], uint64(sb.BitmapBlocks))
	binary.BigEndian.PutUint64(p[sbOffRCStart:], uint64(sb.RCStart))
	binary.BigEndian.PutUint64(p[sbOffRCBlocks:], uint64(sb.RCBlocks))
	binary.BigEndian.PutUint64(p[sbOffDataStart:], uint64(sb.DataStart))
	binary.BigEndian.PutUint64(p[sbOffNextUniq:], sb.NextUniq)
	binary.BigEndian.PutUint64(p[sbOffNextVol:], sb.NextVolID)
	binary.BigEndian.PutUint32(p[sbOffCRC:], crc32.ChecksumIEEE(p[:sbOffCRC]))
	copy(p[sbOffTableDesc:], encode(table))
	return dev.Write(0, p)
}

// ReadSuperblock decodes block 0 of dev.
func ReadSuperblock(dev blockdev.Device) (Superblock, error) {
	p := make([]byte, dev.BlockSize())
	if err := dev.Read(0, p); err != nil {
		return Superblock{}, err
	}
	return decodeSuperblock(p)
}

func decodeSuperblock(p []byte) (Superblock, error) {
	var sb Superblock
	if binary.BigEndian.Uint32(p[sbOffMagic:]) != sbMagic {
		return sb, fmt.Errorf("%w: bad magic", ErrBadAggregate)
	}
	if binary.BigEndian.Uint32(p[sbOffVersion:]) != sbVersion {
		return sb, fmt.Errorf("%w: unsupported version", ErrBadAggregate)
	}
	if binary.BigEndian.Uint32(p[sbOffCRC:]) != crc32.ChecksumIEEE(p[:sbOffCRC]) {
		return sb, fmt.Errorf("%w: superblock checksum", ErrBadAggregate)
	}
	sb.BlockSize = int(binary.BigEndian.Uint32(p[sbOffBlockSize:]))
	sb.TotalBlocks = int64(binary.BigEndian.Uint64(p[sbOffTotal:]))
	sb.LogStart = int64(binary.BigEndian.Uint64(p[sbOffLogStart:]))
	sb.LogBlocks = int64(binary.BigEndian.Uint64(p[sbOffLogBlocks:]))
	sb.BitmapStart = int64(binary.BigEndian.Uint64(p[sbOffBmStart:]))
	sb.BitmapBlocks = int64(binary.BigEndian.Uint64(p[sbOffBmBlocks:]))
	sb.RCStart = int64(binary.BigEndian.Uint64(p[sbOffRCStart:]))
	sb.RCBlocks = int64(binary.BigEndian.Uint64(p[sbOffRCBlocks:]))
	sb.DataStart = int64(binary.BigEndian.Uint64(p[sbOffDataStart:]))
	sb.NextUniq = binary.BigEndian.Uint64(p[sbOffNextUniq:])
	sb.NextVolID = binary.BigEndian.Uint64(p[sbOffNextVol:])
	return sb, nil
}

// Open attaches a Store to a formatted aggregate through pool. The pool's
// log must already be recovered (episode.Open does this).
func Open(pool *buffer.Pool) (*Store, error) {
	b, err := pool.Get(0)
	if err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(b.Data())
	b.Release()
	if err != nil {
		return nil, err
	}
	if sb.BlockSize != pool.Device().BlockSize() {
		return nil, fmt.Errorf("%w: block size mismatch", ErrBadAggregate)
	}
	s := &Store{
		pool:          pool,
		Clock:         func() int64 { return time.Now().UnixNano() },
		sb:            sb,
		allocHint:     sb.DataStart,
		freeAnodeHint: 1,
	}
	free, err := s.countFree()
	if err != nil {
		return nil, err
	}
	s.freeCount = free
	return s, nil
}

// Superblock returns a copy of the current geometry/counters.
func (s *Store) Superblock() Superblock {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sb
}

// Pool returns the store's buffer pool.
func (s *Store) Pool() *buffer.Pool { return s.pool }

// Begin opens a metadata transaction on the aggregate's log.
func (s *Store) Begin() *buffer.Tx { return s.pool.Begin() }

// Sync checkpoints: all metadata durable, log emptied.
func (s *Store) Sync() error { return s.pool.Checkpoint() }

// updateSB logs a change to a superblock counter field.
func (s *Store) updateSB(tx *buffer.Tx, off int, val uint64) error {
	b, err := s.pool.Get(0)
	if err != nil {
		return err
	}
	defer b.Release()
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], val)
	if err := tx.Update(b, off, p[:]); err != nil {
		return err
	}
	// Recompute the header CRC so ReadSuperblock keeps working.
	sum := crc32.ChecksumIEEE(b.Data()[:sbOffCRC])
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], sum)
	return tx.Update(b, sbOffCRC, c[:])
}

// NextUniq allocates a fresh uniquifier.
func (s *Store) NextUniq(tx *buffer.Tx) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextUniqLocked(tx)
}

func (s *Store) nextUniqLocked(tx *buffer.Tx) (uint64, error) {
	s.sb.NextUniq++
	if err := s.updateSB(tx, sbOffNextUniq, s.sb.NextUniq); err != nil {
		return 0, err
	}
	return s.sb.NextUniq, nil
}

// NextVolID allocates a fresh locally-unique volume ID.
func (s *Store) NextVolID(tx *buffer.Tx) (fs.VolumeID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sb.NextVolID++
	if err := s.updateSB(tx, sbOffNextVol, s.sb.NextVolID); err != nil {
		return 0, err
	}
	return fs.VolumeID(s.sb.NextVolID), nil
}

// descLocation maps an anode ID to (table file-block index, offset within
// block). ID 0 is the superblock-resident table descriptor.
func (s *Store) descLocation(id ID) (fileBlock int64, off int) {
	perBlock := int64(s.sb.BlockSize / DescSize)
	return int64(id) / perBlock, int(int64(id) % perBlock * DescSize)
}

// loadDesc fetches the raw descriptor bytes for id. Caller must hold s.mu
// (read or write).
func (s *Store) loadDesc(id ID) (Anode, error) {
	if id == TableID {
		b, err := s.pool.Get(0)
		if err != nil {
			return Anode{}, err
		}
		defer b.Release()
		return decode(id, b.Data()[sbOffTableDesc:sbOffTableDesc+DescSize]), nil
	}
	table, err := s.loadDesc(TableID)
	if err != nil {
		return Anode{}, err
	}
	fb, off := s.descLocation(id)
	byteOff := fb*int64(s.sb.BlockSize) + int64(off)
	if byteOff+DescSize > table.Length {
		return Anode{}, fmt.Errorf("%w: id %d beyond table", ErrBadID, id)
	}
	blk, err := s.mapBlock(&table, fb)
	if err != nil {
		return Anode{}, err
	}
	if blk == 0 {
		return Anode{}, fmt.Errorf("%w: hole in anode table at id %d", ErrBadAggregate, id)
	}
	b, err := s.pool.Get(blk)
	if err != nil {
		return Anode{}, err
	}
	defer b.Release()
	return decode(id, b.Data()[off:off+DescSize]), nil
}

// storeDesc writes the descriptor for id through tx. Caller holds s.mu
// exclusively.
func (s *Store) storeDesc(tx *buffer.Tx, a Anode) error {
	if a.ID == TableID {
		b, err := s.pool.Get(0)
		if err != nil {
			return err
		}
		defer b.Release()
		return tx.Update(b, sbOffTableDesc, encode(a))
	}
	table, err := s.loadDesc(TableID)
	if err != nil {
		return err
	}
	fb, off := s.descLocation(a.ID)
	blk, err := s.mapBlock(&table, fb)
	if err != nil {
		return err
	}
	if blk == 0 {
		return fmt.Errorf("%w: hole in anode table at id %d", ErrBadAggregate, a.ID)
	}
	b, err := s.pool.Get(blk)
	if err != nil {
		return err
	}
	defer b.Release()
	return tx.Update(b, off, encode(a))
}

// Get returns a snapshot of the descriptor for id.
func (s *Store) Get(id ID) (Anode, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, err := s.loadDesc(id)
	if err != nil {
		return a, err
	}
	if id != TableID && a.Type == TypeFree {
		return a, fmt.Errorf("%w: id %d is free", ErrBadID, id)
	}
	return a, nil
}

// Put writes back a (possibly modified) descriptor. The container block
// pointers must not be modified by callers; use WriteAt/Truncate/Clone.
func (s *Store) Put(tx *buffer.Tx, a Anode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, err := s.loadDesc(a.ID)
	if err != nil {
		return err
	}
	// Preserve the structural fields the caller must not touch.
	a.Direct = cur.Direct
	a.Indirect = cur.Indirect
	a.DIndir = cur.DIndir
	a.Length = cur.Length
	return s.storeDesc(tx, a)
}

// Alloc claims a free anode slot (growing the table if needed), stamps it
// with typ, volume and a fresh uniquifier, and returns the descriptor.
func (s *Store) Alloc(tx *buffer.Tx, typ Type, volume fs.VolumeID, mode fs.Mode, owner fs.UserID, group fs.GroupID) (Anode, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	table, err := s.loadDesc(TableID)
	if err != nil {
		return Anode{}, err
	}
	perBlock := int64(s.sb.BlockSize / DescSize)
	var id ID
	for {
		nSlots := table.Length / DescSize
		hint := int64(s.freeAnodeHint)
		if hint < 1 {
			hint = 1 // slot 0 shadows the table itself
		}
		found := false
		for probe := hint; probe < nSlots; probe++ {
			a, err := s.loadDesc(ID(probe))
			if err != nil {
				return Anode{}, err
			}
			if a.Type == TypeFree {
				id = ID(probe)
				found = true
				break
			}
		}
		if found {
			break
		}
		// Grow the table by one block of zeroed (free) slots and rescan.
		if err := s.extendLocked(tx, &table, table.Length+perBlock*DescSize, true); err != nil {
			return Anode{}, err
		}
		s.freeAnodeHint = ID(nSlots)
	}
	uniq, err := s.nextUniqLocked(tx)
	if err != nil {
		return Anode{}, err
	}
	now := s.Clock()
	a := Anode{
		ID:     id,
		Type:   typ,
		Mode:   mode,
		Nlink:  1,
		Owner:  owner,
		Group:  group,
		Volume: volume,
		Atime:  now,
		Mtime:  now,
		Ctime:  now,
		Uniq:   uniq,
	}
	if err := s.storeDesc(tx, a); err != nil {
		return Anode{}, err
	}
	s.freeAnodeHint = id + 1
	return a, nil
}

// Free releases an anode slot. The container must already be empty
// (Truncate to 0 first); the ACL anode, if any, is the caller's to free.
func (s *Store) Free(tx *buffer.Tx, id ID) error {
	if id == TableID {
		return fmt.Errorf("%w: cannot free the anode table", ErrBadID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.loadDesc(id)
	if err != nil {
		return err
	}
	if a.Type == TypeFree {
		return fmt.Errorf("%w: double free of %d", ErrBadID, id)
	}
	if a.Length != 0 || a.Indirect != 0 || a.DIndir != 0 {
		return fmt.Errorf("%w: anode %d still has %d bytes", ErrHasBlocks, id, a.Length)
	}
	for _, d := range a.Direct {
		if d != 0 {
			return fmt.Errorf("%w: anode %d has direct blocks", ErrHasBlocks, id)
		}
	}
	if err := s.storeDesc(tx, Anode{ID: id, Type: TypeFree}); err != nil {
		return err
	}
	if id < s.freeAnodeHint {
		s.freeAnodeHint = id
	}
	return nil
}

// AnodesInUse counts allocated slots, for Statfs and the salvager.
func (s *Store) AnodesInUse() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	table, err := s.loadDesc(TableID)
	if err != nil {
		return 0, err
	}
	n := int64(0)
	for id := int64(1); id < table.Length/DescSize; id++ {
		a, err := s.loadDesc(ID(id))
		if err != nil {
			return 0, err
		}
		if a.Type != TypeFree {
			n++
		}
	}
	return n, nil
}

// MaxID returns the highest possible anode ID + 1 (the table's slot
// count), for scanners.
func (s *Store) MaxID() (ID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	table, err := s.loadDesc(TableID)
	if err != nil {
		return 0, err
	}
	return ID(table.Length / DescSize), nil
}
