package anode

import (
	"fmt"

	"decorum/internal/buffer"
	"decorum/internal/fs"
)

// Container I/O: mapping file-block indices to device blocks through the
// direct/indirect/double-indirect pointer tree, with copy-on-write at
// every level. Pointer blocks and the containers of non-file anodes
// (directories, ACLs, metadata) are logged; file data payloads are not
// (§2.2).

// ptrsPerBlock returns how many 8-byte pointers fit in one block.
func (s *Store) ptrsPerBlock() int64 { return int64(s.sb.BlockSize) / 8 }

// MaxLength is the largest container the pointer geometry addresses.
func (s *Store) MaxLength() int64 {
	p := s.ptrsPerBlock()
	return (NDirect + p + p*p) * int64(s.sb.BlockSize)
}

func getPtr(data []byte, i int64) int64 {
	off := i * 8
	v := int64(0)
	for k := 0; k < 8; k++ {
		v = v<<8 | int64(data[off+int64(k)])
	}
	return v
}

func putPtrBytes(v int64) []byte {
	p := make([]byte, 8)
	for k := 7; k >= 0; k-- {
		p[k] = byte(v)
		v >>= 8
	}
	return p
}

// mapBlock resolves file-block fb of a to a device block, or 0 for a hole.
// Caller holds s.mu (read or write).
func (s *Store) mapBlock(a *Anode, fb int64) (int64, error) {
	p := s.ptrsPerBlock()
	switch {
	case fb < 0:
		return 0, fmt.Errorf("%w: negative block index", fs.ErrInvalid)
	case fb < NDirect:
		return a.Direct[fb], nil
	case fb < NDirect+p:
		if a.Indirect == 0 {
			return 0, nil
		}
		b, err := s.pool.Get(a.Indirect)
		if err != nil {
			return 0, err
		}
		defer b.Release()
		return getPtr(b.Data(), fb-NDirect), nil
	case fb < NDirect+p+p*p:
		if a.DIndir == 0 {
			return 0, nil
		}
		idx := fb - NDirect - p
		b, err := s.pool.Get(a.DIndir)
		if err != nil {
			return 0, err
		}
		l1 := getPtr(b.Data(), idx/p)
		b.Release()
		if l1 == 0 {
			return 0, nil
		}
		b2, err := s.pool.Get(l1)
		if err != nil {
			return 0, err
		}
		defer b2.Release()
		return getPtr(b2.Data(), idx%p), nil
	default:
		return 0, fmt.Errorf("%w: block %d", ErrTooLarge, fb)
	}
}

// zeroBlock writes zeros over a whole block, logged or not.
func (s *Store) zeroBlock(tx *buffer.Tx, blk int64, logged bool) error {
	b, err := s.pool.Get(blk)
	if err != nil {
		return err
	}
	defer b.Release()
	zeros := make([]byte, s.sb.BlockSize)
	if logged {
		return tx.Update(b, 0, zeros)
	}
	return b.WriteUnlogged(0, zeros)
}

// copyBlock copies src's contents into dst, logged or not.
func (s *Store) copyBlock(tx *buffer.Tx, src, dst int64, logged bool) error {
	sb, err := s.pool.Get(src)
	if err != nil {
		return err
	}
	content := append([]byte(nil), sb.Data()...)
	sb.Release()
	db, err := s.pool.Get(dst)
	if err != nil {
		return err
	}
	defer db.Release()
	if logged {
		return tx.Update(db, 0, content)
	}
	return db.WriteUnlogged(0, content)
}

// ensureLeaf makes ptr a writable leaf (data) block: a hole is allocated
// and zeroed; a shared block (refcount > 1) is copied. Returns the
// possibly-new pointer. Caller holds s.mu exclusively.
func (s *Store) ensureLeaf(tx *buffer.Tx, ptr int64, logged bool) (int64, error) {
	if ptr == 0 {
		blk, err := s.allocBlock(tx)
		if err != nil {
			return 0, err
		}
		if err := s.zeroBlock(tx, blk, logged); err != nil {
			return 0, err
		}
		return blk, nil
	}
	rc, err := s.refCountLocked(ptr)
	if err != nil {
		return 0, err
	}
	if rc <= 1 {
		return ptr, nil
	}
	// Copy-on-write: just this block (§2.1 — "separate copies ... of just
	// as many blocks as required").
	blk, err := s.allocBlock(tx)
	if err != nil {
		return 0, err
	}
	if err := s.copyBlock(tx, ptr, blk, logged); err != nil {
		return 0, err
	}
	if _, err := s.decRef(tx, ptr); err != nil {
		return 0, err
	}
	return blk, nil
}

// ensureNode makes ptr a writable pointer block. A hole is allocated and
// zeroed (logged: pointer blocks are metadata); a shared block is copied
// and every child it references gains a reference, keeping the invariant
// that a block's refcount equals the number of physical pointers to it.
func (s *Store) ensureNode(tx *buffer.Tx, ptr int64) (int64, error) {
	if ptr == 0 {
		blk, err := s.allocBlock(tx)
		if err != nil {
			return 0, err
		}
		if err := s.zeroBlock(tx, blk, true); err != nil {
			return 0, err
		}
		return blk, nil
	}
	rc, err := s.refCountLocked(ptr)
	if err != nil {
		return 0, err
	}
	if rc <= 1 {
		return ptr, nil
	}
	blk, err := s.allocBlock(tx)
	if err != nil {
		return 0, err
	}
	if err := s.copyBlock(tx, ptr, blk, true); err != nil {
		return 0, err
	}
	// The copy duplicates every child pointer.
	b, err := s.pool.Get(blk)
	if err != nil {
		return 0, err
	}
	nPtrs := s.ptrsPerBlock()
	children := make([]int64, 0, nPtrs)
	for i := int64(0); i < nPtrs; i++ {
		if c := getPtr(b.Data(), i); c != 0 {
			children = append(children, c)
		}
	}
	b.Release()
	for _, c := range children {
		if err := s.incRef(tx, c); err != nil {
			return 0, err
		}
	}
	if _, err := s.decRef(tx, ptr); err != nil {
		return 0, err
	}
	return blk, nil
}

// setPtrInBlock updates one pointer inside a pointer block, logged.
func (s *Store) setPtrInBlock(tx *buffer.Tx, blk, idx, val int64) error {
	b, err := s.pool.Get(blk)
	if err != nil {
		return err
	}
	defer b.Release()
	return tx.Update(b, int(idx*8), putPtrBytes(val))
}

// ensureBlock returns a writable device block for file-block fb of a,
// allocating and copying as needed. It may rewrite pointers inside a
// (caller persists the descriptor afterwards) and inside pointer blocks
// (logged directly). Caller holds s.mu exclusively.
func (s *Store) ensureBlock(tx *buffer.Tx, a *Anode, fb int64, logged bool) (int64, error) {
	p := s.ptrsPerBlock()
	switch {
	case fb < NDirect:
		blk, err := s.ensureLeaf(tx, a.Direct[fb], logged)
		if err != nil {
			return 0, err
		}
		a.Direct[fb] = blk
		return blk, nil
	case fb < NDirect+p:
		ind, err := s.ensureNode(tx, a.Indirect)
		if err != nil {
			return 0, err
		}
		a.Indirect = ind
		idx := fb - NDirect
		b, err := s.pool.Get(ind)
		if err != nil {
			return 0, err
		}
		cur := getPtr(b.Data(), idx)
		b.Release()
		blk, err := s.ensureLeaf(tx, cur, logged)
		if err != nil {
			return 0, err
		}
		if blk != cur {
			if err := s.setPtrInBlock(tx, ind, idx, blk); err != nil {
				return 0, err
			}
		}
		return blk, nil
	case fb < NDirect+p+p*p:
		dind, err := s.ensureNode(tx, a.DIndir)
		if err != nil {
			return 0, err
		}
		a.DIndir = dind
		idx := fb - NDirect - p
		b, err := s.pool.Get(dind)
		if err != nil {
			return 0, err
		}
		l1 := getPtr(b.Data(), idx/p)
		b.Release()
		newL1, err := s.ensureNode(tx, l1)
		if err != nil {
			return 0, err
		}
		if newL1 != l1 {
			if err := s.setPtrInBlock(tx, dind, idx/p, newL1); err != nil {
				return 0, err
			}
		}
		b2, err := s.pool.Get(newL1)
		if err != nil {
			return 0, err
		}
		cur := getPtr(b2.Data(), idx%p)
		b2.Release()
		blk, err := s.ensureLeaf(tx, cur, logged)
		if err != nil {
			return 0, err
		}
		if blk != cur {
			if err := s.setPtrInBlock(tx, newL1, idx%p, blk); err != nil {
				return 0, err
			}
		}
		return blk, nil
	default:
		return 0, fmt.Errorf("%w: block %d", ErrTooLarge, fb)
	}
}

// loggedFor reports whether an anode's container contents are metadata
// (logged). Only plain file data is unlogged.
func loggedFor(t Type) bool { return t != TypeFile }

// ReadAt reads from the container into p starting at byte off, returning
// the count (short at end of container). Holes read as zeros.
func (s *Store) ReadAt(id ID, p []byte, off int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, err := s.loadDesc(id)
	if err != nil {
		return 0, err
	}
	if a.Flags&FlagInlineData != 0 {
		if off >= a.Length {
			return 0, nil
		}
		return copy(p, a.Inline[off:a.Length]), nil
	}
	if off < 0 {
		return 0, fs.ErrInvalid
	}
	if off >= a.Length {
		return 0, nil
	}
	if int64(len(p)) > a.Length-off {
		p = p[:a.Length-off]
	}
	bs := int64(s.sb.BlockSize)
	n := 0
	for n < len(p) {
		fb := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		chunk := int(bs - bo)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		blk, err := s.mapBlock(&a, fb)
		if err != nil {
			return n, err
		}
		if blk == 0 {
			for i := 0; i < chunk; i++ {
				p[n+i] = 0
			}
		} else {
			b, err := s.pool.Get(blk)
			if err != nil {
				return n, err
			}
			copy(p[n:n+chunk], b.Data()[bo:])
			b.Release()
		}
		n += chunk
	}
	return n, nil
}

// WriteAt writes p into the container at byte off, extending the length
// (and allocating blocks) as needed. Content is logged for metadata
// containers and unlogged for file data; pointer and length updates are
// always logged. The whole write happens inside the caller's transaction,
// so callers keep transactions short by bounding p.
func (s *Store) WriteAt(tx *buffer.Tx, id ID, p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.loadDesc(id)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fs.ErrInvalid
	}
	if a.Flags&FlagInlineData != 0 {
		return 0, fmt.Errorf("%w: write to inline container", fs.ErrInvalid)
	}
	if off+int64(len(p)) > s.MaxLength() {
		return 0, ErrTooLarge
	}
	logged := loggedFor(a.Type)
	bs := int64(s.sb.BlockSize)
	n := 0
	for n < len(p) {
		fb := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		chunk := int(bs - bo)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		blk, err := s.ensureBlock(tx, &a, fb, logged)
		if err != nil {
			return n, err
		}
		b, err := s.pool.Get(blk)
		if err != nil {
			return n, err
		}
		if logged {
			err = tx.Update(b, int(bo), p[n:n+chunk])
		} else {
			err = b.WriteUnlogged(int(bo), p[n:n+chunk])
		}
		b.Release()
		if err != nil {
			return n, err
		}
		n += chunk
	}
	if off+int64(len(p)) > a.Length {
		a.Length = off + int64(len(p))
	}
	a.DataVer++
	if err := s.storeDesc(tx, a); err != nil {
		return n, err
	}
	return n, nil
}

// SetInline stores a short payload (symlink target) inline in the
// descriptor.
func (s *Store) SetInline(tx *buffer.Tx, id ID, data []byte) error {
	if len(data) > InlineMax {
		return fmt.Errorf("%w: inline payload %d > %d", fs.ErrInvalid, len(data), InlineMax)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.loadDesc(id)
	if err != nil {
		return err
	}
	a.Flags |= FlagInlineData
	a.Inline = append([]byte(nil), data...)
	a.Length = int64(len(data))
	return s.storeDesc(tx, a)
}

// extendLocked grows a container to newLen, allocating zeroed blocks for
// the full range (no holes) when zeroFill is set — the anode table needs
// that so stale bytes are never decoded as descriptors. Caller holds s.mu.
func (s *Store) extendLocked(tx *buffer.Tx, a *Anode, newLen int64, zeroFill bool) error {
	if newLen <= a.Length {
		return nil
	}
	if newLen > s.MaxLength() {
		return ErrTooLarge
	}
	if zeroFill {
		bs := int64(s.sb.BlockSize)
		first := (a.Length + bs - 1) / bs
		last := (newLen + bs - 1) / bs
		for fb := first; fb < last; fb++ {
			if _, err := s.ensureBlock(tx, a, fb, true); err != nil {
				return err
			}
		}
	}
	a.Length = newLen
	return s.storeDesc(tx, *a)
}

// freePtr releases one pointer (leaf or subtree), returning blocks to the
// allocator when their refcounts drain. level 0 = data block, 1 = indirect
// block of data pointers, 2 = double indirect. Caller holds s.mu.
func (s *Store) freePtr(tx *buffer.Tx, ptr int64, level int) error {
	if ptr == 0 {
		return nil
	}
	if level > 0 {
		rc, err := s.refCountLocked(ptr)
		if err != nil {
			return err
		}
		if rc == 1 {
			// We hold the only reference: the children must be released
			// before the pointer block disappears.
			b, err := s.pool.Get(ptr)
			if err != nil {
				return err
			}
			nPtrs := s.ptrsPerBlock()
			children := make([]int64, 0, nPtrs)
			for i := int64(0); i < nPtrs; i++ {
				if c := getPtr(b.Data(), i); c != 0 {
					children = append(children, c)
				}
			}
			b.Release()
			for _, c := range children {
				if err := s.freePtr(tx, c, level-1); err != nil {
					return err
				}
			}
		}
	}
	_, err := s.decRef(tx, ptr)
	return err
}

// Truncate shrinks (or logically extends) the container to newLen within
// one transaction. For large files callers split the shrink into bounded
// steps — each intermediate length leaves the file system consistent
// (§2.2: "truncation of a file may be broken up").
func (s *Store) Truncate(tx *buffer.Tx, id ID, newLen int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, err := s.loadDesc(id)
	if err != nil {
		return err
	}
	if newLen < 0 {
		return fs.ErrInvalid
	}
	if a.Flags&FlagInlineData != 0 {
		if newLen > int64(len(a.Inline)) {
			return fmt.Errorf("%w: cannot extend inline container", fs.ErrInvalid)
		}
		a.Length = newLen
		a.Inline = a.Inline[:newLen]
		a.DataVer++
		return s.storeDesc(tx, a)
	}
	if newLen >= a.Length {
		if newLen > s.MaxLength() {
			return ErrTooLarge
		}
		a.Length = newLen // extension is a hole
		a.DataVer++
		return s.storeDesc(tx, a)
	}
	logged := loggedFor(a.Type)
	bs := int64(s.sb.BlockSize)
	p := s.ptrsPerBlock()
	// First file-block that must go away entirely.
	firstDead := (newLen + bs - 1) / bs
	lastLive := (a.Length + bs - 1) / bs // exclusive
	// Free whole blocks from the top down.
	for fb := lastLive - 1; fb >= firstDead; fb-- {
		if err := s.clearBlockPtr(tx, &a, fb); err != nil {
			return err
		}
	}
	// Collapse pointer trees that the loop above emptied.
	if firstDead <= NDirect && a.Indirect != 0 {
		if err := s.freePtr(tx, a.Indirect, 1); err != nil {
			return err
		}
		a.Indirect = 0
	}
	if firstDead <= NDirect+p && a.DIndir != 0 {
		if err := s.freePtr(tx, a.DIndir, 2); err != nil {
			return err
		}
		a.DIndir = 0
	}
	// Zero the tail of the new last block so a later extension reads
	// zeros, preserving UNIX semantics.
	if newLen%bs != 0 {
		fb := newLen / bs
		blk, err := s.mapBlock(&a, fb)
		if err != nil {
			return err
		}
		if blk != 0 {
			blk, err = s.ensureBlock(tx, &a, fb, logged)
			if err != nil {
				return err
			}
			b, err := s.pool.Get(blk)
			if err != nil {
				return err
			}
			zeros := make([]byte, bs-newLen%bs)
			if logged {
				err = tx.Update(b, int(newLen%bs), zeros)
			} else {
				err = b.WriteUnlogged(int(newLen%bs), zeros)
			}
			b.Release()
			if err != nil {
				return err
			}
		}
	}
	a.Length = newLen
	a.DataVer++
	return s.storeDesc(tx, a)
}

// clearBlockPtr frees the block behind file-block fb and zeroes its
// pointer, copy-on-writing shared pointer blocks on the way.
func (s *Store) clearBlockPtr(tx *buffer.Tx, a *Anode, fb int64) error {
	p := s.ptrsPerBlock()
	switch {
	case fb < NDirect:
		if a.Direct[fb] == 0 {
			return nil
		}
		if err := s.freePtr(tx, a.Direct[fb], 0); err != nil {
			return err
		}
		a.Direct[fb] = 0
		return nil
	case fb < NDirect+p:
		if a.Indirect == 0 {
			return nil
		}
		idx := fb - NDirect
		b, err := s.pool.Get(a.Indirect)
		if err != nil {
			return err
		}
		cur := getPtr(b.Data(), idx)
		b.Release()
		if cur == 0 {
			return nil
		}
		ind, err := s.ensureNode(tx, a.Indirect)
		if err != nil {
			return err
		}
		a.Indirect = ind
		if err := s.freePtr(tx, cur, 0); err != nil {
			return err
		}
		return s.setPtrInBlock(tx, ind, idx, 0)
	case fb < NDirect+p+p*p:
		if a.DIndir == 0 {
			return nil
		}
		idx := fb - NDirect - p
		b, err := s.pool.Get(a.DIndir)
		if err != nil {
			return err
		}
		l1 := getPtr(b.Data(), idx/p)
		b.Release()
		if l1 == 0 {
			return nil
		}
		b2, err := s.pool.Get(l1)
		if err != nil {
			return err
		}
		cur := getPtr(b2.Data(), idx%p)
		empty := true
		for i := int64(0); i < p; i++ {
			if i != idx%p && getPtr(b2.Data(), i) != 0 {
				empty = false
				break
			}
		}
		b2.Release()
		if cur == 0 {
			return nil
		}
		dind, err := s.ensureNode(tx, a.DIndir)
		if err != nil {
			return err
		}
		a.DIndir = dind
		newL1, err := s.ensureNode(tx, l1)
		if err != nil {
			return err
		}
		if newL1 != l1 {
			if err := s.setPtrInBlock(tx, dind, idx/p, newL1); err != nil {
				return err
			}
		}
		if err := s.freePtr(tx, cur, 0); err != nil {
			return err
		}
		if err := s.setPtrInBlock(tx, newL1, idx%p, 0); err != nil {
			return err
		}
		if empty {
			// Last child gone: free the level-1 block too.
			if err := s.freePtr(tx, newL1, 1); err != nil {
				return err
			}
			return s.setPtrInBlock(tx, dind, idx/p, 0)
		}
		return nil
	default:
		return fmt.Errorf("%w: block %d", ErrTooLarge, fb)
	}
}

// CloneAnode makes a copy-on-write duplicate of src in volume dstVol
// (§2.1): the new anode's pointers address the original's blocks, which
// gain a reference each; nothing is copied until someone writes.
func (s *Store) CloneAnode(tx *buffer.Tx, srcID ID, dstVol fs.VolumeID) (Anode, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src, err := s.loadDesc(srcID)
	if err != nil {
		return Anode{}, err
	}
	if src.Type == TypeFree {
		return Anode{}, fmt.Errorf("%w: clone of free anode %d", ErrBadID, srcID)
	}
	// Allocate a slot via the same path as Alloc, but copy src's fields.
	dst := src
	dst.Volume = dstVol
	uniq, err := s.nextUniqLocked(tx)
	if err != nil {
		return Anode{}, err
	}
	dst.Uniq = uniq
	id, err := s.allocSlotLocked(tx)
	if err != nil {
		return Anode{}, err
	}
	dst.ID = id
	// Share every block: +1 reference on all top-level pointers and, for
	// the pointer-tree case, on nothing else — sharing the root of a
	// subtree counts one physical pointer; the children keep their counts
	// because the subtree's interior pointers are unchanged.
	for _, d := range src.Direct {
		if d != 0 {
			if err := s.incRef(tx, d); err != nil {
				return Anode{}, err
			}
		}
	}
	if src.Indirect != 0 {
		if err := s.incRef(tx, src.Indirect); err != nil {
			return Anode{}, err
		}
	}
	if src.DIndir != 0 {
		if err := s.incRef(tx, src.DIndir); err != nil {
			return Anode{}, err
		}
	}
	if err := s.storeDesc(tx, dst); err != nil {
		return Anode{}, err
	}
	return dst, nil
}

// allocSlotLocked finds or creates a free table slot without initializing
// it (the caller stores the descriptor).
func (s *Store) allocSlotLocked(tx *buffer.Tx) (ID, error) {
	table, err := s.loadDesc(TableID)
	if err != nil {
		return 0, err
	}
	perBlock := int64(s.sb.BlockSize / DescSize)
	for {
		nSlots := table.Length / DescSize
		hint := int64(s.freeAnodeHint)
		if hint < 1 {
			hint = 1
		}
		for probe := hint; probe < nSlots; probe++ {
			a, err := s.loadDesc(ID(probe))
			if err != nil {
				return 0, err
			}
			if a.Type == TypeFree {
				s.freeAnodeHint = ID(probe) + 1
				return ID(probe), nil
			}
		}
		if err := s.extendLocked(tx, &table, table.Length+perBlock*DescSize, true); err != nil {
			return 0, err
		}
		s.freeAnodeHint = ID(nSlots)
	}
}
