package anode

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestLogFullCommitRegression pins the fix for a wedge found by the
// clone-isolation property test: when a transaction's COMMIT record hit a
// full log, the transaction leaked in the wal's active table, pinning the
// log tail forever — every later operation then failed with ErrLogFull.
// buffer.Tx.Commit/Abort now checkpoint-and-retry like Update does. The
// deterministic seeds below include ones that previously reproduced the
// wedge (seed 3 in particular).
func TestLogFullCommitRegression(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(seed))}
		f := func(writes []struct {
			ToClone bool
			Block   uint8
			Val     byte
		}) bool {
			s, _ := newStoreQuick()
			if s == nil {
				return false
			}
			tx := s.Begin()
			orig, err := s.Alloc(tx, TypeFile, 1, 0o644, 0, 0)
			if err != nil {
				t.Logf("seed %d: alloc: %v", seed, err)
				return false
			}
			tx.Commit()
			const nBlocks = 16
			base := make([]byte, nBlocks*testBS)
			for off := 0; off < len(base); off += testBS {
				tx := s.Begin()
				if _, err := s.WriteAt(tx, orig.ID, base[off:off+testBS], int64(off)); err != nil {
					t.Logf("seed %d: base write: %v", seed, err)
					return false
				}
				tx.Commit()
			}
			tx = s.Begin()
			clone, err := s.CloneAnode(tx, orig.ID, 2)
			if err != nil {
				t.Logf("seed %d: clone: %v", seed, err)
				return false
			}
			tx.Commit()
			for i, w := range writes {
				id := orig.ID
				if w.ToClone {
					id = clone.ID
				}
				off := int64(w.Block%nBlocks) * testBS
				tx := s.Begin()
				if _, err := s.WriteAt(tx, id, []byte{w.Val}, off); err != nil {
					st := s.Pool().Log().LogStats()
					t.Logf("seed %d write %d: %v (head=%d tail=%d active=%v)", seed, i, err, st.Head, st.Tail, s.Pool().Log().ActiveTxs())
					return false
				}
				tx.Commit()
			}
			return true
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
