// Package integrity is the end-to-end chunk integrity subsystem: the
// hash-tree math over a file's 64 KiB chunks, the typed mismatch error
// the client surfaces when a fetched chunk fails verification, and the
// small verifier bookkeeping the client keeps per chunk.
//
// The layout follows the Nil-Store Super-Manifest trick: a file's leaf
// hashes (SHA-256 of each 64 KiB chunk, the last one clipped at the file
// length) are persisted in a dedicated hash anode alongside the data
// anode — anodes are "an open-ended address space and nothing more"
// (§2.4), so a hash anode per file fits the Episode model exactly — and
// everything above the leaves is recomputed on demand: interior nodes
// fold Fanout children at a time, so one 32-byte root authenticates an
// arbitrarily large file and two servers can find the differing chunks
// by descending only the subtrees whose hashes disagree.
//
// A zero [32]byte leaf means "unhashed": SHA-256 never produces the zero
// digest, so absent leaves (sparse holes, files written before hashing
// existed) are distinguishable from real ones and verification simply
// skips them.
package integrity

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// LeafSize is the hashed unit: one client cache chunk, one stripe chunk
// (stripe.ChunkSize — asserted equal in the tests to avoid an import
// cycle with the stripe package's consumers).
const LeafSize = 64 * 1024

// HashSize is the digest size (SHA-256).
const HashSize = sha256.Size

// Fanout is how many child hashes fold into one interior node. 32 keeps
// the tree shallow (a million-chunk file is 4 levels deep) while a
// subtree miss still narrows the search 32×.
const Fanout = 32

// Hash is one tree node. The zero value means "absent" (see package
// comment).
type Hash [HashSize]byte

// IsZero reports whether h is the absent sentinel.
func (h Hash) IsZero() bool { return h == Hash{} }

// ErrMismatch is the sentinel all verification failures wrap: a fetched
// chunk's bytes did not hash to the expected leaf. It is retryable — the
// client re-fetches (or parity-reconstructs on striped volumes) before
// surfacing it.
var ErrMismatch = errors.New("integrity: chunk hash mismatch")

// MismatchError reports one failed chunk verification.
type MismatchError struct {
	Chunk int64 // chunk (leaf) index within the file
	Want  Hash  // expected leaf hash
	Got   Hash  // hash of the bytes received
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("integrity: chunk %d hash mismatch (want %x…, got %x…)",
		e.Chunk, e.Want[:4], e.Got[:4])
}

// Unwrap makes errors.Is(err, ErrMismatch) work.
func (e *MismatchError) Unwrap() error { return ErrMismatch }

// LeafCount is how many leaves a file of the given length has: one per
// started 64 KiB chunk, zero for an empty file.
func LeafCount(length int64) int64 {
	if length <= 0 {
		return 0
	}
	return (length + LeafSize - 1) / LeafSize
}

// ClipLeaf bounds one leaf's byte count: LeafSize for interior chunks,
// the remainder for the final one. Zero when the chunk lies beyond the
// length.
func ClipLeaf(length, idx int64) int {
	off := idx * LeafSize
	if off >= length {
		return 0
	}
	n := length - off
	if n > LeafSize {
		n = LeafSize
	}
	return int(n)
}

// LeafHash hashes one chunk's logical bytes (already clipped at the
// file length by the caller).
func LeafHash(data []byte) Hash { return sha256.Sum256(data) }

// Fold computes the next level up: each interior node is the SHA-256 of
// its up-to-Fanout children concatenated. A single-child node is still
// hashed, so every level is a uniform function of the one below.
func Fold(nodes []Hash) []Hash {
	out := make([]Hash, 0, (len(nodes)+Fanout-1)/Fanout)
	for i := 0; i < len(nodes); i += Fanout {
		j := i + Fanout
		if j > len(nodes) {
			j = len(nodes)
		}
		h := sha256.New()
		for _, n := range nodes[i:j] {
			h.Write(n[:])
		}
		var d Hash
		copy(d[:], h.Sum(nil))
		out = append(out, d)
	}
	return out
}

// Levels is how many Fold applications take n leaves to a single root:
// 0 for n <= 1, else ceil(log_Fanout(n)).
func Levels(n int64) int {
	l := 0
	for n > 1 {
		n = (n + Fanout - 1) / Fanout
		l++
	}
	return l
}

// LevelWidth is how many nodes level has, starting from n leaves at
// level 0.
func LevelWidth(n int64, level int) int64 {
	for i := 0; i < level; i++ {
		n = (n + Fanout - 1) / Fanout
	}
	return n
}

// Level folds leaves up to the requested level (0 returns the leaves
// themselves).
func Level(leaves []Hash, level int) []Hash {
	nodes := leaves
	for i := 0; i < level; i++ {
		nodes = Fold(nodes)
	}
	return nodes
}

// Root reduces leaves to the single 32-byte file root. An empty file's
// root is the zero Hash.
func Root(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	nodes := leaves
	for len(nodes) > 1 {
		nodes = Fold(nodes)
	}
	return nodes[0]
}

// Marshal flattens hashes for the wire (32 bytes each, in order).
func Marshal(hashes []Hash) []byte {
	out := make([]byte, 0, len(hashes)*HashSize)
	for _, h := range hashes {
		out = append(out, h[:]...)
	}
	return out
}

// Unmarshal is the inverse of Marshal; a length that is not a multiple
// of HashSize is an error.
func Unmarshal(p []byte) ([]Hash, error) {
	if len(p)%HashSize != 0 {
		return nil, fmt.Errorf("integrity: %d hash bytes not a multiple of %d", len(p), HashSize)
	}
	out := make([]Hash, len(p)/HashSize)
	for i := range out {
		copy(out[i][:], p[i*HashSize:])
	}
	return out, nil
}

// ChunkRef names one chunk of one file for verifier bookkeeping.
type ChunkRef struct {
	Vnode uint64
	Uniq  uint64
	Chunk int64
}

// Verifier is the client-side mismatch ledger: how many times each
// chunk has failed verification since it last passed. The fetch path
// consults it to bound re-fetches and dfsstat reads the totals.
//
// Lock order: mu is a leaf — it is taken with no other lock held and
// never held across an RPC or while taking any other lock.
type Verifier struct {
	mu         sync.Mutex
	bad        map[ChunkRef]int // guarded by mu; consecutive failures per chunk
	mismatches uint64           // guarded by mu; lifetime total
}

// NewVerifier returns an empty ledger.
func NewVerifier() *Verifier {
	return &Verifier{bad: make(map[ChunkRef]int)}
}

// Note records one verification failure and returns how many
// consecutive failures the chunk has accumulated.
func (v *Verifier) Note(ref ChunkRef) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.bad[ref]++
	v.mismatches++
	return v.bad[ref]
}

// Clear forgets a chunk's failure streak (it verified, or its bytes
// were replaced).
func (v *Verifier) Clear(ref ChunkRef) {
	v.mu.Lock()
	defer v.mu.Unlock()
	delete(v.bad, ref)
}

// Mismatches returns the lifetime failure count.
func (v *Verifier) Mismatches() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.mismatches
}

// BadChunks returns how many chunks currently have an unresolved
// failure streak.
func (v *Verifier) BadChunks() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.bad)
}
