package integrity

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"testing"

	"decorum/internal/stripe"
)

func TestLeafSizeMatchesStripeChunk(t *testing.T) {
	if LeafSize != stripe.ChunkSize {
		t.Fatalf("LeafSize %d != stripe.ChunkSize %d", LeafSize, stripe.ChunkSize)
	}
}

func TestLeafCountAndClip(t *testing.T) {
	cases := []struct {
		length int64
		leaves int64
	}{
		{0, 0}, {1, 1}, {LeafSize - 1, 1}, {LeafSize, 1},
		{LeafSize + 1, 2}, {10 * LeafSize, 10}, {10*LeafSize + 5, 11},
	}
	for _, c := range cases {
		if got := LeafCount(c.length); got != c.leaves {
			t.Errorf("LeafCount(%d) = %d, want %d", c.length, got, c.leaves)
		}
	}
	if got := ClipLeaf(LeafSize+100, 1); got != 100 {
		t.Errorf("ClipLeaf tail = %d, want 100", got)
	}
	if got := ClipLeaf(LeafSize+100, 0); got != LeafSize {
		t.Errorf("ClipLeaf interior = %d, want %d", got, LeafSize)
	}
	if got := ClipLeaf(LeafSize, 1); got != 0 {
		t.Errorf("ClipLeaf beyond EOF = %d, want 0", got)
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	leaves := make([]Hash, 100)
	for i := range leaves {
		leaves[i] = LeafHash([]byte{byte(i)})
	}
	root := Root(leaves)
	if root.IsZero() {
		t.Fatal("root of non-empty tree is zero")
	}
	for i := range leaves {
		mod := make([]Hash, len(leaves))
		copy(mod, leaves)
		mod[i] = LeafHash([]byte{byte(i), 1})
		if Root(mod) == root {
			t.Fatalf("flipping leaf %d did not change the root", i)
		}
	}
	if Root(nil) != (Hash{}) {
		t.Fatal("empty root not zero")
	}
	if Root(leaves) != root {
		t.Fatal("root not deterministic")
	}
}

func TestLevelNavigation(t *testing.T) {
	// 1000 leaves: level widths 1000 → 32 → 1.
	n := int64(1000)
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte{byte(i), byte(i >> 8)})
	}
	if got := Levels(n); got != 2 {
		t.Fatalf("Levels(%d) = %d, want 2", n, got)
	}
	if got := LevelWidth(n, 1); got != 32 {
		t.Fatalf("LevelWidth(%d, 1) = %d, want 32", n, got)
	}
	if got := LevelWidth(n, 2); got != 1 {
		t.Fatalf("LevelWidth(%d, 2) = %d, want 1", n, got)
	}
	top := Level(leaves, 2)
	if len(top) != 1 || top[0] != Root(leaves) {
		t.Fatal("top level disagrees with Root")
	}

	// A change in leaf i must surface in exactly the node i/Fanout at
	// level 1 — that locality is what the diff walk descends on.
	l1 := Level(leaves, 1)
	mod := make([]Hash, n)
	copy(mod, leaves)
	mod[517] = LeafHash([]byte("changed"))
	l1mod := Level(mod, 1)
	for i := range l1 {
		want := i == 517/Fanout
		if (l1[i] != l1mod[i]) != want {
			t.Fatalf("level-1 node %d changed=%v, want %v", i, l1[i] != l1mod[i], want)
		}
	}

	if got := Levels(1); got != 0 {
		t.Fatalf("Levels(1) = %d, want 0", got)
	}
	one := Level(leaves[:1], 0)
	if one[0] != Root(leaves[:1]) {
		t.Fatal("single-leaf root should be the leaf itself reduced")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	leaves := []Hash{LeafHash([]byte("a")), LeafHash([]byte("b")), {}}
	p := Marshal(leaves)
	if len(p) != 3*HashSize {
		t.Fatalf("marshal len %d", len(p))
	}
	back, err := Unmarshal(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range leaves {
		if back[i] != leaves[i] {
			t.Fatalf("leaf %d did not round-trip", i)
		}
	}
	if _, err := Unmarshal(p[:33]); err == nil {
		t.Fatal("ragged unmarshal should error")
	}
}

func TestLeafHashIsSHA256(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 1000)
	want := sha256.Sum256(data)
	if LeafHash(data) != Hash(want) {
		t.Fatal("LeafHash is not plain SHA-256")
	}
}

func TestMismatchError(t *testing.T) {
	err := error(&MismatchError{Chunk: 7, Want: LeafHash([]byte("w")), Got: LeafHash([]byte("g"))})
	if !errors.Is(err, ErrMismatch) {
		t.Fatal("MismatchError does not unwrap to ErrMismatch")
	}
	var me *MismatchError
	if !errors.As(err, &me) || me.Chunk != 7 {
		t.Fatal("errors.As lost the chunk index")
	}
}

func TestVerifierLedger(t *testing.T) {
	v := NewVerifier()
	ref := ChunkRef{Vnode: 1, Uniq: 2, Chunk: 3}
	if n := v.Note(ref); n != 1 {
		t.Fatalf("first Note = %d", n)
	}
	if n := v.Note(ref); n != 2 {
		t.Fatalf("second Note = %d", n)
	}
	if v.BadChunks() != 1 || v.Mismatches() != 2 {
		t.Fatalf("ledger state bad=%d total=%d", v.BadChunks(), v.Mismatches())
	}
	v.Clear(ref)
	if v.BadChunks() != 0 {
		t.Fatal("Clear did not drop the streak")
	}
	if v.Mismatches() != 2 {
		t.Fatal("Clear should not reset lifetime total")
	}
}
