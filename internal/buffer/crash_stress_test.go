package buffer

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/wal"
)

// TestCrashStressConcurrentTx runs N goroutines through concurrent
// update/commit/abort cycles against one sharded pool + log, crashes the
// device, and recovers. The invariant: each goroutine owns one cell, and
// after recovery the cell holds either its initial zero state or a value
// from one of that goroutine's *committed* transactions — never a value
// an abort rolled back, and never a torn mix. Run under -race this also
// shakes out data races between shards, group commit, and checkpoints.
func TestCrashStressConcurrentTx(t *testing.T) {
	for _, mode := range []struct {
		name string
		m    blockdev.CrashMode
	}{
		{"drop-all", blockdev.DropAll},
		{"keep-all", blockdev.KeepAll},
		{"random-subset", blockdev.RandomSubset},
	} {
		t.Run(mode.name, func(t *testing.T) {
			mem := blockdev.NewMem(testBS, devBlks)
			crash := blockdev.NewCrash(mem)
			if err := wal.Format(crash, logStart, logBlks); err != nil {
				t.Fatal(err)
			}
			if err := crash.Sync(); err != nil {
				t.Fatal(err)
			}
			l, err := wal.Open(crash, logStart, logBlks)
			if err != nil {
				t.Fatal(err)
			}
			p := NewPool(crash, l, 16)

			const (
				goroutines = 8
				iters      = 40
				cellSize   = 8
			)
			// Goroutine g owns the cell at offset (g%4)*cellSize in block
			// g/4 + 1, so goroutines share blocks (latch contention) and
			// blocks land in different shards.
			committed := make([][]uint64, goroutines)
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(g) * 7919))
					block := int64(g/4 + 1)
					off := (g % 4) * cellSize
					val := make([]byte, cellSize)
					for i := 1; i <= iters; i++ {
						v := uint64(g+1)<<32 | uint64(i)
						binary.BigEndian.PutUint64(val, v)
						b, err := p.Get(block)
						if err != nil {
							errs <- fmt.Errorf("g%d get: %w", g, err)
							return
						}
						tx := p.Begin()
						if err := tx.Update(b, off, val); err != nil {
							b.Release()
							errs <- fmt.Errorf("g%d update: %w", g, err)
							return
						}
						switch rng.Intn(3) {
						case 0:
							err = tx.Commit()
						case 1:
							err = tx.CommitDurable()
						default:
							if err = tx.Abort(); err == nil {
								v = 0 // rolled back; not a committed value
							}
						}
						b.Release()
						if err != nil {
							errs <- fmt.Errorf("g%d finish: %w", g, err)
							return
						}
						if v != 0 {
							committed[g] = append(committed[g], v)
						}
						// Pressure the cache from a disjoint block range so
						// evictions destage mid-run (exercising the WAL rule).
						n := int64(10 + rng.Intn(40))
						if spare, err := p.Get(n); err == nil {
							spare.Release()
						} else if !errors.Is(err, ErrNoBuffers) {
							errs <- fmt.Errorf("g%d pressure get: %w", g, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			if err := crash.Crash(mode.m, rand.New(rand.NewSource(42))); err != nil {
				t.Fatal(err)
			}
			l2, err := wal.Open(mem, logStart, logBlks)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := l2.Recover(); err != nil {
				t.Fatalf("recovery after %s crash: %v", mode.name, err)
			}
			for g := 0; g < goroutines; g++ {
				block := int64(g/4 + 1)
				off := (g % 4) * cellSize
				data := make([]byte, testBS)
				if err := mem.Read(block, data); err != nil {
					t.Fatal(err)
				}
				got := binary.BigEndian.Uint64(data[off : off+cellSize])
				if got == 0 {
					continue // initial state: nothing durable reached the cell
				}
				ok := false
				for _, v := range committed[g] {
					if v == got {
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("g%d cell holds %#x after recovery: not a committed value", g, got)
				}
			}
		})
	}
}
