// Package buffer implements the Episode disk buffer cache (§2.2 of the
// paper), which is "intricately entwined" with the logging system:
//
//   - Higher-level file system functions must not modify buffer data
//     directly; metadata changes go through the logging primitives
//     (Tx.Update), which record old/new values and apply the change under
//     the buffer latch.
//   - With each buffer the logger records the position of the most recent
//     log entry for changes to the buffer's data; the buffer must not be
//     written to disk until the log has been flushed to that position.
//     destage enforces this write-ahead rule unconditionally.
//   - Callers do not choose write synchrony; they release buffers and the
//     pool decides when to destage (no-force). Dirty buffers holding
//     uncommitted changes may be destaged to make room (steal); recovery's
//     undo pass makes that safe.
//
// Changes to user data are not logged (§2.2): file-data blocks use
// WriteUnlogged, which dirties the buffer without a log record.
//
// The pool is sharded by block number: each shard has its own mutex, hash
// map, and LRU list, so Get/Release/evict/destage on different shards never
// contend. The write-ahead rule is enforced per buffer (and therefore per
// shard); nothing about it depends on a global pool lock. Small pools stay
// single-shard so capacity semantics (pinning limits, eviction order) are
// exactly those of an unsharded cache.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/obs"
	"decorum/internal/wal"
)

// Errors returned by the pool.
var (
	ErrNoBuffers = errors.New("buffer: all buffers pinned")
	ErrTxDone    = errors.New("buffer: transaction already finished")
)

// noLSN marks a clean buffer (no log record since the last destage).
const noLSN = ^wal.LSN(0)

// maxShards caps how many shards a pool is split into.
const maxShards = 16

// minShardCap is the smallest per-shard capacity worth sharding for.
// Pools smaller than 2*minShardCap stay single-shard, so tests and
// callers that reason about exact capacity keep the unsharded behavior.
const minShardCap = 8

// Buf is one cached disk block. Between Get and Release the caller holds
// the buffer latch and may read Data or apply updates through a Tx.
type Buf struct {
	shard *shard
	block int64
	data  []byte

	refs  int  // guarded by shard.mu
	dirty bool // guarded by shard.mu
	// guarded by shard.mu
	firstLSN wal.LSN // first record since last destage (noLSN when clean)
	// guarded by shard.mu
	lastLSN wal.LSN       // most recent record touching this buffer
	elem    *list.Element // guarded by shard.mu

	mu sync.Mutex // the buffer latch
}

// Block returns the device block this buffer caches.
func (b *Buf) Block() int64 { return b.block }

// Data returns the buffer contents. The caller must hold the buffer (be
// between Get and Release) and must not modify the slice directly; use
// Tx.Update or WriteUnlogged.
func (b *Buf) Data() []byte { return b.data }

// Dirty reports whether the buffer has unwritten changes.
func (b *Buf) Dirty() bool {
	s := b.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	return b.dirty
}

// WriteUnlogged overwrites bytes at off without logging. It is the path
// for user-data blocks, whose changes the log does not cover (§2.2).
func (b *Buf) WriteUnlogged(off int, p []byte) error {
	if off < 0 || off+len(p) > len(b.data) {
		return fmt.Errorf("buffer: unlogged write [%d,%d) outside block", off, off+len(p))
	}
	// The copy happens under the shard mutex so that destage (which reads
	// buffer data under the same mutex) never observes a torn write.
	s := b.shard
	s.mu.Lock()
	copy(b.data[off:], p)
	b.dirty = true
	s.mu.Unlock()
	return nil
}

// Release returns the buffer to the pool. The caller must not touch the
// buffer afterwards.
func (b *Buf) Release() {
	b.mu.Unlock()
	s := b.shard
	s.mu.Lock()
	b.refs--
	if b.refs < 0 {
		s.mu.Unlock()
		panic("buffer: release of unpinned buffer")
	}
	s.mu.Unlock()
}

// Stats counts pool activity.
type Stats struct {
	Hits     uint64
	Misses   uint64
	Destages uint64
	Evicts   uint64
}

// shard is one slice of the cache: the buffers whose block numbers hash
// here, with their own lock, map, and LRU list.
type shard struct {
	pool *Pool
	cap  int

	mu   sync.Mutex
	bufs map[int64]*Buf // guarded by mu
	lru  *list.List     // guarded by mu (of *Buf, front = most recent)
}

// Pool is the buffer cache for one device/log pair.
type Pool struct {
	dev    blockdev.Device
	log    *wal.Log
	cap    int
	shards []*shard

	// Activity metrics, pool-wide (obs counters are striped atomics, so
	// shards bump them without cross-shard contention). Stats() reads the
	// same cells a registry sees after Instrument.
	hits      *obs.Counter
	misses    *obs.Counter
	destages  *obs.Counter
	evicts    *obs.Counter
	destageNs *obs.Histogram // one destage incl. the write-ahead log flush
}

// shardCount picks how many shards a pool of the given capacity gets:
// enough to spread hot-path contention, never so many that a shard drops
// below minShardCap buffers (which would change pinning semantics for
// small pools).
func shardCount(capacity int) int {
	n := capacity / minShardCap
	if n > maxShards {
		n = maxShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NewPool creates a pool of at most capacity buffers over dev, enforcing
// the write-ahead rule against log. log may be nil for an unlogged device
// (the FFS baseline supplies its own ordering).
func NewPool(dev blockdev.Device, log *wal.Log, capacity int) *Pool {
	if capacity < 1 {
		panic("buffer: capacity must be positive")
	}
	n := shardCount(capacity)
	p := &Pool{
		dev:       dev,
		log:       log,
		cap:       capacity,
		shards:    make([]*shard, n),
		hits:      obs.NewCounter(),
		misses:    obs.NewCounter(),
		destages:  obs.NewCounter(),
		evicts:    obs.NewCounter(),
		destageNs: obs.NewHistogram(),
	}
	per, extra := capacity/n, capacity%n
	for i := range p.shards {
		c := per
		if i < extra {
			c++
		}
		p.shards[i] = &shard{
			pool: p,
			cap:  c,
			bufs: make(map[int64]*Buf),
			lru:  list.New(),
		}
	}
	return p
}

// shardOf maps a block number to its shard.
func (p *Pool) shardOf(n int64) *shard {
	return p.shards[uint64(n)%uint64(len(p.shards))]
}

// ShardCount reports how many shards the pool was split into.
func (p *Pool) ShardCount() int { return len(p.shards) }

// Get pins and latches the buffer for block n, reading it from the device
// on a miss. The caller must call Release exactly once.
func (p *Pool) Get(n int64) (*Buf, error) {
	s := p.shardOf(n)
	s.mu.Lock()
	if b, ok := s.bufs[n]; ok {
		b.refs++
		s.lru.MoveToFront(b.elem)
		p.hits.Inc()
		s.mu.Unlock()
		b.mu.Lock()
		return b, nil
	}
	p.misses.Inc()
	if len(s.bufs) >= s.cap {
		if err := s.evictLocked(); err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	b := &Buf{
		shard:    s,
		block:    n,
		data:     make([]byte, p.dev.BlockSize()),
		refs:     1,
		firstLSN: noLSN,
	}
	b.elem = s.lru.PushFront(b)
	s.bufs[n] = b
	s.mu.Unlock()

	// Read outside the shard lock; the buffer is invisible to others until
	// its latch is released, and we hold the latch during the fill.
	b.mu.Lock()
	if err := p.dev.Read(n, b.data); err != nil {
		b.mu.Unlock()
		s.mu.Lock()
		delete(s.bufs, n)
		s.lru.Remove(b.elem)
		s.mu.Unlock()
		return nil, err
	}
	return b, nil
}

// evictLocked drops the least recently used unpinned buffer of one shard,
// destaging it first if dirty. Called with s.mu held.
func (s *shard) evictLocked() error {
	for e := s.lru.Back(); e != nil; e = e.Prev() {
		b := e.Value.(*Buf)
		if b.refs > 0 {
			continue
		}
		if b.dirty {
			if err := s.destageLocked(b); err != nil {
				return err
			}
		}
		delete(s.bufs, b.block)
		s.lru.Remove(e)
		s.pool.evicts.Inc()
		return nil
	}
	return ErrNoBuffers
}

// destageLocked writes one dirty buffer honoring the write-ahead rule.
// Called with s.mu held; the buffer has refs == 0 or the caller holds its
// latch.
func (s *shard) destageLocked(b *Buf) error {
	p := s.pool
	start := time.Now()
	if p.log != nil && b.firstLSN != noLSN {
		// Write-ahead rule: the log must be durable past the buffer's
		// most recent record before the buffer itself may be written.
		if err := p.log.Flush(b.lastLSN); err != nil {
			return err
		}
	}
	if err := p.dev.Write(b.block, b.data); err != nil {
		return err
	}
	b.dirty = false
	b.firstLSN = noLSN
	b.lastLSN = 0
	p.destages.Inc()
	p.destageNs.Observe(time.Since(start))
	return nil
}

// flushShards destages every dirty buffer, iterating shards in order.
func (p *Pool) flushShards() error {
	for _, s := range p.shards {
		s.mu.Lock()
		for _, b := range s.bufs {
			if b.dirty {
				if err := s.destageLocked(b); err != nil {
					s.mu.Unlock()
					return err
				}
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// FlushAll destages every dirty buffer and syncs the device.
func (p *Pool) FlushAll() error {
	if err := p.flushShards(); err != nil {
		return err
	}
	return p.dev.Sync()
}

// minRedoLSN returns the oldest log record still needed to redo a dirty
// buffer, or the current log head when every buffer is clean. It is the
// safe tail target for a checkpoint: records below it describe only
// already-destaged state. (Records of still-active transactions are
// additionally protected by the log itself, for undo.)
func (p *Pool) minRedoLSN() wal.LSN {
	min := p.log.Head()
	for _, s := range p.shards {
		s.mu.Lock()
		for _, b := range s.bufs {
			if b.dirty && b.firstLSN != noLSN && b.firstLSN < min {
				min = b.firstLSN
			}
		}
		s.mu.Unlock()
	}
	return min
}

// Checkpoint flushes the log, destages all dirty buffers, and advances the
// log tail: after it returns, recovery has nothing to replay. This is the
// periodic batch commit of §2.2.
//
// Checkpoint is safe to run concurrently with foreground transactions
// (the background daemon does): the tail target is the minimum first-LSN
// over buffers still dirty after the destage pass, so records for
// concurrent updates are never trimmed before their buffers reach disk.
func (p *Pool) Checkpoint() error {
	if p.log == nil {
		return p.FlushAll()
	}
	if err := p.log.Sync(); err != nil {
		return err
	}
	if err := p.FlushAll(); err != nil {
		return err
	}
	return p.log.Checkpoint(p.minRedoLSN())
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:     p.hits.Load(),
		Misses:   p.misses.Load(),
		Destages: p.destages.Load(),
		Evicts:   p.evicts.Load(),
	}
}

// Instrument attaches the pool's metrics to reg under the "buffer."
// prefix, plus a live occupancy view.
func (p *Pool) Instrument(reg *obs.Registry) {
	reg.AttachCounter("buffer.hits", p.hits)
	reg.AttachCounter("buffer.misses", p.misses)
	reg.AttachCounter("buffer.destages", p.destages)
	reg.AttachCounter("buffer.evicts", p.evicts)
	reg.AttachHistogram("buffer.destage_ns", p.destageNs)
	reg.AttachInfo("buffer.pool", func() any {
		return map[string]int{
			"capacity": p.cap,
			"shards":   len(p.shards),
			"dirty":    p.DirtyCount(),
		}
	})
}

// Log returns the pool's write-ahead log (nil for unlogged pools).
func (p *Pool) Log() *wal.Log { return p.log }

// Device returns the underlying device.
func (p *Pool) Device() blockdev.Device { return p.dev }

// DirtyCount reports how many buffers are dirty, for tests.
func (p *Pool) DirtyCount() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		for _, b := range s.bufs {
			if b.dirty {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// undoRec remembers how to compensate one update.
type undoRec struct {
	buf *Buf
	off int
	old []byte
}

// Tx is a metadata transaction: a wal transaction plus the in-memory
// compensation state needed to abort cleanly.
type Tx struct {
	pool *Pool
	w    *wal.Tx
	undo []undoRec
	done bool
}

// Begin starts a metadata transaction. Panics if the pool has no log
// (the FFS baseline never begins transactions).
func (p *Pool) Begin() *Tx {
	if p.log == nil {
		panic("buffer: Begin on unlogged pool")
	}
	return &Tx{pool: p, w: p.log.Begin()}
}

// Update logs an old/new record for the change and applies it to the
// buffer. The caller must hold the buffer (between Get and Release) for
// the duration of the transaction.
func (t *Tx) Update(b *Buf, off int, new []byte) error {
	if t.done {
		return ErrTxDone
	}
	if off < 0 || off+len(new) > len(b.data) || len(new) == 0 {
		return fmt.Errorf("buffer: update [%d,%d) outside block", off, off+len(new))
	}
	old := append([]byte(nil), b.data[off:off+len(new)]...)
	lsn, err := t.w.Update(b.block, off, old, new)
	if err != nil {
		// ErrLogFull: checkpoint and retry once. Transactions are short,
		// so freeing the whole log always makes room.
		if errors.Is(err, wal.ErrLogFull) {
			if cerr := t.pool.checkpointForSpace(); cerr != nil {
				return cerr
			}
			lsn, err = t.w.Update(b.block, off, old, new)
		}
		if err != nil {
			return err
		}
	}
	s := b.shard
	s.mu.Lock()
	copy(b.data[off:], new)
	b.dirty = true
	if b.firstLSN == noLSN {
		b.firstLSN = lsn
	}
	b.lastLSN = lsn
	s.mu.Unlock()
	t.undo = append(t.undo, undoRec{buf: b, off: off, old: old})
	return nil
}

// checkpointForSpace destages everything except buffers latched by the
// current caller... destaging does not need the latch (it only reads data
// that the log already describes), so a plain checkpoint suffices.
func (p *Pool) checkpointForSpace() error {
	if err := p.log.Sync(); err != nil {
		return err
	}
	if err := p.flushShards(); err != nil {
		return err
	}
	if err := p.dev.Sync(); err != nil {
		return err
	}
	return p.log.Checkpoint(p.minRedoLSN())
}

// commitWAL appends the commit record, checkpointing and retrying once if
// the log is full. A commit record is tiny and the checkpoint can always
// discard everything before this transaction's first record, so the retry
// only fails if this transaction alone nearly fills the log — which the
// short-transaction discipline (§2.2) rules out. Without this retry a
// full-log commit would leave the transaction active forever, pinning the
// log tail and wedging the aggregate.
func (t *Tx) commitWAL() (wal.LSN, error) {
	lsn, err := t.w.Commit()
	if errors.Is(err, wal.ErrLogFull) {
		if cerr := t.pool.checkpointForSpace(); cerr != nil {
			return 0, cerr
		}
		lsn, err = t.w.Commit()
	}
	return lsn, err
}

// Commit writes the commit record. Durability is batched: the commit is
// on disk no later than the next Flush/Checkpoint (§2.2's 30-second spirit).
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	if _, err := t.commitWAL(); err != nil {
		return err
	}
	t.done = true
	t.undo = nil
	return nil
}

// CommitDurable commits and forces the log, for operations with fsync-like
// contracts. Concurrent durable commits share device syncs through the
// log's group commit.
func (t *Tx) CommitDurable() error {
	if t.done {
		return ErrTxDone
	}
	lsn, err := t.commitWAL()
	if err != nil {
		return err
	}
	t.done = true
	t.undo = nil
	return t.pool.log.Flush(lsn)
}

// Abort rolls the transaction back by logging compensating updates (new
// and old swapped) and then committing, so recovery never needs to know
// aborts exist. The caller must still hold every buffer the transaction
// updated.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		cur := append([]byte(nil), u.buf.data[u.off:u.off+len(u.old)]...)
		lsn, err := t.w.Update(u.buf.block, u.off, cur, u.old)
		if errors.Is(err, wal.ErrLogFull) {
			if cerr := t.pool.checkpointForSpace(); cerr == nil {
				lsn, err = t.w.Update(u.buf.block, u.off, cur, u.old)
			}
		}
		if err != nil {
			return fmt.Errorf("buffer: abort compensation failed: %w", err)
		}
		s := u.buf.shard
		s.mu.Lock()
		copy(u.buf.data[u.off:], u.old)
		u.buf.dirty = true
		if u.buf.firstLSN == noLSN {
			u.buf.firstLSN = lsn
		}
		u.buf.lastLSN = lsn
		s.mu.Unlock()
	}
	if _, err := t.commitWAL(); err != nil {
		return err
	}
	t.done = true
	t.undo = nil
	return nil
}
