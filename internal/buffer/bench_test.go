package buffer

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/wal"
)

const (
	benchBS     = 512
	benchBlocks = 4096
	benchLogAt  = 3072 // log occupies the tail of the device
	benchLogLen = 512
	benchData   = benchLogAt // data blocks 0..benchLogAt-1
)

func benchPool(b *testing.B, capacity int) *Pool {
	b.Helper()
	dev := blockdev.NewMem(benchBS, benchBlocks)
	if err := wal.Format(dev, benchLogAt, benchLogLen); err != nil {
		b.Fatal(err)
	}
	l, err := wal.Open(dev, benchLogAt, benchLogLen)
	if err != nil {
		b.Fatal(err)
	}
	return NewPool(dev, l, capacity)
}

func parallelism(goroutines int) int {
	p := runtime.GOMAXPROCS(0)
	return (goroutines + p - 1) / p
}

// BenchmarkPoolGetParallel hammers Get/Release from N goroutines over a
// working set larger than one shard but cached overall, so the cost is
// shard-map lookup + LRU touch. With the sharded pool the goroutines
// mostly take different shard locks.
func BenchmarkPoolGetParallel(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			p := benchPool(b, 1024)
			// Warm the cache so the loop measures hits.
			for n := int64(0); n < 1024; n++ {
				buf, err := p.Get(n)
				if err != nil {
					b.Fatal(err)
				}
				buf.Release()
			}
			var next atomic.Int64
			b.SetParallelism(parallelism(gor))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := next.Add(1) % 1024
					buf, err := p.Get(n)
					if err != nil {
						b.Fatal(err)
					}
					buf.Release()
				}
			})
		})
	}
}

// BenchmarkTxUpdateParallel is the metadata hot path under concurrency:
// Get + one logged update + commit + Release per iteration, goroutines
// spread across blocks (and so across shards). Log-full checkpoints are
// absorbed inside Tx.Update's retry.
func BenchmarkTxUpdateParallel(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			p := benchPool(b, 1024)
			var next atomic.Int64
			payload := make([]byte, 64)
			b.SetParallelism(parallelism(gor))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					n := next.Add(1) % benchData
					buf, err := p.Get(n)
					if err != nil {
						b.Fatal(err)
					}
					tx := p.Begin()
					if err := tx.Update(buf, 0, payload); err != nil {
						b.Fatal(err)
					}
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
					buf.Release()
				}
			})
		})
	}
}
