package buffer

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/wal"
)

const (
	testBS   = 512
	devBlks  = 128
	logStart = 100
	logBlks  = 20
)

func newPool(t *testing.T, capacity int) (*Pool, *blockdev.MemDevice) {
	t.Helper()
	dev := blockdev.NewMem(testBS, devBlks)
	if err := wal.Format(dev, logStart, logBlks); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(dev, logStart, logBlks)
	if err != nil {
		t.Fatal(err)
	}
	return NewPool(dev, l, capacity), dev
}

func TestGetReleaseHitMiss(t *testing.T) {
	p, _ := newPool(t, 4)
	b, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if b.Block() != 3 {
		t.Fatalf("Block = %d", b.Block())
	}
	b.Release()
	b2, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	b2.Release()
	st := p.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v, want 1 miss 1 hit", st)
	}
}

func TestTxUpdateAppliesAndLogs(t *testing.T) {
	p, _ := newPool(t, 4)
	b, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.Update(b, 10, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Data()[10:13], []byte{1, 2, 3}) {
		t.Fatal("update not applied to buffer")
	}
	if !b.Dirty() {
		t.Fatal("buffer not marked dirty")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	b.Release()
	recs := p.Log().Records()
	if len(recs) != 2 {
		t.Fatalf("%d log records, want update+commit", len(recs))
	}
}

func TestWriteUnloggedDoesNotLog(t *testing.T) {
	p, _ := newPool(t, 4)
	b, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.WriteUnlogged(0, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	b.Release()
	if got := len(p.Log().Records()); got != 0 {
		t.Fatalf("unlogged write produced %d log records", got)
	}
	if p.DirtyCount() != 1 {
		t.Fatal("unlogged write should dirty the buffer")
	}
}

func TestWriteUnloggedBounds(t *testing.T) {
	p, _ := newPool(t, 4)
	b, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if err := b.WriteUnlogged(testBS-1, []byte{1, 2}); err == nil {
		t.Fatal("out-of-range unlogged write accepted")
	}
	if err := b.WriteUnlogged(-1, []byte{1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestFlushAllDestages(t *testing.T) {
	p, dev := newPool(t, 4)
	b, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.Update(b, 0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	b.Release()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testBS)
	if err := dev.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 7 {
		t.Fatal("FlushAll did not destage")
	}
	if p.DirtyCount() != 0 {
		t.Fatal("buffers still dirty after FlushAll")
	}
}

// The write-ahead rule: destaging a dirty buffer must first make its log
// records durable. We verify by crashing after a destage-without-sync.
func TestWALRuleOnDestage(t *testing.T) {
	mem := blockdev.NewMem(testBS, devBlks)
	crash := blockdev.NewCrash(mem)
	if err := wal.Format(crash, logStart, logBlks); err != nil {
		t.Fatal(err)
	}
	if err := crash.Sync(); err != nil {
		t.Fatal(err)
	}
	l, err := wal.Open(crash, logStart, logBlks)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(crash, l, 2)

	b, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.Update(b, 0, []byte{0xEE}); err != nil {
		t.Fatal(err)
	}
	// Uncommitted; force the buffer out by filling the pool (capacity 2).
	b.Release()
	b3, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	b3.Release()
	b4, err := p.Get(4)
	if err != nil {
		t.Fatal(err)
	}
	b4.Release() // this Get evicted block 2, destaging it

	// Crash keeping everything the device accepted (worst case for WAL:
	// the data write persisted; the rule says the log records must have
	// been synced before it).
	if err := crash.Crash(blockdev.KeepAll, nil); err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(mem, logStart, logBlks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Undone == 0 {
		t.Fatal("expected the uncommitted, destaged update to be undone")
	}
	got := make([]byte, testBS)
	if err := mem.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("uncommitted destaged change survived recovery: %#x", got[0])
	}
}

func TestEvictionPrefersClean(t *testing.T) {
	p, _ := newPool(t, 2)
	// Fill pool with blocks 1 (dirty) and 2 (clean).
	b1, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.Update(b1, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	b1.Release()
	b2, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	b2.Release()
	// Getting block 3 evicts the LRU (block 1, dirty): must destage it.
	b3, err := p.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	b3.Release()
	if p.Stats().Destages != 1 {
		t.Fatalf("Destages = %d, want 1", p.Stats().Destages)
	}
}

func TestAllPinnedError(t *testing.T) {
	p, _ := newPool(t, 2)
	b1, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(3); !errors.Is(err, ErrNoBuffers) {
		t.Fatalf("Get with all pinned: %v", err)
	}
	b1.Release()
	b2.Release()
	if b, err := p.Get(3); err != nil {
		t.Fatal(err)
	} else {
		b.Release()
	}
}

func TestAbortCompensates(t *testing.T) {
	p, dev := newPool(t, 4)
	b, err := p.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.Update(b, 0, []byte{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update(b, 4, []byte{2, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if b.Data()[0] != 0 || b.Data()[4] != 0 {
		t.Fatal("abort did not restore buffer contents")
	}
	b.Release()
	// After abort + flush + recovery, the disk must show no trace.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.Log().Sync(); err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(dev, logStart, logBlks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testBS)
	if err := dev.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[4] != 0 {
		t.Fatal("aborted transaction visible on disk after recovery")
	}
}

func TestTxDoubleFinish(t *testing.T) {
	p, _ := newPool(t, 4)
	tx := p.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("abort after commit: %v", err)
	}
}

func TestLogFullTriggersCheckpointRetry(t *testing.T) {
	p, _ := newPool(t, 8)
	// Hammer updates until the log would overflow; Tx.Update must
	// transparently checkpoint and continue.
	payload := make([]byte, 128)
	for i := 0; i < 200; i++ {
		b, err := p.Get(int64(i % 4))
		if err != nil {
			t.Fatal(err)
		}
		tx := p.Begin()
		if err := tx.Update(b, 0, payload); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
}

func TestCheckpointEmptiesLog(t *testing.T) {
	p, _ := newPool(t, 4)
	b, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.Update(b, 0, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	b.Release()
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if used := p.Log().Used(); used != 0 {
		t.Fatalf("log used %d after checkpoint", used)
	}
}

func TestCommitDurable(t *testing.T) {
	p, _ := newPool(t, 4)
	b, err := p.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.Update(b, 0, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitDurable(); err != nil {
		t.Fatal(err)
	}
	b.Release()
	st := p.Log().LogStats()
	if st.Durable != st.Head {
		t.Fatalf("durable %d != head %d after CommitDurable", st.Durable, st.Head)
	}
}

// Concurrent readers and writers on disjoint blocks, with a pool small
// enough to force constant eviction; run with -race.
func TestConcurrentStress(t *testing.T) {
	p, _ := newPool(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 100; i++ {
				blk := int64(rng.Intn(16))
				b, err := p.Get(blk)
				if err != nil {
					if errors.Is(err, ErrNoBuffers) {
						continue
					}
					errs <- err
					return
				}
				tx := p.Begin()
				if err := tx.Update(b, g*8, []byte{byte(i)}); err != nil {
					errs <- err
					b.Release()
					return
				}
				if err := tx.Commit(); err != nil {
					errs <- err
					b.Release()
					return
				}
				b.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}
