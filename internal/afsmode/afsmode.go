// Package afsmode is the AFS-style baseline client of §5.4 of the paper,
// implemented against the same protocol exporter as the DEcorum cache
// manager so the comparison isolates the consistency protocol:
//
//   - callbacks are untyped: the client holds only a status-read token
//     ("AFS 'callbacks' are roughly equivalent to DEcorum status read
//     tokens") — there are no write, data, or open tokens;
//   - whole-file transfer: Open fetches the entire file; there is no
//     byte-range granularity, so disjoint sharers ship the whole file;
//   - store-on-close: writes stay local and unannounced until Close,
//     which stores the entire file back — the server then breaks other
//     clients' callbacks;
//   - consistency is therefore close-to-open, not single-system: a reader
//     who opened before a writer's close never learns about the write.
package afsmode

import (
	"fmt"
	"net"
	"sync"

	"decorum/internal/fs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/token"
)

// Client is one AFS-style cache manager talking to a DEcorum protocol
// exporter.
type Client struct {
	name string
	peer *rpc.Peer

	mu    sync.Mutex
	files map[fs.FID]*cachedFile
	stats Stats
}

// Stats counts baseline behaviour for the experiments.
type Stats struct {
	WholeFileFetches uint64
	WholeFileStores  uint64
	CallbackBreaks   uint64
	BytesFetched     uint64
	BytesStored      uint64
}

type cachedFile struct {
	data    []byte
	valid   bool // callback intact
	dirty   bool
	opens   int
	tokenID token.ID
}

// Dial connects the baseline client to a server.
func Dial(name string, conn net.Conn, opts rpc.Options) (*Client, error) {
	c := &Client{
		name:  name,
		files: make(map[fs.FID]*cachedFile),
	}
	peer := rpc.NewPeer(conn, opts)
	peer.Handle(proto.CBRevoke, c.handleCallback)
	peer.Handle(proto.CBProbe, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(struct{}{})
	})
	peer.Start()
	var reg proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{ClientName: name}, &reg); err != nil {
		peer.Close()
		return nil, proto.DecodeErr(err)
	}
	c.peer = peer
	return c, nil
}

// Shutdown tears the association down.
func (c *Client) Shutdown() error { return c.peer.Close() }

// Stats returns the baseline counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// RPCStats exposes the transport counters.
func (c *Client) RPCStats() rpc.Stats { return c.peer.Stats() }

// handleCallback is the callback break: drop the whole cached file.
func (c *Client) handleCallback(_ *rpc.CallCtx, body []byte) ([]byte, error) {
	var args proto.RevokeArgs
	if err := rpc.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if f, ok := c.files[args.Token.FID]; ok {
		f.valid = false
		c.stats.CallbackBreaks++
	}
	c.mu.Unlock()
	return rpc.Marshal(proto.RevokeReply{Returned: true})
}

// Root returns the root FID of a volume.
func (c *Client) Root(vol fs.VolumeID) (fs.FID, error) {
	var reply proto.GetRootReply
	if err := c.peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: vol}, &reply); err != nil {
		return fs.FID{}, proto.DecodeErr(err)
	}
	return reply.FID, nil
}

// Lookup resolves one name (no caching: the AFS directory-page cache is
// out of scope for the experiments, which share plain files).
func (c *Client) Lookup(dir fs.FID, name string) (fs.FID, error) {
	var reply proto.NameReply
	if err := c.peer.Call(proto.MLookup, proto.NameArgs{Dir: dir, Name: name}, &reply); err != nil {
		return fs.FID{}, proto.DecodeErr(err)
	}
	c.returnGrants(reply.Grants)
	return reply.FID, nil
}

// returnGrants gives back tokens the server volunteers; the baseline only
// keeps the callback (status-read) tokens it asks for.
func (c *Client) returnGrants(grants []proto.Grant) {
	var ids []token.ID
	for _, g := range grants {
		if g.Token.ID != 0 {
			ids = append(ids, g.Token.ID)
		}
	}
	if len(ids) > 0 {
		//lint:ignore errclass best-effort return; unreturned tokens lapse with the host lease
		c.peer.Call(proto.MReturnTokens, proto.ReturnTokensArgs{IDs: ids}, nil)
	}
}

// Create makes a file.
func (c *Client) Create(dir fs.FID, name string, mode fs.Mode) (fs.FID, error) {
	var reply proto.NameReply
	err := c.peer.Call(proto.MCreate, proto.NameArgs{Dir: dir, Name: name, Mode: mode}, &reply)
	if err != nil {
		return fs.FID{}, proto.DecodeErr(err)
	}
	c.returnGrants(reply.Grants)
	return reply.FID, nil
}

// Open fetches the whole file (if the callback is broken or absent) and
// registers a callback. It returns the current length.
func (c *Client) Open(fid fs.FID) (int64, error) {
	c.mu.Lock()
	f, ok := c.files[fid]
	if ok && f.valid {
		f.opens++
		n := int64(len(f.data))
		c.mu.Unlock()
		return n, nil
	}
	c.mu.Unlock()

	// Fetch status first to learn the size, with the callback token.
	var st proto.FetchStatusReply
	err := c.peer.Call(proto.MFetchStatus, proto.FetchStatusArgs{
		FID:  fid,
		Want: proto.TokenRequest{Types: token.StatusRead},
	}, &st)
	if err != nil {
		return 0, proto.DecodeErr(err)
	}
	// Whole-file transfer, chunked only by message size.
	data := make([]byte, 0, st.Attr.Length)
	const step = 256 * 1024
	for off := int64(0); off < st.Attr.Length; off += step {
		n := st.Attr.Length - off
		if n > step {
			n = step
		}
		var reply proto.FetchDataReply
		err := c.peer.Call(proto.MFetchData, proto.FetchDataArgs{
			FID: fid, Offset: off, Length: int(n),
		}, &reply)
		if err != nil {
			return 0, proto.DecodeErr(err)
		}
		data = append(data, reply.Data...)
	}
	c.mu.Lock()
	var tokID token.ID
	for _, g := range st.Grants {
		tokID = g.Token.ID
	}
	c.files[fid] = &cachedFile{data: data, valid: true, opens: 1, tokenID: tokID}
	c.stats.WholeFileFetches++
	c.stats.BytesFetched += uint64(len(data))
	c.mu.Unlock()
	return int64(len(data)), nil
}

// Read serves from the whole-file cache. The file must be open.
func (c *Client) Read(fid fs.FID, p []byte, off int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[fid]
	if !ok || f.opens == 0 {
		return 0, fmt.Errorf("%w: not open", fs.ErrInvalid)
	}
	if off >= int64(len(f.data)) {
		return 0, nil
	}
	return copy(p, f.data[off:]), nil
}

// Write modifies the cached copy; nothing reaches the server until Close.
func (c *Client) Write(fid fs.FID, p []byte, off int64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[fid]
	if !ok || f.opens == 0 {
		return 0, fmt.Errorf("%w: not open", fs.ErrInvalid)
	}
	if need := off + int64(len(p)); need > int64(len(f.data)) {
		f.data = append(f.data, make([]byte, need-int64(len(f.data)))...)
	}
	copy(f.data[off:], p)
	f.dirty = true
	return len(p), nil
}

// Close stores the whole file back if dirty — AFS's store-on-close, the
// point at which other clients' callbacks break.
func (c *Client) Close(fid fs.FID) error {
	c.mu.Lock()
	f, ok := c.files[fid]
	if !ok {
		c.mu.Unlock()
		return nil
	}
	if f.opens > 0 {
		f.opens--
	}
	if f.opens > 0 || !f.dirty {
		c.mu.Unlock()
		return nil
	}
	data := append([]byte(nil), f.data...)
	f.dirty = false
	c.mu.Unlock()

	const step = 256 * 1024
	for off := 0; off < len(data); off += step {
		end := off + step
		if end > len(data) {
			end = len(data)
		}
		var reply proto.StoreDataReply
		err := c.peer.Call(proto.MStoreData, proto.StoreDataArgs{
			FID: fid, Offset: int64(off), Data: data[off:end],
		}, &reply)
		if err != nil {
			return proto.DecodeErr(err)
		}
	}
	c.mu.Lock()
	c.stats.WholeFileStores++
	c.stats.BytesStored += uint64(len(data))
	c.mu.Unlock()
	return nil
}
