package afsmode

import (
	"bytes"
	"net"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/rpc"
	"decorum/internal/server"
	"decorum/internal/vfs"
)

func newCell(t *testing.T) (*server.Server, vfs.VolumeInfo) {
	t.Helper()
	dev := blockdev.NewMem(512, 4096)
	agg, err := episode.Format(dev, episode.Options{LogBlocks: 64, PoolSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := agg.CreateVolume("v", 0)
	if err != nil {
		t.Fatal(err)
	}
	return server.New(server.Options{Name: "srv"}, agg), vol
}

func dial(t *testing.T, srv *server.Server, name string) *Client {
	t.Helper()
	cs, ss := net.Pipe()
	srv.Attach(ss)
	c, err := Dial(name, cs, rpc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Shutdown() })
	return c
}

func TestWholeFileFetchAndStoreOnClose(t *testing.T) {
	srv, vol := newCell(t)
	a := dial(t, srv, "afsA")
	root, err := a.Root(vol.ID)
	if err != nil {
		t.Fatal(err)
	}
	fid, err := a.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Open(fid); err != nil {
		t.Fatal(err)
	}
	msg := []byte("store-on-close")
	if _, err := a.Write(fid, msg, 0); err != nil {
		t.Fatal(err)
	}
	// Before close, the server has nothing.
	b := dial(t, srv, "afsB")
	if _, err := b.Open(fid); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if n, _ := b.Read(fid, buf, 0); n != 0 {
		t.Fatalf("B saw %d bytes before A closed — AFS semantics broken", n)
	}
	// After close, a fresh open sees it.
	if err := a.Close(fid); err != nil {
		t.Fatal(err)
	}
	if a.Stats().WholeFileStores != 1 {
		t.Fatalf("stores = %d", a.Stats().WholeFileStores)
	}
	// B's callback was broken by A's store; B reopens and sees the data.
	if _, err := b.Open(fid); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(fid, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("B read %q after reopen", buf)
	}
	if b.Stats().CallbackBreaks == 0 {
		t.Fatal("A's store did not break B's callback")
	}
}

func TestCloseToOpenStaleness(t *testing.T) {
	// The §5.4 weakness DEcorum fixes: a reader holding the file open
	// across a writer's close keeps reading stale data.
	srv, vol := newCell(t)
	a := dial(t, srv, "afsA")
	b := dial(t, srv, "afsB")
	root, _ := a.Root(vol.ID)
	fid, err := a.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Open(fid); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(fid, []byte("v1"), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(fid); err != nil {
		t.Fatal(err)
	}
	// B opens and reads v1.
	if _, err := b.Open(fid); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	b.Read(fid, buf, 0)
	if string(buf) != "v1" {
		t.Fatalf("B read %q", buf)
	}
	// A writes v2 and closes. B, still holding its open, does NOT see it
	// (its cached copy survives until reopen — the callback break only
	// invalidates for the NEXT open).
	a.Open(fid)
	a.Write(fid, []byte("v2"), 0)
	a.Close(fid)
	b.Read(fid, buf, 0)
	if string(buf) != "v1" {
		t.Fatalf("B read %q while holding open; AFS should still serve the stale copy", buf)
	}
	// Reopen: now v2.
	b.Close(fid)
	b.Open(fid)
	b.Read(fid, buf, 0)
	if string(buf) != "v2" {
		t.Fatalf("B read %q after reopen", buf)
	}
}

func TestWholeFileShippedForDisjointWriters(t *testing.T) {
	// The C4 pathology: disjoint writers ship the entire file back and
	// forth.
	srv, vol := newCell(t)
	a := dial(t, srv, "afsA")
	b := dial(t, srv, "afsB")
	root, _ := a.Root(vol.ID)
	fid, err := a.Create(root, "big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	const size = 128 * 1024
	if _, err := a.Open(fid); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(fid, make([]byte, size), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(fid); err != nil {
		t.Fatal(err)
	}
	// Each writer touches ONE byte in its own half, open/write/close.
	for i := 0; i < 3; i++ {
		if _, err := a.Open(fid); err != nil {
			t.Fatal(err)
		}
		a.Write(fid, []byte{1}, 0)
		a.Close(fid)
		if _, err := b.Open(fid); err != nil {
			t.Fatal(err)
		}
		b.Write(fid, []byte{2}, size-1)
		b.Close(fid)
	}
	// Every open refetched the whole file; every close stored it whole.
	aSt, bSt := a.Stats(), b.Stats()
	total := aSt.BytesFetched + bSt.BytesFetched + aSt.BytesStored + bSt.BytesStored
	if total < 10*size {
		t.Fatalf("expected whole-file shipping, moved only %d bytes", total)
	}
}
