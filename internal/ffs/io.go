package ffs

import (
	"encoding/binary"
	"fmt"

	"decorum/internal/fs"
)

// Block mapping and container I/O. File data writes are plain device
// writes (no per-write sync); every pointer, bitmap, and inode change is
// synchronous, in FFS order.

func (f *FS) ptrsPerBlock() int64 { return int64(f.bs) / 8 }

func (f *FS) maxLen() int64 {
	return (nDirect + f.ptrsPerBlock()) * int64(f.bs)
}

// mapBlock resolves file-block fb, returning 0 for a hole.
func (f *FS) mapBlock(in *inode, fb int64) (int64, error) {
	switch {
	case fb < 0:
		return 0, fs.ErrInvalid
	case fb < nDirect:
		return in.direct[fb], nil
	case fb < nDirect+f.ptrsPerBlock():
		if in.indir == 0 {
			return 0, nil
		}
		p := make([]byte, f.bs)
		if err := f.dev.Read(in.indir, p); err != nil {
			return 0, err
		}
		return int64(binary.BigEndian.Uint64(p[(fb-nDirect)*8:])), nil
	default:
		return 0, fmt.Errorf("%w: file too large", fs.ErrInvalid)
	}
}

// ensureBlock allocates (zeroed) blocks on demand, writing pointer updates
// synchronously. Returns the device block. The inode is updated in memory;
// the caller writes it back.
func (f *FS) ensureBlock(ino uint32, in *inode, fb int64) (int64, error) {
	switch {
	case fb < nDirect:
		if in.direct[fb] != 0 {
			return in.direct[fb], nil
		}
		blk, err := f.allocBlock()
		if err != nil {
			return 0, err
		}
		if err := f.zeroData(blk); err != nil {
			return 0, err
		}
		in.direct[fb] = blk
		// FFS order: the inode (with its new pointer) is written
		// synchronously before the caller proceeds.
		if err := f.writeInode(ino, *in); err != nil {
			return 0, err
		}
		return blk, nil
	case fb < nDirect+f.ptrsPerBlock():
		if in.indir == 0 {
			blk, err := f.allocBlock()
			if err != nil {
				return 0, err
			}
			if err := f.zeroData(blk); err != nil {
				return 0, err
			}
			in.indir = blk
			if err := f.writeInode(ino, *in); err != nil {
				return 0, err
			}
		}
		p := make([]byte, f.bs)
		if err := f.dev.Read(in.indir, p); err != nil {
			return 0, err
		}
		idx := fb - nDirect
		cur := int64(binary.BigEndian.Uint64(p[idx*8:]))
		if cur != 0 {
			return cur, nil
		}
		blk, err := f.allocBlock()
		if err != nil {
			return 0, err
		}
		if err := f.zeroData(blk); err != nil {
			return 0, err
		}
		binary.BigEndian.PutUint64(p[idx*8:], uint64(blk))
		if err := f.dev.Write(in.indir, p); err != nil {
			return 0, err
		}
		f.metaWrites++
		if err := f.dev.Sync(); err != nil {
			return 0, err
		}
		return blk, nil
	default:
		return 0, fmt.Errorf("%w: file too large", fs.ErrInvalid)
	}
}

func (f *FS) zeroData(blk int64) error {
	return f.dev.Write(blk, make([]byte, f.bs))
}

// readAt reads container bytes; holes read as zeros. Caller holds f.mu.
func (f *FS) readAt(in *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fs.ErrInvalid
	}
	if off >= in.size {
		return 0, nil
	}
	if int64(len(p)) > in.size-off {
		p = p[:in.size-off]
	}
	bs := int64(f.bs)
	n := 0
	blkBuf := make([]byte, f.bs)
	for n < len(p) {
		fb := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		chunk := int(bs - bo)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		blk, err := f.mapBlock(in, fb)
		if err != nil {
			return n, err
		}
		if blk == 0 {
			for i := 0; i < chunk; i++ {
				p[n+i] = 0
			}
		} else {
			if err := f.dev.Read(blk, blkBuf); err != nil {
				return n, err
			}
			copy(p[n:n+chunk], blkBuf[bo:])
		}
		n += chunk
	}
	return n, nil
}

// writeAt writes container bytes (data asynchronously, metadata
// synchronously) and updates the inode. Caller holds f.mu.
func (f *FS) writeAt(ino uint32, in *inode, p []byte, off int64) (int, error) {
	if off < 0 || off+int64(len(p)) > f.maxLen() {
		return 0, fs.ErrInvalid
	}
	bs := int64(f.bs)
	n := 0
	blkBuf := make([]byte, f.bs)
	for n < len(p) {
		fb := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		chunk := int(bs - bo)
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		blk, err := f.ensureBlock(ino, in, fb)
		if err != nil {
			return n, err
		}
		if chunk == f.bs {
			copy(blkBuf, p[n:n+chunk])
		} else {
			if err := f.dev.Read(blk, blkBuf); err != nil {
				return n, err
			}
			copy(blkBuf[bo:], p[n:n+chunk])
		}
		if err := f.dev.Write(blk, blkBuf); err != nil {
			return n, err
		}
		n += chunk
	}
	if off+int64(len(p)) > in.size {
		in.size = off + int64(len(p))
	}
	in.mtime = f.Clock()
	if err := f.writeInode(ino, *in); err != nil {
		return n, err
	}
	return n, nil
}

// truncate frees blocks beyond newLen (synchronously, one bitmap write per
// block — the FFS cost Episode's batched log avoids).
func (f *FS) truncate(ino uint32, in *inode, newLen int64) error {
	if newLen < 0 {
		return fs.ErrInvalid
	}
	if newLen >= in.size {
		in.size = newLen
		return f.writeInode(ino, *in)
	}
	bs := int64(f.bs)
	firstDead := (newLen + bs - 1) / bs
	lastLive := (in.size + bs - 1) / bs
	for fb := firstDead; fb < lastLive; fb++ {
		blk, err := f.mapBlock(in, fb)
		if err != nil {
			return err
		}
		if blk == 0 {
			continue
		}
		if err := f.bmSet(blk, false); err != nil {
			return err
		}
		if fb < nDirect {
			in.direct[fb] = 0
		} else if in.indir != 0 {
			p := make([]byte, f.bs)
			if err := f.dev.Read(in.indir, p); err != nil {
				return err
			}
			binary.BigEndian.PutUint64(p[(fb-nDirect)*8:], 0)
			if err := f.dev.Write(in.indir, p); err != nil {
				return err
			}
			f.metaWrites++
			if err := f.dev.Sync(); err != nil {
				return err
			}
		}
	}
	if firstDead <= nDirect && in.indir != 0 {
		if err := f.bmSet(in.indir, false); err != nil {
			return err
		}
		in.indir = 0
	}
	in.size = newLen
	in.mtime = f.Clock()
	return f.writeInode(ino, *in)
}

// --- directories ---

type ffsDirent struct {
	used bool
	typ  uint8
	ino  uint32
	gen  uint64
	name string
	slot int64
}

func decodeFfsDirent(p []byte, slot int64) ffsDirent {
	n := int(p[14])
	if n > MaxName {
		n = MaxName
	}
	return ffsDirent{
		used: p[0] != 0,
		typ:  p[1],
		ino:  binary.BigEndian.Uint32(p[2:]),
		gen:  binary.BigEndian.Uint64(p[6:]),
		name: string(p[15 : 15+n]),
		slot: slot,
	}
}

func encodeFfsDirent(e ffsDirent) []byte {
	p := make([]byte, dirEntSize)
	if e.used {
		p[0] = 1
	}
	p[1] = e.typ
	binary.BigEndian.PutUint32(p[2:], e.ino)
	binary.BigEndian.PutUint64(p[6:], e.gen)
	p[14] = byte(len(e.name))
	copy(p[15:], e.name)
	return p
}

func (f *FS) dirScan(dirIno uint32, in *inode, fn func(e ffsDirent) bool) error {
	buf := make([]byte, dirEntSize)
	for slot := int64(0); slot < in.size/dirEntSize; slot++ {
		if _, err := f.readAt(in, buf, slot*dirEntSize); err != nil {
			return err
		}
		if fn(decodeFfsDirent(buf, slot)) {
			return nil
		}
	}
	return nil
}

func (f *FS) dirLookup(dirIno uint32, in *inode, name string) (ffsDirent, bool, error) {
	var found ffsDirent
	ok := false
	err := f.dirScan(dirIno, in, func(e ffsDirent) bool {
		if e.used && e.name == name {
			found, ok = e, true
			return true
		}
		return false
	})
	return found, ok, err
}

// dirInsert writes the entry; FFS order requires the child inode already
// on disk before the entry that names it.
func (f *FS) dirInsert(dirIno uint32, in *inode, e ffsDirent) error {
	if len(e.name) == 0 {
		return fs.ErrInvalid
	}
	if len(e.name) > MaxName {
		return fs.ErrNameTooLong
	}
	slot := int64(-1)
	if err := f.dirScan(dirIno, in, func(cur ffsDirent) bool {
		if !cur.used {
			slot = cur.slot
			return true
		}
		return false
	}); err != nil {
		return err
	}
	if slot < 0 {
		slot = in.size / dirEntSize
	}
	e.used = true
	if _, err := f.writeAt(dirIno, in, encodeFfsDirent(e), slot*dirEntSize); err != nil {
		return err
	}
	return nil
}

func (f *FS) dirRemove(dirIno uint32, in *inode, e ffsDirent) error {
	e.used = false
	_, err := f.writeAt(dirIno, in, encodeFfsDirent(e), e.slot*dirEntSize)
	return err
}
