package ffs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"decorum/internal/blockdev"
	"decorum/internal/fs"
	"decorum/internal/vfs"
)

const (
	testBS  = 512
	testDev = 2048
)

func newFS(t *testing.T) (*FS, *blockdev.MemDevice) {
	t.Helper()
	dev := blockdev.NewMem(testBS, testDev)
	f, err := Format(dev, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	f.Clock = func() int64 { return 42 }
	return f, dev
}

func su() *vfs.Context { return vfs.Superuser() }

func TestFormatMountUnmount(t *testing.T) {
	dev := blockdev.NewMem(testBS, testDev)
	f, err := Format(dev, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Unmount(); err != nil {
		t.Fatal(err)
	}
	// Clean reopen works without fsck.
	f2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	// But now we are mounted: a second open without unmount sees dirty.
	if _, err := Open(dev); !errors.Is(err, ErrDirty) {
		t.Fatalf("dirty open: %v", err)
	}
	_ = f2
}

func TestBasicFileOps(t *testing.T) {
	f, _ := newFS(t)
	root, err := f.Root()
	if err != nil {
		t.Fatal(err)
	}
	file, err := root.Create(su(), "f.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("ffs baseline")
	if _, err := file.Write(su(), msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := file.Read(su(), got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	// Subdir, symlink, link, rename, remove.
	d, err := root.Mkdir(su(), "d", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Symlink(su(), "ln", "f.txt"); err != nil {
		t.Fatal(err)
	}
	ln, _ := root.Lookup(su(), "ln")
	if target, _ := ln.Readlink(su()); target != "f.txt" {
		t.Fatalf("readlink %q", target)
	}
	if err := root.Link(su(), "f2.txt", file); err != nil {
		t.Fatal(err)
	}
	if err := root.Rename(su(), "f2.txt", d, "moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.Walk(su(), root, "d/moved"); err != nil {
		t.Fatal(err)
	}
	if err := root.Remove(su(), "f.txt"); err != nil {
		t.Fatal(err)
	}
	// Hard link still alive through d/moved.
	moved, _ := vfs.Walk(su(), root, "d/moved")
	if _, err := moved.Read(su(), got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("hard link lost data")
	}
}

func TestMetadataWritesAreSynchronous(t *testing.T) {
	dev := blockdev.NewMem(testBS, testDev)
	sim := blockdev.NewSim(dev, blockdev.CostModel{})
	f, err := Format(sim, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	root, _ := f.Root()
	before := sim.Stats()
	if _, err := root.Create(su(), "x", 0o644); err != nil {
		t.Fatal(err)
	}
	d := sim.Stats().Sub(before)
	// A create costs at least: inode write + sync, dir data write, dir
	// inode write + sync. The point is that syncs happen per operation.
	if d.Syncs < 2 {
		t.Fatalf("create performed %d syncs; FFS should sync metadata", d.Syncs)
	}
	if f.MetaWrites() == 0 {
		t.Fatal("MetaWrites not counted")
	}
}

func TestGetAndStale(t *testing.T) {
	f, _ := newFS(t)
	root, _ := f.Root()
	file, _ := root.Create(su(), "f", 0o644)
	fid := file.FID()
	if got, err := f.Get(fid); err != nil || got.FID() != fid {
		t.Fatalf("Get: %v", err)
	}
	if err := root.Remove(su(), "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(fid); !errors.Is(err, fs.ErrStale) {
		t.Fatalf("stale get: %v", err)
	}
	// Reuse of the inode slot gets a new generation.
	f2, err := root.Create(su(), "g", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if f2.FID().Vnode == fid.Vnode && f2.FID().Uniq == fid.Uniq {
		t.Fatal("generation not bumped on reuse")
	}
}

func TestModePermissions(t *testing.T) {
	f, _ := newFS(t)
	root, _ := f.Root()
	file, _ := root.Create(su(), "f", 0o600)
	o := fs.UserID(7)
	if _, err := file.SetAttr(su(), fs.AttrChange{Owner: &o}); err != nil {
		t.Fatal(err)
	}
	other := &vfs.Context{User: 8}
	if _, err := file.Read(other, make([]byte, 1), 0); !errors.Is(err, fs.ErrPerm) {
		t.Fatalf("0600 read by other: %v", err)
	}
}

func TestFsckCleanFS(t *testing.T) {
	f, dev := newFS(t)
	root, _ := f.Root()
	for i := 0; i < 5; i++ {
		file, err := root.Create(su(), fmt.Sprintf("f%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := file.Write(su(), bytes.Repeat([]byte{1}, 600), 0); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Fsck(dev)
	if err != nil {
		t.Fatal(err)
	}
	if res.EntriesDropped != 0 || res.OrphansFreed != 0 || res.BadPointers != 0 {
		t.Fatalf("clean fs salvage found problems: %+v", res)
	}
	if res.InodesScanned == 0 {
		t.Fatal("fsck scanned nothing")
	}
	// Now openable.
	if _, err := Open(dev); err != nil {
		t.Fatal(err)
	}
}

func TestFsckRepairsCrashDamage(t *testing.T) {
	// Crash mid-workload with random write-cache loss; fsck must bring
	// the file system back to a mountable, consistent state.
	for seed := int64(0); seed < 6; seed++ {
		mem := blockdev.NewMem(testBS, testDev)
		crash := blockdev.NewCrash(mem)
		f, err := Format(crash, 128, 1)
		if err != nil {
			t.Fatal(err)
		}
		root, _ := f.Root()
		for i := 0; i < 8; i++ {
			file, err := root.Create(su(), fmt.Sprintf("f%d", i), 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := file.Write(su(), bytes.Repeat([]byte{byte(i)}, 1200), 0); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if err := root.Remove(su(), fmt.Sprintf("f%d", i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		rng := rand.New(rand.NewSource(seed))
		if err := crash.Crash(blockdev.RandomSubset, rng); err != nil {
			t.Fatal(err)
		}
		// fsck, then mount.
		if _, err := Fsck(mem); err != nil {
			t.Fatalf("seed %d: fsck: %v", seed, err)
		}
		f2, err := Open(mem)
		if err != nil {
			t.Fatalf("seed %d: open after fsck: %v", seed, err)
		}
		root2, err := f2.Root()
		if err != nil {
			t.Fatalf("seed %d: root: %v", seed, err)
		}
		ents, err := root2.ReadDir(su())
		if err != nil {
			t.Fatalf("seed %d: readdir: %v", seed, err)
		}
		// Every surviving entry must resolve and be readable.
		for _, e := range ents {
			v, err := root2.Lookup(su(), e.Name)
			if err != nil {
				t.Fatalf("seed %d: dangling entry %q after fsck", seed, e.Name)
			}
			if e.Type == fs.TypeFile {
				if _, err := v.Read(su(), make([]byte, 10), 0); err != nil {
					t.Fatalf("seed %d: unreadable file %q: %v", seed, e.Name, err)
				}
			}
		}
		// The file system accepts new work.
		if _, err := root2.Create(su(), "post-fsck", 0o644); err != nil {
			t.Fatalf("seed %d: create after fsck: %v", seed, err)
		}
	}
}

func TestFsckCostScalesWithInodeCount(t *testing.T) {
	// The C1 shape at unit scale: fsck reads grow with total inodes even
	// when almost nothing happened before the crash.
	cost := func(nInodes uint32) int64 {
		mem := blockdev.NewMem(testBS, 8192)
		f, err := Format(mem, nInodes, 1)
		if err != nil {
			t.Fatal(err)
		}
		root, _ := f.Root()
		if _, err := root.Create(su(), "one-file", 0o644); err != nil {
			t.Fatal(err)
		}
		// Crash without unmounting (state is all synced anyway).
		sim := blockdev.NewSim(mem, blockdev.CostModel{})
		if _, err := Fsck(sim); err != nil {
			t.Fatal(err)
		}
		return sim.Stats().Reads
	}
	small := cost(64)
	large := cost(1024)
	if large < small*4 {
		t.Fatalf("fsck cost should scale with fs size: %d reads vs %d", small, large)
	}
}

func TestOutOfInodes(t *testing.T) {
	dev := blockdev.NewMem(testBS, testDev)
	f, err := Format(dev, 4, 1) // inodes 1..3 usable, 1 is root
	if err != nil {
		t.Fatal(err)
	}
	root, _ := f.Root()
	if _, err := root.Create(su(), "a", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Create(su(), "b", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Create(su(), "c", 0o644); !errors.Is(err, ErrNoInodes) {
		t.Fatalf("inode exhaustion: %v", err)
	}
}

func TestTruncateReclaims(t *testing.T) {
	f, _ := newFS(t)
	root, _ := f.Root()
	file, _ := root.Create(su(), "f", 0o644)
	if _, err := file.Write(su(), bytes.Repeat([]byte{1}, 20*testBS), 0); err != nil {
		t.Fatal(err)
	}
	st0, _ := f.Statfs()
	nl := int64(0)
	if _, err := file.SetAttr(su(), fs.AttrChange{Length: &nl}); err != nil {
		t.Fatal(err)
	}
	st1, _ := f.Statfs()
	if st1.FreeBlocks <= st0.FreeBlocks {
		t.Fatalf("truncate freed nothing: %d -> %d", st0.FreeBlocks, st1.FreeBlocks)
	}
}
