package ffs

import (
	"fmt"

	"decorum/internal/fs"
	"decorum/internal/vfs"
)

// vfs.FileSystem / vfs.Vnode implementation. FFS predates ACLs and
// volumes, so permission checks come from mode bits only, and the VFS+
// extensions are absent — the exporter serves it with exactly the subset
// the paper describes for conventional file systems (§3.3).

const rootIno uint32 = 1

// Root implements vfs.FileSystem.
func (f *FS) Root() (vfs.Vnode, error) {
	in, err := func() (inode, error) {
		f.mu.RLock()
		defer f.mu.RUnlock()
		return f.readInode(rootIno)
	}()
	if err != nil {
		return nil, err
	}
	return &vnode{fs: f, ino: rootIno, gen: in.gen}, nil
}

// Get implements vfs.FileSystem.
func (f *FS) Get(fid fs.FID) (vfs.Vnode, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if fid.Volume != f.sb.volume {
		return nil, fs.ErrStale
	}
	in, err := f.readInode(uint32(fid.Vnode))
	if err != nil || in.typ == typeFree || in.gen != fid.Uniq {
		return nil, fs.ErrStale
	}
	return &vnode{fs: f, ino: uint32(fid.Vnode), gen: in.gen}, nil
}

// Statfs implements vfs.FileSystem.
func (f *FS) Statfs() (fs.Statfs, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	free := int64(0)
	for blk := f.sb.dataStart; blk < f.dev.Blocks(); blk++ {
		used, err := f.bmGet(blk)
		if err != nil {
			return fs.Statfs{}, err
		}
		if !used {
			free++
		}
	}
	return fs.Statfs{
		BlockSize:   f.bs,
		TotalBlocks: f.dev.Blocks(),
		FreeBlocks:  free,
	}, nil
}

// Sync implements vfs.FileSystem (metadata is already synchronous; this
// flushes data).
func (f *FS) Sync() error { return f.dev.Sync() }

type vnode struct {
	fs  *FS
	ino uint32
	gen uint64
}

// FID implements vfs.Vnode.
func (n *vnode) FID() fs.FID {
	return fs.FID{Volume: n.fs.sb.volume, Vnode: uint64(n.ino), Uniq: n.gen}
}

// load reads and staleness-checks the inode. Caller holds f.mu.
func (n *vnode) load() (inode, error) {
	in, err := n.fs.readInode(n.ino)
	if err != nil {
		return in, err
	}
	if in.typ == typeFree || in.gen != n.gen {
		return in, fmt.Errorf("%w: inode %d", fs.ErrStale, n.ino)
	}
	return in, nil
}

func modePermits(in inode, ctx *vfs.Context, want fs.Rights) error {
	if ctx.User == fs.SuperUser {
		return nil
	}
	acl := fs.FromMode(in.mode, in.owner, in.group)
	if !acl.Permits(ctx.User, ctx.Groups).Has(want) {
		return fs.ErrPerm
	}
	return nil
}

func (n *vnode) attrOf(in inode) fs.Attr {
	var t fs.FileType
	switch in.typ {
	case typeFile:
		t = fs.TypeFile
	case typeDir:
		t = fs.TypeDir
	case typeSymlink:
		t = fs.TypeSymlink
	}
	return fs.Attr{
		FID:    n.FID(),
		Type:   t,
		Mode:   in.mode,
		Nlink:  in.nlink,
		Owner:  in.owner,
		Group:  in.group,
		Length: in.size,
		Blocks: (in.size + 511) / 512,
		Mtime:  in.mtime,
		Ctime:  in.mtime,
	}
}

// Attr implements vfs.Vnode.
func (n *vnode) Attr(ctx *vfs.Context) (fs.Attr, error) {
	n.fs.mu.RLock()
	defer n.fs.mu.RUnlock()
	in, err := n.load()
	if err != nil {
		return fs.Attr{}, err
	}
	return n.attrOf(in), nil
}

// SetAttr implements vfs.Vnode.
func (n *vnode) SetAttr(ctx *vfs.Context, ch fs.AttrChange) (fs.Attr, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	in, err := n.load()
	if err != nil {
		return fs.Attr{}, err
	}
	if ch.Length != nil {
		if in.typ != typeFile {
			return fs.Attr{}, fs.ErrIsDir
		}
		if err := modePermits(in, ctx, fs.RightWrite); err != nil {
			return fs.Attr{}, err
		}
		if err := n.fs.truncate(n.ino, &in, *ch.Length); err != nil {
			return fs.Attr{}, err
		}
	}
	if ch.Mode != nil {
		in.mode = *ch.Mode
	}
	if ch.Owner != nil {
		in.owner = *ch.Owner
	}
	if ch.Group != nil {
		in.group = *ch.Group
	}
	if ch.Mtime != nil {
		in.mtime = *ch.Mtime
	}
	if ch.Mode != nil || ch.Owner != nil || ch.Group != nil || ch.Mtime != nil {
		if err := n.fs.writeInode(n.ino, in); err != nil {
			return fs.Attr{}, err
		}
	}
	return n.attrOf(in), nil
}

// Read implements vfs.Vnode.
func (n *vnode) Read(ctx *vfs.Context, p []byte, off int64) (int, error) {
	n.fs.mu.RLock()
	defer n.fs.mu.RUnlock()
	in, err := n.load()
	if err != nil {
		return 0, err
	}
	if in.typ == typeDir {
		return 0, fs.ErrIsDir
	}
	if err := modePermits(in, ctx, fs.RightRead); err != nil {
		return 0, err
	}
	return n.fs.readAt(&in, p, off)
}

// Write implements vfs.Vnode.
func (n *vnode) Write(ctx *vfs.Context, p []byte, off int64) (int, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	in, err := n.load()
	if err != nil {
		return 0, err
	}
	if in.typ != typeFile {
		return 0, fs.ErrIsDir
	}
	if err := modePermits(in, ctx, fs.RightWrite); err != nil {
		return 0, err
	}
	return n.fs.writeAt(n.ino, &in, p, off)
}

// Lookup implements vfs.Vnode.
func (n *vnode) Lookup(ctx *vfs.Context, name string) (vfs.Vnode, error) {
	n.fs.mu.RLock()
	defer n.fs.mu.RUnlock()
	in, err := n.load()
	if err != nil {
		return nil, err
	}
	if in.typ != typeDir {
		return nil, fs.ErrNotDir
	}
	if err := modePermits(in, ctx, fs.RightExecute); err != nil {
		return nil, err
	}
	e, ok, err := n.fs.dirLookup(n.ino, &in, name)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %q", fs.ErrNotExist, name)
	}
	return &vnode{fs: n.fs, ino: e.ino, gen: e.gen}, nil
}

func (n *vnode) createCommon(ctx *vfs.Context, name string, typ uint8, mode fs.Mode, target string) (vfs.Vnode, error) {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	in, err := n.load()
	if err != nil {
		return nil, err
	}
	if in.typ != typeDir {
		return nil, fs.ErrNotDir
	}
	if err := modePermits(in, ctx, fs.RightInsert); err != nil {
		return nil, err
	}
	if _, ok, err := n.fs.dirLookup(n.ino, &in, name); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %q", fs.ErrExist, name)
	}
	// FFS ordering: child inode first (synchronous), then the entry.
	ino, newIn, err := n.fs.allocInode(typ, mode, ctx.User, groupOf(ctx))
	if err != nil {
		return nil, err
	}
	if typ == typeSymlink {
		if _, err := n.fs.writeAt(ino, &newIn, []byte(target), 0); err != nil {
			return nil, err
		}
	}
	if err := n.fs.dirInsert(n.ino, &in, ffsDirent{
		typ: typ, ino: ino, gen: newIn.gen, name: name,
	}); err != nil {
		return nil, err
	}
	return &vnode{fs: n.fs, ino: ino, gen: newIn.gen}, nil
}

func groupOf(ctx *vfs.Context) fs.GroupID {
	if len(ctx.Groups) > 0 {
		return ctx.Groups[0]
	}
	return 0
}

// Create implements vfs.Vnode.
func (n *vnode) Create(ctx *vfs.Context, name string, mode fs.Mode) (vfs.Vnode, error) {
	return n.createCommon(ctx, name, typeFile, mode, "")
}

// Mkdir implements vfs.Vnode.
func (n *vnode) Mkdir(ctx *vfs.Context, name string, mode fs.Mode) (vfs.Vnode, error) {
	return n.createCommon(ctx, name, typeDir, mode, "")
}

// Symlink implements vfs.Vnode.
func (n *vnode) Symlink(ctx *vfs.Context, name, target string) (vfs.Vnode, error) {
	return n.createCommon(ctx, name, typeSymlink, 0o777, target)
}

// Readlink implements vfs.Vnode.
func (n *vnode) Readlink(ctx *vfs.Context) (string, error) {
	n.fs.mu.RLock()
	defer n.fs.mu.RUnlock()
	in, err := n.load()
	if err != nil {
		return "", err
	}
	if in.typ != typeSymlink {
		return "", fs.ErrInvalid
	}
	p := make([]byte, in.size)
	if _, err := n.fs.readAt(&in, p, 0); err != nil {
		return "", err
	}
	return string(p), nil
}

// Link implements vfs.Vnode.
func (n *vnode) Link(ctx *vfs.Context, name string, target vfs.Vnode) error {
	tv, ok := target.(*vnode)
	if !ok || tv.fs != n.fs {
		return fs.ErrInvalid
	}
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	dir, err := n.load()
	if err != nil {
		return err
	}
	if dir.typ != typeDir {
		return fs.ErrNotDir
	}
	tin, err := tv.load()
	if err != nil {
		return err
	}
	if tin.typ == typeDir {
		return fs.ErrIsDir
	}
	if _, ok, err := n.fs.dirLookup(n.ino, &dir, name); err != nil {
		return err
	} else if ok {
		return fs.ErrExist
	}
	tin.nlink++
	if err := n.fs.writeInode(tv.ino, tin); err != nil {
		return err
	}
	return n.fs.dirInsert(n.ino, &dir, ffsDirent{
		typ: tin.typ, ino: tv.ino, gen: tin.gen, name: name,
	})
}

// Remove implements vfs.Vnode.
func (n *vnode) Remove(ctx *vfs.Context, name string) error {
	return n.removeCommon(ctx, name, false)
}

// Rmdir implements vfs.Vnode.
func (n *vnode) Rmdir(ctx *vfs.Context, name string) error {
	return n.removeCommon(ctx, name, true)
}

func (n *vnode) removeCommon(ctx *vfs.Context, name string, wantDir bool) error {
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	dir, err := n.load()
	if err != nil {
		return err
	}
	if dir.typ != typeDir {
		return fs.ErrNotDir
	}
	if err := modePermits(dir, ctx, fs.RightDelete); err != nil {
		return err
	}
	e, ok, err := n.fs.dirLookup(n.ino, &dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %q", fs.ErrNotExist, name)
	}
	if wantDir != (e.typ == typeDir) {
		if wantDir {
			return fs.ErrNotDir
		}
		return fs.ErrIsDir
	}
	child, err := n.fs.readInode(e.ino)
	if err != nil {
		return err
	}
	if e.typ == typeDir {
		empty := true
		n.fs.dirScan(e.ino, &child, func(ce ffsDirent) bool {
			if ce.used {
				empty = false
				return true
			}
			return false
		})
		if !empty {
			return fs.ErrNotEmpty
		}
	}
	// FFS order: entry removed first, then the inode freed.
	if err := n.fs.dirRemove(n.ino, &dir, e); err != nil {
		return err
	}
	child.nlink--
	if child.nlink == 0 || e.typ == typeDir {
		if err := n.fs.truncate(e.ino, &child, 0); err != nil {
			return err
		}
		child.typ = typeFree
	}
	return n.fs.writeInode(e.ino, child)
}

// Rename implements vfs.Vnode (no replace semantics; the baseline is
// deliberately minimal).
func (n *vnode) Rename(ctx *vfs.Context, oldName string, newDir vfs.Vnode, newName string) error {
	nd, ok := newDir.(*vnode)
	if !ok || nd.fs != n.fs {
		return fs.ErrInvalid
	}
	n.fs.mu.Lock()
	defer n.fs.mu.Unlock()
	src, err := n.load()
	if err != nil {
		return err
	}
	dst, err := nd.load()
	if err != nil {
		return err
	}
	e, ok, err := n.fs.dirLookup(n.ino, &src, oldName)
	if err != nil {
		return err
	}
	if !ok {
		return fs.ErrNotExist
	}
	if _, exists, err := n.fs.dirLookup(nd.ino, &dst, newName); err != nil {
		return err
	} else if exists {
		return fs.ErrExist
	}
	if err := n.fs.dirInsert(nd.ino, &dst, ffsDirent{
		typ: e.typ, ino: e.ino, gen: e.gen, name: newName,
	}); err != nil {
		return err
	}
	if n.ino == nd.ino {
		// Re-read: the insert may have altered the directory.
		src, err = n.load()
		if err != nil {
			return err
		}
		e, ok, err = n.fs.dirLookup(n.ino, &src, oldName)
		if err != nil || !ok {
			return fmt.Errorf("%w: rename lost entry", fs.ErrInvalid)
		}
	}
	return n.fs.dirRemove(n.ino, &src, e)
}

// ReadDir implements vfs.Vnode.
func (n *vnode) ReadDir(ctx *vfs.Context) ([]fs.Dirent, error) {
	n.fs.mu.RLock()
	defer n.fs.mu.RUnlock()
	in, err := n.load()
	if err != nil {
		return nil, err
	}
	if in.typ != typeDir {
		return nil, fs.ErrNotDir
	}
	var out []fs.Dirent
	err = n.fs.dirScan(n.ino, &in, func(e ffsDirent) bool {
		if e.used {
			var t fs.FileType
			switch e.typ {
			case typeFile:
				t = fs.TypeFile
			case typeDir:
				t = fs.TypeDir
			case typeSymlink:
				t = fs.TypeSymlink
			}
			out = append(out, fs.Dirent{Name: e.name, Vnode: uint64(e.ino), Uniq: e.gen, Type: t})
		}
		return false
	})
	return out, err
}
