package ffs

import (
	"encoding/binary"

	"decorum/internal/blockdev"
)

// Fsck is the salvage pass the paper calls "the notorious fsck" (§2.2,
// overview): after an unclean shutdown the entire file system — every
// inode, every directory — is scanned to rebuild the allocation bitmap,
// fix link counts, drop dangling directory entries, and free orphaned
// inodes. Its cost grows with the size of the file system, which is the
// availability problem Episode's log replay removes (experiment C1).

// FsckResult reports what the salvage found and fixed.
type FsckResult struct {
	InodesScanned  int64
	DirsScanned    int64
	EntriesDropped int64
	OrphansFreed   int64
	LinkFixes      int64
	BadPointers    int64
}

// Fsck salvages the file system on dev and marks it clean. It is a
// standalone function (like the real fsck program) run before Open.
func Fsck(dev blockdev.Device) (FsckResult, error) {
	var res FsckResult
	f := &FS{dev: dev, bs: dev.BlockSize(), Clock: func() int64 { return 0 }}
	if err := f.readSB(); err != nil {
		return res, err
	}

	type inodeInfo struct {
		in        inode
		reachable bool
		links     uint32
	}
	info := make(map[uint32]*inodeInfo)

	// Pass 1: scan every inode; validate block pointers.
	valid := func(blk int64) bool {
		return blk == 0 || (blk >= f.sb.dataStart && blk < dev.Blocks())
	}
	for ino := uint32(1); ino < f.sb.nInodes; ino++ {
		in, err := f.readInode(ino)
		if err != nil {
			return res, err
		}
		res.InodesScanned++
		if in.typ == typeFree {
			continue
		}
		changed := false
		for i := range in.direct {
			if !valid(in.direct[i]) {
				in.direct[i] = 0
				res.BadPointers++
				changed = true
			}
		}
		if !valid(in.indir) {
			in.indir = 0
			res.BadPointers++
			changed = true
		}
		if changed {
			if err := f.writeInode(ino, in); err != nil {
				return res, err
			}
		}
		info[ino] = &inodeInfo{in: in}
	}

	// Pass 2: walk the directory tree from the root, counting links and
	// dropping entries whose targets are missing or stale.
	var walk func(ino uint32) error
	walk = func(ino uint32) error {
		ii := info[ino]
		if ii == nil || ii.reachable {
			return nil
		}
		ii.reachable = true
		if ii.in.typ != typeDir {
			return nil
		}
		res.DirsScanned++
		var drops []ffsDirent
		var children []uint32
		if err := f.dirScan(ino, &ii.in, func(e ffsDirent) bool {
			if !e.used {
				return false
			}
			target := info[e.ino]
			if target == nil || target.in.gen != e.gen {
				drops = append(drops, e)
				return false
			}
			target.links++
			if target.in.typ == typeDir {
				children = append(children, e.ino)
			} else {
				target.reachable = true
			}
			return false
		}); err != nil {
			return err
		}
		for _, e := range drops {
			if err := f.dirRemove(ino, &ii.in, e); err != nil {
				return err
			}
			res.EntriesDropped++
		}
		for _, c := range children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if root := info[rootIno]; root != nil {
		root.links++ // the root is its own reference
		if err := walk(rootIno); err != nil {
			return res, err
		}
	}

	// Pass 3: free orphans, fix link counts.
	for ino, ii := range info {
		if !ii.reachable {
			if err := f.truncate(ino, &ii.in, 0); err != nil {
				return res, err
			}
			ii.in.typ = typeFree
			if err := f.writeInode(ino, ii.in); err != nil {
				return res, err
			}
			res.OrphansFreed++
			continue
		}
		if ii.in.nlink != ii.links {
			ii.in.nlink = ii.links
			if err := f.writeInode(ino, ii.in); err != nil {
				return res, err
			}
			res.LinkFixes++
		}
	}

	// Pass 4: rebuild the bitmap from live pointers.
	bs := int64(f.bs)
	bmImg := make([][]byte, f.sb.bmBlocks)
	for i := range bmImg {
		bmImg[i] = make([]byte, f.bs)
	}
	mark := func(blk int64) {
		if blk <= 0 || blk >= dev.Blocks() {
			return
		}
		idx := blk / (8 * bs)
		bmImg[idx][(blk/8)%bs] |= 1 << uint(blk%8)
	}
	for blk := int64(0); blk < f.sb.dataStart; blk++ {
		mark(blk)
	}
	ptrBuf := make([]byte, f.bs)
	for _, ii := range info {
		if !ii.reachable {
			continue
		}
		for _, d := range ii.in.direct {
			mark(d)
		}
		if ii.in.indir != 0 {
			mark(ii.in.indir)
			if err := dev.Read(ii.in.indir, ptrBuf); err != nil {
				return res, err
			}
			for i := int64(0); i < f.ptrsPerBlock(); i++ {
				mark(int64(binary.BigEndian.Uint64(ptrBuf[i*8:])))
			}
		}
	}
	for i, img := range bmImg {
		if err := dev.Write(f.sb.bmStart+int64(i), img); err != nil {
			return res, err
		}
	}

	// Mark clean.
	f.sb.flags |= flagClean
	if err := f.writeSB(); err != nil {
		return res, err
	}
	return res, dev.Sync()
}
