// Package ffs is the Berkeley Fast File System baseline the paper compares
// Episode against (§2.2).
//
// It reproduces the two FFS behaviours the comparison turns on:
//
//   - Metadata is written synchronously, in a careful order (inode before
//     directory entry, and so on), "to ensure that certain information is
//     written before other information, to simplify the job of fsck".
//     Every metadata operation therefore costs several device writes and
//     syncs — the disk traffic Episode's log avoids (experiment C2).
//   - Crash recovery is fsck: a full scan of every inode and directory to
//     rebuild the allocation bitmap, fix link counts, and drop dangling
//     entries. Its running time is proportional to file-system size, not
//     to recent activity (experiment C1).
//
// ffs implements the plain VFS interface of internal/vfs (no ACLs, no
// volumes — VolumeOps and ACL calls report vfs.ErrNotSupported), which is
// exactly the "export a native physical file system" interoperability
// story of §1: the DEcorum protocol exporter can serve an ffs file system
// to remote clients through the same glue layer as Episode.
package ffs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/fs"
)

// Geometry constants.
const (
	inodeSize  = 128
	dirEntSize = 64
	// MaxName is the longest directory entry name.
	MaxName = 49
	nDirect = 10
)

// Inode types.
const (
	typeFree uint8 = iota
	typeFile
	typeDir
	typeSymlink
)

const (
	sbMagic uint32 = 0x46465342 // "FFSB"

	flagClean uint32 = 1 // set on clean unmount, cleared on first mutation
)

// Errors.
var (
	ErrBadFormat = errors.New("ffs: bad superblock")
	ErrDirty     = errors.New("ffs: file system not cleanly unmounted, run fsck")
	ErrNoInodes  = errors.New("ffs: out of inodes")
)

type superblock struct {
	magic       uint32
	flags       uint32
	nInodes     uint32
	inodeStart  int64
	inodeBlocks int64
	bmStart     int64
	bmBlocks    int64
	dataStart   int64
	volume      fs.VolumeID
}

type inode struct {
	typ    uint8
	mode   fs.Mode
	nlink  uint32
	size   int64
	gen    uint64
	mtime  int64
	owner  fs.UserID
	group  fs.GroupID
	direct [nDirect]int64
	indir  int64
}

// FS is one mounted FFS file system. One device = one file system = one
// exported "volume" (there is no volume/aggregate distinction here; that
// is Episode's advance).
type FS struct {
	dev blockdev.Device
	// Clock supplies timestamps, settable in tests.
	Clock func() int64

	mu sync.RWMutex
	sb superblock
	bs int
	// metaWrites counts synchronous metadata write+sync pairs, for C2.
	metaWrites uint64
}

// Format lays out an empty file system with a root directory and returns
// it mounted. volume is the ID it exports under.
func Format(dev blockdev.Device, nInodes uint32, volume fs.VolumeID) (*FS, error) {
	bs := int64(dev.BlockSize())
	total := dev.Blocks()
	inodeBlocks := (int64(nInodes)*inodeSize + bs - 1) / bs
	bmBlocks := (total + 8*bs - 1) / (8 * bs)
	sb := superblock{
		magic:       sbMagic,
		flags:       flagClean,
		nInodes:     nInodes,
		inodeStart:  1,
		inodeBlocks: inodeBlocks,
		bmStart:     1 + inodeBlocks,
		bmBlocks:    bmBlocks,
		volume:      volume,
	}
	sb.dataStart = sb.bmStart + bmBlocks
	if sb.dataStart >= total {
		return nil, fmt.Errorf("%w: device too small", ErrBadFormat)
	}
	// The file system is returned mounted, so the on-disk clean flag is
	// cleared until Unmount: a crash before then requires fsck.
	sb.flags &^= flagClean
	f := &FS{dev: dev, sb: sb, bs: int(bs), Clock: func() int64 { return time.Now().UnixNano() }}
	// Zero metadata regions.
	zero := make([]byte, bs)
	for b := int64(1); b < sb.dataStart; b++ {
		if err := dev.Write(b, zero); err != nil {
			return nil, err
		}
	}
	// Mark the metadata prefix allocated.
	for blk := int64(0); blk < sb.dataStart; blk++ {
		if err := f.bmSet(blk, true); err != nil {
			return nil, err
		}
	}
	// Root directory at inode 1.
	root := inode{typ: typeDir, mode: 0o755, nlink: 1, gen: 1, mtime: f.Clock()}
	if err := f.writeInode(1, root); err != nil {
		return nil, err
	}
	if err := f.writeSB(); err != nil {
		return nil, err
	}
	if err := dev.Sync(); err != nil {
		return nil, err
	}
	return f, nil
}

// Open mounts an existing file system. If it was not cleanly unmounted it
// returns ErrDirty; the caller must run Fsck first (that is the whole
// point of the baseline).
func Open(dev blockdev.Device) (*FS, error) {
	f := &FS{dev: dev, bs: dev.BlockSize(), Clock: func() int64 { return time.Now().UnixNano() }}
	if err := f.readSB(); err != nil {
		return nil, err
	}
	if f.sb.flags&flagClean == 0 {
		return nil, ErrDirty
	}
	// Mark dirty while mounted; a crash now requires fsck.
	f.sb.flags &^= flagClean
	if err := f.writeSB(); err != nil {
		return nil, err
	}
	if err := dev.Sync(); err != nil {
		return nil, err
	}
	return f, nil
}

// Unmount flushes and sets the clean flag.
func (f *FS) Unmount() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sb.flags |= flagClean
	if err := f.writeSB(); err != nil {
		return err
	}
	return f.dev.Sync()
}

// MetaWrites returns the synchronous metadata write count (experiment C2).
func (f *FS) MetaWrites() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.metaWrites
}

// --- on-disk codecs ---

func (f *FS) readSB() error {
	p := make([]byte, f.bs)
	if err := f.dev.Read(0, p); err != nil {
		return err
	}
	if binary.BigEndian.Uint32(p) != sbMagic {
		return ErrBadFormat
	}
	f.sb = superblock{
		magic:       sbMagic,
		flags:       binary.BigEndian.Uint32(p[4:]),
		nInodes:     binary.BigEndian.Uint32(p[8:]),
		inodeStart:  int64(binary.BigEndian.Uint64(p[16:])),
		inodeBlocks: int64(binary.BigEndian.Uint64(p[24:])),
		bmStart:     int64(binary.BigEndian.Uint64(p[32:])),
		bmBlocks:    int64(binary.BigEndian.Uint64(p[40:])),
		dataStart:   int64(binary.BigEndian.Uint64(p[48:])),
		volume:      fs.VolumeID(binary.BigEndian.Uint64(p[56:])),
	}
	return nil
}

func (f *FS) writeSB() error {
	p := make([]byte, f.bs)
	binary.BigEndian.PutUint32(p, sbMagic)
	binary.BigEndian.PutUint32(p[4:], f.sb.flags)
	binary.BigEndian.PutUint32(p[8:], f.sb.nInodes)
	binary.BigEndian.PutUint64(p[16:], uint64(f.sb.inodeStart))
	binary.BigEndian.PutUint64(p[24:], uint64(f.sb.inodeBlocks))
	binary.BigEndian.PutUint64(p[32:], uint64(f.sb.bmStart))
	binary.BigEndian.PutUint64(p[40:], uint64(f.sb.bmBlocks))
	binary.BigEndian.PutUint64(p[48:], uint64(f.sb.dataStart))
	binary.BigEndian.PutUint64(p[56:], uint64(f.sb.volume))
	return f.dev.Write(0, p)
}

func decodeInode(p []byte) inode {
	var in inode
	in.typ = p[0]
	in.mode = fs.Mode(binary.BigEndian.Uint16(p[2:]))
	in.nlink = binary.BigEndian.Uint32(p[4:])
	in.size = int64(binary.BigEndian.Uint64(p[8:]))
	in.gen = binary.BigEndian.Uint64(p[16:])
	in.mtime = int64(binary.BigEndian.Uint64(p[24:]))
	in.owner = fs.UserID(binary.BigEndian.Uint32(p[32:]))
	in.group = fs.GroupID(binary.BigEndian.Uint32(p[36:]))
	for i := 0; i < nDirect; i++ {
		in.direct[i] = int64(binary.BigEndian.Uint64(p[40+8*i:]))
	}
	in.indir = int64(binary.BigEndian.Uint64(p[40+8*nDirect:]))
	return in
}

func encodeInode(in inode) []byte {
	p := make([]byte, inodeSize)
	p[0] = in.typ
	binary.BigEndian.PutUint16(p[2:], uint16(in.mode))
	binary.BigEndian.PutUint32(p[4:], in.nlink)
	binary.BigEndian.PutUint64(p[8:], uint64(in.size))
	binary.BigEndian.PutUint64(p[16:], in.gen)
	binary.BigEndian.PutUint64(p[24:], uint64(in.mtime))
	binary.BigEndian.PutUint32(p[32:], uint32(in.owner))
	binary.BigEndian.PutUint32(p[36:], uint32(in.group))
	for i := 0; i < nDirect; i++ {
		binary.BigEndian.PutUint64(p[40+8*i:], uint64(in.direct[i]))
	}
	binary.BigEndian.PutUint64(p[40+8*nDirect:], uint64(in.indir))
	return p
}

func (f *FS) inodePos(ino uint32) (blk int64, off int) {
	per := int64(f.bs / inodeSize)
	return f.sb.inodeStart + int64(ino)/per, int(int64(ino) % per * inodeSize)
}

func (f *FS) readInode(ino uint32) (inode, error) {
	if ino == 0 || ino >= f.sb.nInodes {
		return inode{}, fmt.Errorf("%w: inode %d", fs.ErrInvalid, ino)
	}
	blk, off := f.inodePos(ino)
	p := make([]byte, f.bs)
	if err := f.dev.Read(blk, p); err != nil {
		return inode{}, err
	}
	return decodeInode(p[off : off+inodeSize]), nil
}

// writeInode writes the inode synchronously — the FFS discipline.
func (f *FS) writeInode(ino uint32, in inode) error {
	blk, off := f.inodePos(ino)
	p := make([]byte, f.bs)
	if err := f.dev.Read(blk, p); err != nil {
		return err
	}
	copy(p[off:], encodeInode(in))
	if err := f.dev.Write(blk, p); err != nil {
		return err
	}
	f.metaWrites++
	return f.dev.Sync()
}

// --- bitmap ---

func (f *FS) bmPos(blk int64) (devBlk int64, byteOff int, bit uint) {
	bs := int64(f.bs)
	return f.sb.bmStart + blk/(8*bs), int((blk / 8) % bs), uint(blk % 8)
}

func (f *FS) bmSet(blk int64, used bool) error {
	devBlk, off, bit := f.bmPos(blk)
	p := make([]byte, f.bs)
	if err := f.dev.Read(devBlk, p); err != nil {
		return err
	}
	if used {
		p[off] |= 1 << bit
	} else {
		p[off] &^= 1 << bit
	}
	if err := f.dev.Write(devBlk, p); err != nil {
		return err
	}
	f.metaWrites++
	return f.dev.Sync()
}

func (f *FS) bmGet(blk int64) (bool, error) {
	devBlk, off, bit := f.bmPos(blk)
	p := make([]byte, f.bs)
	if err := f.dev.Read(devBlk, p); err != nil {
		return false, err
	}
	return p[off]&(1<<bit) != 0, nil
}

// allocBlock finds a free data block and marks it used (synchronously).
func (f *FS) allocBlock() (int64, error) {
	for blk := f.sb.dataStart; blk < f.dev.Blocks(); blk++ {
		used, err := f.bmGet(blk)
		if err != nil {
			return 0, err
		}
		if !used {
			if err := f.bmSet(blk, true); err != nil {
				return 0, err
			}
			return blk, nil
		}
	}
	return 0, fs.ErrNoSpace
}

// allocInode finds a free inode slot.
func (f *FS) allocInode(typ uint8, mode fs.Mode, owner fs.UserID, group fs.GroupID) (uint32, inode, error) {
	for ino := uint32(1); ino < f.sb.nInodes; ino++ {
		in, err := f.readInode(ino)
		if err != nil {
			return 0, inode{}, err
		}
		if in.typ == typeFree {
			newIn := inode{
				typ: typ, mode: mode, nlink: 1,
				gen: in.gen + 1, mtime: f.Clock(),
				owner: owner, group: group,
			}
			if err := f.writeInode(ino, newIn); err != nil {
				return 0, inode{}, err
			}
			return ino, newIn, nil
		}
	}
	return 0, inode{}, ErrNoInodes
}
