// Package replication implements the DEcorum replication server (§3.8 of
// the paper): lazy read-only replication of volumes.
//
// "The DEcorum replication service implements lazy replication of
// volumes: a replica is maintained permanently, and is guaranteed to be
// out of date by no more than a fixed amount of time. ... The client of
// the replica is guaranteed to always see a consistent snapshot of the
// volume, and is guaranteed that data in the replica are never replaced
// by older data. A replication server requests a whole-volume token to
// guarantee that it can use a replica of a volume; when it must update
// the replica, it attempts to obtain from the master copy only those
// files that have changed."
//
// Mechanics here:
//
//   - change detection: the replicator holds a whole-volume token on the
//     source; any write in the volume revokes it, marking the replica
//     stale (the token is returned immediately — it is a signal, not a
//     lock);
//   - consistent snapshots: each refresh clones the source volume (the
//     §2.1 snapshot primitive), walks the clone — which nobody mutates —
//     and deletes it afterwards;
//   - incremental transfer: per-path data versions from the previous
//     refresh let the walk fetch only files whose DataVersion changed;
//   - monotonicity: updates apply to the replica volume while it is
//     briefly offline, so readers see either the old snapshot or the new
//     one, never a mixture or a regression.
package replication

import (
	"fmt"
	"net"
	"sync"
	"time"

	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// Options configures a Replicator.
type Options struct {
	// SourceVolume is the read-write volume to mirror.
	SourceVolume fs.VolumeID
	// ReplicaName names the local replica volume.
	ReplicaName string
	// MaxAge bounds staleness: EnsureFresh refreshes when the replica is
	// older. The paper warns the design is not meant for very small
	// values ("less than about 10 minutes" in 1990 terms).
	MaxAge time.Duration
	// Clock is settable in tests.
	Clock func() time.Time
	// RPC configures the association to the source server.
	RPC rpc.Options
	// Obs, when non-nil, registers the replicator's counters and the
	// association's RPC metrics. Nil disables instrumentation.
	Obs *obs.Registry
	// DisableMerkle turns off the S30 Merkle-diff transfer and falls back
	// to full-file copies for every changed file — the C10e ablation knob.
	DisableMerkle bool
}

// Stats reports replication work, for experiments C7 and C10e.
type Stats struct {
	Refreshes     uint64
	FilesChecked  uint64
	FilesFetched  uint64
	BytesFetched  uint64
	Invalidations uint64 // whole-volume token revocations observed
	ChunksFetched uint64 // leaf chunks shipped by the Merkle-diff path
	// DiffSkippedChunks counts chunks PROVEN unchanged by hash-tree
	// comparison (root short-circuits and per-level walks), i.e. transfer
	// the Merkle diff avoided that a full copy would have paid.
	DiffSkippedChunks uint64
}

// Replicator maintains one replica volume on the local aggregate.
type Replicator struct {
	opts Options
	peer *rpc.Peer
	dst  *episode.Aggregate

	mu        sync.Mutex
	replicaID fs.VolumeID       // guarded by mu
	stale     bool              // guarded by mu
	lastSync  time.Time         // guarded by mu
	versions  map[string]uint64 // path -> DataVersion at last sync; guarded by mu
	tokenID   token.ID          // guarded by mu

	// Work counters (experiments C7, C10e). Always allocated; Stats() is a
	// view.
	refreshes     *obs.Counter
	filesChecked  *obs.Counter
	filesFetched  *obs.Counter
	bytesFetched  *obs.Counter
	invalidations *obs.Counter
	chunksFetched *obs.Counter
	diffSkipped   *obs.Counter
}

// New connects a replicator to the source server over conn and prepares
// (but does not run) it. Call InitialSync, then Refresh/EnsureFresh.
func New(conn net.Conn, dst *episode.Aggregate, opts Options) (*Replicator, error) {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	r := &Replicator{
		opts:          opts,
		dst:           dst,
		versions:      make(map[string]uint64),
		stale:         true,
		refreshes:     obs.NewCounter(),
		filesChecked:  obs.NewCounter(),
		filesFetched:  obs.NewCounter(),
		bytesFetched:  obs.NewCounter(),
		invalidations: obs.NewCounter(),
		chunksFetched: obs.NewCounter(),
		diffSkipped:   obs.NewCounter(),
	}
	if opts.RPC.Metrics == nil {
		opts.RPC.Metrics = opts.Obs
	}
	if opts.Obs != nil {
		r.Instrument(opts.Obs)
	}
	peer := rpc.NewPeer(conn, opts.RPC)
	peer.Handle(proto.CBRevoke, r.handleRevoke)
	peer.Handle(proto.CBProbe, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(struct{}{})
	})
	peer.Start()
	var reg proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{ClientName: "replicator"}, &reg); err != nil {
		peer.Close()
		return nil, proto.DecodeErr(err)
	}
	r.peer = peer
	return r, nil
}

// Close tears down the association.
func (r *Replicator) Close() error { return r.peer.Close() }

// Stats returns the counters (a thin view over the obs cells).
func (r *Replicator) Stats() Stats {
	return Stats{
		Refreshes:         r.refreshes.Load(),
		FilesChecked:      r.filesChecked.Load(),
		FilesFetched:      r.filesFetched.Load(),
		BytesFetched:      r.bytesFetched.Load(),
		Invalidations:     r.invalidations.Load(),
		ChunksFetched:     r.chunksFetched.Load(),
		DiffSkippedChunks: r.diffSkipped.Load(),
	}
}

// Instrument registers the replicator's live counters and state with reg.
func (r *Replicator) Instrument(reg *obs.Registry) {
	reg.AttachCounter("replication.refreshes", r.refreshes)
	reg.AttachCounter("replication.files_checked", r.filesChecked)
	reg.AttachCounter("replication.files_fetched", r.filesFetched)
	reg.AttachCounter("replication.bytes_fetched", r.bytesFetched)
	reg.AttachCounter("replication.invalidations", r.invalidations)
	reg.AttachCounter("replication.chunks_fetched", r.chunksFetched)
	reg.AttachCounter("integrity.diff_skipped_chunks", r.diffSkipped)
	reg.AttachInfo("replication.state", func() any {
		r.mu.Lock()
		defer r.mu.Unlock()
		return map[string]any{
			"replica_id":    r.replicaID,
			"stale":         r.stale,
			"last_sync":     r.lastSync.Format(time.RFC3339Nano),
			"tracked_paths": len(r.versions),
		}
	})
}

// ReplicaID returns the local replica volume's ID (valid after
// InitialSync).
func (r *Replicator) ReplicaID() fs.VolumeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replicaID
}

// Stale reports whether the source has changed since the last refresh.
func (r *Replicator) Stale() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stale
}

// Age returns time since the last successful refresh.
func (r *Replicator) Age() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Clock().Sub(r.lastSync)
}

// handleRevoke fires when any write lands in the source volume: the
// whole-volume token breaks and the replica is marked stale. The token is
// returned immediately.
func (r *Replicator) handleRevoke(_ *rpc.CallCtx, body []byte) ([]byte, error) {
	var args proto.RevokeArgs
	if err := rpc.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if args.Token.Types&token.WholeVolume != 0 {
		r.stale = true
		r.invalidations.Inc()
	}
	r.mu.Unlock()
	return rpc.Marshal(proto.RevokeReply{Returned: true})
}

// armToken acquires the whole-volume token on the source root so future
// changes mark the replica stale.
func (r *Replicator) armToken() error {
	var root proto.GetRootReply
	if err := r.peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: r.opts.SourceVolume}, &root); err != nil {
		return proto.DecodeErr(err)
	}
	// Clear the stale flag BEFORE the grant returns: a revocation of the
	// new token can race the reply, and its stale=true must not be
	// overwritten here.
	r.mu.Lock()
	r.stale = false
	r.mu.Unlock()
	var reply proto.GetTokensReply
	err := r.peer.Call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  root.FID,
		Want: proto.TokenRequest{Types: token.WholeVolume},
	}, &reply)
	if err != nil {
		r.mu.Lock()
		r.stale = true
		r.mu.Unlock()
		return proto.DecodeErr(err)
	}
	r.mu.Lock()
	for _, g := range reply.Grants {
		r.tokenID = g.Token.ID
	}
	r.mu.Unlock()
	return nil
}

// InitialSync builds the replica from scratch (a full dump/restore) and
// arms change detection.
//
// Ordering matters: the whole-volume token is acquired BEFORE the data is
// captured. A write landing between capture and arming would otherwise be
// invisible forever; a write landing after arming marks the replica stale
// (at worst triggering one redundant refresh).
func (r *Replicator) InitialSync() error {
	if err := r.armToken(); err != nil {
		return err
	}
	var dumpReply proto.VolDumpReply
	if err := r.peer.Call(proto.VDump, proto.VolIDArgs{ID: r.opts.SourceVolume}, &dumpReply); err != nil {
		return proto.DecodeErr(err)
	}
	info, err := r.dst.Restore(dumpReply.Dump, r.opts.ReplicaName)
	if err != nil {
		return err
	}
	if err := r.dst.SetReadOnly(info.ID, true); err != nil {
		return err
	}
	r.mu.Lock()
	r.replicaID = info.ID
	r.mu.Unlock()
	r.refreshes.Inc()
	// Record versions by walking the new replica.
	if err := r.recordVersions(); err != nil {
		return err
	}
	r.mu.Lock()
	r.lastSync = r.opts.Clock()
	r.mu.Unlock()
	return nil
}

// recordVersions rebuilds the per-path DataVersion map from the replica.
func (r *Replicator) recordVersions() error {
	fsys, err := r.dst.Mount(r.ReplicaID())
	if err != nil {
		return err
	}
	root, err := fsys.Root()
	if err != nil {
		return err
	}
	versions := make(map[string]uint64)
	var walk func(dir vfs.Vnode, prefix string) error
	walk = func(dir vfs.Vnode, prefix string) error {
		ents, err := dir.ReadDir(vfs.Superuser())
		if err != nil {
			return err
		}
		for _, e := range ents {
			child, err := dir.Lookup(vfs.Superuser(), e.Name)
			if err != nil {
				return err
			}
			attr, err := child.Attr(vfs.Superuser())
			if err != nil {
				return err
			}
			path := prefix + e.Name
			versions[path] = attr.DataVersion
			if e.Type == fs.TypeDir {
				if err := walk(child, path+"/"); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return err
	}
	r.mu.Lock()
	r.versions = versions
	r.mu.Unlock()
	return nil
}

// EnsureFresh refreshes if the replica is stale and older than MaxAge —
// the lazy schedule. Returns whether a refresh ran.
func (r *Replicator) EnsureFresh() (bool, error) {
	r.mu.Lock()
	needs := r.stale && r.opts.Clock().Sub(r.lastSync) >= r.opts.MaxAge
	r.mu.Unlock()
	if !needs {
		return false, nil
	}
	return true, r.Refresh()
}

// Refresh brings the replica up to date now: re-arm change detection,
// clone the source, walk the clone fetching only changed files, apply
// atomically, delete the clone.
func (r *Replicator) Refresh() error {
	// 0. Re-arm detection BEFORE capturing (see InitialSync's ordering
	// note): nothing that happens after this point can be lost.
	if err := r.armToken(); err != nil {
		return err
	}
	// 1. Snapshot the source.
	cloneName := fmt.Sprintf("%s.repltmp.%d", r.opts.ReplicaName, r.opts.Clock().UnixNano())
	var cloneReply proto.VolCreateReply
	err := r.peer.Call(proto.VClone, proto.VolIDArgs{ID: r.opts.SourceVolume, Name: cloneName}, &cloneReply)
	if err != nil {
		return proto.DecodeErr(err)
	}
	cloneID := cloneReply.Info.ID
	//lint:ignore errclass best-effort temp-clone cleanup; a leaked .repltmp clone is visible in vos list for the administrator
	defer r.peer.Call(proto.VDelete, proto.VolIDArgs{ID: cloneID}, nil)

	// 2. Take the replica offline for the apply window; the mirror works
	// through a maintenance mount, so readers see the old snapshot until
	// the volume comes back with the new one — never a mixture.
	replicaID := r.ReplicaID()
	if err := r.dst.SetOffline(replicaID, true); err != nil {
		return err
	}
	restore := func() {
		r.dst.SetOffline(replicaID, false)
	}

	// 3. Mirror the clone into the replica, fetching changed files only.
	newVersions := make(map[string]uint64)
	var srcRoot proto.GetRootReply
	if err := r.peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: cloneID}, &srcRoot); err != nil {
		restore()
		return proto.DecodeErr(err)
	}
	dstFS, err := r.dst.MountMaintenance(replicaID)
	if err != nil {
		restore()
		return err
	}
	dstRoot, err := dstFS.Root()
	if err != nil {
		restore()
		return err
	}
	if err := r.mirror(srcRoot.FID, dstRoot, "", newVersions); err != nil {
		restore()
		return err
	}
	restore()

	// 4. Bookkeeping (stale is NOT cleared here: a revocation during the
	// refresh legitimately re-marks the replica).
	r.mu.Lock()
	r.versions = newVersions
	r.lastSync = r.opts.Clock()
	r.mu.Unlock()
	r.refreshes.Inc()
	return nil
}

// mirror makes dstDir match the clone directory srcDir.
func (r *Replicator) mirror(srcDir fs.FID, dstDir vfs.Vnode, prefix string, newVersions map[string]uint64) error {
	su := vfs.Superuser()
	var srcList proto.ReadDirReply
	if err := r.peer.Call(proto.MReadDir, proto.ReadDirArgs{Dir: srcDir}, &srcList); err != nil {
		return proto.DecodeErr(err)
	}
	srcNames := make(map[string]fs.Dirent, len(srcList.Entries))
	for _, e := range srcList.Entries {
		srcNames[e.Name] = e
	}
	// Delete entries gone from the source.
	dstEnts, err := dstDir.ReadDir(su)
	if err != nil {
		return err
	}
	dstByName := make(map[string]fs.Dirent, len(dstEnts))
	for _, e := range dstEnts {
		dstByName[e.Name] = e
		if _, keep := srcNames[e.Name]; keep {
			continue
		}
		if e.Type == fs.TypeDir {
			if err := r.removeTree(dstDir, e.Name); err != nil {
				return err
			}
		} else if err := dstDir.Remove(su, e.Name); err != nil {
			return err
		}
	}
	for _, e := range srcList.Entries {
		path := prefix + e.Name
		srcFID := fs.FID{Volume: srcDir.Volume, Vnode: e.Vnode, Uniq: e.Uniq}
		var st proto.FetchStatusReply
		if err := r.peer.Call(proto.MFetchStatus, proto.FetchStatusArgs{FID: srcFID}, &st); err != nil {
			return proto.DecodeErr(err)
		}
		r.filesChecked.Inc()
		r.mu.Lock()
		prevVer, seen := r.versions[path]
		r.mu.Unlock()
		newVersions[path] = st.Attr.DataVersion

		existing, haveDst := dstByName[e.Name]
		switch e.Type {
		case fs.TypeDir:
			var child vfs.Vnode
			if haveDst && existing.Type == fs.TypeDir {
				child, err = dstDir.Lookup(su, e.Name)
			} else {
				if haveDst {
					if err := dstDir.Remove(su, e.Name); err != nil {
						return err
					}
				}
				child, err = dstDir.Mkdir(su, e.Name, st.Attr.Mode)
			}
			if err != nil {
				return err
			}
			if err := r.mirror(srcFID, child, path+"/", newVersions); err != nil {
				return err
			}
		case fs.TypeSymlink:
			if haveDst {
				continue // symlinks are immutable once created
			}
			var link proto.ReadlinkReply
			if err := r.peer.Call(proto.MReadlink, proto.ReadlinkArgs{FID: srcFID}, &link); err != nil {
				return proto.DecodeErr(err)
			}
			if _, err := dstDir.Symlink(su, e.Name, link.Target); err != nil {
				return err
			}
		default: // plain file
			unchanged := haveDst && seen && prevVer == st.Attr.DataVersion
			if unchanged {
				continue
			}
			reuse := haveDst && existing.Type == fs.TypeFile
			var child vfs.Vnode
			if reuse {
				child, err = dstDir.Lookup(su, e.Name)
			} else {
				if haveDst {
					if err := dstDir.Remove(su, e.Name); err != nil {
						return err
					}
				}
				child, err = dstDir.Create(su, e.Name, st.Attr.Mode)
			}
			if err != nil {
				return err
			}
			// The §3.8 incremental path, refined by S30: when the replica
			// already holds an older copy, a Merkle-tree walk ships only the
			// chunks that actually differ. A fresh file (or a source that
			// cannot serve trees) still takes the full copy.
			synced, shipped := false, int64(0)
			if reuse && !r.opts.DisableMerkle {
				shipped, synced, err = r.merkleSync(srcFID, child, st.Attr.Length)
				if err != nil {
					return err
				}
			}
			if !synced {
				if err := r.fullCopy(srcFID, child, st.Attr.Length); err != nil {
					return err
				}
				r.filesFetched.Inc()
			} else if shipped > 0 {
				r.filesFetched.Inc()
			}
		}
	}
	return nil
}

// fullCopy replaces dst's content with the source file, fetched in
// 256 KiB steps — the pre-S30 transfer, still used for brand-new files,
// sources that cannot serve hash trees, and the DisableMerkle ablation.
func (r *Replicator) fullCopy(srcFID fs.FID, dst vfs.Vnode, length int64) error {
	su := vfs.Superuser()
	zero := int64(0)
	if _, err := dst.SetAttr(su, fs.AttrChange{Length: &zero}); err != nil {
		return err
	}
	const step = 256 * 1024
	for off := int64(0); off < length; off += step {
		n := length - off
		if n > step {
			n = step
		}
		var data proto.FetchDataReply
		err := r.peer.Call(proto.MFetchData, proto.FetchDataArgs{
			FID: srcFID, Offset: off, Length: int(n),
		}, &data)
		if err != nil {
			return proto.DecodeErr(err)
		}
		if _, err := dst.Write(su, data.Data, off); err != nil {
			return err
		}
		r.bytesFetched.Add(uint64(len(data.Data)))
	}
	return nil
}

// merkleSync brings an existing replica file up to date by comparing
// hash trees and shipping only the differing chunks (S30). Equal roots
// prove the whole file identical for one 32-byte compare; otherwise the
// walk descends from the root expanding only differing nodes, fanout
// children per level, so the request count is O(changed · log(size))
// rather than O(size). Dirty leaves are fetched chunk-aligned — the
// source attaches its recorded leaf hash, which is re-checked here
// before the bytes land in the replica.
//
// ok=false with a nil error means the diff cannot run (the destination
// is not hash-capable, or the source predates MHashTree) and the caller
// must fall back to fullCopy. A source leaf that was never recorded
// reads as zero and is treated as dirty: unprovable chunks always ship.
func (r *Replicator) merkleSync(srcFID fs.FID, dst vfs.Vnode, length int64) (shipped int64, ok bool, err error) {
	su := vfs.Superuser()
	hv, hok := dst.(vfs.HashVnode)
	if !hok {
		return 0, false, nil
	}
	var tr proto.HashTreeReply
	//lint:ignore errclass any MHashTree failure (pre-S30 source, unhashed vnode) means "cannot diff"; fullCopy re-surfaces real transport errors
	if err := r.peer.Call(proto.MHashTree, proto.HashTreeArgs{FID: srcFID}, &tr); err != nil {
		return 0, false, nil
	}
	if len(tr.Root) != integrity.HashSize {
		return 0, false, nil
	}
	var srcRoot integrity.Hash
	copy(srcRoot[:], tr.Root)
	dstRoot, dstLeaves, err := hv.HashRoot(su)
	if err != nil {
		return 0, false, nil
	}
	if srcRoot == integrity.Hash(dstRoot) && dstLeaves == tr.Leaves {
		r.diffSkipped.Add(uint64(tr.Leaves))
		return 0, true, nil
	}
	// Top-down walk. dirty holds differing node indices at the current
	// level, starting with the root (the compare above just failed).
	dirty := []int64{0}
	if tr.Leaves == 0 {
		dirty = nil
	}
	for level := integrity.Levels(tr.Leaves); level > 0 && len(dirty) > 0; level-- {
		below := level - 1
		width := integrity.LevelWidth(tr.Leaves, below)
		children := make([]int64, 0, len(dirty)*integrity.Fanout)
		for _, n := range dirty {
			lo, hi := n*integrity.Fanout, n*integrity.Fanout+integrity.Fanout
			if hi > width {
				hi = width
			}
			for i := lo; i < hi; i++ {
				children = append(children, i)
			}
		}
		srcNodes, err := r.srcHashLevel(srcFID, below, children)
		if err != nil {
			return shipped, false, err
		}
		dstNodes, err := hv.HashLevel(su, below, children)
		if err != nil {
			return shipped, false, err
		}
		next := make([]int64, 0, len(children))
		for k, idx := range children {
			if srcNodes[k].IsZero() || srcNodes[k] != integrity.Hash(dstNodes[k]) {
				next = append(next, idx)
			}
		}
		dirty = next
	}
	for _, idx := range dirty {
		var data proto.FetchDataReply
		err := r.peer.Call(proto.MFetchData, proto.FetchDataArgs{
			FID: srcFID, Offset: idx * integrity.LeafSize, Length: integrity.LeafSize,
		}, &data)
		if err != nil {
			return shipped, false, proto.DecodeErr(err)
		}
		if len(data.Hash) == integrity.HashSize {
			var want integrity.Hash
			copy(want[:], data.Hash)
			// The clone is immutable, so a mismatch is not a race — it is
			// corruption in flight or at rest, and the refresh must fail
			// rather than install the bytes.
			if got := integrity.LeafHash(data.Data); got != want {
				return shipped, false, &integrity.MismatchError{Chunk: idx, Want: want, Got: got}
			}
		}
		if _, err := dst.Write(su, data.Data, idx*integrity.LeafSize); err != nil {
			return shipped, false, err
		}
		shipped++
		r.chunksFetched.Inc()
		r.bytesFetched.Add(uint64(len(data.Data)))
	}
	r.diffSkipped.Add(uint64(tr.Leaves - shipped))
	// Writes never shrink the replica file: settle the exact length last
	// (this also rehashes the boundary leaf on truncation).
	newLen := length
	if _, err := dst.SetAttr(su, fs.AttrChange{Length: &newLen}); err != nil {
		return shipped, false, err
	}
	return shipped, true, nil
}

// srcHashLevel pulls one tree level's nodes for idxs from the source in
// bounded batches.
func (r *Replicator) srcHashLevel(fid fs.FID, level int, idxs []int64) ([]integrity.Hash, error) {
	out := make([]integrity.Hash, 0, len(idxs))
	const batch = 256
	for i := 0; i < len(idxs); i += batch {
		j := i + batch
		if j > len(idxs) {
			j = len(idxs)
		}
		var reply proto.HashTreeReply
		err := r.peer.Call(proto.MHashTree, proto.HashTreeArgs{
			FID: fid, Level: level, Indices: idxs[i:j],
		}, &reply)
		if err != nil {
			return nil, proto.DecodeErr(err)
		}
		hs, err := integrity.Unmarshal(reply.Hashes)
		if err != nil || len(hs) != j-i {
			return nil, fmt.Errorf("replication: bad hash-tree batch from source (%d nodes for %d indices)", len(hs), j-i)
		}
		out = append(out, hs...)
	}
	return out, nil
}

// removeTree deletes a directory subtree from the replica.
func (r *Replicator) removeTree(dir vfs.Vnode, name string) error {
	su := vfs.Superuser()
	child, err := dir.Lookup(su, name)
	if err != nil {
		return err
	}
	ents, err := child.ReadDir(su)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Type == fs.TypeDir {
			if err := r.removeTree(child, e.Name); err != nil {
				return err
			}
		} else if err := child.Remove(su, e.Name); err != nil {
			return err
		}
	}
	return dir.Rmdir(su, name)
}

// Run refreshes on the lazy schedule until done closes: the permanent
// replica maintenance the paper describes.
func (r *Replicator) Run(done <-chan struct{}) {
	interval := r.opts.MaxAge / 2
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.EnsureFresh()
		case <-done:
			return
		}
	}
}
