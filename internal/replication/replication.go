// Package replication implements the DEcorum replication server (§3.8 of
// the paper): lazy read-only replication of volumes.
//
// "The DEcorum replication service implements lazy replication of
// volumes: a replica is maintained permanently, and is guaranteed to be
// out of date by no more than a fixed amount of time. ... The client of
// the replica is guaranteed to always see a consistent snapshot of the
// volume, and is guaranteed that data in the replica are never replaced
// by older data. A replication server requests a whole-volume token to
// guarantee that it can use a replica of a volume; when it must update
// the replica, it attempts to obtain from the master copy only those
// files that have changed."
//
// Mechanics here:
//
//   - change detection: the replicator holds a whole-volume token on the
//     source; any write in the volume revokes it, marking the replica
//     stale (the token is returned immediately — it is a signal, not a
//     lock);
//   - consistent snapshots: each refresh clones the source volume (the
//     §2.1 snapshot primitive), walks the clone — which nobody mutates —
//     and deletes it afterwards;
//   - incremental transfer: per-path data versions from the previous
//     refresh let the walk fetch only files whose DataVersion changed;
//   - monotonicity: updates apply to the replica volume while it is
//     briefly offline, so readers see either the old snapshot or the new
//     one, never a mixture or a regression.
package replication

import (
	"fmt"
	"net"
	"sync"
	"time"

	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/obs"
	"decorum/internal/proto"
	"decorum/internal/rpc"
	"decorum/internal/token"
	"decorum/internal/vfs"
)

// Options configures a Replicator.
type Options struct {
	// SourceVolume is the read-write volume to mirror.
	SourceVolume fs.VolumeID
	// ReplicaName names the local replica volume.
	ReplicaName string
	// MaxAge bounds staleness: EnsureFresh refreshes when the replica is
	// older. The paper warns the design is not meant for very small
	// values ("less than about 10 minutes" in 1990 terms).
	MaxAge time.Duration
	// Clock is settable in tests.
	Clock func() time.Time
	// RPC configures the association to the source server.
	RPC rpc.Options
	// Obs, when non-nil, registers the replicator's counters and the
	// association's RPC metrics. Nil disables instrumentation.
	Obs *obs.Registry
}

// Stats reports replication work, for experiment C7.
type Stats struct {
	Refreshes     uint64
	FilesChecked  uint64
	FilesFetched  uint64
	BytesFetched  uint64
	Invalidations uint64 // whole-volume token revocations observed
}

// Replicator maintains one replica volume on the local aggregate.
type Replicator struct {
	opts Options
	peer *rpc.Peer
	dst  *episode.Aggregate

	mu        sync.Mutex
	replicaID fs.VolumeID       // guarded by mu
	stale     bool              // guarded by mu
	lastSync  time.Time         // guarded by mu
	versions  map[string]uint64 // path -> DataVersion at last sync; guarded by mu
	tokenID   token.ID          // guarded by mu

	// Work counters (experiment C7). Always allocated; Stats() is a view.
	refreshes     *obs.Counter
	filesChecked  *obs.Counter
	filesFetched  *obs.Counter
	bytesFetched  *obs.Counter
	invalidations *obs.Counter
}

// New connects a replicator to the source server over conn and prepares
// (but does not run) it. Call InitialSync, then Refresh/EnsureFresh.
func New(conn net.Conn, dst *episode.Aggregate, opts Options) (*Replicator, error) {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	r := &Replicator{
		opts:          opts,
		dst:           dst,
		versions:      make(map[string]uint64),
		stale:         true,
		refreshes:     obs.NewCounter(),
		filesChecked:  obs.NewCounter(),
		filesFetched:  obs.NewCounter(),
		bytesFetched:  obs.NewCounter(),
		invalidations: obs.NewCounter(),
	}
	if opts.RPC.Metrics == nil {
		opts.RPC.Metrics = opts.Obs
	}
	if opts.Obs != nil {
		r.Instrument(opts.Obs)
	}
	peer := rpc.NewPeer(conn, opts.RPC)
	peer.Handle(proto.CBRevoke, r.handleRevoke)
	peer.Handle(proto.CBProbe, func(ctx *rpc.CallCtx, body []byte) ([]byte, error) {
		return rpc.Marshal(struct{}{})
	})
	peer.Start()
	var reg proto.RegisterReply
	if err := peer.Call(proto.MRegister, proto.RegisterArgs{ClientName: "replicator"}, &reg); err != nil {
		peer.Close()
		return nil, proto.DecodeErr(err)
	}
	r.peer = peer
	return r, nil
}

// Close tears down the association.
func (r *Replicator) Close() error { return r.peer.Close() }

// Stats returns the counters (a thin view over the obs cells).
func (r *Replicator) Stats() Stats {
	return Stats{
		Refreshes:     r.refreshes.Load(),
		FilesChecked:  r.filesChecked.Load(),
		FilesFetched:  r.filesFetched.Load(),
		BytesFetched:  r.bytesFetched.Load(),
		Invalidations: r.invalidations.Load(),
	}
}

// Instrument registers the replicator's live counters and state with reg.
func (r *Replicator) Instrument(reg *obs.Registry) {
	reg.AttachCounter("replication.refreshes", r.refreshes)
	reg.AttachCounter("replication.files_checked", r.filesChecked)
	reg.AttachCounter("replication.files_fetched", r.filesFetched)
	reg.AttachCounter("replication.bytes_fetched", r.bytesFetched)
	reg.AttachCounter("replication.invalidations", r.invalidations)
	reg.AttachInfo("replication.state", func() any {
		r.mu.Lock()
		defer r.mu.Unlock()
		return map[string]any{
			"replica_id":    r.replicaID,
			"stale":         r.stale,
			"last_sync":     r.lastSync.Format(time.RFC3339Nano),
			"tracked_paths": len(r.versions),
		}
	})
}

// ReplicaID returns the local replica volume's ID (valid after
// InitialSync).
func (r *Replicator) ReplicaID() fs.VolumeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.replicaID
}

// Stale reports whether the source has changed since the last refresh.
func (r *Replicator) Stale() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stale
}

// Age returns time since the last successful refresh.
func (r *Replicator) Age() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.opts.Clock().Sub(r.lastSync)
}

// handleRevoke fires when any write lands in the source volume: the
// whole-volume token breaks and the replica is marked stale. The token is
// returned immediately.
func (r *Replicator) handleRevoke(_ *rpc.CallCtx, body []byte) ([]byte, error) {
	var args proto.RevokeArgs
	if err := rpc.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	r.mu.Lock()
	if args.Token.Types&token.WholeVolume != 0 {
		r.stale = true
		r.invalidations.Inc()
	}
	r.mu.Unlock()
	return rpc.Marshal(proto.RevokeReply{Returned: true})
}

// armToken acquires the whole-volume token on the source root so future
// changes mark the replica stale.
func (r *Replicator) armToken() error {
	var root proto.GetRootReply
	if err := r.peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: r.opts.SourceVolume}, &root); err != nil {
		return proto.DecodeErr(err)
	}
	// Clear the stale flag BEFORE the grant returns: a revocation of the
	// new token can race the reply, and its stale=true must not be
	// overwritten here.
	r.mu.Lock()
	r.stale = false
	r.mu.Unlock()
	var reply proto.GetTokensReply
	err := r.peer.Call(proto.MGetTokens, proto.GetTokensArgs{
		FID:  root.FID,
		Want: proto.TokenRequest{Types: token.WholeVolume},
	}, &reply)
	if err != nil {
		r.mu.Lock()
		r.stale = true
		r.mu.Unlock()
		return proto.DecodeErr(err)
	}
	r.mu.Lock()
	for _, g := range reply.Grants {
		r.tokenID = g.Token.ID
	}
	r.mu.Unlock()
	return nil
}

// InitialSync builds the replica from scratch (a full dump/restore) and
// arms change detection.
//
// Ordering matters: the whole-volume token is acquired BEFORE the data is
// captured. A write landing between capture and arming would otherwise be
// invisible forever; a write landing after arming marks the replica stale
// (at worst triggering one redundant refresh).
func (r *Replicator) InitialSync() error {
	if err := r.armToken(); err != nil {
		return err
	}
	var dumpReply proto.VolDumpReply
	if err := r.peer.Call(proto.VDump, proto.VolIDArgs{ID: r.opts.SourceVolume}, &dumpReply); err != nil {
		return proto.DecodeErr(err)
	}
	info, err := r.dst.Restore(dumpReply.Dump, r.opts.ReplicaName)
	if err != nil {
		return err
	}
	if err := r.dst.SetReadOnly(info.ID, true); err != nil {
		return err
	}
	r.mu.Lock()
	r.replicaID = info.ID
	r.mu.Unlock()
	r.refreshes.Inc()
	// Record versions by walking the new replica.
	if err := r.recordVersions(); err != nil {
		return err
	}
	r.mu.Lock()
	r.lastSync = r.opts.Clock()
	r.mu.Unlock()
	return nil
}

// recordVersions rebuilds the per-path DataVersion map from the replica.
func (r *Replicator) recordVersions() error {
	fsys, err := r.dst.Mount(r.ReplicaID())
	if err != nil {
		return err
	}
	root, err := fsys.Root()
	if err != nil {
		return err
	}
	versions := make(map[string]uint64)
	var walk func(dir vfs.Vnode, prefix string) error
	walk = func(dir vfs.Vnode, prefix string) error {
		ents, err := dir.ReadDir(vfs.Superuser())
		if err != nil {
			return err
		}
		for _, e := range ents {
			child, err := dir.Lookup(vfs.Superuser(), e.Name)
			if err != nil {
				return err
			}
			attr, err := child.Attr(vfs.Superuser())
			if err != nil {
				return err
			}
			path := prefix + e.Name
			versions[path] = attr.DataVersion
			if e.Type == fs.TypeDir {
				if err := walk(child, path+"/"); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walk(root, ""); err != nil {
		return err
	}
	r.mu.Lock()
	r.versions = versions
	r.mu.Unlock()
	return nil
}

// EnsureFresh refreshes if the replica is stale and older than MaxAge —
// the lazy schedule. Returns whether a refresh ran.
func (r *Replicator) EnsureFresh() (bool, error) {
	r.mu.Lock()
	needs := r.stale && r.opts.Clock().Sub(r.lastSync) >= r.opts.MaxAge
	r.mu.Unlock()
	if !needs {
		return false, nil
	}
	return true, r.Refresh()
}

// Refresh brings the replica up to date now: re-arm change detection,
// clone the source, walk the clone fetching only changed files, apply
// atomically, delete the clone.
func (r *Replicator) Refresh() error {
	// 0. Re-arm detection BEFORE capturing (see InitialSync's ordering
	// note): nothing that happens after this point can be lost.
	if err := r.armToken(); err != nil {
		return err
	}
	// 1. Snapshot the source.
	cloneName := fmt.Sprintf("%s.repltmp.%d", r.opts.ReplicaName, r.opts.Clock().UnixNano())
	var cloneReply proto.VolCreateReply
	err := r.peer.Call(proto.VClone, proto.VolIDArgs{ID: r.opts.SourceVolume, Name: cloneName}, &cloneReply)
	if err != nil {
		return proto.DecodeErr(err)
	}
	cloneID := cloneReply.Info.ID
	//lint:ignore errclass best-effort temp-clone cleanup; a leaked .repltmp clone is visible in vos list for the administrator
	defer r.peer.Call(proto.VDelete, proto.VolIDArgs{ID: cloneID}, nil)

	// 2. Take the replica offline for the apply window; the mirror works
	// through a maintenance mount, so readers see the old snapshot until
	// the volume comes back with the new one — never a mixture.
	replicaID := r.ReplicaID()
	if err := r.dst.SetOffline(replicaID, true); err != nil {
		return err
	}
	restore := func() {
		r.dst.SetOffline(replicaID, false)
	}

	// 3. Mirror the clone into the replica, fetching changed files only.
	newVersions := make(map[string]uint64)
	var srcRoot proto.GetRootReply
	if err := r.peer.Call(proto.MGetRoot, proto.GetRootArgs{Volume: cloneID}, &srcRoot); err != nil {
		restore()
		return proto.DecodeErr(err)
	}
	dstFS, err := r.dst.MountMaintenance(replicaID)
	if err != nil {
		restore()
		return err
	}
	dstRoot, err := dstFS.Root()
	if err != nil {
		restore()
		return err
	}
	if err := r.mirror(srcRoot.FID, dstRoot, "", newVersions); err != nil {
		restore()
		return err
	}
	restore()

	// 4. Bookkeeping (stale is NOT cleared here: a revocation during the
	// refresh legitimately re-marks the replica).
	r.mu.Lock()
	r.versions = newVersions
	r.lastSync = r.opts.Clock()
	r.mu.Unlock()
	r.refreshes.Inc()
	return nil
}

// mirror makes dstDir match the clone directory srcDir.
func (r *Replicator) mirror(srcDir fs.FID, dstDir vfs.Vnode, prefix string, newVersions map[string]uint64) error {
	su := vfs.Superuser()
	var srcList proto.ReadDirReply
	if err := r.peer.Call(proto.MReadDir, proto.ReadDirArgs{Dir: srcDir}, &srcList); err != nil {
		return proto.DecodeErr(err)
	}
	srcNames := make(map[string]fs.Dirent, len(srcList.Entries))
	for _, e := range srcList.Entries {
		srcNames[e.Name] = e
	}
	// Delete entries gone from the source.
	dstEnts, err := dstDir.ReadDir(su)
	if err != nil {
		return err
	}
	dstByName := make(map[string]fs.Dirent, len(dstEnts))
	for _, e := range dstEnts {
		dstByName[e.Name] = e
		if _, keep := srcNames[e.Name]; keep {
			continue
		}
		if e.Type == fs.TypeDir {
			if err := r.removeTree(dstDir, e.Name); err != nil {
				return err
			}
		} else if err := dstDir.Remove(su, e.Name); err != nil {
			return err
		}
	}
	for _, e := range srcList.Entries {
		path := prefix + e.Name
		srcFID := fs.FID{Volume: srcDir.Volume, Vnode: e.Vnode, Uniq: e.Uniq}
		var st proto.FetchStatusReply
		if err := r.peer.Call(proto.MFetchStatus, proto.FetchStatusArgs{FID: srcFID}, &st); err != nil {
			return proto.DecodeErr(err)
		}
		r.filesChecked.Inc()
		r.mu.Lock()
		prevVer, seen := r.versions[path]
		r.mu.Unlock()
		newVersions[path] = st.Attr.DataVersion

		existing, haveDst := dstByName[e.Name]
		switch e.Type {
		case fs.TypeDir:
			var child vfs.Vnode
			if haveDst && existing.Type == fs.TypeDir {
				child, err = dstDir.Lookup(su, e.Name)
			} else {
				if haveDst {
					if err := dstDir.Remove(su, e.Name); err != nil {
						return err
					}
				}
				child, err = dstDir.Mkdir(su, e.Name, st.Attr.Mode)
			}
			if err != nil {
				return err
			}
			if err := r.mirror(srcFID, child, path+"/", newVersions); err != nil {
				return err
			}
		case fs.TypeSymlink:
			if haveDst {
				continue // symlinks are immutable once created
			}
			var link proto.ReadlinkReply
			if err := r.peer.Call(proto.MReadlink, proto.ReadlinkArgs{FID: srcFID}, &link); err != nil {
				return proto.DecodeErr(err)
			}
			if _, err := dstDir.Symlink(su, e.Name, link.Target); err != nil {
				return err
			}
		default: // plain file
			unchanged := haveDst && seen && prevVer == st.Attr.DataVersion
			if unchanged {
				continue
			}
			// Fetch only this changed file — the §3.8 incremental path.
			var child vfs.Vnode
			if haveDst && existing.Type == fs.TypeFile {
				child, err = dstDir.Lookup(su, e.Name)
			} else {
				if haveDst {
					if err := dstDir.Remove(su, e.Name); err != nil {
						return err
					}
				}
				child, err = dstDir.Create(su, e.Name, st.Attr.Mode)
			}
			if err != nil {
				return err
			}
			zero := int64(0)
			if _, err := child.SetAttr(su, fs.AttrChange{Length: &zero}); err != nil {
				return err
			}
			const step = 256 * 1024
			for off := int64(0); off < st.Attr.Length; off += step {
				n := st.Attr.Length - off
				if n > step {
					n = step
				}
				var data proto.FetchDataReply
				err := r.peer.Call(proto.MFetchData, proto.FetchDataArgs{
					FID: srcFID, Offset: off, Length: int(n),
				}, &data)
				if err != nil {
					return proto.DecodeErr(err)
				}
				if _, err := child.Write(su, data.Data, off); err != nil {
					return err
				}
				r.bytesFetched.Add(uint64(len(data.Data)))
			}
			r.filesFetched.Inc()
		}
	}
	return nil
}

// removeTree deletes a directory subtree from the replica.
func (r *Replicator) removeTree(dir vfs.Vnode, name string) error {
	su := vfs.Superuser()
	child, err := dir.Lookup(su, name)
	if err != nil {
		return err
	}
	ents, err := child.ReadDir(su)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if e.Type == fs.TypeDir {
			if err := r.removeTree(child, e.Name); err != nil {
				return err
			}
		} else if err := child.Remove(su, e.Name); err != nil {
			return err
		}
	}
	return dir.Rmdir(su, name)
}

// Run refreshes on the lazy schedule until done closes: the permanent
// replica maintenance the paper describes.
func (r *Replicator) Run(done <-chan struct{}) {
	interval := r.opts.MaxAge / 2
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.EnsureFresh()
		case <-done:
			return
		}
	}
}
