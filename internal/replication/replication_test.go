package replication

import (
	"bytes"
	"net"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/server"
	"decorum/internal/vfs"
)

// fixture: a source server with a volume full of files, a destination
// aggregate, and a replicator between them.
type fixture struct {
	t      *testing.T
	srv    *server.Server
	srcAgg *episode.Aggregate
	dstAgg *episode.Aggregate
	vol    vfs.VolumeInfo
	repl   *Replicator
	now    time.Time
}

func newFixture(t *testing.T, maxAge time.Duration) *fixture {
	t.Helper()
	srcDev := blockdev.NewMem(512, 8192)
	srcAgg, err := episode.Format(srcDev, episode.Options{LogBlocks: 64, PoolSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := srcAgg.CreateVolume("docs", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Name: "src"}, srcAgg)

	dstDev := blockdev.NewMem(512, 8192)
	dstAgg, err := episode.Format(dstDev, episode.Options{LogBlocks: 64, PoolSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, srv: srv, srcAgg: srcAgg, dstAgg: dstAgg, vol: vol,
		now: time.Unix(10000, 0)}
	cs, ss := net.Pipe()
	srv.Attach(ss)
	repl, err := New(cs, dstAgg, Options{
		SourceVolume: vol.ID,
		ReplicaName:  "docs.readonly",
		MaxAge:       maxAge,
		Clock:        func() time.Time { return f.now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repl.Close() })
	f.repl = repl
	return f
}

// write creates/overwrites a file on the source through the local path.
func (f *fixture) write(path string, data []byte) {
	f.t.Helper()
	local, err := f.srv.LocalFS(f.vol.ID)
	if err != nil {
		f.t.Fatal(err)
	}
	root, err := local.Root()
	if err != nil {
		f.t.Fatal(err)
	}
	su := vfs.Superuser()
	file, err := root.Lookup(su, path)
	if err != nil {
		file, err = root.Create(su, path, 0o644)
		if err != nil {
			f.t.Fatal(err)
		}
	}
	if _, err := file.Write(su, data, 0); err != nil {
		f.t.Fatal(err)
	}
	n := int64(len(data))
	if _, err := file.SetAttr(su, fs.AttrChange{Length: &n}); err != nil {
		f.t.Fatal(err)
	}
}

// readReplica reads a file from the replica volume.
func (f *fixture) readReplica(path string) ([]byte, error) {
	fsys, err := f.dstAgg.Mount(f.repl.ReplicaID())
	if err != nil {
		return nil, err
	}
	root, err := fsys.Root()
	if err != nil {
		return nil, err
	}
	su := vfs.Superuser()
	file, err := root.Lookup(su, path)
	if err != nil {
		return nil, err
	}
	attr, err := file.Attr(su)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, attr.Length)
	if _, err := file.Read(su, buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

func TestInitialSyncMirrorsVolume(t *testing.T) {
	f := newFixture(t, time.Minute)
	f.write("report.txt", []byte("quarterly numbers"))
	f.write("notes.txt", []byte("misc"))
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	got, err := f.readReplica("report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "quarterly numbers" {
		t.Fatalf("replica has %q", got)
	}
	// The replica volume is read-only.
	fsys, _ := f.dstAgg.Mount(f.repl.ReplicaID())
	root, _ := fsys.Root()
	if _, err := root.Create(vfs.Superuser(), "x", 0o644); err == nil {
		t.Fatal("replica accepted a write")
	}
}

func TestChangeDetectionViaWholeVolumeToken(t *testing.T) {
	f := newFixture(t, time.Minute)
	f.write("a", []byte("1"))
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	if f.repl.Stale() {
		t.Fatal("fresh replica marked stale")
	}
	// Any write in the volume breaks the whole-volume token.
	f.write("a", []byte("2"))
	if !f.repl.Stale() {
		t.Fatal("write did not mark the replica stale")
	}
	if f.repl.Stats().Invalidations == 0 {
		t.Fatal("no invalidation counted")
	}
}

func TestRefreshIsIncremental(t *testing.T) {
	f := newFixture(t, time.Minute)
	// Ten files; only one will change.
	for i := 0; i < 10; i++ {
		f.write(fileName(i), bytes.Repeat([]byte{byte(i)}, 2048))
	}
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	f.write(fileName(3), []byte("changed!"))
	st0 := f.repl.Stats()
	if err := f.repl.Refresh(); err != nil {
		t.Fatal(err)
	}
	st := f.repl.Stats()
	if fetched := st.FilesFetched - st0.FilesFetched; fetched != 1 {
		t.Fatalf("refresh fetched %d files, want only the changed one", fetched)
	}
	if checked := st.FilesChecked - st0.FilesChecked; checked != 10 {
		t.Fatalf("refresh checked %d files", checked)
	}
	got, err := f.readReplica(fileName(3))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "changed!" {
		t.Fatalf("replica has %q", got)
	}
	// Unchanged files are intact.
	got, _ = f.readReplica(fileName(7))
	if !bytes.Equal(got, bytes.Repeat([]byte{7}, 2048)) {
		t.Fatal("unchanged file corrupted by refresh")
	}
}

func fileName(i int) string { return string(rune('a'+i)) + ".dat" }

func TestRefreshHandlesCreatesAndDeletes(t *testing.T) {
	f := newFixture(t, time.Minute)
	f.write("keep", []byte("k"))
	f.write("goner", []byte("g"))
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	// Delete one, add one.
	local, _ := f.srv.LocalFS(f.vol.ID)
	root, _ := local.Root()
	if err := root.Remove(vfs.Superuser(), "goner"); err != nil {
		t.Fatal(err)
	}
	f.write("fresh", []byte("f"))
	if err := f.repl.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.readReplica("goner"); err == nil {
		t.Fatal("deleted file survived in replica")
	}
	if got, err := f.readReplica("fresh"); err != nil || string(got) != "f" {
		t.Fatalf("new file in replica: %q, %v", got, err)
	}
	if got, err := f.readReplica("keep"); err != nil || string(got) != "k" {
		t.Fatalf("kept file: %q, %v", got, err)
	}
}

func TestLazySchedule(t *testing.T) {
	f := newFixture(t, time.Minute)
	f.write("a", []byte("1"))
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	f.write("a", []byte("2"))
	// Stale but young: EnsureFresh does nothing (bounded staleness, not
	// eager replication).
	f.now = f.now.Add(10 * time.Second)
	ran, err := f.repl.EnsureFresh()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("refreshed before MaxAge")
	}
	if got, _ := f.readReplica("a"); string(got) != "1" {
		t.Fatalf("replica shows %q (should still be the old snapshot)", got)
	}
	// Past MaxAge: the refresh runs; staleness never exceeds the bound.
	f.now = f.now.Add(time.Minute)
	ran, err = f.repl.EnsureFresh()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("EnsureFresh did not refresh past MaxAge")
	}
	if got, _ := f.readReplica("a"); string(got) != "2" {
		t.Fatalf("replica shows %q after refresh", got)
	}
	// Clean replica: EnsureFresh is a no-op even past MaxAge.
	f.now = f.now.Add(2 * time.Minute)
	ran, _ = f.repl.EnsureFresh()
	if ran {
		t.Fatal("refreshed a clean replica")
	}
}

func TestMonotonicityNeverOlderData(t *testing.T) {
	// The replica must never regress: after each refresh the observed
	// version only moves forward.
	f := newFixture(t, time.Minute)
	f.write("v", []byte{0})
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	last := byte(0)
	for i := byte(1); i <= 5; i++ {
		f.write("v", []byte{i})
		if err := f.repl.Refresh(); err != nil {
			t.Fatal(err)
		}
		got, err := f.readReplica("v")
		if err != nil {
			t.Fatal(err)
		}
		if got[0] < last {
			t.Fatalf("replica went backward: %d after %d", got[0], last)
		}
		last = got[0]
	}
	if last != 5 {
		t.Fatalf("final replica version %d", last)
	}
}

func TestSubdirectoriesReplicate(t *testing.T) {
	f := newFixture(t, time.Minute)
	local, _ := f.srv.LocalFS(f.vol.ID)
	root, _ := local.Root()
	su := vfs.Superuser()
	d, err := root.Mkdir(su, "sub", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	file, err := d.Create(su, "deep.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write(su, []byte("nested"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Symlink(su, "ln", "sub/deep.txt"); err != nil {
		t.Fatal(err)
	}
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	fsys, _ := f.dstAgg.Mount(f.repl.ReplicaID())
	rroot, _ := fsys.Root()
	got, err := vfs.Walk(su, rroot, "sub/deep.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	got.Read(su, buf, 0)
	if string(buf) != "nested" {
		t.Fatalf("replica nested file %q", buf)
	}
	ln, err := rroot.Lookup(su, "ln")
	if err != nil {
		t.Fatal(err)
	}
	if target, _ := ln.Readlink(su); target != "sub/deep.txt" {
		t.Fatalf("replica symlink %q", target)
	}
	_ = fs.TypeDir
}
