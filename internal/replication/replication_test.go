package replication

import (
	"bytes"
	"net"
	"testing"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/episode"
	"decorum/internal/fs"
	"decorum/internal/integrity"
	"decorum/internal/server"
	"decorum/internal/vfs"
)

// fixture: a source server with a volume full of files, a destination
// aggregate, and a replicator between them.
type fixture struct {
	t      testing.TB
	srv    *server.Server
	srcAgg *episode.Aggregate
	dstAgg *episode.Aggregate
	vol    vfs.VolumeInfo
	repl   *Replicator
	now    time.Time
}

func newFixture(t testing.TB, maxAge time.Duration) *fixture {
	t.Helper()
	return newFixtureSize(t, maxAge, 512, 8192)
}

// newFixtureSize builds the fixture on custom-geometry devices — the
// Merkle tests need 4 KiB blocks (512-byte pointer geometry tops out
// near 2 MiB per file) and room for multi-chunk files plus the refresh
// clone.
func newFixtureSize(t testing.TB, maxAge time.Duration, blockSize int, blocks int64) *fixture {
	t.Helper()
	srcDev := blockdev.NewMem(blockSize, blocks)
	srcAgg, err := episode.Format(srcDev, episode.Options{LogBlocks: 64, PoolSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := srcAgg.CreateVolume("docs", 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Options{Name: "src"}, srcAgg)

	dstDev := blockdev.NewMem(blockSize, blocks)
	dstAgg, err := episode.Format(dstDev, episode.Options{LogBlocks: 64, PoolSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{t: t, srv: srv, srcAgg: srcAgg, dstAgg: dstAgg, vol: vol,
		now: time.Unix(10000, 0)}
	cs, ss := net.Pipe()
	srv.Attach(ss)
	repl, err := New(cs, dstAgg, Options{
		SourceVolume: vol.ID,
		ReplicaName:  "docs.readonly",
		MaxAge:       maxAge,
		Clock:        func() time.Time { return f.now },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repl.Close() })
	f.repl = repl
	return f
}

// write creates/overwrites a file on the source through the local path.
func (f *fixture) write(path string, data []byte) {
	f.t.Helper()
	local, err := f.srv.LocalFS(f.vol.ID)
	if err != nil {
		f.t.Fatal(err)
	}
	root, err := local.Root()
	if err != nil {
		f.t.Fatal(err)
	}
	su := vfs.Superuser()
	file, err := root.Lookup(su, path)
	if err != nil {
		file, err = root.Create(su, path, 0o644)
		if err != nil {
			f.t.Fatal(err)
		}
	}
	if _, err := file.Write(su, data, 0); err != nil {
		f.t.Fatal(err)
	}
	n := int64(len(data))
	if _, err := file.SetAttr(su, fs.AttrChange{Length: &n}); err != nil {
		f.t.Fatal(err)
	}
}

// writeAt patches an existing source file in place (no length change):
// the small edits the Merkle diff is built to catch.
func (f *fixture) writeAt(path string, data []byte, off int64) {
	f.t.Helper()
	local, err := f.srv.LocalFS(f.vol.ID)
	if err != nil {
		f.t.Fatal(err)
	}
	root, err := local.Root()
	if err != nil {
		f.t.Fatal(err)
	}
	su := vfs.Superuser()
	file, err := root.Lookup(su, path)
	if err != nil {
		f.t.Fatal(err)
	}
	if _, err := file.Write(su, data, off); err != nil {
		f.t.Fatal(err)
	}
}

// readReplica reads a file from the replica volume.
func (f *fixture) readReplica(path string) ([]byte, error) {
	fsys, err := f.dstAgg.Mount(f.repl.ReplicaID())
	if err != nil {
		return nil, err
	}
	root, err := fsys.Root()
	if err != nil {
		return nil, err
	}
	su := vfs.Superuser()
	file, err := root.Lookup(su, path)
	if err != nil {
		return nil, err
	}
	attr, err := file.Attr(su)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, attr.Length)
	if _, err := file.Read(su, buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

func TestInitialSyncMirrorsVolume(t *testing.T) {
	f := newFixture(t, time.Minute)
	f.write("report.txt", []byte("quarterly numbers"))
	f.write("notes.txt", []byte("misc"))
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	got, err := f.readReplica("report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "quarterly numbers" {
		t.Fatalf("replica has %q", got)
	}
	// The replica volume is read-only.
	fsys, _ := f.dstAgg.Mount(f.repl.ReplicaID())
	root, _ := fsys.Root()
	if _, err := root.Create(vfs.Superuser(), "x", 0o644); err == nil {
		t.Fatal("replica accepted a write")
	}
}

func TestChangeDetectionViaWholeVolumeToken(t *testing.T) {
	f := newFixture(t, time.Minute)
	f.write("a", []byte("1"))
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	if f.repl.Stale() {
		t.Fatal("fresh replica marked stale")
	}
	// Any write in the volume breaks the whole-volume token.
	f.write("a", []byte("2"))
	if !f.repl.Stale() {
		t.Fatal("write did not mark the replica stale")
	}
	if f.repl.Stats().Invalidations == 0 {
		t.Fatal("no invalidation counted")
	}
}

func TestRefreshIsIncremental(t *testing.T) {
	f := newFixture(t, time.Minute)
	// Ten files; only one will change.
	for i := 0; i < 10; i++ {
		f.write(fileName(i), bytes.Repeat([]byte{byte(i)}, 2048))
	}
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	f.write(fileName(3), []byte("changed!"))
	st0 := f.repl.Stats()
	if err := f.repl.Refresh(); err != nil {
		t.Fatal(err)
	}
	st := f.repl.Stats()
	if fetched := st.FilesFetched - st0.FilesFetched; fetched != 1 {
		t.Fatalf("refresh fetched %d files, want only the changed one", fetched)
	}
	if checked := st.FilesChecked - st0.FilesChecked; checked != 10 {
		t.Fatalf("refresh checked %d files", checked)
	}
	got, err := f.readReplica(fileName(3))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "changed!" {
		t.Fatalf("replica has %q", got)
	}
	// Unchanged files are intact.
	got, _ = f.readReplica(fileName(7))
	if !bytes.Equal(got, bytes.Repeat([]byte{7}, 2048)) {
		t.Fatal("unchanged file corrupted by refresh")
	}
}

func fileName(i int) string { return string(rune('a'+i)) + ".dat" }

func TestRefreshHandlesCreatesAndDeletes(t *testing.T) {
	f := newFixture(t, time.Minute)
	f.write("keep", []byte("k"))
	f.write("goner", []byte("g"))
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	// Delete one, add one.
	local, _ := f.srv.LocalFS(f.vol.ID)
	root, _ := local.Root()
	if err := root.Remove(vfs.Superuser(), "goner"); err != nil {
		t.Fatal(err)
	}
	f.write("fresh", []byte("f"))
	if err := f.repl.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.readReplica("goner"); err == nil {
		t.Fatal("deleted file survived in replica")
	}
	if got, err := f.readReplica("fresh"); err != nil || string(got) != "f" {
		t.Fatalf("new file in replica: %q, %v", got, err)
	}
	if got, err := f.readReplica("keep"); err != nil || string(got) != "k" {
		t.Fatalf("kept file: %q, %v", got, err)
	}
}

func TestLazySchedule(t *testing.T) {
	f := newFixture(t, time.Minute)
	f.write("a", []byte("1"))
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	f.write("a", []byte("2"))
	// Stale but young: EnsureFresh does nothing (bounded staleness, not
	// eager replication).
	f.now = f.now.Add(10 * time.Second)
	ran, err := f.repl.EnsureFresh()
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("refreshed before MaxAge")
	}
	if got, _ := f.readReplica("a"); string(got) != "1" {
		t.Fatalf("replica shows %q (should still be the old snapshot)", got)
	}
	// Past MaxAge: the refresh runs; staleness never exceeds the bound.
	f.now = f.now.Add(time.Minute)
	ran, err = f.repl.EnsureFresh()
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("EnsureFresh did not refresh past MaxAge")
	}
	if got, _ := f.readReplica("a"); string(got) != "2" {
		t.Fatalf("replica shows %q after refresh", got)
	}
	// Clean replica: EnsureFresh is a no-op even past MaxAge.
	f.now = f.now.Add(2 * time.Minute)
	ran, _ = f.repl.EnsureFresh()
	if ran {
		t.Fatal("refreshed a clean replica")
	}
}

func TestMonotonicityNeverOlderData(t *testing.T) {
	// The replica must never regress: after each refresh the observed
	// version only moves forward.
	f := newFixture(t, time.Minute)
	f.write("v", []byte{0})
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	last := byte(0)
	for i := byte(1); i <= 5; i++ {
		f.write("v", []byte{i})
		if err := f.repl.Refresh(); err != nil {
			t.Fatal(err)
		}
		got, err := f.readReplica("v")
		if err != nil {
			t.Fatal(err)
		}
		if got[0] < last {
			t.Fatalf("replica went backward: %d after %d", got[0], last)
		}
		last = got[0]
	}
	if last != 5 {
		t.Fatalf("final replica version %d", last)
	}
}

// TestMerkleDiffShipsOnlyChangedChunks is the S30 acceptance check in
// miniature: a 40-chunk file (two tree levels at fanout 32) with one
// chunk dirtied must refresh by shipping exactly that chunk, an
// identical-content rewrite must ship nothing (root short-circuit), and
// the DisableMerkle ablation must fall back to the full copy.
func TestMerkleDiffShipsOnlyChangedChunks(t *testing.T) {
	f := newFixtureSize(t, time.Minute, 4096, 1<<13)
	const chunks = 40
	data := make([]byte, chunks*integrity.LeafSize)
	for i := range data {
		data[i] = byte(i*7 + i/integrity.LeafSize)
	}
	f.write("big.dat", data)
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}

	// One small in-place edit in chunk 17.
	patch := []byte("merkle finds me")
	copy(data[17*integrity.LeafSize+100:], patch)
	f.writeAt("big.dat", patch, 17*integrity.LeafSize+100)
	st0 := f.repl.Stats()
	if err := f.repl.Refresh(); err != nil {
		t.Fatal(err)
	}
	st := f.repl.Stats()
	if shipped := st.ChunksFetched - st0.ChunksFetched; shipped != 1 {
		t.Fatalf("refresh shipped %d chunks, want exactly the dirty one", shipped)
	}
	if skipped := st.DiffSkippedChunks - st0.DiffSkippedChunks; skipped != chunks-1 {
		t.Fatalf("refresh skipped %d chunks, want %d", skipped, chunks-1)
	}
	if moved := st.BytesFetched - st0.BytesFetched; moved > integrity.LeafSize {
		t.Fatalf("refresh moved %d bytes for a one-chunk edit", moved)
	}
	if got, err := f.readReplica("big.dat"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replica diverged after merkle refresh (err=%v)", err)
	}

	// Rewriting identical bytes bumps DataVersion but not the root: the
	// 32-byte compare must prove the file unchanged and ship nothing.
	f.writeAt("big.dat", patch, 17*integrity.LeafSize+100)
	st0 = f.repl.Stats()
	if err := f.repl.Refresh(); err != nil {
		t.Fatal(err)
	}
	st = f.repl.Stats()
	if st.ChunksFetched != st0.ChunksFetched || st.BytesFetched != st0.BytesFetched {
		t.Fatal("identical content still moved data")
	}
	if st.DiffSkippedChunks-st0.DiffSkippedChunks != chunks {
		t.Fatal("root short-circuit did not account the whole file as skipped")
	}
	if st.FilesFetched != st0.FilesFetched {
		t.Fatal("a no-op refresh counted a fetched file")
	}

	// Ablation: with the diff disabled the same one-chunk edit re-fetches
	// the entire file.
	f.repl.opts.DisableMerkle = true
	copy(data[3*integrity.LeafSize:], patch)
	f.writeAt("big.dat", patch, 3*integrity.LeafSize)
	st0 = f.repl.Stats()
	if err := f.repl.Refresh(); err != nil {
		t.Fatal(err)
	}
	st = f.repl.Stats()
	if moved := st.BytesFetched - st0.BytesFetched; moved != uint64(len(data)) {
		t.Fatalf("ablated refresh moved %d bytes, want the full %d", moved, len(data))
	}
	if got, err := f.readReplica("big.dat"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replica diverged after full-copy refresh (err=%v)", err)
	}
}

// TestMerkleDiffHandlesTruncation shrinks a source file between
// refreshes: the diff must settle the replica at the shorter length and
// rewrite the new boundary chunk, never leaving stale tail bytes.
func TestMerkleDiffHandlesTruncation(t *testing.T) {
	f := newFixtureSize(t, time.Minute, 4096, 1<<13)
	data := make([]byte, 6*integrity.LeafSize)
	for i := range data {
		data[i] = byte(i * 13)
	}
	f.write("shrink.dat", data)
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	short := data[:2*integrity.LeafSize+777]
	f.write("shrink.dat", short)
	if err := f.repl.Refresh(); err != nil {
		t.Fatal(err)
	}
	got, err := f.readReplica("shrink.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, short) {
		t.Fatalf("replica after truncation: %d bytes, want %d", len(got), len(short))
	}
}

// BenchmarkMerkleDiff measures the S30 transfer on a 1%-dirty volume: a
// 100-chunk file with one chunk modified per refresh, Merkle diff
// against the full-copy ablation. chunks_shipped/op is the headline:
// ~1 for merkle, 100 for full.
func BenchmarkMerkleDiff(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"merkle", false}, {"full", true}} {
		b.Run(mode.name, func(b *testing.B) {
			f := newFixtureSize(b, time.Minute, 4096, 1<<13)
			const chunks = 100
			data := make([]byte, chunks*integrity.LeafSize)
			for i := range data {
				data[i] = byte(i*31 + 7)
			}
			f.write("vol.dat", data)
			f.repl.opts.DisableMerkle = mode.disable
			if err := f.repl.InitialSync(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Dirty 1 of 100 chunks (1%), a different chunk and value
				// each round so every refresh has real work.
				f.writeAt("vol.dat", []byte{byte(i + 1)}, int64(i%chunks)*integrity.LeafSize+50)
				f.now = f.now.Add(time.Second)
				b.StartTimer()
				if err := f.repl.Refresh(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := f.repl.Stats()
			shipped := float64(st.ChunksFetched)
			if mode.disable {
				shipped = float64(st.BytesFetched) / float64(integrity.LeafSize)
			}
			b.ReportMetric(shipped/float64(b.N), "chunks_shipped/op")
			b.ReportMetric(float64(st.BytesFetched)/float64(b.N), "bytes_fetched/op")
		})
	}
}

func TestSubdirectoriesReplicate(t *testing.T) {
	f := newFixture(t, time.Minute)
	local, _ := f.srv.LocalFS(f.vol.ID)
	root, _ := local.Root()
	su := vfs.Superuser()
	d, err := root.Mkdir(su, "sub", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	file, err := d.Create(su, "deep.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write(su, []byte("nested"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Symlink(su, "ln", "sub/deep.txt"); err != nil {
		t.Fatal(err)
	}
	if err := f.repl.InitialSync(); err != nil {
		t.Fatal(err)
	}
	fsys, _ := f.dstAgg.Mount(f.repl.ReplicaID())
	rroot, _ := fsys.Root()
	got, err := vfs.Walk(su, rroot, "sub/deep.txt")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	got.Read(su, buf, 0)
	if string(buf) != "nested" {
		t.Fatalf("replica nested file %q", buf)
	}
	ln, err := rroot.Lookup(su, "ln")
	if err != nil {
		t.Fatal(err)
	}
	if target, _ := ln.Readlink(su); target != "sub/deep.txt" {
		t.Fatalf("replica symlink %q", target)
	}
	_ = fs.TypeDir
}
