package proto

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"decorum/internal/auth"
	"decorum/internal/fs"
)

func TestErrCodecRoundTrip(t *testing.T) {
	for _, base := range []error{fs.ErrNotExist, fs.ErrBusy, fs.ErrPerm, fs.ErrStale} {
		enc := EncodeErr(fmt.Errorf("op failed: %w", base))
		// Simulate the rpc layer flattening to a string.
		flat := errors.New("rpc: remote dfs.Lookup: " + enc.Error())
		dec := DecodeErr(flat)
		if !errors.Is(dec, base) {
			t.Fatalf("decode lost %v: got %v", base, dec)
		}
	}
}

func TestErrCodecPassThrough(t *testing.T) {
	if EncodeErr(nil) != nil || DecodeErr(nil) != nil {
		t.Fatal("nil handling")
	}
	plain := errors.New("just text, no code")
	if got := DecodeErr(plain); got != plain {
		t.Fatalf("plain error mangled: %v", got)
	}
	// Unknown-code text passes through unchanged.
	odd := errors.New("something #notanumber# here")
	if got := DecodeErr(odd); got != odd {
		t.Fatalf("odd error mangled: %v", got)
	}
}

func TestAuthenticatorsRoundTrip(t *testing.T) {
	kdc := auth.NewKDC()
	kdc.AddPrincipal("alice", 42, "pw")
	svc := kdc.AddPrincipal("fs", 1, "svc-pw")
	tkt, session, err := kdc.Issue("alice", "fs")
	if err != nil {
		t.Fatal(err)
	}
	ca := &ClientAuthenticator{Ticket: tkt, Session: session}
	sa := &ServerAuthenticator{Key: svc.Key}

	// Client -> server call.
	body := []byte("fetch-args")
	sig, err := ca.SignCall("dfs.FetchStatus", body)
	if err != nil {
		t.Fatal(err)
	}
	id, err := sa.VerifyCall("dfs.FetchStatus", body, sig)
	if err != nil {
		t.Fatal(err)
	}
	wid := id.(WireIdentity)
	if wid.UserID() != 42 || wid.Name != "alice" {
		t.Fatalf("identity %+v", wid)
	}
	// Tampered body rejected.
	if _, err := sa.VerifyCall("dfs.FetchStatus", []byte("evil"), sig); err == nil {
		t.Fatal("tampered body accepted")
	}
	// Replay under another method rejected.
	if _, err := sa.VerifyCall("dfs.Remove", body, sig); err == nil {
		t.Fatal("cross-method replay accepted")
	}

	// Server -> client callback (session established by the call above).
	cbBody := []byte("revoke-args")
	cbSig, err := sa.SignCall("cb.Revoke", cbBody)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ca.VerifyCall("cb.Revoke", cbBody, cbSig); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.VerifyCall("cb.Revoke", []byte("evil"), cbSig); err == nil {
		t.Fatal("tampered callback accepted")
	}
}

func TestServerAuthenticatorNeedsSession(t *testing.T) {
	sa := &ServerAuthenticator{Key: auth.KeyFromPassword("k")}
	if _, err := sa.SignCall("cb.Revoke", nil); err == nil {
		t.Fatal("callback signed without a session")
	}
	if _, err := sa.VerifyCall("m", nil, []byte{0}); err == nil {
		t.Fatal("short sig accepted")
	}
	if _, err := sa.VerifyCall("m", nil, []byte{0, 0, 1, 2}); err == nil {
		t.Fatal("ticketless call accepted")
	}
}

func TestExpiredTicketRejected(t *testing.T) {
	kdc := auth.NewKDC()
	kdc.Clock = func() time.Time { return time.Unix(0, 0) }
	kdc.TicketLifetime = time.Minute
	kdc.AddPrincipal("alice", 42, "pw")
	svc := kdc.AddPrincipal("fs", 1, "svc-pw")
	tkt, session, _ := kdc.Issue("alice", "fs")
	ca := &ClientAuthenticator{Ticket: tkt, Session: session}
	sa := &ServerAuthenticator{Key: svc.Key, Clock: func() time.Time { return time.Unix(3600, 0) }}
	sig, _ := ca.SignCall("m", nil)
	if _, err := sa.VerifyCall("m", nil, sig); !errors.Is(err, auth.ErrExpired) {
		t.Fatalf("expired ticket: %v", err)
	}
}

func TestAttrChangeOf(t *testing.T) {
	ch := AttrChangeOf(100, 200)
	if *ch.Length != 100 || *ch.Mtime != 200 || !ch.Any() {
		t.Fatalf("change %+v", ch)
	}
}
