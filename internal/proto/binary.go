// Fixed-layout binary codecs for the bulk-data messages — the payload of
// the rpc binary lane (rpc/wire.go). Only FetchData, StoreData, and
// StoreBatch have binary encodings: everything else is control traffic
// and stays on gob, where evolving a struct costs nothing. Here the wire
// layout is part of the protocol version (rpc.WireVersion), hand-rolled
// and big-endian throughout.
//
// The encoders carry only the *meta* side of each message: the raw data
// bytes travel beside the meta in the binary frame, scatter/gather on
// send and in their own exactly-sized buffer on receive, so a chunk is
// never copied through an encoder in either direction.
//
// Decoders validate lengths before reading and return an error on any
// truncation; the rpc layer turns a codec error into an ordinary remote
// error reply, never a desynchronized stream (framing is delimited one
// level below).
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"decorum/internal/fs"
	"decorum/internal/token"
)

var errShortMeta = errors.New("proto: truncated binary meta")

// Fixed section sizes.
const (
	fidWire   = 24 // Volume, Vnode, Uniq
	rangeWire = 16 // Start, End
	wantWire  = 4 + rangeWire
	attrWire  = fidWire + 1 + 2 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8 // 79
	grantWire = 8 + fidWire + 4 + rangeWire + 8 + 8 + 8 + 8         // token + grant serial
)

func appendFID(b []byte, f fs.FID) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(f.Volume))
	b = binary.BigEndian.AppendUint64(b, f.Vnode)
	return binary.BigEndian.AppendUint64(b, f.Uniq)
}

func appendWant(b []byte, w TokenRequest) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(w.Types))
	b = binary.BigEndian.AppendUint64(b, uint64(w.Range.Start))
	return binary.BigEndian.AppendUint64(b, uint64(w.Range.End))
}

func appendAttr(b []byte, a fs.Attr) []byte {
	b = appendFID(b, a.FID)
	b = append(b, byte(a.Type))
	b = binary.BigEndian.AppendUint16(b, uint16(a.Mode))
	b = binary.BigEndian.AppendUint32(b, a.Nlink)
	b = binary.BigEndian.AppendUint32(b, uint32(a.Owner))
	b = binary.BigEndian.AppendUint32(b, uint32(a.Group))
	b = binary.BigEndian.AppendUint64(b, uint64(a.Length))
	b = binary.BigEndian.AppendUint64(b, uint64(a.Blocks))
	b = binary.BigEndian.AppendUint64(b, uint64(a.Atime))
	b = binary.BigEndian.AppendUint64(b, uint64(a.Mtime))
	b = binary.BigEndian.AppendUint64(b, uint64(a.Ctime))
	return binary.BigEndian.AppendUint64(b, a.DataVersion)
}

func appendGrants(b []byte, gs []Grant) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(len(gs)))
	for _, g := range gs {
		t := g.Token
		b = binary.BigEndian.AppendUint64(b, uint64(t.ID))
		b = appendFID(b, t.FID)
		b = binary.BigEndian.AppendUint32(b, uint32(t.Types))
		b = binary.BigEndian.AppendUint64(b, uint64(t.Range.Start))
		b = binary.BigEndian.AppendUint64(b, uint64(t.Range.End))
		b = binary.BigEndian.AppendUint64(b, t.HostID)
		b = binary.BigEndian.AppendUint64(b, t.Serial)
		b = binary.BigEndian.AppendUint64(b, uint64(t.Expiry))
		b = binary.BigEndian.AppendUint64(b, g.Serial)
	}
	return b
}

// cursor is a bounds-checked big-endian reader over a meta section.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if len(c.b) < n {
		c.err = errShortMeta
		return nil
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out
}

func (c *cursor) u8() uint8 {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *cursor) u16() uint16 {
	b := c.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) fid() fs.FID {
	return fs.FID{Volume: fs.VolumeID(c.u64()), Vnode: c.u64(), Uniq: c.u64()}
}

func (c *cursor) want() TokenRequest {
	return TokenRequest{
		Types: token.Type(c.u32()),
		Range: token.Range{Start: c.i64(), End: c.i64()},
	}
}

func (c *cursor) attr() fs.Attr {
	return fs.Attr{
		FID:         c.fid(),
		Type:        fs.FileType(c.u8()),
		Mode:        fs.Mode(c.u16()),
		Nlink:       c.u32(),
		Owner:       fs.UserID(c.u32()),
		Group:       fs.GroupID(c.u32()),
		Length:      c.i64(),
		Blocks:      c.i64(),
		Atime:       c.i64(),
		Mtime:       c.i64(),
		Ctime:       c.i64(),
		DataVersion: c.u64(),
	}
}

func (c *cursor) grants() []Grant {
	n := int(c.u16())
	if c.err != nil || n == 0 {
		return nil
	}
	if len(c.b) < n*grantWire {
		c.err = errShortMeta
		return nil
	}
	gs := make([]Grant, n)
	for i := range gs {
		gs[i] = Grant{
			Token: token.Token{
				ID:     token.ID(c.u64()),
				FID:    c.fid(),
				Types:  token.Type(c.u32()),
				Range:  token.Range{Start: c.i64(), End: c.i64()},
				HostID: c.u64(),
				Serial: c.u64(),
				Expiry: c.i64(),
			},
			Serial: c.u64(),
		}
	}
	return gs
}

// FetchData — call meta: FID, offset, length, want.

// EncodeFetchDataArgs appends the binary meta for a FetchData call to b.
func EncodeFetchDataArgs(b []byte, a *FetchDataArgs) []byte {
	b = appendFID(b, a.FID)
	b = binary.BigEndian.AppendUint64(b, uint64(a.Offset))
	b = binary.BigEndian.AppendUint32(b, uint32(a.Length))
	return appendWant(b, a.Want)
}

// DecodeFetchDataArgs parses a FetchData call meta. The reply's Data
// travels as the frame payload, not through this codec.
func DecodeFetchDataArgs(meta []byte) (FetchDataArgs, error) {
	c := cursor{b: meta}
	a := FetchDataArgs{
		FID:    c.fid(),
		Offset: c.i64(),
		Length: int(c.u32()),
		Want:   c.want(),
	}
	return a, c.err
}

// EncodeFetchDataReply appends the binary meta for a FetchData reply
// (attr, serial, grants, optional chunk hash); r.Data rides beside it
// as the frame payload. The hash is a trailing presence-byte section:
// peers from before the integrity subsystem simply stop reading after
// the grants, and their replies simply end there, so both directions
// stay compatible without a wire-version bump.
func EncodeFetchDataReply(b []byte, r *FetchDataReply) []byte {
	b = appendAttr(b, r.Attr)
	b = binary.BigEndian.AppendUint64(b, r.Serial)
	b = appendGrants(b, r.Grants)
	if len(r.Hash) == 32 {
		b = append(b, 1)
		b = append(b, r.Hash...)
	} else {
		b = append(b, 0)
	}
	return b
}

// DecodeFetchDataReply parses a FetchData reply meta, attaching data as
// the reply payload (no copy).
func DecodeFetchDataReply(meta, data []byte) (FetchDataReply, error) {
	c := cursor{b: meta}
	r := FetchDataReply{
		Attr:   c.attr(),
		Serial: c.u64(),
		Grants: c.grants(),
		Data:   data,
	}
	if c.err == nil && len(c.b) > 0 && c.u8() == 1 {
		r.Hash = append([]byte(nil), c.take(32)...)
	}
	return r, c.err
}

// StoreData — call meta: FID, offset, flags, want; data is the payload.

// EncodeStoreDataArgs appends the binary meta for a StoreData call;
// a.Data is shipped as the frame payload, scatter/gather.
func EncodeStoreDataArgs(b []byte, a *StoreDataArgs) []byte {
	b = appendFID(b, a.FID)
	b = binary.BigEndian.AppendUint64(b, uint64(a.Offset))
	var flags uint8
	if a.FromRevocation {
		flags = 1
	}
	b = append(b, flags)
	return appendWant(b, a.Want)
}

// DecodeStoreDataArgs parses a StoreData call meta, attaching data as the
// write payload (no copy).
func DecodeStoreDataArgs(meta, data []byte) (StoreDataArgs, error) {
	c := cursor{b: meta}
	a := StoreDataArgs{FID: c.fid(), Offset: c.i64()}
	a.FromRevocation = c.u8()&1 != 0
	a.Want = c.want()
	a.Data = data
	return a, c.err
}

// EncodeStoreDataReply appends the binary meta for a StoreData reply.
func EncodeStoreDataReply(b []byte, r *StoreDataReply) []byte {
	b = appendAttr(b, r.Attr)
	b = binary.BigEndian.AppendUint64(b, r.Serial)
	return appendGrants(b, r.Grants)
}

// DecodeStoreDataReply parses a StoreData reply meta.
func DecodeStoreDataReply(meta []byte) (StoreDataReply, error) {
	c := cursor{b: meta}
	r := StoreDataReply{Attr: c.attr(), Serial: c.u64(), Grants: c.grants()}
	return r, c.err
}

// StoreBatch — call meta: FID, flags, want, span table; data is the
// spans' payloads concatenated in order.

// EncodeStoreBatchArgs appends the binary meta for a StoreBatch call;
// a.Data (the concatenated spans) ships as the frame payload.
func EncodeStoreBatchArgs(b []byte, a *StoreBatchArgs) []byte {
	b = appendFID(b, a.FID)
	var flags uint8
	if a.FromRevocation {
		flags = 1
	}
	b = append(b, flags)
	b = appendWant(b, a.Want)
	b = binary.BigEndian.AppendUint16(b, uint16(len(a.Spans)))
	for _, s := range a.Spans {
		b = binary.BigEndian.AppendUint64(b, uint64(s.Offset))
		b = binary.BigEndian.AppendUint32(b, uint32(s.Length))
	}
	return b
}

// DecodeStoreBatchArgs parses a StoreBatch call meta and validates that
// the span table exactly covers the payload.
func DecodeStoreBatchArgs(meta, data []byte) (StoreBatchArgs, error) {
	c := cursor{b: meta}
	a := StoreBatchArgs{FID: c.fid()}
	a.FromRevocation = c.u8()&1 != 0
	a.Want = c.want()
	n := int(c.u16())
	total := 0
	for i := 0; i < n && c.err == nil; i++ {
		s := StoreSpan{Offset: c.i64(), Length: int(c.u32())}
		if s.Length < 0 {
			c.err = errShortMeta
			break
		}
		total += s.Length
		a.Spans = append(a.Spans, s)
	}
	if c.err != nil {
		return a, c.err
	}
	if total != len(data) {
		return a, fmt.Errorf("proto: batch spans cover %d bytes, payload is %d", total, len(data))
	}
	a.Data = data
	return a, nil
}

// EncodeStoreBatchReply appends the binary meta for a StoreBatch reply.
func EncodeStoreBatchReply(b []byte, r *StoreBatchReply) []byte {
	b = appendAttr(b, r.Attr)
	b = binary.BigEndian.AppendUint64(b, r.Serial)
	return appendGrants(b, r.Grants)
}

// DecodeStoreBatchReply parses a StoreBatch reply meta.
func DecodeStoreBatchReply(meta []byte) (StoreBatchReply, error) {
	c := cursor{b: meta}
	r := StoreBatchReply{Attr: c.attr(), Serial: c.u64(), Grants: c.grants()}
	return r, c.err
}
