package proto

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"decorum/internal/auth"
	"decorum/internal/fs"
)

// RPC authenticators binding internal/auth tickets to internal/rpc
// associations. The wire format of the Auth field is:
//
//	[2-byte big-endian ticket length][sealed ticket][32-byte HMAC]
//
// Client-to-server calls carry the ticket (length > 0); server-to-client
// callbacks carry only the HMAC under the session key (length == 0),
// which the client can verify because it obtained the session key from
// the KDC.

// WireIdentity is the verified caller identity attached to server-side
// calls.
type WireIdentity struct {
	auth.Identity
}

// UserID exposes the identity for vfs contexts.
func (w WireIdentity) UserID() fs.UserID { return w.ID }

// ClientAuthenticator signs client calls with a ticket + session HMAC and
// verifies server callbacks with the session HMAC.
type ClientAuthenticator struct {
	Ticket  auth.Ticket
	Session []byte
}

// SignCall implements rpc.Authenticator.
func (c *ClientAuthenticator) SignCall(method string, body []byte) ([]byte, error) {
	mac := auth.Sign(c.Session, append([]byte(method), body...))
	n := len(c.Ticket.Sealed)
	out := make([]byte, 2, 2+n+len(mac))
	out[0], out[1] = byte(n>>8), byte(n)
	out = append(out, c.Ticket.Sealed...)
	return append(out, mac...), nil
}

// VerifyCall implements rpc.Authenticator for server callbacks.
func (c *ClientAuthenticator) VerifyCall(method string, body, sig []byte) (any, error) {
	if len(sig) < 2 || sig[0] != 0 || sig[1] != 0 {
		return nil, errors.New("proto: callback carried a ticket")
	}
	if err := auth.CheckSig(c.Session, append([]byte(method), body...), sig[2:]); err != nil {
		return nil, err
	}
	return nil, nil
}

// SignCallParts implements rpc.PartsAuthenticator: the same authenticator
// as SignCall, with the MAC streamed over method+parts so the binary
// lane's bulk payload is signed without a concatenating copy.
func (c *ClientAuthenticator) SignCallParts(method string, parts ...[]byte) ([]byte, error) {
	mac := auth.SignParts(c.Session, append([][]byte{[]byte(method)}, parts...)...)
	n := len(c.Ticket.Sealed)
	out := make([]byte, 2, 2+n+len(mac))
	out[0], out[1] = byte(n>>8), byte(n)
	out = append(out, c.Ticket.Sealed...)
	return append(out, mac...), nil
}

// VerifyCallParts implements rpc.PartsAuthenticator for server callbacks
// arriving on the binary lane.
func (c *ClientAuthenticator) VerifyCallParts(method string, sig []byte, parts ...[]byte) (any, error) {
	if len(sig) < 2 || sig[0] != 0 || sig[1] != 0 {
		return nil, errors.New("proto: callback carried a ticket")
	}
	if err := auth.CheckSigParts(c.Session, sig[2:], append([][]byte{[]byte(method)}, parts...)...); err != nil {
		return nil, err
	}
	return nil, nil
}

// ServerAuthenticator verifies client tickets with the service key and
// signs callbacks with the association's session key (learned from the
// first verified call).
type ServerAuthenticator struct {
	Key   []byte
	Clock func() time.Time

	mu      sync.Mutex
	session []byte
}

func (s *ServerAuthenticator) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// SignCall implements rpc.Authenticator for server-initiated callbacks.
func (s *ServerAuthenticator) SignCall(method string, body []byte) ([]byte, error) {
	s.mu.Lock()
	session := s.session
	s.mu.Unlock()
	if session == nil {
		return nil, errors.New("proto: no session established for callback")
	}
	mac := auth.Sign(session, append([]byte(method), body...))
	return append([]byte{0, 0}, mac...), nil
}

// VerifyCall implements rpc.Authenticator for incoming client calls.
func (s *ServerAuthenticator) VerifyCall(method string, body, sig []byte) (any, error) {
	if len(sig) < 2 {
		return nil, errors.New("proto: short authenticator")
	}
	n := int(sig[0])<<8 | int(sig[1])
	if len(sig) < 2+n || n == 0 {
		return nil, errors.New("proto: missing ticket")
	}
	id, err := auth.Verify(s.Key, auth.Ticket{Sealed: sig[2 : 2+n]}, s.now())
	if err != nil {
		return nil, err
	}
	if err := auth.CheckSig(id.SessionKey, append([]byte(method), body...), sig[2+n:]); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.session = id.SessionKey
	s.mu.Unlock()
	return WireIdentity{Identity: id}, nil
}

// SignCallParts implements rpc.PartsAuthenticator for callbacks on the
// binary lane.
func (s *ServerAuthenticator) SignCallParts(method string, parts ...[]byte) ([]byte, error) {
	s.mu.Lock()
	session := s.session
	s.mu.Unlock()
	if session == nil {
		return nil, errors.New("proto: no session established for callback")
	}
	mac := auth.SignParts(session, append([][]byte{[]byte(method)}, parts...)...)
	return append([]byte{0, 0}, mac...), nil
}

// VerifyCallParts implements rpc.PartsAuthenticator for incoming binary
// client calls: the ticket rides in the sig exactly as on the gob lane;
// only the MAC input is streamed instead of concatenated.
func (s *ServerAuthenticator) VerifyCallParts(method string, sig []byte, parts ...[]byte) (any, error) {
	if len(sig) < 2 {
		return nil, errors.New("proto: short authenticator")
	}
	n := int(sig[0])<<8 | int(sig[1])
	if len(sig) < 2+n || n == 0 {
		return nil, errors.New("proto: missing ticket")
	}
	id, err := auth.Verify(s.Key, auth.Ticket{Sealed: sig[2 : 2+n]}, s.now())
	if err != nil {
		return nil, err
	}
	if err := auth.CheckSigParts(id.SessionKey, sig[2+n:], append([][]byte{[]byte(method)}, parts...)...); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.session = id.SessionKey
	s.mu.Unlock()
	return WireIdentity{Identity: id}, nil
}

// Error transport: expected file-system errors cross the wire as a code
// prefix so the far side can rebuild errors.Is-compatible values.

// EncodeErr wraps err with its wire code for transport.
func EncodeErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("#%d#%v", fs.CodeOf(err), err)
}

// DecodeErr recovers the canonical error from a remote error message.
// Unknown shapes pass through unchanged.
func DecodeErr(err error) error {
	if err == nil {
		return nil
	}
	msg := err.Error()
	// The rpc layer prefixes messages; find the "#code#" segment.
	start := strings.Index(msg, "#")
	if start < 0 {
		return err
	}
	rest := msg[start+1:]
	end := strings.Index(rest, "#")
	if end < 0 {
		return err
	}
	code, cerr := strconv.Atoi(rest[:end])
	if cerr != nil {
		return err
	}
	ec := fs.ErrorCode(code)
	if ec == fs.CodeOK || ec == fs.CodeUnknown {
		return err
	}
	return fmt.Errorf("%w (remote: %s)", fs.ErrOf(ec), rest[end+1:])
}
