// Package proto defines the DEcorum file protocol: the RPC methods the
// protocol exporter serves (§3.5 "server procedures"), the callback
// methods the cache manager serves (§5.3 "servers call clients to revoke
// tokens"), and their argument/reply types.
//
// Every reply that touches a file carries that file's serialization
// counter (§6.2): "the file server marks every reference to a file with a
// time stamp ... if operation Ox is serialized before Oy then the
// per-file time stamp returned by Ox will be less than the time stamp
// returned by Oy." Multi-file operations (rename) return one stamp per
// file.
package proto

import (
	"decorum/internal/fs"
	"decorum/internal/token"
)

// Client-to-server methods.
const (
	// MRegister introduces a client host and returns its host ID.
	MRegister = "dfs.Register"
	// MGetRoot resolves a volume's root directory.
	MGetRoot = "dfs.GetRoot"
	// MFetchStatus reads attributes, optionally granting tokens.
	MFetchStatus = "dfs.FetchStatus"
	// MFetchData reads data, optionally granting tokens.
	MFetchData = "dfs.FetchData"
	// MStoreData writes data back to the server.
	MStoreData = "dfs.StoreData"
	// MStoreStatus writes attributes back.
	MStoreStatus = "dfs.StoreStatus"
	// MGetTokens acquires tokens without data transfer.
	MGetTokens = "dfs.GetTokens"
	// MReturnTokens gives tokens back voluntarily.
	MReturnTokens = "dfs.ReturnTokens"
	// MLookup resolves one name.
	MLookup = "dfs.Lookup"
	// MCreate / MMakeDir / MSymlink / MLink create entries.
	MCreate  = "dfs.Create"
	MMakeDir = "dfs.MakeDir"
	MSymlink = "dfs.Symlink"
	MLink    = "dfs.Link"
	// MRemove / MRemoveDir delete entries.
	MRemove    = "dfs.Remove"
	MRemoveDir = "dfs.RemoveDir"
	// MRename moves an entry.
	MRename = "dfs.Rename"
	// MReadDir lists a directory.
	MReadDir = "dfs.ReadDir"
	// MReadlink reads a symlink target.
	MReadlink = "dfs.Readlink"
	// MGetACL / MSetACL are the VFS+ ACL extension.
	MGetACL = "dfs.GetACL"
	MSetACL = "dfs.SetACL"
	// MSetLock / MReleaseLock manage server-side file locks.
	MSetLock     = "dfs.SetLock"
	MReleaseLock = "dfs.ReleaseLock"
	// MStatfs reports capacity.
	MStatfs = "dfs.Statfs"
	// MReclaimTokens re-establishes the tokens a client held before the
	// server restarted (token state recovery). During the server's grace
	// period this is the only token-granting call it serves.
	MReclaimTokens = "dfs.ReclaimTokens"
	// MStoreBatch writes several spans of one file in a single call. It
	// exists only on the binary lane (see binary.go); gob-only peers
	// issue per-span MStoreData calls instead.
	MStoreBatch = "dfs.StoreBatch"
	// MHashTree reads a file's chunk hash tree: the 32-byte root, or a
	// set of nodes at one level, so replicas and striped clients can
	// diff content without moving it (integrity subsystem).
	MHashTree = "dfs.HashTree"
	// MStoreHashes installs leaf hashes on a file. Striped clients push
	// these to the primary at flush time: striped data bypasses the
	// primary, so the primary's logical hash tree is client-fed.
	MStoreHashes = "dfs.StoreHashes"
)

// Binary-lane method IDs (rpc.HandleBin / rpc.CallBin). The bulk-data
// calls — and only those — have fixed-layout binary encodings beside
// their gob ones; binary.go holds the codecs.
const (
	BinFetchData  uint16 = 1
	BinStoreData  uint16 = 2
	BinStoreBatch uint16 = 3
)

// Volume-administration methods (§3.6 volume server).
const (
	VCreate     = "vol.Create"
	VDelete     = "vol.Delete"
	VClone      = "vol.Clone"
	VList       = "vol.List"
	VDump       = "vol.Dump"
	VRestore    = "vol.Restore"
	VSetOffline = "vol.SetOffline"
	// VMoveTo asks this server to move a volume to another server.
	VMoveTo = "vol.MoveTo"
)

// Server-to-client callback methods.
const (
	// CBRevoke asks the client to return a token.
	CBRevoke = "cb.Revoke"
	// CBProbe checks client liveness.
	CBProbe = "cb.Probe"
)

// RegisterArgs introduces a client.
type RegisterArgs struct {
	// ClientName is a diagnostic label (hostnames in the paper's world).
	ClientName string
}

// RegisterReply returns the server-assigned host ID and the server's
// restart epoch: a value that changes on every server incarnation, so a
// client can tell a reconnect to the same incarnation (tokens may still
// be live) from a reconnect after a restart (tokens must be reclaimed).
type RegisterReply struct {
	HostID uint64
	Epoch  uint64
}

// TokenRequest names the guarantee a client wants with an operation.
type TokenRequest struct {
	Types token.Type
	Range token.Range
}

// Grant is a token the server handed out, with the serialization stamp of
// the grant.
type Grant struct {
	Token  token.Token
	Serial uint64
}

// GetRootArgs resolves a volume root.
type GetRootArgs struct {
	Volume fs.VolumeID
}

// GetRootReply carries the root FID and status.
type GetRootReply struct {
	FID    fs.FID
	Attr   fs.Attr
	Serial uint64
}

// FetchStatusArgs reads a file's status.
type FetchStatusArgs struct {
	FID  fs.FID
	Want TokenRequest // zero Types = no token wanted
}

// FetchStatusReply returns status (+ token, if requested).
type FetchStatusReply struct {
	Attr   fs.Attr
	Grants []Grant
	Serial uint64
}

// FetchDataArgs reads file data.
type FetchDataArgs struct {
	FID    fs.FID
	Offset int64
	Length int
	Want   TokenRequest
}

// FetchDataReply returns data and fresh status. Hash, when present (32
// bytes), is the expected SHA-256 of Data — returned only for
// chunk-aligned fetches of a hashed chunk, and verified by the client
// before cache install. Nil means "no hash recorded"; old peers simply
// never set it.
type FetchDataReply struct {
	Data   []byte
	Attr   fs.Attr
	Grants []Grant
	Serial uint64
	Hash   []byte
}

// StoreDataArgs writes data back. FromRevocation marks the special call
// issued only by token-revocation code (§6.3): it is served on the
// reserved pool and bypasses the server vnode lock its own revocation
// holds. Want, when nonzero, piggybacks a token request on the write —
// a client flushing without write tokens regains them on the same
// round-trip instead of paying a separate GetTokens (never set on
// revocation store-backs, which must not acquire anything).
type StoreDataArgs struct {
	FID            fs.FID
	Offset         int64
	Data           []byte
	FromRevocation bool
	Want           TokenRequest
}

// StoreDataReply returns the post-write status, plus any tokens granted
// for the piggybacked Want.
type StoreDataReply struct {
	Attr   fs.Attr
	Serial uint64
	Grants []Grant
}

// StoreSpan names one contiguous write inside a StoreBatch.
type StoreSpan struct {
	Offset int64
	Length int
}

// StoreBatchArgs writes several spans of one file in a single call — the
// binary lane ships them scatter/gather, so a multi-chunk flush is one
// frame (and one writev) instead of N encodes. Data is the spans'
// payloads concatenated in order. Peers without the binary lane fall back
// to per-span StoreData calls; there is no gob method for the batch.
type StoreBatchArgs struct {
	FID            fs.FID
	Spans          []StoreSpan
	Data           []byte
	FromRevocation bool
	Want           TokenRequest
}

// StoreBatchReply returns the status after the last span.
type StoreBatchReply struct {
	Attr   fs.Attr
	Serial uint64
	Grants []Grant
}

// HashTreeArgs reads part of a file's chunk hash tree. With empty
// Indices only the root and leaf count come back; otherwise the nodes
// at Level (0 = leaves) for the given node indices, 32 bytes each.
type HashTreeArgs struct {
	FID     fs.FID
	Level   int
	Indices []int64
}

// HashTreeReply returns the requested tree slice. Root is 32 bytes (all
// zero for an empty or never-hashed file); Hashes is the requested
// nodes concatenated in Indices order, zero hashes for out-of-range or
// unrecorded nodes.
type HashTreeReply struct {
	Root   []byte
	Leaves int64
	Hashes []byte
	Serial uint64
}

// StoreHashesArgs installs leaf hashes starting at leaf index Start;
// Hashes is 32 bytes per leaf, concatenated.
type StoreHashesArgs struct {
	FID    fs.FID
	Start  int64
	Hashes []byte
}

// StoreHashesReply is stamped like every mutation.
type StoreHashesReply struct {
	Serial uint64
}

// StoreStatusArgs writes attributes back.
type StoreStatusArgs struct {
	FID            fs.FID
	Change         fs.AttrChange
	FromRevocation bool
}

// StoreStatusReply returns the resulting status.
type StoreStatusReply struct {
	Attr   fs.Attr
	Serial uint64
}

// AttrChangeOf builds the length+mtime change a status-write-back sends.
func AttrChangeOf(length, mtime int64) fs.AttrChange {
	return fs.AttrChange{Length: &length, Mtime: &mtime}
}

// GetTokensArgs acquires tokens with no data transfer.
type GetTokensArgs struct {
	FID  fs.FID
	Want TokenRequest
}

// GetTokensReply returns the grant.
type GetTokensReply struct {
	Grants []Grant
	Serial uint64
}

// ReturnTokensArgs gives tokens back.
type ReturnTokensArgs struct {
	IDs []token.ID
}

// ReturnTokensReply is empty.
type ReturnTokensReply struct{}

// NameArgs is the common directory+name argument.
type NameArgs struct {
	Dir  fs.FID
	Name string
	// Mode applies to Create/MakeDir; Target to Symlink; LinkTo to Link.
	Mode   fs.Mode
	Target string
	LinkTo fs.FID
}

// NameReply returns the affected child and directory status.
type NameReply struct {
	FID       fs.FID // the child (zero for Remove)
	Attr      fs.Attr
	DirAttr   fs.Attr
	Grants    []Grant // status-read token on the child, when granted
	Serial    uint64  // child's stamp
	DirSerial uint64  // directory's stamp
}

// RenameArgs moves an entry.
type RenameArgs struct {
	OldDir  fs.FID
	OldName string
	NewDir  fs.FID
	NewName string
}

// RenameReply stamps every file the rename touched (§6.2).
type RenameReply struct {
	OldDirAttr   fs.Attr
	NewDirAttr   fs.Attr
	OldDirSerial uint64
	NewDirSerial uint64
}

// ReadDirArgs lists a directory.
type ReadDirArgs struct {
	Dir fs.FID
}

// ReadDirReply returns the entries and the directory status.
type ReadDirReply struct {
	Entries []fs.Dirent
	Attr    fs.Attr
	Serial  uint64
}

// ReadlinkArgs reads a symlink.
type ReadlinkArgs struct {
	FID fs.FID
}

// ReadlinkReply returns the target.
type ReadlinkReply struct {
	Target string
	Serial uint64
}

// ACLArgs reads or writes an ACL.
type ACLArgs struct {
	FID fs.FID
	ACL fs.ACL // SetACL only
}

// ACLReply returns the (new) ACL.
type ACLReply struct {
	ACL    fs.ACL
	Serial uint64
}

// LockArgs sets or clears a server-side file lock.
type LockArgs struct {
	FID   fs.FID
	Range token.Range
	Write bool
}

// LockReply is empty but stamped.
type LockReply struct {
	Serial uint64
}

// StatfsArgs names a volume.
type StatfsArgs struct {
	Volume fs.VolumeID
}

// StatfsReply carries the numbers.
type StatfsReply struct {
	Statfs fs.Statfs
}

// ReclaimArgs re-presents every token the client held before it lost the
// server association. OldHostID, when nonzero, names the client's
// previous host ID on this server so a surviving (same-epoch) server can
// retire the dead association's state before validating the claims; a
// restarted server has no such state and ignores it.
type ReclaimArgs struct {
	OldHostID uint64
	Tokens    []token.Token
}

// ReclaimReply partitions the claims. Accepted tokens are fresh grants
// (new IDs, stamps past everything the claimant saw pre-restart)
// replacing the claimed ones one-for-one. Rejected claims conflicted
// with state another host already re-established — the claimant must
// discard the cache those tokens covered, never merge it.
type ReclaimReply struct {
	Accepted []Grant
	Rejected []token.Token
	Epoch    uint64
}

// RevokeArgs is the server-to-client revocation (§5.3).
type RevokeArgs struct {
	Token  token.Token
	Serial uint64
}

// RevokeReply reports whether the client returned the token; false is the
// normal answer when it still has the file open or locked.
type RevokeReply struct {
	Returned bool
}

// Volume administration.

// VolCreateArgs makes a volume on the target server.
type VolCreateArgs struct {
	Name  string
	Quota int64
	// ID, when nonzero, is the cell-wide ID assigned by the VLDB.
	ID fs.VolumeID
}

// VolInfo mirrors vfs.VolumeInfo on the wire.
type VolInfo struct {
	ID        fs.VolumeID
	Name      string
	ReadOnly  bool
	CloneOf   fs.VolumeID
	RootVnode uint64
	Quota     int64
}

// VolCreateReply returns the new volume.
type VolCreateReply struct {
	Info VolInfo
}

// VolIDArgs names a volume by ID.
type VolIDArgs struct {
	ID fs.VolumeID
	// Name is used by Clone (the clone's name) and SetOffline ignores it.
	Name    string
	Offline bool
}

// VolListReply enumerates volumes.
type VolListReply struct {
	Volumes []VolInfo
}

// VolDumpReply carries a serialized volume.
type VolDumpReply struct {
	Dump []byte
}

// VolRestoreArgs materializes a dump.
type VolRestoreArgs struct {
	Dump []byte
	Name string
}

// VolMoveArgs moves a volume to another server (§3.6).
type VolMoveArgs struct {
	ID         fs.VolumeID
	TargetAddr string
}
