// Package wal implements the Episode transaction log (§2.2 of the paper).
//
// The log is an area of disk whose size is fixed at aggregate
// initialization, used as a circular byte stream. Changes to meta-data are
// logged; changes to user data are not. A log record gives the old and new
// values for all bytes in the change and the identity of its transaction;
// a separate record notes when a transaction commits.
//
// Recovery replays the log: the history is first repeated (all updates
// re-applied in LSN order), then uncommitted transactions are undone in
// reverse LSN order using the old values. The time spent is proportional to
// the size of the active portion of the log, not to the size of the file
// system — the paper's central availability claim (experiment C1).
//
// Transactions are expected to be short-lived: callers break long
// operations (e.g. big truncates) into sequences of small transactions,
// which is what lets the log stay small and fixed-size without complex
// truncation logic. If an append does not fit, ErrLogFull tells the caller
// (the buffer package) to flush buffers and checkpoint.
//
// Durability: commit records are buffered in memory and batch-committed;
// Flush forces the log to disk up to a given LSN. The buffer package uses
// Flush to enforce the write-ahead rule before destaging any dirty buffer.
//
// Concurrent Flush callers are coalesced (group commit): one caller
// becomes the leader and performs a single device write+sync covering
// every record appended so far, while the others park on a condition
// variable until their target LSN is durable. The device I/O runs with
// the log mutex released — appenders keep appending and new committers
// queue up behind the in-flight flush, so the next leader's batch grows
// with concurrency. Stats.GroupCommits and Stats.SyncsSaved expose the
// amortization (§2.2's batch commit, measured in experiment C9).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"decorum/internal/blockdev"
	"decorum/internal/obs"
)

// LSN is a log sequence number: a byte offset into the infinite logical log
// stream. Physical position is LSN modulo the log's data capacity.
type LSN uint64

// TxID identifies a transaction within one log.
type TxID uint64

// Errors returned by the log.
var (
	ErrLogFull   = errors.New("wal: log full, checkpoint required")
	ErrTooBig    = errors.New("wal: record larger than log capacity")
	ErrBadFormat = errors.New("wal: bad log format")
	ErrTxDone    = errors.New("wal: transaction already committed")
	ErrActiveTx  = errors.New("wal: transactions still active")
	ErrBadRange  = errors.New("wal: update range out of block bounds")
)

const (
	recMagic   uint32 = 0x45504C47 // "EPLG"
	hdrMagic   uint32 = 0x45504C48 // "EPLH"
	hdrVersion uint32 = 1

	recUpdate byte = 1
	recCommit byte = 2

	// recHdrSize is magic(4) + type(1) + lsn(8) + txid(8).
	recHdrSize = 4 + 1 + 8 + 8
	// updHdrSize is block(8) + offset(4) + length(4).
	updHdrSize = 8 + 4 + 4
	crcSize    = 4
)

// Record is one decoded log record, exposed for the logdump tool and tests.
type Record struct {
	LSN    LSN
	Type   byte
	Tx     TxID
	Block  int64  // update only
	Offset int    // update only
	Old    []byte // update only
	New    []byte // update only
}

// Log is the transaction log for one aggregate. It occupies nBlocks blocks
// of dev starting at start; the first block holds the header, the rest is
// the circular data area. The whole region is mirrored in memory, so reads
// never touch the device and Flush writes only the dirty ranges.
type Log struct {
	dev   blockdev.Device
	start int64
	bs    int
	cap   uint64 // data area capacity in bytes

	mu      sync.Mutex
	img     []byte       // guarded by mu (in-memory image of the data area)
	tail    LSN          // guarded by mu (oldest byte still needed)
	head    LSN          // guarded by mu (next byte to append)
	flushed LSN          // guarded by mu (durable up to here)
	nextTx  TxID         // guarded by mu
	active  map[TxID]LSN // guarded by mu (active tx -> first LSN)

	// Group-commit state. flushCond signals waiters when a leader's flush
	// completes; it is created lazily under mu.
	flushCond    *sync.Cond
	flushing     bool   // guarded by mu (a leader's device I/O is in flight)
	flushWaiters int    // guarded by mu (committers parked on flushCond)
	scratch      []byte // guarded by mu (reusable flush staging buffer)

	// Activity metrics (obs primitives: atomic, mostly bumped under mu
	// anyway). Allocated by Open; LogStats() reads the same cells a
	// registry sees after Instrument.
	appends      *obs.Counter   // records appended
	flushes      *obs.Counter   // device flushes
	groupCommits *obs.Counter   // flushes that covered parked waiters
	syncsSaved   *obs.Counter   // waiters spared their own sync
	commitNs     *obs.Histogram // Tx.Commit latency (append + lock wait)
	flushNs      *obs.Histogram // Flush/Sync latency (group-commit wait + device I/O)
}

// Stats reports log activity counters.
type Stats struct {
	Appends uint64
	Flushes uint64
	// GroupCommits counts flushes whose batch made at least one parked
	// waiter durable in addition to the leader.
	GroupCommits uint64
	// SyncsSaved counts Flush calls that returned without issuing their
	// own device sync because a concurrent leader's batch covered them.
	SyncsSaved uint64
	Head       LSN
	Tail       LSN
	Durable    LSN
}

// MinBlocks is the smallest legal log region (header + 3 data blocks).
const MinBlocks = 4

// Format initializes a log region on dev: an empty log with tail = head = 0.
func Format(dev blockdev.Device, start, nBlocks int64) error {
	if nBlocks < MinBlocks {
		return fmt.Errorf("%w: need at least %d blocks, got %d", ErrBadFormat, MinBlocks, nBlocks)
	}
	if start < 0 || start+nBlocks > dev.Blocks() {
		return fmt.Errorf("%w: region [%d,%d) outside device", ErrBadFormat, start, start+nBlocks)
	}
	l := &Log{
		dev:   dev,
		start: start,
		bs:    dev.BlockSize(),
		cap:   uint64((nBlocks - 1) * int64(dev.BlockSize())),
	}
	l.img = make([]byte, l.cap)
	zero := make([]byte, l.bs)
	for b := int64(1); b < nBlocks; b++ {
		if err := dev.Write(start+b, zero); err != nil {
			return err
		}
	}
	return l.writeHeader()
}

// Open opens a previously formatted log region and reads it into memory.
// It does not replay anything; call Recover for that.
func Open(dev blockdev.Device, start, nBlocks int64) (*Log, error) {
	if nBlocks < MinBlocks {
		return nil, fmt.Errorf("%w: region too small", ErrBadFormat)
	}
	l := &Log{
		dev:          dev,
		start:        start,
		bs:           dev.BlockSize(),
		cap:          uint64((nBlocks - 1) * int64(dev.BlockSize())),
		active:       make(map[TxID]LSN),
		appends:      obs.NewCounter(),
		flushes:      obs.NewCounter(),
		groupCommits: obs.NewCounter(),
		syncsSaved:   obs.NewCounter(),
		commitNs:     obs.NewHistogram(),
		flushNs:      obs.NewHistogram(),
	}
	hdr := make([]byte, l.bs)
	if err := dev.Read(start, hdr); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != hdrMagic {
		return nil, fmt.Errorf("%w: bad header magic", ErrBadFormat)
	}
	if binary.BigEndian.Uint32(hdr[4:]) != hdrVersion {
		return nil, fmt.Errorf("%w: unsupported version", ErrBadFormat)
	}
	if got := binary.BigEndian.Uint64(hdr[8:]); got != l.cap {
		return nil, fmt.Errorf("%w: capacity %d != region %d", ErrBadFormat, got, l.cap)
	}
	sum := crc32.ChecksumIEEE(hdr[:24])
	if binary.BigEndian.Uint32(hdr[24:]) != sum {
		return nil, fmt.Errorf("%w: header checksum", ErrBadFormat)
	}
	l.tail = LSN(binary.BigEndian.Uint64(hdr[16:]))
	l.img = make([]byte, l.cap)
	buf := make([]byte, l.bs)
	for b := int64(1); b < nBlocks; b++ {
		if err := dev.Read(start+b, buf); err != nil {
			return nil, err
		}
		copy(l.img[(b-1)*int64(l.bs):], buf)
	}
	// Find the head by scanning forward from the tail.
	l.head = l.scanEnd(l.tail)
	l.flushed = l.head
	return l, nil
}

// writeHeader persists the log header (tail pointer included).
func (l *Log) writeHeader() error {
	hdr := make([]byte, l.bs)
	binary.BigEndian.PutUint32(hdr[0:], hdrMagic)
	binary.BigEndian.PutUint32(hdr[4:], hdrVersion)
	binary.BigEndian.PutUint64(hdr[8:], l.cap)
	binary.BigEndian.PutUint64(hdr[16:], uint64(l.tail))
	binary.BigEndian.PutUint32(hdr[24:], crc32.ChecksumIEEE(hdr[:24]))
	if err := l.dev.Write(l.start, hdr); err != nil {
		return err
	}
	return l.dev.Sync()
}

// ring copy helpers: copy data to/from the circular image at LSN pos.
func (l *Log) put(pos LSN, p []byte) {
	off := uint64(pos) % l.cap
	n := copy(l.img[off:], p)
	if n < len(p) {
		copy(l.img, p[n:])
	}
}

func (l *Log) get(pos LSN, p []byte) {
	off := uint64(pos) % l.cap
	n := copy(p, l.img[off:])
	if n < len(p) {
		copy(p[n:], l.img[:len(p)-n])
	}
}

// noLSN marks an active transaction that has not yet logged an update
// (LSN 0 is a valid record position, so it cannot be the sentinel).
const noLSN = ^LSN(0)

// Begin starts a transaction.
func (l *Log) Begin() *Tx {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		l.active = make(map[TxID]LSN)
	}
	l.nextTx++
	id := l.nextTx
	l.active[id] = noLSN // first LSN filled in by first update
	return &Tx{log: l, id: id}
}

// Tx is an open transaction. Tx methods must not be called concurrently
// with each other for the same Tx.
type Tx struct {
	log  *Log
	id   TxID
	done bool
	n    int // records appended
}

// ID returns the transaction's identity.
func (t *Tx) ID() TxID { return t.id }

// Update appends an old/new record for len(old) bytes at offset off of
// block blk and returns the record's LSN. old and new must be the same
// length. The caller is responsible for actually applying the new bytes to
// its buffer (the buffer package does both under one latch).
func (t *Tx) Update(blk int64, off int, old, new []byte) (LSN, error) {
	if t.done {
		return 0, ErrTxDone
	}
	if len(old) != len(new) {
		return 0, fmt.Errorf("%w: old %d bytes, new %d", ErrBadRange, len(old), len(new))
	}
	l := t.log
	if off < 0 || len(old) == 0 || off+len(old) > l.bs {
		return 0, fmt.Errorf("%w: off=%d len=%d bs=%d", ErrBadRange, off, len(old), l.bs)
	}
	payload := make([]byte, updHdrSize+2*len(old))
	binary.BigEndian.PutUint64(payload[0:], uint64(blk))
	binary.BigEndian.PutUint32(payload[8:], uint32(off))
	binary.BigEndian.PutUint32(payload[12:], uint32(len(old)))
	copy(payload[updHdrSize:], old)
	copy(payload[updHdrSize+len(old):], new)

	l.mu.Lock()
	defer l.mu.Unlock()
	lsn, err := l.appendLocked(recUpdate, t.id, payload)
	if err != nil {
		return 0, err
	}
	if l.active[t.id] == noLSN {
		l.active[t.id] = lsn
	}
	t.n++
	return lsn, nil
}

// Commit appends the commit record. The record is buffered; it becomes
// durable at the next Flush/Sync (batch commit, §2.2). It returns the
// commit record's LSN so callers needing durable commit can Flush to it.
func (t *Tx) Commit() (LSN, error) {
	if t.done {
		return 0, ErrTxDone
	}
	l := t.log
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	lsn, err := l.appendLocked(recCommit, t.id, nil)
	if err != nil {
		return 0, err
	}
	t.done = true
	delete(l.active, t.id)
	l.commitNs.Observe(time.Since(start))
	return lsn, nil
}

// Updates returns how many update records the transaction has appended.
func (t *Tx) Updates() int { return t.n }

func (l *Log) appendLocked(typ byte, id TxID, payload []byte) (LSN, error) {
	size := uint64(recHdrSize + len(payload) + crcSize)
	if size > l.cap/2 {
		return 0, fmt.Errorf("%w: %d bytes in %d-byte log", ErrTooBig, size, l.cap)
	}
	if uint64(l.head)-uint64(l.tail)+size > l.cap {
		return 0, fmt.Errorf("%w: used %d + %d > %d", ErrLogFull,
			uint64(l.head)-uint64(l.tail), size, l.cap)
	}
	rec := make([]byte, size)
	binary.BigEndian.PutUint32(rec[0:], recMagic)
	rec[4] = typ
	binary.BigEndian.PutUint64(rec[5:], uint64(l.head))
	binary.BigEndian.PutUint64(rec[13:], uint64(id))
	copy(rec[recHdrSize:], payload)
	sum := crc32.ChecksumIEEE(rec[:len(rec)-crcSize])
	binary.BigEndian.PutUint32(rec[len(rec)-crcSize:], sum)
	l.put(l.head, rec)
	l.head += LSN(size)
	l.appends.Inc()
	return l.head - LSN(size), nil
}

// readRecord decodes the record at lsn, or returns false at end of log.
func (l *Log) readRecord(lsn LSN) (Record, uint64, bool) {
	if uint64(l.head) != 0 && uint64(lsn) >= uint64(l.head) && l.head != 0 {
		// During scans head may be unknown (0); bounds are enforced by
		// magic/lsn/crc checks below, so this is only a fast path.
		return Record{}, 0, false
	}
	hdr := make([]byte, recHdrSize)
	l.get(lsn, hdr)
	if binary.BigEndian.Uint32(hdr[0:]) != recMagic {
		return Record{}, 0, false
	}
	typ := hdr[4]
	if binary.BigEndian.Uint64(hdr[5:]) != uint64(lsn) {
		return Record{}, 0, false
	}
	id := TxID(binary.BigEndian.Uint64(hdr[13:]))
	var payloadLen int
	switch typ {
	case recCommit:
		payloadLen = 0
	case recUpdate:
		uh := make([]byte, updHdrSize)
		l.get(lsn+recHdrSize, uh)
		n := binary.BigEndian.Uint32(uh[12:])
		if n == 0 || uint64(n) > l.cap {
			return Record{}, 0, false
		}
		payloadLen = updHdrSize + 2*int(n)
	default:
		return Record{}, 0, false
	}
	size := uint64(recHdrSize + payloadLen + crcSize)
	if size > l.cap {
		return Record{}, 0, false
	}
	full := make([]byte, size)
	l.get(lsn, full)
	sum := crc32.ChecksumIEEE(full[:size-crcSize])
	if binary.BigEndian.Uint32(full[size-crcSize:]) != sum {
		return Record{}, 0, false
	}
	rec := Record{LSN: lsn, Type: typ, Tx: id}
	if typ == recUpdate {
		p := full[recHdrSize:]
		rec.Block = int64(binary.BigEndian.Uint64(p[0:]))
		rec.Offset = int(binary.BigEndian.Uint32(p[8:]))
		n := int(binary.BigEndian.Uint32(p[12:]))
		rec.Old = append([]byte(nil), p[updHdrSize:updHdrSize+n]...)
		rec.New = append([]byte(nil), p[updHdrSize+n:updHdrSize+2*n]...)
	}
	return rec, size, true
}

// scanEnd walks records from lsn until the first invalid one.
func (l *Log) scanEnd(from LSN) LSN {
	lsn := from
	for {
		saveHead := l.head
		l.head = 0 // disable the fast-path bound while scanning
		_, size, ok := l.readRecord(lsn)
		l.head = saveHead
		if !ok {
			return lsn
		}
		lsn += LSN(size)
		if uint64(lsn)-uint64(from) > l.cap {
			return from // corrupted ring: be conservative
		}
	}
}

// Flush makes the log durable up to and including the record that starts
// at lsn (the value returned by Update or Commit). Concurrent callers are
// coalesced: one becomes the group-commit leader and syncs the whole
// batch; the rest park until their record is durable.
func (l *Log) Flush(lsn LSN) error {
	start := time.Now()
	defer func() { l.flushNs.Observe(time.Since(start)) }()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked(lsn)
}

// Sync makes the entire log durable (the 30-second batch commit and the
// sync/fsync path of §2.2 both land here).
func (l *Log) Sync() error {
	start := time.Now()
	defer func() { l.flushNs.Observe(time.Since(start)) }()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked(l.head)
}

// flushLocked is the group-commit protocol. The caller wants everything
// up to and including the record starting at target durable. While a
// leader's flush is in flight the caller parks; otherwise it becomes the
// leader itself and flushes one coalesced batch — everything appended so
// far, covering its own record and every parked waiter's.
func (l *Log) flushLocked(target LSN) error {
	if target >= l.head {
		target = l.head
	} else if _, size, ok := l.readRecord(target); ok {
		// target names a record start: make the whole record durable.
		target += LSN(size)
	} else {
		// Not a record boundary; be conservative.
		target = l.head
	}
	if l.flushCond == nil {
		l.flushCond = sync.NewCond(&l.mu)
	}
	waited, led := false, false
	for target > l.flushed {
		if l.flushing {
			// A leader's device I/O is in flight; park until it lands.
			l.flushWaiters++
			l.flushCond.Wait()
			l.flushWaiters--
			waited = true
			continue
		}
		// Become the leader. The batch is everything appended so far,
		// including records from committers that arrived while a previous
		// flush was in flight.
		led = true
		batch := l.head
		l.flushing = true
		err := l.flushRange(batch) // releases mu during the device I/O
		l.flushing = false
		if err == nil && batch > l.flushed {
			l.flushed = batch
			l.flushes.Inc()
			if l.flushWaiters > 0 {
				l.groupCommits.Inc()
			}
		}
		l.flushCond.Broadcast()
		if err != nil {
			return err
		}
	}
	if waited && !led {
		l.syncsSaved.Inc()
	}
	return nil
}

// flushRange stages the un-durable region [flushed, target) into the
// reusable scratch buffer under mu, then writes and syncs it with mu
// RELEASED, so appenders and new committers make progress during the
// device I/O. Blocks wholly below flushed are already durable and are
// skipped; the block containing flushed is rewritten only when partially
// durable. Only the group-commit leader runs here (l.flushing excludes
// everyone else), so the scratch buffer is never shared.
func (l *Log) flushRange(target LSN) error {
	if target <= l.flushed {
		return nil
	}
	bs := uint64(l.bs)
	first := uint64(l.flushed) / bs
	last := (uint64(target) + bs - 1) / bs // exclusive
	n := int((last - first) * bs)
	if len(l.scratch) < n {
		l.scratch = make([]byte, n)
	}
	for b := first; b < last; b++ {
		// A log block is contiguous in the image because cap is a
		// multiple of the block size.
		imgOff := (b * bs) % l.cap
		copy(l.scratch[int((b-first)*bs):], l.img[imgOff:imgOff+bs])
	}
	scratch := l.scratch
	l.mu.Unlock()
	var err error
	for b := first; b < last; b++ {
		imgOff := (b * bs) % l.cap
		devBlock := l.start + 1 + int64(imgOff/bs)
		if werr := l.dev.Write(devBlock, scratch[int((b-first)*bs):int((b-first+1)*bs)]); werr != nil {
			err = werr
			break
		}
	}
	if err == nil {
		err = l.dev.Sync()
	}
	l.mu.Lock()
	return err
}

// Checkpoint advances the tail. minNeeded is the oldest LSN the caller
// still requires for redo (typically the minimum first-LSN over dirty
// buffers, or Head if none). The tail also never passes the first LSN of
// an active transaction (needed for undo). The caller must have flushed
// the affected buffers first.
//
// Concurrent checkpoints are safe: if another caller advanced the tail
// past this one's target while the flush was in flight, the tail move is
// skipped (the other checkpoint already retained strictly less log).
func (l *Log) Checkpoint(minNeeded LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := minNeeded
	if target > l.head {
		target = l.head
	}
	for _, first := range l.active {
		if first != noLSN && first < target {
			target = first
		}
	}
	if err := l.flushLocked(l.head); err != nil {
		return err
	}
	// Re-check after the flush: the group-commit leader releases mu
	// during device I/O, so a concurrent checkpoint may have advanced the
	// tail past our target in the meantime.
	if target < l.tail {
		return nil
	}
	l.tail = target
	return l.writeHeader()
}

// Head returns the next append LSN.
func (l *Log) Head() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Tail returns the oldest retained LSN.
func (l *Log) Tail() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tail
}

// Used returns the active portion of the log in bytes.
func (l *Log) Used() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(l.head) - uint64(l.tail)
}

// Capacity returns the data capacity in bytes.
func (l *Log) Capacity() uint64 { return l.cap }

// LogStats returns activity counters.
func (l *Log) LogStats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appends:      l.appends.Load(),
		Flushes:      l.flushes.Load(),
		GroupCommits: l.groupCommits.Load(),
		SyncsSaved:   l.syncsSaved.Load(),
		Head:         l.head,
		Tail:         l.tail,
		Durable:      l.flushed,
	}
}

// Instrument attaches the log's metrics to reg under the "wal." prefix
// and registers a live head/tail/durable view. The counters are the same
// cells LogStats() reads.
func (l *Log) Instrument(reg *obs.Registry) {
	reg.AttachCounter("wal.appends", l.appends)
	reg.AttachCounter("wal.flushes", l.flushes)
	reg.AttachCounter("wal.group_commits", l.groupCommits)
	reg.AttachCounter("wal.syncs_saved", l.syncsSaved)
	reg.AttachHistogram("wal.commit_ns", l.commitNs)
	reg.AttachHistogram("wal.flush_ns", l.flushNs)
	reg.AttachInfo("wal.log", func() any {
		s := l.LogStats()
		return map[string]uint64{
			"head":     uint64(s.Head),
			"tail":     uint64(s.Tail),
			"durable":  uint64(s.Durable),
			"used":     uint64(s.Head) - uint64(s.Tail),
			"capacity": l.Capacity(),
		}
	})
}

// Records returns the decoded records in the active region, for the
// logdump tool and for tests.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	lsn := l.tail
	for lsn < l.head {
		rec, size, ok := l.readRecord(lsn)
		if !ok {
			break
		}
		out = append(out, rec)
		lsn += LSN(size)
	}
	return out
}

// RecoveryResult summarises what Recover did.
type RecoveryResult struct {
	Scanned     int // records read
	Redone      int // update records re-applied
	Undone      int // update records rolled back
	Committed   int // committed transactions
	Uncommitted int // transactions rolled back
}

// Recover replays the log against dev after a crash: it repeats history
// (applies every update's new value in LSN order), then undoes uncommitted
// transactions in reverse LSN order using the old values, then writes the
// affected blocks, syncs, and resets the log to empty.
//
// Recover must be called on a freshly Opened log before any Begin.
func (l *Log) Recover() (RecoveryResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var res RecoveryResult
	if len(l.active) != 0 {
		return res, ErrActiveTx
	}
	// Pass 1: scan and collect.
	var updates []Record
	committed := map[TxID]bool{}
	lsn := l.tail
	for {
		rec, size, ok := l.readRecord(lsn)
		if !ok {
			break
		}
		res.Scanned++
		switch rec.Type {
		case recUpdate:
			updates = append(updates, rec)
		case recCommit:
			committed[rec.Tx] = true
		}
		lsn += LSN(size)
		if uint64(lsn)-uint64(l.tail) > l.cap {
			return res, fmt.Errorf("%w: scan exceeded capacity", ErrBadFormat)
		}
	}
	uncommittedSet := map[TxID]bool{}
	// Pass 2: repeat history.
	cache := map[int64][]byte{}
	load := func(blk int64) ([]byte, error) {
		if b, ok := cache[blk]; ok {
			return b, nil
		}
		b := make([]byte, l.bs)
		if err := l.dev.Read(blk, b); err != nil {
			return nil, err
		}
		cache[blk] = b
		return b, nil
	}
	for _, u := range updates {
		b, err := load(u.Block)
		if err != nil {
			return res, err
		}
		copy(b[u.Offset:], u.New)
		res.Redone++
		if !committed[u.Tx] {
			uncommittedSet[u.Tx] = true
		}
	}
	// Pass 3: undo uncommitted, newest first.
	for i := len(updates) - 1; i >= 0; i-- {
		u := updates[i]
		if committed[u.Tx] {
			continue
		}
		b, err := load(u.Block)
		if err != nil {
			return res, err
		}
		copy(b[u.Offset:], u.Old)
		res.Undone++
	}
	res.Committed = len(committed)
	res.Uncommitted = len(uncommittedSet)
	// Write back and sync.
	for blk, b := range cache {
		if err := l.dev.Write(blk, b); err != nil {
			return res, err
		}
	}
	if err := l.dev.Sync(); err != nil {
		return res, err
	}
	// Reset the log to empty.
	l.tail = l.head
	l.flushed = l.head
	if err := l.writeHeader(); err != nil {
		return res, err
	}
	return res, nil
}

// ActiveTxs returns the active transactions and their first LSNs, for
// debugging and tests.
func (l *Log) ActiveTxs() map[TxID]LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[TxID]LSN, len(l.active))
	for id, lsn := range l.active {
		out[id] = lsn
	}
	return out
}
