package wal

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"decorum/internal/blockdev"
)

// parallelism converts a target goroutine count into the multiplier
// b.SetParallelism wants (it multiplies by GOMAXPROCS).
func parallelism(goroutines int) int {
	p := runtime.GOMAXPROCS(0)
	return (goroutines + p - 1) / p
}

func benchLog(b *testing.B) *Log {
	b.Helper()
	dev := blockdev.NewMem(4096, 1024)
	if err := Format(dev, 8, 512); err != nil {
		b.Fatal(err)
	}
	l, err := Open(dev, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkTxUpdateCommit measures the in-memory append path: one update
// record plus one commit record, no forced flush (the batched-commit
// steady state).
func BenchmarkTxUpdateCommit(b *testing.B) {
	l := benchLog(b)
	old := make([]byte, 64)
	new := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := l.Begin()
		if _, err := tx.Update(1, 0, old, new); err != nil {
			b.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if l.Used() > l.Capacity()/2 {
			b.StopTimer()
			if err := l.Checkpoint(l.Head()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkDurableCommit includes the log force (fsync-like callers).
func BenchmarkDurableCommit(b *testing.B) {
	l := benchLog(b)
	old := make([]byte, 64)
	new := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := l.Begin()
		if _, err := tx.Update(1, 0, old, new); err != nil {
			b.Fatal(err)
		}
		lsn, err := tx.Commit()
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Flush(lsn); err != nil {
			b.Fatal(err)
		}
		if l.Used() > l.Capacity()/2 {
			b.StopTimer()
			if err := l.Checkpoint(l.Head()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkDurableCommitParallel measures group commit under concurrency:
// N goroutines each run update+commit+Flush against a device whose Sync
// has a realistic latency (100µs, roughly an NVMe cache flush). The
// headline metric is syncs/commit — below 1.0 the leader/waiter protocol
// is amortizing device syncs across committers; at 1 goroutine it stays
// ~1.0 because there is nobody to share with.
func BenchmarkDurableCommitParallel(b *testing.B) {
	for _, gor := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", gor), func(b *testing.B) {
			mem := blockdev.NewMem(4096, 1024)
			if err := Format(mem, 8, 512); err != nil {
				b.Fatal(err)
			}
			dev := &slowSyncDev{Device: mem, delay: 100 * time.Microsecond}
			l, err := Open(dev, 8, 512)
			if err != nil {
				b.Fatal(err)
			}
			b.SetParallelism(parallelism(gor))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				old := make([]byte, 64)
				new := make([]byte, 64)
				for pb.Next() {
					tx := l.Begin()
					if _, err := tx.Update(1, 0, old, new); err != nil {
						b.Fatal(err)
					}
					lsn, err := tx.Commit()
					if err != nil {
						b.Fatal(err)
					}
					if err := l.Flush(lsn); err != nil {
						b.Fatal(err)
					}
					if l.Used() > l.Capacity()/2 {
						if err := l.Checkpoint(l.Head()); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			b.StopTimer()
			st := l.LogStats()
			commits := float64(b.N)
			b.ReportMetric(float64(dev.syncs.Load())/commits, "syncs/commit")
			b.ReportMetric(float64(st.SyncsSaved)/commits, "syncs-saved/commit")
			b.ReportMetric(float64(st.GroupCommits), "group-commits")
		})
	}
}

// BenchmarkRecover replays a log of ~100 transactions.
func BenchmarkRecover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := blockdev.NewMem(4096, 1024)
		if err := Format(dev, 8, 512); err != nil {
			b.Fatal(err)
		}
		l, _ := Open(dev, 8, 512)
		for j := 0; j < 100; j++ {
			tx := l.Begin()
			tx.Update(int64(j%8), 0, make([]byte, 64), make([]byte, 64))
			tx.Commit()
		}
		l.Sync()
		l2, err := Open(dev, 8, 512)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := l2.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}
