package wal

import (
	"testing"

	"decorum/internal/blockdev"
)

func benchLog(b *testing.B) *Log {
	b.Helper()
	dev := blockdev.NewMem(4096, 1024)
	if err := Format(dev, 8, 512); err != nil {
		b.Fatal(err)
	}
	l, err := Open(dev, 8, 512)
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkTxUpdateCommit measures the in-memory append path: one update
// record plus one commit record, no forced flush (the batched-commit
// steady state).
func BenchmarkTxUpdateCommit(b *testing.B) {
	l := benchLog(b)
	old := make([]byte, 64)
	new := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := l.Begin()
		if _, err := tx.Update(1, 0, old, new); err != nil {
			b.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		if l.Used() > l.Capacity()/2 {
			b.StopTimer()
			if err := l.Checkpoint(l.Head()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkDurableCommit includes the log force (fsync-like callers).
func BenchmarkDurableCommit(b *testing.B) {
	l := benchLog(b)
	old := make([]byte, 64)
	new := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := l.Begin()
		if _, err := tx.Update(1, 0, old, new); err != nil {
			b.Fatal(err)
		}
		lsn, err := tx.Commit()
		if err != nil {
			b.Fatal(err)
		}
		if err := l.Flush(lsn); err != nil {
			b.Fatal(err)
		}
		if l.Used() > l.Capacity()/2 {
			b.StopTimer()
			if err := l.Checkpoint(l.Head()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkRecover replays a log of ~100 transactions.
func BenchmarkRecover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := blockdev.NewMem(4096, 1024)
		if err := Format(dev, 8, 512); err != nil {
			b.Fatal(err)
		}
		l, _ := Open(dev, 8, 512)
		for j := 0; j < 100; j++ {
			tx := l.Begin()
			tx.Update(int64(j%8), 0, make([]byte, 64), make([]byte, 64))
			tx.Commit()
		}
		l.Sync()
		l2, err := Open(dev, 8, 512)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := l2.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}
