package wal

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"decorum/internal/blockdev"
)

const (
	testBS     = 512
	testBlocks = 64 // device blocks
	logStart   = 8
	logBlocks  = 16
)

func newLog(t *testing.T) (*Log, *blockdev.MemDevice) {
	t.Helper()
	dev := blockdev.NewMem(testBS, testBlocks)
	if err := Format(dev, logStart, logBlocks); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dev, logStart, logBlocks)
	if err != nil {
		t.Fatal(err)
	}
	return l, dev
}

func TestFormatOpenEmpty(t *testing.T) {
	l, _ := newLog(t)
	if l.Head() != 0 || l.Tail() != 0 {
		t.Fatalf("fresh log head=%d tail=%d, want 0,0", l.Head(), l.Tail())
	}
	if l.Used() != 0 {
		t.Fatalf("Used = %d, want 0", l.Used())
	}
	if l.Capacity() != uint64((logBlocks-1)*testBS) {
		t.Fatalf("Capacity = %d", l.Capacity())
	}
}

func TestFormatRejectsBadRegion(t *testing.T) {
	dev := blockdev.NewMem(testBS, 8)
	if err := Format(dev, 0, 2); !errors.Is(err, ErrBadFormat) {
		t.Errorf("tiny region: %v", err)
	}
	if err := Format(dev, 6, 4); !errors.Is(err, ErrBadFormat) {
		t.Errorf("region past device end: %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := blockdev.NewMem(testBS, testBlocks)
	if _, err := Open(dev, logStart, logBlocks); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("open unformatted: %v", err)
	}
}

func TestUpdateCommitRoundTrip(t *testing.T) {
	l, _ := newLog(t)
	tx := l.Begin()
	old := []byte{1, 2, 3, 4}
	new := []byte{5, 6, 7, 8}
	lsn, err := tx.Update(3, 100, old, new)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 0 {
		t.Fatalf("first record LSN = %d, want 0", lsn)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	recs := l.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	u := recs[0]
	if u.Block != 3 || u.Offset != 100 || !bytes.Equal(u.Old, old) || !bytes.Equal(u.New, new) {
		t.Fatalf("bad update record %+v", u)
	}
	if recs[1].Tx != u.Tx {
		t.Fatal("commit record for wrong tx")
	}
}

func TestTxAfterCommitFails(t *testing.T) {
	l, _ := newLog(t)
	tx := l.Begin()
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Update(0, 0, []byte{1}, []byte{2}); !errors.Is(err, ErrTxDone) {
		t.Errorf("update after commit: %v", err)
	}
	if _, err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit: %v", err)
	}
}

func TestUpdateValidation(t *testing.T) {
	l, _ := newLog(t)
	tx := l.Begin()
	if _, err := tx.Update(0, 0, []byte{1}, []byte{1, 2}); !errors.Is(err, ErrBadRange) {
		t.Errorf("mismatched lengths: %v", err)
	}
	if _, err := tx.Update(0, testBS-1, []byte{1, 2}, []byte{3, 4}); !errors.Is(err, ErrBadRange) {
		t.Errorf("past block end: %v", err)
	}
	if _, err := tx.Update(0, 0, nil, nil); !errors.Is(err, ErrBadRange) {
		t.Errorf("empty update: %v", err)
	}
}

func TestLogFullAndCheckpoint(t *testing.T) {
	l, _ := newLog(t)
	payload := make([]byte, 200)
	var lastErr error
	n := 0
	for i := 0; i < 10000; i++ {
		tx := l.Begin()
		if _, err := tx.Update(1, 0, payload, payload); err != nil {
			lastErr = err
			break
		}
		if _, err := tx.Commit(); err != nil {
			lastErr = err
			break
		}
		n++
	}
	if !errors.Is(lastErr, ErrLogFull) {
		t.Fatalf("expected ErrLogFull, got %v after %d txs", lastErr, n)
	}
	// Checkpoint to head frees everything.
	if err := l.Checkpoint(l.Head()); err != nil {
		t.Fatal(err)
	}
	if l.Used() != 0 {
		t.Fatalf("Used after checkpoint = %d", l.Used())
	}
	// Appends work again (the ring wraps).
	tx := l.Begin()
	if _, err := tx.Update(1, 0, payload, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRespectsActiveTx(t *testing.T) {
	l, _ := newLog(t)
	tx := l.Begin()
	if _, err := tx.Update(1, 0, []byte{0}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	tx2 := l.Begin()
	if _, err := tx2.Update(1, 1, []byte{0}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(l.Head()); err != nil {
		t.Fatal(err)
	}
	// Tail must not pass tx's first record (LSN 0).
	if l.Tail() != 0 {
		t.Fatalf("tail = %d, want 0 while tx active", l.Tail())
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(l.Head()); err != nil {
		t.Fatal(err)
	}
	if l.Used() != 0 {
		t.Fatal("checkpoint after commit should empty the log")
	}
}

func TestTooBigRecord(t *testing.T) {
	dev := blockdev.NewMem(testBS, testBlocks)
	if err := Format(dev, logStart, MinBlocks); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dev, logStart, MinBlocks)
	if err != nil {
		t.Fatal(err)
	}
	tx := l.Begin()
	big := make([]byte, testBS)
	// 3 data blocks = 1536 bytes capacity; the record (header + 2*512
	// bytes of old/new images + crc) exceeds half of it.
	_, err = tx.Update(0, 0, big, big)
	if !errors.Is(err, ErrTooBig) {
		t.Fatalf("huge record: %v", err)
	}
}

// crashAndReopen flushes nothing: it simulates a crash by reopening the log
// from whatever the device currently holds.
func reopen(t *testing.T, dev blockdev.Device) *Log {
	t.Helper()
	l, err := Open(dev, logStart, logBlocks)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestRecoverRedoesCommitted(t *testing.T) {
	l, dev := newLog(t)
	// Target block 2, initially zero on the device.
	tx := l.Begin()
	if _, err := tx.Update(2, 10, make([]byte, 4), []byte{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: data block never written. Reopen and recover.
	l2 := reopen(t, dev)
	res, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 1 || res.Redone != 1 || res.Undone != 0 {
		t.Fatalf("recovery result %+v", res)
	}
	got := make([]byte, testBS)
	if err := dev.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[10:14], []byte{9, 9, 9, 9}) {
		t.Fatal("committed update not redone")
	}
	if l2.Used() != 0 {
		t.Fatal("log not reset after recovery")
	}
}

func TestRecoverUndoesUncommitted(t *testing.T) {
	l, dev := newLog(t)
	// Prepare block 2 with known contents, applied directly.
	init := make([]byte, testBS)
	init[10] = 42
	if err := dev.Write(2, init); err != nil {
		t.Fatal(err)
	}
	tx := l.Begin()
	if _, err := tx.Update(2, 10, []byte{42}, []byte{77}); err != nil {
		t.Fatal(err)
	}
	// Simulate the buffer having been destaged after the log flushed
	// (WAL rule): data block carries the new value, commit never logged.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	mod := make([]byte, testBS)
	copy(mod, init)
	mod[10] = 77
	if err := dev.Write(2, mod); err != nil {
		t.Fatal(err)
	}
	l2 := reopen(t, dev)
	res, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Uncommitted != 1 || res.Undone != 1 {
		t.Fatalf("recovery result %+v", res)
	}
	got := make([]byte, testBS)
	if err := dev.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if got[10] != 42 {
		t.Fatalf("uncommitted update not undone: got %d, want 42", got[10])
	}
}

func TestRecoverMixedInterleaved(t *testing.T) {
	l, dev := newLog(t)
	txA := l.Begin()
	txB := l.Begin()
	// A and B interleave on the same block; A commits, B does not.
	if _, err := txA.Update(3, 0, []byte{0}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := txB.Update(3, 1, []byte{0}, []byte{2}); err != nil {
		t.Fatal(err)
	}
	if _, err := txA.Update(3, 2, []byte{0}, []byte{3}); err != nil {
		t.Fatal(err)
	}
	if _, err := txA.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l2 := reopen(t, dev)
	if _, err := l2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testBS)
	if err := dev.Read(3, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 || got[2] != 3 {
		t.Fatalf("mixed recovery: got %v, want [1 0 3]", got[:3])
	}
}

func TestRecoverTornTail(t *testing.T) {
	// A commit record that never became durable must be ignored along with
	// everything after it.
	l, dev := newLog(t)
	tx := l.Begin()
	if _, err := tx.Update(2, 0, []byte{0}, []byte{5}); err != nil {
		t.Fatal(err)
	}
	mid := l.Head()
	if err := l.Flush(mid); err != nil { // update durable
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil { // commit only in memory
		t.Fatal(err)
	}
	// Crash without flushing the commit.
	l2 := reopen(t, dev)
	res, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 0 || res.Undone != 1 {
		t.Fatalf("torn tail recovery %+v", res)
	}
	got := make([]byte, testBS)
	if err := dev.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("change from unflushed commit survived")
	}
}

func TestRecoveryIdempotent(t *testing.T) {
	l, dev := newLog(t)
	tx := l.Begin()
	if _, err := tx.Update(2, 0, []byte{0, 0}, []byte{8, 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l2 := reopen(t, dev)
	if _, err := l2.Recover(); err != nil {
		t.Fatal(err)
	}
	img1 := dev.Snapshot()
	// Crash again immediately and recover again: no-op.
	l3 := reopen(t, dev)
	res, err := l3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 0 {
		t.Fatalf("second recovery scanned %d records, want 0", res.Scanned)
	}
	if !bytes.Equal(img1, dev.Snapshot()) {
		t.Fatal("second recovery changed the disk")
	}
}

func TestRecoveryTimeProportionalToActiveLog(t *testing.T) {
	// The central C1 claim in miniature: scanned records depend on the
	// active log, not on how much history ever passed through.
	l, dev := newLog(t)
	for i := 0; i < 50; i++ {
		tx := l.Begin()
		if _, err := tx.Update(2, 0, []byte{0}, []byte{1}); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if err := l.Checkpoint(l.Head()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l2 := reopen(t, dev)
	res, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned != 0 {
		t.Fatalf("after final checkpoint, scan should be empty; scanned %d", res.Scanned)
	}
}

func TestWrapAroundManyLaps(t *testing.T) {
	l, dev := newLog(t)
	// buf simulates the in-memory metadata buffer for block 2; the WAL
	// contract requires destaging it before a checkpoint discards the
	// records that produced it.
	buf := make([]byte, testBS)
	payload := make([]byte, 64)
	for i := 0; i < 500; i++ {
		tx := l.Begin()
		old := append([]byte(nil), buf[:64]...)
		for j := range payload {
			payload[j] = byte(i)
		}
		if _, err := tx.Update(2, 0, old, payload); err != nil {
			t.Fatal(err)
		}
		copy(buf, payload)
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if l.Used() > l.Capacity()/2 {
			if err := l.Flush(l.Head()); err != nil {
				t.Fatal(err)
			}
			if err := dev.Write(2, buf); err != nil {
				t.Fatal(err)
			}
			if err := l.Checkpoint(l.Head()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// The last lap still recovers correctly.
	l2 := reopen(t, dev)
	if _, err := l2.Recover(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, testBS)
	if err := dev.Read(2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != byte(499%256) {
		t.Fatalf("wraparound recovery: got %d, want %d", got[0], byte(499%256))
	}
}

// Property: with the write-ahead rule obeyed (log synced before data
// writes) and a RandomSubset crash of the device cache, recovery always
// reconstructs a state where each committed-and-durable transaction is
// fully applied and every other transaction is fully absent.
func TestQuickCrashRecoveryConsistency(t *testing.T) {
	f := func(seed int64, nTx uint8, commitMask uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := blockdev.NewMem(testBS, testBlocks)
		crash := blockdev.NewCrash(mem)
		if err := Format(crash, logStart, logBlocks); err != nil {
			return false
		}
		if err := crash.Sync(); err != nil {
			return false
		}
		l, err := Open(crash, logStart, logBlocks)
		if err != nil {
			return false
		}
		n := int(nTx%8) + 1
		type txInfo struct {
			off       int
			val       byte
			committed bool
			durable   bool
		}
		infos := make([]txInfo, 0, n)
		for i := 0; i < n; i++ {
			tx := l.Begin()
			off := i * 8 // disjoint ranges in block 2
			val := byte(i + 1)
			if _, err := tx.Update(2, off, make([]byte, 4), []byte{val, val, val, val}); err != nil {
				return false
			}
			committed := commitMask&(1<<uint(i)) != 0
			durable := false
			if committed {
				lsn, err := tx.Commit()
				if err != nil {
					return false
				}
				if rng.Intn(2) == 0 {
					if err := l.Flush(lsn); err != nil {
						return false
					}
					durable = true
				}
			}
			infos = append(infos, txInfo{off, val, committed, durable})
		}
		if err := crash.Crash(blockdev.RandomSubset, rng); err != nil {
			return false
		}
		l2, err := Open(mem, logStart, logBlocks)
		if err != nil {
			return false
		}
		if _, err := l2.Recover(); err != nil {
			return false
		}
		got := make([]byte, testBS)
		if err := mem.Read(2, got); err != nil {
			return false
		}
		for _, info := range infos {
			applied := got[info.off] == info.val &&
				got[info.off+1] == info.val &&
				got[info.off+2] == info.val &&
				got[info.off+3] == info.val
			absent := got[info.off] == 0 && got[info.off+1] == 0 &&
				got[info.off+2] == 0 && got[info.off+3] == 0
			if !applied && !absent {
				return false // torn transaction
			}
			if info.durable && !applied {
				return false // durable commit lost
			}
			if !info.committed && applied {
				return false // uncommitted change survived
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounters(t *testing.T) {
	l, _ := newLog(t)
	tx := l.Begin()
	if _, err := tx.Update(1, 0, []byte{0}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	st := l.LogStats()
	if st.Appends != 2 {
		t.Errorf("Appends = %d, want 2", st.Appends)
	}
	if st.Flushes != 1 {
		t.Errorf("Flushes = %d, want 1", st.Flushes)
	}
	if st.Durable != st.Head {
		t.Errorf("Durable = %d, Head = %d", st.Durable, st.Head)
	}
}

// slowSyncDev adds a real latency to Sync, modelling the cache-flush cost
// that makes group commit worth having. During the leader's sync the log
// mutex is released, so concurrent committers append and park.
type slowSyncDev struct {
	blockdev.Device
	delay time.Duration
	syncs atomic.Uint64
}

func (d *slowSyncDev) Sync() error {
	d.syncs.Add(1)
	time.Sleep(d.delay)
	return d.Device.Sync()
}

// TestGroupCommitCoalesces runs many concurrent durable commits against a
// log whose sync is slow, and asserts that (a) every commit became
// durable, (b) the number of device flushes is strictly smaller than the
// number of commits (amortization), and (c) the waiter/leader stats are
// consistent.
func TestGroupCommitCoalesces(t *testing.T) {
	mem := blockdev.NewMem(testBS, testBlocks)
	dev := &slowSyncDev{Device: mem, delay: 200 * time.Microsecond}
	if err := Format(dev, logStart, logBlocks); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dev, logStart, logBlocks)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		perG       = 20
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			old := make([]byte, 8)
			val := make([]byte, 8)
			for i := 0; i < perG; i++ {
				val[0], val[1] = byte(g), byte(i)
				if l.Used() > l.Capacity()/2 {
					// Concurrent checkpoints are legal; they keep the
					// small test log from filling.
					if err := l.Checkpoint(l.Head()); err != nil {
						errs <- err
						return
					}
				}
				tx := l.Begin()
				if _, err := tx.Update(int64(g%4), g*16, old, val); err != nil {
					errs <- err
					return
				}
				lsn, err := tx.Commit()
				if err != nil {
					errs <- err
					return
				}
				if err := l.Flush(lsn); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := l.LogStats()
	if st.Durable != st.Head {
		t.Fatalf("durable %d != head %d after all commits flushed", st.Durable, st.Head)
	}
	commits := uint64(goroutines * perG)
	if st.Flushes >= commits {
		t.Fatalf("no amortization: %d flushes for %d durable commits", st.Flushes, commits)
	}
	if st.SyncsSaved == 0 || st.GroupCommits == 0 {
		t.Fatalf("expected group commits and saved syncs, got %+v", st)
	}
	if st.Flushes+st.SyncsSaved < commits {
		t.Fatalf("stats don't cover all commits: %d flushes + %d saved < %d", st.Flushes, st.SyncsSaved, commits)
	}
}

// TestGroupCommitFlushKeepsRecordsReadable crashes mid-stream: after a
// burst of concurrent flushed commits, the on-disk log must replay every
// committed update exactly once.
func TestGroupCommitRecovery(t *testing.T) {
	mem := blockdev.NewMem(testBS, testBlocks)
	dev := &slowSyncDev{Device: mem, delay: 50 * time.Microsecond}
	if err := Format(dev, logStart, logBlocks); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dev, logStart, logBlocks)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			old := make([]byte, 4)
			val := []byte{0xA0 | byte(g), 1, 2, 3}
			tx := l.Begin()
			if _, err := tx.Update(int64(g), 0, old, val); err != nil {
				t.Error(err)
				return
			}
			lsn, err := tx.Commit()
			if err != nil {
				t.Error(err)
				return
			}
			if err := l.Flush(lsn); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	// Reopen from the raw memory device: everything flushed must replay.
	l2 := reopen(t, mem)
	res, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != goroutines || res.Redone != goroutines {
		t.Fatalf("recovery %+v, want %d committed/%d redone", res, goroutines, goroutines)
	}
	for g := 0; g < goroutines; g++ {
		blk := make([]byte, testBS)
		if err := mem.Read(int64(g), blk); err != nil {
			t.Fatal(err)
		}
		if blk[0] != 0xA0|byte(g) {
			t.Fatalf("block %d: update not replayed (%#x)", g, blk[0])
		}
	}
}
