package token

import (
	"testing"

	"decorum/internal/fs"
)

type nullHost struct{ id uint64 }

func (h *nullHost) HostID() uint64             { return h.id }
func (h *nullHost) Revoke(Token) (bool, error) { return true, nil }

// BenchmarkAcquireRelease is the no-conflict fast path every remote
// operation pays.
func BenchmarkAcquireRelease(b *testing.B) {
	m := NewManager()
	m.Register(&nullHost{id: 1})
	fid := fs.FID{Volume: 1, Vnode: 1, Uniq: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok, err := m.Acquire(1, fid, DataRead|StatusRead, WholeFile)
		if err != nil {
			b.Fatal(err)
		}
		m.Release(tok.ID)
	}
}

// BenchmarkAcquireWithRevocation measures the conflict path: every grant
// revokes the other host's token.
func BenchmarkAcquireWithRevocation(b *testing.B) {
	m := NewManager()
	m.Register(&nullHost{id: 1})
	m.Register(&nullHost{id: 2})
	fid := fs.FID{Volume: 1, Vnode: 1, Uniq: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host := uint64(i%2 + 1)
		if _, err := m.Acquire(host, fid, DataWrite, WholeFile); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompatible measures the pure compatibility predicate.
func BenchmarkCompatible(b *testing.B) {
	ra := Range{0, 1 << 16}
	rb := Range{1 << 15, 1 << 17}
	for i := 0; i < b.N; i++ {
		Compatible(DataWrite|StatusRead, ra, DataRead|OpenRead, rb)
	}
}
