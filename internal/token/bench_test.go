package token

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"decorum/internal/fs"
)

// parallelism converts a desired goroutine count into the SetParallelism
// multiplier (RunParallel spawns p × GOMAXPROCS workers).
func parallelism(goroutines int) int {
	p := runtime.GOMAXPROCS(0)
	return (goroutines + p - 1) / p
}

type nullHost struct{ id uint64 }

func (h *nullHost) HostID() uint64             { return h.id }
func (h *nullHost) Revoke(Token) (bool, error) { return true, nil }

// BenchmarkAcquireRelease is the no-conflict fast path every remote
// operation pays.
func BenchmarkAcquireRelease(b *testing.B) {
	m := NewManager()
	m.Register(&nullHost{id: 1})
	fid := fs.FID{Volume: 1, Vnode: 1, Uniq: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok, err := m.Acquire(1, fid, DataRead|StatusRead, WholeFile)
		if err != nil {
			b.Fatal(err)
		}
		m.Release(tok.ID)
	}
}

// BenchmarkAcquireWithRevocation measures the conflict path: every grant
// revokes the other host's token.
func BenchmarkAcquireWithRevocation(b *testing.B) {
	m := NewManager()
	m.Register(&nullHost{id: 1})
	m.Register(&nullHost{id: 2})
	fid := fs.FID{Volume: 1, Vnode: 1, Uniq: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		host := uint64(i%2 + 1)
		if _, err := m.Acquire(host, fid, DataWrite, WholeFile); err != nil {
			b.Fatal(err)
		}
	}
}

// preShard reproduces the seed manager's hot path before this PR: one
// mutex over all token state, held across the lease scan (O(resident
// tokens) per acquire), the conflict check, and the grant. It exists so
// BenchmarkTokenOps compares against the real pre-shard cost rather than
// shards=1 of the new code (which already has the incremental sweep).
type preShard struct {
	mu      sync.Mutex
	lease   int64
	byFile  map[fs.FID]map[ID]*Token
	byID    map[ID]*Token
	serials map[fs.FID]uint64
	nextID  ID
}

func newPreShard(lease int64) *preShard {
	return &preShard{
		lease:   lease,
		byFile:  make(map[fs.FID]map[ID]*Token),
		byID:    make(map[ID]*Token),
		serials: make(map[fs.FID]uint64),
	}
}

func (m *preShard) dropLocked(id ID) {
	tok, ok := m.byID[id]
	if !ok {
		return
	}
	delete(m.byID, id)
	if ft, ok := m.byFile[tok.FID]; ok {
		delete(ft, id)
		if len(ft) == 0 {
			delete(m.byFile, tok.FID)
		}
	}
}

func (m *preShard) acquire(hostID uint64, fid fs.FID, types Type, rng Range) (Token, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lease != 0 { // the seed's expireLocked: a full pass per acquire
		now := int64(0) // where the seed read its Clock; zero keeps leases live
		for id, tok := range m.byID {
			if tok.Expiry != 0 && tok.Expiry < now {
				m.dropLocked(id)
			}
		}
	}
	for _, t := range m.byFile[fid] {
		if t.HostID != hostID && !Compatible(types, rng, t.Types, t.Range) {
			return Token{}, ErrConflict
		}
	}
	m.nextID++
	m.serials[fid]++
	tok := &Token{ID: m.nextID, FID: fid, Types: types, Range: rng,
		HostID: hostID, Serial: m.serials[fid], Expiry: m.lease}
	m.byID[tok.ID] = tok
	if m.byFile[fid] == nil {
		m.byFile[fid] = make(map[ID]*Token)
	}
	m.byFile[fid][tok.ID] = tok
	return *tok, nil
}

func (m *preShard) release(id ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byID[id]; !ok {
		return ErrNoToken
	}
	m.dropLocked(id)
	return nil
}

// tokenOps abstracts the two implementations under benchmark.
type tokenOps interface {
	acquireOp(hostID uint64, fid fs.FID, types Type, rng Range) (Token, error)
	releaseOp(id ID) error
}

type shardedOps struct{ m *Manager }

func (o shardedOps) acquireOp(h uint64, f fs.FID, t Type, r Range) (Token, error) {
	return o.m.Acquire(h, f, t, r)
}
func (o shardedOps) releaseOp(id ID) error { return o.m.Release(id) }

type preShardOps struct{ m *preShard }

func (o preShardOps) acquireOp(h uint64, f fs.FID, t Type, r Range) (Token, error) {
	return o.m.acquire(h, f, t, r)
}
func (o preShardOps) releaseOp(id ID) error { return o.m.release(id) }

// benchLease keeps every granted token's lease alive for the whole run
// (the clock never advances past it) while still exercising the expiry
// machinery on both implementations.
const benchLease = int64(1) << 40

// benchPopulation is the resident token set a busy cell carries: held by
// a second host on files the benchmark never touches, so it contends
// only through the expiry path and the lock itself.
const benchPopulation = 4096

// BenchmarkTokenOps measures acquire+release throughput under
// concurrency against a cell-scale resident population — the number the
// FID sharding exists to move. Implementations:
//
//   - baseline=preshard: the seed's single mutex with its O(resident)
//     lease scan per acquire;
//   - shards=1: the new code confined to one shard (isolates the
//     incremental sweep from lock granularity);
//   - shards=16: the shipped configuration.
//
// Mixes: disjoint gives every goroutine its own FID set (independent
// files — the common case a busy cell serves); shared aims every
// goroutine at one FID (worst case: all traffic collapses onto one
// shard, sharding cannot help).
func BenchmarkTokenOps(b *testing.B) {
	impls := []struct {
		name  string
		build func(b *testing.B) tokenOps
	}{
		{"baseline=preshard", func(b *testing.B) tokenOps {
			m := newPreShard(benchLease)
			for i := 0; i < benchPopulation; i++ {
				fid := fs.FID{Volume: 2, Vnode: uint64(i), Uniq: 1}
				if _, err := m.acquire(2, fid, DataRead, WholeFile); err != nil {
					b.Fatal(err)
				}
			}
			return preShardOps{m}
		}},
		{"shards=1", func(b *testing.B) tokenOps { return shardedOps{buildSharded(b, 1)} }},
		{"shards=16", func(b *testing.B) tokenOps { return shardedOps{buildSharded(b, 16)} }},
	}
	for _, impl := range impls {
		for _, gor := range []int{1, 4, 16, 64} {
			for _, mix := range []string{"disjoint", "shared"} {
				name := fmt.Sprintf("%s/goroutines=%d/%s", impl.name, gor, mix)
				b.Run(name, func(b *testing.B) {
					ops := impl.build(b)
					var worker atomic.Uint64
					b.SetParallelism(parallelism(gor))
					b.ResetTimer()
					b.RunParallel(func(pb *testing.PB) {
						w := worker.Add(1)
						var i uint64
						for pb.Next() {
							fid := fs.FID{Volume: 1, Vnode: 1, Uniq: 1}
							if mix == "disjoint" {
								// 128 files per worker, no overlap across workers.
								fid.Vnode = w<<16 | (i & 127)
								i++
							}
							tok, err := ops.acquireOp(1, fid, DataRead|StatusRead, WholeFile)
							if err != nil {
								b.Fatal(err)
							}
							if err := ops.releaseOp(tok.ID); err != nil {
								b.Fatal(err)
							}
						}
					})
				})
			}
		}
	}
}

// buildSharded returns an instrumented new-code manager carrying the
// same lease setup and resident population as the baseline.
func buildSharded(b *testing.B, shards int) *Manager {
	m := NewManagerShards(shards)
	m.LeaseDuration = benchLease
	m.Register(&nullHost{id: 1})
	m.Register(&nullHost{id: 2})
	for i := 0; i < benchPopulation; i++ {
		fid := fs.FID{Volume: 2, Vnode: uint64(i), Uniq: 1}
		if _, err := m.Acquire(2, fid, DataRead, WholeFile); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkCompatible measures the pure compatibility predicate.
func BenchmarkCompatible(b *testing.B) {
	ra := Range{0, 1 << 16}
	rb := Range{1 << 15, 1 << 17}
	for i := 0; i < b.N; i++ {
		Compatible(DataWrite|StatusRead, ra, DataRead|OpenRead, rb)
	}
}
