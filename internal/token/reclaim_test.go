package token

import (
	"errors"
	"testing"

	"decorum/internal/fs"
)

// A reclaim over free state re-establishes the token and pushes the
// per-file serial past everything the claimant saw pre-crash.
func TestReclaimReestablishesToken(t *testing.T) {
	h := &fakeHost{id: 1}
	m := newMgr(h)
	claim := Token{
		ID: 9999, FID: testFID,
		Types: DataWrite | StatusWrite, Range: WholeFile,
		Serial: 500,
	}
	tok, err := m.Reclaim(1, claim)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Types != claim.Types || tok.Range != claim.Range || tok.FID != testFID {
		t.Fatalf("reclaimed token %+v does not match claim", tok)
	}
	if tok.ID == claim.ID {
		t.Fatal("reclaimed token reused the dead incarnation's ID")
	}
	// Serial high-water: later grants must stamp past the pre-crash
	// counter so §6.2's "newer wins" keeps working across the restart.
	if tok.Serial <= claim.Serial {
		t.Fatalf("reclaimed serial %d not past claimed %d", tok.Serial, claim.Serial)
	}
	if next := m.NextSerial(testFID); next <= claim.Serial {
		t.Fatalf("NextSerial %d not past claimed %d", next, claim.Serial)
	}
}

// A reclaim that collides with state another host already re-established
// is rejected with fs.ErrReclaim — first reclaimer wins.
func TestReclaimConflictRejected(t *testing.T) {
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	first := Token{ID: 100, FID: testFID, Types: DataWrite, Range: WholeFile, Serial: 10}
	if _, err := m.Reclaim(1, first); err != nil {
		t.Fatal(err)
	}
	second := Token{ID: 101, FID: testFID, Types: DataWrite, Range: WholeFile, Serial: 11}
	if _, err := m.Reclaim(2, second); !errors.Is(err, fs.ErrReclaim) {
		t.Fatalf("conflicting reclaim = %v, want fs.ErrReclaim", err)
	}
	// The winner's own further reclaims never self-conflict.
	if _, err := m.Reclaim(1, Token{ID: 102, FID: testFID, Types: DataWrite,
		Range: Range{Start: 0, End: 64}, Serial: 2}); err != nil {
		t.Fatalf("same-host reclaim conflicted: %v", err)
	}
	// Compatible state — a read on a different file — reclaims fine.
	other := fs.FID{Volume: 1, Vnode: 77, Uniq: 1}
	if _, err := m.Reclaim(2, Token{ID: 103, FID: other, Types: DataRead,
		Range: WholeFile, Serial: 3}); err != nil {
		t.Fatalf("unrelated reclaim rejected: %v", err)
	}
}

// A reclaim also conflicts with an ordinary grant made since the
// restart: a fresh host's live token beats a slow reclaimer.
func TestReclaimConflictWithLiveGrant(t *testing.T) {
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(2, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	claim := Token{ID: 55, FID: testFID, Types: DataWrite, Range: WholeFile, Serial: 7}
	if _, err := m.Reclaim(1, claim); !errors.Is(err, fs.ErrReclaim) {
		t.Fatalf("reclaim against live grant = %v, want fs.ErrReclaim", err)
	}
}

// Reclaims demand a registered host and a non-empty claim.
func TestReclaimValidation(t *testing.T) {
	m := newMgr(&fakeHost{id: 1})
	if _, err := m.Reclaim(9, Token{FID: testFID, Types: DataRead, Range: WholeFile}); !errors.Is(err, ErrNoHost) {
		t.Fatalf("reclaim from unknown host = %v, want ErrNoHost", err)
	}
	if _, err := m.Reclaim(1, Token{FID: testFID}); err == nil {
		t.Fatal("empty reclaim accepted")
	}
}

// The Gate hook turns away ordinary grants without revoking anything,
// while Reclaim bypasses it.
func TestGateBlocksGrantsNotReclaims(t *testing.T) {
	h := &fakeHost{id: 1}
	m := newMgr(h)
	gateErr := errors.New("gated")
	m.Gate = func(hostID uint64) error {
		if hostID == 1 {
			return gateErr
		}
		return nil
	}
	if _, err := m.Acquire(1, testFID, DataRead, WholeFile); !errors.Is(err, gateErr) {
		t.Fatalf("gated acquire = %v, want gate error", err)
	}
	if h.revokedCount() != 0 {
		t.Fatal("gated acquire triggered revocations")
	}
	if _, err := m.Reclaim(1, Token{FID: testFID, Types: DataRead, Range: WholeFile, Serial: 1}); err != nil {
		t.Fatalf("reclaim blocked by gate: %v", err)
	}
	m.Gate = nil
	if _, err := m.Acquire(1, testFID, DataRead, WholeFile); err != nil {
		t.Fatalf("ungated acquire: %v", err)
	}
}

// BenchmarkReclaim measures reclaim throughput over a populated manager
// (the grace-window hot path after a big cell restarts).
func BenchmarkReclaim(b *testing.B) {
	h := &fakeHost{id: 1}
	m := newMgr(h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fid := fs.FID{Volume: 1, Vnode: uint64(i%4096) + 1, Uniq: 1}
		claim := Token{
			ID: ID(i + 1), FID: fid,
			Types: DataWrite | StatusWrite, Range: WholeFile,
			Serial: uint64(i),
		}
		if _, err := m.Reclaim(1, claim); err != nil {
			b.Fatal(err)
		}
	}
}
