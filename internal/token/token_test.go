package token

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"decorum/internal/fs"
)

// fakeHost records revocations and answers per a policy.
type fakeHost struct {
	id      uint64
	mu      sync.Mutex
	revoked []Token
	refuse  bool // refuse to return (lock/open semantics)
	fail    bool // revocation RPC fails (dead client)
}

func (h *fakeHost) HostID() uint64 { return h.id }

func (h *fakeHost) Revoke(tok Token) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.revoked = append(h.revoked, tok)
	if h.fail {
		return false, errors.New("host unreachable")
	}
	return !h.refuse, nil
}

func (h *fakeHost) revokedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.revoked)
}

var testFID = fs.FID{Volume: 1, Vnode: 10, Uniq: 1}

func newMgr(hosts ...*fakeHost) *Manager {
	m := NewManager()
	for _, h := range hosts {
		m.Register(h)
	}
	return m
}

func TestGrantToUnregisteredHost(t *testing.T) {
	m := newMgr()
	if _, err := m.Acquire(1, testFID, DataRead, WholeFile); !errors.Is(err, ErrNoHost) {
		t.Fatalf("acquire for unknown host: %v", err)
	}
}

func TestCompatibleGrantsCoexist(t *testing.T) {
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, DataRead|StatusRead, WholeFile); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(2, testFID, DataRead|StatusRead, WholeFile); err != nil {
		t.Fatal(err)
	}
	if h1.revokedCount() != 0 {
		t.Fatal("read/read should not revoke")
	}
	if got := len(m.HoldersOf(testFID)); got != 2 {
		t.Fatalf("%d tokens outstanding", got)
	}
}

func TestWriteRevokesReaders(t *testing.T) {
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, DataRead, WholeFile); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(2, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if h1.revokedCount() != 1 {
		t.Fatalf("reader revoked %d times, want 1", h1.revokedCount())
	}
	toks := m.HoldersOf(testFID)
	if len(toks) != 1 || toks[0].HostID != 2 {
		t.Fatalf("outstanding %+v", toks)
	}
}

func TestSameHostNeverConflictsWithItself(t *testing.T) {
	h := &fakeHost{id: 1}
	m := newMgr(h)
	if _, err := m.Acquire(1, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(1, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if h.revokedCount() != 0 {
		t.Fatal("self-conflict revoked")
	}
}

func TestByteRangeTokensDisjointWriters(t *testing.T) {
	// The §5.4 claim: disjoint writers of one large file never collide.
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, DataWrite, Range{0, 1 << 20}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(2, testFID, DataWrite, Range{1 << 20, 2 << 20}); err != nil {
		t.Fatal(err)
	}
	if h1.revokedCount()+h2.revokedCount() != 0 {
		t.Fatal("disjoint ranges caused revocation")
	}
	// An overlapping writer does collide.
	if _, err := m.Acquire(2, testFID, DataWrite, Range{1 << 19, 1<<19 + 10}); err != nil {
		t.Fatal(err)
	}
	if h1.revokedCount() != 1 {
		t.Fatalf("overlap revoked %d, want 1", h1.revokedCount())
	}
}

func TestStatusTokensIgnoreRanges(t *testing.T) {
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, StatusWrite, Range{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Status conflicts are whole-file regardless of range.
	if _, err := m.Acquire(2, testFID, StatusRead, Range{100, 200}); err != nil {
		t.Fatal(err)
	}
	if h1.revokedCount() != 1 {
		t.Fatal("status write not revoked by status read elsewhere in file")
	}
}

func TestOpenMatrixGolden(t *testing.T) {
	// The reconstructed Figure 3, pinned.
	want := map[Type]map[Type]bool{
		OpenRead:      {OpenRead: true, OpenWrite: true, OpenExecute: true, OpenShared: true, OpenExclusive: false},
		OpenWrite:     {OpenRead: true, OpenWrite: true, OpenExecute: false, OpenShared: true, OpenExclusive: false},
		OpenExecute:   {OpenRead: true, OpenWrite: false, OpenExecute: true, OpenShared: true, OpenExclusive: false},
		OpenShared:    {OpenRead: true, OpenWrite: true, OpenExecute: true, OpenShared: true, OpenExclusive: false},
		OpenExclusive: {OpenRead: false, OpenWrite: false, OpenExecute: false, OpenShared: false, OpenExclusive: false},
	}
	for _, a := range OpenSubtypes {
		for _, b := range OpenSubtypes {
			if got := OpenCompatible(a, b); got != want[a][b] {
				t.Errorf("OpenCompatible(%v, %v) = %v, want %v", a, b, got, want[a][b])
			}
		}
	}
	// The matrix must be symmetric.
	for _, a := range OpenSubtypes {
		for _, b := range OpenSubtypes {
			if OpenCompatible(a, b) != OpenCompatible(b, a) {
				t.Errorf("matrix asymmetric at (%v, %v)", a, b)
			}
		}
	}
}

func TestExecuteBlocksWrite(t *testing.T) {
	// §5.4: "the UNIX restriction against opening a file for writing if it
	// has been opened for execution can be implemented".
	h1, h2 := &fakeHost{id: 1, refuse: true}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, OpenExecute, WholeFile); err != nil {
		t.Fatal(err)
	}
	// h1 refuses to return its execute token (the file is running).
	if _, err := m.Acquire(2, testFID, OpenWrite, WholeFile); !errors.Is(err, ErrConflict) {
		t.Fatalf("open-write vs held execute: %v", err)
	}
	// Reading it is fine.
	if _, err := m.Acquire(2, testFID, OpenRead, WholeFile); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveWriteForDelete(t *testing.T) {
	// §5.4: a server assures itself a file about to be deleted has no
	// remote users by acquiring open-exclusive.
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, OpenRead, WholeFile); err != nil {
		t.Fatal(err)
	}
	// h1 returns the token when asked (file no longer open).
	if _, err := m.Acquire(2, testFID, OpenExclusive, WholeFile); err != nil {
		t.Fatal(err)
	}
	if h1.revokedCount() != 1 {
		t.Fatal("reader not revoked by exclusive")
	}
}

func TestRefusedLockToken(t *testing.T) {
	h1 := &fakeHost{id: 1, refuse: true}
	h2 := &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, LockWrite, Range{0, 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(2, testFID, LockWrite, Range{50, 150}); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting lock with refusal: %v", err)
	}
	// Disjoint lock range is fine.
	if _, err := m.Acquire(2, testFID, LockWrite, Range{200, 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadHostForfeitsTokens(t *testing.T) {
	h1 := &fakeHost{id: 1, fail: true}
	h2 := &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	// Revocation RPC fails; the manager forfeits the dead host's token.
	if _, err := m.Acquire(2, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if got := len(m.HoldersOf(testFID)); got != 1 {
		t.Fatalf("%d tokens after forfeit", got)
	}
}

func TestUnregisterDropsTokens(t *testing.T) {
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	if _, err := m.Acquire(1, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	m.Unregister(1)
	if _, err := m.Acquire(2, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if h1.revokedCount() != 0 {
		t.Fatal("unregistered host revoked")
	}
}

func TestReleaseAndSerials(t *testing.T) {
	h := &fakeHost{id: 1}
	m := newMgr(h)
	t1, err := m.Acquire(1, testFID, DataRead, WholeFile)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.Acquire(1, testFID, StatusRead, WholeFile)
	if err != nil {
		t.Fatal(err)
	}
	if t2.Serial <= t1.Serial {
		t.Fatalf("serials not increasing: %d then %d", t1.Serial, t2.Serial)
	}
	if err := m.Release(t1.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(t1.ID); !errors.Is(err, ErrNoToken) {
		t.Fatalf("double release: %v", err)
	}
	if s := m.NextSerial(testFID); s <= t2.Serial {
		t.Fatalf("NextSerial %d not past %d", s, t2.Serial)
	}
}

func TestWholeVolumeToken(t *testing.T) {
	// §3.8: the replication server holds a whole-volume token; any write
	// anywhere in the volume revokes it.
	replica := &fakeHost{id: 1}
	writer := &fakeHost{id: 2}
	m := newMgr(replica, writer)
	volRoot := fs.FID{Volume: 5, Vnode: 1, Uniq: 1}
	fileInVol := fs.FID{Volume: 5, Vnode: 33, Uniq: 2}
	otherVol := fs.FID{Volume: 6, Vnode: 33, Uniq: 2}
	if _, err := m.Acquire(1, volRoot, WholeVolume, WholeFile); err != nil {
		t.Fatal(err)
	}
	// Reads in the volume leave the replica token alone.
	if _, err := m.Acquire(2, fileInVol, DataRead, WholeFile); err != nil {
		t.Fatal(err)
	}
	if replica.revokedCount() != 0 {
		t.Fatal("read revoked the whole-volume token")
	}
	// A write in another volume leaves it alone.
	if _, err := m.Acquire(2, otherVol, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if replica.revokedCount() != 0 {
		t.Fatal("other-volume write revoked the token")
	}
	// A write in this volume revokes it.
	if _, err := m.Acquire(2, fileInVol, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if replica.revokedCount() != 1 {
		t.Fatalf("whole-volume revocations = %d, want 1", replica.revokedCount())
	}
}

func TestWholeVolumeAcquireRevokesWriters(t *testing.T) {
	replica := &fakeHost{id: 1}
	writer := &fakeHost{id: 2}
	m := newMgr(replica, writer)
	fileInVol := fs.FID{Volume: 5, Vnode: 33, Uniq: 2}
	volRoot := fs.FID{Volume: 5, Vnode: 1, Uniq: 1}
	if _, err := m.Acquire(2, fileInVol, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire(1, volRoot, WholeVolume, WholeFile); err != nil {
		t.Fatal(err)
	}
	if writer.revokedCount() != 1 {
		t.Fatalf("writer revoked %d, want 1 (write-back before replication)", writer.revokedCount())
	}
}

func TestLeaseExpiry(t *testing.T) {
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	now := int64(100)
	m.Clock = func() int64 { return now }
	m.LeaseDuration = 50
	tok, err := m.Acquire(1, testFID, DataWrite, WholeFile)
	if err != nil {
		t.Fatal(err)
	}
	if tok.Expiry != 150 {
		t.Fatalf("expiry %d", tok.Expiry)
	}
	now = 200 // lease passed
	if _, err := m.Acquire(2, testFID, DataWrite, WholeFile); err != nil {
		t.Fatal(err)
	}
	if h1.revokedCount() != 0 {
		t.Fatal("expired token triggered a revocation call")
	}
	if m.Stats().Expired != 1 {
		t.Fatalf("Expired = %d", m.Stats().Expired)
	}
}

func TestStatsCounters(t *testing.T) {
	h1, h2 := &fakeHost{id: 1}, &fakeHost{id: 2}
	m := newMgr(h1, h2)
	tok, _ := m.Acquire(1, testFID, DataRead, WholeFile)
	m.Acquire(2, testFID, DataWrite, WholeFile)
	m.Release(tok.ID) // already dropped? tok was revoked; ignore error
	st := m.Stats()
	if st.Grants != 2 {
		t.Errorf("Grants = %d", st.Grants)
	}
	if st.Revocations != 1 {
		t.Errorf("Revocations = %d", st.Revocations)
	}
}

// Property: Compatible is symmetric for all type/range combinations.
func TestQuickCompatibleSymmetric(t *testing.T) {
	f := func(ta, tb uint16, s1, l1, s2, l2 uint8) bool {
		a := Type(ta) & AllTypes
		b := Type(tb) & AllTypes
		ra := Range{int64(s1), int64(s1) + int64(l1) + 1}
		rb := Range{int64(s2), int64(s2) + int64(l2) + 1}
		return Compatible(a, ra, b, rb) == Compatible(b, rb, a, ra)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property/invariant: after any sequence of acquires among compliant
// hosts, the outstanding token set is pairwise compatible.
func TestQuickOutstandingAlwaysCompatible(t *testing.T) {
	f := func(ops []struct {
		Host  uint8
		Types uint16
		Start uint8
		Len   uint8
	}) bool {
		hosts := []*fakeHost{{id: 1}, {id: 2}, {id: 3}}
		m := newMgr(hosts...)
		for _, op := range ops {
			ty := Type(op.Types) & (DataTypes | StatusTypes | LockTypes)
			if ty == 0 {
				ty = DataRead
			}
			rng := Range{int64(op.Start), int64(op.Start) + int64(op.Len) + 1}
			_, err := m.Acquire(uint64(op.Host%3)+1, testFID, ty, rng)
			if err != nil {
				return false
			}
		}
		toks := m.HoldersOf(testFID)
		for i := range toks {
			for j := range toks {
				if i == j || toks[i].HostID == toks[j].HostID {
					continue
				}
				if !Compatible(toks[i].Types, toks[i].Range, toks[j].Types, toks[j].Range) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent acquires across many files and hosts; run with -race.
func TestConcurrentAcquire(t *testing.T) {
	hosts := make([]*fakeHost, 4)
	m := NewManager()
	for i := range hosts {
		hosts[i] = &fakeHost{id: uint64(i + 1)}
		m.Register(hosts[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				fid := fs.FID{Volume: 1, Vnode: uint64(i % 7), Uniq: 1}
				ty := DataRead
				if i%3 == 0 {
					ty = DataWrite
				}
				tok, err := m.Acquire(uint64(g+1), fid, ty, WholeFile)
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					m.Release(tok.ID)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestTypeString(t *testing.T) {
	if s := (DataRead | StatusWrite).String(); s != "data-read+status-write" {
		t.Fatalf("String = %q", s)
	}
	if s := Type(0).String(); s != "none" {
		t.Fatalf("zero String = %q", s)
	}
	if s := WholeFile.String(); s != "[*]" {
		t.Fatalf("range String = %q", s)
	}
	if s := (Range{1, 5}).String(); s != "[1,5)" {
		t.Fatalf("range String = %q", s)
	}
}

// Figure 3 as printable output, used by cmd/dfsbench -fig3; pinned here so
// the tool and the paper stay in sync.
func TestFigure3Render(t *testing.T) {
	got := RenderFigure3()
	for _, want := range []string{"open-read", "open-exclusive", "✓", "✗"} {
		if !contains(got, want) {
			t.Fatalf("figure 3 rendering missing %q:\n%s", want, got)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

var _ = fmt.Sprintf // keep fmt for debug edits
