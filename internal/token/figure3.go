package token

import (
	"fmt"
	"strings"
)

// RenderFigure3 prints the open-token compatibility matrix (Figure 3 of
// the paper) from the live compatibility relation, so the published table
// and the implementation cannot drift apart.
func RenderFigure3() string {
	var b strings.Builder
	width := 0
	for _, t := range OpenSubtypes {
		if n := len(t.String()); n > width {
			width = n
		}
	}
	fmt.Fprintf(&b, "%-*s", width+2, "")
	for _, t := range OpenSubtypes {
		fmt.Fprintf(&b, "%-*s", width+2, t.String())
	}
	b.WriteByte('\n')
	for _, row := range OpenSubtypes {
		fmt.Fprintf(&b, "%-*s", width+2, row.String())
		for _, col := range OpenSubtypes {
			mark := "✗"
			if OpenCompatible(row, col) {
				mark = "✓"
			}
			fmt.Fprintf(&b, "%-*s", width+2, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
